// Package bestpeer is the public API of this BestPeer++ reproduction:
// a peer-to-peer based large-scale data processing platform for
// corporate networks (Chen, Hu, Jiang, Lu, Tan, Vo, Wu — ICDE 2012 /
// TKDE 2014).
//
// A Network assembles the full system the paper describes: a simulated
// elastic cloud provider (internal/cloud), the bootstrap peer with its
// certificate authority and maintenance daemon (internal/bootstrap), a
// BATON structured overlay (internal/baton), and any number of normal
// peers (internal/peer), each hosting an embedded relational database
// (internal/sqldb), a data loader fed from production systems
// (internal/loader, internal/erp), distributed role-based access
// control (internal/accesscontrol), and the pay-as-you-go query
// engines (internal/engine). An HDFS-like store plus MapReduce service
// (internal/dfs, internal/mapreduce) is mounted for analytical jobs.
//
// Quick start:
//
//	net, err := bestpeer.NewNetwork(bestpeer.Config{NumPeers: 4})
//	...
//	res, err := net.Query(0, "SELECT COUNT(*) FROM lineitem", bestpeer.QueryOptions{})
//
// See examples/ for complete programs and bench_test.go for the
// benchmarks regenerating the paper's figures.
package bestpeer

import (
	"crypto/ed25519"
	"fmt"
	"sync"
	"time"

	"bestpeer/internal/baton"
	"bestpeer/internal/bootstrap"
	"bestpeer/internal/cloud"
	"bestpeer/internal/dfs"
	"bestpeer/internal/engine"
	"bestpeer/internal/mapreduce"
	"bestpeer/internal/peer"
	"bestpeer/internal/pnet"
	"bestpeer/internal/serving"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/tpch"
	"bestpeer/internal/vtime"
)

// Config sizes a new corporate network.
type Config struct {
	// NumPeers is the number of normal peers launched initially.
	NumPeers int
	// PeerPrefix names peers "<prefix>-NN" (default "peer").
	PeerPrefix string
	// Rates calibrates the virtual-time cost model; the zero value uses
	// the paper-calibrated defaults.
	Rates vtime.Rates
	// DisableMapReduce skips mounting the DFS + MapReduce service.
	DisableMapReduce bool
	// RangeIndexColumns selects the columns each peer publishes range
	// indexes for (table -> columns).
	RangeIndexColumns map[string][]string
	// GlobalSchema seeds the shared schema at the bootstrap. Nil means
	// the standard TPC-H schema.
	GlobalSchema []*sqldb.Schema
}

// QueryOptions controls one query execution.
type QueryOptions struct {
	// User is the submitting account ("" = benchmark full-access user).
	User string
	// Strategy picks the engine (default basic, per §6.1.2).
	Strategy peer.Strategy
	// Engine ablation switches.
	Engine engine.Options
}

// Network is a running BestPeer++ corporate network.
type Network struct {
	Net       *pnet.Network
	Provider  *cloud.SimProvider
	Bootstrap *bootstrap.Peer
	Overlay   *baton.Overlay
	MRCluster *mapreduce.Cluster
	FS        *dfs.FileSystem
	Clock     *pnet.LogicalClock

	cfg Config
	env peer.Env

	// mu guards the peer topology below. Readers are everywhere — the
	// serving tier calls ClusterVersions from handler goroutines on
	// every cacheable query — while failover and AddPeer mutate under
	// load, so every access goes through it.
	mu        sync.RWMutex
	peers     []*peer.Peer
	peersByID map[string]*peer.Peer
	nextRepl  int

	servingCfg serving.Config
	servers    map[string]*serving.Server // peer ID -> tier; nil until EnableServing
}

// NewNetwork builds and starts a network with cfg.NumPeers peers.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.NumPeers < 0 {
		return nil, fmt.Errorf("bestpeer: negative peer count")
	}
	if cfg.PeerPrefix == "" {
		cfg.PeerPrefix = "peer"
	}
	if cfg.Rates == (vtime.Rates{}) {
		cfg.Rates = vtime.DefaultRates()
	}
	if cfg.GlobalSchema == nil {
		cfg.GlobalSchema = tpch.Schemas(false)
	}
	if cfg.RangeIndexColumns == nil {
		cfg.RangeIndexColumns = map[string][]string{}
	}

	n := &Network{
		Net:       pnet.NewNetwork(),
		Provider:  cloud.NewSimProvider(),
		cfg:       cfg,
		peersByID: make(map[string]*peer.Peer),
	}
	var err error
	n.Bootstrap, err = bootstrap.New(n.Net, "bootstrap", n.Provider)
	if err != nil {
		return nil, err
	}
	n.Overlay = baton.NewOverlay(n.Net, "bootstrap/overlay")
	for _, s := range cfg.GlobalSchema {
		n.Bootstrap.DefineGlobalSchema(s)
	}

	if !cfg.DisableMapReduce {
		var datanodes []string
		for i := 0; i < maxPeers(cfg.NumPeers); i++ {
			datanodes = append(datanodes, peerID(cfg.PeerPrefix, i))
		}
		fsCfg := dfs.DefaultConfig(datanodes)
		n.FS, err = dfs.New(fsCfg)
		if err != nil {
			return nil, err
		}
		n.MRCluster, err = mapreduce.NewCluster(n.FS, maxPeers(cfg.NumPeers), cfg.Rates)
		if err != nil {
			return nil, err
		}
	}

	n.Clock = &pnet.LogicalClock{}
	n.env = peer.Env{
		Net:       n.Net,
		Bootstrap: n.Bootstrap,
		Overlay:   n.Overlay,
		Provider:  n.Provider,
		MR:        n.MRCluster,
		Rates:     cfg.Rates,
		Clock:     n.Clock,
	}
	n.Bootstrap.SetFailoverHandler(bootstrap.FailoverFunc(n.failover))

	for i := 0; i < cfg.NumPeers; i++ {
		if _, err := n.AddPeer(peerID(cfg.PeerPrefix, i)); err != nil {
			return nil, err
		}
	}
	return n, nil
}

func maxPeers(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

func peerID(prefix string, i int) string { return fmt.Sprintf("%s-%02d", prefix, i) }

// AddPeer admits one more normal peer into the network.
func (n *Network) AddPeer(id string) (*peer.Peer, error) {
	p, err := peer.Join(id, n.env)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = append(n.peers, p)
	n.peersByID[id] = p
	if n.servers != nil {
		n.servers[id] = p.StartServing(n.servingCfg)
	}
	return p, nil
}

// Peers returns a snapshot of the live normal peers in join order
// (replaced peers appear under their replacement identity).
func (n *Network) Peers() []*peer.Peer {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]*peer.Peer(nil), n.peers...)
}

// Peer returns the i-th peer.
func (n *Network) Peer(i int) *peer.Peer {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.peers[i]
}

// PeerByID resolves a peer by identity.
func (n *Network) PeerByID(id string) *peer.Peer {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.peersByID[id]
}

// LoadTPCH loads a deterministic TPC-H partition into every peer
// (scale factor per whole network), builds the Table 4 indexes,
// publishes index entries into the overlay, and takes an initial cloud
// backup of every peer — the paper's §6.1.5 loading process.
func (n *Network) LoadTPCH(sf float64) error {
	peers := n.Peers()
	for i, p := range peers {
		sc := tpch.Scale{ScaleFactor: sf, Peer: i, NumPeers: len(peers), NationKey: -1}
		if err := tpch.Generate(p.DB(), sc); err != nil {
			return err
		}
		if err := p.PublishIndexes(n.cfg.RangeIndexColumns); err != nil {
			return err
		}
		if err := p.Backup(); err != nil {
			return err
		}
		p.MarkRefreshed()
	}
	return nil
}

// Query submits a SQL query at the i-th peer.
func (n *Network) Query(i int, sql string, opts QueryOptions) (*engine.QueryResult, error) {
	n.mu.RLock()
	if i < 0 || i >= len(n.peers) {
		n.mu.RUnlock()
		return nil, fmt.Errorf("bestpeer: no peer %d", i)
	}
	p := n.peers[i]
	n.mu.RUnlock()
	return p.Query(sql, opts.User, opts.Strategy, opts.Engine)
}

// EnableServing attaches a serving tier (session multiplexing, weighted
// admission, versioned result cache) to every current peer with the
// given config; peers joining or replacing failed ones later inherit
// it. Without this call no serving verb is registered and nothing in
// the query path changes.
func (n *Network) EnableServing(cfg serving.Config) {
	if cfg.Versions == nil {
		// Queries fan out across peers, so a cached result must be keyed
		// by the whole network's version sum: DML at any data owner
		// invalidates, not just at the serving peer.
		cfg.Versions = n.ClusterVersions
	}
	if cfg.TableVersions == nil {
		// Precise stamping: per-table version vectors summed across the
		// cluster, so DML against one table leaves results over other
		// tables cached (the cluster sum would invalidate everything).
		cfg.TableVersions = n.ClusterTableVersions
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.servingCfg = cfg
	n.servers = make(map[string]*serving.Server, len(n.peers))
	for _, p := range n.peers {
		n.servers[p.ID()] = p.StartServing(cfg)
	}
}

// ServingServer returns the serving tier attached at the peer with this
// identity (nil before EnableServing or for unknown peers).
func (n *Network) ServingServer(id string) *serving.Server {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.servers[id]
}

// ServingClient joins a fresh client endpoint named name into the
// message substrate and binds a session client to the i-th peer's
// serving tier. The caller still has to Open the session.
func (n *Network) ServingClient(name string, i int) *serving.Client {
	return serving.NewClient(n.Net.Join(name), n.Peer(i).ID())
}

// ClusterVersions sums every live peer's (schema, data) versions: the
// version pair a network-wide result cache entry must be stamped with
// so any peer's DDL or DML invalidates it. Serving handler goroutines
// call this on every cacheable query, concurrently with failover and
// AddPeer — it reads a snapshot of the topology, never the live slice.
func (n *Network) ClusterVersions() (schema, data uint64) {
	for _, p := range n.Peers() {
		s, d := p.DB().Versions()
		schema += s
		data += d
	}
	return schema, data
}

// ClusterTableVersions sums, across every peer, the schema version and
// the per-table data versions of exactly the given tables. The serving
// result cache stamps entries with this vector so DML against one table
// only invalidates results that actually read it.
func (n *Network) ClusterTableVersions(tables []string) (schema uint64, data []uint64) {
	data = make([]uint64, len(tables))
	for _, p := range n.Peers() {
		s, vec := p.DB().VersionVector(tables)
		schema += s
		for i, v := range vec {
			data[i] += v
		}
	}
	return schema, data
}

// EnableHeatMitigation closes the heat loop: the bootstrap's Algorithm 1
// daemon gains a rebalance action that, on a sustained index-serving
// hotspot, replicates the hot key range from its overlay owner onto k
// neighbouring peers and broadcasts a heat advisory so query fan-out
// dispatches to the saturated owner last. The overlay coordinator also
// starts weighting its balance passes by the collector's per-peer index
// heat instead of raw item counts. Everything tears down again when the
// heat subsides. Without this call nothing in the query or maintenance
// path changes — detection stays detection.
func (n *Network) EnableHeatMitigation(k int) {
	if k < 1 {
		k = 2
	}
	n.Overlay.SetHeatSource(n.Bootstrap.Collector().PeerIndexHeat)
	n.Bootstrap.SetRebalanceHandler(&heatResponder{n: n, k: k})
}

// SetLocatorCache flips every current peer's index-entry cache. The
// flash-crowd benchmarks disable it so each query's index lookups hit
// the overlay (the funnel mitigation relieves); production leaves it on.
func (n *Network) SetLocatorCache(enabled bool) {
	for _, p := range n.Peers() {
		p.Locator().SetCache(enabled)
	}
}

// heatResponder implements bootstrap.RebalanceHandler over the overlay
// coordinator's hot-range replication.
type heatResponder struct {
	n *Network
	k int
}

// Rebalance replicates the hot range onto k neighbours. Re-invoked
// every epoch the range stays hot; the re-push revalidates holders.
func (h *heatResponder) Rebalance(r bootstrap.HotRange) (string, error) {
	owners, installed, err := h.n.Overlay.ReplicateRange(
		baton.KeyRange{Lo: baton.Key(r.Lo), Hi: baton.Key(r.Hi)}, h.k)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("replicated %d owner range(s) onto %d holder(s)", owners, installed), nil
}

// Release tears every hot-range replica down.
func (h *heatResponder) Release() (string, error) {
	if err := h.n.Overlay.ClearReplicas(); err != nil {
		return "", err
	}
	return "replicas dropped", nil
}

// CrashPeer injects a crash: the cloud instance stops responding and
// the peer becomes unreachable, exactly what the bootstrap's monitoring
// daemon detects.
func (n *Network) CrashPeer(id string) error {
	if err := n.Provider.Crash(id); err != nil {
		return err
	}
	n.Net.SetDown(id, true)
	return nil
}

// ReportTelemetry pushes one telemetry delta report from every live
// peer to the bootstrap's collector. Unreachable peers are skipped —
// their silence is itself the signal (last-report age grows and other
// peers' sender-side RPC stats report the failures).
func (n *Network) ReportTelemetry() {
	for _, p := range n.Peers() {
		_ = p.ReportTelemetry()
	}
}

// StartTelemetryReporters launches every peer's epoch reporter loop and
// returns a single stop function for all of them.
func (n *Network) StartTelemetryReporters(interval time.Duration) (stop func()) {
	peers := n.Peers()
	stops := make([]func(), 0, len(peers))
	for _, p := range peers {
		stops = append(stops, p.StartTelemetryReporter(interval))
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// RunMaintenance executes one epoch of the bootstrap's Algorithm 1
// daemon (monitoring, fail-over, auto-scaling, resource release,
// notifications), advancing the cloud's virtual clock.
func (n *Network) RunMaintenance(epoch time.Duration) error {
	n.Provider.AdvanceClock(epoch)
	return n.Bootstrap.RunMaintenanceEpoch(epoch)
}

// failover is the bootstrap's fail-over hook: launch a replacement
// instance, restore the database from the latest backup, take over the
// overlay position, and republish indexes.
func (n *Network) failover(failedID string) (string, ed25519.PublicKey, error) {
	n.mu.Lock()
	n.nextRepl++
	newID := fmt.Sprintf("%s-r%d", failedID, n.nextRepl)
	n.mu.Unlock()
	p, pub, err := peer.Recover(failedID, newID, n.env, n.cfg.RangeIndexColumns)
	if err != nil {
		return "", nil, err
	}
	n.mu.Lock()
	for i, old := range n.peers {
		if old.ID() == failedID {
			n.peers[i] = p
			break
		}
	}
	delete(n.peersByID, failedID)
	n.peersByID[newID] = p
	var oldSrv *serving.Server
	var tiers []*serving.Server
	if n.servers != nil {
		// The failed tier's sessions die with its endpoint; attach a
		// fresh tier at the replacement.
		oldSrv = n.servers[failedID]
		delete(n.servers, failedID)
		n.servers[newID] = p.StartServing(n.servingCfg)
		for _, s := range n.servers {
			tiers = append(tiers, s)
		}
	}
	n.mu.Unlock()
	// Close and invalidate outside the lock: both take serving-tier
	// locks that handler goroutines hold while serving queries. A
	// restore can rewind the data version sum (the backup predates
	// recent mutations), which the lazy per-lookup version check cannot
	// detect — drop every cached result on every peer eagerly instead.
	if oldSrv != nil {
		oldSrv.Close()
	}
	for _, s := range tiers {
		s.InvalidateCache()
	}
	return newID, pub, nil
}
