package bestpeer

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bestpeer/internal/erp"
	"bestpeer/internal/peer"
	"bestpeer/internal/pnet"
	"bestpeer/internal/schemamap"
	"bestpeer/internal/serving"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// chaosSeed fixes every fault decision in the system-level chaos suite.
const chaosSeed = 42

// TestChaosPeerDiesMidFanout: a peer whose link dies while fan-out
// queries are in flight must fail those queries with typed errors —
// never a panic, never a hang — and the network must answer correctly
// again the moment the link heals, with no restart or failover needed.
func TestChaosPeerDiesMidFanout(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.002)
	victim := n.Peer(2).ID()

	want, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	sever := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				_, err := n.Query(w%2, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
				select {
				case <-sever:
					// Degraded network: errors are expected; panics and
					// hangs are the failure mode under test.
					_ = err
					return
				default:
				}
				if err != nil {
					t.Errorf("worker %d query %d before fault: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond) // queries are mid-flight
	n.Net.SetFaultPlan(pnet.NewFaultPlan(chaosSeed).Error(victim, "", 1))
	close(sever)
	wg.Wait()

	// With the victim's link dead, queries over its scope fail typed.
	if _, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{}); err == nil {
		t.Fatal("query succeeded with a participant's link dead")
	}

	// Heal: the same network, no failover, answers bit-identically.
	n.Net.SetFaultPlan(nil)
	after, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	if err != nil {
		t.Fatalf("query after heal: %v", err)
	}
	if want.Result.Rows[0][0].AsInt() != after.Result.Rows[0][0].AsInt() {
		t.Errorf("count changed across fault: %v -> %v",
			want.Result.Rows[0][0], after.Result.Rows[0][0])
	}
}

// TestChaosRebalanceMidFanout: BATON rebalancing passes run while
// fan-out queries are in flight — with locator caches off so every
// query walks the overlay the rebalance is mutating. Index items move
// between nodes atomically per key, so a query either answers exactly
// right or fails typed during the hand-off window; a wrong answer, a
// panic, or a hang is the failure mode under test.
func TestChaosRebalanceMidFanout(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.002)
	n.SetLocatorCache(false)

	want, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantCount := want.Result.Rows[0][0].AsInt()

	const workers = 4
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			strategies := []peer.Strategy{peer.StrategyBasic, peer.StrategyParallel}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				res, err := n.Query(w%4, `SELECT COUNT(*) FROM lineitem`, QueryOptions{
					Strategy: strategies[i%len(strategies)],
				})
				if err != nil {
					// Transient unavailability while index items are in
					// hand-off is acceptable; a wrong answer is not.
					continue
				}
				if got := res.Result.Rows[0][0].AsInt(); got != wantCount {
					t.Errorf("worker %d query %d: count %d during rebalance, want %d", w, i, got, wantCount)
					return
				}
			}
		}()
	}

	// Rebalance passes racing the fan-out above: adjacent boundary
	// shifts and global leaf relocations back to back.
	for i := 0; i < 5; i++ {
		if _, err := n.Overlay.BalanceAdjacent(); err != nil {
			t.Logf("balance pass %d: %v", i, err)
		}
		if _, err := n.Overlay.GlobalRebalance(); err != nil {
			t.Logf("global pass %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()

	// Quiesced overlay answers bit-identically.
	after, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Result.Rows[0][0].AsInt(); got != wantCount {
		t.Errorf("count after rebalancing = %d, want %d", got, wantCount)
	}
}

// TestChaosRetriesHealTransientDrops: a lossy (but not dead) network
// is exactly what the idempotent-retry policy exists for — fan-out
// queries over a seeded 25%-drop link must still succeed without the
// caller seeing any failure, and the retries must be visible in the
// transport's telemetry.
func TestChaosRetriesHealTransientDrops(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.002)
	victim := n.Peer(2).ID()
	n.Net.SetCallPolicy(pnet.CallPolicy{Timeout: 5 * time.Second, MaxAttempts: 5, Backoff: time.Millisecond})
	n.Net.SetFaultPlan(pnet.NewFaultPlan(chaosSeed).Drop(victim, "", 0.25))

	ok := 0
	for i := 0; i < 10; i++ {
		if _, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{}); err == nil {
			ok++
		}
	}
	// P(5 consecutive drops) is under 0.1%; nearly every query must
	// survive the lossy link. (A few calls in the path are mutations and
	// not retried, so allow a small number of failures.)
	if ok < 7 {
		t.Fatalf("%d/10 queries succeeded over a 25%% drop link with retries", ok)
	}
}

// TestChaosFailoverOnInjectedFaults: the acceptance scenario tying the
// fault harness to the monitoring plane — a peer whose process is
// wedged (every inbound RPC fails, but the cloud instance looks
// healthy) must be failed over by the maintenance daemon on the
// strength of other peers' sender-side telemetry alone.
func TestChaosFailoverOnInjectedFaults(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.002)
	victim := n.Peer(2).ID()

	// Baseline epoch: everyone reports, the victim gets a health window.
	n.ReportTelemetry()
	if _, ok := n.Bootstrap.Collector().Health(victim); !ok {
		t.Fatal("victim has no telemetry window before the fault")
	}

	// Wedge the victim: its instance stays healthy in the cloud's eyes,
	// but every call to it fails at the transport.
	n.Net.SetFaultPlan(pnet.NewFaultPlan(chaosSeed).Error(victim, "", 1))
	for i := 0; i < 12; i++ {
		// Expected to fail; each failure is an observed call to the victim
		// in the senders' RPC stats.
		_, _ = n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	}
	n.ReportTelemetry()

	// The evidence is absorbed; heal the link so the failover's restore
	// machinery is not itself fighting the fault plan.
	n.Net.SetFaultPlan(nil)
	if err := n.RunMaintenance(time.Minute); err != nil {
		t.Fatal(err)
	}

	var note string
	for _, e := range n.Bootstrap.Events() {
		if e.Kind == "failover" && e.Peer == victim && strings.Contains(e.Note, "rpc_failure_rate") {
			note = e.Note
		}
	}
	if note == "" {
		t.Fatalf("no telemetry-attributed failover for %s: %+v", victim, n.Bootstrap.Events())
	}
	if n.PeerByID(victim) != nil {
		t.Error("wedged peer still resolvable after failover")
	}
	found := false
	for _, id := range n.Bootstrap.Peers() {
		if strings.HasPrefix(id, victim+"-r") {
			found = true
		}
	}
	if !found {
		t.Errorf("no replacement peer in %v", n.Bootstrap.Peers())
	}
	if _, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{}); err != nil {
		t.Fatalf("query after failover: %v", err)
	}
}

// TestChaosIngestDuringServing races the continuous-ingest pipeline
// (ERP mutations streamed as CDC deltas through peer.SyncData, applied
// as atomic batches on the peer database) against live serving traffic:
// sessions issuing cacheable fan-out queries on an unrelated table plus
// direct queries over the ingested one. Run under -race this pins the
// loader's locking discipline (merges go through DB.Atomic, never bare
// table writes); the end-state assertions pin correctness: the ingested
// table converges to the production system, and cache entries over the
// unrelated table survive every round of DML thanks to per-table
// version stamping.
func TestChaosIngestDuringServing(t *testing.T) {
	n := newLoadedNetwork(t, 3, 0.002)
	n.EnableServing(serving.Config{})

	sys := erp.NewSystem("SAP")
	local := &sqldb.Schema{Table: "vbak", Columns: []sqldb.Column{
		{Name: "price", Kind: sqlval.KindFloat},
		{Name: "id", Kind: sqlval.KindInt},
	}}
	if err := sys.CreateTable(local); err != nil {
		t.Fatal(err)
	}
	mapping := &schemamap.Mapping{System: "SAP", Tables: []schemamap.TableMapping{{
		LocalTable: "vbak", GlobalTable: "orders",
		Columns: []schemamap.ColumnMapping{
			{Local: "id", Global: "o_orderkey"},
			{Local: "price", Global: "o_totalprice"},
		},
	}}}
	ingester := n.Peer(0)
	if err := ingester.AttachProduction(sys, mapping); err != nil {
		t.Fatal(err)
	}
	// Business keys far above the TPC-H order keys already loaded.
	const base = 1 << 30
	next := base
	live := 0
	for ; next < base+20; next++ {
		if err := sys.Insert("vbak", sqlval.Row{sqlval.Float(1), sqlval.Int(int64(next))}); err != nil {
			t.Fatal(err)
		}
		live++
	}
	if _, err := ingester.SyncData(); err != nil {
		t.Fatal(err)
	}

	// Warm a lineitem entry at a serving tier that is NOT the ingesting
	// peer; ingest churns only orders, so this entry must keep hitting.
	warm := n.ServingClient("ingest-warm", 1)
	if err := warm.Open("", serving.ClassInteractive, ""); err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	const unrelated = `SELECT COUNT(*) FROM lineitem`
	if _, err := warm.Query(unrelated, serving.CacheUse); err != nil {
		t.Fatal(err)
	}
	if out, err := warm.Query(unrelated, serving.CacheUse); err != nil || !out.CacheHit {
		t.Fatalf("warm-up hit failed: hit=%v err=%v", out.CacheHit, err)
	}

	stop := make(chan struct{})
	ready := make(chan struct{}, 3)
	var wg sync.WaitGroup
	var unrelatedHits, unrelatedMisses atomic.Int64
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := n.ServingClient(fmt.Sprintf("ingest-client-%d", c), c)
			if err := cl.Open("", serving.ClassInteractive, ""); err != nil {
				t.Errorf("client %d open: %v", c, err)
				return
			}
			defer cl.Close()
			ready <- struct{}{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					out, err := cl.Query(unrelated, serving.CacheUse)
					if err != nil {
						if !serving.Overloaded(err) {
							t.Errorf("client %d unrelated query: %v", c, err)
							return
						}
						continue
					}
					if out.CacheHit {
						unrelatedHits.Add(1)
					} else {
						unrelatedMisses.Add(1)
					}
				} else {
					// Reads racing the atomic ingest batches.
					if _, err := cl.Query(`SELECT COUNT(*) FROM orders`, serving.CacheUse); err != nil && !serving.Overloaded(err) {
						t.Errorf("client %d orders query: %v", c, err)
						return
					}
				}
			}
		}(c)
	}

	// Every client is open and querying before the churn begins, so the
	// ingest rounds genuinely race the serving traffic.
	for c := 0; c < 3; c++ {
		<-ready
	}

	// Ingest loop: every round mutates production and runs one CDC sync
	// concurrently with the query traffic above.
	cdcPasses := 0
	for round := 0; round < 25; round++ {
		for k := 0; k < 4; k++ {
			if err := sys.Insert("vbak", sqlval.Row{sqlval.Float(float64(round)), sqlval.Int(int64(next))}); err != nil {
				t.Fatal(err)
			}
			next++
			live++
		}
		if round%3 == 1 {
			victim := base + round
			if _, err := sys.Exec(fmt.Sprintf(`DELETE FROM vbak WHERE id = %d`, victim)); err != nil {
				t.Fatal(err)
			}
			live--
		}
		d, err := ingester.SyncData()
		if err != nil {
			t.Fatalf("round %d: sync: %v (delta %+v)", round, err, d)
		}
		if d.Events > 0 {
			cdcPasses++
		}
	}
	close(stop)
	wg.Wait()

	if cdcPasses == 0 {
		t.Fatal("no sync pass consumed CDC events; ingest ran on snapshots only")
	}
	// Unrelated-table entries survived the orders churn: hits dominate
	// (the only allowed misses are warm-ups on each client's tier).
	if unrelatedHits.Load() == 0 {
		t.Fatal("no cache hits on the unrelated table during ingest")
	}
	if m := unrelatedMisses.Load(); m > 3 {
		t.Fatalf("unrelated-table entries invalidated %d times during orders-only ingest", m)
	}

	// Convergence: the ingested table matches production exactly.
	res, err := n.Query(1, fmt.Sprintf(`SELECT COUNT(*) FROM orders WHERE o_orderkey >= %d`, base), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Result.Rows[0][0].AsInt(); got != int64(live) {
		t.Fatalf("ingested rows = %d, want %d", got, live)
	}
}
