package bestpeer

import (
	"strings"
	"sync"
	"testing"
	"time"

	"bestpeer/internal/peer"
	"bestpeer/internal/pnet"
)

// chaosSeed fixes every fault decision in the system-level chaos suite.
const chaosSeed = 42

// TestChaosPeerDiesMidFanout: a peer whose link dies while fan-out
// queries are in flight must fail those queries with typed errors —
// never a panic, never a hang — and the network must answer correctly
// again the moment the link heals, with no restart or failover needed.
func TestChaosPeerDiesMidFanout(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.002)
	victim := n.Peer(2).ID()

	want, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	sever := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				_, err := n.Query(w%2, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
				select {
				case <-sever:
					// Degraded network: errors are expected; panics and
					// hangs are the failure mode under test.
					_ = err
					return
				default:
				}
				if err != nil {
					t.Errorf("worker %d query %d before fault: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond) // queries are mid-flight
	n.Net.SetFaultPlan(pnet.NewFaultPlan(chaosSeed).Error(victim, "", 1))
	close(sever)
	wg.Wait()

	// With the victim's link dead, queries over its scope fail typed.
	if _, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{}); err == nil {
		t.Fatal("query succeeded with a participant's link dead")
	}

	// Heal: the same network, no failover, answers bit-identically.
	n.Net.SetFaultPlan(nil)
	after, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	if err != nil {
		t.Fatalf("query after heal: %v", err)
	}
	if want.Result.Rows[0][0].AsInt() != after.Result.Rows[0][0].AsInt() {
		t.Errorf("count changed across fault: %v -> %v",
			want.Result.Rows[0][0], after.Result.Rows[0][0])
	}
}

// TestChaosRebalanceMidFanout: BATON rebalancing passes run while
// fan-out queries are in flight — with locator caches off so every
// query walks the overlay the rebalance is mutating. Index items move
// between nodes atomically per key, so a query either answers exactly
// right or fails typed during the hand-off window; a wrong answer, a
// panic, or a hang is the failure mode under test.
func TestChaosRebalanceMidFanout(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.002)
	n.SetLocatorCache(false)

	want, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantCount := want.Result.Rows[0][0].AsInt()

	const workers = 4
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			strategies := []peer.Strategy{peer.StrategyBasic, peer.StrategyParallel}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				res, err := n.Query(w%4, `SELECT COUNT(*) FROM lineitem`, QueryOptions{
					Strategy: strategies[i%len(strategies)],
				})
				if err != nil {
					// Transient unavailability while index items are in
					// hand-off is acceptable; a wrong answer is not.
					continue
				}
				if got := res.Result.Rows[0][0].AsInt(); got != wantCount {
					t.Errorf("worker %d query %d: count %d during rebalance, want %d", w, i, got, wantCount)
					return
				}
			}
		}()
	}

	// Rebalance passes racing the fan-out above: adjacent boundary
	// shifts and global leaf relocations back to back.
	for i := 0; i < 5; i++ {
		if _, err := n.Overlay.BalanceAdjacent(); err != nil {
			t.Logf("balance pass %d: %v", i, err)
		}
		if _, err := n.Overlay.GlobalRebalance(); err != nil {
			t.Logf("global pass %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()

	// Quiesced overlay answers bit-identically.
	after, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Result.Rows[0][0].AsInt(); got != wantCount {
		t.Errorf("count after rebalancing = %d, want %d", got, wantCount)
	}
}

// TestChaosRetriesHealTransientDrops: a lossy (but not dead) network
// is exactly what the idempotent-retry policy exists for — fan-out
// queries over a seeded 25%-drop link must still succeed without the
// caller seeing any failure, and the retries must be visible in the
// transport's telemetry.
func TestChaosRetriesHealTransientDrops(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.002)
	victim := n.Peer(2).ID()
	n.Net.SetCallPolicy(pnet.CallPolicy{Timeout: 5 * time.Second, MaxAttempts: 5, Backoff: time.Millisecond})
	n.Net.SetFaultPlan(pnet.NewFaultPlan(chaosSeed).Drop(victim, "", 0.25))

	ok := 0
	for i := 0; i < 10; i++ {
		if _, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{}); err == nil {
			ok++
		}
	}
	// P(5 consecutive drops) is under 0.1%; nearly every query must
	// survive the lossy link. (A few calls in the path are mutations and
	// not retried, so allow a small number of failures.)
	if ok < 7 {
		t.Fatalf("%d/10 queries succeeded over a 25%% drop link with retries", ok)
	}
}

// TestChaosFailoverOnInjectedFaults: the acceptance scenario tying the
// fault harness to the monitoring plane — a peer whose process is
// wedged (every inbound RPC fails, but the cloud instance looks
// healthy) must be failed over by the maintenance daemon on the
// strength of other peers' sender-side telemetry alone.
func TestChaosFailoverOnInjectedFaults(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.002)
	victim := n.Peer(2).ID()

	// Baseline epoch: everyone reports, the victim gets a health window.
	n.ReportTelemetry()
	if _, ok := n.Bootstrap.Collector().Health(victim); !ok {
		t.Fatal("victim has no telemetry window before the fault")
	}

	// Wedge the victim: its instance stays healthy in the cloud's eyes,
	// but every call to it fails at the transport.
	n.Net.SetFaultPlan(pnet.NewFaultPlan(chaosSeed).Error(victim, "", 1))
	for i := 0; i < 12; i++ {
		// Expected to fail; each failure is an observed call to the victim
		// in the senders' RPC stats.
		_, _ = n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	}
	n.ReportTelemetry()

	// The evidence is absorbed; heal the link so the failover's restore
	// machinery is not itself fighting the fault plan.
	n.Net.SetFaultPlan(nil)
	if err := n.RunMaintenance(time.Minute); err != nil {
		t.Fatal(err)
	}

	var note string
	for _, e := range n.Bootstrap.Events() {
		if e.Kind == "failover" && e.Peer == victim && strings.Contains(e.Note, "rpc_failure_rate") {
			note = e.Note
		}
	}
	if note == "" {
		t.Fatalf("no telemetry-attributed failover for %s: %+v", victim, n.Bootstrap.Events())
	}
	if n.PeerByID(victim) != nil {
		t.Error("wedged peer still resolvable after failover")
	}
	found := false
	for _, id := range n.Bootstrap.Peers() {
		if strings.HasPrefix(id, victim+"-r") {
			found = true
		}
	}
	if !found {
		t.Errorf("no replacement peer in %v", n.Bootstrap.Peers())
	}
	if _, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{}); err != nil {
		t.Fatalf("query after failover: %v", err)
	}
}
