// Command bpnet demonstrates the BestPeer++ network lifecycle: peers
// joining with certificates, the BATON overlay growing and shrinking,
// graceful departures, crash + fail-over through the bootstrap's
// Algorithm 1 daemon, and load rebalancing of the overlay.
//
// Usage:
//
//	bpnet [-peers 6]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"bestpeer"
	"bestpeer/internal/tpch"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bpnet:", err)
	os.Exit(1)
}

func main() {
	peers := flag.Int("peers", 6, "number of normal peers")
	flag.Parse()

	net, err := bestpeer.NewNetwork(bestpeer.Config{NumPeers: *peers})
	if err != nil {
		fail(err)
	}
	fmt.Printf("bootstrap up; %d peers joined; overlay members in key order:\n", *peers)
	for _, id := range net.Overlay.Members() {
		st := net.PeerByID(id).Node().State()
		fmt.Printf("  %-9s level=%d number=%d R0=[%.3f,%.3f)\n",
			id, st.Level, st.Number, st.R0.Lo, st.R0.Hi)
	}

	if err := net.LoadTPCH(0.005); err != nil {
		fail(err)
	}
	fmt.Println("\nTPC-H loaded and indexed; every peer backed up to the cloud store")

	// One more business joins at runtime.
	late, err := net.AddPeer("latecomer-01")
	if err != nil {
		fail(err)
	}
	if err := tpch.Generate(late.DB(), tpch.Scale{ScaleFactor: 0.001, NationKey: -1}); err != nil {
		fail(err)
	}
	if err := late.PublishIndexes(nil); err != nil {
		fail(err)
	}
	if err := late.Backup(); err != nil {
		fail(err)
	}
	fmt.Printf("\n%s joined late; overlay size now %d; certificate serial %d verifies: %v\n",
		late.ID(), net.Overlay.Size(), late.Certificate().Serial,
		net.Bootstrap.CA().Verify(late.Certificate()) == nil)

	// Crash one peer and let the maintenance daemon recover it.
	victim := net.Peer(1).ID()
	if err := net.CrashPeer(victim); err != nil {
		fail(err)
	}
	fmt.Printf("\n%s crashed; a query that still targets it fails fast:\n", victim)
	if _, qerr := net.Query(0, "SELECT COUNT(*) FROM orders", bestpeer.QueryOptions{}); qerr != nil {
		fmt.Printf("  query during outage: %v\n", qerr)
	}
	fmt.Println("running maintenance epoch ...")
	if err := net.RunMaintenance(time.Minute); err != nil {
		fail(err)
	}
	fmt.Println("peer list after fail-over:", net.Bootstrap.Peers())

	// Graceful departure.
	leaver := net.Peer(3)
	if err := leaver.Leave(); err != nil {
		fail(err)
	}
	if err := net.RunMaintenance(time.Minute); err != nil {
		fail(err)
	}
	fmt.Printf("\n%s left gracefully; overlay size %d; blacklist released\n",
		leaver.ID(), net.Overlay.Size())

	// Rebalance the overlay's index load.
	shifts, err := net.Overlay.BalanceAdjacent()
	if err != nil {
		fail(err)
	}
	moved, err := net.Overlay.GlobalRebalance()
	if err != nil {
		fail(err)
	}
	fmt.Printf("\noverlay load balancing: %d adjacent boundary shifts, global move=%v\n", shifts, moved)

	fmt.Println("\nadministrative event log:")
	for _, e := range net.Bootstrap.Events() {
		fmt.Printf("  [%6s] %-9s %-14s %s\n", e.At, e.Kind, e.Peer, e.Note)
	}
	fmt.Printf("\ncumulative network traffic: %+v\n", net.Net.Stats())
	if errs := net.Net.PeerErrors(); len(errs) > 0 {
		fmt.Println("per-destination delivery failures (crashes and departures leave tracks):")
		ids := make([]string, 0, len(errs))
		for id := range errs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			s := errs[id]
			fmt.Printf("  %-14s total=%d (down=%d unknown=%d no-handler=%d handler=%d)\n",
				id, s.Total(), s.PeerDown, s.UnknownPeer, s.NoHandler, s.Handler)
		}
	}
	fmt.Printf("pay-as-you-go charges: $%.4f\n", net.Provider.TotalBillUSD())
}
