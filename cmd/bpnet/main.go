// Command bpnet demonstrates the BestPeer++ network lifecycle: peers
// joining with certificates, the BATON overlay growing and shrinking,
// graceful departures, crash + fail-over through the bootstrap's
// Algorithm 1 daemon, and load rebalancing of the overlay.
//
// Usage:
//
//	bpnet [-peers 6] [-fault "drop=peer-02:0.2,delay=5ms"] [-fault-seed 42]
//
// The -fault flag installs a seeded fault plan on the network before
// the demo runs: drop/delay/dup/err rules scoped by peer and verb plus
// peer-set partitions (see pnet.ParseFaultPlan for the grammar). The
// demo then shows the hardened transport absorbing the faults —
// retries healing lossy links, typed errors degrading queries past
// dead peers — with the injected-fault and retry counters printed at
// the end.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"bestpeer"
	"bestpeer/internal/pnet"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bpnet:", err)
	os.Exit(1)
}

func main() {
	peers := flag.Int("peers", 6, "number of normal peers")
	faultSpec := flag.String("fault", "", `fault plan, e.g. "drop=peer-02:0.2,delay=5ms,partition=a+b/c"`)
	faultSeed := flag.Int64("fault-seed", 42, "seed for the fault plan's probability draws")
	flag.Parse()

	// tolerate downgrades a step failure to a printed line when a fault
	// plan is active: injected faults are supposed to break things, and
	// the demo's job is to show the system degrading, not to exit.
	tolerate := func(step string, err error) {
		if err == nil {
			return
		}
		if *faultSpec == "" {
			fail(err)
		}
		fmt.Printf("  %s degraded by faults: %v\n", step, err)
	}

	net, err := bestpeer.NewNetwork(bestpeer.Config{NumPeers: *peers})
	if err != nil {
		fail(err)
	}
	fmt.Printf("bootstrap up; %d peers joined; overlay members in key order:\n", *peers)
	for _, id := range net.Overlay.Members() {
		st := net.PeerByID(id).Node().State()
		fmt.Printf("  %-9s level=%d number=%d R0=[%.3f,%.3f)\n",
			id, st.Level, st.Number, st.R0.Lo, st.R0.Hi)
	}

	if err := net.LoadTPCH(0.005); err != nil {
		fail(err)
	}
	fmt.Println("\nTPC-H loaded and indexed; every peer backed up to the cloud store")

	// Inject faults into the running system (chaos-testing style: the
	// load phase is setup, the lifecycle below is the system under test).
	if *faultSpec != "" {
		plan, err := pnet.ParseFaultPlan(*faultSeed, *faultSpec)
		if err != nil {
			fail(err)
		}
		net.Net.SetFaultPlan(plan)
		fmt.Printf("\nfault plan installed (seed %d): %s\n", *faultSeed, plan)
	}

	// One more business joins at runtime.
	late, err := net.AddPeer("latecomer-01")
	if err != nil {
		fail(err)
	}
	if err := tpch.Generate(late.DB(), tpch.Scale{ScaleFactor: 0.001, NationKey: -1}); err != nil {
		fail(err)
	}
	tolerate("index publish", late.PublishIndexes(nil))
	if err := late.Backup(); err != nil {
		fail(err)
	}
	fmt.Printf("\n%s joined late; overlay size now %d; certificate serial %d verifies: %v\n",
		late.ID(), net.Overlay.Size(), late.Certificate().Serial,
		net.Bootstrap.CA().Verify(late.Certificate()) == nil)

	// Crash one peer and let the maintenance daemon recover it.
	victim := net.Peer(1).ID()
	if err := net.CrashPeer(victim); err != nil {
		fail(err)
	}
	fmt.Printf("\n%s crashed; a query that still targets it fails fast:\n", victim)
	if _, qerr := net.Query(0, "SELECT COUNT(*) FROM orders", bestpeer.QueryOptions{}); qerr != nil {
		fmt.Printf("  query during outage: %v\n", qerr)
	}
	fmt.Println("running maintenance epoch ...")
	tolerate("maintenance epoch", net.RunMaintenance(time.Minute))
	fmt.Println("peer list after fail-over:", net.Bootstrap.Peers())

	// Graceful departure.
	leaver := net.Peer(3)
	tolerate("graceful departure", leaver.Leave())
	tolerate("maintenance epoch", net.RunMaintenance(time.Minute))
	fmt.Printf("\n%s left gracefully; overlay size %d; blacklist released\n",
		leaver.ID(), net.Overlay.Size())

	// Rebalance the overlay's index load.
	shifts, err := net.Overlay.BalanceAdjacent()
	tolerate("adjacent balancing", err)
	moved, err := net.Overlay.GlobalRebalance()
	tolerate("global rebalance", err)
	fmt.Printf("\noverlay load balancing: %d adjacent boundary shifts, global move=%v\n", shifts, moved)

	fmt.Println("\nadministrative event log:")
	for _, e := range net.Bootstrap.Events() {
		fmt.Printf("  [%6s] %-9s %-14s %s\n", e.At, e.Kind, e.Peer, e.Note)
	}
	fmt.Printf("\ncumulative network traffic: %+v\n", net.Net.Stats())
	if errs := net.Net.PeerErrors(); len(errs) > 0 {
		fmt.Println("per-destination delivery failures (crashes and departures leave tracks):")
		ids := make([]string, 0, len(errs))
		for id := range errs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			s := errs[id]
			fmt.Printf("  %-14s total=%d (down=%d unknown=%d no-handler=%d handler=%d)\n",
				id, s.Total(), s.PeerDown, s.UnknownPeer, s.NoHandler, s.Handler)
		}
	}
	fmt.Printf("pay-as-you-go charges: $%.4f\n", net.Provider.TotalBillUSD())

	// Hardened-transport counters: injected faults by kind, recovered
	// handler panics, and per-destination retries/timeouts.
	var faults int64
	var kinds []string
	for _, kind := range []string{"drop", "delay", "duplicate", "error", "partition"} {
		if v := telemetry.Default.Counter("pnet_faults_injected_total", telemetry.L("kind", kind)).Value(); v > 0 {
			faults += v
			kinds = append(kinds, fmt.Sprintf("%s=%d", kind, v))
		}
	}
	var retries, timeouts int64
	members := append([]string{"bootstrap"}, net.Bootstrap.Peers()...)
	for _, id := range members {
		retries += telemetry.Default.Counter("pnet_retries_total", telemetry.L("peer", id)).Value()
		timeouts += telemetry.Default.Counter("pnet_timeouts_total", telemetry.L("peer", id)).Value()
	}
	panics := telemetry.Default.Counter("pnet_handler_panics_total").Value()
	fmt.Printf("hardened transport: faults_injected=%d %v retries=%d timeouts=%d handler_panics=%d\n",
		faults, kinds, retries, timeouts, panics)
}
