// Command bpsql is an interactive SQL shell against a small BestPeer++
// network loaded with TPC-H data. Lines are SELECT statements executed
// through the distributed engines; shell commands start with a dot.
//
// Usage:
//
//	bpsql [-peers 4] [-sf 0.01] [-trace]
//
// With -trace, every query prints its span tree afterwards: engine
// rounds, rpc hops, and remote executions with wall-clock and virtual
// time side by side. The .trace shell command toggles it at runtime.
//
// Shell commands:
//
//	.strategy basic|parallel|mapreduce|adaptive   pick the engine
//	.session open [interactive|batch] | close     route queries through a serving-tier session
//	.cache use|refresh|bypass                     session result-cache mode
//	.explain <sql>                                access plan + engine prediction
//	.plan <sql>                                   per-peer local plans: join order, est vs actual rows
//	.online <aggregate sql>                       progressive online aggregation
//	.trace on|off                                 toggle per-query span trees
//	.metrics                                      dump the telemetry registry
//	.slowlog [threshold]                          show (or re-arm) the slow-query log
//	.peers                                        list peers and row counts
//	.tables                                       list global tables
//	.help                                         this help
//	.quit                                         exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bestpeer"
	"bestpeer/internal/peer"
	"bestpeer/internal/serving"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
)

func main() {
	peers := flag.Int("peers", 4, "number of normal peers")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the whole network")
	trace := flag.Bool("trace", false, "print each query's span tree (wall-clock + virtual time)")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "starting %d-peer BestPeer++ network with TPC-H sf=%g ...\n", *peers, *sf)
	net, err := bestpeer.NewNetwork(bestpeer.Config{
		NumPeers:          *peers,
		RangeIndexColumns: map[string][]string{tpch.LineItem: {"l_shipdate"}},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpsql:", err)
		os.Exit(1)
	}
	if err := net.LoadTPCH(*sf); err != nil {
		fmt.Fprintln(os.Stderr, "bpsql:", err)
		os.Exit(1)
	}
	// The serving tier is always attached so .session works; without an
	// open session queries keep going through the library path.
	net.EnableServing(serving.Config{})
	fmt.Fprintln(os.Stderr, "ready. type .help for shell commands.")

	strategy := peer.StrategyBasic
	var session *serving.Client
	cacheMode := serving.CacheUse
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("bestpeer> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println(".strategy basic|parallel|mapreduce|adaptive | .session open [interactive|batch] | .session close | .cache use|refresh|bypass | .explain <sql> | .plan <sql> | .online <sql> | .trace on|off | .metrics | .slowlog [threshold] | .peers | .tables | .quit")
		case strings.HasPrefix(line, ".session"):
			arg := strings.TrimSpace(strings.TrimPrefix(line, ".session"))
			switch {
			case arg == "close":
				if session == nil {
					fmt.Println("no open session")
					break
				}
				n, err := session.Close()
				if err != nil {
					fmt.Println("error:", err)
					break
				}
				fmt.Printf("session closed after %d queries\n", n)
				session = nil
			case arg == "open" || strings.HasPrefix(arg, "open "):
				class := strings.TrimSpace(strings.TrimPrefix(arg, "open"))
				cl := net.ServingClient("bpsql-shell", 0)
				if err := cl.Open("", class, string(strategy)); err != nil {
					fmt.Println("error:", err)
					break
				}
				session = cl
				fmt.Printf("session %s open (class=%s, strategy=%s); queries now route through the serving tier\n",
					cl.SessionID(), classOrDefault(class), strategy)
			default:
				fmt.Println("usage: .session open [interactive|batch] | .session close")
			}
		case strings.HasPrefix(line, ".cache"):
			arg := strings.TrimSpace(strings.TrimPrefix(line, ".cache"))
			m, err := serving.ParseCacheMode(arg)
			if err != nil {
				fmt.Println("usage: .cache use|refresh|bypass")
				break
			}
			cacheMode = m
			fmt.Println("cache mode =", cacheMode)
		case line == ".metrics":
			fmt.Print(telemetry.Default.Text())
		case strings.HasPrefix(line, ".slowlog"):
			arg := strings.TrimSpace(strings.TrimPrefix(line, ".slowlog"))
			if arg != "" {
				d, err := time.ParseDuration(arg)
				if err != nil {
					fmt.Println("usage: .slowlog [threshold, e.g. 100ms]")
					break
				}
				for _, p := range net.Peers() {
					p.SetSlowQueryThreshold(d)
				}
				fmt.Println("slow-query threshold =", d)
				break
			}
			// The submitting peer fetches every peer's log over the
			// peer.slowlog verb — same path an operator would use against
			// a live network.
			shown := 0
			for _, p := range net.Peers() {
				entries, err := net.Peer(0).FetchSlowLog(p.ID())
				if err != nil {
					fmt.Printf("  %s: error: %v\n", p.ID(), err)
					continue
				}
				for _, e := range entries {
					shown++
					status := "ok"
					if e.Err != "" {
						status = "error: " + e.Err
					}
					fmt.Printf("[%s] %s wall=%v vtime=%v engine=%s peers=%d resubmits=%d %s\n  %s\n",
						e.At.Format("15:04:05.000"), e.Peer, e.Wall, e.VTime,
						e.Engine, e.Peers, e.Resubmissions, status, e.SQL)
					if len(e.OpenSpans) > 0 {
						fmt.Printf("  LEAKED SPANS: %s\n", strings.Join(e.OpenSpans, ", "))
					}
					fmt.Print(e.Trace)
				}
			}
			if shown == 0 {
				fmt.Println("no slow queries captured (threshold:", peer.DefaultSlowQueryThreshold, "— lower it with .slowlog 1ms)")
			}
		case strings.HasPrefix(line, ".trace"):
			switch strings.TrimSpace(strings.TrimPrefix(line, ".trace")) {
			case "on":
				*trace = true
			case "off":
				*trace = false
			default:
				fmt.Println("usage: .trace on|off")
			}
			fmt.Println("trace =", *trace)
		case line == ".peers":
			for _, p := range net.Peers() {
				total := 0
				for _, t := range p.DB().TableNames() {
					total += p.DB().Table(t).NumRows()
				}
				fmt.Printf("  %s  %d rows across %d tables\n", p.ID(), total, len(p.DB().TableNames()))
			}
		case line == ".tables":
			for _, s := range net.Bootstrap.GlobalSchemas() {
				fmt.Printf("  %s (%d columns)\n", s.Table, len(s.Columns))
			}
		case strings.HasPrefix(line, ".explain "):
			sql := strings.TrimSpace(strings.TrimPrefix(line, ".explain "))
			exp, err := net.Peer(0).Explain(sql)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Print(exp)
		case strings.HasPrefix(line, ".plan "):
			sql := strings.TrimSpace(strings.TrimPrefix(line, ".plan "))
			// Each data owner compiles the statement against its own
			// histograms, so join order and est vs actual cardinalities
			// can differ per peer. The submitting peer fetches every
			// peer's rendered plan over the peer.plan verb.
			for _, p := range net.Peers() {
				text, err := net.Peer(0).ExplainLocalPlan(p.ID(), sql)
				if err != nil {
					fmt.Printf("-- %s: error: %v\n", p.ID(), err)
					continue
				}
				fmt.Printf("-- %s\n%s", p.ID(), text)
			}
		case strings.HasPrefix(line, ".online "):
			sql := strings.TrimSpace(strings.TrimPrefix(line, ".online "))
			err := net.Peer(0).QueryOnline(sql, "", 1, func(e peer.OnlineEstimate) bool {
				label := "estimate"
				if e.Final {
					label = "exact"
				}
				cells := make([]string, len(e.Result.Rows))
				for i, row := range e.Result.Rows {
					vals := make([]string, len(row))
					for j, v := range row {
						vals[j] = v.String()
					}
					cells[i] = strings.Join(vals, " | ")
				}
				fmt.Printf("[%d/%d peers, %.0f%% seen] %s: %s\n",
					e.PeersSeen, e.PeersTotal, e.FractionSeen*100, label, strings.Join(cells, " ; "))
				return true
			})
			if err != nil {
				fmt.Println("error:", err)
			}
		case strings.HasPrefix(line, ".strategy"):
			arg := strings.TrimSpace(strings.TrimPrefix(line, ".strategy"))
			switch peer.Strategy(arg) {
			case peer.StrategyBasic, peer.StrategyParallel, peer.StrategyMR, peer.StrategyAdaptive:
				strategy = peer.Strategy(arg)
				fmt.Println("strategy =", strategy)
			default:
				fmt.Println("unknown strategy:", arg)
			}
		case strings.HasPrefix(line, "."):
			fmt.Println("unknown command; .help lists commands")
		default:
			if session != nil {
				out, err := session.Query(line, cacheMode)
				if err != nil {
					fmt.Println("error:", err)
					break
				}
				printRows(out.Result.Columns, out.Result.Rows)
				hit := "miss"
				if out.CacheHit {
					hit = "hit"
				}
				fmt.Printf("-- %d rows, engine=%s, cache=%s, queue wait=%v, virtual latency=%v\n",
					len(out.Result.Rows), out.Engine, hit, out.QueueWait.Round(time.Microsecond), out.VTime)
				break
			}
			res, err := net.Query(0, line, bestpeer.QueryOptions{Strategy: strategy})
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printRows(res.Result.Columns, res.Result.Rows)
			fmt.Printf("-- %d rows, engine=%s, peers=%d, virtual latency=%v\n",
				len(res.Result.Rows), res.Engine, len(res.Peers), res.Cost.Total())
			if *trace {
				if tree := peer.FormatQueryTrace(res); tree != "" {
					fmt.Print(tree)
				}
			}
		}
		fmt.Print("bestpeer> ")
	}
}

// printRows renders a result's columns and first rows.
func printRows(columns []string, rows []sqlval.Row) {
	fmt.Println(strings.Join(columns, " | "))
	const maxRows = 40
	for i, row := range rows {
		if i >= maxRows {
			fmt.Printf("... (%d more rows)\n", len(rows)-maxRows)
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
}

// classOrDefault renders an admission class name ("" = interactive).
func classOrDefault(class string) string {
	if class == "" {
		return serving.ClassInteractive
	}
	return class
}
