// Command bpremote demonstrates BestPeer++'s TCP transport across OS
// processes: one process serves a loaded corporate network's peers on a
// TCP address; another process ships subqueries to them over the wire.
//
// Terminal 1:
//
//	bpremote -serve 127.0.0.1:7420 -peers 4 -sf 0.01
//
// Terminal 2:
//
//	bpremote -connect 127.0.0.1:7420 -peer peer-00 \
//	    -query "SELECT COUNT(*) FROM lineitem"
//
// With -telemetry, the client fetches the serving process's telemetry
// registry (Prometheus-style text exposition) over the same TCP verb
// surface instead of shipping a query:
//
//	bpremote -connect 127.0.0.1:7420 -peer peer-00 -telemetry
//
// Adding -all fans the telemetry fetch out to every online peer (the
// bootstrap's bootstrap.peers verb lists them) and prints one merged
// exposition with each series labeled by its peer:
//
//	bpremote -connect 127.0.0.1:7420 -telemetry -all
//
// With -session, the client opens a serving-tier session at the target
// peer instead of shipping a raw subquery: the query goes through
// admission control and the result cache, and typed rejections
// (serving.ErrOverloaded) survive the wire. -repeat N issues the query
// N times in the session, showing the cache hit on the repeats:
//
//	bpremote -connect 127.0.0.1:7420 -peer peer-00 -session \
//	    -class interactive -repeat 3 -query "SELECT COUNT(*) FROM lineitem"
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"bestpeer"
	"bestpeer/internal/bootstrap"
	"bestpeer/internal/engine"
	"bestpeer/internal/peer"
	"bestpeer/internal/pnet"
	"bestpeer/internal/serving"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
)

func main() {
	serve := flag.String("serve", "", "serve a network's peers on this TCP address")
	peers := flag.Int("peers", 4, "peers in the served network")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the served network")
	connect := flag.String("connect", "", "address of a serving bpremote process")
	target := flag.String("peer", "peer-00", "data owner peer to query")
	query := flag.String("query", "SELECT COUNT(*) FROM lineitem", "single-table subquery to ship")
	telemetryMode := flag.Bool("telemetry", false, "fetch the remote process's telemetry exposition instead of querying")
	all := flag.Bool("all", false, "with -telemetry: merge every online peer's registry snapshot")
	sessionMode := flag.Bool("session", false, "query through a serving-tier session instead of a raw subquery")
	class := flag.String("class", "interactive", "admission class for -session (interactive|batch)")
	repeat := flag.Int("repeat", 1, "with -session: issue the query this many times")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics on this address")
	flag.Parse()

	if *pprofAddr != "" {
		addr, closeDebug, err := telemetry.StartDebugServer(*pprofAddr, nil)
		if err != nil {
			fatal(err)
		}
		defer closeDebug()
		fmt.Fprintf(os.Stderr, "pprof+metrics on http://%s/debug/pprof/\n", addr)
	}

	switch {
	case *serve != "":
		runServer(*serve, *peers, *sf)
	case *connect != "" && *telemetryMode && *all:
		runTelemetryAll(*connect)
	case *connect != "" && *telemetryMode:
		runTelemetry(*connect, *target)
	case *connect != "" && *sessionMode:
		runSession(*connect, *target, *query, *class, *repeat)
	case *connect != "":
		runClient(*connect, *target, *query)
	default:
		fmt.Fprintln(os.Stderr, "bpremote: pass -serve ADDR or -connect ADDR")
		os.Exit(2)
	}
}

func runServer(addr string, peers int, sf float64) {
	net, err := bestpeer.NewNetwork(bestpeer.Config{
		NumPeers:          peers,
		RangeIndexColumns: map[string][]string{tpch.LineItem: {"l_shipdate"}},
	})
	if err != nil {
		fatal(err)
	}
	if err := net.LoadTPCH(sf); err != nil {
		fatal(err)
	}
	// Attach the serving tier so remote -session clients have a front
	// door; raw subquery and telemetry verbs keep working beside it.
	net.EnableServing(serving.Config{})
	ln, err := net.Net.ListenTCP(addr)
	if err != nil {
		fatal(err)
	}
	defer ln.Close()
	var ids []string
	for _, p := range net.Peers() {
		ids = append(ids, p.ID())
	}
	fmt.Printf("serving %d peers (%s) on %s\n", peers, strings.Join(ids, ", "), ln.Addr())
	fmt.Println("ctrl-c to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func runClient(addr, target, query string) {
	stmt, err := sqldb.ParseSelect(query)
	if err != nil {
		fatal(err)
	}
	clientNet := pnet.NewNetwork()
	clientNet.AddRemotePeer(target, addr)
	client := clientNet.Join("bpremote-client")

	reply, err := client.Call(target, peer.MsgSubQuery,
		engine.SubQueryRequest{Stmt: stmt}, int64(len(query)))
	if err != nil {
		fatal(err)
	}
	res := reply.Payload.(*sqldb.Result)
	fmt.Println(strings.Join(res.Columns, " | "))
	const maxRows = 20
	for i, row := range res.Rows {
		if i >= maxRows {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-maxRows)
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("-- %d rows from %s over TCP (%d bytes scanned remotely)\n",
		len(res.Rows), target, res.Stats.BytesScanned)
}

// runSession opens a serving-tier session at the target peer over TCP
// and issues the query repeat times, printing each round's cache and
// queue-wait outcome. A shed query surfaces the typed overload error.
func runSession(addr, target, query, class string, repeat int) {
	clientNet := pnet.NewNetwork()
	clientNet.AddRemotePeer(target, addr)
	cl := serving.NewClient(clientNet.Join("bpremote-client"), target)
	if err := cl.Open("", class, ""); err != nil {
		fatal(err)
	}
	fmt.Printf("session %s open at %s (class=%s)\n", cl.SessionID(), target, class)
	for i := 0; i < repeat; i++ {
		out, err := cl.Query(query, serving.CacheUse)
		if err != nil {
			if serving.Overloaded(err) {
				fmt.Printf("round %d: shed by admission control: %v\n", i+1, err)
				continue
			}
			fatal(err)
		}
		hit := "miss"
		if out.CacheHit {
			hit = "hit"
		}
		fmt.Printf("round %d: %d rows, engine=%s, cache=%s, queue wait=%v, virtual latency=%v\n",
			i+1, len(out.Result.Rows), out.Engine, hit, out.QueueWait, out.VTime)
	}
	n, err := cl.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("session closed after %d queries\n", n)
}

// runTelemetry asks the serving process for its metrics registry via
// the peer.telemetry verb — the serving process answers with its
// process-wide exposition text, so one fetch covers every peer it
// hosts.
func runTelemetry(addr, target string) {
	clientNet := pnet.NewNetwork()
	clientNet.AddRemotePeer(target, addr)
	client := clientNet.Join("bpremote-client")

	reply, err := client.Call(target, peer.MsgTelemetry, nil, 8)
	if err != nil {
		fatal(err)
	}
	fmt.Print(reply.Payload.(string))
}

// runTelemetryAll asks the bootstrap for the online peer list, fetches
// every peer's full registry snapshot over peer.telemetry.snapshot, and
// merges them into one registry under peer=<id> labels. The exposition
// is deterministically ordered (sorted family names, sorted label
// signatures), so two runs against an idle server print byte-identical
// tables.
func runTelemetryAll(addr string) {
	clientNet := pnet.NewNetwork()
	clientNet.AddRemotePeer("bootstrap", addr)
	client := clientNet.Join("bpremote-client")

	reply, err := client.Call("bootstrap", bootstrap.MsgListPeers, nil, 8)
	if err != nil {
		fatal(err)
	}
	ids := reply.Payload.([]string)
	cluster := telemetry.NewRegistry()
	fetched := 0
	for _, id := range ids {
		clientNet.AddRemotePeer(id, addr)
		rep, err := client.Call(id, peer.MsgTelemetrySnapshot, nil, 8)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpremote: %s: %v (skipped)\n", id, err)
			continue
		}
		snap := rep.Payload.(telemetry.Report)
		if err := cluster.Merge(snap.Delta, telemetry.L("peer", snap.Peer)); err != nil {
			fatal(err)
		}
		fetched++
	}
	fmt.Printf("# merged %d/%d peer snapshots from %s\n", fetched, len(ids), addr)
	fmt.Print(cluster.Text())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bpremote:", err)
	os.Exit(1)
}
