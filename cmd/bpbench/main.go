// Command bpbench regenerates the paper's evaluation (Figs. 6-14) and
// the design-choice ablations, printing each experiment's series.
//
// Usage:
//
//	bpbench [-fig all|6|7|8|9|10|11|12|13|14|ablations|fanout|telemetry|monitor|exec|batch|faults|ingest] [-nodes 10,20,50] [-sf 0.0004]
//
// Five experiments are wall-clock rather than vtime: "fanout" compares
// sequential vs concurrent multi-peer fetch under an injected per-call
// service delay (JSON line for BENCH_fanout.json), "telemetry"
// measures the instrumentation overhead of the metrics/tracing layer on
// the fig-6 workload (JSON line for BENCH_telemetry.json), "monitor"
// measures the monitoring plane — reporter loops plus the bootstrap
// collector — on the same workload (JSON line for BENCH_monitor.json),
// "exec" prices the compile-once execution layer against the
// tree-walking interpreter on the fig-6 benchmark queries (JSON line
// for BENCH_exec.json), "batch" prices the vectorized batch executor
// against the row-compiled closures on the same queries (JSON line
// appended to BENCH_exec.json), "faults" prices the hardened RPC
// path (deadline guard + retry policy) against the bare path on the
// same workload (JSON line for BENCH_faults.json), and "serving"
// saturates the serving tier with 1k+ concurrent client sessions —
// admission, shedding, and the result cache on/off (JSON line for
// BENCH_serving.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bestpeer/internal/bench"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (6..14, 'ablations', 'fanout', or 'all')")
	fanoutPeers := flag.Int("fanout-peers", 8, "data peers for the wall-clock fan-out comparison")
	fanoutDelay := flag.Duration("fanout-delay", 10*time.Millisecond, "per-call service delay for the fan-out comparison")
	telemetryPeers := flag.Int("telemetry-peers", 4, "peers for the telemetry overhead measurement")
	telemetryQueries := flag.Int("telemetry-queries", 50, "queries per timed batch for the telemetry overhead measurement")
	monitorEpoch := flag.Duration("monitor-epoch", 50*time.Millisecond, "report epoch for the monitoring-plane overhead measurement")
	batchSF := flag.Float64("batch-sf", 0.06, "TPC-H scale factor for the batch-vs-closure executor comparison")
	servingPeers := flag.Int("serving-peers", 4, "peers for the serving-tier saturation benchmark")
	servingClients := flag.Int("serving-clients", 1200, "concurrent client sessions for the serving-tier saturation benchmark")
	servingDuration := flag.Duration("serving-duration", 2*time.Second, "per-phase duration for the serving-tier saturation benchmark")
	hotspotQueries := flag.Int("hotspot-queries", 200, "queries per workload for the hotspot detection benchmark")
	ingestRows := flag.Int("ingest-rows", 20000, "production-table rows for the snapshot-vs-CDC ingest comparison")
	ingestRounds := flag.Int("ingest-rounds", 8, "churn+sync rounds for the ingest comparison")
	ingestChurn := flag.Float64("ingest-churn", 0.02, "per-round mutation fraction for the ingest comparison")
	ingestQueries := flag.Int("ingest-queries", 400, "serving queries per phase for the ingest impact measurement")
	zipfSkew := flag.Float64("zipf", tpch.DefaultZipfSkew, "Zipf exponent (>1) of the hotspot benchmark's skewed workload")
	nodes := flag.String("nodes", "10,20,50", "comma-separated cluster sizes")
	sf := flag.Float64("sf", 0.0004, "TPC-H scale factor contributed per node")
	seed := flag.Int64("seed", 1, "throughput simulator seed")
	gb := flag.Float64("gb", 1.0, "virtual data volume per node in GB (0 = real partition size)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics on this address")
	flag.Parse()

	if *pprofAddr != "" {
		addr, closeDebug, err := telemetry.StartDebugServer(*pprofAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: pprof: %v\n", err)
			os.Exit(1)
		}
		defer closeDebug()
		fmt.Fprintf(os.Stderr, "pprof+metrics on http://%s/debug/pprof/\n", addr)
	}

	cfg := bench.Config{PerNodeSF: *sf, Seed: *seed, TargetPerNodeBytes: *gb * 1e9}
	for _, part := range strings.Split(*nodes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bpbench: bad node count %q\n", part)
			os.Exit(2)
		}
		cfg.Nodes = append(cfg.Nodes, n)
	}

	runners := map[string]func(bench.Config) (*bench.Table, error){
		"6": bench.Fig6, "7": bench.Fig7, "8": bench.Fig8, "9": bench.Fig9,
		"10": bench.Fig10, "11": bench.Fig11, "12": bench.Fig12,
		"13": bench.Fig13, "14": bench.Fig14, "ablations": bench.Ablations,
	}

	if *fig == "fanout" {
		r, err := bench.FanoutWallClock(*fanoutPeers, *fanoutDelay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: fanout: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.JSONLine())
		return
	}

	if *fig == "telemetry" {
		r, err := bench.TelemetryOverhead(*telemetryPeers, *telemetryQueries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.JSONLine())
		return
	}

	if *fig == "exec" {
		r, err := bench.ExecCompileSpeedup(*telemetryPeers, *telemetryQueries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: exec: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.JSONLine())
		return
	}

	if *fig == "batch" {
		r, err := bench.BatchExecSpeedup(*batchSF, *telemetryQueries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: batch: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.JSONLine())
		return
	}

	if *fig == "faults" {
		r, err := bench.FaultPathOverhead(*telemetryPeers, *telemetryQueries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: faults: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.JSONLine())
		return
	}

	if *fig == "serving" {
		r, err := bench.ServingSaturation(*servingPeers, *servingClients, *servingDuration)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: serving: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.JSONLine())
		return
	}

	if *fig == "ingest" {
		r, err := bench.IngestComparison(*ingestRows, *ingestRounds, *ingestChurn, *ingestQueries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: ingest: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.JSONLine())
		return
	}

	if *fig == "hotspot" {
		r, err := bench.HotspotDetection(*telemetryPeers, *hotspotQueries, *zipfSkew)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: hotspot: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.JSONLine())
		return
	}

	if *fig == "monitor" {
		r, err := bench.MonitorOverhead(*telemetryPeers, *telemetryQueries, *monitorEpoch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: monitor: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.JSONLine())
		return
	}

	run := func(name string, f func(bench.Config) (*bench.Table, error)) {
		t, err := f(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpbench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
	}

	if *fig == "all" {
		for _, name := range []string{"6", "7", "8", "9", "10", "11", "12", "13", "14", "ablations"} {
			run(name, runners[name])
		}
		return
	}
	f, ok := runners[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "bpbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	run(*fig, f)
}
