// Command bptop is a live cluster dashboard for a BestPeer++ network:
// top(1) for the monitoring plane. It launches an in-process network,
// loads TPC-H, drives a background query workload, and redraws the
// bootstrap collector's per-peer health table every refresh — health
// score, QPS, p99 query latency, error and RPC-failure rates, rows
// scanned, shuffle volume, fan-out queue wait, and last-report age.
//
// Usage:
//
//	bptop [-peers 8] [-sf 0.01] [-report 200ms] [-refresh 500ms]
//	      [-frames 0] [-crash 0] [-mitigate] [-prom]
//
// With -crash D, one peer is crashed after D so the dashboard shows the
// monitoring plane reacting live: the victim's last-report age grows,
// other peers' sender-side RPC failures drag its health score down, and
// the next maintenance epoch fails it over (the event line names the
// signal that fired). With -mitigate, the maintenance daemon answers
// index-heat hotspots by replicating the hot range onto adjacent peers:
// the REPL% column fills in as lookups spread over the holders and a
// rebalance event row names the range. -frames N renders N frames and
// exits, making the dashboard scriptable; -prom dumps the merged
// cluster-wide Prometheus-style exposition on exit.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"time"

	"bestpeer"
	"bestpeer/internal/bootstrap"
	"bestpeer/internal/peer"
	"bestpeer/internal/serving"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
)

func main() {
	peers := flag.Int("peers", 8, "number of normal peers")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the whole network")
	report := flag.Duration("report", 200*time.Millisecond, "telemetry report epoch")
	refresh := flag.Duration("refresh", 500*time.Millisecond, "dashboard refresh interval")
	frames := flag.Int("frames", 0, "render this many frames then exit (0 = until interrupted)")
	crash := flag.Duration("crash", 0, "crash one peer after this long (0 = never)")
	mitigate := flag.Bool("mitigate", false, "replicate hot index ranges onto 2 adjacent peers when detected")
	prom := flag.Bool("prom", false, "print the merged cluster exposition on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /metrics on this address")
	flag.Parse()

	if *pprofAddr != "" {
		addr, closeDebug, err := telemetry.StartDebugServer(*pprofAddr, nil)
		if err != nil {
			fatal(err)
		}
		defer closeDebug()
		fmt.Fprintf(os.Stderr, "pprof+metrics on http://%s/debug/pprof/\n", addr)
	}

	fmt.Fprintf(os.Stderr, "starting %d-peer network with TPC-H sf=%g ...\n", *peers, *sf)
	net, err := bestpeer.NewNetwork(bestpeer.Config{
		NumPeers:          *peers,
		RangeIndexColumns: map[string][]string{tpch.LineItem: {"l_shipdate"}},
	})
	if err != nil {
		fatal(err)
	}
	if err := net.LoadTPCH(*sf); err != nil {
		fatal(err)
	}

	// Serving tier on every peer: worker 0 below drives it through a
	// real session so the dashboard's serving line and SHED% column have
	// live numbers.
	net.EnableServing(serving.Config{})

	// Publish the shipdate stats domain so the workload's window scans
	// attribute into the heat plane — the HEAT column and key-heat bar
	// below stay empty without it.
	shipLo, shipHi := tpch.ShipdateDomain()
	net.Bootstrap.DefineStatsDomain(tpch.LineItem, bootstrap.StatsDomainRecord{
		Columns: []string{"l_shipdate"}, Lo: []float64{shipLo}, Hi: []float64{shipHi},
	})
	if *mitigate {
		net.EnableHeatMitigation(2)
	}

	stopReporters := net.StartTelemetryReporters(*report)
	defer stopReporters()
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Background workload: a few clients rotating over submitting peers
	// and engines, so every peer has traffic to report.
	queries := []string{
		`SELECT COUNT(*) FROM lineitem`,
		tpch.Q1Default(),
		`SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority`,
	}
	strategies := []peer.Strategy{peer.StrategyBasic, peer.StrategyParallel, peer.StrategyAdaptive}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			// Zipfian shipdate windows interleave with the fixed rotation:
			// the skewed key-range traffic the heat bar is there to show.
			zipf := tpch.NewShipdateWorkload(int64(w)+1, true, 7)
			nextQuery := func(i int) string {
				if i%2 == 1 {
					return zipf.Next()
				}
				return queries[(i/2)%len(queries)]
			}
			// Worker 0 is a serving-tier client: one open session against
			// peer 0's front door, so sessions/admission/cache counters
			// move. The rest submit through the library path.
			var session *serving.Client
			if w == 0 {
				session = net.ServingClient("bptop-session", 0)
				if err := session.Open("", serving.ClassInteractive, ""); err != nil {
					session = nil
				}
			}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if session != nil {
					if _, err := session.Query(nextQuery(i), serving.CacheUse); err != nil && !serving.Overloaded(err) {
						// The session dies with its peer on failover; fall
						// back to the library path.
						session = nil
					}
					continue
				}
				at := rng.Intn(*peers)
				if net.PeerByID(net.Peers()[at].ID()) == nil {
					continue
				}
				_, _ = net.Query(at, nextQuery(i), bestpeer.QueryOptions{
					Strategy: strategies[rng.Intn(len(strategies))],
				})
			}
		}(w)
	}

	// Maintenance daemon: Algorithm 1 every refresh, consuming the cloud
	// sim AND the collector's aggregated telemetry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(*refresh)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if err := net.RunMaintenance(*refresh); err != nil {
					fmt.Fprintln(os.Stderr, "maintenance:", err)
				}
			}
		}
	}()

	if *crash > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-done:
				return
			case <-time.After(*crash):
				victim := net.Peers()[*peers/2].ID()
				_ = net.CrashPeer(victim)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*refresh)
	defer tick.Stop()
	start := time.Now()
	rendered := 0
loop:
	for {
		select {
		case <-sig:
			break loop
		case <-tick.C:
			render(net, start)
			rendered++
			if *frames > 0 && rendered >= *frames {
				break loop
			}
		}
	}
	close(done)
	wg.Wait()
	stopReporters()
	if *prom {
		fmt.Print(net.Bootstrap.Collector().ClusterText())
	}
}

// render redraws one dashboard frame: health table on top, the
// bootstrap's most recent events below.
func render(net *bestpeer.Network, start time.Time) {
	c := net.Bootstrap.Collector()
	now := time.Now()
	fmt.Print("\x1b[H\x1b[2J") // home + clear
	fmt.Printf("bptop — %d peers reporting, up %v\n\n",
		len(c.Peers()), now.Sub(start).Round(time.Second))
	fmt.Print(bootstrap.RenderDashboard(c.Healths(), now))
	// Cluster-wide key-space heat: every reporting peer's heat vector
	// summed, sparkline over the BATON key space.
	fmt.Print(bootstrap.RenderHeatBar(c.ClusterHeat()))
	// Compiled-executor summary: all in-process peers share the default
	// registry, so the counters aggregate across the whole network.
	hits := telemetry.Default.Counter("sqldb_plan_cache_hits_total").Value()
	misses := telemetry.Default.Counter("sqldb_plan_cache_misses_total").Value()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses) * 100
	}
	fmt.Printf("\nplan cache: %d hits / %d misses (%.1f%% hit rate), %d exprs compiled, %d plans compiled\n",
		hits, misses, rate,
		telemetry.Default.Counter("sqldb_expr_compiles_total").Value(),
		telemetry.Default.Counter("sqldb_plans_compiled_total").Value())
	// Vectorized-executor summary: batches produced, average rows per
	// batch, selection-bitmap density, row-mode fallbacks, and how well
	// the cost model's scan estimates track actuals (median est/actual).
	batches := telemetry.Default.Counter("sqldb_batches_total").Value()
	brows := telemetry.Default.Counter("sqldb_batch_rows_total").Value()
	rowsPer := 0.0
	if batches > 0 {
		rowsPer = float64(brows) / float64(batches)
	}
	sel := telemetry.Default.Histogram("sqldb_batch_selectivity",
		[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1})
	selDensity := 0.0
	if sel.Count() > 0 {
		selDensity = sel.Sum() / float64(sel.Count()) * 100
	}
	ratio := telemetry.Default.Histogram("sqldb_cost_estimate_ratio",
		[]float64{0.1, 0.25, 0.5, 0.8, 1.25, 2, 4, 10})
	p50, _, _ := ratio.Quantiles()
	fmt.Printf("batch exec: %d batches (%.0f rows avg, %.1f%% sel density), %d batch plans, %d fallbacks, est/actual p50=%.2f\n",
		batches, rowsPer, selDensity,
		telemetry.Default.Counter("sqldb_batch_plans_compiled_total").Value(),
		telemetry.Default.Counter("sqldb_batch_fallbacks_total").Value(), p50)
	// Hardened-transport summary: retries/timeouts summed over every
	// destination the bootstrap knows, faults by the injection counters.
	var retries, timeouts int64
	for _, id := range append([]string{"bootstrap"}, net.Bootstrap.Peers()...) {
		retries += telemetry.Default.Counter("pnet_retries_total", telemetry.L("peer", id)).Value()
		timeouts += telemetry.Default.Counter("pnet_timeouts_total", telemetry.L("peer", id)).Value()
	}
	var faults int64
	for _, kind := range []string{"drop", "delay", "duplicate", "error", "partition"} {
		faults += telemetry.Default.Counter("pnet_faults_injected_total", telemetry.L("kind", kind)).Value()
	}
	fmt.Printf("transport: %d retries, %d timeouts, %d faults injected, %d handler panics\n",
		retries, timeouts, faults,
		telemetry.Default.Counter("pnet_handler_panics_total").Value())
	// Serving-tier summary: sessions, per-class admission outcomes, and
	// the result cache's hit economics.
	var admitted, shed int64
	for _, class := range []string{"interactive", "batch"} {
		admitted += telemetry.Default.Counter("serving_admitted_total", telemetry.L("class", class)).Value()
		shed += telemetry.Default.Counter("serving_shed_total", telemetry.L("class", class)).Value()
	}
	sHits := telemetry.Default.Counter("serving_cache_hits_total").Value()
	sMisses := telemetry.Default.Counter("serving_cache_misses_total").Value()
	sRate := 0.0
	if sHits+sMisses > 0 {
		sRate = float64(sHits) / float64(sHits+sMisses) * 100
	}
	fmt.Printf("serving: %d sessions open (%d total), %d admitted, %d shed, cache %d hits / %d misses (%.1f%% hit rate, %d entries)\n",
		telemetry.Default.Gauge("serving_sessions_open").Value(),
		telemetry.Default.Counter("serving_sessions_opened_total").Value(),
		admitted, shed, sHits, sMisses, sRate,
		telemetry.Default.Gauge("serving_cache_entries").Value())
	events := net.Bootstrap.Events()
	if len(events) > 0 {
		fmt.Println("\nrecent events:")
		from := len(events) - 5
		if from < 0 {
			from = 0
		}
		for _, e := range events[from:] {
			fmt.Printf("  [%v] %-8s %-14s %s\n", e.At.Round(time.Millisecond), e.Kind, e.Peer, e.Note)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bptop:", err)
	os.Exit(1)
}
