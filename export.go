package bestpeer

import (
	"fmt"

	"bestpeer/internal/engine"
	"bestpeer/internal/mapreduce"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// This file implements the paper's §1 escape hatch for "infrequent
// time-consuming analytical tasks": "we provide an interface for
// exporting the data from BestPeer++ to Hadoop and allow users to
// analyze those data using MapReduce". ExportTable ships a global
// table's partitions from every data owner peer into the mounted DFS;
// MapReduceOver then runs arbitrary user MapReduce jobs against the
// exported data.

// Export is one exported table in the DFS.
type Export struct {
	Path    string
	Table   string
	Columns []string
	Rows    int
	// splits remember the per-peer partitioning; MapReduceOver reuses it
	// so map tasks align with the original data placement.
	splits []mapreduce.Split
}

// ExportTable exports every peer's partition of a global table into the
// DFS under /export/<table>. Access control applies: the export runs
// under the given user account ("" = benchmark full-access user).
func (n *Network) ExportTable(table, user string) (*Export, error) {
	if n.MRCluster == nil || n.FS == nil {
		return nil, fmt.Errorf("bestpeer: MapReduce service not mounted")
	}
	n.mu.RLock()
	if len(n.peers) == 0 {
		n.mu.RUnlock()
		return nil, fmt.Errorf("bestpeer: no peers")
	}
	submitter := n.peers[0]
	n.mu.RUnlock()
	schema := submitter.GlobalSchema(table)
	if schema == nil {
		return nil, fmt.Errorf("bestpeer: unknown global table %s", table)
	}
	loc, err := submitter.Locate(table, nil, nil)
	if err != nil {
		return nil, err
	}
	stmt := sqldb.BuildSubQuery(
		sqldb.TableRef{Table: schema.Table, Alias: schema.Table},
		schema.ColumnNames(), nil)
	ts := submitter.QueryTimestamp()
	exp := &Export{
		Path:    "/export/" + schema.Table,
		Table:   schema.Table,
		Columns: schema.ColumnNames(),
	}
	var all []sqlval.Row
	for _, peerID := range loc.Peers {
		res, err := submitter.SubQuery(peerID, engine.SubQueryRequest{Stmt: stmt, User: user, Timestamp: ts})
		if err != nil {
			return nil, err
		}
		exp.Rows += len(res.Rows)
		exp.splits = append(exp.splits, mapreduce.Split{
			Source: peerID, Rows: res.Rows, Bytes: res.Stats.BytesScanned,
		})
		all = append(all, res.Rows...)
	}
	if err := n.FS.Write(exp.Path, all); err != nil {
		return nil, err
	}
	return exp, nil
}

// MapReduceOver runs a user-supplied MapReduce job against an exported
// table: the job's input splits become the export's per-peer
// partitions, and its output (when the job names one) lands in the DFS.
func (n *Network) MapReduceOver(exp *Export, job mapreduce.Job) (*mapreduce.Result, error) {
	if n.MRCluster == nil {
		return nil, fmt.Errorf("bestpeer: MapReduce service not mounted")
	}
	if exp == nil || len(exp.splits) == 0 {
		return nil, fmt.Errorf("bestpeer: empty export")
	}
	job.Splits = exp.splits
	return n.MRCluster.Run(job)
}
