// Adaptivequery: the pay-as-you-go adaptive planner (§5.5) choosing
// between the P2P engine and the MapReduce engine by the cost models of
// Eq. 8 and Eq. 11, across cluster sizes and query weights.
package main

import (
	"fmt"
	"log"

	"bestpeer"
	"bestpeer/internal/engine"
	"bestpeer/internal/peer"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/tpch"
	"bestpeer/internal/vtime"
)

func main() {
	// Scale the cost model so each toy partition represents ~1 GB, the
	// paper's per-node volume — at that scale the engine choice matters.
	for _, nodes := range []int{4, 12} {
		rates := vtime.DefaultRates()
		rates.DiskBytesPerSec /= 2000
		rates.NetBytesPerSec /= 2000
		rates.CPUBytesPerSec /= 2000

		net, err := bestpeer.NewNetwork(bestpeer.Config{NumPeers: nodes, Rates: rates})
		if err != nil {
			log.Fatal(err)
		}
		if err := net.LoadTPCH(0.001 * float64(nodes)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %d nodes ===\n", nodes)

		for _, q := range []struct {
			name string
			sql  string
		}{
			{"Q2 (light aggregate)", tpch.Q2Default()},
			{"Q4 (join+aggregate)", tpch.Q4Default()},
			{"Q5 (multi-join)", tpch.Q5()},
		} {
			// Show the planner's cost comparison explicitly.
			p := net.Peer(0)
			ad := engine.NewAdaptive(p, engine.Options{}, "")
			stmt, err := sqldb.ParseSelect(q.sql)
			if err != nil {
				log.Fatal(err)
			}
			plan, err := ad.Plan(stmt)
			if err != nil {
				log.Fatal(err)
			}
			res, err := net.Query(0, q.sql, bestpeer.QueryOptions{Strategy: peer.StrategyAdaptive})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22s CBP=%.3g CMR=%.3g -> %-22s latency=%v rows=%d\n",
				q.name, plan.CBP, plan.CMR, res.Engine, res.Cost.Total(), len(res.Result.Rows))
		}
		fmt.Println()
	}
}
