// Supplychain: the paper's §6.2 corporate network — suppliers and
// retailers sharing nation-partitioned data under distributed
// role-based access control, with production systems feeding the peers
// through schema mappings and snapshot-differential loading.
package main

import (
	"fmt"
	"log"

	"bestpeer"
	"bestpeer/internal/accesscontrol"
	"bestpeer/internal/erp"
	"bestpeer/internal/schemamap"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/tpch"
)

func main() {
	// The global schema is TPC-H extended with nation-key columns; two
	// supplier peers and two retailer peers each own one nation's data.
	net, err := bestpeer.NewNetwork(bestpeer.Config{
		NumPeers:     4,
		PeerPrefix:   "biz",
		GlobalSchema: tpch.Schemas(true),
	})
	if err != nil {
		log.Fatal(err)
	}

	rangeIdx := map[string][]string{
		tpch.Supplier: {"s_nationkey"}, tpch.PartSupp: {"ps_nationkey"}, tpch.Part: {"p_nationkey"},
		tpch.Customer: {"c_nationkey"}, tpch.Orders: {"o_nationkey"}, tpch.LineItem: {"l_nationkey"},
	}
	for i, p := range net.Peers() {
		tables := tpch.SupplierTables()
		role := "supplier"
		if i >= 2 {
			tables = tpch.RetailerTables()
			role = "retailer"
		}
		sc := tpch.Scale{ScaleFactor: 0.02, Peer: i, NumPeers: 4, NationKey: i, Tables: tables}
		if err := tpch.Generate(p.DB(), sc); err != nil {
			log.Fatal(err)
		}
		if err := p.PublishIndexes(rangeIdx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s joined as %s of nation %d\n", p.ID(), role, i)
	}

	// The service provider defines the standard roles (§6.2.1): the
	// supplier role reads retailer tables, the retailer role reads
	// supplier tables.
	supplierRole := accesscontrol.FullAccess("supplier",
		tpch.SchemaFor(tpch.LineItem, true), tpch.SchemaFor(tpch.Orders, true), tpch.SchemaFor(tpch.Customer, true))
	retailerRole := accesscontrol.FullAccess("retailer",
		tpch.SchemaFor(tpch.Supplier, true), tpch.SchemaFor(tpch.PartSupp, true), tpch.SchemaFor(tpch.Part, true))
	net.Bootstrap.Roles().DefineRole(supplierRole)
	net.Bootstrap.Roles().DefineRole(retailerRole)
	for _, p := range net.Peers() {
		p.ACL().DefineRole(supplierRole)
		p.ACL().DefineRole(retailerRole)
	}
	// User accounts created at one peer broadcast network-wide.
	if err := net.Bootstrap.CreateUser("supplier-analyst", "supplier"); err != nil {
		log.Fatal(err)
	}
	if err := net.Bootstrap.CreateUser("retailer-buyer", "retailer"); err != nil {
		log.Fatal(err)
	}

	// Supplier-side user queries retailer data for nation 2: the
	// nation-key range index routes it to exactly one retailer peer and
	// the single-peer optimization short-circuits the processing.
	res, err := net.Query(0, tpch.RetailerQuery(2), bestpeer.QueryOptions{User: "supplier-analyst"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsupplier-analyst ran the retailer query on nation 2: %d customer groups via %s (engine=%s)\n",
		len(res.Result.Rows), res.Peers, res.Engine)

	// Retailer-side user queries supplier catalogs for nation 1.
	res, err = net.Query(3, tpch.SupplierQuery(1), bestpeer.QueryOptions{User: "retailer-buyer"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retailer-buyer ran the supplier query on nation 1: %d rows via %s\n",
		len(res.Result.Rows), res.Peers)

	// The supplier role has no grant on supplier tables: a supplier
	// user cannot read a competitor's catalog.
	if _, err := net.Query(0, tpch.SupplierQuery(1), bestpeer.QueryOptions{User: "supplier-analyst"}); err != nil {
		fmt.Printf("supplier-analyst denied on supplier tables (as intended): %v\n", err)
	}

	// One retailer attaches its production system: the ERP's local
	// schema differs from the global one; the loader maps and syncs it.
	sys := erp.NewSystem("PeopleSoft")
	local := &sqldb.Schema{Table: "ps_orders", Columns: []sqldb.Column{
		{Name: "order_no", Kind: sqlval.KindInt},
		{Name: "cust_no", Kind: sqlval.KindInt},
		{Name: "amount", Kind: sqlval.KindFloat},
		{Name: "status", Kind: sqlval.KindString},
	}}
	if err := sys.CreateTable(local); err != nil {
		log.Fatal(err)
	}
	mapping := &schemamap.Mapping{System: "PeopleSoft", Tables: []schemamap.TableMapping{{
		LocalTable: "ps_orders", GlobalTable: tpch.Orders,
		Columns: []schemamap.ColumnMapping{
			{Local: "order_no", Global: "o_orderkey"},
			{Local: "cust_no", Global: "o_custkey"},
			{Local: "amount", Global: "o_totalprice"},
			{Local: "status", Global: "o_orderstatus",
				Values: map[string]string{"OPEN": "O", "FULFILLED": "F"}},
		},
	}}}
	retailer := net.Peer(2)
	if err := retailer.AttachProduction(sys, mapping); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		err := sys.Insert("ps_orders", sqlval.Row{
			sqlval.Int(int64(900000 + i)), sqlval.Int(int64(i)),
			sqlval.Float(float64(100 * (i + 1))), sqlval.Str("OPEN"),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	d, err := retailer.SyncData()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninitial ERP load at %s: %+v\n", retailer.ID(), d)

	// Business activity mutates the ERP; the next sync ships only the
	// snapshot differential.
	if _, err := sys.Exec(`UPDATE ps_orders SET status = 'FULFILLED' WHERE order_no = 900001`); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Exec(`DELETE FROM ps_orders WHERE order_no = 900004`); err != nil {
		log.Fatal(err)
	}
	d, err = retailer.SyncData()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after ERP churn: %+v (an update = delete+insert)\n", d)
}
