// Failover: the bootstrap peer's Algorithm 1 maintenance daemon in
// action — a peer crashes, queries over its scope block (strong
// consistency, §3.2), the daemon launches a replacement, restores its
// database from the latest cloud backup and its overlay entries from
// the adjacent replica, and the network resumes with no data loss.
// Auto-scaling on an overloaded peer is shown as well, and a second
// fail-over is driven purely by the monitoring plane's aggregated
// telemetry: the cloud sim insists the instance is healthy, but every
// peer's sender-side RPC stats say nobody can reach it.
package main

import (
	"fmt"
	"log"
	"time"

	"bestpeer"
	"bestpeer/internal/tpch"
)

func main() {
	net, err := bestpeer.NewNetwork(bestpeer.Config{NumPeers: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := net.LoadTPCH(0.01); err != nil {
		log.Fatal(err)
	}

	count := func() int64 {
		res, err := net.Query(0, `SELECT COUNT(*) FROM lineitem`, bestpeer.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return res.Result.Rows[0][0].AsInt()
	}
	before := count()
	fmt.Printf("network of %d peers, %d lineitem rows visible\n", len(net.Peers()), before)

	// Crash a peer: its instance stops answering CloudWatch and its
	// endpoint goes dark.
	victim := net.Peer(2).ID()
	if err := net.CrashPeer(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s crashed\n", victim)
	if _, err := net.Query(0, `SELECT COUNT(*) FROM lineitem`, bestpeer.QueryOptions{}); err != nil {
		fmt.Printf("query over its scope blocked: %v\n", err)
	}

	// One maintenance epoch detects the failure and performs fail-over.
	if err := net.RunMaintenance(time.Minute); err != nil {
		log.Fatal(err)
	}
	after := count()
	fmt.Printf("\nafter one maintenance epoch: %d rows visible (no data lost: %v)\n",
		after, after == before)
	fmt.Println("bootstrap peer list:", net.Bootstrap.Peers())

	// Auto-scaling: a peer reports CPU pressure; the next epoch upgrades
	// its instance type (m1.small -> m1.large, §2.1).
	hot := net.Peers()[0]
	hot.ReportHealth(0.97, 1.0)
	if err := net.RunMaintenance(time.Minute); err != nil {
		log.Fatal(err)
	}
	inst, _ := net.Provider.Instance(hot.ID())
	fmt.Printf("\n%s reported 97%% CPU; instance type is now %s\n", hot.ID(), inst.Type.Name)

	// Telemetry-driven fail-over: peer 1's process wedges — the VM still
	// answers CloudWatch, so the cloud signal never fires. But queries
	// against it fail, the survivors' delta reports carry those
	// sender-side RPC failures to the collector, and the daemon fails the
	// peer over off the aggregated telemetry signal alone.
	wedged := net.Peer(1).ID()
	net.ReportTelemetry() // baseline reports: every peer has a collector window
	net.Net.SetDown(wedged, true)
	fmt.Printf("\n%s wedged (cloud still reports it healthy)\n", wedged)
	for i := 0; i < 12; i++ {
		_, _ = net.Query(0, `SELECT COUNT(*) FROM lineitem`, bestpeer.QueryOptions{})
	}
	net.ReportTelemetry()
	if err := net.RunMaintenance(time.Minute); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nadministrative event log:")
	for _, e := range net.Bootstrap.Events() {
		fmt.Printf("  [%6s] %-9s %-12s %s\n", e.At, e.Kind, e.Peer, e.Note)
	}

	// Queries executed against the replacements match the TPC-H workload.
	res, err := net.Query(0, tpch.Q2Default(), bestpeer.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ2 after recovery: total_price=%.2f\n", res.Result.Rows[0][0].AsFloat())
}
