// Quickstart: build a four-peer BestPeer++ corporate network, load a
// TPC-H partition into every peer, and run distributed queries with the
// different processing strategies.
package main

import (
	"fmt"
	"log"

	"bestpeer"
	"bestpeer/internal/peer"
	"bestpeer/internal/tpch"
)

func main() {
	// A network bundles the simulated cloud provider, the bootstrap
	// peer (certificate authority + maintenance daemon), the BATON
	// overlay, a mounted MapReduce service, and the normal peers.
	net, err := bestpeer.NewNetwork(bestpeer.Config{
		NumPeers:          4,
		RangeIndexColumns: map[string][]string{tpch.LineItem: {"l_shipdate"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network up: bootstrap + %d peers, overlay size %d\n",
		len(net.Peers()), net.Overlay.Size())

	// Load deterministic TPC-H partitions (one per peer), build the
	// secondary indexes, publish index entries into the overlay, and
	// take initial cloud backups.
	if err := net.LoadTPCH(0.01); err != nil {
		log.Fatal(err)
	}
	for _, p := range net.Peers() {
		res, _ := p.DB().Query(`SELECT COUNT(*) FROM lineitem`)
		fmt.Printf("  %s holds %v lineitem rows\n", p.ID(), res.Rows[0][0])
	}

	// A simple aggregate: pushed to every peer as a partial aggregate,
	// merged at the submitting peer.
	res, err := net.Query(0, `SELECT COUNT(*) AS n, SUM(l_extendedprice) AS total FROM lineitem`, bestpeer.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nglobal aggregate: n=%v total=%.2f (engine=%s, %d peers, %v virtual latency, %.4g pay-as-you-go units)\n",
		res.Result.Rows[0][0], res.Result.Rows[0][1].AsFloat(),
		res.Engine, len(res.Peers), res.Cost.Total(), res.PayGoUnits)

	// A selective range query: the l_shipdate range index narrows the
	// peers contacted; the remote scans use local secondary indexes.
	res, err = net.Query(0, tpch.Q1Default(), bestpeer.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1 selection: %d rows via %s index (%v virtual latency)\n",
		len(res.Result.Rows), res.IndexKind, res.Cost.Total())

	// The same multi-join query under each strategy returns identical
	// results with different cost profiles.
	for _, s := range []peer.Strategy{peer.StrategyBasic, peer.StrategyParallel, peer.StrategyMR, peer.StrategyAdaptive} {
		res, err := net.Query(0, tpch.Q5(), bestpeer.QueryOptions{Strategy: s})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q5 via %-9s: %d groups, engine=%s, latency=%v\n",
			s, len(res.Result.Rows), res.Engine, res.Cost.Total())
	}

	fmt.Printf("\nnetwork traffic: %+v\n", net.Net.Stats())
	fmt.Printf("pay-as-you-go bill so far: $%.4f\n", net.Provider.TotalBillUSD())
}
