package bestpeer

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"bestpeer/internal/accesscontrol"
	"bestpeer/internal/engine"
	"bestpeer/internal/erp"
	"bestpeer/internal/mapreduce"
	"bestpeer/internal/peer"
	"bestpeer/internal/pnet"
	"bestpeer/internal/schemamap"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/tpch"
)

// newLoadedNetwork builds a network with TPC-H data and range indexes
// on l_shipdate (the paper's loading configuration).
func newLoadedNetwork(t *testing.T, peers int, sf float64) *Network {
	t.Helper()
	n, err := NewNetwork(Config{
		NumPeers:          peers,
		RangeIndexColumns: map[string][]string{tpch.LineItem: {"l_shipdate"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.LoadTPCH(sf); err != nil {
		t.Fatal(err)
	}
	return n
}

// oracleFor merges every peer's data into one local database.
func oracleFor(t *testing.T, peers int, sf float64) *sqldb.DB {
	t.Helper()
	db := sqldb.NewDB()
	for i := 0; i < peers; i++ {
		sc := tpch.Scale{ScaleFactor: sf, Peer: i, NumPeers: peers, NationKey: -1}
		if err := tpch.Generate(db, sc); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func canonicalRows(rows []sqlval.Row) []string {
	out := make([]string, 0, len(rows))
	for _, row := range rows {
		var sb strings.Builder
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('|')
			}
			if v.Numeric() || v.Kind() == sqlval.KindDate {
				fmt.Fprintf(&sb, "%.4f", v.AsFloat())
			} else {
				sb.WriteString(v.String())
			}
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

func TestEndToEndAllStrategiesMatchOracle(t *testing.T) {
	const peers = 4
	const sf = 0.003
	n := newLoadedNetwork(t, peers, sf)
	oracle := oracleFor(t, peers, sf)

	queries := map[string]string{
		"Q1": tpch.Q1Default(),
		"Q2": tpch.Q2Default(),
		"Q3": tpch.Q3Default(),
		"Q4": tpch.Q4Default(),
		"Q5": tpch.Q5(),
	}
	strategies := []peer.Strategy{peer.StrategyBasic, peer.StrategyParallel, peer.StrategyMR, peer.StrategyAdaptive}
	for name, sql := range queries {
		want, err := oracle.Query(sql)
		if err != nil {
			t.Fatalf("%s oracle: %v", name, err)
		}
		wantC := canonicalRows(want.Rows)
		for _, s := range strategies {
			res, err := n.Query(0, sql, QueryOptions{Strategy: s})
			if err != nil {
				t.Fatalf("%s via %s: %v", name, s, err)
			}
			gotC := canonicalRows(res.Result.Rows)
			if len(gotC) != len(wantC) {
				t.Fatalf("%s via %s: %d rows, want %d", name, s, len(gotC), len(wantC))
			}
			for i := range gotC {
				if gotC[i] != wantC[i] {
					t.Fatalf("%s via %s row %d:\n got  %s\n want %s", name, s, i, gotC[i], wantC[i])
				}
			}
		}
	}
	if stats := n.Net.Stats(); stats.Messages == 0 || stats.BytesSent == 0 {
		t.Error("no network traffic recorded for distributed queries")
	}
}

func TestRangeIndexRestrictsPeers(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.003)
	// Peers hold disjoint key ranges but overlapping shipdates, so a
	// broad date predicate touches all; assert the locator used the
	// range index kind.
	res, err := n.Query(0, tpch.Q1Default(), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexKind != "range" {
		t.Errorf("index kind = %s, want range", res.IndexKind)
	}
}

func TestFailoverRestoresQueryability(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.002)
	before, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	victim := n.Peer(2).ID()
	if err := n.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	// With the peer down, queries over its scope fail fast (remote call
	// errors) — strong consistency admits no partial answers.
	if _, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{}); err == nil {
		t.Fatal("query succeeded against crashed peer's scope")
	}

	if err := n.RunMaintenance(time.Minute); err != nil {
		t.Fatal(err)
	}
	after, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
	if err != nil {
		t.Fatalf("query after fail-over: %v", err)
	}
	if before.Result.Rows[0][0].AsInt() != after.Result.Rows[0][0].AsInt() {
		t.Errorf("row count changed across fail-over: %v -> %v",
			before.Result.Rows[0][0], after.Result.Rows[0][0])
	}
	if n.PeerByID(victim) != nil {
		t.Error("failed peer still resolvable")
	}
	found := false
	for _, id := range n.Bootstrap.Peers() {
		if strings.HasPrefix(id, victim+"-r") {
			found = true
		}
	}
	if !found {
		t.Errorf("no replacement peer in %v", n.Bootstrap.Peers())
	}
}

func TestAccessControlEndToEnd(t *testing.T) {
	n := newLoadedNetwork(t, 2, 0.002)
	// Define a restricted role network-wide and create a user.
	role := accesscontrol.NewRole("analyst",
		accesscontrol.Rule{Table: tpch.LineItem, Column: "l_quantity", Priv: accesscontrol.PrivRead},
		accesscontrol.Rule{Table: tpch.LineItem, Column: "l_extendedprice", Priv: accesscontrol.PrivRead,
			Range: &accesscontrol.ValueRange{Lo: sqlval.Float(0), Hi: sqlval.Float(2000)}},
	)
	n.Bootstrap.Roles().DefineRole(role)
	for _, p := range n.Peers() {
		p.ACL().DefineRole(role)
	}
	if err := n.Bootstrap.CreateUser("alice", "analyst"); err != nil {
		t.Fatal(err)
	}

	// Readable column with range restriction: out-of-range values masked.
	res, err := n.Query(0, `SELECT l_quantity, l_extendedprice FROM lineitem`, QueryOptions{User: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	maskedSome := false
	for _, row := range res.Result.Rows {
		if row[0].IsNull() {
			t.Fatal("fully readable column masked")
		}
		if row[1].IsNull() {
			maskedSome = true
		} else if row[1].AsFloat() > 2000 {
			t.Fatalf("out-of-range value leaked: %v", row[1])
		}
	}
	if !maskedSome {
		t.Error("no values masked despite range restriction")
	}

	// Filtering on an unreadable column is rejected at the data owner.
	if _, err := n.Query(0, `SELECT l_quantity FROM lineitem WHERE l_discount > 0`, QueryOptions{User: "alice"}); err == nil {
		t.Error("filter on unreadable column accepted")
	}
	// Aggregating a range-restricted column is rejected (cannot mask).
	if _, err := n.Query(0, `SELECT SUM(l_extendedprice) FROM lineitem`, QueryOptions{User: "alice"}); err == nil {
		t.Error("aggregate over range-restricted column accepted")
	}
	// Unknown users are rejected.
	if _, err := n.Query(0, `SELECT l_quantity FROM lineitem`, QueryOptions{User: "mallory"}); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestProductionLoaderThroughPeer(t *testing.T) {
	n, err := NewNetwork(Config{NumPeers: 2, GlobalSchema: []*sqldb.Schema{{
		Table: "orders",
		Columns: []sqldb.Column{
			{Name: "o_orderkey", Kind: sqlval.KindInt},
			{Name: "o_totalprice", Kind: sqlval.KindFloat},
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	sys := erp.NewSystem("SAP")
	local := &sqldb.Schema{Table: "vbak", Columns: []sqldb.Column{
		{Name: "price", Kind: sqlval.KindFloat},
		{Name: "id", Kind: sqlval.KindInt},
	}}
	if err := sys.CreateTable(local); err != nil {
		t.Fatal(err)
	}
	mapping := &schemamap.Mapping{System: "SAP", Tables: []schemamap.TableMapping{{
		LocalTable: "vbak", GlobalTable: "orders",
		Columns: []schemamap.ColumnMapping{
			{Local: "id", Global: "o_orderkey"},
			{Local: "price", Global: "o_totalprice"},
		},
	}}}
	p := n.Peer(0)
	if err := p.AttachProduction(sys, mapping); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sys.Insert("vbak", sqlval.Row{sqlval.Float(float64(i) * 10), sqlval.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := p.SyncData()
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 10 {
		t.Fatalf("delta = %+v", d)
	}
	if err := p.PublishIndexes(nil); err != nil {
		t.Fatal(err)
	}
	// The data is now visible network-wide from the other peer.
	res, err := n.Query(1, `SELECT COUNT(*), SUM(o_totalprice) FROM orders`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Rows[0][0].AsInt() != 10 || res.Result.Rows[0][1].AsFloat() != 450 {
		t.Errorf("result = %v", res.Result.Rows[0])
	}
	// Business mutates; refresh propagates the delta.
	if _, err := sys.Exec(`DELETE FROM vbak WHERE id < 5`); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SyncData(); err != nil {
		t.Fatal(err)
	}
	res, err = n.Query(1, `SELECT COUNT(*) FROM orders`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Rows[0][0].AsInt() != 5 {
		t.Errorf("count after refresh = %v", res.Result.Rows[0][0])
	}
}

func TestGracefulLeave(t *testing.T) {
	n := newLoadedNetwork(t, 3, 0.002)
	victim := n.Peer(2)
	all, err := n.Query(0, `SELECT COUNT(*) FROM orders`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	victimCount, err := victim.DB().Query(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Leave(); err != nil {
		t.Fatal(err)
	}
	n.Peer(0).Locator().Invalidate()
	after, err := n.Query(0, `SELECT COUNT(*) FROM orders`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := all.Result.Rows[0][0].AsInt() - victimCount.Rows[0][0].AsInt()
	if after.Result.Rows[0][0].AsInt() != want {
		t.Errorf("count after leave = %v, want %d", after.Result.Rows[0][0], want)
	}
	if len(n.Bootstrap.Peers()) != 2 {
		t.Errorf("bootstrap peers = %v", n.Bootstrap.Peers())
	}
}

func TestSinglePeerOptimizationViaFacade(t *testing.T) {
	// Nation-partitioned supplier/retailer network: each query touches
	// exactly one peer and short-circuits.
	n, err := NewNetwork(Config{
		NumPeers:          2,
		GlobalSchema:      tpch.Schemas(true),
		RangeIndexColumns: map[string][]string{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range n.Peers() {
		sc := tpch.Scale{ScaleFactor: 0.01, Peer: i, NumPeers: 2, NationKey: i, Tables: tpch.SupplierTables()}
		if err := tpch.Generate(p.DB(), sc); err != nil {
			t.Fatal(err)
		}
		if err := p.PublishIndexes(map[string][]string{
			tpch.Supplier: {"s_nationkey"},
			tpch.PartSupp: {"ps_nationkey"},
			tpch.Part:     {"p_nationkey"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := n.Query(0, tpch.SupplierQuery(1), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "single-peer" {
		t.Errorf("engine = %s, want single-peer", res.Engine)
	}
	if len(res.Peers) != 1 || res.Peers[0] != n.Peer(1).ID() {
		t.Errorf("peers = %v", res.Peers)
	}
	// With the optimization disabled, the same query runs the full path.
	res2, err := n.Query(0, tpch.SupplierQuery(1), QueryOptions{
		Engine: engine.Options{DisableSinglePeer: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Engine != "basic" {
		t.Errorf("engine = %s", res2.Engine)
	}
	if len(canonicalRows(res.Result.Rows)) != len(canonicalRows(res2.Result.Rows)) {
		t.Error("optimization changed the result")
	}
}

func TestPayAsYouGoBilling(t *testing.T) {
	n := newLoadedNetwork(t, 2, 0.002)
	if n.Provider.TotalBillUSD() != 0 {
		t.Error("bill nonzero before any clock advance")
	}
	if err := n.RunMaintenance(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	bill := n.Provider.TotalBillUSD()
	if bill <= 0 {
		t.Error("no pay-as-you-go charges accrued")
	}
}

func TestExportAndMapReduceOver(t *testing.T) {
	n := newLoadedNetwork(t, 3, 0.003)
	exp, err := n.ExportTable(tpch.Orders, "")
	if err != nil {
		t.Fatal(err)
	}
	oracle, _ := n.Query(0, `SELECT COUNT(*) FROM orders`, QueryOptions{})
	wantRows := oracle.Result.Rows[0][0].AsInt()
	if int64(exp.Rows) != wantRows {
		t.Fatalf("exported %d rows, want %d", exp.Rows, wantRows)
	}
	// The export is readable from the DFS.
	stored, err := n.FS.Read(exp.Path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(stored)) != wantRows {
		t.Errorf("DFS holds %d rows", len(stored))
	}
	// A raw MapReduce job over the export: count orders per priority.
	prioCol := -1
	for i, c := range exp.Columns {
		if c == "o_orderpriority" {
			prioCol = i
		}
	}
	if prioCol < 0 {
		t.Fatal("no o_orderpriority column in export")
	}
	job := mapreduce.Job{
		Name: "orders-by-priority",
		Map: func(_ string, row sqlval.Row) ([]mapreduce.KV, error) {
			return []mapreduce.KV{{Key: row[prioCol], Row: sqlval.Row{sqlval.Int(1)}}}, nil
		},
		Reduce: func(key sqlval.Value, rows []sqlval.Row) ([]sqlval.Row, error) {
			return []sqlval.Row{{key, sqlval.Int(int64(len(rows)))}}, nil
		},
		Output: "/export/orders-by-priority",
	}
	res, err := n.MapReduceOver(exp, job)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1].AsInt()
	}
	if total != wantRows {
		t.Errorf("MR counted %d, want %d", total, wantRows)
	}
	sqlRes, _ := n.Query(0, `SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority`, QueryOptions{})
	if len(res.Rows) != len(sqlRes.Result.Rows) {
		t.Errorf("MR groups %d != SQL groups %d", len(res.Rows), len(sqlRes.Result.Rows))
	}
	// Guard rails.
	if _, err := n.ExportTable("ghost", ""); err == nil {
		t.Error("export of unknown table succeeded")
	}
	if _, err := n.MapReduceOver(&Export{}, mapreduce.Job{}); err == nil {
		t.Error("MR over empty export succeeded")
	}
}

func TestOnlineAggregationThroughFacade(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.004)
	var last float64
	var finals int
	err := n.Peer(0).QueryOnline(`SELECT SUM(l_quantity) FROM lineitem`, "", 3, func(e peer.OnlineEstimate) bool {
		last = e.Result.Rows[0][0].AsFloat()
		if e.Final {
			finals++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := n.Query(0, `SELECT SUM(l_quantity) FROM lineitem`, QueryOptions{})
	if finals != 1 || last != exact.Result.Rows[0][0].AsFloat() {
		t.Errorf("online final %v != exact %v (finals=%d)", last, exact.Result.Rows[0][0], finals)
	}
}

// TestRemoteSubQueryOverTCP ships a real subquery — AST, bloom filter,
// result rows — across an actual TCP connection between two pnet
// networks, the multi-host deployment path.
func TestRemoteSubQueryOverTCP(t *testing.T) {
	n := newLoadedNetwork(t, 2, 0.002)
	ln, err := n.Net.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	clientNet := pnet.NewNetwork()
	clientNet.AddRemotePeer(n.Peer(0).ID(), ln.Addr())
	client := clientNet.Join("remote-client")

	stmt, err := sqldb.ParseSelect(`SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	req := engine.SubQueryRequest{Stmt: stmt}
	reply, err := client.Call(n.Peer(0).ID(), peer.MsgSubQuery, req, 128)
	if err != nil {
		t.Fatal(err)
	}
	res := reply.Payload.(*sqldb.Result)
	want, err := n.Peer(0).DB().Query(`SELECT COUNT(*) FROM orders WHERE o_totalprice > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Rows)) != want.Rows[0][0].AsInt() {
		t.Errorf("remote rows = %d, want %v", len(res.Rows), want.Rows[0][0])
	}
	for _, row := range res.Rows {
		if row[1].AsFloat() <= 1000 {
			t.Fatalf("predicate leaked across TCP: %v", row)
		}
	}

	// A bloom-filtered subquery crosses the wire too.
	bloom := engine.NewBloom(len(res.Rows))
	var keep []int64
	for i, row := range res.Rows {
		if i%2 == 0 {
			bloom.Add(row[0])
			keep = append(keep, row[0].AsInt())
		}
	}
	req2 := engine.SubQueryRequest{Stmt: stmt, BloomColumn: "o_orderkey", Bloom: bloom}
	reply2, err := client.Call(n.Peer(0).ID(), peer.MsgSubQuery, req2, 128)
	if err != nil {
		t.Fatal(err)
	}
	res2 := reply2.Payload.(*sqldb.Result)
	if len(res2.Rows) < len(keep) || len(res2.Rows) >= len(res.Rows) {
		t.Errorf("bloom over TCP returned %d rows (kept %d of %d)", len(res2.Rows), len(keep), len(res.Rows))
	}
}
