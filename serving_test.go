package bestpeer

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bestpeer/internal/pnet"
	"bestpeer/internal/serving"
	"bestpeer/internal/telemetry"
)

// servingShedTotal sums the class-labeled shed counters in the shared
// process-wide registry.
func servingShedTotal() int64 {
	var total int64
	for _, class := range []string{serving.ClassInteractive, serving.ClassBatch} {
		total += telemetry.Default.Counter("serving_shed_total", telemetry.L("class", class)).Value()
	}
	return total
}

// TestServingEndToEndCacheInvalidation proves the cluster-version
// wiring: a result cached at one peer's serving tier must be
// invalidated by DML executed at a *different* peer's database,
// because fan-out queries read every data owner. A peer-local version
// source would serve the stale count here.
func TestServingEndToEndCacheInvalidation(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.002)
	n.EnableServing(serving.Config{})

	cl := n.ServingClient("cache-client", 0)
	if err := cl.Open("", serving.ClassInteractive, ""); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const sql = `SELECT COUNT(*) FROM lineitem`
	first, err := cl.Query(sql, serving.CacheUse)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("cold query reported a cache hit")
	}
	before := first.Result.Rows[0][0].AsInt()

	warm, err := cl.Query(sql, serving.CacheUse)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("repeat query missed the result cache")
	}
	if got := warm.Result.Rows[0][0].AsInt(); got != before {
		t.Fatalf("cached count %d != executed count %d", got, before)
	}

	// DML at a peer that is NOT the serving peer: peer 2's rows vanish,
	// so the cached cluster-wide count is stale the moment this commits.
	del, err := n.Peer(2).DB().Exec(`DELETE FROM lineitem WHERE l_quantity >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(del.Rows) == 0 && del.Stats.RowsScanned == 0 {
		t.Log("delete touched no rows; peer 2 held no lineitem data at this sf")
	}

	after, err := cl.Query(sql, serving.CacheUse)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Fatal("stale cache hit after remote DML: cluster versions not consulted")
	}
	got := after.Result.Rows[0][0].AsInt()
	if got >= before {
		t.Fatalf("count %d not reduced by remote delete (was %d)", got, before)
	}

	// The fresh result re-caches under the new version pair.
	again, err := cl.Query(sql, serving.CacheUse)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Result.Rows[0][0].AsInt() != got {
		t.Fatalf("re-cached result wrong: hit=%v count=%d want %d",
			again.CacheHit, again.Result.Rows[0][0].AsInt(), got)
	}
}

// TestServingSurvivesFailoverUnderLoad races cacheable serving traffic
// against topology mutations: every CacheUse lookup reads
// ClusterVersions from a handler goroutine while a peer crashes, the
// maintenance daemon replaces it (rewriting the peer slice and serving
// tier map), and a late peer joins. Run under -race this pins the
// snapshot discipline on Network's peer topology; mid-crash query
// errors are expected, but after failover the tier must serve again.
func TestServingSurvivesFailoverUnderLoad(t *testing.T) {
	n := newLoadedNetwork(t, 3, 0.002)
	n.EnableServing(serving.Config{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := n.ServingClient(fmt.Sprintf("failover-client-%d", c), 0)
			if err := cl.Open("", serving.ClassInteractive, ""); err != nil {
				t.Errorf("client %d open: %v", c, err)
				return
			}
			defer cl.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are fine while the crashed data owner is gone;
				// the invariant under test is race-freedom.
				_, _ = cl.Query(`SELECT COUNT(*) FROM lineitem`, serving.CacheUse)
			}
		}(c)
	}

	victim := n.Peer(2).ID()
	if err := n.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	if err := n.RunMaintenance(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Join a fresh peer after the overlay is whole again, still under
	// full query load: AddPeer appends to the same slice the handler
	// goroutines snapshot.
	if _, err := n.AddPeer("late-joiner"); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if n.PeerByID(victim) != nil {
		t.Fatalf("failover did not replace %s", victim)
	}
	cl := n.ServingClient("failover-after", 0)
	if err := cl.Open("", serving.ClassInteractive, ""); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(`SELECT COUNT(*) FROM lineitem`, serving.CacheUse); err != nil {
		t.Fatalf("query after failover: %v", err)
	}
}

// TestChaosServingShedsUnderInjectedSlowness wires the fault harness
// into the admission controller: injected delay on the data-plane
// subquery verb inflates every fan-out query's service time, queue
// waits blow the shed budget, and excess load must be rejected with the
// typed overload error — never a hang, never an untyped failure. After
// the fault heals, admission recovers without restarting anything.
func TestChaosServingShedsUnderInjectedSlowness(t *testing.T) {
	n := newLoadedNetwork(t, 3, 0.002)
	n.EnableServing(serving.Config{
		Workers:        2,
		QueueDepth:     8,
		ShedP95:        5 * time.Millisecond,
		ShedP99:        10 * time.Millisecond,
		ShedWindow:     200 * time.Millisecond,
		MinShedSamples: 4,
	})
	shed0 := servingShedTotal()

	// Every subquery to every data owner stalls 25ms; with 2 workers the
	// queue backs up within a handful of queries.
	n.Net.SetFaultPlan(pnet.NewFaultPlan(chaosSeed).Delay("", "peer.subquery", 25*time.Millisecond))

	const clients = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	shed, completed := 0, 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := n.ServingClient("chaos-client", 0)
			class := serving.ClassInteractive
			if c%4 == 3 {
				class = serving.ClassBatch
			}
			if err := cl.Open("", class, ""); err != nil {
				if !serving.Overloaded(err) {
					t.Errorf("client %d open: %v", c, err)
				}
				return
			}
			defer cl.Close()
			for i := 0; i < 6; i++ {
				_, err := cl.Query(`SELECT COUNT(*) FROM lineitem`, serving.CacheBypass)
				mu.Lock()
				switch {
				case err == nil:
					completed++
				case serving.Overloaded(err):
					shed++
				default:
					t.Errorf("client %d: untyped error under overload: %v", c, err)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if shed == 0 {
		t.Fatalf("no queries shed under injected slowness (%d completed)", completed)
	}
	if completed == 0 {
		t.Fatal("admission shed everything; admitted queries must still complete")
	}
	// The rejections are visible in telemetry, class-labeled. (Counters
	// are process-wide, so assert the delta across this test only.)
	if got := servingShedTotal() - shed0; got < int64(shed) {
		t.Errorf("telemetry counted %d shed, clients saw %d typed rejections", got, shed)
	}

	// Heal: the same sessions' peer answers again and admission stops
	// shedding once the window drains.
	n.Net.SetFaultPlan(nil)
	cl := n.ServingClient("chaos-recovery", 0)
	if err := cl.Open("", serving.ClassInteractive, ""); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Query(`SELECT COUNT(*) FROM lineitem`, serving.CacheBypass); err == nil {
			break
		} else if !serving.Overloaded(err) {
			t.Fatalf("post-heal query failed untyped: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("admission control still shedding 5s after the fault healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
