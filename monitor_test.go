package bestpeer

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFailoverDuringInFlightQueries crashes a peer while traced queries
// are in flight across the network: the in-flight queries must degrade
// gracefully (error, never panic or hang), the maintenance epoch fails
// the peer over, the collector drops the dead identity's telemetry
// window, and queries succeed again afterwards. Run under -race this
// doubles as the concurrency check on the monitoring plane.
func TestFailoverDuringInFlightQueries(t *testing.T) {
	n := newLoadedNetwork(t, 4, 0.002)
	victim := n.Peer(2).ID()

	// Everyone reports once so the victim has a collector window to drop.
	n.ReportTelemetry()
	if _, ok := n.Bootstrap.Collector().Health(victim); !ok {
		t.Fatal("victim has no telemetry window before the crash")
	}

	const workers = 4
	var wg sync.WaitGroup
	crash := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				_, err := n.Query(w%2, `SELECT COUNT(*) FROM lineitem`, QueryOptions{})
				select {
				case <-crash:
					// The network is (or is about to be) degraded; errors
					// are expected, panics and hangs are the failure mode.
					_ = err
					return
				default:
				}
				if err != nil {
					t.Errorf("worker %d query %d before crash: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond) // let queries get in flight
	if err := n.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	close(crash)
	wg.Wait()

	// Reports from the survivors carry their sender-side view of the
	// victim's failures (the victim itself cannot report: it is down).
	n.ReportTelemetry()

	if err := n.RunMaintenance(time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Bootstrap.Collector().Health(victim); ok {
		t.Error("dead peer's telemetry window survived fail-over")
	}
	var failNote string
	for _, e := range n.Bootstrap.Events() {
		if e.Kind == "failover" && e.Peer == victim && strings.Contains(e.Note, "begin") {
			failNote = e.Note
		}
	}
	if failNote == "" {
		t.Error("no failover event for the victim")
	}

	if _, err := n.Query(0, `SELECT COUNT(*) FROM lineitem`, QueryOptions{}); err != nil {
		t.Fatalf("query after fail-over: %v", err)
	}
	// The replacement identity reports into a fresh window.
	n.ReportTelemetry()
	found := false
	for _, id := range n.Bootstrap.Collector().Peers() {
		if strings.HasPrefix(id, victim+"-r") {
			found = true
		}
	}
	if !found {
		t.Errorf("replacement never reported: windows = %v", n.Bootstrap.Collector().Peers())
	}
}
