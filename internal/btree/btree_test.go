package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"bestpeer/internal/sqlval"
)

func TestPutGet(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put(sqlval.Int(int64(i)), i)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := tr.Get(sqlval.Int(int64(i)))
		if !ok || v.(int) != i {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
	if _, ok := tr.Get(sqlval.Int(5000)); ok {
		t.Error("Get of absent key returned ok")
	}
}

func TestPutReplaces(t *testing.T) {
	tr := New()
	tr.Put(sqlval.Str("k"), 1)
	prev, replaced := tr.Put(sqlval.Str("k"), 2)
	if !replaced || prev.(int) != 1 {
		t.Fatalf("replace: prev=%v replaced=%v", prev, replaced)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after replace = %d", tr.Len())
	}
	v, _ := tr.Get(sqlval.Str("k"))
	if v.(int) != 2 {
		t.Fatalf("value after replace = %v", v)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 500
	for i := 0; i < n; i++ {
		tr.Put(sqlval.Int(int64(i)), i)
	}
	for i := 0; i < n; i += 2 {
		v, ok := tr.Delete(sqlval.Int(int64(i)))
		if !ok || v.(int) != i {
			t.Fatalf("Delete(%d) = %v, %v", i, v, ok)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(sqlval.Int(int64(i)))
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) ok=%v after deletes", i, ok)
		}
	}
	if _, ok := tr.Delete(sqlval.Int(10_000)); ok {
		t.Error("Delete of absent key returned ok")
	}
}

func TestAscendOrdered(t *testing.T) {
	tr := New()
	perm := rand.New(rand.NewSource(1)).Perm(2000)
	for _, k := range perm {
		tr.Put(sqlval.Int(int64(k)), k)
	}
	var got []int64
	tr.Ascend(func(k sqlval.Value, v interface{}) bool {
		got = append(got, k.AsInt())
		return true
	})
	if len(got) != 2000 {
		t.Fatalf("visited %d", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("Ascend not in key order")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(sqlval.Int(int64(i)), i)
	}
	count := 0
	tr.Ascend(func(k sqlval.Value, v interface{}) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestAscendRangeBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(sqlval.Int(int64(i)), i)
	}
	collect := func(lo, hi sqlval.Value, loInc, hiInc bool) []int64 {
		var out []int64
		tr.AscendRange(lo, hi, loInc, hiInc, func(k sqlval.Value, v interface{}) bool {
			out = append(out, k.AsInt())
			return true
		})
		return out
	}
	if got := collect(sqlval.Int(10), sqlval.Int(12), true, true); len(got) != 3 || got[0] != 10 || got[2] != 12 {
		t.Errorf("inclusive range = %v", got)
	}
	if got := collect(sqlval.Int(10), sqlval.Int(12), false, false); len(got) != 1 || got[0] != 11 {
		t.Errorf("exclusive range = %v", got)
	}
	if got := collect(sqlval.Null(), sqlval.Int(2), true, true); len(got) != 3 {
		t.Errorf("unbounded below = %v", got)
	}
	if got := collect(sqlval.Int(97), sqlval.Null(), true, true); len(got) != 3 {
		t.Errorf("unbounded above = %v", got)
	}
	if got := collect(sqlval.Int(200), sqlval.Null(), true, true); len(got) != 0 {
		t.Errorf("empty range = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree returned ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree returned ok")
	}
	for _, k := range []int64{5, 1, 9, 3} {
		tr.Put(sqlval.Int(k), k)
	}
	if k, _, _ := tr.Min(); k.AsInt() != 1 {
		t.Errorf("Min = %v", k)
	}
	if k, _, _ := tr.Max(); k.AsInt() != 9 {
		t.Errorf("Max = %v", k)
	}
}

func TestDepthStaysLogarithmic(t *testing.T) {
	tr := New()
	for i := 0; i < 100_000; i++ {
		tr.Put(sqlval.Int(int64(i)), nil)
	}
	if d := tr.depth(); d > 5 {
		t.Errorf("depth = %d for 100k sequential keys", d)
	}
}

// TestQuickMapEquivalence drives the tree with random operations and
// checks it agrees with a reference map at every step.
func TestQuickMapEquivalence(t *testing.T) {
	f := func(ops []int16) bool {
		tr := New()
		ref := map[int64]int{}
		for i, op := range ops {
			k := int64(op % 64)
			if op >= 0 {
				tr.Put(sqlval.Int(k), i)
				ref[k] = i
			} else {
				tr.Delete(sqlval.Int(k))
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			got, ok := tr.Get(sqlval.Int(k))
			if !ok || got.(int) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMixedKindKeys(t *testing.T) {
	tr := New()
	tr.Put(sqlval.Str("a"), "sa")
	tr.Put(sqlval.Int(1), "i1")
	tr.Put(sqlval.Float(0.5), "f")
	var kinds []sqlval.Kind
	tr.Ascend(func(k sqlval.Value, v interface{}) bool {
		kinds = append(kinds, k.Kind())
		return true
	})
	// Numeric kinds interleave by value, strings come after by kind tag.
	if len(kinds) != 3 || kinds[2] != sqlval.KindString {
		t.Errorf("kind ordering = %v", kinds)
	}
}
