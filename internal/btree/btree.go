// Package btree implements an in-memory B+-tree keyed by sqlval.Value.
//
// It backs the primary and secondary indexes of the embedded relational
// engine (internal/sqldb). Leaves are linked for ordered range scans,
// which is what index-assisted range predicates (e.g. TPC-H
// l_shipdate > DATE '1998-11-05') compile to.
package btree

import (
	"sort"

	"bestpeer/internal/sqlval"
)

// degree is the maximum number of keys per node. 64 keeps nodes within a
// couple of cache lines of pointers while keeping the tree shallow.
const degree = 64

// Tree is a B+-tree mapping sqlval.Value keys to opaque payloads.
// Duplicate keys are not stored; Put replaces. The zero Tree is not
// usable; call New.
type Tree struct {
	root *node
	size int
}

type node struct {
	keys     []sqlval.Value
	children []*node       // internal nodes only
	values   []interface{} // leaf nodes only
	next     *node         // leaf chain
	leaf     bool
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

func (n *node) search(key sqlval.Value) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return sqlval.Compare(n.keys[i], key) >= 0
	})
}

// Get returns the payload stored under key.
func (t *Tree) Get(key sqlval.Value) (interface{}, bool) {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && sqlval.Compare(n.keys[i], key) == 0 {
			i++ // keys in internal nodes are the smallest key of the right child
		}
		n = n.children[i]
	}
	i := n.search(key)
	if i < len(n.keys) && sqlval.Compare(n.keys[i], key) == 0 {
		return n.values[i], true
	}
	return nil, false
}

// Put stores value under key, replacing any existing payload. It returns
// the previous payload, if any.
func (t *Tree) Put(key sqlval.Value, value interface{}) (interface{}, bool) {
	prev, replaced, split, sepKey, right := t.root.insert(key, value)
	if split {
		t.root = &node{
			keys:     []sqlval.Value{sepKey},
			children: []*node{t.root, right},
		}
	}
	if !replaced {
		t.size++
	}
	return prev, replaced
}

func (n *node) insert(key sqlval.Value, value interface{}) (prev interface{}, replaced, split bool, sepKey sqlval.Value, right *node) {
	if n.leaf {
		i := n.search(key)
		if i < len(n.keys) && sqlval.Compare(n.keys[i], key) == 0 {
			prev = n.values[i]
			n.values[i] = value
			return prev, true, false, sqlval.Value{}, nil
		}
		n.keys = append(n.keys, sqlval.Value{})
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.values = append(n.values, nil)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = value
	} else {
		i := n.search(key)
		if i < len(n.keys) && sqlval.Compare(n.keys[i], key) == 0 {
			i++
		}
		var childSplit bool
		var childSep sqlval.Value
		var childRight *node
		prev, replaced, childSplit, childSep, childRight = n.children[i].insert(key, value)
		if childSplit {
			n.keys = append(n.keys, sqlval.Value{})
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = childSep
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = childRight
		}
	}
	if len(n.keys) <= degree {
		return prev, replaced, false, sqlval.Value{}, nil
	}
	sepKey, right = n.splitRight()
	return prev, replaced, true, sepKey, right
}

// splitRight splits an over-full node, keeping the left half in n and
// returning the separator key plus the new right sibling.
func (n *node) splitRight() (sqlval.Value, *node) {
	mid := len(n.keys) / 2
	right := &node{leaf: n.leaf}
	if n.leaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.values = append(right.values, n.values[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.values = n.values[:mid:mid]
		right.next = n.next
		n.next = right
		return right.keys[0], right
	}
	sep := n.keys[mid]
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// Delete removes key and returns its payload, if present. Nodes are not
// rebalanced on delete: the engine's workload is load-then-query (MyISAM
// style), so under-full nodes after deletion only waste a little space.
func (t *Tree) Delete(key sqlval.Value) (interface{}, bool) {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && sqlval.Compare(n.keys[i], key) == 0 {
			i++
		}
		n = n.children[i]
	}
	i := n.search(key)
	if i >= len(n.keys) || sqlval.Compare(n.keys[i], key) != 0 {
		return nil, false
	}
	prev := n.values[i]
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	t.size--
	return prev, true
}

// leftmostLeafGE returns the leaf containing the first key >= key and the
// index of that key within the leaf (possibly len(keys), meaning the scan
// must continue into the next leaf).
func (t *Tree) leftmostLeafGE(key sqlval.Value) (*node, int) {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && sqlval.Compare(n.keys[i], key) == 0 {
			i++
		}
		n = n.children[i]
	}
	return n, n.search(key)
}

// Ascend visits all entries in key order until fn returns false.
func (t *Tree) Ascend(fn func(key sqlval.Value, value interface{}) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for ; n != nil; n = n.next {
		for i, k := range n.keys {
			if !fn(k, n.values[i]) {
				return
			}
		}
	}
}

// AscendRange visits entries with lo <= key <= hi in order until fn
// returns false. Passing loInclusive=false (resp. hiInclusive=false)
// makes the corresponding bound strict. A NULL lo means unbounded below;
// a NULL hi means unbounded above.
func (t *Tree) AscendRange(lo, hi sqlval.Value, loInclusive, hiInclusive bool, fn func(key sqlval.Value, value interface{}) bool) {
	var n *node
	var i int
	if lo.IsNull() {
		n = t.root
		for !n.leaf {
			n = n.children[0]
		}
	} else {
		n, i = t.leftmostLeafGE(lo)
	}
	for ; n != nil; n, i = n.next, 0 {
		for ; i < len(n.keys); i++ {
			k := n.keys[i]
			if !lo.IsNull() && !loInclusive && sqlval.Compare(k, lo) == 0 {
				continue
			}
			if !hi.IsNull() {
				c := sqlval.Compare(k, hi)
				if c > 0 || (c == 0 && !hiInclusive) {
					return
				}
			}
			if !fn(k, n.values[i]) {
				return
			}
		}
	}
}

// Min returns the smallest key and its payload.
func (t *Tree) Min() (sqlval.Value, interface{}, bool) {
	if t.size == 0 {
		return sqlval.Value{}, nil, false
	}
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil && len(n.keys) == 0 {
		n = n.next
	}
	if n == nil {
		return sqlval.Value{}, nil, false
	}
	return n.keys[0], n.values[0], true
}

// Max returns the largest key and its payload.
func (t *Tree) Max() (sqlval.Value, interface{}, bool) {
	if t.size == 0 {
		return sqlval.Value{}, nil, false
	}
	var lastK sqlval.Value
	var lastV interface{}
	found := false
	// Rightmost path may end in a leaf emptied by deletes; walk the leaf
	// chain from the start only in that unlikely case.
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) > 0 {
		return n.keys[len(n.keys)-1], n.values[len(n.values)-1], true
	}
	t.Ascend(func(k sqlval.Value, v interface{}) bool {
		lastK, lastV, found = k, v, true
		return true
	})
	return lastK, lastV, found
}

// depth returns the height of the tree (for tests/invariants).
func (t *Tree) depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}
