// Package vtime is the deterministic virtual-time cost model used to
// regenerate the paper's latency figures.
//
// The paper's evaluation ran on Amazon EC2 m1.small instances and
// reports wall-clock latencies whose *shape* is driven by a handful of
// measured rates: ~90 MB/s buffered disk reads, ~100 MB/s end-to-end
// network bandwidth, a 10-15 s Hadoop job startup cost, and a noticeable
// pull delay between map completion and reduce fetch (§6.1). Re-running
// the workloads on an arbitrary development machine would reproduce none
// of that, so instead every engine in this repository executes queries
// for real (producing actual rows) while charging its physical work —
// bytes scanned, bytes shipped, bytes processed, jobs launched — against
// this model. The resulting virtual durations are deterministic and
// reproduce the paper's comparisons.
package vtime

import "time"

// Rates holds the calibrated throughput and latency constants.
type Rates struct {
	// DiskBytesPerSec is the sequential read rate of a peer's local
	// database storage (paper: ~90 MB/s buffered reads on m1.small).
	DiskBytesPerSec float64
	// NetBytesPerSec is the end-to-end bandwidth between two instances
	// (paper: ~100 MB/s measured with iperf).
	NetBytesPerSec float64
	// CPUBytesPerSec is µ in the paper's cost model: the rate at which
	// one processing node works through query input.
	CPUBytesPerSec float64
	// NetLatencyPerMsg is the fixed per-message latency of the overlay.
	NetLatencyPerMsg time.Duration
	// MRJobStartup is the cost of scheduling and launching one MapReduce
	// job's tasks (paper: "approximately 10-15 sec" independent of
	// cluster size; ϕ in Eq. 9).
	MRJobStartup time.Duration
	// MRPullDelay is the observed delay between a map task finishing and
	// the reduce side learning about it and pulling its output (§6.1.7).
	MRPullDelay time.Duration
	// QueryOverhead is the fixed client-side cost of parsing, planning,
	// and dispatching a query at the submitting peer.
	QueryOverhead time.Duration
}

// DefaultRates returns the constants calibrated to the paper's
// measurements (§6.1.1, §6.1.6).
func DefaultRates() Rates {
	return Rates{
		DiskBytesPerSec:  90e6,
		NetBytesPerSec:   100e6,
		CPUBytesPerSec:   90e6,
		NetLatencyPerMsg: 2 * time.Millisecond,
		MRJobStartup:     12 * time.Second,
		MRPullDelay:      2 * time.Second,
		QueryOverhead:    20 * time.Millisecond,
	}
}

// Cost is a virtual duration broken down by resource. Costs compose
// sequentially with Add (components accumulate) and in parallel with
// Par (the critical path wins).
type Cost struct {
	Disk    time.Duration
	Net     time.Duration
	CPU     time.Duration
	Startup time.Duration
}

// Total returns the summed virtual duration.
func (c Cost) Total() time.Duration {
	return c.Disk + c.Net + c.CPU + c.Startup
}

// Add composes two costs sequentially.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		Disk:    c.Disk + o.Disk,
		Net:     c.Net + o.Net,
		CPU:     c.CPU + o.CPU,
		Startup: c.Startup + o.Startup,
	}
}

// Par composes two costs in parallel: the slower branch is the critical
// path and its breakdown is kept.
func Par(a, b Cost) Cost {
	if b.Total() > a.Total() {
		return b
	}
	return a
}

// ParAll folds Par over a list of branch costs.
func ParAll(costs []Cost) Cost {
	var out Cost
	for _, c := range costs {
		out = Par(out, c)
	}
	return out
}

func secs(bytes int64, rate float64) time.Duration {
	if rate <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / rate * float64(time.Second))
}

// DiskRead charges a sequential read of n bytes.
func (r Rates) DiskRead(n int64) Cost { return Cost{Disk: secs(n, r.DiskBytesPerSec)} }

// NetTransfer charges shipping n bytes in one message exchange.
func (r Rates) NetTransfer(n int64) Cost {
	return Cost{Net: r.NetLatencyPerMsg + secs(n, r.NetBytesPerSec)}
}

// NetMsgs charges k small overlay messages (index lookups, control traffic).
func (r Rates) NetMsgs(k int) Cost {
	return Cost{Net: time.Duration(k) * r.NetLatencyPerMsg}
}

// CPUWork charges processing n bytes on one node.
func (r Rates) CPUWork(n int64) Cost { return Cost{CPU: secs(n, r.CPUBytesPerSec)} }

// JobStartup charges launching k MapReduce jobs.
func (r Rates) JobStartup(k int) Cost {
	return Cost{Startup: time.Duration(k) * r.MRJobStartup}
}

// PullDelay charges k map→reduce pull waits.
func (r Rates) PullDelay(k int) Cost {
	return Cost{Startup: time.Duration(k) * r.MRPullDelay}
}

// Overhead charges the fixed query dispatch overhead.
func (r Rates) Overhead() Cost { return Cost{CPU: r.QueryOverhead} }
