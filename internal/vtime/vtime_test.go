package vtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDiskReadRate(t *testing.T) {
	r := Rates{DiskBytesPerSec: 100e6}
	c := r.DiskRead(100e6)
	if c.Disk != time.Second {
		t.Errorf("DiskRead(100MB) = %v, want 1s", c.Disk)
	}
	if got := r.DiskRead(0).Total(); got != 0 {
		t.Errorf("DiskRead(0) = %v", got)
	}
	if got := r.DiskRead(-5).Total(); got != 0 {
		t.Errorf("DiskRead(-5) = %v", got)
	}
}

func TestNetTransferIncludesLatency(t *testing.T) {
	r := Rates{NetBytesPerSec: 100e6, NetLatencyPerMsg: 3 * time.Millisecond}
	c := r.NetTransfer(50e6)
	want := 3*time.Millisecond + 500*time.Millisecond
	if c.Net != want {
		t.Errorf("NetTransfer = %v, want %v", c.Net, want)
	}
	if r.NetMsgs(4).Net != 12*time.Millisecond {
		t.Errorf("NetMsgs = %v", r.NetMsgs(4).Net)
	}
}

func TestJobStartupScalesWithJobs(t *testing.T) {
	r := DefaultRates()
	if r.JobStartup(4).Startup != 4*r.MRJobStartup {
		t.Error("JobStartup not linear in job count")
	}
	if r.PullDelay(2).Startup != 2*r.MRPullDelay {
		t.Error("PullDelay not linear")
	}
}

func TestAddAccumulatesComponents(t *testing.T) {
	a := Cost{Disk: 1, Net: 2, CPU: 3, Startup: 4}
	b := Cost{Disk: 10, Net: 20, CPU: 30, Startup: 40}
	c := a.Add(b)
	if c.Disk != 11 || c.Net != 22 || c.CPU != 33 || c.Startup != 44 {
		t.Errorf("Add = %+v", c)
	}
	if c.Total() != 110 {
		t.Errorf("Total = %v", c.Total())
	}
}

func TestParTakesCriticalPath(t *testing.T) {
	fast := Cost{CPU: time.Second}
	slow := Cost{Net: 2 * time.Second}
	if got := Par(fast, slow); got != slow {
		t.Errorf("Par = %+v", got)
	}
	if got := Par(slow, fast); got != slow {
		t.Errorf("Par order-dependent: %+v", got)
	}
	branches := []Cost{{CPU: 1}, {CPU: 5}, {CPU: 3}}
	if got := ParAll(branches); got.CPU != 5 {
		t.Errorf("ParAll = %+v", got)
	}
	if got := ParAll(nil); got.Total() != 0 {
		t.Errorf("ParAll(nil) = %+v", got)
	}
}

func TestParTotalIsMaxProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		ca := Cost{CPU: time.Duration(a)}
		cb := Cost{Net: time.Duration(b)}
		p := Par(ca, cb)
		max := ca.Total()
		if cb.Total() > max {
			max = cb.Total()
		}
		return p.Total() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultRatesMatchPaperConstants(t *testing.T) {
	r := DefaultRates()
	if r.DiskBytesPerSec != 90e6 {
		t.Errorf("disk rate = %v, want 90 MB/s (paper §6.1.1)", r.DiskBytesPerSec)
	}
	if r.NetBytesPerSec != 100e6 {
		t.Errorf("net rate = %v, want 100 MB/s (paper §6.1.1)", r.NetBytesPerSec)
	}
	if r.MRJobStartup < 10*time.Second || r.MRJobStartup > 15*time.Second {
		t.Errorf("MR startup = %v, want within the paper's 10-15 s", r.MRJobStartup)
	}
}
