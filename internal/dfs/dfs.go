// Package dfs is the HDFS-like distributed file system mounted for
// MapReduce processing (paper §5.4: "a Hadoop distributed file system
// (HDFS) is mounted at system start time to serve as the temporal
// storage media for MapReduce jobs").
//
// Files hold rows (the record format MapReduce jobs exchange); they are
// chunked into blocks, and each block is placed on `replication`
// datanodes. A read succeeds while at least one replica of every block
// is on a live datanode — the property HadoopDB's configuration
// (replication factor 3, §6.1.3) buys.
package dfs

import (
	"errors"
	"fmt"
	"sync"

	"bestpeer/internal/sqlval"
)

// ErrNoSuchFile is returned when reading or deleting an absent path.
var ErrNoSuchFile = errors.New("dfs: no such file")

// ErrBlockUnavailable is returned when every replica of some block is on
// a failed datanode.
var ErrBlockUnavailable = errors.New("dfs: block unavailable")

// Config sizes the file system.
type Config struct {
	// BlockSizeBytes chunks files (HadoopDB's benchmark setting is
	// 256 MB; tests use small blocks to exercise chunking).
	BlockSizeBytes int64
	// Replication is the number of datanodes holding each block.
	Replication int
	// Datanodes lists the storage node IDs.
	Datanodes []string
}

// DefaultConfig mirrors the paper's HadoopDB settings over the given
// datanodes.
func DefaultConfig(datanodes []string) Config {
	return Config{BlockSizeBytes: 256 << 20, Replication: 3, Datanodes: datanodes}
}

type block struct {
	rows     []sqlval.Row
	bytes    int64
	replicas []string // datanode IDs
}

type file struct {
	blocks []block
	bytes  int64
}

// FileSystem is the in-memory namenode plus datanode state.
type FileSystem struct {
	cfg Config

	mu           sync.Mutex
	files        map[string]*file
	down         map[string]bool
	nextDatanode int
	bytesWritten int64 // including replication
}

// New creates a file system. Replication is capped at the datanode
// count.
func New(cfg Config) (*FileSystem, error) {
	if cfg.BlockSizeBytes <= 0 {
		return nil, fmt.Errorf("dfs: block size must be positive")
	}
	if len(cfg.Datanodes) == 0 {
		return nil, fmt.Errorf("dfs: need at least one datanode")
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(cfg.Datanodes) {
		cfg.Replication = len(cfg.Datanodes)
	}
	return &FileSystem{
		cfg:   cfg,
		files: make(map[string]*file),
		down:  make(map[string]bool),
	}, nil
}

// Write stores rows under path, replacing any existing file. Blocks are
// placed round-robin across datanodes with the configured replication.
func (fs *FileSystem) Write(path string, rows []sqlval.Row) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &file{}
	var cur block
	flush := func() {
		if len(cur.rows) == 0 {
			return
		}
		for r := 0; r < fs.cfg.Replication; r++ {
			dn := fs.cfg.Datanodes[(fs.nextDatanode+r)%len(fs.cfg.Datanodes)]
			cur.replicas = append(cur.replicas, dn)
		}
		fs.nextDatanode++
		fs.bytesWritten += cur.bytes * int64(fs.cfg.Replication)
		f.bytes += cur.bytes
		f.blocks = append(f.blocks, cur)
		cur = block{}
	}
	for _, row := range rows {
		sz := int64(row.EncodedSize())
		if cur.bytes+sz > fs.cfg.BlockSizeBytes && len(cur.rows) > 0 {
			flush()
		}
		cur.rows = append(cur.rows, row)
		cur.bytes += sz
	}
	flush()
	fs.files[path] = f
	return nil
}

// Read returns the file's rows. It fails if any block has no live
// replica.
func (fs *FileSystem) Read(path string) ([]sqlval.Row, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, path)
	}
	var out []sqlval.Row
	for i, b := range f.blocks {
		alive := false
		for _, dn := range b.replicas {
			if !fs.down[dn] {
				alive = true
				break
			}
		}
		if !alive {
			return nil, fmt.Errorf("%w: %s block %d", ErrBlockUnavailable, path, i)
		}
		out = append(out, b.rows...)
	}
	return out, nil
}

// Size returns the file's logical size in bytes.
func (fs *FileSystem) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchFile, path)
	}
	return f.bytes, nil
}

// Delete removes a file.
func (fs *FileSystem) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchFile, path)
	}
	delete(fs.files, path)
	return nil
}

// List returns all paths (unordered).
func (fs *FileSystem) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	return out
}

// SetDatanodeDown marks a datanode failed or recovered.
func (fs *FileSystem) SetDatanodeDown(id string, down bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if down {
		fs.down[id] = true
	} else {
		delete(fs.down, id)
	}
}

// BytesWritten returns the cumulative physical bytes written (logical
// bytes times replication), which the cost model charges for HDFS
// output.
func (fs *FileSystem) BytesWritten() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bytesWritten
}
