package dfs

import (
	"errors"
	"fmt"
	"testing"

	"bestpeer/internal/sqlval"
)

func rows(n int) []sqlval.Row {
	out := make([]sqlval.Row, n)
	for i := range out {
		out[i] = sqlval.Row{sqlval.Int(int64(i)), sqlval.Str("payload")}
	}
	return out
}

func newFS(t *testing.T, blockSize int64, replication int, datanodes int) *FileSystem {
	t.Helper()
	var dns []string
	for i := 0; i < datanodes; i++ {
		dns = append(dns, fmt.Sprintf("dn-%d", i))
	}
	fs, err := New(Config{BlockSizeBytes: blockSize, Replication: replication, Datanodes: dns})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t, 1<<20, 3, 4)
	in := rows(100)
	if err := fs.Write("/job/out", in); err != nil {
		t.Fatal(err)
	}
	out, err := fs.Read("/job/out")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("read %d rows", len(out))
	}
	for i := range out {
		if out[i][0].AsInt() != int64(i) {
			t.Fatalf("row %d = %v", i, out[i])
		}
	}
}

func TestChunkingIntoBlocks(t *testing.T) {
	// Rows are ~17 bytes each; a 40-byte block holds 2.
	fs := newFS(t, 40, 1, 3)
	if err := fs.Write("/f", rows(10)); err != nil {
		t.Fatal(err)
	}
	f := fs.files["/f"]
	if len(f.blocks) < 4 {
		t.Errorf("blocks = %d, want chunking", len(f.blocks))
	}
	out, err := fs.Read("/f")
	if err != nil || len(out) != 10 {
		t.Fatalf("read = %d rows, %v", len(out), err)
	}
}

func TestReplicationSurvivesDatanodeFailure(t *testing.T) {
	fs := newFS(t, 64, 3, 5)
	if err := fs.Write("/f", rows(50)); err != nil {
		t.Fatal(err)
	}
	fs.SetDatanodeDown("dn-0", true)
	fs.SetDatanodeDown("dn-1", true)
	if _, err := fs.Read("/f"); err != nil {
		t.Errorf("read with 2/5 datanodes down: %v", err)
	}
}

func TestReadFailsWhenAllReplicasDown(t *testing.T) {
	fs := newFS(t, 1<<20, 1, 2)
	if err := fs.Write("/f", rows(10)); err != nil {
		t.Fatal(err)
	}
	fs.SetDatanodeDown("dn-0", true)
	fs.SetDatanodeDown("dn-1", true)
	if _, err := fs.Read("/f"); !errors.Is(err, ErrBlockUnavailable) {
		t.Errorf("err = %v", err)
	}
	fs.SetDatanodeDown("dn-0", false)
	if _, err := fs.Read("/f"); err != nil {
		t.Errorf("read after recovery: %v", err)
	}
}

func TestDeleteAndList(t *testing.T) {
	fs := newFS(t, 1<<20, 1, 1)
	if err := fs.Write("/a", rows(1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/b", rows(1)); err != nil {
		t.Fatal(err)
	}
	if len(fs.List()) != 2 {
		t.Errorf("list = %v", fs.List())
	}
	if err := fs.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/a"); !errors.Is(err, ErrNoSuchFile) {
		t.Errorf("read deleted: %v", err)
	}
	if err := fs.Delete("/a"); !errors.Is(err, ErrNoSuchFile) {
		t.Errorf("double delete: %v", err)
	}
}

func TestSizeAndBytesWritten(t *testing.T) {
	fs := newFS(t, 1<<20, 3, 3)
	in := rows(10)
	var logical int64
	for _, r := range in {
		logical += int64(r.EncodedSize())
	}
	if err := fs.Write("/f", in); err != nil {
		t.Fatal(err)
	}
	size, err := fs.Size("/f")
	if err != nil || size != logical {
		t.Errorf("size = %d, want %d (%v)", size, logical, err)
	}
	if fs.BytesWritten() != logical*3 {
		t.Errorf("bytes written = %d, want %d (x3 replication)", fs.BytesWritten(), logical*3)
	}
	if _, err := fs.Size("/ghost"); !errors.Is(err, ErrNoSuchFile) {
		t.Errorf("size of ghost: %v", err)
	}
}

func TestOverwriteReplaces(t *testing.T) {
	fs := newFS(t, 1<<20, 1, 1)
	if err := fs.Write("/f", rows(10)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", rows(3)); err != nil {
		t.Fatal(err)
	}
	out, _ := fs.Read("/f")
	if len(out) != 3 {
		t.Errorf("rows after overwrite = %d", len(out))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{BlockSizeBytes: 0, Datanodes: []string{"a"}}); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(Config{BlockSizeBytes: 1, Datanodes: nil}); err == nil {
		t.Error("no datanodes accepted")
	}
	// Replication capped at datanode count.
	fs, err := New(Config{BlockSizeBytes: 1 << 20, Replication: 5, Datanodes: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if fs.cfg.Replication != 2 {
		t.Errorf("replication = %d", fs.cfg.Replication)
	}
	def := DefaultConfig([]string{"a", "b", "c", "d"})
	if def.Replication != 3 || def.BlockSizeBytes != 256<<20 {
		t.Errorf("default = %+v", def)
	}
}
