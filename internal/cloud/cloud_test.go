package cloud

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestLaunchTerminateLifecycle(t *testing.T) {
	p := NewSimProvider()
	inst, err := p.Launch("i-1", M1Small)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Type.Name != "m1.small" || inst.State != StateRunning {
		t.Errorf("inst = %+v", inst)
	}
	if _, err := p.Launch("i-1", M1Small); err == nil {
		t.Error("duplicate launch accepted")
	}
	if err := p.Terminate("i-1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Terminate("i-1"); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("double terminate: %v", err)
	}
	// The ID can be relaunched after termination.
	if _, err := p.Launch("i-1", M1Large); err != nil {
		t.Errorf("relaunch failed: %v", err)
	}
}

func TestScaleUp(t *testing.T) {
	p := NewSimProvider()
	if _, err := p.Launch("i-1", M1Small); err != nil {
		t.Fatal(err)
	}
	typ, err := p.ScaleUp("i-1")
	if err != nil || typ.Name != "m1.large" {
		t.Errorf("ScaleUp = %v, %v", typ, err)
	}
	// Already at the top: no-op.
	typ, err = p.ScaleUp("i-1")
	if err != nil || typ.Name != "m1.large" {
		t.Errorf("ScaleUp at top = %v, %v", typ, err)
	}
	if _, err := p.ScaleUp("ghost"); err == nil {
		t.Error("ScaleUp(ghost) succeeded")
	}
}

func TestMetricsAndCrash(t *testing.T) {
	p := NewSimProvider()
	if _, err := p.Launch("i-1", M1Small); err != nil {
		t.Fatal(err)
	}
	if m, ok := p.Metrics("i-1"); !ok || !m.Healthy {
		t.Errorf("fresh instance metrics = %+v, %v", m, ok)
	}
	p.ReportMetrics("i-1", Metrics{CPUUtilization: 0.95, StorageUsedGB: 4.9, Healthy: true})
	m, _ := p.Metrics("i-1")
	if m.CPUUtilization != 0.95 {
		t.Errorf("metrics = %+v", m)
	}
	if err := p.Crash("i-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Metrics("i-1"); ok {
		t.Error("crashed instance responds to metrics")
	}
	inst, _ := p.Instance("i-1")
	if inst.State != StateCrashed {
		t.Errorf("state = %v", inst.State)
	}
	if err := p.Crash("i-1"); err == nil {
		t.Error("double crash accepted")
	}
}

func TestBackupRestoreSurvivesCrash(t *testing.T) {
	p := NewSimProvider()
	if _, err := p.Launch("i-1", M1Small); err != nil {
		t.Fatal(err)
	}
	if err := p.Backup("i-1", Snapshot{Data: "database-state"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Crash("i-1"); err != nil {
		t.Fatal(err)
	}
	snap, ok := p.Restore("i-1")
	if !ok || snap.Data.(string) != "database-state" {
		t.Errorf("restore = %+v, %v", snap, ok)
	}
	if _, ok := p.Restore("never-backed-up"); ok {
		t.Error("restore of absent backup succeeded")
	}
	if err := p.Backup("ghost", Snapshot{}); err == nil {
		t.Error("backup of unknown instance accepted")
	}
}

func TestBackupKeepsLatest(t *testing.T) {
	p := NewSimProvider()
	if _, err := p.Launch("i-1", M1Small); err != nil {
		t.Fatal(err)
	}
	if err := p.Backup("i-1", Snapshot{Data: 1}); err != nil {
		t.Fatal(err)
	}
	p.AdvanceClock(4 * time.Minute)
	if err := p.Backup("i-1", Snapshot{Data: 2}); err != nil {
		t.Fatal(err)
	}
	snap, _ := p.Restore("i-1")
	if snap.Data.(int) != 2 || snap.TakenAt != 4*time.Minute {
		t.Errorf("snap = %+v", snap)
	}
}

func TestBillingAccrual(t *testing.T) {
	p := NewSimProvider()
	if _, err := p.Launch("small", M1Small); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Launch("large", M1Large); err != nil {
		t.Fatal(err)
	}
	p.AdvanceClock(10 * time.Hour)
	small, _ := p.Instance("small")
	large, _ := p.Instance("large")
	if small.AccruedUSD <= 0 || large.AccruedUSD <= small.AccruedUSD {
		t.Errorf("bills: small=%v large=%v", small.AccruedUSD, large.AccruedUSD)
	}
	wantSmall := 10*M1Small.HourlyUSD + 10.0/(24*30)*float64(M1Small.StorageGB)*M1Small.StorageUSDGBMonth
	if math.Abs(small.AccruedUSD-wantSmall) > 1e-9 {
		t.Errorf("small bill = %v, want %v", small.AccruedUSD, wantSmall)
	}
	// Terminated instances stop accruing but keep their charges.
	if err := p.Terminate("large"); err != nil {
		t.Fatal(err)
	}
	before := p.TotalBillUSD()
	p.AdvanceClock(10 * time.Hour)
	after := p.TotalBillUSD()
	if after-before <= 0 {
		t.Error("running instance stopped accruing")
	}
	largeAfter, _ := p.Instance("large")
	if largeAfter.AccruedUSD != large.AccruedUSD+large.Type.HourlyUSD*0 {
		// terminated: unchanged
		if largeAfter.AccruedUSD != large.AccruedUSD {
			t.Errorf("terminated instance accrued: %v -> %v", large.AccruedUSD, largeAfter.AccruedUSD)
		}
	}
}

func TestInstancesListing(t *testing.T) {
	p := NewSimProvider()
	for _, id := range []string{"a", "b", "c"} {
		if _, err := p.Launch(id, M1Small); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Terminate("b"); err != nil {
		t.Fatal(err)
	}
	list := p.Instances()
	if len(list) != 2 {
		t.Errorf("instances = %+v", list)
	}
	if _, ok := p.Instance("nope"); ok {
		t.Error("Instance(nope) found")
	}
}

func TestNextLarger(t *testing.T) {
	if n, ok := NextLarger(M1Small); !ok || n.Name != M1Large.Name {
		t.Error("small -> large broken")
	}
	if _, ok := NextLarger(M1Large); ok {
		t.Error("large has larger?")
	}
}
