// Package cloud implements the elastic infrastructure layer behind
// BestPeer++'s adapter design (paper §2, §2.1).
//
// The paper separates BestPeer++ into a platform-independent core and an
// adapter implementing an elastic infrastructure service interface; the
// authors ship an Amazon adapter built on EC2 (instance provisioning),
// RDS/EBS (backup and restore), and CloudWatch (health metrics). This
// package defines that abstract interface (Adapter) and provides
// SimProvider, an in-memory provider with the same observable behavior:
// instance lifecycle, typed instances (m1.small, m1.large), asynchronous
// backups, metric collection, fault injection for fail-over drills, and
// pay-as-you-go billing by instance-hour and storage.
package cloud

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bestpeer/internal/telemetry"
)

// InstanceType describes a virtual server class.
type InstanceType struct {
	Name      string
	VCores    int
	MemoryMB  int
	StorageGB int
	// HourlyUSD is the pay-as-you-go rate charged per instance-hour.
	HourlyUSD float64
	// StorageUSDGBMonth is the storage rate per GB-month.
	StorageUSDGBMonth float64
}

// The instance types the paper mentions (§2.1): every BestPeer++
// instance starts as m1.small and can scale up to m1.large.
var (
	M1Small = InstanceType{Name: "m1.small", VCores: 1, MemoryMB: 1700, StorageGB: 5, HourlyUSD: 0.08, StorageUSDGBMonth: 0.10}
	M1Large = InstanceType{Name: "m1.large", VCores: 4, MemoryMB: 7680, StorageGB: 50, HourlyUSD: 0.32, StorageUSDGBMonth: 0.10}
)

// NextLarger returns the next instance type up, for auto-scaling.
func NextLarger(t InstanceType) (InstanceType, bool) {
	if t.Name == M1Small.Name {
		return M1Large, true
	}
	return t, false
}

// State is an instance's lifecycle state.
type State string

// Instance lifecycle states.
const (
	StateRunning    State = "running"
	StateCrashed    State = "crashed"
	StateTerminated State = "terminated"
)

// Instance is one provisioned virtual server.
type Instance struct {
	ID    string
	Type  InstanceType
	State State
	// LaunchedAt is in the provider's virtual clock.
	LaunchedAt time.Duration
	// AccruedUSD is the pay-as-you-go charge accumulated so far.
	AccruedUSD float64
}

// Metrics is one CloudWatch-style health sample.
type Metrics struct {
	CPUUtilization float64 // 0..1
	StorageUsedGB  float64
	Healthy        bool
}

// Snapshot is an opaque backup payload (the peer's database state).
type Snapshot struct {
	Data    interface{}
	TakenAt time.Duration
}

// Adapter is the abstract elastic-infrastructure interface the
// BestPeer++ core programs against. With an appropriate implementation
// it ports to any cloud or on-premise environment (§2).
type Adapter interface {
	// Launch provisions a new instance.
	Launch(id string, typ InstanceType) (*Instance, error)
	// Terminate releases an instance and stops its billing.
	Terminate(id string) error
	// ScaleUp upgrades an instance to the next larger type.
	ScaleUp(id string) (InstanceType, error)
	// Backup stores a snapshot of the instance's data (the paper backs
	// up each MySQL database to EBS in a four-minute window,
	// asynchronously and without service interruption).
	Backup(id string, snap Snapshot) error
	// Restore returns the latest backup for an instance ID.
	Restore(id string) (Snapshot, bool)
	// Metrics polls the instance's health (CloudWatch).
	Metrics(id string) (Metrics, bool)
}

// ErrUnknownInstance is returned for operations on absent instances.
var ErrUnknownInstance = errors.New("cloud: unknown instance")

// SimProvider is the in-memory Adapter with fault injection and a
// virtual billing clock.
type SimProvider struct {
	mu        sync.Mutex
	instances map[string]*Instance
	backups   map[string]Snapshot
	metrics   map[string]Metrics
	clock     time.Duration
}

// NewSimProvider returns an empty provider.
func NewSimProvider() *SimProvider {
	return &SimProvider{
		instances: make(map[string]*Instance),
		backups:   make(map[string]Snapshot),
		metrics:   make(map[string]Metrics),
	}
}

// Launch provisions a new instance in the running state.
func (p *SimProvider) Launch(id string, typ InstanceType) (*Instance, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if inst, ok := p.instances[id]; ok && inst.State != StateTerminated {
		return nil, fmt.Errorf("cloud: instance %s already exists", id)
	}
	inst := &Instance{ID: id, Type: typ, State: StateRunning, LaunchedAt: p.clock}
	p.instances[id] = inst
	p.metrics[id] = Metrics{Healthy: true}
	telemetry.Default.Counter("cloud_instances_launched_total").Inc()
	telemetry.Default.Gauge("cloud_instances_running").Add(1)
	out := *inst
	return &out, nil
}

// Terminate stops an instance.
func (p *SimProvider) Terminate(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	inst, ok := p.instances[id]
	if !ok || inst.State == StateTerminated {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	inst.State = StateTerminated
	delete(p.metrics, id)
	telemetry.Default.Counter("cloud_instances_terminated_total").Inc()
	telemetry.Default.Gauge("cloud_instances_running").Add(-1)
	return nil
}

// ScaleUp upgrades the instance type (processing dimension of the
// paper's two-dimensional scaling; the storage dimension is part of the
// larger type's allocation).
func (p *SimProvider) ScaleUp(id string) (InstanceType, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	inst, ok := p.instances[id]
	if !ok || inst.State != StateRunning {
		return InstanceType{}, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	next, ok := NextLarger(inst.Type)
	if !ok {
		return inst.Type, nil
	}
	inst.Type = next
	telemetry.Default.Counter("cloud_scaleups_total").Inc()
	return next, nil
}

// Backup stores a snapshot. The real adapter is asynchronous with a
// four-minute window; the simulation stores synchronously and stamps the
// virtual clock, which preserves the property the system relies on: the
// latest completed backup is what fail-over restores.
func (p *SimProvider) Backup(id string, snap Snapshot) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.instances[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	snap.TakenAt = p.clock
	p.backups[id] = snap
	return nil
}

// Restore fetches the latest backup for the ID.
func (p *SimProvider) Restore(id string) (Snapshot, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.backups[id]
	return s, ok
}

// Metrics polls an instance's health sample. Crashed and terminated
// instances report not-found, which is how the bootstrap daemon detects
// failures (an instance that "fails to respond").
func (p *SimProvider) Metrics(id string) (Metrics, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	telemetry.Default.Counter("cloud_metric_polls_total").Inc()
	inst, ok := p.instances[id]
	if !ok || inst.State != StateRunning {
		return Metrics{}, false
	}
	return p.metrics[id], true
}

// ReportMetrics lets an instance (or a test) publish its health sample,
// as EC2 instances feed CloudWatch.
func (p *SimProvider) ReportMetrics(id string, m Metrics) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if inst, ok := p.instances[id]; ok && inst.State == StateRunning {
		p.metrics[id] = m
	}
}

// Crash injects an instance failure: it stops responding to metrics and
// all state is lost except completed backups.
func (p *SimProvider) Crash(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	inst, ok := p.instances[id]
	if !ok || inst.State != StateRunning {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	inst.State = StateCrashed
	delete(p.metrics, id)
	return nil
}

// Instance returns a copy of the instance record.
func (p *SimProvider) Instance(id string) (Instance, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	inst, ok := p.instances[id]
	if !ok {
		return Instance{}, false
	}
	return *inst, true
}

// Instances lists all non-terminated instances.
func (p *SimProvider) Instances() []Instance {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Instance
	for _, inst := range p.instances {
		if inst.State != StateTerminated {
			out = append(out, *inst)
		}
	}
	return out
}

// AdvanceClock moves the provider's virtual clock forward, accruing
// pay-as-you-go charges on every running instance (instance-hours plus
// allocated storage).
func (p *SimProvider) AdvanceClock(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clock += d
	hours := d.Hours()
	const hoursPerMonth = 24 * 30
	for _, inst := range p.instances {
		if inst.State != StateRunning {
			continue
		}
		inst.AccruedUSD += hours * inst.Type.HourlyUSD
		inst.AccruedUSD += hours / hoursPerMonth * float64(inst.Type.StorageGB) * inst.Type.StorageUSDGBMonth
	}
}

// Clock returns the provider's virtual time.
func (p *SimProvider) Clock() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clock
}

// TotalBillUSD sums accrued charges over all instances, including
// terminated ones (pay for what was used).
func (p *SimProvider) TotalBillUSD() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total float64
	for _, inst := range p.instances {
		total += inst.AccruedUSD
	}
	return total
}
