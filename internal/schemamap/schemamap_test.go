package schemamap

import (
	"testing"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

func localSchema() *sqldb.Schema {
	return &sqldb.Schema{
		Table: "loc",
		Columns: []sqldb.Column{
			{Name: "b_local", Kind: sqlval.KindString},
			{Name: "a_local", Kind: sqlval.KindInt},
		},
	}
}

func globalSchema() *sqldb.Schema {
	return &sqldb.Schema{
		Table: "glob",
		Columns: []sqldb.Column{
			{Name: "a", Kind: sqlval.KindInt},
			{Name: "b", Kind: sqlval.KindString},
			{Name: "c", Kind: sqlval.KindFloat},
		},
	}
}

func testMapping() *Mapping {
	return &Mapping{
		System: "test",
		Tables: []TableMapping{{
			LocalTable:  "loc",
			GlobalTable: "glob",
			Columns: []ColumnMapping{
				{Local: "a_local", Global: "a"},
				{Local: "b_local", Global: "b", Values: map[string]string{"x": "mapped-x"}},
			},
		}},
	}
}

func TestTransformReordersAndTranslates(t *testing.T) {
	m := testMapping()
	tm := m.TableFor("LOC") // case-insensitive
	if tm == nil {
		t.Fatal("TableFor failed")
	}
	out, err := tm.Transform(localSchema(), globalSchema(), sqlval.Row{sqlval.Str("x"), sqlval.Int(42)})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].AsInt() != 42 {
		t.Errorf("a = %v", out[0])
	}
	if out[1].AsString() != "mapped-x" {
		t.Errorf("b = %v (value mapping)", out[1])
	}
	if !out[2].IsNull() {
		t.Errorf("c = %v, want NULL", out[2])
	}
}

func TestTransformUnmappedTermPassesThrough(t *testing.T) {
	tm := testMapping().TableFor("loc")
	out, err := tm.Transform(localSchema(), globalSchema(), sqlval.Row{sqlval.Str("y"), sqlval.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if out[1].AsString() != "y" {
		t.Errorf("unmapped term = %v", out[1])
	}
}

func TestTransformWidthMismatch(t *testing.T) {
	tm := testMapping().TableFor("loc")
	if _, err := tm.Transform(localSchema(), globalSchema(), sqlval.Row{sqlval.Int(1)}); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestValidate(t *testing.T) {
	m := testMapping()
	local := func(string) *sqldb.Schema { return localSchema() }
	global := func(string) *sqldb.Schema { return globalSchema() }
	if err := m.Validate(local, global); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
	bad := testMapping()
	bad.Tables[0].Columns[0].Global = "nope"
	if err := bad.Validate(local, global); err == nil {
		t.Error("bad global column accepted")
	}
	if err := m.Validate(func(string) *sqldb.Schema { return nil }, global); err == nil {
		t.Error("missing local table accepted")
	}
}

func TestIdentityMapping(t *testing.T) {
	g := globalSchema()
	m := Identity(g)
	tm := m.TableFor("glob")
	if tm == nil {
		t.Fatal("identity TableFor failed")
	}
	row := sqlval.Row{sqlval.Int(1), sqlval.Str("s"), sqlval.Float(2.5)}
	out, err := tm.Transform(g, g, row)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !sqlval.Equal(out[i], row[i]) {
			t.Errorf("identity changed column %d: %v", i, out[i])
		}
	}
}

func TestTemplateRegistryClones(t *testing.T) {
	RegisterTemplate("SAP", testMapping())
	got := Template("sap")
	if got == nil {
		t.Fatal("template not found (case-insensitive)")
	}
	// Customizing the returned template must not mutate the registry.
	got.Tables[0].Columns[0].Global = "customized"
	again := Template("SAP")
	if again.Tables[0].Columns[0].Global == "customized" {
		t.Error("template registry leaked mutation")
	}
	if Template("peoplesoft-unknown") != nil {
		t.Error("unknown template not nil")
	}
}

func TestInferColumns(t *testing.T) {
	ls := localSchema()
	gs := globalSchema()
	localRows := []sqlval.Row{
		{sqlval.Str("alpha"), sqlval.Int(1)},
		{sqlval.Str("beta"), sqlval.Int(2)},
		{sqlval.Str("gamma"), sqlval.Int(3)},
	}
	globalSamples := []sqlval.Row{
		{sqlval.Int(2), sqlval.Str("beta"), sqlval.Float(0)},
		{sqlval.Int(3), sqlval.Str("gamma"), sqlval.Float(0)},
	}
	props := InferColumns(ls, localRows, gs, globalSamples)
	found := map[string]string{}
	for _, p := range props {
		found[p.Global] = p.Local
	}
	if found["a"] != "a_local" {
		t.Errorf("a mapped to %q", found["a"])
	}
	if found["b"] != "b_local" {
		t.Errorf("b mapped to %q", found["b"])
	}
	if _, ok := found["c"]; ok {
		t.Error("c mapped despite no kind-compatible local column with overlap")
	}
}
