// Package schemamap implements relational schema mapping between the
// local schema of a participant's production system and the shared
// global schema of the corporate network (paper §4.1).
//
// A mapping has two levels, both from the paper: metadata mappings
// (local table/column definitions onto global ones) and value mappings
// (local vocabulary onto global terms — e.g. a local status code "03"
// onto the global term "SHIPPED"). Mappings are usually instantiated
// from a per-product template (§4.1: "for each popular production system
// (i.e., SAP or PeopleSoft), we provide a mapping template") and then
// customized by the participant.
package schemamap

import (
	"fmt"
	"strings"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// ColumnMapping maps one local column onto one global column, with an
// optional value mapping translating local terms.
type ColumnMapping struct {
	Local  string
	Global string
	// Values translates local string terms to global terms; values not
	// present pass through unchanged.
	Values map[string]string
}

// TableMapping maps one local table onto one global table.
type TableMapping struct {
	LocalTable  string
	GlobalTable string
	Columns     []ColumnMapping
}

// Mapping is a participant's full schema mapping.
type Mapping struct {
	// System is the production system kind this mapping applies to.
	System string
	Tables []TableMapping
}

// TableFor returns the mapping for a local table, or nil.
func (m *Mapping) TableFor(localTable string) *TableMapping {
	for i := range m.Tables {
		if strings.EqualFold(m.Tables[i].LocalTable, localTable) {
			return &m.Tables[i]
		}
	}
	return nil
}

// Validate checks the mapping against concrete local and global schemas:
// every referenced column must exist and the mapped kinds must be
// storable (identical, numeric-compatible, or string→date).
func (m *Mapping) Validate(local func(table string) *sqldb.Schema, global func(table string) *sqldb.Schema) error {
	for _, tm := range m.Tables {
		ls := local(tm.LocalTable)
		if ls == nil {
			return fmt.Errorf("schemamap: local table %s not found", tm.LocalTable)
		}
		gs := global(tm.GlobalTable)
		if gs == nil {
			return fmt.Errorf("schemamap: global table %s not found", tm.GlobalTable)
		}
		for _, cm := range tm.Columns {
			if ls.ColumnIndex(cm.Local) < 0 {
				return fmt.Errorf("schemamap: %s has no column %s", tm.LocalTable, cm.Local)
			}
			if gs.ColumnIndex(cm.Global) < 0 {
				return fmt.Errorf("schemamap: %s has no column %s", tm.GlobalTable, cm.Global)
			}
		}
	}
	return nil
}

// Transform converts one local row into a row of the global table's
// schema. Global columns with no mapped local column become NULL (the
// multi-tenant case the paper notes: participants may share a schema but
// populate different column subsets).
func (tm *TableMapping) Transform(local *sqldb.Schema, global *sqldb.Schema, row sqlval.Row) (sqlval.Row, error) {
	if len(row) != len(local.Columns) {
		return nil, fmt.Errorf("schemamap: row width %d != local schema width %d", len(row), len(local.Columns))
	}
	out := make(sqlval.Row, len(global.Columns))
	for i := range out {
		out[i] = sqlval.Null()
	}
	for _, cm := range tm.Columns {
		li := local.ColumnIndex(cm.Local)
		gi := global.ColumnIndex(cm.Global)
		if li < 0 || gi < 0 {
			return nil, fmt.Errorf("schemamap: unmapped column %s -> %s", cm.Local, cm.Global)
		}
		v := row[li]
		if len(cm.Values) > 0 && v.Kind() == sqlval.KindString {
			if mapped, ok := cm.Values[v.AsString()]; ok {
				v = sqlval.Str(mapped)
			}
		}
		out[gi] = v
	}
	return out, nil
}

// Identity returns the trivial mapping for participants whose local
// schema already equals the global schema (the configuration the paper
// uses for its performance benchmark, §6.1.4).
func Identity(schemas ...*sqldb.Schema) *Mapping {
	m := &Mapping{System: "identity"}
	for _, s := range schemas {
		tm := TableMapping{LocalTable: s.Table, GlobalTable: s.Table}
		for _, c := range s.Columns {
			tm.Columns = append(tm.Columns, ColumnMapping{Local: c.Name, Global: c.Name})
		}
		m.Tables = append(m.Tables, tm)
	}
	return m
}

// Template returns the base mapping template for a production-system
// kind, or nil if none is registered. Participants clone and customize
// the template (§4.1). Templates are registered with RegisterTemplate.
func Template(kind string) *Mapping {
	t, ok := templates[strings.ToLower(kind)]
	if !ok {
		return nil
	}
	return t.clone()
}

// RegisterTemplate installs (or replaces) the template for a kind.
func RegisterTemplate(kind string, m *Mapping) {
	templates[strings.ToLower(kind)] = m.clone()
}

var templates = map[string]*Mapping{}

func (m *Mapping) clone() *Mapping {
	out := &Mapping{System: m.System}
	for _, tm := range m.Tables {
		ntm := TableMapping{LocalTable: tm.LocalTable, GlobalTable: tm.GlobalTable}
		for _, cm := range tm.Columns {
			ncm := ColumnMapping{Local: cm.Local, Global: cm.Global}
			if cm.Values != nil {
				ncm.Values = make(map[string]string, len(cm.Values))
				for k, v := range cm.Values {
					ncm.Values[k] = v
				}
			}
			ntm.Columns = append(ntm.Columns, ncm)
		}
		out.Tables = append(out.Tables, ntm)
	}
	return out
}

// InferColumns performs simple instance-level matching [19]: for each
// unmapped global column it proposes the local column whose sample
// values overlap the global samples most. It complements schema-level
// mapping when column names carry no signal, and returns the proposals
// without mutating the mapping — a human confirms them, as the paper
// notes the process "requires human to be involved".
func InferColumns(localSchema *sqldb.Schema, localRows []sqlval.Row, globalSchema *sqldb.Schema, globalSamples []sqlval.Row) []ColumnMapping {
	var out []ColumnMapping
	for gi, gc := range globalSchema.Columns {
		bestScore := 0
		best := -1
		for li, lc := range localSchema.Columns {
			if lc.Kind != gc.Kind {
				continue
			}
			score := overlap(localRows, li, globalSamples, gi)
			if score > bestScore {
				bestScore, best = score, li
			}
		}
		if best >= 0 {
			out = append(out, ColumnMapping{Local: localSchema.Columns[best].Name, Global: gc.Name})
		}
	}
	return out
}

func overlap(a []sqlval.Row, ai int, b []sqlval.Row, bi int) int {
	seen := make(map[string]bool)
	for _, r := range a {
		if ai < len(r) && !r[ai].IsNull() {
			seen[r[ai].String()] = true
		}
	}
	n := 0
	for _, r := range b {
		if bi < len(r) && !r[bi].IsNull() && seen[r[bi].String()] {
			n++
		}
	}
	return n
}
