package sqlval

import (
	"hash/fnv"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INT",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
		KindDate:   "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int(42) = %+v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float(2.5) = %+v", v)
	}
	if v := Str("abc"); v.Kind() != KindString || v.AsString() != "abc" {
		t.Errorf("Str(abc) = %+v", v)
	}
	if v := Date(100); v.Kind() != KindDate || v.AsDays() != 100 {
		t.Errorf("Date(100) = %+v", v)
	}
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value is not NULL")
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1998-11-05")
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(1998, 11, 5, 0, 0, 0, 0, time.UTC).Unix() / 86400
	if v.AsDays() != want {
		t.Errorf("ParseDate days = %d, want %d", v.AsDays(), want)
	}
	if v.String() != "1998-11-05" {
		t.Errorf("round-trip = %q", v.String())
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("ParseDate accepted garbage")
	}
}

func TestMustParseDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseDate did not panic on bad input")
		}
	}()
	MustParseDate("xx")
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Int(2), Float(2.0), 0},
		{Float(1.9), Int(2), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Date(10), Date(20), -1},
		{Int(5), Str("5"), -1}, // differing non-numeric kinds order by tag
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// referenceHash is the original hash/fnv-based implementation; the
// inlined Hash must stay byte-identical to it forever, because shuffle
// partitioning assumes every peer build computes the same hashes.
func referenceHash(v Value) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	switch v.Kind() {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindInt, KindFloat, KindDate:
		buf[0] = 1
		bits := math.Float64bits(v.AsFloat())
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:9])
	case KindString:
		buf[0] = 2
		h.Write(buf[:1])
		h.Write([]byte(v.AsString()))
	}
	return h.Sum64()
}

func TestHashMatchesFNVReference(t *testing.T) {
	vals := []Value{
		Null(), Int(0), Int(-1), Int(1 << 40), Float(3.25), Float(-0.0),
		Str(""), Str("abc"), Str("l_shipdate"), Date(10500),
		MustParseDate("1998-09-01"),
	}
	for _, v := range vals {
		if got, want := v.Hash(), referenceHash(v); got != want {
			t.Errorf("Hash(%v) = %#x, reference %#x", v, got, want)
		}
	}
	f := func(x int64, s string) bool {
		return Int(x).Hash() == referenceHash(Int(x)) &&
			Str(s).Hash() == referenceHash(Str(s)) &&
			Float(float64(x)/7).Hash() == referenceHash(Float(float64(x)/7))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashAllocationFree(t *testing.T) {
	v := Str("a moderately long join key value")
	if n := testing.AllocsPerRun(100, func() { _ = v.Hash() }); n != 0 {
		t.Errorf("Hash allocates %.1f times per call", n)
	}
}

func TestHashEqualValuesHashEqual(t *testing.T) {
	f := func(x int64) bool {
		return Int(x).Hash() == Float(float64(x)).Hash() || float64(x) != math.Trunc(float64(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Str("abc").Hash() == Str("abd").Hash() {
		t.Error("suspicious collision on near strings")
	}
}

func TestArithmetic(t *testing.T) {
	if v := Add(Int(2), Int(3)); v.AsInt() != 5 || v.Kind() != KindInt {
		t.Errorf("Add int = %v", v)
	}
	if v := Add(Int(2), Float(0.5)); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Add mixed = %v", v)
	}
	if v := Sub(Int(2), Int(3)); v.AsInt() != -1 {
		t.Errorf("Sub = %v", v)
	}
	if v := Mul(Float(2), Float(4)); v.AsFloat() != 8 {
		t.Errorf("Mul = %v", v)
	}
	if v := Div(Int(1), Int(2)); v.AsFloat() != 0.5 {
		t.Errorf("Div = %v", v)
	}
	if !Div(Int(1), Int(0)).IsNull() {
		t.Error("Div by zero not NULL")
	}
	if !Add(Null(), Int(1)).IsNull() {
		t.Error("Add with NULL not NULL")
	}
	if !Mul(Str("x"), Int(1)).IsNull() {
		t.Error("Mul with string not NULL")
	}
}

func TestEncodedSize(t *testing.T) {
	if Null().EncodedSize() != 1 {
		t.Error("null size")
	}
	if Int(7).EncodedSize() != 9 {
		t.Error("int size")
	}
	if Str("abcd").EncodedSize() != 5 {
		t.Error("string size")
	}
	r := Row{Int(1), Str("ab")}
	if r.EncodedSize() != 12 {
		t.Errorf("row size = %d", r.EncodedSize())
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{Int(1), Int(2)}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].AsInt() != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestRowString(t *testing.T) {
	r := Row{Int(1), Str("x"), Null()}
	if got := r.String(); got != "1|x|NULL" {
		t.Errorf("Row.String() = %q", got)
	}
}

func TestValueStringFloat(t *testing.T) {
	if got := Float(2.5).String(); got != "2.5" {
		t.Errorf("Float string = %q", got)
	}
}

func TestGobRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), Int(-42), Float(3.25), Str("hello 'world'"),
		MustParseDate("1998-11-05"), Str(""),
	}
	for _, v := range vals {
		data, err := v.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		var back Value
		if err := back.GobDecode(data); err != nil {
			t.Fatal(err)
		}
		if Compare(v, back) != 0 || v.Kind() != back.Kind() {
			t.Errorf("round trip changed %v (%v) -> %v (%v)", v, v.Kind(), back, back.Kind())
		}
	}
	var v Value
	if err := v.GobDecode([]byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
}
