// Package sqlval defines the typed value system shared by the embedded
// relational engine, the BATON index layer, and the histogram module.
//
// A Value is a compact tagged union over the SQL types BestPeer++
// supports: 64-bit integers, 64-bit floats, strings, dates, and NULL.
// Dates are stored as days since the Unix epoch so that range predicates
// over dates (e.g. TPC-H l_shipdate) reduce to integer comparisons.
package sqlval

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64 // int, date (days since epoch), and float bits
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, i: int64(math.Float64bits(v))} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Date returns a date value from days since the Unix epoch.
func Date(days int64) Value { return Value{kind: KindDate, i: days} }

// DateFromTime converts a time.Time (UTC midnight assumed) to a date value.
func DateFromTime(t time.Time) Value {
	return Date(t.UTC().Unix() / 86400)
}

// ParseDate parses a YYYY-MM-DD literal into a date value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null(), fmt.Errorf("sqlval: bad date %q: %w", s, err)
	}
	return DateFromTime(t), nil
}

// MustParseDate is ParseDate that panics on malformed input; intended for
// literals in tests and generators.
func MustParseDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It is valid for KindInt and KindDate.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload for KindFloat, or a widened integer
// for KindInt/KindDate.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return math.Float64frombits(uint64(v.i))
	case KindInt, KindDate:
		return float64(v.i)
	default:
		return 0
	}
}

// AsString returns the string payload for KindString.
func (v Value) AsString() string { return v.s }

// AsDays returns the day count for KindDate.
func (v Value) AsDays() int64 { return v.i }

// Numeric reports whether the value is INT or FLOAT.
func (v Value) Numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display and for stable fingerprinting.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
	case KindString:
		return v.s
	case KindDate:
		return time.Unix(v.i*86400, 0).UTC().Format("2006-01-02")
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// numericLike reports whether the value compares on the number line:
// INT, FLOAT, and DATE (dates are day counts, so a date and an integer
// day number compare numerically).
func (v Value) numericLike() bool {
	return v.kind == KindInt || v.kind == KindFloat || v.kind == KindDate
}

// Compare orders two values. NULL sorts before everything; mixed
// number-line kinds (INT, FLOAT, DATE) compare numerically; otherwise
// values of different kinds order by kind tag. Returns -1, 0, or +1.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.numericLike() && b.numericLike() && a.kind != b.kind {
		return cmpFloat(a.AsFloat(), b.AsFloat())
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindInt, KindDate:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	case KindFloat:
		return cmpFloat(a.AsFloat(), b.AsFloat())
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal. NULL equals NULL for
// the purposes of grouping and index keys (SQL three-valued logic is
// applied at the predicate layer, not here).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Less reports a < b under Compare ordering.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// FNV-1a parameters, inlined so hashing never allocates a hash.Hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash returns a stable 64-bit hash of the value, used for hash joins,
// grouping, and MapReduce shuffle partitioning. Values that compare
// equal hash equally (numeric kinds hash via their float widening).
// The layout (tag byte, then float bits little-endian for numerics or
// raw bytes for strings) is fixed: shuffle partitioning across peers
// depends on every process computing identical hashes.
func (v Value) Hash() uint64 {
	var h uint64 = fnvOffset64
	switch v.kind {
	case KindNull:
		h = (h ^ 0) * fnvPrime64
	case KindInt, KindFloat, KindDate:
		h = (h ^ 1) * fnvPrime64
		bits := math.Float64bits(v.AsFloat())
		for i := 0; i < 8; i++ {
			h = (h ^ uint64(byte(bits>>(8*i)))) * fnvPrime64
		}
	case KindString:
		h = (h ^ 2) * fnvPrime64
		for i := 0; i < len(v.s); i++ {
			h = (h ^ uint64(v.s[i])) * fnvPrime64
		}
	}
	return h
}

// EncodedSize approximates the wire/storage footprint of the value in
// bytes. The virtual-time cost model uses it to account disk and network
// transfer volume.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindInt, KindFloat, KindDate:
		return 9
	case KindString:
		return 1 + len(v.s)
	default:
		return 1
	}
}

// Add returns a+b with numeric widening. Any NULL operand yields NULL.
func Add(a, b Value) Value {
	return arith(a, b, func(x, y int64) int64 { return x + y }, func(x, y float64) float64 { return x + y })
}

// Sub returns a-b with numeric widening. Any NULL operand yields NULL.
func Sub(a, b Value) Value {
	return arith(a, b, func(x, y int64) int64 { return x - y }, func(x, y float64) float64 { return x - y })
}

// Mul returns a*b with numeric widening. Any NULL operand yields NULL.
func Mul(a, b Value) Value {
	return arith(a, b, func(x, y int64) int64 { return x * y }, func(x, y float64) float64 { return x * y })
}

// Div returns a/b as a float; NULL on NULL operands or division by zero.
func Div(a, b Value) Value {
	if a.IsNull() || b.IsNull() || !a.Numeric() || !b.Numeric() {
		return Null()
	}
	d := b.AsFloat()
	if d == 0 {
		return Null()
	}
	return Float(a.AsFloat() / d)
}

func arith(a, b Value, fi func(int64, int64) int64, ff func(float64, float64) float64) Value {
	if a.IsNull() || b.IsNull() || !a.Numeric() || !b.Numeric() {
		return Null()
	}
	if a.kind == KindInt && b.kind == KindInt {
		return Int(fi(a.i, b.i))
	}
	return Float(ff(a.AsFloat(), b.AsFloat()))
}

// Row is a tuple of values.
type Row []Value

// Clone returns a copy of the row that shares no backing array.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// EncodedSize sums the encoded sizes of the row's values.
func (r Row) EncodedSize() int {
	n := 0
	for _, v := range r {
		n += v.EncodedSize()
	}
	return n
}

// String renders the row as a pipe-separated record; the data loader's
// fingerprinting uses it as the canonical tuple encoding.
func (r Row) String() string {
	out := make([]byte, 0, 16*len(r))
	for i, v := range r {
		if i > 0 {
			out = append(out, '|')
		}
		out = append(out, v.String()...)
	}
	return string(out)
}

// GobEncode implements gob.GobEncoder: values cross process boundaries
// when pnet runs over TCP. Layout: kind byte, 8-byte payload, string.
func (v Value) GobEncode() ([]byte, error) {
	out := make([]byte, 0, 9+len(v.s))
	out = append(out, byte(v.kind))
	for i := 0; i < 8; i++ {
		out = append(out, byte(v.i>>(8*i)))
	}
	out = append(out, v.s...)
	return out, nil
}

// GobDecode implements gob.GobDecoder.
func (v *Value) GobDecode(data []byte) error {
	if len(data) < 9 {
		return fmt.Errorf("sqlval: short gob payload (%d bytes)", len(data))
	}
	v.kind = Kind(data[0])
	v.i = 0
	for i := 0; i < 8; i++ {
		v.i |= int64(data[1+i]) << (8 * i)
	}
	v.s = string(data[9:])
	return nil
}
