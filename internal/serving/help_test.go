package serving

import (
	"strings"
	"testing"

	"bestpeer/internal/telemetry"
)

// TestEveryServingMetricHasHelp fails when a serving_* family on the
// process registry — or a peer_serving_* family on the peer registry —
// renders without a # HELP line. Adding a metric without documenting it
// breaks this test.
func TestEveryServingMetricHasHelp(t *testing.T) {
	reg := telemetry.NewRegistry()
	_ = newMetrics(reg)

	for _, name := range telemetry.MissingHelp(telemetry.Default.Text()) {
		if strings.HasPrefix(name, "serving_") {
			t.Errorf("serving family %q has no HELP text", name)
		}
	}
	for _, name := range telemetry.MissingHelp(reg.Text()) {
		if strings.HasPrefix(name, "peer_serving_") {
			t.Errorf("peer serving family %q has no HELP text", name)
		}
	}
}
