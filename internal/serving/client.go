package serving

import (
	"fmt"
	"time"

	"bestpeer/internal/pnet"
	"bestpeer/internal/sqldb"
)

// Client drives one logical session against a peer's serving tier over
// any pnet endpoint (in-process or TCP — the verbs and typed errors
// survive both). Not safe for concurrent use; open one Client per
// simulated client.
type Client struct {
	ep     *pnet.Endpoint
	peer   string
	id     string
	closed bool
}

// NewClient prepares a session client addressing the serving tier at
// peer through ep. Call Open before Query.
func NewClient(ep *pnet.Endpoint, peer string) *Client {
	return &Client{ep: ep, peer: peer}
}

// Open establishes the session. class "" means interactive; strategy ""
// means the basic engine.
func (c *Client) Open(user, class, strategy string) error {
	rep, err := c.ep.Call(c.peer, MsgOpen, OpenRequest{User: user, Class: class, Strategy: strategy}, 64)
	if err != nil {
		return err
	}
	or, ok := rep.Payload.(OpenReply)
	if !ok {
		return fmt.Errorf("serving: bad open reply %T", rep.Payload)
	}
	c.id = or.SessionID
	c.closed = false
	return nil
}

// SessionID reports the open session's identity ("" before Open).
func (c *Client) SessionID() string { return c.id }

// QueryOutcome is one session query's client-side view.
type QueryOutcome struct {
	Result    *sqldb.Result
	Engine    string
	VTime     time.Duration
	CacheHit  bool
	QueueWait time.Duration
}

// Query runs sql in the session under the given cache mode. Rejections
// surface as ErrOverloaded (test with Overloaded(err)).
func (c *Client) Query(sql string, mode CacheMode) (QueryOutcome, error) {
	if c.id == "" {
		return QueryOutcome{}, fmt.Errorf("%w: client has no open session", ErrUnknownSession)
	}
	rep, err := c.ep.Call(c.peer, MsgQuery, QueryRequest{SessionID: c.id, SQL: sql, Cache: mode}, int64(len(sql)))
	if err != nil {
		return QueryOutcome{}, err
	}
	qr, ok := rep.Payload.(QueryReply)
	if !ok {
		return QueryOutcome{}, fmt.Errorf("serving: bad query reply %T", rep.Payload)
	}
	return QueryOutcome{Result: qr.Result, Engine: qr.Engine, VTime: qr.VTime, CacheHit: qr.CacheHit, QueueWait: qr.QueueWait}, nil
}

// Close tears the session down and reports its lifetime query count.
// Closing twice is a no-op.
func (c *Client) Close() (int64, error) {
	if c.id == "" || c.closed {
		return 0, nil
	}
	rep, err := c.ep.Call(c.peer, MsgClose, CloseRequest{SessionID: c.id}, 64)
	if err != nil {
		return 0, err
	}
	cr, ok := rep.Payload.(CloseReply)
	if !ok {
		return 0, fmt.Errorf("serving: bad close reply %T", rep.Payload)
	}
	c.closed = true
	return cr.Queries, nil
}
