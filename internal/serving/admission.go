package serving

import (
	"fmt"
	"sync"
	"time"
)

// Weighted admission control: callers block in admit until a worker
// slot frees (stride scheduling across classes, so interactive traffic
// gets InteractiveWeight grants for every batch grant under
// contention), and are rejected with ErrOverloaded when their class
// queue is full or the recent queue-wait p95/p99 blew the shedding
// budget. The feedback signal is the same queue-wait quantile the
// bootstrap collector scores — computed locally over a short rotating
// window so shedding reacts within ShedWindow, not a report epoch.

// Class indexes (admitter-internal; the wire speaks the Class* names).
const (
	classInteractive = iota
	classBatch
	numClasses
)

// classNames maps class indexes to wire names.
var classNames = [numClasses]string{ClassInteractive, ClassBatch}

// classIndex resolves a wire class name ("" = interactive).
func classIndex(name string) (int, error) {
	switch name {
	case ClassInteractive, "":
		return classInteractive, nil
	case ClassBatch:
		return classBatch, nil
	default:
		return 0, fmt.Errorf("serving: unknown admission class %q (%s|%s)", name, ClassInteractive, ClassBatch)
	}
}

// waiter is one queued admission request. The grant channel is buffered
// so dispatch never blocks on a waiter.
type waiter struct {
	ch   chan bool // true = admitted, false = queue closed
	at   time.Time
	wait time.Duration // queue wait, stamped at grant
}

// classQueue is one class's FIFO plus its stride-scheduling state.
type classQueue struct {
	waiters []*waiter
	pass    float64 // stride pass value; smallest pass dispatches next
	stride  float64 // 1/weight
	budget  struct{ p95, p99 time.Duration }
}

// admitter is the weighted admission queue for one serving tier.
type admitter struct {
	mu      sync.Mutex
	workers int
	depth   int // per-class queue bound
	active  int
	closed  bool
	vtime   float64 // scheduler virtual time: pass of the last dispatched class
	classes [numClasses]classQueue
	window  *waitWindow
	minObs  int // samples required before quantile shedding engages
	m       *metrics
}

func newAdmitter(cfg Config, m *metrics) *admitter {
	a := &admitter{
		workers: cfg.Workers,
		depth:   cfg.QueueDepth,
		window:  newWaitWindow(cfg.ShedWindow),
		minObs:  cfg.MinShedSamples,
		m:       m,
	}
	a.classes[classInteractive].stride = 1 / float64(cfg.InteractiveWeight)
	a.classes[classBatch].stride = 1 / float64(cfg.BatchWeight)
	// Interactive sheds at the configured budget; batch at half of it,
	// so background load yields headroom before interactive suffers.
	a.classes[classInteractive].budget.p95 = cfg.ShedP95
	a.classes[classInteractive].budget.p99 = cfg.ShedP99
	a.classes[classBatch].budget.p95 = cfg.ShedP95 / 2
	a.classes[classBatch].budget.p99 = cfg.ShedP99 / 2
	return a
}

// admit blocks until a worker slot is granted and returns the queue
// wait plus a release func the caller must invoke when done. It fails
// fast with ErrOverloaded when the class should shed instead of queue.
func (a *admitter) admit(class int) (time.Duration, func(), error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: serving tier closed", ErrOverloaded)
	}
	cq := &a.classes[class]
	if len(cq.waiters) >= a.depth {
		a.m.shed[class].Inc()
		a.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %s queue full (%d waiting)", ErrOverloaded, classNames[class], a.depth)
	}
	now := time.Now()
	if p95, p99, over := a.overBudgetLocked(cq, now); over {
		a.m.shed[class].Inc()
		a.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %s queue wait p95=%v p99=%v over budget (p95<=%v p99<=%v)",
			ErrOverloaded, classNames[class], p95.Round(time.Millisecond), p99.Round(time.Millisecond),
			cq.budget.p95, cq.budget.p99)
	}
	w := &waiter{ch: make(chan bool, 1), at: now}
	if len(cq.waiters) == 0 && cq.pass < a.vtime {
		// Stride activation rule: a class waking from idle joins at the
		// scheduler's current virtual time. Keeping its stale (smaller)
		// pass would replay every grant it missed while idle as one long
		// consecutive burst, inverting the weights exactly when the other
		// class is saturated.
		cq.pass = a.vtime
	}
	cq.waiters = append(cq.waiters, w)
	a.m.queueDepth[class].Add(1)
	a.dispatchLocked()
	a.mu.Unlock()

	if !<-w.ch {
		return 0, nil, fmt.Errorf("%w: serving tier closed", ErrOverloaded)
	}
	return w.wait, a.release, nil
}

// overBudgetLocked evaluates the class's shedding predicate over the
// recent queue-wait window.
func (a *admitter) overBudgetLocked(cq *classQueue, now time.Time) (p95, p99 time.Duration, over bool) {
	if cq.budget.p95 <= 0 && cq.budget.p99 <= 0 {
		return 0, 0, false
	}
	if a.window.samples(now) < int64(a.minObs) {
		return 0, 0, false
	}
	p95 = a.window.quantile(0.95, now)
	p99 = a.window.quantile(0.99, now)
	over = (cq.budget.p95 > 0 && p95 > cq.budget.p95) || (cq.budget.p99 > 0 && p99 > cq.budget.p99)
	return p95, p99, over
}

// release frees the caller's worker slot and hands it to the next
// waiter.
func (a *admitter) release() {
	a.mu.Lock()
	a.active--
	a.dispatchLocked()
	a.mu.Unlock()
}

// dispatchLocked grants worker slots to queued waiters, picking the
// class with the smallest stride pass (ties favor interactive). Each
// grant stamps the waiter's queue wait into the shedding window and the
// telemetry histograms.
func (a *admitter) dispatchLocked() {
	for a.active < a.workers {
		best := -1
		for i := range a.classes {
			if len(a.classes[i].waiters) == 0 {
				continue
			}
			if best < 0 || a.classes[i].pass < a.classes[best].pass {
				best = i
			}
		}
		if best < 0 {
			// Idle: re-zero the pass values so they cannot drift apart
			// (and eventually lose float precision) across bursts.
			for i := range a.classes {
				a.classes[i].pass = 0
			}
			a.vtime = 0
			return
		}
		cq := &a.classes[best]
		w := cq.waiters[0]
		cq.waiters = cq.waiters[1:]
		a.vtime = cq.pass
		cq.pass += cq.stride
		a.active++
		now := time.Now()
		w.wait = now.Sub(w.at)
		a.window.observe(w.wait, now)
		a.m.queueDepth[best].Add(-1)
		a.m.admitted[best].Inc()
		a.m.observeQueueWait(w.wait)
		w.ch <- true
	}
}

// close rejects every queued waiter and makes future admits fail fast.
func (a *admitter) close() {
	a.mu.Lock()
	a.closed = true
	var all []*waiter
	for i := range a.classes {
		n := len(a.classes[i].waiters)
		all = append(all, a.classes[i].waiters...)
		a.classes[i].waiters = nil
		a.m.queueDepth[i].Add(int64(-n))
	}
	a.mu.Unlock()
	for _, w := range all {
		w.ch <- false
	}
}

// waitBounds are the shedding window's bucket upper bounds in seconds.
var waitBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// waitWindow is a two-epoch rotating bucket histogram of recent queue
// waits: quantiles merge the current and previous epoch, so the view
// always spans between one and two ShedWindows of history and old
// saturation ages out in O(1). Callers hold the admitter's mutex.
type waitWindow struct {
	span    time.Duration
	rotated time.Time
	cur     []int64
	prev    []int64
	curN    int64
	prevN   int64
}

func newWaitWindow(span time.Duration) *waitWindow {
	return &waitWindow{
		span:    span,
		rotated: time.Now(),
		cur:     make([]int64, len(waitBounds)+1),
		prev:    make([]int64, len(waitBounds)+1),
	}
}

// rotate ages the epochs forward when the current one expired.
func (w *waitWindow) rotate(now time.Time) {
	age := now.Sub(w.rotated)
	if age < w.span {
		return
	}
	if age >= 2*w.span {
		// Both epochs are stale: start clean.
		for i := range w.prev {
			w.prev[i] = 0
		}
		w.prevN = 0
	} else {
		copy(w.prev, w.cur)
		w.prevN = w.curN
	}
	for i := range w.cur {
		w.cur[i] = 0
	}
	w.curN = 0
	w.rotated = now
}

// observe records one queue wait.
func (w *waitWindow) observe(d time.Duration, now time.Time) {
	w.rotate(now)
	sec := d.Seconds()
	i := 0
	for i < len(waitBounds) && sec > waitBounds[i] {
		i++
	}
	w.cur[i]++
	w.curN++
}

// samples counts the observations currently in view.
func (w *waitWindow) samples(now time.Time) int64 {
	w.rotate(now)
	return w.curN + w.prevN
}

// quantile returns a conservative (bucket upper bound) estimate of the
// q-quantile over the merged epochs; 0 when empty.
func (w *waitWindow) quantile(q float64, now time.Time) time.Duration {
	w.rotate(now)
	total := w.curN + w.prevN
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range w.cur {
		cum += w.cur[i] + w.prev[i]
		if cum >= rank {
			if i < len(waitBounds) {
				return time.Duration(waitBounds[i] * float64(time.Second))
			}
			// Overflow bucket: beyond the largest bound.
			return time.Duration(2 * waitBounds[len(waitBounds)-1] * float64(time.Second))
		}
	}
	return time.Duration(2 * waitBounds[len(waitBounds)-1] * float64(time.Second))
}
