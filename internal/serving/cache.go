package serving

import (
	"container/list"
	"sync"
	"time"

	"bestpeer/internal/sqldb"
)

// Versioned result cache: entries are keyed by the session user plus
// the statement's normalized rendering (so textual variants of one
// query share an entry, but accounts never do — data owners mask rows
// per role; see cacheKey) and stamped with versions captured before
// execution. A lookup serves an entry only when the versions still
// match the database exactly, so a stale result is structurally
// unservable; the mismatching entry is dropped on sight and counted as
// an invalidation. Bounded by entry count (LRU) and per-result bytes
// (oversized results are never cached).
//
// Two stamping schemes exist. The precise one (Config.TableVersions)
// records a per-table data-version vector covering exactly the tables
// the statement reads: DML against any other table leaves the entry
// servable, so a busy ingest pipeline on one table no longer storms the
// whole cache. The legacy one (Config.Versions) stamps the cluster-wide
// (schema, data) sums, under which any DML anywhere invalidates
// everything.
//
// Cached *sqldb.Result values are shared by reference with every hit;
// results are treated as immutable once executed, the same contract the
// engines already rely on when fanning a subquery result out.

// cacheEntry is one cached query result.
type cacheEntry struct {
	key     string
	res     *sqldb.Result
	engine  string
	vtime   time.Duration
	schemaV uint64
	dataV   uint64 // cluster data-version sum (legacy stamping)
	// dataVec, when non-nil, is the per-table data-version vector for
	// the tables the statement reads (sorted table order); it replaces
	// dataV in freshness checks.
	dataVec []uint64
	bytes   int64
}

// vecEqual reports element-wise equality of two version vectors.
func vecEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type resultCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64      // per-entry bound
	lru      *list.List // front = most recently used; values are *cacheEntry
	byKey    map[string]*list.Element
	bytes    int64
	m        *metrics
}

func newResultCache(capacity int, maxBytes int64, m *metrics) *resultCache {
	return &resultCache{
		cap:      capacity,
		maxBytes: maxBytes,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
		m:        m,
	}
}

// lookup returns the fresh entry cached under key, or nil. An entry
// whose version pair no longer matches is removed and counted as an
// invalidation — the lazy half of invalidation; the eager half is
// InvalidateAll on failover.
func (c *resultCache) lookup(key string, schemaV, dataV uint64, dataVec []uint64) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	fresh := e.schemaV == schemaV
	if fresh {
		if e.dataVec != nil || dataVec != nil {
			fresh = vecEqual(e.dataVec, dataVec)
		} else {
			fresh = e.dataV == dataV
		}
	}
	if !fresh {
		c.removeLocked(el, e)
		c.m.cacheInvalidations.Inc()
		return nil
	}
	c.lru.MoveToFront(el)
	return e
}

// store inserts or replaces the entry for e.key, evicting from the LRU
// tail past capacity. Oversized results are dropped (counted), not
// cached.
func (c *resultCache) store(e *cacheEntry) {
	if e.bytes > c.maxBytes {
		c.m.cacheOversize.Inc()
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.key]; ok {
		old := el.Value.(*cacheEntry)
		c.bytes += e.bytes - old.bytes
		c.m.cacheBytes.Add(e.bytes - old.bytes)
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[e.key] = c.lru.PushFront(e)
	c.bytes += e.bytes
	c.m.cacheEntries.Add(1)
	c.m.cacheBytes.Add(e.bytes)
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		te := tail.Value.(*cacheEntry)
		c.removeLocked(tail, te)
		c.m.cacheEvictions.Inc()
	}
}

// removeLocked unlinks one entry and updates the gauges.
func (c *resultCache) removeLocked(el *list.Element, e *cacheEntry) {
	c.lru.Remove(el)
	delete(c.byKey, e.key)
	c.bytes -= e.bytes
	c.m.cacheEntries.Add(-1)
	c.m.cacheBytes.Add(-e.bytes)
}

// invalidateAll drops every entry (failover: a restored backup may
// rewind the data version sum, which lazy version checks cannot see).
func (c *resultCache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := int64(c.lru.Len())
	if n == 0 {
		return
	}
	c.lru.Init()
	c.byKey = make(map[string]*list.Element)
	c.m.cacheEntries.Add(-n)
	c.m.cacheBytes.Add(-c.bytes)
	c.bytes = 0
	c.m.cacheInvalidations.Add(n)
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// resultBytes estimates a result's cached footprint.
func resultBytes(res *sqldb.Result) int64 {
	if res == nil {
		return 0
	}
	if res.Stats.BytesReturned > 0 {
		return res.Stats.BytesReturned
	}
	// Aggregates report zero BytesReturned; charge a small per-cell
	// estimate so entry accounting never records zero-byte rows.
	var cells int64
	for _, row := range res.Rows {
		cells += int64(len(row))
	}
	return 16 * (cells + int64(len(res.Columns)))
}
