// Package serving is the front door of a BestPeer++ normal peer: the
// serving tier the paper's throughput experiments presuppose (§6.2
// drives each peer with a bank of 20 fetch threads serving a stream of
// independent clients) but the reproduction previously lacked — queries
// arrived one at a time through library calls.
//
// The tier layers three mechanisms over peer.Query:
//
//   - A session layer multiplexing many logical client sessions over
//     the hardened pnet transport (session.open/query/close verbs with
//     per-session state: user, admission class, engine strategy).
//   - A weighted admission queue with interactive and batch classes,
//     bounded depth, and telemetry-driven load shedding: when the
//     recent queue-wait p95/p99 blows the configured budget, new
//     arrivals are rejected with the typed ErrOverloaded instead of
//     queuing toward a timeout (batch sheds at half the interactive
//     budget).
//   - A versioned result cache keyed by the session user plus the
//     normalized statement text, stamped with the database's monotonic
//     (schema, data) version pair, so a cached result is never served
//     across a DDL or DML bump — and never across accounts, because
//     data owners apply per-role access checks and row masking, making
//     results user-dependent. Per-query CacheMode selects
//     use/refresh/bypass.
//
// The tier is attached per peer (peer.StartServing / Network
// .EnableServing); with it unattached, nothing changes anywhere.
package serving

import (
	"fmt"
	"sync"
	"time"

	"bestpeer/internal/pnet"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/telemetry"
)

// Backend executes one admitted query. peer.Peer adapts its Query
// method to this; tests plug in stubs.
type Backend interface {
	ServeQuery(sql, user, strategy string) (Executed, error)
}

// Executed is a backend execution's outcome.
type Executed struct {
	Result *sqldb.Result
	Engine string
	VTime  time.Duration
}

// Config sizes one peer's serving tier. Zero values select defaults.
type Config struct {
	// Workers bounds concurrently executing queries (default 20 — the
	// paper's per-peer fetch thread count, §6.1.2).
	Workers int
	// QueueDepth bounds each class's admission queue (default 256).
	QueueDepth int
	// InteractiveWeight : BatchWeight is the stride-scheduling grant
	// ratio under contention (defaults 4 : 1).
	InteractiveWeight int
	BatchWeight       int
	// ShedP95/ShedP99 are the interactive queue-wait budgets; arrivals
	// are shed while the recent window's quantile exceeds them (batch
	// sheds at half). Defaults 250ms / 1s.
	ShedP95 time.Duration
	ShedP99 time.Duration
	// ShedWindow is the quantile window's epoch (default 1s; the view
	// spans one to two epochs).
	ShedWindow time.Duration
	// MinShedSamples gates quantile shedding until the window holds
	// this many waits (default 16), so an idle tier never sheds.
	MinShedSamples int
	// MaxSessions bounds the session table (default 4096).
	MaxSessions int
	// CacheEntries bounds the result cache (default 512).
	CacheEntries int
	// CacheMaxResultBytes bounds one cached result (default 1 MiB).
	CacheMaxResultBytes int64
	// DisableCache turns the result cache off entirely.
	DisableCache bool
	// Versions supplies the cluster-wide (schema, data) version pair
	// results are cached under when TableVersions is unset. Coarse: any
	// DML anywhere bumps the data sum and invalidates every entry.
	Versions func() (schema, data uint64)
	// TableVersions supplies the schema version plus a per-table
	// data-version vector for exactly the (sorted) tables a statement
	// reads. When set it takes precedence over Versions and scopes
	// invalidation: DML against unrelated tables keeps entries servable.
	// Caching requires one of the two; both nil disables the cache.
	TableVersions func(tables []string) (schema uint64, data []uint64)
	// Registry, when set, receives the peer-scoped serving series
	// (peer_serving_*) the telemetry reporter ships to the bootstrap
	// collector. Process-wide serving_* series always go to
	// telemetry.Default.
	Registry *telemetry.Registry
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 20
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.InteractiveWeight <= 0 {
		c.InteractiveWeight = 4
	}
	if c.BatchWeight <= 0 {
		c.BatchWeight = 1
	}
	if c.ShedP95 == 0 {
		c.ShedP95 = 250 * time.Millisecond
	}
	if c.ShedP99 == 0 {
		c.ShedP99 = time.Second
	}
	if c.ShedWindow <= 0 {
		c.ShedWindow = time.Second
	}
	if c.MinShedSamples <= 0 {
		c.MinShedSamples = 16
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.CacheMaxResultBytes <= 0 {
		c.CacheMaxResultBytes = 1 << 20
	}
	if c.Versions == nil && c.TableVersions == nil {
		c.DisableCache = true
	}
	return c
}

// metrics caches the tier's telemetry handles: process-wide serving_*
// series on telemetry.Default (bptop's summary line) plus optional
// peer_serving_* mirrors on the peer's private registry (the reporter →
// collector health path).
type metrics struct {
	sessionsOpen  *telemetry.Gauge
	sessionsTotal *telemetry.Counter
	admitted      [numClasses]*telemetry.Counter
	shed          [numClasses]*telemetry.Counter
	queueWait     *telemetry.Histogram
	queueDepth    [numClasses]*telemetry.Gauge

	cacheHits          *telemetry.Counter
	cacheMisses        *telemetry.Counter
	cacheBypass        *telemetry.Counter
	cacheInvalidations *telemetry.Counter
	cacheEvictions     *telemetry.Counter
	cacheOversize      *telemetry.Counter
	cacheEntries       *telemetry.Gauge
	cacheBytes         *telemetry.Gauge

	peerQueueWait *telemetry.Histogram // nil without a peer registry
	peerAdmitted  *telemetry.Counter
	peerShed      *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) *metrics {
	d := telemetry.Default
	m := &metrics{
		sessionsOpen:       d.Gauge("serving_sessions_open"),
		sessionsTotal:      d.Counter("serving_sessions_opened_total"),
		queueWait:          d.Histogram("serving_queue_wait_seconds", nil),
		cacheHits:          d.Counter("serving_cache_hits_total"),
		cacheMisses:        d.Counter("serving_cache_misses_total"),
		cacheBypass:        d.Counter("serving_cache_bypass_total"),
		cacheInvalidations: d.Counter("serving_cache_invalidations_total"),
		cacheEvictions:     d.Counter("serving_cache_evictions_total"),
		cacheOversize:      d.Counter("serving_cache_oversize_total"),
		cacheEntries:       d.Gauge("serving_cache_entries"),
		cacheBytes:         d.Gauge("serving_cache_bytes"),
	}
	for i := range classNames {
		m.admitted[i] = d.Counter("serving_admitted_total", telemetry.L("class", classNames[i]))
		m.shed[i] = d.Counter("serving_shed_total", telemetry.L("class", classNames[i]))
		m.queueDepth[i] = d.Gauge("serving_queue_depth", telemetry.L("class", classNames[i]))
	}
	d.SetHelp("serving_sessions_open", "Client sessions currently open on this frontend.")
	d.SetHelp("serving_sessions_opened_total", "Client sessions opened since start.")
	d.SetHelp("serving_queue_wait_seconds", "Admission queue wait for admitted statements.")
	d.SetHelp("serving_cache_hits_total", "Result-cache lookups served from cache.")
	d.SetHelp("serving_cache_misses_total", "Result-cache lookups that went to execution.")
	d.SetHelp("serving_cache_bypass_total", "Statements that skipped the result cache.")
	d.SetHelp("serving_cache_invalidations_total", "Cache entries dropped by version bumps.")
	d.SetHelp("serving_cache_evictions_total", "Cache entries evicted by capacity pressure.")
	d.SetHelp("serving_cache_oversize_total", "Results too large to cache.")
	d.SetHelp("serving_cache_entries", "Result-cache entries resident.")
	d.SetHelp("serving_cache_bytes", "Result-cache bytes resident.")
	d.SetHelp("serving_admitted_total", "Statements admitted, by workload class.")
	d.SetHelp("serving_shed_total", "Statements shed at admission, by workload class.")
	d.SetHelp("serving_queue_depth", "Admission queue depth, by workload class.")
	if reg != nil {
		m.peerQueueWait = reg.Histogram("peer_serving_queue_seconds", nil)
		m.peerAdmitted = reg.Counter("peer_serving_admitted_total")
		m.peerShed = reg.Counter("peer_serving_shed_total")
		reg.SetHelp("peer_serving_queue_seconds", "Admission queue wait on this peer's frontend.")
		reg.SetHelp("peer_serving_admitted_total", "Statements admitted on this peer's frontend.")
		reg.SetHelp("peer_serving_shed_total", "Statements shed on this peer's frontend.")
	}
	return m
}

// observeQueueWait feeds one admitted wait into both registries. The
// class shed counters mirror into the peer registry via recordShed.
func (m *metrics) observeQueueWait(d time.Duration) {
	m.queueWait.ObserveDuration(d)
	if m.peerQueueWait != nil {
		m.peerQueueWait.ObserveDuration(d)
	}
	if m.peerAdmitted != nil {
		m.peerAdmitted.Inc()
	}
}

// session is one logical client's per-session state.
type session struct {
	id       string
	user     string
	class    int
	strategy string
	opened   time.Time
	queries  int64 // guarded by the server mutex
}

// Server is one peer's serving tier.
type Server struct {
	cfg   Config
	be    Backend
	id    string
	adm   *admitter
	cache *resultCache // nil when caching is disabled
	m     *metrics

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64
	closed   bool
}

// Attach builds a Server over backend and registers the session verbs
// on ep. session.query is idempotent (read-only) so the transport's
// retry policy applies; open/close are at-most-once.
func Attach(ep *pnet.Endpoint, backend Backend, cfg Config) *Server {
	s := New(ep.ID(), backend, cfg)
	ep.Handle(MsgOpen, s.handleOpen)
	ep.HandleIdempotent(MsgQuery, s.handleQuery)
	ep.Handle(MsgClose, s.handleClose)
	return s
}

// New builds a Server without registering transport verbs (tests, or
// callers wiring handlers themselves). id scopes session identifiers.
func New(id string, backend Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := newMetrics(cfg.Registry)
	s := &Server{
		cfg:      cfg,
		be:       backend,
		id:       id,
		adm:      newAdmitter(cfg, m),
		m:        m,
		sessions: make(map[string]*session),
	}
	if !cfg.DisableCache {
		s.cache = newResultCache(cfg.CacheEntries, cfg.CacheMaxResultBytes, m)
	}
	return s
}

// Close sheds every queued waiter, fails future opens and queries fast,
// and forgets all sessions. Registered verbs stay bound (pnet has no
// unregister) but answer ErrOverloaded/ErrUnknownSession.
func (s *Server) Close() {
	s.mu.Lock()
	n := int64(len(s.sessions))
	s.sessions = make(map[string]*session)
	s.closed = true
	s.mu.Unlock()
	s.m.sessionsOpen.Add(-n)
	s.adm.close()
}

// InvalidateCache eagerly drops every cached result (failover hook).
func (s *Server) InvalidateCache() {
	if s.cache != nil {
		s.cache.invalidateAll()
	}
}

// Sessions reports the open session count.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// versions reads the configured version source.
func (s *Server) versions() (uint64, uint64) {
	if s.cfg.Versions == nil {
		return 0, 0
	}
	return s.cfg.Versions()
}

// stampFor captures the freshness stamp for a statement reading the
// given tables: a per-table vector when TableVersions is configured,
// the cluster-wide sums otherwise (vec nil).
func (s *Server) stampFor(tables []string) (schemaV, dataV uint64, vec []uint64) {
	if s.cfg.TableVersions != nil {
		schemaV, vec = s.cfg.TableVersions(tables)
		return schemaV, 0, vec
	}
	schemaV, dataV = s.versions()
	return schemaV, dataV, nil
}

func (s *Server) handleOpen(msg pnet.Message) (pnet.Message, error) {
	req, ok := msg.Payload.(OpenRequest)
	if !ok {
		return pnet.Message{}, fmt.Errorf("serving: bad open payload %T", msg.Payload)
	}
	class, err := classIndex(req.Class)
	if err != nil {
		return pnet.Message{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return pnet.Message{}, fmt.Errorf("%w: serving tier closed", ErrOverloaded)
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.m.shed[class].Inc()
		s.recordShed()
		return pnet.Message{}, fmt.Errorf("%w: session table full (%d open)", ErrOverloaded, s.cfg.MaxSessions)
	}
	s.nextID++
	sess := &session{
		id:       fmt.Sprintf("%s/s%08d", s.id, s.nextID),
		user:     req.User,
		class:    class,
		strategy: req.Strategy,
		opened:   time.Now(),
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	s.m.sessionsOpen.Add(1)
	s.m.sessionsTotal.Inc()
	return pnet.Message{Payload: OpenReply{SessionID: sess.id}, Size: int64(len(sess.id) + 16)}, nil
}

// recordShed mirrors one shed event into the peer registry.
func (s *Server) recordShed() {
	if s.m.peerShed != nil {
		s.m.peerShed.Inc()
	}
}

// session resolves a live session.
func (s *Server) session(id string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSession, id)
	}
	sess.queries++
	return sess, nil
}

func (s *Server) handleQuery(msg pnet.Message) (pnet.Message, error) {
	req, ok := msg.Payload.(QueryRequest)
	if !ok {
		return pnet.Message{}, fmt.Errorf("serving: bad query payload %T", msg.Payload)
	}
	sess, err := s.session(req.SessionID)
	if err != nil {
		return pnet.Message{}, err
	}

	// Cache interaction happens before admission: a hit costs no worker
	// slot and no queue wait, which is exactly the serving-capacity win
	// the cache exists for.
	key, tables, cacheable := normalizeSQL(req.SQL)
	key = cacheKey(sess.user, key)
	cacheable = cacheable && s.cache != nil
	switch {
	case !cacheable || req.Cache == CacheBypass:
		s.m.cacheBypass.Inc()
	case req.Cache == CacheUse:
		schemaV, dataV, dataVec := s.stampFor(tables)
		if e := s.cache.lookup(key, schemaV, dataV, dataVec); e != nil {
			s.m.cacheHits.Inc()
			rep := QueryReply{Result: e.res, Engine: e.engine, VTime: e.vtime, CacheHit: true}
			return pnet.Message{Payload: rep, Size: e.bytes}, nil
		}
		s.m.cacheMisses.Inc()
	case req.Cache == CacheRefresh:
		s.m.cacheMisses.Inc()
	}

	wait, release, err := s.adm.admit(sess.class)
	if err != nil {
		if Overloaded(err) {
			s.recordShed()
		}
		return pnet.Message{}, err
	}
	defer release()

	// Version capture precedes execution: a mutation racing the query
	// lands the entry under a version the next lookup rejects — the
	// conservative side.
	schemaV, dataV, dataVec := s.stampFor(tables)
	ex, err := s.be.ServeQuery(req.SQL, sess.user, sess.strategy)
	if err != nil {
		return pnet.Message{}, err
	}
	bytes := resultBytes(ex.Result)
	if cacheable && req.Cache != CacheBypass {
		s.cache.store(&cacheEntry{
			key: key, res: ex.Result, engine: ex.Engine, vtime: ex.VTime,
			schemaV: schemaV, dataV: dataV, dataVec: dataVec, bytes: bytes,
		})
	}
	rep := QueryReply{Result: ex.Result, Engine: ex.Engine, VTime: ex.VTime, QueueWait: wait}
	return pnet.Message{Payload: rep, Size: bytes}, nil
}

func (s *Server) handleClose(msg pnet.Message) (pnet.Message, error) {
	req, ok := msg.Payload.(CloseRequest)
	if !ok {
		return pnet.Message{}, fmt.Errorf("serving: bad close payload %T", msg.Payload)
	}
	s.mu.Lock()
	sess := s.sessions[req.SessionID]
	if sess == nil {
		s.mu.Unlock()
		return pnet.Message{}, fmt.Errorf("%w: %q", ErrUnknownSession, req.SessionID)
	}
	delete(s.sessions, req.SessionID)
	queries := sess.queries
	s.mu.Unlock()
	s.m.sessionsOpen.Add(-1)
	return pnet.Message{Payload: CloseReply{Queries: queries}, Size: 16}, nil
}

// normalizeSQL renders a SELECT into its canonical form and lists the
// tables it reads (sorted, deduped); non-SELECT or unparsable text is
// uncacheable (the backend surfaces the error).
func normalizeSQL(sql string) (string, []string, bool) {
	stmt, err := sqldb.ParseSelect(sql)
	if err != nil {
		return "", nil, false
	}
	return stmt.String(), sqldb.ReferencedTables(stmt), true
}

// cacheKey scopes a normalized statement to the session user. Results
// are user-dependent — data owners enforce per-role access checks and
// row masking (peer.handleSubQuery) — so an entry cached for one
// account must never satisfy another's lookup: serving a full-access
// user's rows to a restricted user would bypass access control.
func cacheKey(user, normalized string) string {
	return user + "\x00" + normalized
}
