package serving

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bestpeer/internal/pnet"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// stubBackend answers every query with a canned result after an
// optional service delay, counting executions.
type stubBackend struct {
	delay time.Duration
	execs atomic.Int64
	err   error
}

func (b *stubBackend) ServeQuery(sql, user, strategy string) (Executed, error) {
	b.execs.Add(1)
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	if b.err != nil {
		return Executed{}, b.err
	}
	res := &sqldb.Result{Columns: []string{"n"}}
	res.Stats.BytesReturned = 8
	return Executed{Result: res, Engine: "stub", VTime: time.Millisecond}, nil
}

// versionSource is a mutable version pair for cache tests.
type versionSource struct {
	mu      sync.Mutex
	schemaV uint64
	dataV   uint64
}

func (v *versionSource) get() (uint64, uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.schemaV, v.dataV
}

func (v *versionSource) bumpData() {
	v.mu.Lock()
	v.dataV++
	v.mu.Unlock()
}

func (v *versionSource) bumpSchema() {
	v.mu.Lock()
	v.schemaV++
	v.mu.Unlock()
}

// attach wires a Server over a fresh in-process network and returns a
// client-side endpoint facing it.
func attach(t *testing.T, be Backend, cfg Config) (*Server, *pnet.Endpoint) {
	t.Helper()
	net := pnet.NewNetwork()
	srv := Attach(net.Join("server"), be, cfg)
	t.Cleanup(srv.Close)
	return srv, net.Join("client")
}

func TestSessionLifecycle(t *testing.T) {
	be := &stubBackend{}
	srv, ep := attach(t, be, Config{})
	cl := NewClient(ep, "server")

	// Query before open fails typed.
	if _, err := cl.Query("SELECT COUNT(*) FROM t", CacheUse); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("query before open: got %v, want ErrUnknownSession", err)
	}
	if err := cl.Open("alice", ClassInteractive, "basic"); err != nil {
		t.Fatalf("open: %v", err)
	}
	if cl.SessionID() == "" {
		t.Fatal("open returned empty session id")
	}
	if got := srv.Sessions(); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
	for i := 0; i < 3; i++ {
		out, err := cl.Query("SELECT COUNT(*) FROM t", CacheBypass)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if out.Engine != "stub" {
			t.Fatalf("engine = %q", out.Engine)
		}
	}
	n, err := cl.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if n != 3 {
		t.Fatalf("close reported %d queries, want 3", n)
	}
	if got := srv.Sessions(); got != 0 {
		t.Fatalf("sessions after close = %d, want 0", got)
	}
	// The dead session is gone server-side.
	if _, err := ep.Call("server", MsgQuery, QueryRequest{SessionID: "server/s00000001", SQL: "SELECT 1 FROM t"}, 8); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("query on closed session: got %v, want ErrUnknownSession", err)
	}
}

func TestOpenRejectsUnknownClass(t *testing.T) {
	_, ep := attach(t, &stubBackend{}, Config{})
	cl := NewClient(ep, "server")
	if err := cl.Open("", "premium", ""); err == nil {
		t.Fatal("open with unknown class succeeded")
	}
}

func TestSessionTableBound(t *testing.T) {
	_, ep := attach(t, &stubBackend{}, Config{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if err := NewClient(ep, "server").Open("", "", ""); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	err := NewClient(ep, "server").Open("", "", "")
	if !Overloaded(err) {
		t.Fatalf("third open: got %v, want ErrOverloaded", err)
	}
}

// TestWeightedAdmissionFairness drives both classes through a saturated
// one-worker admitter and checks the stride scheduler grants roughly
// weight-proportional shares.
func TestWeightedAdmissionFairness(t *testing.T) {
	m := newMetrics(nil)
	cfg := Config{Workers: 1, QueueDepth: 1024, InteractiveWeight: 4, BatchWeight: 1,
		// Budgets high enough that nothing sheds in this test.
		ShedP95: time.Hour, ShedP99: time.Hour, ShedWindow: time.Second, MinShedSamples: 1 << 30}.withDefaults()
	a := newAdmitter(cfg, m)

	var grants [numClasses]atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for class := 0; class < numClasses; class++ {
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(class int) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_, release, err := a.admit(class)
					if err != nil {
						return
					}
					grants[class].Add(1)
					time.Sleep(200 * time.Microsecond) // hold the worker
					release()
				}
			}(class)
		}
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	a.close()

	inter, batch := grants[classInteractive].Load(), grants[classBatch].Load()
	if inter == 0 || batch == 0 {
		t.Fatalf("starvation: interactive=%d batch=%d", inter, batch)
	}
	ratio := float64(inter) / float64(batch)
	// Weight ratio is 4:1; allow generous scheduling noise.
	if ratio < 2 || ratio > 8 {
		t.Fatalf("grant ratio %.2f (interactive=%d batch=%d), want ~4", ratio, inter, batch)
	}
}

// TestChaosServingShedsUnderSlowBackend saturates a tier whose backend
// is artificially slow and asserts (a) arrivals beyond the budget are
// rejected with the typed ErrOverloaded, (b) the shed counters moved,
// and (c) the tier recovers once the overload stops.
func TestChaosServingShedsUnderSlowBackend(t *testing.T) {
	be := &stubBackend{delay: 20 * time.Millisecond}
	srv, ep := attach(t, be, Config{
		Workers:        2,
		QueueDepth:     512,
		ShedP95:        5 * time.Millisecond,
		ShedP99:        10 * time.Millisecond,
		ShedWindow:     200 * time.Millisecond,
		MinShedSamples: 4,
	})

	const clients = 64
	var wg sync.WaitGroup
	var shed, served, other atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := NewClient(ep, "server")
			if err := cl.Open("", ClassInteractive, ""); err != nil {
				other.Add(1)
				return
			}
			for i := 0; i < 6; i++ {
				_, err := cl.Query(fmt.Sprintf("SELECT %d FROM t", c), CacheBypass)
				switch {
				case err == nil:
					served.Add(1)
				case Overloaded(err):
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("%d queries failed with untyped errors", other.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no queries served at all — shedding is not graceful")
	}
	if shed.Load() == 0 {
		t.Fatalf("no queries shed despite %d clients on 2 slow workers", clients)
	}
	if srv.m.shed[classInteractive].Value() == 0 {
		t.Fatal("typed rejections not counted in telemetry")
	}

	// Recovery: overload gone, the shedding window ages out, and a lone
	// client is admitted again.
	be.delay = 0
	deadline := time.Now().Add(5 * time.Second)
	cl := NewClient(ep, "server")
	if err := cl.Open("", ClassInteractive, ""); err != nil {
		t.Fatalf("open after overload: %v", err)
	}
	for {
		_, err := cl.Query("SELECT 1 FROM t", CacheBypass)
		if err == nil {
			break
		}
		if !Overloaded(err) {
			t.Fatalf("recovery query: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("tier never recovered after overload ended")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestConcurrentSessions exercises the whole tier under -race: many
// sessions across both classes opening, querying with mixed cache
// modes, and closing concurrently while versions bump underneath.
func TestConcurrentSessions(t *testing.T) {
	vs := &versionSource{}
	be := &stubBackend{}
	_, ep := attach(t, be, Config{Workers: 4, Versions: vs.get, CacheEntries: 16})

	const clients = 32
	var wg sync.WaitGroup
	var failures atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			class := ClassInteractive
			if c%3 == 0 {
				class = ClassBatch
			}
			cl := NewClient(ep, "server")
			if err := cl.Open("", class, ""); err != nil {
				failures.Add(1)
				return
			}
			for i := 0; i < 20; i++ {
				mode := CacheMode(i % 3)
				if _, err := cl.Query(fmt.Sprintf("SELECT c%d FROM t%d", i%4, c%8), mode); err != nil && !Overloaded(err) {
					failures.Add(1)
				}
				if i%7 == 0 {
					vs.bumpData()
				}
			}
			if _, err := cl.Close(); err != nil {
				failures.Add(1)
			}
		}(c)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d unexpected failures across concurrent sessions", failures.Load())
	}
}

// TestResultCacheVersioning proves a cached result is never served
// across a schema or data version bump, and that the cache modes do
// what they say.
func TestResultCacheVersioning(t *testing.T) {
	vs := &versionSource{}
	be := &stubBackend{}
	srv, ep := attach(t, be, Config{Versions: vs.get})
	cl := NewClient(ep, "server")
	if err := cl.Open("", "", ""); err != nil {
		t.Fatalf("open: %v", err)
	}
	const q = "SELECT COUNT(*) FROM t"

	mustQuery := func(mode CacheMode) QueryOutcome {
		t.Helper()
		out, err := cl.Query(q, mode)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		return out
	}

	inval0 := srv.m.cacheInvalidations.Value()

	// Fill, then hit: the backend runs once.
	if out := mustQuery(CacheUse); out.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	if out := mustQuery(CacheUse); !out.CacheHit {
		t.Fatal("repeat query missed the cache")
	}
	if got := be.execs.Load(); got != 1 {
		t.Fatalf("backend executed %d times, want 1", got)
	}

	// DML bump: the stale entry must not be served.
	vs.bumpData()
	if out := mustQuery(CacheUse); out.CacheHit {
		t.Fatal("cache hit across a data version bump")
	}
	if got := be.execs.Load(); got != 2 {
		t.Fatalf("backend executed %d times after data bump, want 2", got)
	}
	if srv.m.cacheInvalidations.Value() == inval0 {
		t.Fatal("version-mismatch invalidation not counted")
	}

	// DDL bump likewise.
	vs.bumpSchema()
	if out := mustQuery(CacheUse); out.CacheHit {
		t.Fatal("cache hit across a schema version bump")
	}

	// Refresh executes even though the entry is fresh.
	before := be.execs.Load()
	if out := mustQuery(CacheRefresh); out.CacheHit {
		t.Fatal("refresh reported a cache hit")
	}
	if got := be.execs.Load(); got != before+1 {
		t.Fatalf("refresh did not execute (execs %d -> %d)", before, got)
	}
	// ... but it refilled the cache for the next CacheUse.
	if out := mustQuery(CacheUse); !out.CacheHit {
		t.Fatal("use after refresh missed")
	}

	// Bypass neither reads nor writes.
	before = be.execs.Load()
	bypassBefore := srv.m.cacheBypass.Value()
	if out := mustQuery(CacheBypass); out.CacheHit {
		t.Fatal("bypass reported a cache hit")
	}
	if got := be.execs.Load(); got != before+1 {
		t.Fatal("bypass did not execute")
	}
	if srv.m.cacheBypass.Value() != bypassBefore+1 {
		t.Fatal("bypass not counted")
	}
}

// userBackend answers with the requesting user's name as the result
// row — a stand-in for the per-role row masking data owners apply — so
// any cache leak across accounts is visible in the returned rows.
type userBackend struct{ execs atomic.Int64 }

func (b *userBackend) ServeQuery(sql, user, strategy string) (Executed, error) {
	b.execs.Add(1)
	res := &sqldb.Result{Columns: []string{"who"}, Rows: []sqlval.Row{{sqlval.Str(user)}}}
	res.Stats.BytesReturned = int64(len(user))
	return Executed{Result: res, Engine: "stub", VTime: time.Millisecond}, nil
}

// TestResultCacheUserScoped proves the cache never serves one account's
// result to another: data owners mask rows per role, so a cross-user
// hit would be an access-control bypass.
func TestResultCacheUserScoped(t *testing.T) {
	vs := &versionSource{}
	be := &userBackend{}
	_, ep := attach(t, be, Config{Versions: vs.get})

	open := func(user string) *Client {
		t.Helper()
		cl := NewClient(ep, "server")
		if err := cl.Open(user, "", ""); err != nil {
			t.Fatalf("open %s: %v", user, err)
		}
		return cl
	}
	who := func(cl *Client, want string, wantHit bool) {
		t.Helper()
		out, err := cl.Query("SELECT name FROM t", CacheUse)
		if err != nil {
			t.Fatalf("query as %s: %v", want, err)
		}
		if out.CacheHit != wantHit {
			t.Fatalf("query as %s: hit=%v, want %v", want, out.CacheHit, wantHit)
		}
		if got := out.Result.Rows[0][0].AsString(); got != want {
			t.Fatalf("query as %s returned %s's rows (hit=%v): cross-user cache leak", want, got, out.CacheHit)
		}
	}

	alice, bob := open("alice"), open("bob")
	who(alice, "alice", false) // cold: executes and caches under alice
	// Same normalized SQL as a different user must NOT hit alice's
	// entry — bob's view of the data is masked differently.
	who(bob, "bob", false)
	if got := be.execs.Load(); got != 2 {
		t.Fatalf("backend executed %d times, want 2 (one per user)", got)
	}
	// Each account's own entry still hits, with its own rows.
	who(alice, "alice", true)
	who(bob, "bob", true)
	if got := be.execs.Load(); got != 2 {
		t.Fatalf("backend executed %d times after warm repeats, want 2", got)
	}
}

// TestStrideActivationAvoidsBurst pins the stride activation rule:
// after sustained single-class saturation inflates the interactive pass
// value, newly arriving batch work must join at the scheduler's current
// virtual time and interleave at the configured weights — not replay
// every grant it missed while idle as one consecutive burst.
func TestStrideActivationAvoidsBurst(t *testing.T) {
	m := newMetrics(nil)
	cfg := Config{Workers: 1, QueueDepth: 1024, InteractiveWeight: 4, BatchWeight: 1,
		ShedP95: time.Hour, ShedP99: time.Hour, MinShedSamples: 1 << 30}.withDefaults()
	a := newAdmitter(cfg, m)

	waitDepth := func(class, want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			a.mu.Lock()
			n := len(a.classes[class].waiters)
			a.mu.Unlock()
			if n == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("queue depth for class %d never reached %d (at %d)", class, want, n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Hold the single worker slot, then run 40 back-to-back interactive
	// grants with the system never going idle (one waiter is always
	// queued when the slot frees), so the interactive pass value climbs
	// while batch sits idle.
	_, release, err := a.admit(classInteractive)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		relCh := make(chan func(), 1)
		go func() {
			_, rel, err := a.admit(classInteractive)
			if err != nil {
				t.Error(err)
				return
			}
			relCh <- rel
		}()
		waitDepth(classInteractive, 1)
		release()
		release = <-relCh
	}

	// With the slot still held, queue a batch/interactive mix, then let
	// the cascade of grants drain it, recording grant order.
	const nBatch, nInter = 4, 12
	order := make(chan int, nBatch+nInter)
	var wg sync.WaitGroup
	for i := 0; i < nBatch+nInter; i++ {
		class := classBatch
		if i >= nBatch {
			class = classInteractive
		}
		wg.Add(1)
		go func(class int) {
			defer wg.Done()
			_, rel, err := a.admit(class)
			if err != nil {
				t.Error(err)
				return
			}
			order <- class
			rel()
		}(class)
	}
	waitDepth(classBatch, nBatch)
	waitDepth(classInteractive, nInter)
	release()
	wg.Wait()
	close(order)

	grants := make([]int, 0, nBatch+nInter)
	for class := range order {
		grants = append(grants, class)
	}
	batchEarly := 0
	for _, class := range grants[:8] {
		if class == classBatch {
			batchEarly++
		}
	}
	// At 4:1 weights, 8 grants carry at most 2 batch dispatches; the
	// stale-pass bug front-loads all 4 batch waiters instead.
	if batchEarly > 2 {
		t.Fatalf("batch got %d of the first 8 grants (order %v): idle class banked stride credit", batchEarly, grants)
	}
	a.close()
}

// TestResultCacheLRUBound fills the cache past capacity and checks the
// LRU eviction and the entry gauge.
func TestResultCacheLRUBound(t *testing.T) {
	vs := &versionSource{}
	srv, ep := attach(t, &stubBackend{}, Config{Versions: vs.get, CacheEntries: 4})
	cl := NewClient(ep, "server")
	if err := cl.Open("", "", ""); err != nil {
		t.Fatalf("open: %v", err)
	}
	// Counters live in the process-wide default registry, so assert the
	// delta, not the absolute value.
	evict0 := srv.m.cacheEvictions.Value()
	for i := 0; i < 8; i++ {
		if _, err := cl.Query(fmt.Sprintf("SELECT c FROM t%d", i), CacheUse); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if got := srv.cache.len(); got != 4 {
		t.Fatalf("cache holds %d entries, want 4", got)
	}
	if got := srv.m.cacheEvictions.Value() - evict0; got != 4 {
		t.Fatalf("evictions = %d, want 4", got)
	}
	// The oldest keys were evicted; the newest still hit.
	if out, err := cl.Query("SELECT c FROM t7", CacheUse); err != nil || !out.CacheHit {
		t.Fatalf("newest entry missed (err=%v)", err)
	}
	if out, err := cl.Query("SELECT c FROM t0", CacheUse); err != nil || out.CacheHit {
		t.Fatalf("evicted entry hit (err=%v)", err)
	}
}

// TestOverloadedSurvivesTCP proves the typed serving errors cross the
// gob/TCP transport via the wire-sentinel registry.
func TestOverloadedSurvivesTCP(t *testing.T) {
	serverNet := pnet.NewNetwork()
	// Session table of 1: the second open sheds with ErrOverloaded.
	srv := Attach(serverNet.Join("server"), &stubBackend{}, Config{MaxSessions: 1})
	defer srv.Close()
	ln, err := serverNet.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	clientNet := pnet.NewNetwork()
	clientNet.AddRemotePeer("server", ln.Addr())
	ep := clientNet.Join("remote-client")

	cl := NewClient(ep, "server")
	if err := cl.Open("", "", ""); err != nil {
		t.Fatalf("open over TCP: %v", err)
	}
	out, err := cl.Query("SELECT COUNT(*) FROM t", CacheBypass)
	if err != nil {
		t.Fatalf("query over TCP: %v", err)
	}
	if out.Engine != "stub" {
		t.Fatalf("engine = %q over TCP", out.Engine)
	}

	if err := NewClient(ep, "server").Open("", "", ""); !Overloaded(err) {
		t.Fatalf("second open over TCP: got %v, want ErrOverloaded", err)
	}
	bogus := &Client{ep: ep, peer: "server", id: "server/s99999999"}
	if _, err := bogus.Query("SELECT 1 FROM t", CacheBypass); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("bogus session over TCP: got %v, want ErrUnknownSession", err)
	}
}

// TestCloseRejectsWaiters closes the tier with queued waiters and
// checks they all fail fast and typed.
func TestCloseRejectsWaiters(t *testing.T) {
	be := &stubBackend{delay: 50 * time.Millisecond}
	srv, ep := attach(t, be, Config{Workers: 1, ShedP95: time.Hour, ShedP99: time.Hour, MinShedSamples: 1 << 30})
	var wg sync.WaitGroup
	var typed, untyped atomic.Int64
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := NewClient(ep, "server")
			if err := cl.Open("", "", ""); err != nil {
				untyped.Add(1)
				return
			}
			if _, err := cl.Query("SELECT 1 FROM t", CacheBypass); err != nil {
				if Overloaded(err) {
					typed.Add(1)
				} else {
					untyped.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(20 * time.Millisecond) // let queries queue behind the slow worker
	srv.Close()
	wg.Wait()
	if untyped.Load() != 0 {
		t.Fatalf("%d untyped failures on close", untyped.Load())
	}
	if typed.Load() == 0 {
		t.Fatal("close rejected no queued waiters (test raced shut)")
	}
}

// tableVersionSource is a mutable per-table version map for precise
// invalidation tests.
type tableVersionSource struct {
	mu      sync.Mutex
	schemaV uint64
	data    map[string]uint64
}

func (v *tableVersionSource) get(tables []string) (uint64, []uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vec := make([]uint64, len(tables))
	for i, t := range tables {
		vec[i] = v.data[t]
	}
	return v.schemaV, vec
}

func (v *tableVersionSource) bump(table string) {
	v.mu.Lock()
	if v.data == nil {
		v.data = map[string]uint64{}
	}
	v.data[table]++
	v.mu.Unlock()
}

// TestResultCachePreciseInvalidation proves entries are stamped with
// the version vector of the tables they read: DML against an unrelated
// table keeps the hit, DML against a read table drops it.
func TestResultCachePreciseInvalidation(t *testing.T) {
	vs := &tableVersionSource{}
	be := &stubBackend{}
	srv, ep := attach(t, be, Config{TableVersions: vs.get})
	cl := NewClient(ep, "server")
	if err := cl.Open("", "", ""); err != nil {
		t.Fatalf("open: %v", err)
	}
	const qOrders = "SELECT COUNT(*) FROM orders"
	const qItems = "SELECT COUNT(*) FROM lineitem"

	mustQuery := func(q string) QueryOutcome {
		t.Helper()
		out, err := cl.Query(q, CacheUse)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		return out
	}

	// Warm both entries, confirm both hit.
	mustQuery(qOrders)
	mustQuery(qItems)
	if out := mustQuery(qOrders); !out.CacheHit {
		t.Fatal("orders entry did not hit after warm")
	}
	if out := mustQuery(qItems); !out.CacheHit {
		t.Fatal("lineitem entry did not hit after warm")
	}

	// DML on orders: the orders entry invalidates, the lineitem entry
	// survives — the scoped-invalidation fix.
	vs.bump("orders")
	if out := mustQuery(qItems); !out.CacheHit {
		t.Fatal("unrelated DML invalidated the lineitem entry")
	}
	if out := mustQuery(qOrders); out.CacheHit {
		t.Fatal("stale orders entry served after DML on orders")
	}
	if out := mustQuery(qOrders); !out.CacheHit {
		t.Fatal("orders entry did not re-warm under the new vector")
	}

	// A join reading both tables invalidates when either side moves.
	const qJoin = "SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey"
	mustQuery(qJoin)
	if out := mustQuery(qJoin); !out.CacheHit {
		t.Fatal("join entry did not hit")
	}
	vs.bump("lineitem")
	if out := mustQuery(qJoin); out.CacheHit {
		t.Fatal("join entry survived DML on one of its tables")
	}

	// Schema bumps still invalidate everything they cover.
	mustQuery(qItems)
	vs.mu.Lock()
	vs.schemaV++
	vs.mu.Unlock()
	if out := mustQuery(qItems); out.CacheHit {
		t.Fatal("entry survived a schema bump")
	}
	if srv.m.cacheInvalidations.Value() == 0 {
		t.Fatal("invalidations not counted")
	}
}
