package serving

import (
	"errors"
	"fmt"
	"time"

	"bestpeer/internal/pnet"
	"bestpeer/internal/sqldb"
)

// The session protocol: three verbs layered on the hardened pnet
// transport. session.open and session.close mutate the session table,
// so they register at-most-once; session.query is a read-only verb and
// registers idempotent, so the CallPolicy's retry machinery may re-send
// it transparently after a lost reply.
const (
	MsgOpen  = "session.open"
	MsgQuery = "session.query"
	MsgClose = "session.close"
)

// Admission classes (wire names). Interactive traffic is weighted ahead
// of batch and sheds last; batch sheds at half the interactive budget.
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
)

// CacheMode selects a query's interaction with the result cache.
type CacheMode uint8

const (
	// CacheUse serves a fresh cached result when one exists and fills
	// the cache on a miss (the default).
	CacheUse CacheMode = iota
	// CacheRefresh always executes, then replaces the cached entry.
	CacheRefresh
	// CacheBypass neither reads nor writes the cache.
	CacheBypass
)

// String renders the mode's wire/CLI name.
func (m CacheMode) String() string {
	switch m {
	case CacheRefresh:
		return "refresh"
	case CacheBypass:
		return "bypass"
	default:
		return "use"
	}
}

// ParseCacheMode parses a CLI/wire cache-mode name.
func ParseCacheMode(s string) (CacheMode, error) {
	switch s {
	case "use", "":
		return CacheUse, nil
	case "refresh":
		return CacheRefresh, nil
	case "bypass":
		return CacheBypass, nil
	default:
		return CacheUse, fmt.Errorf("serving: unknown cache mode %q (use|refresh|bypass)", s)
	}
}

// OpenRequest opens a logical client session at a peer's serving tier.
type OpenRequest struct {
	// User is the submitting account ("" = benchmark full-access user).
	User string
	// Class is the admission class ("" = interactive).
	Class string
	// Strategy picks the query engine for the session ("" = basic).
	Strategy string
}

// OpenReply carries the session identity the other verbs address.
type OpenReply struct {
	SessionID string
}

// QueryRequest runs one SQL query inside a session.
type QueryRequest struct {
	SessionID string
	SQL       string
	Cache     CacheMode
}

// QueryReply is a query's outcome. A cache hit reports zero QueueWait:
// hits are served before admission and never occupy a worker slot.
type QueryReply struct {
	Result    *sqldb.Result
	Engine    string
	VTime     time.Duration
	CacheHit  bool
	QueueWait time.Duration
}

// CloseRequest tears a session down.
type CloseRequest struct {
	SessionID string
}

// CloseReply reports the closed session's lifetime query count.
type CloseReply struct {
	Queries int64
}

// Typed serving errors. Both survive the TCP transport via pnet's wire
// sentinel registry, so remote clients branch on errors.Is exactly like
// in-process ones.
var (
	// ErrOverloaded is the admission rejection: the queue is full, the
	// session table is full, or queue-wait p95/p99 blew the configured
	// shedding budget. Clients should back off (or retry elsewhere).
	ErrOverloaded = errors.New("serving: overloaded")
	// ErrUnknownSession means the session ID was never opened, was
	// closed, or belonged to a server that restarted.
	ErrUnknownSession = errors.New("serving: unknown session")
)

// Overloaded reports whether err is a load-shedding rejection.
func Overloaded(err error) bool { return errors.Is(err, ErrOverloaded) }

// Wire sentinel codes (>= pnet.WireSentinelBase; process-wide unique).
const (
	wireCodeOverloaded     = pnet.WireSentinelBase + 0
	wireCodeUnknownSession = pnet.WireSentinelBase + 1
)

func init() {
	pnet.RegisterPayload(OpenRequest{}, OpenReply{}, QueryRequest{}, QueryReply{}, CloseRequest{}, CloseReply{})
	pnet.RegisterWireSentinel(wireCodeOverloaded, ErrOverloaded)
	pnet.RegisterWireSentinel(wireCodeUnknownSession, ErrUnknownSession)
}
