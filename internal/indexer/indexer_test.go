package indexer

import (
	"fmt"
	"testing"

	"bestpeer/internal/baton"
	"bestpeer/internal/pnet"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// testNetwork builds n overlay nodes and returns them by peer ID.
func testNetwork(t *testing.T, n int) map[string]*baton.Node {
	t.Helper()
	net := pnet.NewNetwork()
	o := baton.NewOverlay(net, "@overlay")
	nodes := make(map[string]*baton.Node, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("peer-%02d", i)
		node := baton.NewNode(net.Join(id))
		if err := o.AddNode(node); err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
	}
	return nodes
}

// peerDB builds a small lineitem table with the given shipdate span.
func peerDB(t *testing.T, loDay, hiDay int64) *sqldb.DB {
	t.Helper()
	db := sqldb.NewDB()
	if _, err := db.Exec(`CREATE TABLE lineitem (l_orderkey INT, l_shipdate DATE, l_price FLOAT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX idx_ship ON lineitem (l_shipdate)`); err != nil {
		t.Fatal(err)
	}
	for d := loDay; d <= hiDay; d++ {
		row := sqlval.Row{sqlval.Int(d), sqlval.Date(d), sqlval.Float(float64(d))}
		if err := db.InsertRow("lineitem", row); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestPublishAndLocateTableIndex(t *testing.T) {
	nodes := testNetwork(t, 4)
	for id, node := range nodes {
		ix := New(node, id)
		if err := ix.PublishTable("lineitem", 100, 10_000); err != nil {
			t.Fatal(err)
		}
	}
	lc := NewLocator(nodes["peer-00"])
	loc, err := lc.PeersForTable("LineItem") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kind != KindTable || len(loc.Peers) != 4 {
		t.Fatalf("loc = %+v", loc)
	}
	if loc.Entries[0].Rows != 100 || loc.Entries[0].Bytes != 10_000 {
		t.Errorf("entry stats = %+v", loc.Entries[0])
	}
}

func TestLocateUnknownTable(t *testing.T) {
	nodes := testNetwork(t, 2)
	lc := NewLocator(nodes["peer-00"])
	loc, err := lc.PeersForTable("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kind != KindNone || len(loc.Peers) != 0 {
		t.Errorf("loc = %+v", loc)
	}
}

func TestRepublishReplacesEntry(t *testing.T) {
	nodes := testNetwork(t, 3)
	ix := New(nodes["peer-00"], "peer-00")
	if err := ix.PublishTable("t", 10, 100); err != nil {
		t.Fatal(err)
	}
	if err := ix.PublishTable("t", 20, 200); err != nil {
		t.Fatal(err)
	}
	lc := NewLocator(nodes["peer-01"])
	loc, err := lc.PeersForTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(loc.Peers) != 1 || loc.Entries[0].Rows != 20 {
		t.Fatalf("loc = %+v", loc)
	}
}

func TestRangeIndexPriority(t *testing.T) {
	nodes := testNetwork(t, 3)
	// Three peers hold disjoint shipdate ranges.
	spans := map[string][2]int64{
		"peer-00": {0, 99},
		"peer-01": {100, 199},
		"peer-02": {200, 299},
	}
	for id, node := range nodes {
		ix := New(node, id)
		db := peerDB(t, spans[id][0], spans[id][1])
		err := ix.PublishDB(db, map[string][]string{"lineitem": {"l_shipdate"}})
		if err != nil {
			t.Fatal(err)
		}
	}
	lc := NewLocator(nodes["peer-00"])
	stmt, err := sqldb.ParseSelect(`SELECT l_orderkey FROM lineitem WHERE l_shipdate > 150 AND l_shipdate < 180`)
	if err != nil {
		t.Fatal(err)
	}
	// Note: the date column is published as DATE; integers in the
	// predicate compare as date days via sqlval ordering.
	loc, err := lc.Locate("lineitem", sqldb.Conjuncts(stmt.Where), []string{"l_orderkey", "l_shipdate"})
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kind != KindRange {
		t.Fatalf("kind = %v", loc.Kind)
	}
	if len(loc.Peers) != 1 || loc.Peers[0] != "peer-01" {
		t.Fatalf("peers = %v", loc.Peers)
	}
}

func TestRangeIndexBoundaryOverlap(t *testing.T) {
	nodes := testNetwork(t, 2)
	for i, id := range []string{"peer-00", "peer-01"} {
		ix := New(nodes[id], id)
		db := peerDB(t, int64(i*100), int64(i*100+99))
		if err := ix.PublishDB(db, map[string][]string{"lineitem": {"l_shipdate"}}); err != nil {
			t.Fatal(err)
		}
	}
	lc := NewLocator(nodes["peer-00"])
	stmt, _ := sqldb.ParseSelect(`SELECT * FROM lineitem WHERE l_shipdate >= 99 AND l_shipdate <= 100`)
	loc, err := lc.Locate("lineitem", sqldb.Conjuncts(stmt.Where), nil)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kind != KindRange || len(loc.Peers) != 2 {
		t.Fatalf("loc = %+v", loc)
	}
}

func TestColumnIndexFallback(t *testing.T) {
	nodes := testNetwork(t, 3)
	// peer-00 and peer-01 host lineitem with the column; peer-02 hosts
	// the table too but in a schema without l_price (multi-tenant case).
	for _, id := range []string{"peer-00", "peer-01"} {
		ix := New(nodes[id], id)
		db := peerDB(t, 0, 9)
		if err := ix.PublishDB(db, nil); err != nil {
			t.Fatal(err)
		}
	}
	ix := New(nodes["peer-02"], "peer-02")
	db := sqldb.NewDB()
	if _, err := db.Exec(`CREATE TABLE lineitem (l_orderkey INT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRow("lineitem", sqlval.Row{sqlval.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := ix.PublishDB(db, nil); err != nil {
		t.Fatal(err)
	}

	lc := NewLocator(nodes["peer-00"])
	// No literal predicate -> no range index; l_price referenced ->
	// column index filters out peer-02.
	loc, err := lc.Locate("lineitem", nil, []string{"l_price"})
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kind != KindColumn {
		t.Fatalf("kind = %v", loc.Kind)
	}
	if len(loc.Peers) != 2 {
		t.Fatalf("peers = %v", loc.Peers)
	}
	// Worst case: only the table index applies.
	loc, err = lc.Locate("lineitem", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kind != KindTable || len(loc.Peers) != 3 {
		t.Fatalf("table fallback loc = %+v", loc)
	}
}

func TestLocatorCache(t *testing.T) {
	nodes := testNetwork(t, 4)
	for id, node := range nodes {
		if err := New(node, id).PublishTable("t", 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	lc := NewLocator(nodes["peer-00"])
	loc1, err := lc.PeersForTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if loc1.CacheHit {
		t.Error("first lookup claims cache hit")
	}
	loc2, err := lc.PeersForTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if !loc2.CacheHit || loc2.Hops != 0 {
		t.Errorf("second lookup = %+v", loc2)
	}
	hits, misses := lc.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	lc.Invalidate()
	loc3, _ := lc.PeersForTable("t")
	if loc3.CacheHit {
		t.Error("lookup after Invalidate hit cache")
	}
	lc.SetCache(false)
	loc4, _ := lc.PeersForTable("t")
	loc5, _ := lc.PeersForTable("t")
	if loc4.CacheHit || loc5.CacheHit {
		t.Error("disabled cache still hit")
	}
}

func TestUnpublishAll(t *testing.T) {
	nodes := testNetwork(t, 3)
	for id, node := range nodes {
		ix := New(node, id)
		db := peerDB(t, 0, 9)
		if err := ix.PublishDB(db, map[string][]string{"lineitem": {"l_shipdate"}}); err != nil {
			t.Fatal(err)
		}
	}
	ix := New(nodes["peer-01"], "peer-01")
	err := ix.UnpublishAll([]string{"lineitem"}, []string{"l_orderkey", "l_shipdate", "l_price"})
	if err != nil {
		t.Fatal(err)
	}
	lc := NewLocator(nodes["peer-02"])
	loc, err := lc.PeersForTable("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if len(loc.Peers) != 2 {
		t.Fatalf("peers after unpublish = %v", loc.Peers)
	}
	for _, p := range loc.Peers {
		if p == "peer-01" {
			t.Error("departed peer still indexed")
		}
	}
}

func TestExtractIntervals(t *testing.T) {
	stmt, err := sqldb.ParseSelect(
		`SELECT * FROM t WHERE a > 5 AND a <= 10 AND b = 'x' AND c BETWEEN 1 AND 3 AND 7 < d AND e + 1 > 2`)
	if err != nil {
		t.Fatal(err)
	}
	ivs := ExtractIntervals(sqldb.Conjuncts(stmt.Where))
	a := ivs["a"]
	if a.Lo.AsInt() != 5 || a.LoInc || a.Hi.AsInt() != 10 || !a.HiInc {
		t.Errorf("a = %+v", a)
	}
	b := ivs["b"]
	if b.Lo.AsString() != "x" || b.Hi.AsString() != "x" {
		t.Errorf("b = %+v", b)
	}
	c := ivs["c"]
	if c.Lo.AsInt() != 1 || c.Hi.AsInt() != 3 || !c.LoInc || !c.HiInc {
		t.Errorf("c = %+v", c)
	}
	d := ivs["d"]
	if d.Lo.AsInt() != 7 || d.LoInc {
		t.Errorf("flipped d = %+v", d)
	}
	if _, ok := ivs["e"]; ok {
		t.Error("non-literal predicate produced interval")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	iv := Interval{Lo: sqlval.Int(10), Hi: sqlval.Int(20), LoInc: true, HiInc: false}
	cases := []struct {
		min, max int64
		want     bool
	}{
		{0, 5, false},
		{0, 10, true},
		{15, 16, true},
		{20, 30, false}, // Hi exclusive
		{19, 30, true},
		{25, 30, false},
	}
	for _, c := range cases {
		if got := iv.Overlaps(sqlval.Int(c.min), sqlval.Int(c.max)); got != c.want {
			t.Errorf("Overlaps(%d, %d) = %v", c.min, c.max, got)
		}
	}
}
