package indexer

import "bestpeer/internal/pnet"

// Register index entry payloads (they travel inside baton.Item values
// and as has-table probe replies).
func init() {
	pnet.RegisterPayload(TableEntry{}, ColumnEntry{}, RangeEntry{})
}
