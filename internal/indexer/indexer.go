// Package indexer implements BestPeer++'s three index types over the
// BATON overlay (paper §4.3, Table 2):
//
//   - table index I_T: table name → peers storing data of the table;
//   - column index I_C: column name → (peer, tables containing the
//     column at that peer);
//   - range index I_D: table name → (column, min–max of the column's
//     values at a peer, peer).
//
// At query time the Locator resolves "which peers hold data relevant to
// this query" with the paper's priority Range > Column > Table: the most
// selective available index wins. Peers cache index entries in memory to
// avoid repeated BATON traversals (§5.2, first optimization).
package indexer

import (
	"strings"

	"bestpeer/internal/baton"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// TableEntry is one peer's I_T publication.
type TableEntry struct {
	Table string
	Peer  string
	// Rows and Bytes describe the peer's partition; the engines use them
	// for cost estimation without an extra round trip.
	Rows  int64
	Bytes int64
}

// ColumnEntry is one peer's I_C publication for one column.
type ColumnEntry struct {
	Column string
	Peer   string
	Tables []string
}

// RangeEntry is one peer's I_D publication for one (table, column).
type RangeEntry struct {
	Table  string
	Column string
	Min    sqlval.Value
	Max    sqlval.Value
	Peer   string
}

// Index-entry name prefixes in the overlay key space.
const (
	tableKeyPrefix  = "IT:"
	columnKeyPrefix = "IC:"
	rangeKeyPrefix  = "ID:"
)

// TableKey returns the overlay name of a table-index entry.
func TableKey(table string) string { return tableKeyPrefix + strings.ToLower(table) }

// ColumnKey returns the overlay name of a column-index entry.
func ColumnKey(column string) string { return columnKeyPrefix + strings.ToLower(column) }

// RangeKey returns the overlay name of a range-index entry. Per the
// paper, range indexes are keyed by table name; the column lives in the
// entry value.
func RangeKey(table string) string { return rangeKeyPrefix + strings.ToLower(table) }

// Indexer publishes one peer's index entries.
type Indexer struct {
	node *baton.Node
	peer string
}

// New creates an indexer publishing on behalf of peer through node.
func New(node *baton.Node, peer string) *Indexer {
	return &Indexer{node: node, peer: peer}
}

// PublishTable publishes an I_T entry.
func (ix *Indexer) PublishTable(table string, rows, bytes int64) error {
	name := TableKey(table)
	entry := TableEntry{Table: table, Peer: ix.peer, Rows: rows, Bytes: bytes}
	// Refresh semantics: drop any previous entry from this peer first.
	if _, _, err := ix.node.Delete(name, ix.peer); err != nil {
		return err
	}
	_, err := ix.node.Insert(baton.Item{
		Key: baton.StringKey(name), Name: name, Owner: ix.peer,
		Value: entry, Size: int64(len(table)) + 32,
	})
	return err
}

// PublishColumn publishes an I_C entry listing the peer's tables that
// contain the column.
func (ix *Indexer) PublishColumn(column string, tables []string) error {
	name := ColumnKey(column)
	entry := ColumnEntry{Column: column, Peer: ix.peer, Tables: tables}
	if _, _, err := ix.node.Delete(name, ix.peer); err != nil {
		return err
	}
	size := int64(len(column)) + 16
	for _, t := range tables {
		size += int64(len(t))
	}
	_, err := ix.node.Insert(baton.Item{
		Key: baton.StringKey(name), Name: name, Owner: ix.peer,
		Value: entry, Size: size,
	})
	return err
}

// PublishRange publishes an I_D entry carrying the min–max of the
// column's values at this peer.
func (ix *Indexer) PublishRange(table, column string, min, max sqlval.Value) error {
	name := RangeKey(table)
	entry := RangeEntry{Table: table, Column: column, Min: min, Max: max, Peer: ix.peer}
	// A peer may publish range entries for several columns of one table;
	// deleting all of its entries and republishing would lose the others,
	// so deletion here is per (table, column) pair: fetch, filter, and
	// re-insert is avoided by keying the delete on owner and checking the
	// column on lookup instead. Duplicate (owner, column) entries are
	// prevented by the callers publishing once per column.
	_, err := ix.node.Insert(baton.Item{
		Key: baton.StringKey(name), Name: name, Owner: ix.peer,
		Value: entry, Size: int64(len(table)+len(column)) + 48,
	})
	return err
}

// PublishDB publishes index entries for every table of a database: one
// I_T entry per table, one I_C entry per column, and an I_D entry for
// each (table, column) listed in rangeColumns (values taken from the
// column's local secondary index, or a table scan when unindexed).
func (ix *Indexer) PublishDB(db *sqldb.DB, rangeColumns map[string][]string) error {
	byColumn := make(map[string][]string)
	for _, tname := range db.TableNames() {
		t := db.Table(tname)
		if err := ix.PublishTable(tname, int64(t.NumRows()), t.DataBytes()); err != nil {
			return err
		}
		for _, c := range t.Schema().Columns {
			byColumn[strings.ToLower(c.Name)] = append(byColumn[strings.ToLower(c.Name)], tname)
		}
	}
	for col, tables := range byColumn {
		if err := ix.PublishColumn(col, tables); err != nil {
			return err
		}
	}
	// Refresh semantics: withdraw this peer's previous range entries so
	// republishing with a different configuration cannot leave stale
	// min-max advertisements behind.
	for _, tname := range db.TableNames() {
		if _, _, err := ix.node.Delete(RangeKey(tname), ix.peer); err != nil {
			return err
		}
	}
	for tname, cols := range rangeColumns {
		t := db.Table(tname)
		if t == nil {
			// Multi-tenant schemas: peers host subsets of the global
			// schema; range columns for absent tables are skipped.
			continue
		}
		for _, col := range cols {
			min, max, ok := columnMinMax(t, col)
			if !ok {
				continue // empty table: nothing to advertise
			}
			if err := ix.PublishRange(tname, col, min, max); err != nil {
				return err
			}
		}
	}
	return nil
}

// columnMinMax reads the min and max of a column from its local index,
// falling back to a scan.
func columnMinMax(t *sqldb.Table, col string) (sqlval.Value, sqlval.Value, bool) {
	if idx := t.IndexOn(col); idx != nil {
		return minMaxFromIndex(idx)
	}
	ci := t.Schema().ColumnIndex(col)
	if ci < 0 {
		return sqlval.Null(), sqlval.Null(), false
	}
	var min, max sqlval.Value
	found := false
	t.Scan(func(_ int, row sqlval.Row) bool {
		v := row[ci]
		if v.IsNull() {
			return true
		}
		if !found {
			min, max, found = v, v, true
			return true
		}
		if sqlval.Less(v, min) {
			min = v
		}
		if sqlval.Less(max, v) {
			max = v
		}
		return true
	})
	return min, max, found
}

func minMaxFromIndex(idx *sqldb.Index) (sqlval.Value, sqlval.Value, bool) {
	lo, hi, ok := idx.MinMax()
	return lo, hi, ok
}

// UnpublishAll removes every index entry owned by the peer for the given
// tables and columns (graceful departure).
func (ix *Indexer) UnpublishAll(tables, columns []string) error {
	for _, t := range tables {
		if _, _, err := ix.node.Delete(TableKey(t), ix.peer); err != nil {
			return err
		}
		if _, _, err := ix.node.Delete(RangeKey(t), ix.peer); err != nil {
			return err
		}
	}
	for _, c := range columns {
		if _, _, err := ix.node.Delete(ColumnKey(c), ix.peer); err != nil {
			return err
		}
	}
	return nil
}
