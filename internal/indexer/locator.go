package indexer

import (
	"sort"
	"strings"
	"sync"

	"bestpeer/internal/baton"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// IndexKind identifies which index type answered a location query.
type IndexKind string

// The index kinds, in the paper's priority order.
const (
	KindRange  IndexKind = "range"
	KindColumn IndexKind = "column"
	KindTable  IndexKind = "table"
	KindNone   IndexKind = "none"
)

// Location is the answer to "who holds data for this query".
type Location struct {
	Peers []string
	Kind  IndexKind
	// Hops is the overlay hops spent (0 on a cache hit).
	Hops     int
	CacheHit bool
	// Entries carries the raw table entries when Kind includes them, for
	// cost estimation (partition sizes).
	Entries []TableEntry
}

// Locator resolves query → peers using the published indexes, with an
// in-memory cache of index entries (§5.2: peers "cache sufficient table
// index, column index, and range index entries in memory to speed up
// the search for data owner peers, instead of traversing the BATON
// structure").
type Locator struct {
	node *baton.Node

	mu    sync.Mutex
	cache map[string][]baton.Item
	// CacheEnabled can be switched off to measure the ablation of index
	// caching against per-query BATON traversal.
	cacheEnabled bool

	hits, misses int64
}

// NewLocator creates a locator with caching enabled.
func NewLocator(node *baton.Node) *Locator {
	return &Locator{node: node, cache: make(map[string][]baton.Item), cacheEnabled: true}
}

// SetCache enables or disables the index-entry cache.
func (lc *Locator) SetCache(enabled bool) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.cacheEnabled = enabled
	if !enabled {
		lc.cache = make(map[string][]baton.Item)
	}
}

// Invalidate drops cached entries (callers invalidate on membership
// change notifications from the bootstrap).
func (lc *Locator) Invalidate() {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.cache = make(map[string][]baton.Item)
}

// CacheStats returns cumulative cache hits and misses.
func (lc *Locator) CacheStats() (hits, misses int64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.hits, lc.misses
}

// lookup fetches index items by overlay name, through the cache.
func (lc *Locator) lookup(name string) ([]baton.Item, int, bool, error) {
	lc.mu.Lock()
	if lc.cacheEnabled {
		if items, ok := lc.cache[name]; ok {
			lc.hits++
			lc.mu.Unlock()
			return items, 0, true, nil
		}
	}
	lc.misses++
	lc.mu.Unlock()
	items, hops, err := lc.node.Lookup(name)
	if err != nil {
		return nil, hops, false, err
	}
	lc.mu.Lock()
	if lc.cacheEnabled {
		lc.cache[name] = items
	}
	lc.mu.Unlock()
	return items, hops, false, nil
}

// PeersForTable resolves the peers storing any data of a table (I_T).
func (lc *Locator) PeersForTable(table string) (Location, error) {
	items, hops, hit, err := lc.lookup(TableKey(table))
	if err != nil {
		return Location{}, err
	}
	loc := Location{Kind: KindTable, Hops: hops, CacheHit: hit}
	if len(items) == 0 {
		loc.Kind = KindNone
	}
	for _, it := range items {
		e := it.Value.(TableEntry)
		loc.Peers = append(loc.Peers, e.Peer)
		loc.Entries = append(loc.Entries, e)
	}
	sort.Strings(loc.Peers)
	return loc, nil
}

// Interval is a literal-bounded restriction on one column extracted from
// a query's conjuncts.
type Interval struct {
	Lo, Hi       sqlval.Value // NULL = unbounded
	LoInc, HiInc bool
}

// Overlaps reports whether [min,max] (both inclusive) intersects the
// interval.
func (iv Interval) Overlaps(min, max sqlval.Value) bool {
	if !iv.Lo.IsNull() {
		c := sqlval.Compare(max, iv.Lo)
		if c < 0 || (c == 0 && !iv.LoInc) {
			return false
		}
	}
	if !iv.Hi.IsNull() {
		c := sqlval.Compare(min, iv.Hi)
		if c > 0 || (c == 0 && !iv.HiInc) {
			return false
		}
	}
	return true
}

// ExtractIntervals pulls per-column literal restrictions out of a
// conjunct list: col = v, col < v, col BETWEEN a AND b, etc. Columns
// referenced without usable literal bounds are omitted.
func ExtractIntervals(conjuncts []sqldb.Expr) map[string]Interval {
	out := make(map[string]Interval)
	merge := func(col string, iv Interval) {
		col = strings.ToLower(col)
		cur, ok := out[col]
		if !ok {
			out[col] = iv
			return
		}
		if !iv.Lo.IsNull() && (cur.Lo.IsNull() || sqlval.Compare(iv.Lo, cur.Lo) > 0) {
			cur.Lo, cur.LoInc = iv.Lo, iv.LoInc
		}
		if !iv.Hi.IsNull() && (cur.Hi.IsNull() || sqlval.Compare(iv.Hi, cur.Hi) < 0) {
			cur.Hi, cur.HiInc = iv.Hi, iv.HiInc
		}
		out[col] = cur
	}
	for _, c := range conjuncts {
		switch x := c.(type) {
		case *sqldb.Binary:
			ref, okL := x.L.(*sqldb.ColumnRef)
			lit, okR := x.R.(*sqldb.Literal)
			op := x.Op
			if !okL || !okR {
				if ref2, ok := x.R.(*sqldb.ColumnRef); ok {
					if lit2, ok2 := x.L.(*sqldb.Literal); ok2 {
						ref, lit, okL, okR = ref2, lit2, true, true
						op = flip(op)
					}
				}
			}
			if !okL || !okR {
				continue
			}
			v := normalizeLiteral(lit.Val)
			switch op {
			case "=":
				merge(ref.Column, Interval{Lo: v, Hi: v, LoInc: true, HiInc: true})
			case "<":
				merge(ref.Column, Interval{Hi: v})
			case "<=":
				merge(ref.Column, Interval{Hi: v, HiInc: true})
			case ">":
				merge(ref.Column, Interval{Lo: v})
			case ">=":
				merge(ref.Column, Interval{Lo: v, LoInc: true})
			}
		case *sqldb.Between:
			ref, ok := x.E.(*sqldb.ColumnRef)
			if !ok || x.Not {
				continue
			}
			lo, okLo := x.Lo.(*sqldb.Literal)
			hi, okHi := x.Hi.(*sqldb.Literal)
			if !okLo || !okHi {
				continue
			}
			merge(ref.Column, Interval{
				Lo: normalizeLiteral(lo.Val), Hi: normalizeLiteral(hi.Val),
				LoInc: true, HiInc: true,
			})
		}
	}
	return out
}

// normalizeLiteral converts date-shaped strings so they compare against
// DATE columns' published min–max values.
func normalizeLiteral(v sqlval.Value) sqlval.Value {
	if v.Kind() == sqlval.KindString {
		if d, err := sqlval.ParseDate(v.AsString()); err == nil {
			return d
		}
	}
	return v
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// Locate resolves the peers relevant to a single-table access with the
// paper's index priority:
//
//  1. Range index: when the query restricts a range-indexed column, only
//     peers whose published [min, max] overlaps the restriction qualify.
//  2. Column index: peers that host the table with the referenced
//     columns populated.
//  3. Table index: every peer hosting any part of the table.
func (lc *Locator) Locate(table string, conjuncts []sqldb.Expr, referencedColumns []string) (Location, error) {
	intervals := ExtractIntervals(conjuncts)

	tableLoc, err := lc.PeersForTable(table)
	if err != nil {
		return Location{}, err
	}
	if tableLoc.Kind == KindNone {
		return tableLoc, nil
	}
	entryByPeer := make(map[string]TableEntry, len(tableLoc.Entries))
	for _, e := range tableLoc.Entries {
		entryByPeer[e.Peer] = e
	}

	// 1. Range index.
	if len(intervals) > 0 {
		items, hops, hit, err := lc.lookup(RangeKey(table))
		if err != nil {
			return Location{}, err
		}
		// Group the range entries per column, then intersect: a peer
		// qualifies if for every restricted column with range entries,
		// its published min-max overlaps the restriction.
		byColumn := make(map[string]map[string][2]sqlval.Value) // column -> peer -> [min, max]
		for _, it := range items {
			e := it.Value.(RangeEntry)
			col := strings.ToLower(e.Column)
			if byColumn[col] == nil {
				byColumn[col] = make(map[string][2]sqlval.Value)
			}
			byColumn[col][e.Peer] = [2]sqlval.Value{e.Min, e.Max}
		}
		applied := false
		qualified := make(map[string]bool, len(tableLoc.Peers))
		for _, p := range tableLoc.Peers {
			qualified[p] = true
		}
		for col, iv := range intervals {
			peers, ok := byColumn[col]
			if !ok {
				continue
			}
			applied = true
			for p := range qualified {
				mm, has := peers[p]
				if !has || !iv.Overlaps(mm[0], mm[1]) {
					delete(qualified, p)
				}
			}
		}
		if applied {
			loc := Location{Kind: KindRange, Hops: tableLoc.Hops + hops, CacheHit: hit && tableLoc.CacheHit}
			for p := range qualified {
				loc.Peers = append(loc.Peers, p)
				loc.Entries = append(loc.Entries, entryByPeer[p])
			}
			sort.Strings(loc.Peers)
			return loc, nil
		}
	}

	// 2. Column index.
	if len(referencedColumns) > 0 {
		qualified := make(map[string]bool, len(tableLoc.Peers))
		for _, p := range tableLoc.Peers {
			qualified[p] = true
		}
		applied := false
		totalHops := tableLoc.Hops
		allHit := tableLoc.CacheHit
		for _, col := range referencedColumns {
			items, hops, hit, err := lc.lookup(ColumnKey(col))
			if err != nil {
				return Location{}, err
			}
			totalHops += hops
			allHit = allHit && hit
			if len(items) == 0 {
				continue
			}
			applied = true
			has := make(map[string]bool)
			for _, it := range items {
				e := it.Value.(ColumnEntry)
				for _, t := range e.Tables {
					if strings.EqualFold(t, table) {
						has[e.Peer] = true
					}
				}
			}
			for p := range qualified {
				if !has[p] {
					delete(qualified, p)
				}
			}
		}
		if applied {
			loc := Location{Kind: KindColumn, Hops: totalHops, CacheHit: allHit}
			for p := range qualified {
				loc.Peers = append(loc.Peers, p)
				loc.Entries = append(loc.Entries, entryByPeer[p])
			}
			sort.Strings(loc.Peers)
			return loc, nil
		}
	}

	// 3. Table index.
	return tableLoc, nil
}
