package erp

import (
	"testing"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

func newSys(t *testing.T) *System {
	t.Helper()
	s := NewSystem("SAP")
	err := s.CreateTable(&sqldb.Schema{
		Table: "t",
		Columns: []sqldb.Column{
			{Name: "id", Kind: sqlval.KindInt},
			{Name: "name", Kind: sqlval.KindString},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExtractSnapshotsRows(t *testing.T) {
	s := newSys(t)
	for i := 0; i < 5; i++ {
		if err := s.Insert("t", sqlval.Row{sqlval.Int(int64(i)), sqlval.Str("n")}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := s.Extract("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Extracted rows are clones: mutating them must not affect the store.
	rows[0][0] = sqlval.Int(999)
	again, _ := s.Extract("t")
	if again[0][0].AsInt() == 999 {
		t.Error("Extract returned aliased rows")
	}
}

func TestExtractUnknownTable(t *testing.T) {
	s := newSys(t)
	if _, err := s.Extract("missing"); err == nil {
		t.Error("Extract(missing) succeeded")
	}
}

func TestExecMutatesStore(t *testing.T) {
	s := newSys(t)
	if _, err := s.Exec(`INSERT INTO t VALUES (1, 'a'), (2, 'b')`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`DELETE FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	rows, _ := s.Extract("t")
	if len(rows) != 1 || rows[0][0].AsInt() != 2 {
		t.Errorf("rows = %+v", rows)
	}
}

func TestSchemaAndTables(t *testing.T) {
	s := newSys(t)
	if s.Schema("t") == nil || s.Schema("x") != nil {
		t.Error("Schema lookup broken")
	}
	if tables := s.Tables(); len(tables) != 1 || tables[0] != "t" {
		t.Errorf("Tables = %v", tables)
	}
	if s.Kind != "SAP" {
		t.Errorf("Kind = %q", s.Kind)
	}
}
