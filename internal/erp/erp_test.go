package erp

import (
	"testing"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

func newSys(t *testing.T) *System {
	t.Helper()
	s := NewSystem("SAP")
	err := s.CreateTable(&sqldb.Schema{
		Table: "t",
		Columns: []sqldb.Column{
			{Name: "id", Kind: sqlval.KindInt},
			{Name: "name", Kind: sqlval.KindString},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExtractSnapshotsRows(t *testing.T) {
	s := newSys(t)
	for i := 0; i < 5; i++ {
		if err := s.Insert("t", sqlval.Row{sqlval.Int(int64(i)), sqlval.Str("n")}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := s.Extract("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Extracted rows are clones: mutating them must not affect the store.
	rows[0][0] = sqlval.Int(999)
	again, _ := s.Extract("t")
	if again[0][0].AsInt() == 999 {
		t.Error("Extract returned aliased rows")
	}
}

func TestExtractUnknownTable(t *testing.T) {
	s := newSys(t)
	if _, err := s.Extract("missing"); err == nil {
		t.Error("Extract(missing) succeeded")
	}
}

func TestExecMutatesStore(t *testing.T) {
	s := newSys(t)
	if _, err := s.Exec(`INSERT INTO t VALUES (1, 'a'), (2, 'b')`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`DELETE FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	rows, _ := s.Extract("t")
	if len(rows) != 1 || rows[0][0].AsInt() != 2 {
		t.Errorf("rows = %+v", rows)
	}
}

func TestSchemaAndTables(t *testing.T) {
	s := newSys(t)
	if s.Schema("t") == nil || s.Schema("x") != nil {
		t.Error("Schema lookup broken")
	}
	if tables := s.Tables(); len(tables) != 1 || tables[0] != "t" {
		t.Errorf("Tables = %v", tables)
	}
	if s.Kind != "SAP" {
		t.Errorf("Kind = %q", s.Kind)
	}
}

func TestChangeFeedOrderedDeltas(t *testing.T) {
	s := newSys(t)
	mark := s.FeedSeq()
	if err := s.Insert("t", sqlval.Row{sqlval.Int(1), sqlval.Str("a")}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (2, 'b')`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`UPDATE t SET name = 'bb' WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`DELETE FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	recs, ok := s.ChangesSince(mark)
	if !ok {
		t.Fatal("feed reported gap on a fresh consumer")
	}
	kinds := make([]sqldb.RecordKind, len(recs))
	for i, r := range recs {
		kinds[i] = r.Kind
		if i > 0 && recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("feed out of order at %d: %+v", i, recs)
		}
		if r.Table != "t" {
			t.Fatalf("record %d table = %q", i, r.Table)
		}
	}
	want := []sqldb.RecordKind{sqldb.RecInsert, sqldb.RecInsert, sqldb.RecUpdate, sqldb.RecDelete}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if recs[2].Old == nil || recs[2].Old[1].AsString() != "b" {
		t.Fatalf("update pre-image missing: %+v", recs[2])
	}
	if recs[3].Old == nil || recs[3].Old[0].AsInt() != 1 {
		t.Fatalf("delete pre-image missing: %+v", recs[3])
	}

	// Ack releases retention; asking for history before the ack point
	// signals a resync.
	s.AckFeed(recs[1].Seq)
	if _, ok := s.ChangesSince(mark); ok {
		t.Fatal("acked feed still serves the truncated range")
	}
	if rest, ok := s.ChangesSince(recs[1].Seq); !ok || len(rest) != 2 {
		t.Fatalf("post-ack tail: ok=%v len=%d", ok, len(rest))
	}
}
