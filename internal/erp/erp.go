// Package erp simulates the production systems (the paper names SAP and
// PeopleSoft) that corporate-network participants extract shared data
// from. A System stores relations under its own *local* schema — its own
// table names, column names, column order, and local vocabulary — and
// keeps mutating while the business operates, which is exactly the
// consistency challenge the BestPeer++ data loader solves (§4.2).
package erp

import (
	"fmt"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// System is one synthetic production system.
type System struct {
	// Kind names the product family (e.g. "SAP", "PeopleSoft"); the
	// schema-mapping templates are keyed by it.
	Kind string
	db   *sqldb.DB
	wal  *sqldb.WAL
}

// NewSystem creates an empty production system of the given kind. Every
// system keeps a memory-only WAL so mutations double as a CDC change
// feed the loader can tail instead of re-extracting full snapshots.
func NewSystem(kind string) *System {
	db := sqldb.NewDB()
	wal, err := db.EnableWAL(sqldb.WALConfig{GroupSize: 1})
	if err != nil {
		// Fresh DB: the only failure mode is a programming error.
		panic(err)
	}
	return &System{Kind: kind, db: db, wal: wal}
}

// CreateTable declares one local relation.
func (s *System) CreateTable(schema *sqldb.Schema) error {
	_, err := s.db.CreateTable(schema)
	return err
}

// Schema returns the local schema of a table, or nil.
func (s *System) Schema(table string) *sqldb.Schema {
	t := s.db.Table(table)
	if t == nil {
		return nil
	}
	return t.Schema()
}

// Tables lists the local table names.
func (s *System) Tables() []string { return s.db.TableNames() }

// Insert adds a business record.
func (s *System) Insert(table string, row sqlval.Row) error {
	return s.db.InsertRow(table, row)
}

// Exec runs arbitrary SQL against the production store; business
// activity in tests and examples uses it to mutate data between loader
// refreshes.
func (s *System) Exec(sql string) (*sqldb.Result, error) {
	return s.db.Exec(sql)
}

// FeedSeq returns the sequence number of the last change recorded in
// the system's feed. A consumer that remembers this value can later ask
// ChangesSince(seq) for exactly the mutations it has not yet seen.
func (s *System) FeedSeq() uint64 { return s.wal.Seq() }

// ChangesSince returns the ordered change events recorded after seq
// (DML only — local DDL is invisible to consumers, which work from the
// mapped schema). ok=false means the feed has been truncated past seq
// and the consumer must fall back to a full snapshot resync.
func (s *System) ChangesSince(seq uint64) ([]sqldb.WALRecord, bool) {
	recs, ok := s.wal.Since(seq)
	if !ok {
		return nil, false
	}
	out := recs[:0]
	for _, r := range recs {
		if r.Kind.IsDML() {
			out = append(out, r)
		}
	}
	return out, true
}

// AckFeed releases feed retention up to and including seq; events at or
// below it can no longer be replayed.
func (s *System) AckFeed(seq uint64) { s.wal.Truncate(seq) }

// Extract snapshots all rows of a local table in insertion order. This
// is the loader's only read path into the production system.
func (s *System) Extract(table string) ([]sqlval.Row, error) {
	t := s.db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("erp: %s has no table %s", s.Kind, table)
	}
	out := make([]sqlval.Row, 0, t.NumRows())
	t.Scan(func(_ int, row sqlval.Row) bool {
		out = append(out, row.Clone())
		return true
	})
	return out, nil
}
