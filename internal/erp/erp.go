// Package erp simulates the production systems (the paper names SAP and
// PeopleSoft) that corporate-network participants extract shared data
// from. A System stores relations under its own *local* schema — its own
// table names, column names, column order, and local vocabulary — and
// keeps mutating while the business operates, which is exactly the
// consistency challenge the BestPeer++ data loader solves (§4.2).
package erp

import (
	"fmt"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// System is one synthetic production system.
type System struct {
	// Kind names the product family (e.g. "SAP", "PeopleSoft"); the
	// schema-mapping templates are keyed by it.
	Kind string
	db   *sqldb.DB
}

// NewSystem creates an empty production system of the given kind.
func NewSystem(kind string) *System {
	return &System{Kind: kind, db: sqldb.NewDB()}
}

// CreateTable declares one local relation.
func (s *System) CreateTable(schema *sqldb.Schema) error {
	_, err := s.db.CreateTable(schema)
	return err
}

// Schema returns the local schema of a table, or nil.
func (s *System) Schema(table string) *sqldb.Schema {
	t := s.db.Table(table)
	if t == nil {
		return nil
	}
	return t.Schema()
}

// Tables lists the local table names.
func (s *System) Tables() []string { return s.db.TableNames() }

// Insert adds a business record.
func (s *System) Insert(table string, row sqlval.Row) error {
	return s.db.InsertRow(table, row)
}

// Exec runs arbitrary SQL against the production store; business
// activity in tests and examples uses it to mutate data between loader
// refreshes.
func (s *System) Exec(sql string) (*sqldb.Result, error) {
	return s.db.Exec(sql)
}

// Extract snapshots all rows of a local table in insertion order. This
// is the loader's only read path into the production system.
func (s *System) Extract(table string) ([]sqlval.Row, error) {
	t := s.db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("erp: %s has no table %s", s.Kind, table)
	}
	out := make([]sqlval.Row, 0, t.NumRows())
	t.Scan(func(_ int, row sqlval.Row) bool {
		out = append(out, row.Clone())
		return true
	})
	return out, nil
}
