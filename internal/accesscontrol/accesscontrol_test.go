package accesscontrol

import (
	"testing"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// salesRole reproduces the paper's Role_sales example:
// {(lineitem.extendedprice, read^write, [0,100]),
//
//	(lineitem.shipdate, read, null)}.
func salesRole() *Role {
	return NewRole("sales",
		Rule{Table: "lineitem", Column: "extendedprice", Priv: PrivRead | PrivWrite,
			Range: &ValueRange{Lo: sqlval.Float(0), Hi: sqlval.Float(100)}},
		Rule{Table: "lineitem", Column: "shipdate", Priv: PrivRead},
	)
}

func TestPrivilegeBits(t *testing.T) {
	p := PrivRead | PrivWrite
	if !p.Has(PrivRead) || !p.Has(PrivWrite) {
		t.Error("Has broken")
	}
	if PrivRead.Has(PrivWrite) {
		t.Error("read has write")
	}
	if p.String() != "read^write" || Privilege(0).String() != "none" {
		t.Errorf("String = %q / %q", p.String(), Privilege(0).String())
	}
}

func TestAccessPaperExample(t *testing.T) {
	r := salesRole()
	priv, rng := r.Access("lineitem", "extendedprice")
	if !priv.Has(PrivRead) || !priv.Has(PrivWrite) {
		t.Errorf("extendedprice priv = %v", priv)
	}
	if rng == nil || !rng.Contains(sqlval.Float(50)) || rng.Contains(sqlval.Float(101)) {
		t.Errorf("extendedprice range = %+v", rng)
	}
	priv, rng = r.Access("lineitem", "shipdate")
	if !priv.Has(PrivRead) || priv.Has(PrivWrite) {
		t.Errorf("shipdate priv = %v", priv)
	}
	if rng != nil {
		t.Errorf("shipdate range = %+v, want unrestricted", rng)
	}
	if r.CanRead("lineitem", "comment") {
		t.Error("unlisted column readable")
	}
	if r.CanWrite("lineitem", "shipdate") {
		t.Error("read-only column writable")
	}
}

func TestMaskRowsPaperExample(t *testing.T) {
	r := salesRole()
	cols := []string{"extendedprice", "shipdate", "comment"}
	rows := []sqlval.Row{
		{sqlval.Float(50), sqlval.Str("1998-01-01"), sqlval.Str("secret")},
		{sqlval.Float(150), sqlval.Str("1998-01-02"), sqlval.Str("secret")},
	}
	masked := MaskRows(r, "lineitem", cols, rows)
	if masked != 3 { // comment x2 + out-of-range price x1
		t.Errorf("masked = %d", masked)
	}
	if rows[0][0].AsFloat() != 50 {
		t.Error("in-range value masked")
	}
	if !rows[1][0].IsNull() {
		t.Error("out-of-range price not masked")
	}
	if !rows[0][2].IsNull() || !rows[1][2].IsNull() {
		t.Error("unreadable column not masked")
	}
	if rows[0][1].IsNull() || rows[1][1].IsNull() {
		t.Error("readable unrestricted column masked")
	}
}

func TestInheritOperator(t *testing.T) {
	base := salesRole()
	derived := base.Inherit("sales-jr")
	if derived.Name != "sales-jr" || len(derived.Rules) != len(base.Rules) {
		t.Fatalf("derived = %+v", derived)
	}
	// Mutating the derived role must not affect the base.
	derived.Rules[0].Priv = 0
	if !base.CanRead("lineitem", "extendedprice") {
		t.Error("Inherit aliased rules")
	}
}

func TestPlusOperator(t *testing.T) {
	r := salesRole().Plus("sales+", Rule{Table: "lineitem", Column: "comment", Priv: PrivRead})
	if !r.CanRead("lineitem", "comment") {
		t.Error("Plus did not add rule")
	}
	if !salesRole().CanRead("lineitem", "shipdate") {
		t.Error("base role changed")
	}
}

func TestMinusOperator(t *testing.T) {
	r := salesRole().Minus("sales-", Rule{Table: "lineitem", Column: "extendedprice", Priv: PrivWrite})
	if r.CanWrite("lineitem", "extendedprice") {
		t.Error("Minus did not revoke write")
	}
	if !r.CanRead("lineitem", "extendedprice") {
		t.Error("Minus removed read too")
	}
	// Removing the remaining privilege drops the rule entirely.
	r2 := r.Minus("sales--", Rule{Table: "lineitem", Column: "extendedprice", Priv: PrivRead})
	if r2.CanRead("lineitem", "extendedprice") {
		t.Error("Minus did not revoke read")
	}
	for _, rule := range r2.Rules {
		if rule.matches("lineitem", "extendedprice") {
			t.Error("emptied rule not dropped")
		}
	}
}

func TestAccessMergesMultipleRules(t *testing.T) {
	r := NewRole("multi",
		Rule{Table: "t", Column: "c", Priv: PrivRead, Range: &ValueRange{Lo: sqlval.Int(0), Hi: sqlval.Int(10)}},
		Rule{Table: "t", Column: "c", Priv: PrivRead}, // unrestricted grant wins
	)
	_, rng := r.Access("t", "c")
	if rng != nil {
		t.Error("unrestricted grant should lift the range restriction")
	}
}

func TestCheckSelectRejectsFilteringOnHiddenColumn(t *testing.T) {
	r := salesRole()
	stmt, err := sqldb.ParseSelect(`SELECT shipdate FROM lineitem WHERE comment = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSelect(r, "lineitem", stmt); err == nil {
		t.Error("filter on unreadable column accepted")
	}
	ok, err := sqldb.ParseSelect(`SELECT shipdate FROM lineitem WHERE shipdate > '1998-01-01' GROUP BY shipdate`)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSelect(r, "lineitem", ok); err != nil {
		t.Errorf("legitimate query rejected: %v", err)
	}
	hiddenGroup, _ := sqldb.ParseSelect(`SELECT COUNT(*) FROM lineitem GROUP BY comment`)
	if err := CheckSelect(r, "lineitem", hiddenGroup); err == nil {
		t.Error("group by unreadable column accepted")
	}
}

func TestFullAccess(t *testing.T) {
	s := &sqldb.Schema{Table: "t", Columns: []sqldb.Column{
		{Name: "a", Kind: sqlval.KindInt}, {Name: "b", Kind: sqlval.KindString},
	}}
	r := FullAccess("admin", s)
	if !r.CanRead("t", "a") || !r.CanWrite("t", "b") {
		t.Error("FullAccess incomplete")
	}
}

func TestRegistry(t *testing.T) {
	g := NewRegistry()
	g.DefineRole(salesRole())
	if g.Role("SALES") == nil {
		t.Error("role lookup not case-insensitive")
	}
	if err := g.AssignUser("alice", "sales"); err != nil {
		t.Fatal(err)
	}
	if err := g.AssignUser("bob", "ghost-role"); err == nil {
		t.Error("assignment to unknown role accepted")
	}
	if r := g.RoleOf("alice"); r == nil || r.Name != "sales" {
		t.Errorf("RoleOf(alice) = %+v", r)
	}
	if g.RoleOf("nobody") != nil {
		t.Error("unknown user has role")
	}
	users := g.Users()
	if users["alice"] != "sales" || len(users) != 1 {
		t.Errorf("Users = %v", users)
	}
	if roles := g.Roles(); len(roles) != 1 {
		t.Errorf("Roles = %v", roles)
	}
}
