// Package accesscontrol implements BestPeer++'s distributed role-based
// access control (paper §4.4).
//
// A role is a set of rules (c_i, p_j, d): column, privilege, and an
// optional range condition on the column's values (Definition 1). The
// service provider defines a standard set of roles when a corporate
// network is created; each peer's local administrator assigns roles to
// users and may derive new roles with the three operators from the
// paper: inheritance (⊢), rule addition (+), and rule removal (−).
//
// Enforcement happens at the data owner: a peer receiving a data
// retrieval request rewrites it under the requesting user's role, so
// unreadable columns come back NULL and range-restricted columns are
// NULLed outside the permitted range.
package accesscontrol

import (
	"fmt"
	"strings"
	"sync"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// Privilege is a bit set of access rights.
type Privilege uint8

// The privilege bits.
const (
	PrivRead Privilege = 1 << iota
	PrivWrite
)

// Has reports whether p includes all bits of q.
func (p Privilege) Has(q Privilege) bool { return p&q == q }

// String renders the privilege set.
func (p Privilege) String() string {
	var parts []string
	if p.Has(PrivRead) {
		parts = append(parts, "read")
	}
	if p.Has(PrivWrite) {
		parts = append(parts, "write")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "^")
}

// ValueRange is the rule's range condition d: values outside [Lo, Hi]
// (inclusive, per the paper's [0,100] example) are not accessible.
type ValueRange struct {
	Lo, Hi sqlval.Value
}

// Contains reports whether v lies inside the range.
func (r ValueRange) Contains(v sqlval.Value) bool {
	return sqlval.Compare(v, r.Lo) >= 0 && sqlval.Compare(v, r.Hi) <= 0
}

// Rule is one access rule (c_i, p_j, d).
type Rule struct {
	Table  string
	Column string
	Priv   Privilege
	// Range restricts access to values inside it; nil means all values
	// (the paper's d = null).
	Range *ValueRange
}

func (r Rule) matches(table, column string) bool {
	return strings.EqualFold(r.Table, table) && strings.EqualFold(r.Column, column)
}

// Role is a named set of rules.
type Role struct {
	Name  string
	Rules []Rule
}

// NewRole creates a role with the given rules.
func NewRole(name string, rules ...Rule) *Role {
	return &Role{Name: name, Rules: rules}
}

// Inherit implements Role_i ⊢ Role_j: a new role carrying all of the
// receiver's rules.
func (r *Role) Inherit(name string) *Role {
	return &Role{Name: name, Rules: append([]Rule(nil), r.Rules...)}
}

// Plus implements Role_j = Role_i + (c,p,d): the receiver's rules plus
// one more.
func (r *Role) Plus(name string, rule Rule) *Role {
	n := r.Inherit(name)
	n.Rules = append(n.Rules, rule)
	return n
}

// Minus implements Role_j = Role_i − (c,p,d): the receiver's rules with
// the matching column's privileges reduced by rule.Priv. A rule whose
// privileges empty out is dropped.
func (r *Role) Minus(name string, rule Rule) *Role {
	n := &Role{Name: name}
	for _, existing := range r.Rules {
		if existing.matches(rule.Table, rule.Column) {
			remaining := existing.Priv &^ rule.Priv
			if remaining == 0 {
				continue
			}
			existing.Priv = remaining
		}
		n.Rules = append(n.Rules, existing)
	}
	return n
}

// Access reports the role's access to a column: the granted privileges
// and the tightest range condition among granting rules (nil = no range
// restriction).
func (r *Role) Access(table, column string) (Privilege, *ValueRange) {
	var priv Privilege
	var rng *ValueRange
	restricted := false
	unrestricted := false
	for _, rule := range r.Rules {
		if !rule.matches(table, column) {
			continue
		}
		priv |= rule.Priv
		if rule.Priv.Has(PrivRead) {
			if rule.Range == nil {
				unrestricted = true
			} else {
				restricted = true
				rng = rule.Range
			}
		}
	}
	if unrestricted || !restricted {
		return priv, nil
	}
	return priv, rng
}

// CanRead reports whether the role may read the column at all.
func (r *Role) CanRead(table, column string) bool {
	p, _ := r.Access(table, column)
	return p.Has(PrivRead)
}

// CanWrite reports whether the role may write the column.
func (r *Role) CanWrite(table, column string) bool {
	p, _ := r.Access(table, column)
	return p.Has(PrivWrite)
}

// MaskRows enforces the role on a single-table result in place: output
// column i carries table column cols[i]; unreadable columns become NULL
// in every row, and range-restricted columns are NULLed outside their
// permitted range (the paper's Role_sales example). It returns the
// number of masked cells.
func MaskRows(role *Role, table string, cols []string, rows []sqlval.Row) int {
	type colRule struct {
		deny bool
		rng  *ValueRange
	}
	rules := make([]colRule, len(cols))
	for i, c := range cols {
		priv, rng := role.Access(table, c)
		rules[i] = colRule{deny: !priv.Has(PrivRead), rng: rng}
	}
	masked := 0
	for _, row := range rows {
		for i := range row {
			if i >= len(rules) {
				break
			}
			cr := rules[i]
			if cr.deny || (cr.rng != nil && !row[i].IsNull() && !cr.rng.Contains(row[i])) {
				if !row[i].IsNull() {
					masked++
				}
				row[i] = sqlval.Null()
			}
		}
	}
	return masked
}

// CheckSelect verifies that a single-table SELECT only *references*
// readable columns in its predicates. Filtering on a column the user
// cannot read would leak information through the result set, so it is
// rejected outright rather than masked.
func CheckSelect(role *Role, table string, stmt *sqldb.SelectStmt) error {
	for _, ref := range sqldb.ColumnsIn(stmt.Where) {
		if !role.CanRead(table, ref.Column) {
			return fmt.Errorf("accesscontrol: role %s may not filter on %s.%s", role.Name, table, ref.Column)
		}
	}
	for _, g := range stmt.GroupBy {
		for _, ref := range sqldb.ColumnsIn(g) {
			if !role.CanRead(table, ref.Column) {
				return fmt.Errorf("accesscontrol: role %s may not group by %s.%s", role.Name, table, ref.Column)
			}
		}
	}
	return nil
}

// FullAccess returns a role granting read+write on every column of the
// given schemas (the benchmark configuration of §6.1.4).
func FullAccess(name string, schemas ...*sqldb.Schema) *Role {
	role := &Role{Name: name}
	for _, s := range schemas {
		for _, c := range s.Columns {
			role.Rules = append(role.Rules, Rule{Table: s.Table, Column: c.Name, Priv: PrivRead | PrivWrite})
		}
	}
	return role
}

// Registry stores role definitions and user→role assignments for one
// peer. User accounts created at any peer are broadcast network-wide via
// the bootstrap (§4.4), so every registry eventually knows every user.
type Registry struct {
	mu    sync.RWMutex
	roles map[string]*Role
	users map[string]string // user -> role name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{roles: make(map[string]*Role), users: make(map[string]string)}
}

// DefineRole installs or replaces a role definition.
func (g *Registry) DefineRole(r *Role) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.roles[strings.ToLower(r.Name)] = r
}

// Role returns a role definition, or nil.
func (g *Registry) Role(name string) *Role {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.roles[strings.ToLower(name)]
}

// Roles lists all defined role names.
func (g *Registry) Roles() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.roles))
	for _, r := range g.roles {
		out = append(out, r.Name)
	}
	return out
}

// AssignUser binds a user account to a role.
func (g *Registry) AssignUser(user, roleName string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.roles[strings.ToLower(roleName)]; !ok {
		return fmt.Errorf("accesscontrol: unknown role %s", roleName)
	}
	g.users[user] = roleName
	return nil
}

// RoleOf resolves a user's role, or nil for unknown users.
func (g *Registry) RoleOf(user string) *Role {
	g.mu.RLock()
	defer g.mu.RUnlock()
	name, ok := g.users[user]
	if !ok {
		return nil
	}
	return g.roles[strings.ToLower(name)]
}

// Users returns all known user accounts with their role names.
func (g *Registry) Users() map[string]string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]string, len(g.users))
	for u, r := range g.users {
		out[u] = r
	}
	return out
}
