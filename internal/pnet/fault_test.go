package pnet

import (
	"errors"
	"testing"
	"time"
)

// fixedSeed is the chaos suite's seed: every fault decision in these
// tests replays identically run to run.
const fixedSeed = 42

func TestFaultPlanDeterministic(t *testing.T) {
	outcomes := func() []bool {
		p := NewFaultPlan(fixedSeed).Drop("b", "", 0.5)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, p.decide("a", "b", "q").drop)
		}
		return out
	}
	first, second := outcomes(), outcomes()
	dropped := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("decision %d differs across identically seeded plans", i)
		}
		if first[i] {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(first) {
		t.Errorf("drop=0.5 produced %d/%d drops", dropped, len(first))
	}
}

func TestFaultPlanRuleScoping(t *testing.T) {
	p := NewFaultPlan(fixedSeed).Drop("b", "only.this", 1)
	if !p.decide("a", "b", "only.this").drop {
		t.Error("matching verb not dropped")
	}
	if p.decide("a", "b", "other").drop {
		t.Error("non-matching verb dropped")
	}
	if p.decide("a", "c", "only.this").drop {
		t.Error("non-matching peer dropped")
	}
}

func TestFaultPlanPartition(t *testing.T) {
	p := NewFaultPlan(fixedSeed).Partition([]string{"a", "b"}, []string{"c"})
	if !p.decide("a", "c", "q").partition {
		t.Error("cross-group call not severed")
	}
	if !p.decide("c", "b", "q").partition {
		t.Error("reverse direction not severed")
	}
	if p.decide("a", "b", "q").partition {
		t.Error("same-group call severed")
	}
	if p.decide("a", "outsider", "q").partition {
		t.Error("ungrouped peer severed")
	}
	p.Heal()
	if p.decide("a", "c", "q").partition {
		t.Error("healed partition still severs")
	}
}

func TestFaultPlanOnNetwork(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	calls := 0
	b.Handle("q", func(msg Message) (Message, error) {
		calls++
		return Message{}, nil
	})

	n.SetFaultPlan(NewFaultPlan(fixedSeed).Error("b", "", 1))
	_, err := a.Call("b", "q", nil, 1)
	if !errors.Is(err, ErrFaultInjected) || !errors.Is(err, ErrRemoteUnavailable) {
		t.Fatalf("err = %v, want injected+unavailable", err)
	}
	if calls != 0 {
		t.Fatalf("handler ran %d times through an err fault", calls)
	}

	// Removing the plan restores clean delivery.
	n.SetFaultPlan(nil)
	if _, err := a.Call("b", "q", nil, 1); err != nil {
		t.Fatalf("call after plan removal: %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d after one clean delivery", calls)
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	calls := 0
	b.Handle("q", func(msg Message) (Message, error) {
		calls++
		return Message{}, nil
	})
	n.SetFaultPlan(NewFaultPlan(fixedSeed).Duplicate("b", "", 1))
	if _, err := a.Call("b", "q", nil, 1); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("duplicated call ran handler %d times, want 2", calls)
	}
}

func TestFaultDropLooksLikeTimeout(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	b.Handle("q", func(msg Message) (Message, error) { return Message{}, nil })
	n.SetCallPolicy(CallPolicy{}) // no retries: surface the raw drop
	n.SetFaultPlan(NewFaultPlan(fixedSeed).Drop("b", "", 1))
	_, err := a.Call("b", "q", nil, 1)
	if !errors.Is(err, ErrCallTimeout) || !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("err = %v, want timeout+injected", err)
	}
	if !Retryable(err) || !Unavailable(err) {
		t.Errorf("dropped call should classify retryable and unavailable")
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan(fixedSeed, "drop=peer3:0.2, delay=50ms, err=peer1@peer.subquery:1, dup=0.5, partition=a+b/c")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.rules); got != 4 {
		t.Fatalf("rules = %d, want 4", got)
	}
	r := p.rules[0]
	if r.Kind != FaultDrop || r.Peer != "peer3" || r.Prob != 0.2 {
		t.Errorf("rule 0 = %+v", r)
	}
	r = p.rules[1]
	if r.Kind != FaultDelay || r.Peer != "" || r.Delay != 50*time.Millisecond {
		t.Errorf("rule 1 = %+v", r)
	}
	r = p.rules[2]
	if r.Kind != FaultError || r.Peer != "peer1" || r.Verb != "peer.subquery" || r.Prob != 1 {
		t.Errorf("rule 2 = %+v", r)
	}
	if len(p.groups) != 2 {
		t.Errorf("groups = %d, want 2", len(p.groups))
	}
	if !p.decide("a", "c", "x").partition {
		t.Error("parsed partition not active")
	}

	for _, bad := range []string{"drop", "drop=peer3:1.5", "delay=abc", "warp=x:1", "partition="} {
		if _, err := ParseFaultPlan(1, bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}

	// Empty spec parses to a plan that perturbs nothing.
	p, err = ParseFaultPlan(1, "")
	if err != nil {
		t.Fatal(err)
	}
	if p.decide("a", "b", "q").any() {
		t.Error("empty plan perturbs")
	}
}
