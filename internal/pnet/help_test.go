package pnet

import (
	"strings"
	"testing"

	"bestpeer/internal/telemetry"
)

// TestEveryPnetMetricHasHelp exercises the transport enough to create
// every pnet_* family, then fails if any renders without a # HELP line.
func TestEveryPnetMetricHasHelp(t *testing.T) {
	n := NewNetwork()
	a := n.Join("help-a")
	b := n.Join("help-b")
	b.Handle("ping", func(msg Message) (Message, error) {
		return Message{Payload: "pong", Size: 4}, nil
	})
	if _, err := a.Call("help-b", "ping", nil, 8); err != nil {
		t.Fatal(err)
	}

	for _, name := range telemetry.MissingHelp(telemetry.Default.Text()) {
		if strings.HasPrefix(name, "pnet_") {
			t.Errorf("pnet family %q has no HELP text", name)
		}
	}
}
