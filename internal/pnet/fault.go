package pnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bestpeer/internal/telemetry"
)

// Fault injection: a FaultPlan installed on a Network perturbs message
// delivery — dropping, delaying, duplicating, or erroring calls per
// destination and verb, and partitioning peer sets — from a seeded
// PRNG, so a chaos run replays identically under the same seed. The
// paper's Algorithm 1 exists because peers fail; the plan is how tests
// (and bpnet -fault) make them fail on demand, deterministically,
// without touching the code under test. Faults default off: a Network
// without a plan delivers exactly as before, bit for bit.

// ErrFaultInjected marks errors produced by a FaultPlan rather than a
// real transport or handler failure. Injected failures also match the
// transport sentinel they simulate (ErrCallTimeout for drops,
// ErrRemoteUnavailable for errors and partitions), so the retry and
// degradation paths treat them exactly like the real thing.
var ErrFaultInjected = errors.New("pnet: injected fault")

// Fault kinds.
const (
	FaultDrop      = "drop"  // swallow the request: the caller sees its deadline fire
	FaultDelay     = "delay" // hold the message before delivery
	FaultDuplicate = "dup"   // deliver the request twice (duplicate-delivery probe)
	FaultError     = "err"   // fail the call with a transport error
)

// Injected-fault counters, by kind.
var (
	faultDropped     = telemetry.Default.Counter("pnet_faults_injected_total", telemetry.L("kind", "drop"))
	faultDelayed     = telemetry.Default.Counter("pnet_faults_injected_total", telemetry.L("kind", "delay"))
	faultDuplicated  = telemetry.Default.Counter("pnet_faults_injected_total", telemetry.L("kind", "duplicate"))
	faultErrored     = telemetry.Default.Counter("pnet_faults_injected_total", telemetry.L("kind", "error"))
	faultPartitioned = telemetry.Default.Counter("pnet_faults_injected_total", telemetry.L("kind", "partition"))
)

// FaultRule perturbs calls matching (Peer, Verb). Empty Peer matches
// every destination; empty Verb matches every message type.
type FaultRule struct {
	Peer string
	Verb string
	Kind string // FaultDrop, FaultDelay, FaultDuplicate, FaultError
	// Prob is the per-call probability in [0,1]; >=1 fires always.
	Prob float64
	// Delay is the injected latency (FaultDelay only).
	Delay time.Duration
}

// FaultPlan is a seeded set of fault rules plus an optional partition.
// Decisions draw from one PRNG in rule order, so a sequential run is
// exactly reproducible; concurrent runs reproduce the same fault
// distribution (the interleaving decides which call draws which
// number). The zero rules/groups plan perturbs nothing.
type FaultPlan struct {
	seed int64

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []FaultRule
	groups []map[string]struct{}
}

// NewFaultPlan returns an empty plan drawing from the given seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the plan's seed (for logging a reproducible run).
func (p *FaultPlan) Seed() int64 { return p.seed }

// Add appends one rule and returns the plan for chaining.
func (p *FaultPlan) Add(r FaultRule) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, r)
	return p
}

// Drop swallows prob of calls to peer/verb ("" = any).
func (p *FaultPlan) Drop(peer, verb string, prob float64) *FaultPlan {
	return p.Add(FaultRule{Peer: peer, Verb: verb, Kind: FaultDrop, Prob: prob})
}

// Delay holds every matching call for d before delivery.
func (p *FaultPlan) Delay(peer, verb string, d time.Duration) *FaultPlan {
	return p.Add(FaultRule{Peer: peer, Verb: verb, Kind: FaultDelay, Prob: 1, Delay: d})
}

// Duplicate delivers prob of matching calls twice.
func (p *FaultPlan) Duplicate(peer, verb string, prob float64) *FaultPlan {
	return p.Add(FaultRule{Peer: peer, Verb: verb, Kind: FaultDuplicate, Prob: prob})
}

// Error fails prob of matching calls with a transport error.
func (p *FaultPlan) Error(peer, verb string, prob float64) *FaultPlan {
	return p.Add(FaultRule{Peer: peer, Verb: verb, Kind: FaultError, Prob: prob})
}

// Partition splits the network: peers in different groups cannot
// exchange messages (both directions fail like a dropped link); peers
// in no group reach everyone. Replaces any previous partition.
func (p *FaultPlan) Partition(groups ...[]string) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.groups = nil
	for _, g := range groups {
		set := make(map[string]struct{}, len(g))
		for _, id := range g {
			set[id] = struct{}{}
		}
		p.groups = append(p.groups, set)
	}
	return p
}

// Heal removes the partition (rules stay).
func (p *FaultPlan) Heal() *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.groups = nil
	return p
}

// faultAction is one call's decided perturbation.
type faultAction struct {
	partition bool
	drop      bool
	errOut    bool
	dup       bool
	delay     time.Duration
}

func (a faultAction) any() bool {
	return a.partition || a.drop || a.errOut || a.dup || a.delay > 0
}

func (p *FaultPlan) groupOf(id string) int {
	for i, g := range p.groups {
		if _, ok := g[id]; ok {
			return i
		}
	}
	return -1
}

// decide rolls the plan's dice for one call. Partition checks run
// first and consume no randomness (a severed link fails every time).
func (p *FaultPlan) decide(from, to, verb string) faultAction {
	p.mu.Lock()
	defer p.mu.Unlock()
	var act faultAction
	if len(p.groups) > 0 {
		gf, gt := p.groupOf(from), p.groupOf(to)
		if gf >= 0 && gt >= 0 && gf != gt {
			act.partition = true
			return act
		}
	}
	for _, r := range p.rules {
		if r.Peer != "" && r.Peer != to {
			continue
		}
		if r.Verb != "" && r.Verb != verb {
			continue
		}
		hit := r.Prob >= 1 || (r.Prob > 0 && p.rng.Float64() < r.Prob)
		if !hit {
			continue
		}
		switch r.Kind {
		case FaultDrop:
			act.drop = true
		case FaultDelay:
			act.delay += r.Delay
		case FaultDuplicate:
			act.dup = true
		case FaultError:
			act.errOut = true
		}
	}
	return act
}

// String renders the plan compactly (bpnet echoes it for replay).
func (p *FaultPlan) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var parts []string
	for _, r := range p.rules {
		target := r.Peer
		if r.Verb != "" {
			target += "@" + r.Verb
		}
		switch r.Kind {
		case FaultDelay:
			parts = append(parts, fmt.Sprintf("%s=%s:%s", r.Kind, target, r.Delay))
		default:
			parts = append(parts, fmt.Sprintf("%s=%s:%g", r.Kind, target, r.Prob))
		}
	}
	for i, g := range p.groups {
		ids := make([]string, 0, len(g))
		for id := range g {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		if i == 0 {
			parts = append(parts, "partition="+strings.Join(ids, "+"))
		} else {
			parts[len(parts)-1] += "/" + strings.Join(ids, "+")
		}
	}
	return fmt.Sprintf("seed=%d %s", p.seed, strings.Join(parts, ","))
}

// ParseFaultPlan builds a plan from a spec string, the bpnet -fault
// syntax. Entries are comma-separated:
//
//	drop=peer3:0.2            drop 20% of calls to peer3
//	drop=0.2                  drop 20% of calls to anyone
//	drop=peer3@peer.subquery:0.2   scope to one verb
//	delay=50ms                delay every call 50ms
//	delay=peer3:50ms          delay calls to peer3
//	err=peer3:1               fail every call to peer3
//	dup=peer3:0.5             deliver half of peer3's calls twice
//	partition=a+b/c+d         split {a,b} from {c,d}
func ParseFaultPlan(seed int64, spec string) (*FaultPlan, error) {
	p := NewFaultPlan(seed)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, arg, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("pnet: fault entry %q: want kind=value", entry)
		}
		kind = strings.TrimSpace(kind)
		arg = strings.TrimSpace(arg)
		if kind == "partition" {
			var groups [][]string
			for _, g := range strings.Split(arg, "/") {
				var ids []string
				for _, id := range strings.Split(g, "+") {
					if id = strings.TrimSpace(id); id != "" {
						ids = append(ids, id)
					}
				}
				if len(ids) > 0 {
					groups = append(groups, ids)
				}
			}
			if len(groups) < 1 {
				return nil, fmt.Errorf("pnet: fault entry %q: empty partition", entry)
			}
			p.Partition(groups...)
			continue
		}
		peer, verb, value, err := splitFaultTarget(arg)
		if err != nil {
			return nil, fmt.Errorf("pnet: fault entry %q: %w", entry, err)
		}
		switch kind {
		case FaultDrop, FaultDuplicate, FaultError:
			prob, err := strconv.ParseFloat(value, 64)
			if err != nil || prob < 0 || prob > 1 {
				return nil, fmt.Errorf("pnet: fault entry %q: probability %q not in [0,1]", entry, value)
			}
			p.Add(FaultRule{Peer: peer, Verb: verb, Kind: kind, Prob: prob})
		case FaultDelay:
			d, err := time.ParseDuration(value)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("pnet: fault entry %q: bad duration %q", entry, value)
			}
			p.Add(FaultRule{Peer: peer, Verb: verb, Kind: FaultDelay, Prob: 1, Delay: d})
		default:
			return nil, fmt.Errorf("pnet: fault entry %q: unknown kind %q", entry, kind)
		}
	}
	return p, nil
}

// splitFaultTarget parses "[peer][@verb]:value" or a bare "value".
func splitFaultTarget(arg string) (peer, verb, value string, err error) {
	if i := strings.LastIndex(arg, ":"); i >= 0 {
		peer, value = arg[:i], arg[i+1:]
	} else {
		value = arg
	}
	if peer != "" {
		if p, v, ok := strings.Cut(peer, "@"); ok {
			peer, verb = p, v
		}
	}
	if value == "" {
		return "", "", "", fmt.Errorf("missing value")
	}
	return peer, verb, value, nil
}

// SetFaultPlan installs (or, with nil, removes) the network's fault
// plan. Installing a plan is safe while traffic is flowing.
func (n *Network) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		n.fault.Store(nil)
		return
	}
	n.fault.Store(p)
}

// FaultPlan returns the installed plan (nil when faults are off).
func (n *Network) FaultPlan() *FaultPlan {
	return n.fault.Load()
}
