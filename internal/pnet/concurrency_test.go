package pnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentCallHandleSetDown hammers the substrate the way the
// concurrent engines now drive it: many goroutines calling into the
// same endpoints while peers flap down/up and handlers are re-registered
// (fail-over re-wires handlers live). Run under -race; the assertions
// only check that replies are intact and errors are the documented ones.
func TestConcurrentCallHandleSetDown(t *testing.T) {
	n := NewNetwork()
	const peers = 8
	const rounds = 300
	echo := func(msg Message) (Message, error) {
		return Message{Payload: msg.Payload, Size: msg.Size}, nil
	}
	eps := make([]*Endpoint, peers)
	for i := range eps {
		eps[i] = n.Join(fmt.Sprintf("p%d", i))
		eps[i].Handle("echo", echo)
	}

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				from := eps[(g+k)%peers]
				to := fmt.Sprintf("p%d", (g*5+k)%peers)
				reply, err := from.Call(to, "echo", k, 8)
				if err != nil {
					if !errors.Is(err, ErrPeerDown) {
						t.Errorf("call %s->%s: %v", from.ID(), to, err)
					}
					continue
				}
				if reply.Payload.(int) != k {
					t.Errorf("echo mangled: got %v want %d", reply.Payload, k)
				}
			}
		}(g)
	}
	// Flap peers down and up while calls are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < rounds; k++ {
			id := fmt.Sprintf("p%d", k%peers)
			n.SetDown(id, true)
			if n.IsDown(id) {
				n.SetDown(id, false)
			}
		}
	}()
	// Re-register handlers live, as fail-over does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < rounds; k++ {
			eps[k%peers].Handle("echo", echo)
			_ = n.Peers()
		}
	}()
	wg.Wait()

	if s := n.Stats(); s.Messages == 0 || s.BytesSent == 0 {
		t.Errorf("no traffic accounted: %+v", s)
	}
}
