package pnet

import (
	"errors"
	"sync"
	"testing"
)

func TestCallRoundTrip(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	b.Handle("echo", func(msg Message) (Message, error) {
		return Message{Type: "echo.reply", Payload: msg.Payload, Size: msg.Size}, nil
	})
	reply, err := a.Call("b", "echo", "hello", 5)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Payload.(string) != "hello" || reply.From != "b" || reply.To != "a" {
		t.Errorf("reply = %+v", reply)
	}
}

func TestStatsAccounting(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	b.Handle("q", func(msg Message) (Message, error) {
		return Message{Size: 100}, nil
	})
	for i := 0; i < 3; i++ {
		if _, err := a.Call("b", "q", nil, 10); err != nil {
			t.Fatal(err)
		}
	}
	s := n.Stats()
	if s.Messages != 3 {
		t.Errorf("messages = %d", s.Messages)
	}
	if s.BytesSent != 3*(10+100) {
		t.Errorf("bytes = %d", s.BytesSent)
	}
	n.ResetStats()
	if s := n.Stats(); s.Messages != 0 || s.BytesSent != 0 {
		t.Errorf("reset stats = %+v", s)
	}
}

func TestUnknownPeer(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	_, err := a.Call("ghost", "q", nil, 0)
	if !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v", err)
	}
}

func TestNoHandler(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	n.Join("b")
	_, err := a.Call("b", "missing", nil, 0)
	if !errors.Is(err, ErrNoHandler) {
		t.Errorf("err = %v", err)
	}
}

func TestDownPeerUnreachable(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	b.Handle("q", func(msg Message) (Message, error) { return Message{}, nil })
	n.SetDown("b", true)
	if !n.IsDown("b") {
		t.Error("IsDown = false after SetDown")
	}
	if _, err := a.Call("b", "q", nil, 0); !errors.Is(err, ErrPeerDown) {
		t.Errorf("err = %v", err)
	}
	n.SetDown("b", false)
	if _, err := a.Call("b", "q", nil, 0); err != nil {
		t.Errorf("recovered peer unreachable: %v", err)
	}
}

func TestDownSenderCannotSend(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	b.Handle("q", func(msg Message) (Message, error) { return Message{}, nil })
	n.SetDown("a", true)
	if _, err := a.Call("b", "q", nil, 0); !errors.Is(err, ErrPeerDown) {
		t.Errorf("down sender could send: %v", err)
	}
}

func TestLeaveRemovesPeer(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	n.Join("b")
	n.Leave("b")
	if _, err := a.Call("b", "q", nil, 0); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v", err)
	}
	if len(n.Peers()) != 1 {
		t.Errorf("peers = %v", n.Peers())
	}
}

func TestRejoinReplacesEndpointAndClearsDown(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b1 := n.Join("b")
	b1.Handle("q", func(msg Message) (Message, error) {
		return Message{Payload: "old"}, nil
	})
	n.SetDown("b", true)
	b2 := n.Join("b") // fail-over: replacement instance takes the identity
	b2.Handle("q", func(msg Message) (Message, error) {
		return Message{Payload: "new"}, nil
	})
	reply, err := a.Call("b", "q", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Payload.(string) != "new" {
		t.Errorf("reply from %v, want replacement", reply.Payload)
	}
}

func TestSelfCall(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	a.Handle("q", func(msg Message) (Message, error) {
		return Message{Payload: msg.From}, nil
	})
	reply, err := a.Call("a", "q", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Payload.(string) != "a" {
		t.Errorf("self call = %v", reply.Payload)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	sentinel := errors.New("boom")
	b.Handle("q", func(msg Message) (Message, error) { return Message{}, sentinel })
	if _, err := a.Call("b", "q", nil, 0); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := NewNetwork()
	b := n.Join("b")
	b.Handle("q", func(msg Message) (Message, error) {
		return Message{Size: 1}, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		e := n.Join(string(rune('c' + i)))
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := e.Call("b", "q", nil, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s := n.Stats(); s.Messages != 1600 {
		t.Errorf("messages = %d", s.Messages)
	}
}
