package pnet

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP transport: a Network can expose its peers on a TCP listener and
// register peers of other processes as remote. Calls addressed to a
// remote peer are gob-encoded, shipped over TCP, delivered into the
// remote Network, and the reply travels back — transparently to every
// layer above (BATON, subqueries, join tasks all flow unchanged). This
// is the multi-host deployment path the in-process substrate was
// designed to keep open: peers address each other only by ID, and every
// payload type that crosses pnet is gob-serializable.
//
// Payload types are registered with RegisterPayload (each producing
// package registers its own in an init function).

// RegisterPayload makes a payload type encodable on the TCP transport.
func RegisterPayload(values ...interface{}) {
	for _, v := range values {
		gob.Register(v)
	}
}

// wireRequest frames one remote call.
type wireRequest struct {
	Msg Message
}

// wireResponse frames the reply (or the handler's error).
type wireResponse struct {
	Msg Message
	Err string
}

// Listener serves remote calls into a Network.
type Listener struct {
	ln   net.Listener
	net  *Network
	mu   sync.Mutex
	done bool
}

// ListenTCP exposes the network's peers on addr (use "127.0.0.1:0" to
// pick a free port). Incoming requests are delivered exactly like local
// calls, including size accounting and down-peer semantics.
func (n *Network) ListenTCP(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pnet: listen %s: %w", addr, err)
	}
	l := &Listener{ln: ln, net: n}
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listener's bound address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close stops serving.
func (l *Listener) Close() error {
	l.mu.Lock()
	l.done = true
	l.mu.Unlock()
	return l.ln.Close()
}

func (l *Listener) acceptLoop() {
	// Transient Accept errors (EMFILE, ECONNABORTED) back off instead of
	// hot-spinning; the delay resets on the next successful accept.
	delay := time.Millisecond
	const maxDelay = 100 * time.Millisecond
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			l.mu.Lock()
			done := l.done
			l.mu.Unlock()
			if done {
				return
			}
			time.Sleep(delay)
			if delay *= 2; delay > maxDelay {
				delay = maxDelay
			}
			continue
		}
		delay = time.Millisecond
		go l.serve(conn)
	}
}

// serve handles one connection: a stream of request/response pairs.
// Reads and writes are buffered so gob's many small writes coalesce
// into one syscall per response frame.
func (l *Listener) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(bw)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		reply, err := l.net.deliver(req.Msg)
		resp := wireResponse{Msg: reply}
		if err != nil {
			resp.Err = err.Error()
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// remotePeer is a connection (pool of one) to another process's network.
type remotePeer struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// AddRemotePeer registers id as reachable at a TCP address served by
// another Network's ListenTCP. Calls to id from any local endpoint are
// shipped there.
func (n *Network) AddRemotePeer(id, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.remotes == nil {
		n.remotes = make(map[string]*remotePeer)
	}
	n.remotes[id] = &remotePeer{addr: addr}
}

// RemoveRemotePeer unregisters a remote peer.
func (n *Network) RemoveRemotePeer(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.remotes, id)
}

// call ships one message to the remote peer, reconnecting once on a
// broken connection.
func (r *remotePeer) call(msg Message) (Message, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		if r.conn == nil {
			conn, err := net.Dial("tcp", r.addr)
			if err != nil {
				return Message{}, fmt.Errorf("pnet: dial %s: %w", r.addr, err)
			}
			r.conn = conn
			r.bw = bufio.NewWriter(conn)
			r.enc = gob.NewEncoder(r.bw)
			r.dec = gob.NewDecoder(bufio.NewReader(conn))
		}
		var resp wireResponse
		// The writer buffers gob's small writes; a flush failure is a
		// broken connection, handled like an encode failure below.
		if err := r.enc.Encode(wireRequest{Msg: msg}); err == nil {
			if err := r.bw.Flush(); err == nil {
				if err := r.dec.Decode(&resp); err == nil {
					if resp.Err != "" {
						return Message{}, fmt.Errorf("pnet: remote: %s", resp.Err)
					}
					return resp.Msg, nil
				}
			}
		}
		// Broken pipe: drop the connection and retry once.
		r.conn.Close()
		r.conn, r.bw, r.enc, r.dec = nil, nil, nil, nil
	}
	return Message{}, fmt.Errorf("pnet: remote call to %s failed", r.addr)
}
