package pnet

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP transport: a Network can expose its peers on a TCP listener and
// register peers of other processes as remote. Calls addressed to a
// remote peer are gob-encoded, shipped over TCP, delivered into the
// remote Network, and the reply travels back — transparently to every
// layer above (BATON, subqueries, join tasks all flow unchanged). This
// is the multi-host deployment path the in-process substrate was
// designed to keep open: peers address each other only by ID, and every
// payload type that crosses pnet is gob-serializable.
//
// The transport is hardened against the failures a real deployment
// sees: calls carry the network's CallPolicy deadline as connection
// read/write deadlines (a wedged-but-listening peer fails the caller
// instead of hanging it), each remote peer is reached through a small
// connection pool (concurrent fan-out calls no longer serialize behind
// one connection's round-trip), sentinel errors survive the wire as
// typed errors, and a closing listener drains its in-flight requests
// with a bounded grace period.
//
// Payload types are registered with RegisterPayload (each producing
// package registers its own in an init function).

// RegisterPayload makes a payload type encodable on the TCP transport.
func RegisterPayload(values ...interface{}) {
	for _, v := range values {
		gob.Register(v)
	}
}

// Wire error codes: sentinel errors are mapped to codes on the serving
// side and re-wrapped on the calling side, so errors.Is works across
// process boundaries exactly as it does in-process.
const (
	wireErrGeneric = iota
	wireErrPeerDown
	wireErrUnknownPeer
	wireErrNoHandler
	wireErrHandlerPanic
)

// WireSentinelBase is the first wire error code available to packages
// above pnet; codes below it are reserved for pnet's own sentinels.
const WireSentinelBase = 64

// wireSentinels maps registered codes (int) to sentinel errors (error).
var wireSentinels sync.Map

// RegisterWireSentinel maps a sentinel error defined above pnet (for
// example the serving tier's admission rejection) to a stable wire
// code, so errors.Is keeps working when the error crosses the TCP
// transport. The producing package registers its sentinels from an init
// function with a code >= WireSentinelBase; since both ends of the wire
// import the producing package, the mapping exists on both sides.
// Codes must be process-wide unique; re-registering a code replaces it.
func RegisterWireSentinel(code int, sentinel error) {
	if code < WireSentinelBase {
		panic(fmt.Sprintf("pnet: wire sentinel code %d collides with the reserved range [0,%d)", code, WireSentinelBase))
	}
	if sentinel == nil {
		panic("pnet: nil wire sentinel")
	}
	wireSentinels.Store(code, sentinel)
}

func wireErrCode(err error) int {
	switch {
	case errors.Is(err, ErrPeerDown):
		return wireErrPeerDown
	case errors.Is(err, ErrUnknownPeer):
		return wireErrUnknownPeer
	case errors.Is(err, ErrNoHandler):
		return wireErrNoHandler
	case errors.Is(err, ErrHandlerPanic):
		return wireErrHandlerPanic
	default:
		code := wireErrGeneric
		wireSentinels.Range(func(k, v interface{}) bool {
			if errors.Is(err, v.(error)) {
				code = k.(int)
				return false
			}
			return true
		})
		return code
	}
}

func wireErrUnpack(code int, text string) error {
	switch code {
	case wireErrPeerDown:
		return fmt.Errorf("%w: remote: %s", ErrPeerDown, text)
	case wireErrUnknownPeer:
		return fmt.Errorf("%w: remote: %s", ErrUnknownPeer, text)
	case wireErrNoHandler:
		return fmt.Errorf("%w: remote: %s", ErrNoHandler, text)
	case wireErrHandlerPanic:
		return fmt.Errorf("%w: remote: %s", ErrHandlerPanic, text)
	default:
		if v, ok := wireSentinels.Load(code); ok {
			return fmt.Errorf("%w: remote: %s", v.(error), text)
		}
		return fmt.Errorf("pnet: remote: %s", text)
	}
}

// wireRequest frames one remote call.
type wireRequest struct {
	Msg Message
}

// wireResponse frames the reply (or the handler's error).
type wireResponse struct {
	Msg  Message
	Err  string
	Code int
}

// defaultCloseGrace bounds how long Listener.Close waits for in-flight
// requests before force-closing their connections.
const defaultCloseGrace = 2 * time.Second

// Listener serves remote calls into a Network.
type Listener struct {
	ln    net.Listener
	net   *Network
	grace time.Duration

	mu    sync.Mutex
	done  bool
	conns map[net.Conn]*servedConn
	wg    sync.WaitGroup
}

// servedConn is one accepted connection's serve-side state. busy marks
// a request between decode and response flush — the only state Close's
// grace period protects; a connection idle between requests is severed
// immediately (the client transparently redials).
type servedConn struct {
	busy bool
}

// ListenTCP exposes the network's peers on addr (use "127.0.0.1:0" to
// pick a free port). Incoming requests are delivered exactly like local
// calls, including size accounting and down-peer semantics.
func (n *Network) ListenTCP(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pnet: listen %s: %w", addr, err)
	}
	l := &Listener{ln: ln, net: n, grace: defaultCloseGrace, conns: make(map[net.Conn]*servedConn)}
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listener's bound address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// SetCloseGrace overrides the drain grace period Close allows
// in-flight requests (default 2s; <=0 force-closes immediately).
func (l *Listener) SetCloseGrace(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.grace = d
}

// Close stops accepting and drains in-flight requests: active serve
// connections get the grace period to finish their current call, then
// are force-closed; Close returns only after every serve goroutine has
// exited (bounded by a second grace period for handlers that ignore
// their closed connection). Closing twice is safe.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.done {
		l.mu.Unlock()
		return nil
	}
	l.done = true
	grace := l.grace
	// Sever connections idle between requests right away: nothing is in
	// flight on them, and their serve loops are parked in Decode — the
	// grace period is for requests mid-handler, not parked sockets.
	for c, s := range l.conns {
		if !s.busy {
			c.Close()
		}
	}
	l.mu.Unlock()

	err := l.ln.Close()
	drained := make(chan struct{})
	go func() {
		l.wg.Wait()
		close(drained)
	}()
	if !waitOrTimeout(drained, grace) {
		// Grace expired: sever the stragglers. Their serve loops exit as
		// soon as the in-flight deliver returns (bounded by the serving
		// network's own call deadline) and the write fails.
		l.mu.Lock()
		for c := range l.conns {
			c.Close()
		}
		l.mu.Unlock()
		waitOrTimeout(drained, grace)
	}
	return err
}

// waitOrTimeout waits for ch up to d (d<=0 polls once) and reports
// whether ch closed in time.
func waitOrTimeout(ch <-chan struct{}, d time.Duration) bool {
	if d <= 0 {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	}
}

func (l *Listener) acceptLoop() {
	// Transient Accept errors (EMFILE, ECONNABORTED) back off instead of
	// hot-spinning; the delay resets on the next successful accept.
	delay := time.Millisecond
	const maxDelay = 100 * time.Millisecond
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			l.mu.Lock()
			done := l.done
			l.mu.Unlock()
			if done {
				return
			}
			time.Sleep(delay)
			if delay *= 2; delay > maxDelay {
				delay = maxDelay
			}
			continue
		}
		delay = time.Millisecond
		l.mu.Lock()
		if l.done {
			l.mu.Unlock()
			conn.Close()
			return
		}
		st := &servedConn{}
		l.conns[conn] = st
		l.wg.Add(1)
		l.mu.Unlock()
		go l.serve(conn, st)
	}
}

// serve handles one connection: a stream of request/response pairs.
// Reads and writes are buffered so gob's many small writes coalesce
// into one syscall per response frame. Handler panics are recovered
// inside deliver, so a bad handler fails one request instead of
// killing the serving process.
func (l *Listener) serve(conn net.Conn, st *servedConn) {
	defer func() {
		conn.Close()
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
		l.wg.Done()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(bw)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		l.mu.Lock()
		st.busy = true
		l.mu.Unlock()
		reply, err := l.net.deliver(req.Msg)
		resp := wireResponse{Msg: reply}
		if err != nil {
			resp.Err = err.Error()
			resp.Code = wireErrCode(err)
		}
		encErr := enc.Encode(&resp)
		if encErr == nil {
			encErr = bw.Flush()
		}
		l.mu.Lock()
		st.busy = false
		l.mu.Unlock()
		if encErr != nil {
			return
		}
	}
}

// remoteConns is the per-remote connection pool size: the most calls
// one process keeps in flight toward a single remote peer before
// callers queue for a slot. Sized to the fan-out worker pool's
// appetite without holding dozens of sockets per peer.
const remoteConns = 4

// rconn is one pooled connection with its codec state.
type rconn struct {
	conn net.Conn
	bw   *bufio.Writer
	enc  *gob.Encoder
	dec  *gob.Decoder
	// reused marks a connection that already served a previous call —
	// the only kind whose failure is worth one transparent redial (a
	// listener restart between calls leaves stale pooled connections).
	reused bool
}

// remotePeer is a bounded connection pool to another process's
// network. Each call checks out a connection for one request/response
// exchange, so concurrent calls to the same remote proceed in
// parallel instead of serializing behind a single connection's
// network round-trip.
type remotePeer struct {
	addr  string
	slots chan struct{} // capacity remoteConns; one per live call
	idle  chan *rconn   // parked connections awaiting reuse
}

func newRemotePeer(addr string) *remotePeer {
	r := &remotePeer{
		addr:  addr,
		slots: make(chan struct{}, remoteConns),
		idle:  make(chan *rconn, remoteConns),
	}
	for i := 0; i < remoteConns; i++ {
		r.slots <- struct{}{}
	}
	return r
}

// AddRemotePeer registers id as reachable at a TCP address served by
// another Network's ListenTCP. Calls to id from any local endpoint are
// shipped there.
func (n *Network) AddRemotePeer(id, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.remotes == nil {
		n.remotes = make(map[string]*remotePeer)
	}
	n.remotes[id] = newRemotePeer(addr)
}

// RemoveRemotePeer unregisters a remote peer and closes its parked
// connections (checked-out ones close when their call finishes).
func (n *Network) RemoveRemotePeer(id string) {
	n.mu.Lock()
	r := n.remotes[id]
	delete(n.remotes, id)
	n.mu.Unlock()
	if r != nil {
		r.drainIdle()
	}
}

// drainIdle closes every parked connection.
func (r *remotePeer) drainIdle() {
	for {
		select {
		case c := <-r.idle:
			c.conn.Close()
		default:
			return
		}
	}
}

// checkout pops a parked connection or dials a new one.
func (r *remotePeer) checkout() (*rconn, error) {
	select {
	case c := <-r.idle:
		c.reused = true
		return c, nil
	default:
	}
	conn, err := net.Dial("tcp", r.addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrRemoteUnavailable, r.addr, err)
	}
	bw := bufio.NewWriter(conn)
	return &rconn{
		conn: conn,
		bw:   bw,
		enc:  gob.NewEncoder(bw),
		dec:  gob.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// call ships one message to the remote peer. timeout (the CallPolicy's
// per-attempt deadline) bounds the wait for a pool slot plus the
// connection's read/write deadline; zero means wait indefinitely, the
// pre-hardening behavior.
func (r *remotePeer) call(msg Message, timeout time.Duration) (Message, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := r.acquireSlot(deadline); err != nil {
		return Message{}, err
	}
	defer func() { r.slots <- struct{}{} }()

	for attempt := 0; ; attempt++ {
		c, err := r.checkout()
		if err != nil {
			return Message{}, err
		}
		reply, handlerErr, transportErr := c.roundTrip(msg, deadline)
		if transportErr == nil {
			r.park(c)
			return reply, handlerErr
		}
		c.conn.Close()
		if isTimeout(transportErr) {
			// The request may be executing remotely; re-sending is the
			// caller's (policy-gated) decision, never the transport's.
			return Message{}, fmt.Errorf("%w: %s: %v", ErrCallTimeout, r.addr, transportErr)
		}
		if c.reused && attempt == 0 {
			// A stale pooled connection (listener restarted between
			// calls): every parked sibling is equally stale, so flush
			// them and redial once.
			r.drainIdle()
			continue
		}
		return Message{}, fmt.Errorf("%w: %s: %v", ErrRemoteUnavailable, r.addr, transportErr)
	}
}

// acquireSlot takes a pool slot, bounded by the call deadline.
func (r *remotePeer) acquireSlot(deadline time.Time) error {
	select {
	case <-r.slots:
		return nil
	default:
	}
	if deadline.IsZero() {
		<-r.slots
		return nil
	}
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case <-r.slots:
		return nil
	case <-t.C:
		return fmt.Errorf("%w: %s: connection pool exhausted", ErrCallTimeout, r.addr)
	}
}

// park returns a healthy connection to the pool.
func (r *remotePeer) park(c *rconn) {
	select {
	case r.idle <- c:
	default:
		c.conn.Close() // pool full (cannot happen while slots bound calls)
	}
}

// roundTrip performs one request/response exchange. handlerErr is the
// remote handler's error (the connection stays usable); transportErr
// is a broken or timed-out connection.
func (c *rconn) roundTrip(msg Message, deadline time.Time) (reply Message, handlerErr, transportErr error) {
	// SetDeadline with the zero time clears any previous deadline.
	if err := c.conn.SetDeadline(deadline); err != nil {
		return Message{}, nil, err
	}
	// The writer buffers gob's small writes; a flush failure is a broken
	// connection, handled like an encode failure.
	if err := c.enc.Encode(wireRequest{Msg: msg}); err != nil {
		return Message{}, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return Message{}, nil, err
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return Message{}, nil, err
	}
	if resp.Err != "" {
		return Message{}, wireErrUnpack(resp.Code, resp.Err), nil
	}
	return resp.Msg, nil, nil
}

// isTimeout reports whether the transport failure was a fired deadline.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
