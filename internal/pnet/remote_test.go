package pnet

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func init() {
	RegisterPayload("", int(0), []byte(nil))
}

// twoNetworks wires network A to reach peer "b" living on network B
// over real TCP.
func twoNetworks(t *testing.T) (*Network, *Network, *Listener) {
	t.Helper()
	netA := NewNetwork()
	netB := NewNetwork()
	b := netB.Join("b")
	b.Handle("echo", func(msg Message) (Message, error) {
		return Message{Payload: msg.Payload, Size: msg.Size}, nil
	})
	b.Handle("upper", func(msg Message) (Message, error) {
		s := msg.Payload.(string)
		return Message{Payload: strings.ToUpper(s), Size: int64(len(s))}, nil
	})
	ln, err := netB.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	netA.AddRemotePeer("b", ln.Addr())
	return netA, netB, ln
}

func TestRemoteCallRoundTrip(t *testing.T) {
	netA, _, _ := twoNetworks(t)
	a := netA.Join("a")
	reply, err := a.Call("b", "upper", "hello over tcp", 14)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Payload.(string) != "HELLO OVER TCP" {
		t.Errorf("reply = %v", reply.Payload)
	}
	if reply.From != "b" || reply.To != "a" {
		t.Errorf("addressing = %+v", reply)
	}
}

func TestRemoteCallAccounting(t *testing.T) {
	netA, netB, _ := twoNetworks(t)
	a := netA.Join("a")
	netA.ResetStats()
	netB.ResetStats()
	if _, err := a.Call("b", "echo", "x", 1); err != nil {
		t.Fatal(err)
	}
	if s := netA.Stats(); s.Messages != 1 {
		t.Errorf("sender stats = %+v", s)
	}
	if s := netB.Stats(); s.Messages != 1 {
		t.Errorf("receiver stats = %+v", s)
	}
}

func TestRemoteHandlerErrorPropagates(t *testing.T) {
	netA, netB, _ := twoNetworks(t)
	bEp := netB.Join("b2")
	bEp.Handle("fail", func(msg Message) (Message, error) {
		return Message{}, ErrNoHandler
	})
	netA.AddRemotePeer("b2", mustAddrOf(t, netB))
	a := netA.Join("a")
	_, err := a.Call("b2", "fail", nil, 0)
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Errorf("err = %v", err)
	}
	// Unknown message types on the remote side error cleanly too.
	if _, err := a.Call("b", "missing", nil, 0); err == nil {
		t.Error("missing handler succeeded remotely")
	}
}

// mustAddrOf spins a fresh listener for netB (test helper for multiple
// remote ids pointing at one process).
func mustAddrOf(t *testing.T, n *Network) string {
	t.Helper()
	ln, err := n.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln.Addr()
}

func TestRemoteConnectionReuse(t *testing.T) {
	netA, _, _ := twoNetworks(t)
	a := netA.Join("a")
	for i := 0; i < 50; i++ {
		if _, err := a.Call("b", "echo", i, 8); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRemoteConcurrentCalls(t *testing.T) {
	netA, _, _ := twoNetworks(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		ep := netA.Join(fmt.Sprintf("client-%d", g))
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := ep.Call("b", "echo", i, 8); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRemoteReconnectAfterListenerRestart(t *testing.T) {
	netA := NewNetwork()
	netB := NewNetwork()
	b := netB.Join("b")
	b.Handle("echo", func(msg Message) (Message, error) {
		return Message{Payload: msg.Payload}, nil
	})
	ln, err := netB.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	netA.AddRemotePeer("b", addr)
	a := netA.Join("a")
	if _, err := a.Call("b", "echo", "one", 3); err != nil {
		t.Fatal(err)
	}
	// Kill and restart the listener on the same address: the cached
	// connection breaks and the caller reconnects.
	ln.Close()
	ln2, err := netB.ListenTCP(addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer ln2.Close()
	if _, err := a.Call("b", "echo", "two", 3); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
}

func TestRemoteDownPeerRespected(t *testing.T) {
	netA, _, _ := twoNetworks(t)
	a := netA.Join("a")
	netA.SetDown("b", true)
	if _, err := a.Call("b", "echo", "x", 1); err == nil {
		t.Error("call to down remote succeeded")
	}
	netA.SetDown("b", false)
	if _, err := a.Call("b", "echo", "x", 1); err != nil {
		t.Errorf("call after recovery: %v", err)
	}
	netA.RemoveRemotePeer("b")
	if _, err := a.Call("b", "echo", "x", 1); err == nil {
		t.Error("call after removal succeeded")
	}
}
