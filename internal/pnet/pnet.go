// Package pnet is the in-process messaging substrate connecting
// BestPeer++ instances.
//
// Peers within one process deliver messages by direct handler
// invocation; peers in other processes are reachable through the TCP
// transport (ListenTCP / AddRemotePeer in remote.go) with gob-encoded
// payloads. Either way the substrate preserves the properties the
// system depends on: peers address each other only by ID, every
// exchange is size-accounted (feeding the virtual-time cost model and
// the pay-as-you-go billing), and a peer marked down is unreachable
// exactly as a crashed EC2 instance would be.
package pnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrPeerDown is returned when the destination peer is marked failed.
var ErrPeerDown = errors.New("pnet: peer is down")

// ErrUnknownPeer is returned when the destination was never registered
// or has left the network.
var ErrUnknownPeer = errors.New("pnet: unknown peer")

// ErrNoHandler is returned when the destination has no handler for the
// message type.
var ErrNoHandler = errors.New("pnet: no handler for message type")

// Message is one request or reply. Size is the encoded payload size in
// bytes as accounted by the sender; the network sums it into its
// transfer statistics.
type Message struct {
	From    string
	To      string
	Type    string
	Payload interface{}
	Size    int64
}

// Handler processes one request and returns the reply.
type Handler func(msg Message) (Message, error)

// Transport is the sender-side interface the overlay and engines use.
type Transport interface {
	// Call sends a request and waits for the reply.
	Call(to, msgType string, payload interface{}, size int64) (Message, error)
	// ID returns the local peer ID.
	ID() string
}

// Stats aggregates network traffic counters.
type Stats struct {
	Messages  int64
	BytesSent int64
}

// Network is the hub connecting all endpoints.
type Network struct {
	mu      sync.RWMutex
	peers   map[string]*Endpoint
	down    map[string]bool
	remotes map[string]*remotePeer // peers served by other processes

	messages  atomic.Int64
	bytesSent atomic.Int64
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		peers: make(map[string]*Endpoint),
		down:  make(map[string]bool),
	}
}

// Join registers a peer and returns its endpoint. Joining an existing ID
// replaces the previous endpoint (used by fail-over: the replacement
// instance takes over the failed peer's identity).
func (n *Network) Join(id string) *Endpoint {
	e := &Endpoint{id: id, net: n, handlers: make(map[string]Handler)}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = e
	delete(n.down, id)
	return e
}

// Leave removes a peer from the network.
func (n *Network) Leave(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.peers, id)
	delete(n.down, id)
}

// SetDown marks a peer failed (true) or recovered (false). Messages to a
// down peer fail with ErrPeerDown.
func (n *Network) SetDown(id string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
}

// IsDown reports whether the peer is marked failed.
func (n *Network) IsDown(id string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down[id]
}

// Peers returns the IDs of all registered peers.
func (n *Network) Peers() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.peers))
	for id := range n.peers {
		out = append(out, id)
	}
	return out
}

// Stats returns cumulative traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		Messages:  n.messages.Load(),
		BytesSent: n.bytesSent.Load(),
	}
}

// ResetStats zeroes the traffic counters (between benchmark runs).
func (n *Network) ResetStats() {
	n.messages.Store(0)
	n.bytesSent.Store(0)
}

// deliver routes one request message to its destination handler, local
// or remote.
func (n *Network) deliver(msg Message) (Message, error) {
	n.mu.RLock()
	dest, ok := n.peers[msg.To]
	remote := n.remotes[msg.To]
	isDown := n.down[msg.To] || n.down[msg.From]
	n.mu.RUnlock()
	if !ok && remote != nil {
		if isDown {
			return Message{}, fmt.Errorf("%w: %s", ErrPeerDown, msg.To)
		}
		n.messages.Add(1)
		n.bytesSent.Add(msg.Size)
		reply, err := remote.call(msg)
		if err != nil {
			return Message{}, err
		}
		n.bytesSent.Add(reply.Size)
		reply.From = msg.To
		reply.To = msg.From
		return reply, nil
	}
	if !ok {
		return Message{}, fmt.Errorf("%w: %s", ErrUnknownPeer, msg.To)
	}
	if isDown {
		return Message{}, fmt.Errorf("%w: %s", ErrPeerDown, msg.To)
	}
	dest.mu.RLock()
	h, ok := dest.handlers[msg.Type]
	dest.mu.RUnlock()
	if !ok {
		return Message{}, fmt.Errorf("%w: %s at %s", ErrNoHandler, msg.Type, msg.To)
	}
	n.messages.Add(1)
	n.bytesSent.Add(msg.Size)
	reply, err := h(msg)
	if err != nil {
		return Message{}, err
	}
	n.bytesSent.Add(reply.Size)
	reply.From = msg.To
	reply.To = msg.From
	return reply, nil
}

// Endpoint is one peer's attachment to the network.
type Endpoint struct {
	id       string
	net      *Network
	mu       sync.RWMutex
	handlers map[string]Handler
}

// ID returns the peer ID of this endpoint.
func (e *Endpoint) ID() string { return e.id }

// Handle registers the handler for a message type, replacing any
// previous registration.
func (e *Endpoint) Handle(msgType string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[msgType] = h
}

// Call sends a request to another peer and waits for the reply. Calling
// yourself is allowed and goes through the same accounting.
func (e *Endpoint) Call(to, msgType string, payload interface{}, size int64) (Message, error) {
	return e.net.deliver(Message{
		From:    e.id,
		To:      to,
		Type:    msgType,
		Payload: payload,
		Size:    size,
	})
}

// Network returns the network this endpoint belongs to.
func (e *Endpoint) Network() *Network { return e.net }
