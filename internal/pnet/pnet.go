// Package pnet is the in-process messaging substrate connecting
// BestPeer++ instances.
//
// Peers within one process deliver messages by direct handler
// invocation; peers in other processes are reachable through the TCP
// transport (ListenTCP / AddRemotePeer in remote.go) with gob-encoded
// payloads. Either way the substrate preserves the properties the
// system depends on: peers address each other only by ID, every
// exchange is size-accounted (feeding the virtual-time cost model and
// the pay-as-you-go billing), and a peer marked down is unreachable
// exactly as a crashed EC2 instance would be.
package pnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bestpeer/internal/telemetry"
)

// ErrPeerDown is returned when the destination peer is marked failed.
var ErrPeerDown = errors.New("pnet: peer is down")

// ErrUnknownPeer is returned when the destination was never registered
// or has left the network.
var ErrUnknownPeer = errors.New("pnet: unknown peer")

// ErrNoHandler is returned when the destination has no handler for the
// message type.
var ErrNoHandler = errors.New("pnet: no handler for message type")

// Message is one request or reply. Size is the encoded payload size in
// bytes as accounted by the sender; the network sums it into its
// transfer statistics.
type Message struct {
	From    string
	To      string
	Type    string
	Payload interface{}
	Size    int64
	// Trace is the caller's span context, propagated so work executed
	// at the destination nests under the calling query's trace. The
	// zero value means "untraced".
	Trace telemetry.SpanContext
}

// Handler processes one request and returns the reply.
type Handler func(msg Message) (Message, error)

// Transport is the sender-side interface the overlay and engines use.
type Transport interface {
	// Call sends a request and waits for the reply.
	Call(to, msgType string, payload interface{}, size int64) (Message, error)
	// ID returns the local peer ID.
	ID() string
}

// Stats aggregates network traffic counters.
type Stats struct {
	Messages  int64
	BytesSent int64
}

// Network is the hub connecting all endpoints.
type Network struct {
	mu      sync.RWMutex
	peers   map[string]*Endpoint
	down    map[string]bool
	remotes map[string]*remotePeer // peers served by other processes

	messages  atomic.Int64
	bytesSent atomic.Int64

	// Hardened-path state: the call policy (deadline + retry bounds),
	// the set of verbs safe to retry, the installed fault plan (nil =
	// faults off), and the retry backoff's jitter source.
	policy atomic.Pointer[CallPolicy]
	idem   sync.Map // verb string -> struct{}
	inline sync.Map // verb string -> struct{} (safe to run unguarded, see MarkInline)
	fault  atomic.Pointer[FaultPlan]
	jitter jitterSource

	// dest caches per-destination telemetry handles so the hot deliver
	// path does one sync.Map read instead of a registry lookup.
	dest sync.Map // string -> *destMetrics
}

// handlerPanics counts panics recovered in the delivery path.
var handlerPanics = telemetry.Default.Counter("pnet_handler_panics_total")

// destMetrics is one destination's cached telemetry handles.
type destMetrics struct {
	calls       *telemetry.Counter
	bytes       *telemetry.Counter
	errDown     *telemetry.Counter
	errUnknown  *telemetry.Counter
	errNoHandle *telemetry.Counter
	errHandler  *telemetry.Counter
	retries     *telemetry.Counter
	timeouts    *telemetry.Counter
	latency     *telemetry.Histogram
}

// pnetHelpOnce documents every pnet_* family. It runs after the first
// destination's series are created: SetHelp attaches to an existing
// family, so package init would be too early for the per-peer ones.
var pnetHelpOnce sync.Once

func setPnetHelp() {
	d := telemetry.Default
	d.SetHelp("pnet_calls_total", "RPC deliveries attempted, by destination peer.")
	d.SetHelp("pnet_bytes_total", "Payload bytes delivered, by destination peer.")
	d.SetHelp("pnet_errors_total", "Failed deliveries, by destination peer and cause.")
	d.SetHelp("pnet_retries_total", "Delivery retries, by destination peer.")
	d.SetHelp("pnet_timeouts_total", "Deliveries abandoned at the deadline, by destination peer.")
	d.SetHelp("pnet_call_seconds", "Delivery latency, by destination peer.")
	d.SetHelp("pnet_handler_panics_total", "Panics recovered in the delivery path.")
	d.SetHelp("pnet_faults_injected_total", "Faults injected by the chaos plane, by kind.")
}

func (n *Network) destOf(to string) *destMetrics {
	if v, ok := n.dest.Load(to); ok {
		return v.(*destMetrics)
	}
	peer := telemetry.L("peer", to)
	d := &destMetrics{
		calls:       telemetry.Default.Counter("pnet_calls_total", peer),
		bytes:       telemetry.Default.Counter("pnet_bytes_total", peer),
		errDown:     telemetry.Default.Counter("pnet_errors_total", peer, telemetry.L("kind", "peer_down")),
		errUnknown:  telemetry.Default.Counter("pnet_errors_total", peer, telemetry.L("kind", "unknown_peer")),
		errNoHandle: telemetry.Default.Counter("pnet_errors_total", peer, telemetry.L("kind", "no_handler")),
		errHandler:  telemetry.Default.Counter("pnet_errors_total", peer, telemetry.L("kind", "handler")),
		retries:     telemetry.Default.Counter("pnet_retries_total", peer),
		timeouts:    telemetry.Default.Counter("pnet_timeouts_total", peer),
		latency:     telemetry.Default.Histogram("pnet_call_seconds", nil, peer),
	}
	pnetHelpOnce.Do(setPnetHelp)
	actual, _ := n.dest.LoadOrStore(to, d)
	return actual.(*destMetrics)
}

// PeerErrorStats counts failed deliveries to one destination by cause.
// Probe degradation (a fan-out round skipping a crashed participant)
// shows up here instead of disappearing into a skipped slot.
type PeerErrorStats struct {
	PeerDown    int64
	UnknownPeer int64
	NoHandler   int64
	Handler     int64
}

// Total sums the per-cause counts.
func (s PeerErrorStats) Total() int64 {
	return s.PeerDown + s.UnknownPeer + s.NoHandler + s.Handler
}

// PeerErrors returns cumulative delivery-failure counts per
// destination, for destinations that recorded at least one failure.
func (n *Network) PeerErrors() map[string]PeerErrorStats {
	out := make(map[string]PeerErrorStats)
	n.dest.Range(func(k, v interface{}) bool {
		d := v.(*destMetrics)
		s := PeerErrorStats{
			PeerDown:    d.errDown.Value(),
			UnknownPeer: d.errUnknown.Value(),
			NoHandler:   d.errNoHandle.Value(),
			Handler:     d.errHandler.Value(),
		}
		if s.Total() > 0 {
			out[k.(string)] = s
		}
		return true
	})
	return out
}

// NewNetwork returns an empty network under the default hardened call
// policy (SetCallPolicy with the zero policy restores the bare path).
func NewNetwork() *Network {
	n := &Network{
		peers: make(map[string]*Endpoint),
		down:  make(map[string]bool),
	}
	n.SetCallPolicy(DefaultCallPolicy())
	return n
}

// Join registers a peer and returns its endpoint. Joining an existing ID
// replaces the previous endpoint (used by fail-over: the replacement
// instance takes over the failed peer's identity).
func (n *Network) Join(id string) *Endpoint {
	e := &Endpoint{id: id, net: n, handlers: make(map[string]Handler)}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = e
	delete(n.down, id)
	return e
}

// Leave removes a peer from the network.
func (n *Network) Leave(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.peers, id)
	delete(n.down, id)
}

// SetDown marks a peer failed (true) or recovered (false). Messages to a
// down peer fail with ErrPeerDown.
func (n *Network) SetDown(id string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
}

// IsDown reports whether the peer is marked failed.
func (n *Network) IsDown(id string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.down[id]
}

// Peers returns the IDs of all registered peers.
func (n *Network) Peers() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.peers))
	for id := range n.peers {
		out = append(out, id)
	}
	return out
}

// Stats returns cumulative traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		Messages:  n.messages.Load(),
		BytesSent: n.bytesSent.Load(),
	}
}

// ResetStats zeroes the traffic counters (between benchmark runs).
func (n *Network) ResetStats() {
	n.messages.Store(0)
	n.bytesSent.Store(0)
}

// deliver routes one request message to its destination handler, local
// or remote, accounting every outcome in telemetry: calls, bytes in
// both directions, per-cause failures, and the call's wall-clock
// latency per destination. A traced message gets an rpc span, and the
// span's context replaces the message's before the handler runs so
// spans the destination opens nest under the delivery.
func (n *Network) deliver(msg Message) (Message, error) {
	dm := n.destOf(msg.To)
	sp := telemetry.StartSpan(msg.Trace, "rpc:"+msg.Type, telemetry.L("to", msg.To))
	if sp != nil {
		msg.Trace = sp.Context()
	}
	start := time.Now()
	reply, err := n.deliverPolicy(msg, dm)
	dm.latency.ObserveDuration(time.Since(start))
	sp.SetError(err)
	sp.End()
	return reply, err
}

// deliverPolicy runs the CallPolicy retry loop around attempts. Only
// verbs marked idempotent are ever re-sent, and only on
// transport-shaped failures (Retryable): the request may never have
// reached the handler. A handler error — including a recovered panic —
// returns immediately, whatever the verb.
func (n *Network) deliverPolicy(msg Message, dm *destMetrics) (Message, error) {
	pol := n.CallPolicy()
	attempts := 1
	if pol.MaxAttempts > 1 && n.Idempotent(msg.Type) {
		attempts = pol.MaxAttempts
	}
	var reply Message
	var err error
	for a := 1; ; a++ {
		reply, err = n.deliverOnce(msg, dm, pol.Timeout)
		if err != nil && errors.Is(err, ErrCallTimeout) {
			dm.timeouts.Inc()
		}
		if err == nil || a >= attempts || !Retryable(err) {
			return reply, err
		}
		dm.retries.Inc()
		n.backoffSleep(pol, a)
	}
}

// deliverOnce applies the fault plan (when one is installed) and makes
// one delivery attempt. A dropped request surfaces as the deadline
// firing; an injected error as the remote being unreachable; a
// duplicate delivers the request a second time with the first reply
// discarded — exactly the reordering/at-least-once hazards a real
// network produces, minus the waiting.
func (n *Network) deliverOnce(msg Message, dm *destMetrics, timeout time.Duration) (Message, error) {
	if plan := n.fault.Load(); plan != nil {
		if act := plan.decide(msg.From, msg.To, msg.Type); act.any() {
			if act.delay > 0 {
				faultDelayed.Inc()
				time.Sleep(act.delay)
			}
			if act.partition {
				faultPartitioned.Inc()
				return Message{}, fmt.Errorf("%w (%w): partition severs %s -> %s", ErrRemoteUnavailable, ErrFaultInjected, msg.From, msg.To)
			}
			if act.drop {
				faultDropped.Inc()
				return Message{}, fmt.Errorf("%w (%w): dropped %s to %s", ErrCallTimeout, ErrFaultInjected, msg.Type, msg.To)
			}
			if act.errOut {
				faultErrored.Inc()
				return Message{}, fmt.Errorf("%w (%w): errored %s to %s", ErrRemoteUnavailable, ErrFaultInjected, msg.Type, msg.To)
			}
			if act.dup {
				faultDuplicated.Inc()
				_, _ = n.deliverInner(msg, dm, timeout)
			}
		}
	}
	return n.deliverInner(msg, dm, timeout)
}

func (n *Network) deliverInner(msg Message, dm *destMetrics, timeout time.Duration) (Message, error) {
	n.mu.RLock()
	dest, ok := n.peers[msg.To]
	remote := n.remotes[msg.To]
	isDown := n.down[msg.To] || n.down[msg.From]
	n.mu.RUnlock()
	if !ok && remote != nil {
		if isDown {
			dm.errDown.Inc()
			return Message{}, fmt.Errorf("%w: %s", ErrPeerDown, msg.To)
		}
		n.messages.Add(1)
		n.bytesSent.Add(msg.Size)
		dm.calls.Inc()
		dm.bytes.Add(msg.Size)
		reply, err := remote.call(msg, timeout)
		if err != nil {
			// Transport-shaped failures (unreachable, timed out) are
			// counted by the retry/timeout counters, not as handler
			// errors.
			if !Retryable(err) {
				dm.errHandler.Inc()
			}
			return Message{}, err
		}
		n.bytesSent.Add(reply.Size)
		dm.bytes.Add(reply.Size)
		reply.From = msg.To
		reply.To = msg.From
		return reply, nil
	}
	if !ok {
		dm.errUnknown.Inc()
		return Message{}, fmt.Errorf("%w: %s", ErrUnknownPeer, msg.To)
	}
	if isDown {
		dm.errDown.Inc()
		return Message{}, fmt.Errorf("%w: %s", ErrPeerDown, msg.To)
	}
	dest.mu.RLock()
	h, ok := dest.handlers[msg.Type]
	dest.mu.RUnlock()
	if !ok {
		dm.errNoHandle.Inc()
		return Message{}, fmt.Errorf("%w: %s at %s", ErrNoHandler, msg.Type, msg.To)
	}
	n.messages.Add(1)
	n.bytesSent.Add(msg.Size)
	dm.calls.Inc()
	dm.bytes.Add(msg.Size)
	if timeout > 0 && n.InlineVerb(msg.Type) {
		timeout = 0 // inline-safe handler: skip the guard goroutine
	}
	reply, err := invoke(h, msg, timeout)
	if err != nil {
		if !Retryable(err) {
			dm.errHandler.Inc()
		}
		return Message{}, err
	}
	n.bytesSent.Add(reply.Size)
	dm.bytes.Add(reply.Size)
	reply.From = msg.To
	reply.To = msg.From
	return reply, nil
}

// CallObserver sees the outcome of every outgoing call made through one
// endpoint: destination, message type, wall-clock duration, and error
// (nil on success). Peers install one to feed their own telemetry
// registry with per-destination RPC stats — the sender-side view is the
// one that matters for health scoring, because a down peer cannot
// report its own failures.
type CallObserver func(to, msgType string, d time.Duration, err error)

// Endpoint is one peer's attachment to the network.
type Endpoint struct {
	id       string
	net      *Network
	mu       sync.RWMutex
	handlers map[string]Handler
	observer atomic.Value // CallObserver
}

// ID returns the peer ID of this endpoint.
func (e *Endpoint) ID() string { return e.id }

// Handle registers the handler for a message type, replacing any
// previous registration.
func (e *Endpoint) Handle(msgType string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[msgType] = h
}

// Call sends a request to another peer and waits for the reply. Calling
// yourself is allowed and goes through the same accounting.
func (e *Endpoint) Call(to, msgType string, payload interface{}, size int64) (Message, error) {
	return e.CallTraced(telemetry.SpanContext{}, to, msgType, payload, size)
}

// CallTraced is Call with the caller's span context attached, so spans
// opened at the destination nest under the calling query's trace.
func (e *Endpoint) CallTraced(tc telemetry.SpanContext, to, msgType string, payload interface{}, size int64) (Message, error) {
	start := time.Now()
	reply, err := e.net.deliver(Message{
		From:    e.id,
		To:      to,
		Type:    msgType,
		Payload: payload,
		Size:    size,
		Trace:   tc,
	})
	if obs, ok := e.observer.Load().(CallObserver); ok && obs != nil {
		obs(to, msgType, time.Since(start), err)
	}
	return reply, err
}

// SetCallObserver installs the endpoint's outgoing-call observer
// (nil-safe to call before any traffic; replaces a previous observer).
func (e *Endpoint) SetCallObserver(obs CallObserver) {
	e.observer.Store(obs)
}

// Network returns the network this endpoint belongs to.
func (e *Endpoint) Network() *Network { return e.net }
