package pnet

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Chaos suite for the TCP transport: every scenario here is a bug class
// the hardened path exists to kill — wedged peers hanging callers,
// handler panics killing the serving process, Close racing in-flight
// requests, dial errors indistinguishable from handler errors. All
// deterministic (seeded fault plans, explicit sync) and run under
// -race by make chaos.

// TestChaosWedgedTCPPeerTimesOut: a peer that accepts connections but
// never answers (wedged handler) must fail the caller at the policy
// deadline instead of hanging it forever.
func TestChaosWedgedTCPPeerTimesOut(t *testing.T) {
	netA := NewNetwork()
	netB := NewNetwork()
	release := make(chan struct{})
	defer close(release)
	b := netB.Join("b")
	b.Handle("wedge", func(msg Message) (Message, error) {
		<-release
		return Message{}, nil
	})
	ln, err := netB.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	netA.AddRemotePeer("b", ln.Addr())
	netA.SetCallPolicy(CallPolicy{Timeout: 50 * time.Millisecond})

	a := netA.Join("a")
	start := time.Now()
	_, err = a.Call("b", "wedge", nil, 1)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("caller hung %v on a wedged peer", elapsed)
	}
	if !Retryable(err) || !Unavailable(err) {
		t.Error("wedged-peer timeout should classify retryable and unavailable")
	}
}

// TestChaosDuplicateFetchOverTCP: an injected duplicate delivers the
// request twice end to end; an idempotent fetch must still return the
// right answer (the duplicate reply is discarded).
func TestChaosDuplicateFetchOverTCP(t *testing.T) {
	netA := NewNetwork()
	netB := NewNetwork()
	var calls atomic.Int64
	b := netB.Join("b")
	b.HandleIdempotent("fetch", func(msg Message) (Message, error) {
		calls.Add(1)
		return Message{Payload: "rows"}, nil
	})
	ln, err := netB.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	netA.AddRemotePeer("b", ln.Addr())
	netA.SetFaultPlan(NewFaultPlan(fixedSeed).Duplicate("b", "fetch", 1))

	a := netA.Join("a")
	reply, err := a.Call("b", "fetch", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Payload.(string) != "rows" {
		t.Errorf("reply = %v", reply.Payload)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("duplicated fetch ran handler %d times, want 2", got)
	}
}

// TestChaosPanicOverTCPKeepsServing: a panicking handler must fail only
// its own request — the serving process, the listener, and even the
// same connection survive for the next call.
func TestChaosPanicOverTCPKeepsServing(t *testing.T) {
	netA := NewNetwork()
	netB := NewNetwork()
	b := netB.Join("b")
	b.Handle("boom", func(msg Message) (Message, error) {
		panic("remote handler bug")
	})
	b.Handle("echo", func(msg Message) (Message, error) {
		return Message{Payload: msg.Payload}, nil
	})
	ln, err := netB.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	netA.AddRemotePeer("b", ln.Addr())

	a := netA.Join("a")
	_, err = a.Call("b", "boom", nil, 1)
	if !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("err = %v, want ErrHandlerPanic across the wire", err)
	}
	if !strings.Contains(err.Error(), "remote handler bug") {
		t.Errorf("panic value lost crossing the wire: %v", err)
	}
	if Retryable(err) {
		t.Error("remote panic classified retryable")
	}
	// The same pooled connection serves the next request.
	reply, err := a.Call("b", "echo", "still alive", 11)
	if err != nil {
		t.Fatalf("call after remote panic: %v", err)
	}
	if reply.Payload.(string) != "still alive" {
		t.Errorf("reply = %v", reply.Payload)
	}
}

// TestChaosCloseDrainsInFlight: Close racing an in-flight call must let
// the call finish (within the grace period) and must not return until
// the serve goroutine has exited — the regression this PR fixes, where
// Close abandoned live serve goroutines to race the test harness.
func TestChaosCloseDrainsInFlight(t *testing.T) {
	netA := NewNetwork()
	netB := NewNetwork()
	entered := make(chan struct{})
	finished := make(chan struct{})
	b := netB.Join("b")
	b.Handle("slow", func(msg Message) (Message, error) {
		close(entered)
		time.Sleep(100 * time.Millisecond)
		close(finished)
		return Message{Payload: "done"}, nil
	})
	ln, err := netB.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	netA.AddRemotePeer("b", ln.Addr())

	a := netA.Join("a")
	type result struct {
		reply Message
		err   error
	}
	callDone := make(chan result, 1)
	go func() {
		reply, err := a.Call("b", "slow", nil, 1)
		callDone <- result{reply, err}
	}()
	<-entered // the request is in the handler; now race Close against it
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	// Close returned: the in-flight handler must already have finished.
	select {
	case <-finished:
	default:
		t.Fatal("Close returned while the in-flight handler was still running")
	}
	r := <-callDone
	if r.err != nil {
		t.Fatalf("in-flight call failed across Close: %v", r.err)
	}
	if r.reply.Payload.(string) != "done" {
		t.Errorf("reply = %v", r.reply.Payload)
	}
	// Closing again is a no-op, and new calls now fail cleanly.
	if err := ln.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestChaosCloseForceSeversWedgedConn: a handler that outlives the
// grace period must not hold Close hostage — Close force-closes the
// connection and returns within bounded time.
func TestChaosCloseForceSeversWedgedConn(t *testing.T) {
	netA := NewNetwork()
	netB := NewNetwork()
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	b := netB.Join("b")
	b.Handle("wedge", func(msg Message) (Message, error) {
		close(entered)
		<-release
		return Message{}, nil
	})
	ln, err := netB.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.SetCloseGrace(30 * time.Millisecond)
	netA.AddRemotePeer("b", ln.Addr())

	a := netA.Join("a")
	callDone := make(chan error, 1)
	go func() {
		_, err := a.Call("b", "wedge", nil, 1)
		callDone <- err
	}()
	<-entered
	start := time.Now()
	ln.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close held hostage %v by a wedged handler", elapsed)
	}
	// The force-closed connection fails the caller instead of hanging it.
	select {
	case err := <-callDone:
		if err == nil {
			t.Error("call through a force-severed connection succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("caller still hung after Close force-severed its connection")
	}
}

// TestChaosDialErrorTyped: a peer that is down at dial time must
// surface ErrRemoteUnavailable — the typed signal engine fan-out uses
// to skip dead participants instead of aborting the query.
func TestChaosDialErrorTyped(t *testing.T) {
	netA := NewNetwork()
	// Reserve a port, then close it so nothing listens there.
	tmp := NewNetwork()
	ln, err := tmp.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	ln.Close()
	netA.AddRemotePeer("dead", addr)
	netA.SetCallPolicy(CallPolicy{Timeout: time.Second}) // no retries

	a := netA.Join("a")
	_, err = a.Call("dead", "echo", nil, 1)
	if !errors.Is(err, ErrRemoteUnavailable) {
		t.Fatalf("err = %v, want ErrRemoteUnavailable", err)
	}
	if !Retryable(err) || !Unavailable(err) {
		t.Error("dial failure should classify retryable and unavailable")
	}
}

// TestChaosConcurrentCallsThroughFaults: hammer a faulty remote link
// from many goroutines — no call may hang, and the transport state
// (pool slots, fault plan RNG) must tolerate the contention. Run with
// -race this doubles as the transport's data-race regression.
func TestChaosConcurrentCallsThroughFaults(t *testing.T) {
	netA := NewNetwork()
	netB := NewNetwork()
	b := netB.Join("b")
	b.HandleIdempotent("fetch", func(msg Message) (Message, error) {
		return Message{Payload: msg.Payload}, nil
	})
	ln, err := netB.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	netA.AddRemotePeer("b", ln.Addr())
	netA.SetCallPolicy(CallPolicy{Timeout: 2 * time.Second, MaxAttempts: 3, Backoff: time.Millisecond})
	netA.SetFaultPlan(NewFaultPlan(fixedSeed).
		Drop("b", "fetch", 0.2).
		Delay("b", "fetch", 2*time.Millisecond).
		Duplicate("b", "fetch", 0.1))

	var wg sync.WaitGroup
	var failed atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		ep := netA.Join(string(rune('p' + g)))
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := ep.Call("b", "fetch", i, 8); err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	// drop=0.2 with 3 attempts: P(fail) = 0.008 per call; across 160
	// calls a handful may fail, but most must get through.
	if f := failed.Load(); f > 40 {
		t.Fatalf("%d/160 calls failed through a 20%% drop with retries", f)
	}
}
