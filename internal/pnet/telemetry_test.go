package pnet

import (
	"errors"
	"testing"

	"bestpeer/internal/telemetry"
)

// TestPeerErrorCounters pins that failed deliveries are counted per
// destination and cause — the observability the probe-degradation path
// relies on instead of silently skipping down peers.
func TestPeerErrorCounters(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	// The telemetry registry is process-global and other tests in this
	// package also talk to peers named "a"/"b"; prime the handles and
	// measure deltas.
	for _, id := range []string{"a", "b", "nobody"} {
		n.destOf(id)
	}
	before := n.PeerErrors()
	b.Handle("ping", func(msg Message) (Message, error) {
		return Message{Payload: "pong", Size: 4}, nil
	})

	if _, err := a.Call("b", "ping", nil, 8); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, err := a.Call("nobody", "ping", nil, 8); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("unknown peer: got %v", err)
	}
	n.SetDown("b", true)
	for i := 0; i < 3; i++ {
		if _, err := a.Call("b", "ping", nil, 8); !errors.Is(err, ErrPeerDown) {
			t.Fatalf("down peer: got %v", err)
		}
	}
	if _, err := a.Call("a", "nosuch", nil, 8); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("no handler: got %v", err)
	}

	errsByPeer := n.PeerErrors()
	if got := errsByPeer["b"].PeerDown - before["b"].PeerDown; got != 3 {
		t.Errorf("b peer_down delta = %d, want 3", got)
	}
	if got := errsByPeer["nobody"].UnknownPeer - before["nobody"].UnknownPeer; got != 1 {
		t.Errorf("nobody unknown_peer delta = %d, want 1", got)
	}
	if got := errsByPeer["a"].NoHandler - before["a"].NoHandler; got != 1 {
		t.Errorf("a no_handler delta = %d, want 1", got)
	}
	if _, ok := errsByPeer["zzz"]; ok {
		t.Errorf("destination with no failures should be absent")
	}

	// The successful call fed the shared registry's counters too.
	if got := telemetry.Default.Counter("pnet_calls_total", telemetry.L("peer", "b")).Value(); got < 1 {
		t.Errorf("pnet_calls_total{peer=b} = %d, want >= 1", got)
	}
}

// TestDeliverTracePropagation pins that a traced call wraps the
// handler in an rpc span and hands the handler the rewritten context.
func TestDeliverTracePropagation(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	var seen telemetry.SpanContext
	b.Handle("work", func(msg Message) (Message, error) {
		seen = msg.Trace
		return Message{}, nil
	})

	root := telemetry.StartTrace("query")
	if _, err := a.CallTraced(root.Context(), "b", "work", nil, 1); err != nil {
		t.Fatalf("call: %v", err)
	}
	root.End()

	if !seen.Valid() {
		t.Fatal("handler saw no trace context")
	}
	if seen.TraceID != root.Context().TraceID {
		t.Errorf("handler trace ID = %x, want %x", seen.TraceID, root.Context().TraceID)
	}
	if seen.SpanID == root.Context().SpanID {
		t.Errorf("handler should see the rpc span's context, not the root's")
	}
	spans := root.Trace().Spans()
	if len(spans) != 2 || spans[1].Name != "rpc:work" {
		t.Fatalf("trace spans = %+v, want root + rpc:work", spans)
	}
	if spans[1].Parent != spans[0].ID {
		t.Errorf("rpc span not nested under root")
	}
}
