package pnet

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryOnlyIdempotentVerbs(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	var calls atomic.Int64
	handler := func(msg Message) (Message, error) {
		calls.Add(1)
		return Message{}, nil
	}
	b.HandleIdempotent("fetch", handler)
	b.Handle("mutate", handler)
	n.SetCallPolicy(CallPolicy{MaxAttempts: 4})
	// A 100% drop: the mutation fails on its single attempt (no handler
	// run), the idempotent verb burns all four attempts.
	n.SetFaultPlan(NewFaultPlan(fixedSeed).Add(FaultRule{Kind: FaultDrop, Prob: 1}))
	_, err := a.Call("b", "mutate", nil, 1)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("mutate err = %v", err)
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("mutate ran %d times through a full drop", got)
	}

	// All attempts drop: the idempotent verb retried MaxAttempts times
	// and still failed — visible in the retry counter.
	before := n.destOf("b").retries.Value()
	if _, err := a.Call("b", "fetch", nil, 1); err == nil {
		t.Fatal("fetch through a 100% drop succeeded")
	}
	if got := n.destOf("b").retries.Value() - before; got != 3 {
		t.Fatalf("retries = %d, want 3 (4 attempts)", got)
	}

	// Heal the network: the verb classification survives, calls flow.
	n.SetFaultPlan(nil)
	if _, err := a.Call("b", "fetch", nil, 1); err != nil {
		t.Fatal(err)
	}
	if !n.Idempotent("fetch") || n.Idempotent("mutate") {
		t.Error("idempotency registry wrong")
	}
}

func TestRetryRescuesTransientDrop(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	var calls atomic.Int64
	b.HandleIdempotent("fetch", func(msg Message) (Message, error) {
		calls.Add(1)
		return Message{Payload: "ok"}, nil
	})
	n.SetCallPolicy(CallPolicy{MaxAttempts: 3, Backoff: time.Microsecond})
	// Seeded drop=0.5: across many calls every one must eventually
	// succeed within 3 attempts or fail — none may hang, and the
	// overall success rate must beat the per-attempt rate.
	n.SetFaultPlan(NewFaultPlan(fixedSeed).Drop("b", "fetch", 0.5))
	succeeded := 0
	for i := 0; i < 100; i++ {
		if _, err := a.Call("b", "fetch", nil, 1); err == nil {
			succeeded++
		}
	}
	// P(all 3 attempts drop) = 0.125, so ~87% succeed; anything over
	// 2/3 proves retries are firing (one attempt alone averages 50%).
	if succeeded < 67 {
		t.Fatalf("succeeded = %d/100 with retries over drop=0.5", succeeded)
	}
}

func TestHandlerErrorNotRetried(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	var calls atomic.Int64
	sentinel := errors.New("business error")
	b.HandleIdempotent("fetch", func(msg Message) (Message, error) {
		calls.Add(1)
		return Message{}, sentinel
	})
	n.SetCallPolicy(CallPolicy{MaxAttempts: 5})
	if _, err := a.Call("b", "fetch", nil, 1); !errors.Is(err, sentinel) {
		t.Fatal("sentinel lost")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("handler error retried: %d calls", got)
	}
}

func TestInProcessDeadlineFires(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	release := make(chan struct{})
	b.Handle("wedge", func(msg Message) (Message, error) {
		<-release // wedged handler: holds the call until the test ends
		return Message{}, nil
	})
	defer close(release)
	n.SetCallPolicy(CallPolicy{Timeout: 30 * time.Millisecond})
	before := n.destOf("b").timeouts.Value()
	start := time.Now()
	_, err := a.Call("b", "wedge", nil, 1)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if got := n.destOf("b").timeouts.Value() - before; got != 1 {
		t.Errorf("timeouts counter delta = %d", got)
	}
}

func TestHandlerPanicRecovered(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	b.Handle("boom", func(msg Message) (Message, error) {
		panic("handler bug")
	})
	b.Handle("ok", func(msg Message) (Message, error) { return Message{}, nil })
	before := handlerPanics.Value()
	_, err := a.Call("b", "boom", nil, 1)
	if !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("err = %v, want ErrHandlerPanic", err)
	}
	if !strings.Contains(err.Error(), "handler bug") {
		t.Errorf("panic value lost: %v", err)
	}
	if Retryable(err) {
		t.Error("panic classified retryable")
	}
	if got := handlerPanics.Value() - before; got != 1 {
		t.Errorf("panic counter delta = %d", got)
	}
	// The process (and the endpoint) survive: the next call works.
	if _, err := a.Call("b", "ok", nil, 1); err != nil {
		t.Fatalf("call after panic: %v", err)
	}
}

func TestHandlerPanicRecoveredUnderDeadline(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	b.Handle("boom", func(msg Message) (Message, error) {
		panic("guarded bug")
	})
	n.SetCallPolicy(CallPolicy{Timeout: time.Second})
	if _, err := a.Call("b", "boom", nil, 1); !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("err = %v, want ErrHandlerPanic through the guarded path", err)
	}
}

// An inline-marked verb runs unguarded on the caller's goroutine: the
// per-attempt deadline does not fire even when the handler outlives it.
// Injected faults still apply — they are decided before delivery, not
// inside the guard.
func TestInlineVerbSkipsDeadlineGuard(t *testing.T) {
	n := NewNetwork()
	a := n.Join("a")
	b := n.Join("b")
	slow := func(msg Message) (Message, error) {
		time.Sleep(60 * time.Millisecond)
		return Message{Payload: "done"}, nil
	}
	b.Handle("slow", slow)
	b.Handle("slow.inline", slow)
	n.MarkInline("slow.inline")
	if !n.InlineVerb("slow.inline") || n.InlineVerb("slow") {
		t.Fatalf("inline registry: slow.inline=%v slow=%v", n.InlineVerb("slow.inline"), n.InlineVerb("slow"))
	}
	n.SetCallPolicy(CallPolicy{Timeout: 20 * time.Millisecond})
	if _, err := a.Call("b", "slow", nil, 1); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("guarded slow verb: err = %v, want ErrCallTimeout", err)
	}
	reply, err := a.Call("b", "slow.inline", nil, 1)
	if err != nil || reply.Payload.(string) != "done" {
		t.Fatalf("inline slow verb: %v %v, want unguarded completion", reply, err)
	}
	plan := NewFaultPlan(fixedSeed)
	plan.Drop("b", "slow.inline", 1)
	n.SetFaultPlan(plan)
	if _, err := a.Call("b", "slow.inline", nil, 1); !errors.Is(err, ErrCallTimeout) || !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("dropped inline verb: err = %v, want injected timeout", err)
	}
}

func TestZeroPolicyIsBarePath(t *testing.T) {
	n := NewNetwork()
	n.SetCallPolicy(CallPolicy{})
	a := n.Join("a")
	b := n.Join("b")
	b.Handle("q", func(msg Message) (Message, error) { return Message{Payload: 7}, nil })
	reply, err := a.Call("b", "q", nil, 1)
	if err != nil || reply.Payload.(int) != 7 {
		t.Fatalf("bare path: %v %v", reply, err)
	}
	if p := n.CallPolicy(); p.Timeout != 0 || p.MaxAttempts != 0 {
		t.Errorf("policy = %+v", p)
	}
}

func TestErrorClassifiers(t *testing.T) {
	cases := []struct {
		err         error
		retryable   bool
		unavailable bool
	}{
		{ErrPeerDown, false, true},
		{ErrUnknownPeer, false, true},
		{ErrNoHandler, false, false},
		{ErrRemoteUnavailable, true, true},
		{ErrCallTimeout, true, true},
		{ErrHandlerPanic, false, false},
		{errors.New("handler"), false, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.retryable {
			t.Errorf("Retryable(%v) = %v", c.err, got)
		}
		if got := Unavailable(c.err); got != c.unavailable {
			t.Errorf("Unavailable(%v) = %v", c.err, got)
		}
	}
}
