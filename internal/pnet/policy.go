package pnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// The hardened call path. Every delivery runs under a CallPolicy: a
// per-attempt deadline (so a wedged handler or a dead TCP peer cannot
// hang the caller forever) and, for verbs registered as idempotent, a
// bounded retry loop with exponential backoff and jitter. Retries are
// strictly opt-in per verb: a subquery fetch or a BATON lookup can run
// twice without changing state, an index mutation cannot, so only the
// former ever re-sends. Transport-shaped failures retry; handler
// errors never do — the handler ran, its answer is the answer.

// ErrRemoteUnavailable is returned when a remote peer cannot be
// reached: dial failure, broken connection, or an injected
// transport fault.
var ErrRemoteUnavailable = errors.New("pnet: remote peer unavailable")

// ErrCallTimeout is returned when a call's per-attempt deadline fires
// before the reply arrives.
var ErrCallTimeout = errors.New("pnet: call deadline exceeded")

// ErrHandlerPanic is returned when the destination handler panicked;
// the panic is recovered in the delivery path so the hosting process
// (and, over TCP, the serving connection's process) survives.
var ErrHandlerPanic = errors.New("pnet: handler panicked")

// CallPolicy bounds one delivery attempt and its retries.
type CallPolicy struct {
	// Timeout is the per-attempt deadline. On the TCP path it becomes
	// the connection's read/write deadline; in-process it bounds the
	// wait on the handler (whose goroutine keeps running — a wedged
	// handler leaks exactly one goroutine, the price of not hanging
	// the caller). Zero disables the deadline.
	Timeout time.Duration
	// MaxAttempts caps total attempts for idempotent verbs (<=1
	// disables retries). Non-idempotent verbs always get one attempt.
	MaxAttempts int
	// Backoff is the base sleep before the first retry, doubling per
	// attempt with ±50% jitter. Zero retries immediately.
	Backoff time.Duration
}

// DefaultCallPolicy is the hardened default installed by NewNetwork:
// generous enough that no healthy call ever notices it, tight enough
// that a wedged peer fails the caller in seconds, not never.
func DefaultCallPolicy() CallPolicy {
	return CallPolicy{Timeout: 5 * time.Second, MaxAttempts: 3, Backoff: 2 * time.Millisecond}
}

// maxBackoff caps the exponential growth of the retry sleep.
const maxBackoff = 250 * time.Millisecond

// SetCallPolicy installs the network's call policy. The zero policy
// (no timeout, no retries) restores the pre-hardening behavior.
func (n *Network) SetCallPolicy(p CallPolicy) {
	n.policy.Store(&p)
}

// CallPolicy returns the current policy.
func (n *Network) CallPolicy() CallPolicy {
	if p := n.policy.Load(); p != nil {
		return *p
	}
	return CallPolicy{}
}

// MarkIdempotent registers verbs safe to re-send: delivering them
// twice (a retry after a lost reply, a duplicated message) must leave
// the destination in the same state as delivering them once. Only
// marked verbs are retried under the CallPolicy.
func (n *Network) MarkIdempotent(verbs ...string) {
	for _, v := range verbs {
		n.idem.Store(v, struct{}{})
	}
}

// Idempotent reports whether the verb was marked idempotent.
func (n *Network) Idempotent(verb string) bool {
	_, ok := n.idem.Load(verb)
	return ok
}

// HandleIdempotent registers a handler and marks its verb idempotent
// on the endpoint's network in one step — the registration site is
// where the handler's side effects (or lack of them) are known.
func (e *Endpoint) HandleIdempotent(msgType string, h Handler) {
	e.net.MarkIdempotent(msgType)
	e.Handle(msgType, h)
}

// MarkInline registers verbs whose handlers are safe to run on the
// caller's goroutine without the deadline-guard goroutine: they never
// block except on calls made through this same network, and those
// nested calls carry their own deadlines. The guard exists to unwedge
// callers from handlers that can block indefinitely; a pure in-memory
// probe or a BATON routing hop cannot, and the microseconds of
// goroutine + timer per call would otherwise dominate such handlers'
// cost on the query hot path. Only in-process delivery is affected:
// over TCP the connection deadline always applies, because remote
// wedging is a property of the hosting process, not of the handler.
func (n *Network) MarkInline(verbs ...string) {
	for _, v := range verbs {
		n.inline.Store(v, struct{}{})
	}
}

// InlineVerb reports whether the verb was marked inline-safe.
func (n *Network) InlineVerb(verb string) bool {
	_, ok := n.inline.Load(verb)
	return ok
}

// Retryable reports whether the failure is transport-shaped — the
// request may never have reached the handler, so an idempotent verb
// can safely re-send. Handler errors (including recovered panics) and
// administrative failures (peer down, unknown peer, no handler) are
// not retryable: re-sending cannot change the outcome.
func Retryable(err error) bool {
	return errors.Is(err, ErrRemoteUnavailable) || errors.Is(err, ErrCallTimeout)
}

// Unavailable reports whether the failure means the destination could
// not be reached at all — down, departed, partitioned, timed out, or
// unreachable over TCP — as opposed to a handler that ran and failed.
// Degradation paths (fan-out rounds skipping a crashed participant)
// branch on this instead of string-matching.
func Unavailable(err error) bool {
	return errors.Is(err, ErrPeerDown) || errors.Is(err, ErrUnknownPeer) ||
		errors.Is(err, ErrRemoteUnavailable) || errors.Is(err, ErrCallTimeout)
}

// jitterSource is the network's backoff jitter PRNG (seeded, so test
// runs are reproducible; guarded, deliver is concurrent).
type jitterSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (j *jitterSource) float64() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rng == nil {
		j.rng = rand.New(rand.NewSource(1))
	}
	return j.rng.Float64()
}

// backoffSleep sleeps before retry attempt (1-based), doubling the
// base per attempt with ±50% jitter so synchronized retry storms
// against a recovering peer spread out.
func (n *Network) backoffSleep(pol CallPolicy, attempt int) {
	if pol.Backoff <= 0 {
		return
	}
	d := pol.Backoff << (attempt - 1)
	if d > maxBackoff {
		d = maxBackoff
	}
	d = time.Duration(float64(d) * (0.5 + n.jitter.float64()))
	time.Sleep(d)
}

// safeHandle invokes a handler, converting a panic into an error so
// one bad handler cannot crash the process (or, when the call arrived
// over TCP, kill the serving host).
func safeHandle(h Handler, msg Message) (reply Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			handlerPanics.Inc()
			err = fmt.Errorf("%w: %s at %s: %v", ErrHandlerPanic, msg.Type, msg.To, r)
		}
	}()
	return h(msg)
}

// invoke runs the handler under the per-attempt deadline. Without a
// timeout the handler runs inline (zero overhead — the pre-hardening
// fast path); with one it runs in a goroutine the caller abandons if
// the deadline fires first.
func invoke(h Handler, msg Message, timeout time.Duration) (Message, error) {
	if timeout <= 0 {
		return safeHandle(h, msg)
	}
	type outcome struct {
		reply Message
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := safeHandle(h, msg)
		ch <- outcome{r, err}
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case o := <-ch:
		return o.reply, o.err
	case <-t.C:
		return Message{}, fmt.Errorf("%w: %s to %s after %v", ErrCallTimeout, msg.Type, msg.To, timeout)
	}
}
