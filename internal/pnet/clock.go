package pnet

import "sync/atomic"

// LogicalClock is the network's shared logical timestamp source, used
// by the query semantics of Definition 2: a query is stamped with the
// clock value at submission, and every data owner compares its database
// snapshot's timestamp with the query's. Loader refreshes tick the
// clock; queries read it.
type LogicalClock struct {
	v atomic.Uint64
}

// Now returns the current logical time.
func (c *LogicalClock) Now() uint64 { return c.v.Load() }

// Tick advances the clock and returns the new time.
func (c *LogicalClock) Tick() uint64 { return c.v.Add(1) }
