package loader

import (
	"fmt"
	"testing"

	"bestpeer/internal/erp"
	"bestpeer/internal/schemamap"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// testSetup builds a production system with a local schema that differs
// from the global one in table name, column names, column order, and
// vocabulary — the full schema-mapping surface.
func testSetup(t *testing.T) (*erp.System, *schemamap.Mapping, *sqldb.DB, func(string) *sqldb.Schema) {
	t.Helper()
	sys := erp.NewSystem("SAP")
	localSchema := &sqldb.Schema{
		Table: "vbak_orders",
		Columns: []sqldb.Column{
			{Name: "status_code", Kind: sqlval.KindString},
			{Name: "order_id", Kind: sqlval.KindInt},
			{Name: "net_value", Kind: sqlval.KindFloat},
		},
	}
	if err := sys.CreateTable(localSchema); err != nil {
		t.Fatal(err)
	}
	globalSchema := &sqldb.Schema{
		Table: "orders",
		Columns: []sqldb.Column{
			{Name: "o_orderkey", Kind: sqlval.KindInt},
			{Name: "o_totalprice", Kind: sqlval.KindFloat},
			{Name: "o_orderstatus", Kind: sqlval.KindString},
			{Name: "o_comment", Kind: sqlval.KindString}, // unmapped -> NULL
		},
	}
	global := func(name string) *sqldb.Schema {
		if name == "orders" {
			return globalSchema
		}
		return nil
	}
	mapping := &schemamap.Mapping{
		System: "SAP",
		Tables: []schemamap.TableMapping{{
			LocalTable:  "vbak_orders",
			GlobalTable: "orders",
			Columns: []schemamap.ColumnMapping{
				{Local: "order_id", Global: "o_orderkey"},
				{Local: "net_value", Global: "o_totalprice"},
				{Local: "status_code", Global: "o_orderstatus",
					Values: map[string]string{"03": "SHIPPED", "01": "OPEN"}},
			},
		}},
	}
	return sys, mapping, sqldb.NewDB(), global
}

func insertOrder(t *testing.T, sys *erp.System, status string, id int, value float64) {
	t.Helper()
	if err := sys.Insert("vbak_orders", sqlval.Row{sqlval.Str(status), sqlval.Int(int64(id)), sqlval.Float(value)}); err != nil {
		t.Fatal(err)
	}
}

func TestInitialLoadTransforms(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "03", 1, 100.5)
	insertOrder(t, sys, "01", 2, 200.0)

	l, err := New(sys, mapping, dest, global)
	if err != nil {
		t.Fatal(err)
	}
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 2 || d.Deleted != 0 || d.TablesLoaded != 1 {
		t.Fatalf("delta = %+v", d)
	}
	res, err := dest.Query(`SELECT o_orderkey, o_totalprice, o_orderstatus, o_comment FROM orders ORDER BY o_orderkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].AsInt() != 1 || r[1].AsFloat() != 100.5 {
		t.Errorf("row = %v", r)
	}
	if r[2].AsString() != "SHIPPED" {
		t.Errorf("value mapping not applied: %v", r[2])
	}
	if !r[3].IsNull() {
		t.Errorf("unmapped column = %v, want NULL", r[3])
	}
}

func TestRefreshDetectsInsert(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "01", 1, 10)
	l, _ := New(sys, mapping, dest, global)
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	insertOrder(t, sys, "01", 2, 20)
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 1 || d.Deleted != 0 || d.Unchanged != 1 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestRefreshDetectsDelete(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "01", 1, 10)
	insertOrder(t, sys, "01", 2, 20)
	l, _ := New(sys, mapping, dest, global)
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(`DELETE FROM vbak_orders WHERE order_id = 1`); err != nil {
		t.Fatal(err)
	}
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Deleted != 1 || d.Inserted != 0 || d.Unchanged != 1 {
		t.Fatalf("delta = %+v", d)
	}
	res, _ := dest.Query(`SELECT COUNT(*) FROM orders`)
	if res.Rows[0][0].AsInt() != 1 {
		t.Errorf("dest rows = %v", res.Rows[0][0])
	}
}

func TestRefreshDetectsUpdateAsDeletePlusInsert(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "01", 1, 10)
	l, _ := New(sys, mapping, dest, global)
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(`UPDATE vbak_orders SET net_value = 99.0 WHERE order_id = 1`); err != nil {
		t.Fatal(err)
	}
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Deleted != 1 || d.Inserted != 1 || d.Unchanged != 0 {
		t.Fatalf("delta = %+v", d)
	}
	res, _ := dest.Query(`SELECT o_totalprice FROM orders`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsFloat() != 99.0 {
		t.Errorf("dest after update = %+v", res.Rows)
	}
}

func TestRefreshNoChangesIsNoop(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	for i := 0; i < 50; i++ {
		insertOrder(t, sys, "01", i, float64(i))
	}
	l, _ := New(sys, mapping, dest, global)
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 0 || d.Deleted != 0 || d.Unchanged != 50 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestDuplicateTuplesHandled(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "01", 7, 1.0)
	insertOrder(t, sys, "01", 7, 1.0) // identical tuple
	l, _ := New(sys, mapping, dest, global)
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 2 {
		t.Fatalf("delta = %+v", d)
	}
	if _, err := sys.Exec(`DELETE FROM vbak_orders WHERE order_id = 7`); err != nil {
		t.Fatal(err)
	}
	// Re-insert just one copy: net effect is one delete.
	insertOrder(t, sys, "01", 7, 1.0)
	d, err = l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Deleted != 1 || d.Inserted != 0 || d.Unchanged != 1 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestChurnConvergence(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	l, _ := New(sys, mapping, dest, global)
	live := map[int]float64{}
	next := 0
	for round := 0; round < 10; round++ {
		for k := 0; k < 5; k++ {
			insertOrder(t, sys, "01", next, float64(next))
			live[next] = float64(next)
			next++
		}
		if round%2 == 1 {
			victim := next - 3
			if _, err := sys.Exec(fmt.Sprintf(`DELETE FROM vbak_orders WHERE order_id = %d`, victim)); err != nil {
				t.Fatal(err)
			}
			delete(live, victim)
		}
		if _, err := l.Run(); err != nil {
			t.Fatal(err)
		}
		res, err := dest.Query(`SELECT COUNT(*) FROM orders`)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].AsInt(); got != int64(len(live)) {
			t.Fatalf("round %d: dest has %d rows, want %d", round, got, len(live))
		}
	}
}

func TestNewRejectsBadMapping(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	mapping.Tables[0].Columns = append(mapping.Tables[0].Columns,
		schemamap.ColumnMapping{Local: "no_such_col", Global: "o_comment"})
	if _, err := New(sys, mapping, dest, global); err == nil {
		t.Error("bad mapping accepted")
	}
}
