package loader

import (
	"fmt"
	"testing"

	"bestpeer/internal/erp"
	"bestpeer/internal/schemamap"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// testSetup builds a production system with a local schema that differs
// from the global one in table name, column names, column order, and
// vocabulary — the full schema-mapping surface.
func testSetup(t *testing.T) (*erp.System, *schemamap.Mapping, *sqldb.DB, func(string) *sqldb.Schema) {
	t.Helper()
	sys := erp.NewSystem("SAP")
	localSchema := &sqldb.Schema{
		Table: "vbak_orders",
		Columns: []sqldb.Column{
			{Name: "status_code", Kind: sqlval.KindString},
			{Name: "order_id", Kind: sqlval.KindInt},
			{Name: "net_value", Kind: sqlval.KindFloat},
		},
	}
	if err := sys.CreateTable(localSchema); err != nil {
		t.Fatal(err)
	}
	globalSchema := &sqldb.Schema{
		Table: "orders",
		Columns: []sqldb.Column{
			{Name: "o_orderkey", Kind: sqlval.KindInt},
			{Name: "o_totalprice", Kind: sqlval.KindFloat},
			{Name: "o_orderstatus", Kind: sqlval.KindString},
			{Name: "o_comment", Kind: sqlval.KindString}, // unmapped -> NULL
		},
	}
	global := func(name string) *sqldb.Schema {
		if name == "orders" {
			return globalSchema
		}
		return nil
	}
	mapping := &schemamap.Mapping{
		System: "SAP",
		Tables: []schemamap.TableMapping{{
			LocalTable:  "vbak_orders",
			GlobalTable: "orders",
			Columns: []schemamap.ColumnMapping{
				{Local: "order_id", Global: "o_orderkey"},
				{Local: "net_value", Global: "o_totalprice"},
				{Local: "status_code", Global: "o_orderstatus",
					Values: map[string]string{"03": "SHIPPED", "01": "OPEN"}},
			},
		}},
	}
	return sys, mapping, sqldb.NewDB(), global
}

func insertOrder(t *testing.T, sys *erp.System, status string, id int, value float64) {
	t.Helper()
	if err := sys.Insert("vbak_orders", sqlval.Row{sqlval.Str(status), sqlval.Int(int64(id)), sqlval.Float(value)}); err != nil {
		t.Fatal(err)
	}
}

func TestInitialLoadTransforms(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "03", 1, 100.5)
	insertOrder(t, sys, "01", 2, 200.0)

	l, err := New(sys, mapping, dest, global)
	if err != nil {
		t.Fatal(err)
	}
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 2 || d.Deleted != 0 || d.TablesLoaded != 1 {
		t.Fatalf("delta = %+v", d)
	}
	res, err := dest.Query(`SELECT o_orderkey, o_totalprice, o_orderstatus, o_comment FROM orders ORDER BY o_orderkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].AsInt() != 1 || r[1].AsFloat() != 100.5 {
		t.Errorf("row = %v", r)
	}
	if r[2].AsString() != "SHIPPED" {
		t.Errorf("value mapping not applied: %v", r[2])
	}
	if !r[3].IsNull() {
		t.Errorf("unmapped column = %v, want NULL", r[3])
	}
}

func TestRefreshDetectsInsert(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "01", 1, 10)
	l, _ := New(sys, mapping, dest, global)
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	insertOrder(t, sys, "01", 2, 20)
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 1 || d.Deleted != 0 || d.Unchanged != 1 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestRefreshDetectsDelete(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "01", 1, 10)
	insertOrder(t, sys, "01", 2, 20)
	l, _ := New(sys, mapping, dest, global)
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(`DELETE FROM vbak_orders WHERE order_id = 1`); err != nil {
		t.Fatal(err)
	}
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Deleted != 1 || d.Inserted != 0 || d.Unchanged != 1 {
		t.Fatalf("delta = %+v", d)
	}
	res, _ := dest.Query(`SELECT COUNT(*) FROM orders`)
	if res.Rows[0][0].AsInt() != 1 {
		t.Errorf("dest rows = %v", res.Rows[0][0])
	}
}

func TestRefreshDetectsUpdateAsDeletePlusInsert(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "01", 1, 10)
	l, _ := New(sys, mapping, dest, global)
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(`UPDATE vbak_orders SET net_value = 99.0 WHERE order_id = 1`); err != nil {
		t.Fatal(err)
	}
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Deleted != 1 || d.Inserted != 1 || d.Unchanged != 0 {
		t.Fatalf("delta = %+v", d)
	}
	res, _ := dest.Query(`SELECT o_totalprice FROM orders`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsFloat() != 99.0 {
		t.Errorf("dest after update = %+v", res.Rows)
	}
}

func TestRefreshNoChangesIsNoop(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	for i := 0; i < 50; i++ {
		insertOrder(t, sys, "01", i, float64(i))
	}
	l, _ := New(sys, mapping, dest, global)
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 0 || d.Deleted != 0 || d.Unchanged != 50 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestDuplicateTuplesHandled(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "01", 7, 1.0)
	insertOrder(t, sys, "01", 7, 1.0) // identical tuple
	l, _ := New(sys, mapping, dest, global)
	// Snapshot differentials report the *net* effect (delete both +
	// re-insert one diffs to a single delete); the CDC twin below
	// checks the literal-event accounting.
	l.SetMode(ModeSnapshot)
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 2 {
		t.Fatalf("delta = %+v", d)
	}
	if _, err := sys.Exec(`DELETE FROM vbak_orders WHERE order_id = 7`); err != nil {
		t.Fatal(err)
	}
	// Re-insert just one copy: net effect is one delete.
	insertOrder(t, sys, "01", 7, 1.0)
	d, err = l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Deleted != 1 || d.Inserted != 0 || d.Unchanged != 1 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestChurnConvergence(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	l, _ := New(sys, mapping, dest, global)
	live := map[int]float64{}
	next := 0
	for round := 0; round < 10; round++ {
		for k := 0; k < 5; k++ {
			insertOrder(t, sys, "01", next, float64(next))
			live[next] = float64(next)
			next++
		}
		if round%2 == 1 {
			victim := next - 3
			if _, err := sys.Exec(fmt.Sprintf(`DELETE FROM vbak_orders WHERE order_id = %d`, victim)); err != nil {
				t.Fatal(err)
			}
			delete(live, victim)
		}
		if _, err := l.Run(); err != nil {
			t.Fatal(err)
		}
		res, err := dest.Query(`SELECT COUNT(*) FROM orders`)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].AsInt(); got != int64(len(live)) {
			t.Fatalf("round %d: dest has %d rows, want %d", round, got, len(live))
		}
	}
}

func TestNewRejectsBadMapping(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	mapping.Tables[0].Columns = append(mapping.Tables[0].Columns,
		schemamap.ColumnMapping{Local: "no_such_col", Global: "o_comment"})
	if _, err := New(sys, mapping, dest, global); err == nil {
		t.Error("bad mapping accepted")
	}
}

func TestDuplicateTuplesHandledCDC(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "01", 7, 1.0)
	insertOrder(t, sys, "01", 7, 1.0) // identical tuple
	l, _ := New(sys, mapping, dest, global)
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(`DELETE FROM vbak_orders WHERE order_id = 7`); err != nil {
		t.Fatal(err)
	}
	insertOrder(t, sys, "01", 7, 1.0)
	// CDC reports the events as they happened: two deletes, one insert.
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Events != 3 || d.Deleted != 2 || d.Inserted != 1 {
		t.Fatalf("delta = %+v", d)
	}
	res, _ := dest.Query(`SELECT COUNT(*) FROM orders`)
	if res.Rows[0][0].AsInt() != 1 {
		t.Errorf("dest rows = %v", res.Rows[0][0])
	}
}

// uniqueSetup is testSetup with a primary key on the global table, so a
// mid-merge duplicate-key insert can be injected to fail the pass.
func uniqueSetup(t *testing.T) (*erp.System, *schemamap.Mapping, *sqldb.DB, func(string) *sqldb.Schema) {
	t.Helper()
	sys, mapping, dest, _ := testSetup(t)
	globalSchema := &sqldb.Schema{
		Table: "orders",
		Columns: []sqldb.Column{
			{Name: "o_orderkey", Kind: sqlval.KindInt},
			{Name: "o_totalprice", Kind: sqlval.KindFloat},
			{Name: "o_orderstatus", Kind: sqlval.KindString},
			{Name: "o_comment", Kind: sqlval.KindString},
		},
		PrimaryKey: "o_orderkey",
	}
	global := func(name string) *sqldb.Schema {
		if name == "orders" {
			return globalSchema
		}
		return nil
	}
	return sys, mapping, dest, global
}

func destOrderKeys(t *testing.T, dest *sqldb.DB) []int64 {
	t.Helper()
	res, err := dest.Query(`SELECT o_orderkey FROM orders ORDER BY o_orderkey`)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]int64, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = r[0].AsInt()
	}
	return keys
}

// TestMidMergeFailureRollsBack is the partial-apply regression test:
// a pass that dies mid-merge (duplicate primary key after a delete
// already applied) must roll back completely, and the retried pass
// must succeed without duplicating inserts or hitting stale snapshot
// row IDs — in both snapshot and CDC mode.
func TestMidMergeFailureRollsBack(t *testing.T) {
	for _, mode := range []Mode{ModeSnapshot, ModeAuto} {
		name := "snapshot"
		if mode == ModeAuto {
			name = "cdc"
		}
		t.Run(name, func(t *testing.T) {
			sys, mapping, dest, global := uniqueSetup(t)
			insertOrder(t, sys, "01", 1, 10)
			insertOrder(t, sys, "01", 2, 20)
			l, err := New(sys, mapping, dest, global)
			if err != nil {
				t.Fatal(err)
			}
			l.SetMode(mode)
			if _, err := l.Run(); err != nil {
				t.Fatal(err)
			}

			// Business activity whose merge fails half-way: row 1 is
			// deleted (applies cleanly), then two rows share o_orderkey=3
			// with different values, so the second insert violates the
			// primary key after the delete and first insert went in.
			if _, err := sys.Exec(`DELETE FROM vbak_orders WHERE order_id = 1`); err != nil {
				t.Fatal(err)
			}
			insertOrder(t, sys, "01", 3, 30)
			insertOrder(t, sys, "01", 3, 31)

			d, err := l.Run()
			if err == nil {
				t.Fatalf("conflicting pass succeeded: %+v", d)
			}
			if got := destOrderKeys(t, dest); len(got) != 2 || got[0] != 1 || got[1] != 2 {
				t.Fatalf("partial apply leaked: dest keys = %v", got)
			}

			// Fix production data and retry: the pass must apply exactly
			// the surviving changes, with no duplicates and no stale row
			// IDs left over from the aborted merge.
			if _, err := sys.Exec(`DELETE FROM vbak_orders WHERE net_value = 31.0`); err != nil {
				t.Fatal(err)
			}
			d, err = l.Run()
			if err != nil {
				t.Fatalf("retry after rollback: %v (delta %+v)", err, d)
			}
			if got := destOrderKeys(t, dest); len(got) != 2 || got[0] != 2 || got[1] != 3 {
				t.Fatalf("retry converged wrong: dest keys = %v", got)
			}
		})
	}
}

// TestCDCModeUsesFeed checks that a refresh consumes change events
// instead of re-diffing, and that per-table outcomes are honest: a
// no-change pass reports TablesUnchanged, not TablesLoaded.
func TestCDCModeUsesFeed(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "01", 1, 10)
	l, _ := New(sys, mapping, dest, global)
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Outcomes) != 1 || d.Outcomes[0].Mode != "initial" || d.TablesLoaded != 1 {
		t.Fatalf("initial delta = %+v", d)
	}

	// No-op refresh: zero events, table counted as unchanged.
	d, err = l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Events != 0 || d.TablesLoaded != 0 || d.TablesUnchanged != 1 || d.Unchanged != 1 {
		t.Fatalf("noop delta = %+v", d)
	}
	if d.Outcomes[0].Mode != "cdc" {
		t.Fatalf("noop outcome = %+v", d.Outcomes[0])
	}

	// Mixed activity rides the feed: insert + update + delete.
	insertOrder(t, sys, "01", 2, 20)
	if _, err := sys.Exec(`UPDATE vbak_orders SET net_value = 11.0 WHERE order_id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(`DELETE FROM vbak_orders WHERE order_id = 2`); err != nil {
		t.Fatal(err)
	}
	d, err = l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Events != 3 || d.Inserted != 2 || d.Deleted != 2 {
		t.Fatalf("cdc delta = %+v", d)
	}
	res, _ := dest.Query(`SELECT o_orderkey, o_totalprice FROM orders`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 1 || res.Rows[0][1].AsFloat() != 11.0 {
		t.Fatalf("dest after cdc = %+v", res.Rows)
	}
}

// TestCDCFeedGapFallsBackToSnapshot truncates the feed past the
// loader's position: the next pass must detect the gap and converge via
// a full snapshot diff.
func TestCDCFeedGapFallsBackToSnapshot(t *testing.T) {
	sys, mapping, dest, global := testSetup(t)
	insertOrder(t, sys, "01", 1, 10)
	l, _ := New(sys, mapping, dest, global)
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	insertOrder(t, sys, "01", 2, 20)
	sys.AckFeed(sys.FeedSeq()) // retention moved past the loader's mark
	d, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Events != 0 || d.Inserted != 1 || d.Unchanged != 1 {
		t.Fatalf("fallback delta = %+v", d)
	}
	if d.Outcomes[0].Mode != "snapshot" {
		t.Fatalf("fallback outcome = %+v", d.Outcomes[0])
	}
	// The snapshot pass re-anchors the feed position; CDC resumes.
	insertOrder(t, sys, "01", 3, 30)
	d, err = l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Events != 1 || d.Inserted != 1 || d.Outcomes[0].Mode != "cdc" {
		t.Fatalf("resumed delta = %+v", d)
	}
}

// TestCDCEquivalentToSnapshot churns one system and loads it through
// two loaders — one forced to snapshots, one on the feed — asserting
// identical query results every round.
func TestCDCEquivalentToSnapshot(t *testing.T) {
	sys, mapping, destSnap, global := testSetup(t)
	destCDC := sqldb.NewDB()
	ls, err := New(sys, mapping, destSnap, global)
	if err != nil {
		t.Fatal(err)
	}
	ls.SetMode(ModeSnapshot)
	lc, err := New(sys, mapping, destCDC, global)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for round := 0; round < 8; round++ {
		for k := 0; k < 4; k++ {
			insertOrder(t, sys, "01", next, float64(next))
			next++
		}
		if round > 0 {
			if _, err := sys.Exec(fmt.Sprintf(`DELETE FROM vbak_orders WHERE order_id = %d`, round*3)); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Exec(fmt.Sprintf(`UPDATE vbak_orders SET net_value = 999.0 WHERE order_id = %d`, round*2)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ls.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := lc.Run(); err != nil {
			t.Fatal(err)
		}
		q := `SELECT o_orderkey, o_totalprice, o_orderstatus FROM orders ORDER BY o_orderkey, o_totalprice`
		a, err := destSnap.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := destCDC.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
			t.Fatalf("round %d: snapshot %v vs cdc %v", round, a.Rows, b.Rows)
		}
	}
}
