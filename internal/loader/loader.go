// Package loader implements the BestPeer++ data loader (paper §4.2):
// the offline data flow that extracts data from a participant's
// production system, transforms it to the shared global schema through
// the schema mapping, and keeps the normal peer's local database
// consistent with the production data as it changes.
//
// Two refresh strategies are implemented:
//
// Snapshot differentials, following the paper (which follows Labio &
// Garcia-Molina): every extracted tuple is fingerprinted with 32-bit
// Rabin fingerprinting, both snapshots are sorted by fingerprint, and a
// sort-merge pass over the two sorted snapshots reveals inserted and
// deleted tuples (an update appears as a delete plus an insert). This
// is the only option for the initial load and the resync path when the
// change feed has a retention gap.
//
// CDC deltas: once every mapped table has been loaded, later passes
// tail the production system's ordered change feed (ChangesSince) and
// apply just the recorded events — no re-extraction, no re-sorting, so
// cost scales with churn instead of table size.
//
// Either way a pass applies its changes through dest.Atomic, so a
// mid-merge failure rolls the peer database back to the pre-pass state
// and leaves the stored snapshot untouched: a retried Run never
// double-applies a delta or trips over stale snapshot row IDs.
package loader

import (
	"fmt"
	"sort"
	"strings"

	"bestpeer/internal/erp"
	"bestpeer/internal/fingerprint"
	"bestpeer/internal/schemamap"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
)

// Mode selects the refresh strategy.
type Mode int

const (
	// ModeAuto (the default) uses CDC deltas whenever every mapped
	// table has been loaded and the feed has no retention gap, falling
	// back to snapshot differentials otherwise.
	ModeAuto Mode = iota
	// ModeSnapshot forces full snapshot-differential passes.
	ModeSnapshot
)

// TableOutcome reports what one pass did to one global table.
type TableOutcome struct {
	Table string // global table name
	// Mode is "initial" (first load), "snapshot" (differential
	// refresh), or "cdc" (change-feed refresh).
	Mode      string
	Inserted  int
	Deleted   int
	Unchanged int
	// Err is set when the table's merge failed; its changes were rolled
	// back and it is counted in neither TablesLoaded nor
	// TablesUnchanged.
	Err string
}

// Delta reports what one load pass changed.
type Delta struct {
	// TablesLoaded counts tables whose pass completed AND applied at
	// least one change (initial loads always count). Tables that
	// completed with nothing to do are in TablesUnchanged; tables whose
	// merge failed are in neither — see Outcomes.
	TablesLoaded    int
	TablesUnchanged int
	Inserted        int
	Deleted         int
	// Unchanged counts tuples carried over untouched from the previous
	// pass.
	Unchanged int
	// Events is the number of CDC change events consumed (0 for
	// snapshot passes).
	Events int
	// Outcomes holds the per-table accounting, one entry per mapped
	// table attempted this pass, in mapping order.
	Outcomes []TableOutcome
}

// snapRec is one tuple of a stored snapshot: its fingerprint, canonical
// encoding, transformed global row, and the row ID it occupies in the
// peer database.
type snapRec struct {
	fp    uint32
	enc   string
	row   sqlval.Row
	rowID int
}

var (
	loaderSnapshotPasses = telemetry.Default.Counter("loader_passes_total", telemetry.L("mode", "snapshot"))
	loaderCDCPasses      = telemetry.Default.Counter("loader_passes_total", telemetry.L("mode", "cdc"))
	loaderCDCEventsIns   = telemetry.Default.Counter("loader_cdc_events_total", telemetry.L("kind", "insert"))
	loaderCDCEventsDel   = telemetry.Default.Counter("loader_cdc_events_total", telemetry.L("kind", "delete"))
	loaderCDCEventsUpd   = telemetry.Default.Counter("loader_cdc_events_total", telemetry.L("kind", "update"))
	loaderCDCFallbacks   = telemetry.Default.Counter("loader_cdc_fallbacks_total")
	loaderRollbacks      = telemetry.Default.Counter("loader_merge_rollbacks_total")
)

func init() {
	d := telemetry.Default
	d.SetHelp("loader_passes_total", "Completed load passes by refresh mode.")
	d.SetHelp("loader_cdc_events_total", "CDC change events applied, by kind.")
	d.SetHelp("loader_cdc_fallbacks_total", "CDC passes abandoned for a snapshot resync (feed gap or apply failure).")
	d.SetHelp("loader_merge_rollbacks_total", "Merge passes rolled back after a mid-pass failure.")
}

// Loader synchronizes one production system into one peer database.
type Loader struct {
	sys     *erp.System
	mapping *schemamap.Mapping
	dest    *sqldb.DB
	global  func(table string) *sqldb.Schema
	// snapshots holds, per global table, the previous snapshot sorted by
	// (fingerprint, encoding). The paper stores snapshots "in a separate
	// database" on the peer instance; here they live with the loader.
	snapshots map[string][]snapRec
	mode      Mode
	// primed is set once a full pass has loaded every mapped table;
	// only then can CDC deltas substitute for snapshot differentials.
	primed bool
	// lastSeq is the production feed position the snapshots correspond
	// to. Run assumes the production system is quiescent while a pass
	// extracts (single writer at a time, per the paper's offline data
	// flow); concurrent mutations are picked up by the next pass.
	// The loader never acks (truncates) the feed — several loaders may
	// tail one system — relying instead on the feed's own bounded
	// retention; falling off the retained tail just costs one snapshot
	// resync.
	lastSeq uint64
}

// New creates a loader. global resolves global-schema tables (the
// corporate network's shared schema, distributed by the bootstrap peer).
func New(sys *erp.System, mapping *schemamap.Mapping, dest *sqldb.DB, global func(string) *sqldb.Schema) (*Loader, error) {
	if err := mapping.Validate(sys.Schema, global); err != nil {
		return nil, err
	}
	return &Loader{
		sys:       sys,
		mapping:   mapping,
		dest:      dest,
		global:    global,
		snapshots: make(map[string][]snapRec),
	}, nil
}

// SetMode selects the refresh strategy for subsequent Run calls.
func (l *Loader) SetMode(m Mode) { l.mode = m }

// FeedPosition returns the production change-feed sequence the loaded
// state corresponds to.
func (l *Loader) FeedPosition() uint64 { return l.lastSeq }

// Run performs one load pass over every mapped table: the first call is
// the initial load; later calls consume the production change feed when
// possible and otherwise extract fresh snapshots, diff them against the
// stored ones, and apply only the changes.
func (l *Loader) Run() (Delta, error) {
	if l.mode != ModeSnapshot && l.primed {
		if d, ok := l.runCDC(); ok {
			loaderCDCPasses.Inc()
			return d, nil
		}
		loaderCDCFallbacks.Inc()
	}

	// Snapshot pass. The feed position is captured up front: anything
	// recorded before this point is reflected in the snapshots below
	// (quiescent-extraction assumption), so CDC can resume from here.
	feedSeq := l.sys.FeedSeq()
	var total Delta
	for i := range l.mapping.Tables {
		tm := &l.mapping.Tables[i]
		out, err := l.runTable(tm)
		total.Outcomes = append(total.Outcomes, out)
		if err != nil {
			return total, fmt.Errorf("loader: table %s: %w", tm.LocalTable, err)
		}
		total.Inserted += out.Inserted
		total.Deleted += out.Deleted
		total.Unchanged += out.Unchanged
		if out.Inserted+out.Deleted > 0 || out.Mode == "initial" {
			total.TablesLoaded++
		} else {
			total.TablesUnchanged++
		}
	}
	l.primed = true
	l.lastSeq = feedSeq
	loaderSnapshotPasses.Inc()
	return total, nil
}

func (l *Loader) runTable(tm *schemamap.TableMapping) (TableOutcome, error) {
	out := TableOutcome{Table: tm.GlobalTable, Mode: "snapshot"}
	old, had := l.snapshots[tm.GlobalTable]
	if !had {
		out.Mode = "initial"
	}
	localSchema := l.sys.Schema(tm.LocalTable)
	globalSchema := l.global(tm.GlobalTable)
	if localSchema == nil || globalSchema == nil {
		err := fmt.Errorf("missing schema for %s -> %s", tm.LocalTable, tm.GlobalTable)
		out.Err = err.Error()
		return out, err
	}
	// DDL cannot run inside Atomic (it takes the database lock), so the
	// destination table is created before the merge begins.
	destTable := l.dest.Table(tm.GlobalTable)
	if destTable == nil {
		var err error
		destTable, err = l.dest.CreateTable(globalSchema)
		if err != nil {
			out.Err = err.Error()
			return out, err
		}
	}

	rows, err := l.sys.Extract(tm.LocalTable)
	if err != nil {
		out.Err = err.Error()
		return out, err
	}
	fresh := make([]snapRec, 0, len(rows))
	for _, row := range rows {
		g, err := tm.Transform(localSchema, globalSchema, row)
		if err != nil {
			out.Err = err.Error()
			return out, err
		}
		enc := g.String()
		fresh = append(fresh, snapRec{fp: fingerprint.String(enc), enc: enc, row: g, rowID: -1})
	}
	sortSnap(fresh)

	// Sort-merge the two fingerprint-sorted snapshots, applying the
	// deltas as one atomic batch: a mid-merge failure rolls every
	// applied change back and leaves the stored snapshot untouched, so
	// a retried pass starts clean instead of double-applying.
	err = l.dest.Atomic(func() error {
		i, j := 0, 0
		for i < len(old) || j < len(fresh) {
			switch {
			case j >= len(fresh) || (i < len(old) && lessRec(old[i], fresh[j])):
				// Present before, gone now: deleted tuple.
				if !destTable.Delete(old[i].rowID) {
					return fmt.Errorf("stale snapshot row id %d", old[i].rowID)
				}
				out.Deleted++
				i++
			case i >= len(old) || lessRec(fresh[j], old[i]):
				// New tuple: insert.
				id, err := destTable.Insert(fresh[j].row)
				if err != nil {
					return err
				}
				fresh[j].rowID = id
				out.Inserted++
				j++
			default:
				// Equal fingerprint and encoding: unchanged; carry the row ID.
				fresh[j].rowID = old[i].rowID
				out.Unchanged++
				i++
				j++
			}
		}
		return nil
	})
	if err != nil {
		loaderRollbacks.Inc()
		out.Inserted, out.Deleted, out.Unchanged = 0, 0, 0
		out.Err = err.Error()
		return out, err
	}
	l.snapshots[tm.GlobalTable] = fresh
	return out, nil
}

// runCDC applies the production change feed since the last pass. ok is
// false when the feed cannot be used (retention gap, unmappable event,
// or a mid-apply failure — everything rolled back) and the caller must
// fall back to a snapshot pass.
func (l *Loader) runCDC() (Delta, bool) {
	recs, ok := l.sys.ChangesSince(l.lastSeq)
	if !ok {
		return Delta{}, false
	}

	// Per-mapping plumbing is resolved before the atomic batch: DB
	// accessors take the database lock the batch will be holding.
	type route struct {
		tm           *schemamap.TableMapping
		local, globl *sqldb.Schema
		dest         *sqldb.Table
	}
	byLocal := make(map[string]*route, len(l.mapping.Tables))
	for i := range l.mapping.Tables {
		tm := &l.mapping.Tables[i]
		rt := &route{
			tm:    tm,
			local: l.sys.Schema(tm.LocalTable),
			globl: l.global(tm.GlobalTable),
			dest:  l.dest.Table(tm.GlobalTable),
		}
		if rt.local == nil || rt.globl == nil || rt.dest == nil {
			return Delta{}, false // resync repairs whatever is missing
		}
		byLocal[strings.ToLower(tm.LocalTable)] = rt
	}

	// Snapshot changes are staged per table as removal marks against the
	// base snapshot plus an unsorted addition list, merged into a fresh
	// sorted snapshot only when every event applied — mirroring the
	// atomic batch on the destination tables, and costing O(events·log n
	// + n) instead of an O(n) slice shift per event.
	type stage struct {
		removed map[int]bool // indices into the base snapshot
		added   []snapRec
		counts  TableOutcome
	}
	stages := make(map[string]*stage)
	stageOf := func(global string) *stage {
		if s, ok := stages[global]; ok {
			return s
		}
		s := &stage{removed: make(map[int]bool), counts: TableOutcome{Table: global, Mode: "cdc"}}
		stages[global] = s
		return s
	}
	// removeTuple drops one live occurrence of enc from the stage,
	// returning the destination row ID it occupied.
	removeTuple := func(global string, enc string) (int, bool) {
		st := stageOf(global)
		base := l.snapshots[global]
		probe := snapRec{fp: fingerprint.String(enc), enc: enc}
		at := sort.Search(len(base), func(i int) bool { return !lessRec(base[i], probe) })
		for ; at < len(base) && base[at].fp == probe.fp && base[at].enc == enc; at++ {
			if !st.removed[at] {
				st.removed[at] = true
				return base[at].rowID, true
			}
		}
		for i := range st.added {
			if st.added[i].enc == enc {
				rowID := st.added[i].rowID
				st.added[i] = st.added[len(st.added)-1]
				st.added = st.added[:len(st.added)-1]
				return rowID, true
			}
		}
		return 0, false
	}

	var ins, del, upd int
	err := l.dest.Atomic(func() error {
		for _, rec := range recs {
			rt := byLocal[rec.Table]
			if rt == nil {
				continue // local table outside the mapping
			}
			tm, localSchema, globalSchema, destTable := rt.tm, rt.local, rt.globl, rt.dest
			st := stageOf(tm.GlobalTable)
			if rec.Kind == sqldb.RecDelete || rec.Kind == sqldb.RecUpdate {
				g, err := tm.Transform(localSchema, globalSchema, rec.Old)
				if err != nil {
					return err
				}
				rowID, found := removeTuple(tm.GlobalTable, g.String())
				if !found {
					return fmt.Errorf("cdc: %s: pre-image not in snapshot", tm.GlobalTable)
				}
				if !destTable.Delete(rowID) {
					return fmt.Errorf("cdc: %s: stale snapshot row id %d", tm.GlobalTable, rowID)
				}
				st.counts.Deleted++
				if rec.Kind == sqldb.RecDelete {
					del++
				}
			}
			if rec.Kind == sqldb.RecInsert || rec.Kind == sqldb.RecUpdate {
				g, err := tm.Transform(localSchema, globalSchema, rec.Row)
				if err != nil {
					return err
				}
				id, err := destTable.Insert(g)
				if err != nil {
					return err
				}
				enc := g.String()
				st.added = append(st.added, snapRec{fp: fingerprint.String(enc), enc: enc, row: g, rowID: id})
				st.counts.Inserted++
				if rec.Kind == sqldb.RecInsert {
					ins++
				} else {
					upd++
				}
			}
		}
		return nil
	})
	if err != nil {
		loaderRollbacks.Inc()
		return Delta{}, false
	}

	var d Delta
	d.Events = len(recs)
	for i := range l.mapping.Tables {
		tm := &l.mapping.Tables[i]
		oc := stageOf(tm.GlobalTable).counts
		startLen := len(l.snapshots[tm.GlobalTable])
		oc.Unchanged = startLen - oc.Deleted
		if oc.Unchanged < 0 {
			oc.Unchanged = 0
		}
		d.Outcomes = append(d.Outcomes, oc)
		d.Inserted += oc.Inserted
		d.Deleted += oc.Deleted
		d.Unchanged += oc.Unchanged
		if oc.Inserted+oc.Deleted > 0 {
			d.TablesLoaded++
		} else {
			d.TablesUnchanged++
		}
	}
	// Single-pass merge of survivors and sorted additions per table.
	for g, st := range stages {
		if len(st.removed) == 0 && len(st.added) == 0 {
			continue
		}
		base := l.snapshots[g]
		sortSnap(st.added)
		merged := make([]snapRec, 0, len(base)-len(st.removed)+len(st.added))
		j := 0
		for i := range base {
			if st.removed[i] {
				continue
			}
			for j < len(st.added) && lessRec(st.added[j], base[i]) {
				merged = append(merged, st.added[j])
				j++
			}
			merged = append(merged, base[i])
		}
		merged = append(merged, st.added[j:]...)
		l.snapshots[g] = merged
	}
	if len(recs) > 0 {
		l.lastSeq = recs[len(recs)-1].Seq
	}
	loaderCDCEventsIns.Add(int64(ins))
	loaderCDCEventsDel.Add(int64(del))
	loaderCDCEventsUpd.Add(int64(upd))
	return d, true
}

// lessRec orders snapshot records by (fingerprint, encoding); comparing
// the encoding on fingerprint ties keeps the diff correct across the
// ~2^-32 collision case.
func lessRec(a, b snapRec) bool {
	if a.fp != b.fp {
		return a.fp < b.fp
	}
	return a.enc < b.enc
}

func sortSnap(s []snapRec) {
	sort.Slice(s, func(i, j int) bool { return lessRec(s[i], s[j]) })
}
