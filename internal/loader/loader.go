// Package loader implements the BestPeer++ data loader (paper §4.2):
// the offline data flow that extracts data from a participant's
// production system, transforms it to the shared global schema through
// the schema mapping, and keeps the normal peer's local database
// consistent with the production data as it changes.
//
// Consistency is maintained by snapshot differentials, following the
// paper (which follows Labio & Garcia-Molina): every extracted tuple is
// fingerprinted with 32-bit Rabin fingerprinting, both snapshots are
// sorted by fingerprint, and a sort-merge pass over the two sorted
// snapshots reveals inserted and deleted tuples (an update appears as a
// delete plus an insert). Only the deltas touch the peer's database.
package loader

import (
	"fmt"
	"sort"

	"bestpeer/internal/erp"
	"bestpeer/internal/fingerprint"
	"bestpeer/internal/schemamap"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// Delta reports what one load pass changed.
type Delta struct {
	TablesLoaded int
	Inserted     int
	Deleted      int
	// Unchanged counts tuples skipped because their fingerprints (and
	// tuples) matched the previous snapshot.
	Unchanged int
}

// snapRec is one tuple of a stored snapshot: its fingerprint, canonical
// encoding, transformed global row, and the row ID it occupies in the
// peer database.
type snapRec struct {
	fp    uint32
	enc   string
	row   sqlval.Row
	rowID int
}

// Loader synchronizes one production system into one peer database.
type Loader struct {
	sys     *erp.System
	mapping *schemamap.Mapping
	dest    *sqldb.DB
	global  func(table string) *sqldb.Schema
	// snapshots holds, per global table, the previous snapshot sorted by
	// (fingerprint, encoding). The paper stores snapshots "in a separate
	// database" on the peer instance; here they live with the loader.
	snapshots map[string][]snapRec
}

// New creates a loader. global resolves global-schema tables (the
// corporate network's shared schema, distributed by the bootstrap peer).
func New(sys *erp.System, mapping *schemamap.Mapping, dest *sqldb.DB, global func(string) *sqldb.Schema) (*Loader, error) {
	if err := mapping.Validate(sys.Schema, global); err != nil {
		return nil, err
	}
	return &Loader{
		sys:       sys,
		mapping:   mapping,
		dest:      dest,
		global:    global,
		snapshots: make(map[string][]snapRec),
	}, nil
}

// Run performs one load pass over every mapped table: the first call is
// the initial load; later calls extract a fresh snapshot, diff it
// against the stored one, and apply only the changes.
func (l *Loader) Run() (Delta, error) {
	var total Delta
	for _, tm := range l.mapping.Tables {
		d, err := l.runTable(&tm)
		if err != nil {
			return total, fmt.Errorf("loader: table %s: %w", tm.LocalTable, err)
		}
		total.Inserted += d.Inserted
		total.Deleted += d.Deleted
		total.Unchanged += d.Unchanged
		total.TablesLoaded++
	}
	return total, nil
}

func (l *Loader) runTable(tm *schemamap.TableMapping) (Delta, error) {
	var d Delta
	localSchema := l.sys.Schema(tm.LocalTable)
	globalSchema := l.global(tm.GlobalTable)
	if localSchema == nil || globalSchema == nil {
		return d, fmt.Errorf("missing schema for %s -> %s", tm.LocalTable, tm.GlobalTable)
	}
	destTable := l.dest.Table(tm.GlobalTable)
	if destTable == nil {
		var err error
		destTable, err = l.dest.CreateTable(globalSchema)
		if err != nil {
			return d, err
		}
	}

	rows, err := l.sys.Extract(tm.LocalTable)
	if err != nil {
		return d, err
	}
	fresh := make([]snapRec, 0, len(rows))
	for _, row := range rows {
		g, err := tm.Transform(localSchema, globalSchema, row)
		if err != nil {
			return d, err
		}
		enc := g.String()
		fresh = append(fresh, snapRec{fp: fingerprint.String(enc), enc: enc, row: g, rowID: -1})
	}
	sortSnap(fresh)

	old := l.snapshots[tm.GlobalTable]
	// Sort-merge the two fingerprint-sorted snapshots.
	i, j := 0, 0
	for i < len(old) || j < len(fresh) {
		switch {
		case j >= len(fresh) || (i < len(old) && lessRec(old[i], fresh[j])):
			// Present before, gone now: deleted tuple.
			if !destTable.Delete(old[i].rowID) {
				return d, fmt.Errorf("stale snapshot row id %d", old[i].rowID)
			}
			d.Deleted++
			i++
		case i >= len(old) || lessRec(fresh[j], old[i]):
			// New tuple: insert.
			id, err := destTable.Insert(fresh[j].row)
			if err != nil {
				return d, err
			}
			fresh[j].rowID = id
			d.Inserted++
			j++
		default:
			// Equal fingerprint and encoding: unchanged; carry the row ID.
			fresh[j].rowID = old[i].rowID
			d.Unchanged++
			i++
			j++
		}
	}
	l.snapshots[tm.GlobalTable] = fresh
	return d, nil
}

// lessRec orders snapshot records by (fingerprint, encoding); comparing
// the encoding on fingerprint ties keeps the diff correct across the
// ~2^-32 collision case.
func lessRec(a, b snapRec) bool {
	if a.fp != b.fp {
		return a.fp < b.fp
	}
	return a.enc < b.enc
}

func sortSnap(s []snapRec) {
	sort.Slice(s, func(i, j int) bool { return lessRec(s[i], s[j]) })
}
