// Package fingerprint implements 32-bit Rabin fingerprinting (Rabin,
// 1981), used by the data loader to detect changed tuples between
// consecutive snapshots of a production system (paper §4.2: "the system
// first fingerprints every tuple of the tables in the two snapshots to a
// unique integer. We use 32Bits Rabin fingerprinting method").
//
// A Rabin fingerprint treats the input as a polynomial over GF(2) and
// reduces it modulo a fixed irreducible polynomial of degree 32. Equal
// tuples always produce equal fingerprints; distinct tuples collide with
// probability ~2^-32, which the loader tolerates by comparing full
// tuples on fingerprint equality.
package fingerprint

// Poly is the default irreducible polynomial of degree 32 used by the
// data loader: x^32 + x^7 + x^3 + x^2 + 1. The degree-32 term is
// implicit in the reduction; the constant below holds the low 32
// coefficients.
const Poly uint32 = 0x0000008D

// Table is a precomputed byte-at-a-time reduction table for one
// polynomial.
type Table struct {
	shift [256]uint32
}

// NewTable builds the reduction table for the given degree-32
// polynomial (low coefficients only; the x^32 term is implicit): entry b
// holds b(x)·x^32 mod (x^32 + poly).
func NewTable(poly uint32) *Table {
	t := &Table{}
	for b := 0; b < 256; b++ {
		t.shift[b] = reduce64(uint64(b)<<32, poly)
	}
	return t
}

// reduce64 reduces a 64-bit polynomial modulo x^32 + poly.
func reduce64(v uint64, poly uint32) uint32 {
	p := uint64(poly) | 1<<32
	for i := 63; i >= 32; i-- {
		if v&(1<<uint(i)) != 0 {
			v ^= p << uint(i-32)
		}
	}
	return uint32(v)
}

// defaultTable is the shared table for Poly.
var defaultTable = NewTable(Poly)

// Fingerprint returns the 32-bit Rabin fingerprint of data under the
// default polynomial.
func Fingerprint(data []byte) uint32 {
	var fp uint32
	for _, b := range data {
		fp = (fp << 8) ^ uint32(b) ^ defaultTable.shift[fp>>24]
	}
	return fp
}

// String fingerprints a string without copying it to a byte slice.
func String(s string) uint32 {
	var fp uint32
	for i := 0; i < len(s); i++ {
		fp = (fp << 8) ^ uint32(s[i]) ^ defaultTable.shift[fp>>24]
	}
	return fp
}
