package fingerprint

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a := Fingerprint([]byte("hello world"))
	b := Fingerprint([]byte("hello world"))
	if a != b {
		t.Errorf("non-deterministic: %x vs %x", a, b)
	}
}

func TestStringMatchesBytes(t *testing.T) {
	f := func(s string) bool {
		return String(s) == Fingerprint([]byte(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistinguishesNearInputs(t *testing.T) {
	pairs := [][2]string{
		{"1|a|2020-01-01", "1|a|2020-01-02"},
		{"1|a", "1|b"},
		{"", "0"},
		{"ab", "ba"},
		{"tuple", "tuplE"},
	}
	for _, p := range pairs {
		if String(p[0]) == String(p[1]) {
			t.Errorf("collision: %q vs %q", p[0], p[1])
		}
	}
}

func TestEmptyInput(t *testing.T) {
	if Fingerprint(nil) != 0 {
		t.Error("empty fingerprint nonzero")
	}
}

// TestLinearity verifies the defining algebraic property of Rabin
// fingerprints: fp is the input polynomial reduced mod P, so reducing a
// degree-shifted polynomial step by step must agree with the table-driven
// byte-at-a-time computation.
func TestLinearity(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 6 {
			data = data[:6] // keep the naive 64-bit reduction in range
		}
		// Naive: build the polynomial in a big int... for <= 4 bytes the
		// value fits 64 bits pre-reduction after each step.
		var fp uint32
		for _, b := range data {
			fp = reduce64(uint64(fp)<<8|uint64(b), Poly)
		}
		return fp == Fingerprint(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUniformish(t *testing.T) {
	// Bucket fingerprints of sequential inputs; no bucket should be
	// wildly over-populated (sanity, not a rigorous statistical test).
	const n = 10000
	buckets := make([]int, 16)
	for i := 0; i < n; i++ {
		fp := String(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i)))
		buckets[fp%16]++
	}
	for i, c := range buckets {
		if c > n/4 {
			t.Errorf("bucket %d holds %d of %d", i, c, n)
		}
	}
}

func BenchmarkFingerprint1K(b *testing.B) {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Fingerprint(data)
	}
}
