package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentHammer drives counters, gauges, histograms, registry
// lookups, and exposition from many goroutines at once; run under
// -race this is the registry's thread-safety proof, and the final
// counts pin that no increment was lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctr := r.Counter("hammer_total", L("shard", "shared"))
			gauge := r.Gauge("hammer_inflight")
			hist := r.Histogram("hammer_seconds", nil)
			for i := 0; i < perG; i++ {
				ctr.Inc()
				gauge.Add(1)
				hist.Observe(float64(i%100) / 1000)
				gauge.Add(-1)
				// Lookup churn: a per-goroutine labeled child.
				if i%100 == 0 {
					r.Counter("hammer_total", L("shard", string(rune('a'+g)))).Inc()
				}
				if i%500 == 0 {
					var sb strings.Builder
					if err := r.WriteText(&sb); err != nil {
						t.Errorf("WriteText: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("hammer_total", L("shard", "shared")).Value(); got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("hammer_inflight").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("hammer_seconds", nil).Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestQuantileAccuracy checks the histogram estimator against a
// reference sort: the estimate must land within one bucket width of
// the exact quantile.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := newHistogram(DurationBuckets())
	const n = 20000
	values := make([]float64, n)
	for i := range values {
		// Log-uniform over [100µs, 1s): spans several buckets.
		v := math.Exp(rng.Float64()*math.Log(1e4)) * 100e-6
		values[i] = v
		h.Observe(v)
	}
	sort.Float64s(values)

	bucketOf := func(v float64) (lo, hi float64) {
		lo = 0
		for _, b := range DurationBuckets() {
			if v <= b {
				return lo, b
			}
			lo = b
		}
		return lo, math.Inf(1)
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		exact := values[int(q*float64(n))-1]
		est := h.Quantile(q)
		lo, hi := bucketOf(exact)
		if est < lo || est > hi {
			t.Errorf("p%.0f estimate %g outside exact value's bucket [%g, %g] (exact %g)",
				q*100, est, lo, hi, exact)
		}
	}

	if !math.IsNaN(newHistogram(nil).Quantile(0.5)) {
		t.Errorf("empty histogram quantile should be NaN")
	}
}

func TestHistogramSumAndOverflow(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 99} {
		h.Observe(v)
	}
	if got := h.Sum(); math.Abs(got-101) > 1e-9 {
		t.Errorf("sum = %g, want 101", got)
	}
	if got := h.BucketCounts(); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Errorf("bucket counts = %v", got)
	}
	// Overflow-bucket quantile clamps to the highest finite bound.
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %g, want 2", got)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pnet_calls_total", L("peer", "peer-01")).Add(3)
	r.SetHelp("pnet_calls_total", "messages delivered per destination")
	r.Gauge("pool_active").Set(2)
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	text := r.Text()
	for _, want := range []string{
		"# HELP pnet_calls_total messages delivered per destination",
		"# TYPE pnet_calls_total counter",
		`pnet_calls_total{peer="peer-01"} 3`,
		"# TYPE pool_active gauge",
		"pool_active 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Families must be sorted.
	if strings.Index(text, "lat_seconds") > strings.Index(text, "pnet_calls_total") {
		t.Errorf("families not sorted:\n%s", text)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", L("q", `a"b\c`+"\n")).Inc()
	if want := `esc_total{q="a\"b\\c\n"} 1`; !strings.Contains(r.Text(), want) {
		t.Errorf("escaping: want %q in:\n%s", want, r.Text())
	}
}

func TestDisabledRecordsNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("off_total")
	h := r.Histogram("off_seconds", nil)
	SetEnabled(false)
	c.Inc()
	h.Observe(1)
	if sp := StartTrace("off"); sp != nil {
		t.Errorf("StartTrace while disabled should return nil")
	}
	SetEnabled(true)
	if c.Value() != 0 || h.Count() != 0 {
		t.Errorf("disabled registry recorded: ctr=%d hist=%d", c.Value(), h.Count())
	}
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("re-enabled counter = %d, want 1", c.Value())
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("nil handles recorded something")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Errorf("nil histogram quantile should be NaN")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", L("x", "1")).Add(2)
	r.Gauge("b").Set(7)
	r.Histogram("c_seconds", nil).Observe(0.01)
	pts := r.Snapshot()
	if len(pts) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(pts))
	}
	if pts[0].Name != "a_total" || pts[0].Value != 2 || pts[0].Kind != "counter" {
		t.Errorf("point 0 = %+v", pts[0])
	}
	if pts[2].Hist == nil || pts[2].Hist.Count() != 1 {
		t.Errorf("histogram point missing Hist handle: %+v", pts[2])
	}
}
