package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// StartDebugServer serves live profiling and metrics over HTTP for the
// CLI tools' -pprof flag: net/http/pprof under /debug/pprof/ (CPU and
// heap profiles pulled mid-bench) and the registry's text exposition
// under /metrics. It uses an explicit mux so nothing leaks onto
// http.DefaultServeMux. The returned address is the bound listen
// address (useful with ":0"); close shuts the listener down.
func StartDebugServer(addr string, reg *Registry) (boundAddr string, close func() error, err error) {
	if reg == nil {
		reg = Default
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WriteText(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
