package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Query tracing. Peer.Query mints a trace; every engine round, every
// pnet delivery, and every remote handler opens a span under it. The
// context travels across peers inside pnet.Message, so a data owner's
// subquery execution nests under the submitting peer's round span.
// Spans record wall-clock time and, where the engines charge one, the
// virtual-time cost of the same work — rendered side by side so a
// stalled round is attributable to a real peer, not just a simulated
// one.

// SpanContext is the propagated identity of a span: enough to parent
// remote work under it. It crosses peers as two uint64s inside
// pnet.Message and SubQueryRequest.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context identifies a live span.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// Span is one timed region of a trace. All methods are nil-safe: a nil
// span records nothing, so instrumented layers call unconditionally.
type Span struct {
	tr     *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time
	end    time.Time
	vtime  time.Duration
	hasVT  bool
	// attrs aliases attrsBuf until it overflows, so the common span
	// (a few labels set at start plus one or two recorded at end) never
	// allocates attribute storage; SetAttr's append spills to the heap
	// only past len(attrsBuf) labels.
	attrs    []Label
	attrsBuf [4]Label
}

// Trace is one query's collected span tree. Spans live in fixed-size
// chunks: one allocation covers spanChunkSize spans, and because a
// chunk's backing array never grows, the *Span handles given out stay
// valid for the life of the trace. A typical query's full tree fits in
// one chunk, so tracing costs the garbage collector one object instead
// of one per span.
type Trace struct {
	ID uint64

	mu     sync.Mutex
	chunks [][]Span
}

// spanChunkSize is the spans-per-allocation granularity.
const spanChunkSize = 16

// ids hands out process-unique trace and span IDs.
var ids atomic.Uint64

func init() { ids.Store(uint64(time.Now().UnixNano()) | 1) }

func nextID() uint64 { return ids.Add(1) }

// collector retains the most recent traces so that remote spans opened
// by another peer in the same process land in the caller's trace. It is
// bounded: old traces fall out once maxTraces newer ones started.
const maxTraces = 256

var collector = struct {
	sync.Mutex
	traces map[uint64]*Trace
	order  []uint64
}{traces: make(map[uint64]*Trace)}

func collect(t *Trace) {
	collector.Lock()
	defer collector.Unlock()
	collector.traces[t.ID] = t
	collector.order = append(collector.order, t.ID)
	for len(collector.order) > maxTraces {
		delete(collector.traces, collector.order[0])
		collector.order = collector.order[1:]
	}
}

func lookupTrace(id uint64) *Trace {
	collector.Lock()
	defer collector.Unlock()
	return collector.traces[id]
}

// StartTrace mints a new trace and returns its root span. Returns nil
// (a recording no-op) when telemetry is disabled.
func StartTrace(name string, attrs ...Label) *Span {
	if !enabled.Load() {
		return nil
	}
	t := &Trace{ID: nextID()}
	collect(t)
	return t.newSpan(0, name, attrs)
}

// StartSpan opens a span under a propagated context — the receiving
// side of cross-peer propagation. When the trace is not resident in
// this process (the caller lives across a TCP transport), a local
// trace is created under the caller's ID so this process still keeps
// its half of the tree.
func StartSpan(ctx SpanContext, name string, attrs ...Label) *Span {
	if !ctx.Valid() || !enabled.Load() {
		return nil
	}
	t := lookupTrace(ctx.TraceID)
	if t == nil {
		t = &Trace{ID: ctx.TraceID}
		collect(t)
	}
	return t.newSpan(ctx.SpanID, name, attrs)
}

func (t *Trace) newSpan(parent uint64, name string, attrs []Label) *Span {
	t.mu.Lock()
	last := len(t.chunks) - 1
	if last < 0 || len(t.chunks[last]) == cap(t.chunks[last]) {
		t.chunks = append(t.chunks, make([]Span, 0, spanChunkSize))
		last++
	}
	t.chunks[last] = append(t.chunks[last], Span{
		tr: t, id: nextID(), parent: parent, name: name, start: time.Now(),
	})
	s := &t.chunks[last][len(t.chunks[last])-1]
	if len(attrs) <= len(s.attrsBuf) {
		s.attrs = s.attrsBuf[:copy(s.attrsBuf[:], attrs)]
	} else {
		s.attrs = attrs
	}
	t.mu.Unlock()
	return s
}

// Context returns the span's propagation context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.tr.ID, SpanID: s.id}
}

// StartChild opens a child span in the same trace.
func (s *Span) StartChild(name string, attrs ...Label) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s.id, name, attrs)
}

// End closes the span (idempotent: the first End wins).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// SetVTime records the virtual-time cost charged for the span's work.
func (s *Span) SetVTime(d time.Duration) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.vtime, s.hasVT = d, true
	s.tr.mu.Unlock()
}

// SetAttr attaches (or appends) one attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetError records the error as an attribute (nil error is a no-op).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.SetAttr("error", err.Error())
}

// Trace returns the trace the span belongs to.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// SpanInfo is one span flattened for inspection (tests, rendering).
type SpanInfo struct {
	ID, Parent uint64
	Name       string
	Attrs      []Label
	Start      time.Time
	Wall       time.Duration
	VTime      time.Duration
	HasVTime   bool
	// Finished is false for a span still open when the snapshot was
	// taken — after a query returns, an unfinished span is a leak.
	Finished bool
}

// Spans returns a consistent flat snapshot of the trace's spans in
// start order. Unfinished spans report wall time up to now.
func (t *Trace) Spans() []SpanInfo {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	total := 0
	for _, c := range t.chunks {
		total += len(c)
	}
	out := make([]SpanInfo, 0, total)
	for _, c := range t.chunks {
		for i := range c {
			s := &c[i]
			end := s.end
			if end.IsZero() {
				end = now
			}
			out = append(out, SpanInfo{
				ID: s.id, Parent: s.parent, Name: s.name,
				Attrs: append([]Label(nil), s.attrs...),
				Start: s.start, Wall: end.Sub(s.start),
				VTime: s.vtime, HasVTime: s.hasVT,
				Finished: !s.end.IsZero(),
			})
		}
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// OpenSpans returns the names of spans not yet ended — the span-leak
// detector. After a query (successful or failed) has fully returned,
// every span in its trace must be finished; anything still open was
// leaked by an error path.
func (t *Trace) OpenSpans() []string {
	var open []string
	for _, s := range t.Spans() {
		if !s.Finished {
			open = append(open, s.Name)
		}
	}
	return open
}

// Render draws the span tree with wall-clock and virtual time side by
// side. Spans whose parent is not resident (cross-process callers)
// attach at the root level.
func (t *Trace) Render() string {
	if t == nil {
		return "(no trace)\n"
	}
	spans := t.Spans()
	byID := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		byID[s.ID] = true
	}
	children := make(map[uint64][]SpanInfo)
	var roots []SpanInfo
	for _, s := range spans {
		if s.Parent != 0 && byID[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %016x (%d spans)\n", t.ID, len(spans))
	var walk func(s SpanInfo, depth int)
	walk = func(s SpanInfo, depth int) {
		label := s.Name
		if len(s.Attrs) > 0 {
			parts := make([]string, len(s.Attrs))
			for i, a := range s.Attrs {
				parts[i] = a.Key + "=" + a.Value
			}
			label += " {" + strings.Join(parts, " ") + "}"
		}
		vt := "-"
		if s.HasVTime {
			vt = s.VTime.String()
		}
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&sb, "%-64s wall=%-12s vtime=%s\n", indent+label, s.Wall.Round(time.Microsecond), vt)
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 1)
	}
	return sb.String()
}
