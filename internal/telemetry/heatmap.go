package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Heatmap is the heat plane's accounting primitive: a fixed array of N
// counters over the BATON key space [0,1). Recording an access at a key
// is one atomic add into the bucket owning that key — no per-key labels,
// no allocation, bounded memory whatever the key distribution — yet a
// merged cluster heat vector still names WHERE traffic lands precisely
// enough to call a range hot. Like Histogram, a Heatmap snapshots,
// deltas and merges losslessly (bucket-wise addition over identical
// layouts), so per-peer heat vectors ride the existing telemetry report
// path and sum at the collector.
//
// Heat recording has its own kill switch (SetHeatEnabled) underneath
// the process-wide one, so `bpbench -fig hotspot` can price the heat
// plane alone on an otherwise fully instrumented run.

// heatEnabled gates heat recording (on by default). Both this and the
// process-wide switch must be on for Record to count.
var heatEnabled atomic.Bool

func init() { heatEnabled.Store(true) }

// SetHeatEnabled flips heat-plane recording only; the rest of the
// telemetry substrate is unaffected.
func SetHeatEnabled(on bool) { heatEnabled.Store(on) }

// HeatEnabled reports whether heat recording is on.
func HeatEnabled() bool { return heatEnabled.Load() }

// DefaultHeatBuckets is the standard key-space resolution. 64 buckets
// over [0,1) resolve a hot range to ~1.6% of the key space while one
// heat vector stays a 512-byte array.
const DefaultHeatBuckets = 64

// Heatmap holds the live per-bucket counters.
type Heatmap struct {
	buckets []atomic.Int64
	total   atomic.Int64
}

// NewHeatmap returns a heatmap with n buckets over [0,1) (n <= 0
// selects DefaultHeatBuckets).
func NewHeatmap(n int) *Heatmap {
	if n <= 0 {
		n = DefaultHeatBuckets
	}
	return &Heatmap{buckets: make([]atomic.Int64, n)}
}

// Buckets returns the bucket count.
func (h *Heatmap) Buckets() int {
	if h == nil {
		return 0
	}
	return len(h.buckets)
}

// bucketOf clamps a key into [0,1) and returns its bucket index.
func (h *Heatmap) bucketOf(key float64) int {
	i := int(key * float64(len(h.buckets)))
	if i < 0 || key != key { // negative key or NaN
		return 0
	}
	if i >= len(h.buckets) {
		return len(h.buckets) - 1
	}
	return i
}

// Record counts one access at key.
func (h *Heatmap) Record(key float64) {
	if h == nil || !enabled.Load() || !heatEnabled.Load() {
		return
	}
	h.buckets[h.bucketOf(key)].Add(1)
	h.total.Add(1)
}

// RecordRange counts one access against every bucket the key range
// [lo,hi] overlaps. A point access (hi <= lo) touches one bucket; a
// full-space scan touches all of them — so wide uniform scans spread
// flat while narrow repeated windows concentrate, which is exactly the
// contrast the skew score keys on.
func (h *Heatmap) RecordRange(lo, hi float64) {
	if h == nil || !enabled.Load() || !heatEnabled.Load() {
		return
	}
	i := h.bucketOf(lo)
	j := h.bucketOf(hi)
	if j < i {
		i, j = j, i
	}
	for b := i; b <= j; b++ {
		h.buckets[b].Add(1)
	}
	h.total.Add(int64(j - i + 1))
}

// Count returns the total bucket increments recorded.
func (h *Heatmap) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// BucketCounts returns a copy of the per-bucket counters.
func (h *Heatmap) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Snapshot freezes the heatmap's current state.
func (h *Heatmap) Snapshot() HeatmapSnapshot {
	if h == nil {
		return HeatmapSnapshot{}
	}
	return HeatmapSnapshot{Buckets: h.BucketCounts()}
}

// Merge adds a snapshot's buckets into the live heatmap. Like
// Histogram.Merge, mismatched layouts are refused rather than
// approximated, and negative counts (a corrupt or non-delta snapshot)
// are rejected before any bucket is touched.
func (h *Heatmap) Merge(s HeatmapSnapshot) error {
	if h == nil {
		return fmt.Errorf("telemetry: merge into nil heatmap")
	}
	if len(s.Buckets) != len(h.buckets) {
		return fmt.Errorf("telemetry: heatmap merge: %d buckets vs %d", len(s.Buckets), len(h.buckets))
	}
	for _, c := range s.Buckets {
		if c < 0 {
			return fmt.Errorf("telemetry: heatmap merge: negative bucket count %d", c)
		}
	}
	var total int64
	for i, c := range s.Buckets {
		h.buckets[i].Add(c)
		total += c
	}
	h.total.Add(total)
	return nil
}

// HeatBucketRange returns the key-space range [lo,hi) bucket i covers
// in an n-bucket heatmap.
func HeatBucketRange(i, n int) (lo, hi float64) {
	if n <= 0 {
		return 0, 0
	}
	return float64(i) / float64(n), float64(i+1) / float64(n)
}

// HeatmapSnapshot is a frozen, serializable heat vector. Exported
// fields only, so it crosses pnet's gob transport unchanged inside
// telemetry reports.
type HeatmapSnapshot struct {
	Buckets []int64
}

// Count returns the total increments in the snapshot.
func (s HeatmapSnapshot) Count() int64 {
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	return total
}

// Sub returns s minus prev bucket-wise — the delta of two snapshots of
// the same heatmap. A layout mismatch or a counter that went backwards
// (the heatmap was replaced underneath) falls back to the absolute
// snapshot s, mirroring HistogramSnapshot.Sub.
func (s HeatmapSnapshot) Sub(prev HeatmapSnapshot) HeatmapSnapshot {
	out := HeatmapSnapshot{Buckets: append([]int64(nil), s.Buckets...)}
	if len(prev.Buckets) != len(s.Buckets) {
		return out
	}
	for i := range out.Buckets {
		out.Buckets[i] -= prev.Buckets[i]
		if out.Buckets[i] < 0 {
			copy(out.Buckets, s.Buckets)
			return out
		}
	}
	return out
}

// Add returns the bucket-wise sum (empty operands pass through; a
// layout mismatch keeps the receiver) — the collector's accumulator.
func (s HeatmapSnapshot) Add(d HeatmapSnapshot) HeatmapSnapshot {
	if len(d.Buckets) == 0 {
		return s
	}
	if len(s.Buckets) == 0 {
		return HeatmapSnapshot{Buckets: append([]int64(nil), d.Buckets...)}
	}
	if len(s.Buckets) != len(d.Buckets) {
		return s
	}
	out := HeatmapSnapshot{Buckets: append([]int64(nil), s.Buckets...)}
	for i := range d.Buckets {
		out.Buckets[i] += d.Buckets[i]
	}
	return out
}

// Top returns the hottest bucket's index and its share of all
// increments (0, 0 when the snapshot is empty).
func (s HeatmapSnapshot) Top() (bucket int, share float64) {
	total := s.Count()
	if total == 0 {
		return 0, 0
	}
	var max int64
	for i, c := range s.Buckets {
		if c > max {
			max = c
			bucket = i
		}
	}
	return bucket, float64(max) / float64(total)
}

// Skew scores the distribution against uniform expectation: the top
// bucket's share divided by 1/N. 1.0 means perfectly flat traffic; N
// means every access landed in one bucket. Empty snapshots score 0.
func (s HeatmapSnapshot) Skew() float64 {
	if len(s.Buckets) == 0 {
		return 0
	}
	_, share := s.Top()
	return share * float64(len(s.Buckets))
}
