package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders the registry in the Prometheus plain-text
// exposition format (text/plain; version=0.0.4): one # TYPE line per
// family, one sample line per labeled instance, histograms expanded
// into cumulative _bucket{le=...} series plus _sum and _count. Families
// and label sets are emitted in sorted order so successive scrapes
// diff cleanly.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		fams[name] = f
	}
	r.mu.RUnlock()
	sort.Strings(names)

	for _, name := range names {
		f := fams[name]
		f.mu.Lock()
		help := f.help
		sigs := make([]string, 0, len(f.children))
		for sig := range f.children {
			sigs = append(sigs, sig)
		}
		children := make([]*child, 0, len(sigs))
		sort.Strings(sigs)
		for _, sig := range sigs {
			children = append(children, f.children[sig])
		}
		f.mu.Unlock()

		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		for _, c := range children {
			if err := writeChild(w, name, f.kind, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, name string, kind metricKind, c *child) error {
	switch kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(c.labels, "", 0), c.ctr.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, renderLabels(c.labels, "", 0), c.gauge.Value())
		return err
	case kindHeatmap:
		return writeHeat(w, name, c)
	}
	h := c.hist
	counts := h.BucketCounts()
	bounds := h.Bounds()
	exemplars := h.Exemplars()
	var cum int64
	for i, cnt := range counts {
		cum += cnt
		le := inf
		if i < len(bounds) {
			le = bounds[i]
		}
		// Traced observations append an OpenMetrics-style exemplar to
		// their bucket line: the trace ID that paid this latency class.
		suffix := ""
		if i < len(exemplars) && exemplars[i] != nil {
			suffix = fmt.Sprintf(" # {trace_id=\"%016x\"} %s", exemplars[i].TraceID, formatFloat(exemplars[i].Value))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, renderLabels(c.labels, "le", le), cum, suffix); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(c.labels, "", 0), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(c.labels, "", 0), h.Count())
	return err
}

// writeHeat renders one heatmap child: a sample per non-empty key-space
// bucket (lo/hi labels name the bucket's [lo,hi) range) plus the total.
func writeHeat(w io.Writer, name string, c *child) error {
	counts := c.heat.BucketCounts()
	n := len(counts)
	for i, cnt := range counts {
		if cnt == 0 {
			continue
		}
		lo, hi := HeatBucketRange(i, n)
		labels := append(append([]Label(nil), c.labels...),
			L("lo", formatFloat(lo)), L("hi", formatFloat(hi)))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels, "", 0), cnt); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(c.labels, "", 0), c.heat.Count())
	return err
}

// MissingHelp scans a text exposition and returns every family that has
// a # TYPE line but no # HELP line — the guard tests use it to keep
// every exported metric documented.
func MissingHelp(exposition string) []string {
	helped := map[string]bool{}
	var out []string
	for _, line := range strings.Split(exposition, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		if fields[0] != "#" {
			continue
		}
		switch fields[1] {
		case "HELP":
			helped[fields[2]] = true
		case "TYPE":
			if !helped[fields[2]] {
				out = append(out, fields[2])
			}
		}
	}
	return out
}

// renderLabels renders {k="v",...}, appending an le bound when leKey is
// non-empty. Labels are sorted by key; values are escaped per the
// exposition format.
func renderLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	if leKey != "" {
		if len(ls) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(leKey)
		sb.WriteString(`="`)
		sb.WriteString(formatFloat(le))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(f float64) string {
	if f == inf {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Text renders the registry to a string (the telemetry verb's payload).
func (r *Registry) Text() string {
	var sb strings.Builder
	_ = r.WriteText(&sb)
	return sb.String()
}
