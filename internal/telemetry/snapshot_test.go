package telemetry

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
)

// TestHistogramMergeLossless is the acceptance check for the snapshot
// encoding: merging N shard snapshots into one histogram reports
// p50/p95/p99 identical to a single histogram fed the union of the
// shards' observations. With fixed buckets this is exact, not
// approximate — bucket counts add, so the interpolated quantile is
// bit-for-bit the same.
func TestHistogramMergeLossless(t *testing.T) {
	const shards = 7
	bounds := DurationBuckets()
	union := newHistogram(bounds)
	parts := make([]*Histogram, shards)
	for i := range parts {
		parts[i] = newHistogram(bounds)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()*2 - 7) // log-normal over the bucket range
		union.Observe(v)
		parts[i%shards].Observe(v)
	}

	merged := newHistogram(bounds)
	for _, p := range parts {
		if err := merged.Merge(p.Snapshot()); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}

	if got, want := merged.Count(), union.Count(); got != want {
		t.Fatalf("count: merged %d, union %d", got, want)
	}
	if got, want := merged.Sum(), union.Sum(); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("sum: merged %g, union %g", got, want)
	}
	gc, uc := merged.BucketCounts(), union.BucketCounts()
	for i := range gc {
		if gc[i] != uc[i] {
			t.Fatalf("bucket[%d]: merged %d, union %d", i, gc[i], uc[i])
		}
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		if got, want := merged.Quantile(q), union.Quantile(q); got != want {
			t.Fatalf("q%.2f: merged %g, union %g", q, got, want)
		}
	}
	// The frozen snapshot agrees with the live estimator too.
	snap := merged.Snapshot()
	for _, q := range []float64{0.50, 0.95, 0.99} {
		if got, want := snap.Quantile(q), merged.Quantile(q); got != want {
			t.Fatalf("snapshot q%.2f: %g vs live %g", q, got, want)
		}
	}
}

func TestHistogramMergeBoundsMismatch(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	if err := h.Merge(HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 0}}); err == nil {
		t.Fatal("expected bounds-length mismatch error")
	}
	if err := h.Merge(HistogramSnapshot{Bounds: []float64{1, 2, 4}, Counts: []int64{0, 0, 0, 0}}); err == nil {
		t.Fatal("expected bounds-value mismatch error")
	}
	if err := h.Merge(HistogramSnapshot{Bounds: []float64{1, 2, 3}, Counts: []int64{0, 0}}); err == nil {
		t.Fatal("expected counts-length mismatch error")
	}
}

// TestExportDeltaMerge drives the full reporter/collector contract:
// export, mutate, export again, take the delta, merge deltas from two
// "peers" into a cluster registry under peer labels, and check the
// aggregate matches hand counting.
func TestExportDeltaMerge(t *testing.T) {
	mk := func() *Registry { return NewRegistry() }

	r := mk()
	r.Counter("queries_total").Add(5)
	r.Gauge("load").Set(3)
	h := r.Histogram("latency_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(5)
	prev := r.Export()

	r.Counter("queries_total").Add(2)
	r.Gauge("load").Set(7)
	h.Observe(0.5)
	r.Counter("idle_total") // touched but zero: must drop from delta
	cur := r.Export()

	d := cur.Delta(prev)
	if p, ok := d.Find("queries_total"); !ok || p.Value != 2 {
		t.Fatalf("delta counter: %+v ok=%v", p, ok)
	}
	if p, ok := d.Find("load"); !ok || p.Value != 7 {
		t.Fatalf("delta gauge: %+v ok=%v", p, ok)
	}
	if p, ok := d.Find("latency_seconds"); !ok || p.Hist == nil || p.Hist.Count() != 1 {
		t.Fatalf("delta histogram: %+v ok=%v", p, ok)
	}
	if _, ok := d.Find("idle_total"); ok {
		t.Fatal("zero-delta counter survived")
	}

	// Cluster merge under peer labels: two disjoint peer registries.
	cluster := mk()
	if err := cluster.Merge(d, L("peer", "peer-00")); err != nil {
		t.Fatalf("merge: %v", err)
	}
	other := mk()
	other.Counter("queries_total").Add(9)
	if err := cluster.Merge(other.Export(), L("peer", "peer-01")); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if got := cluster.Counter("queries_total", L("peer", "peer-00")).Value(); got != 2 {
		t.Fatalf("cluster peer-00 counter = %d", got)
	}
	if got := cluster.Counter("queries_total", L("peer", "peer-01")).Value(); got != 9 {
		t.Fatalf("cluster peer-01 counter = %d", got)
	}
	if got := cluster.Histogram("latency_seconds", []float64{0.1, 1, 10}, L("peer", "peer-00")).Count(); got != 1 {
		t.Fatalf("cluster histogram count = %d", got)
	}
	// Merging the same delta again accumulates (counters are additive).
	if err := cluster.Merge(d, L("peer", "peer-00")); err != nil {
		t.Fatalf("re-merge: %v", err)
	}
	if got := cluster.Counter("queries_total", L("peer", "peer-00")).Value(); got != 4 {
		t.Fatalf("cluster counter after re-merge = %d", got)
	}
}

// TestReportGobRoundTrip proves the wire types survive gob — the same
// encoding pnet's TCP transport uses.
func TestReportGobRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("k", "v")).Add(3)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	rep := Report{Peer: "peer-03", Seq: 12, Delta: r.Export()}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rep); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got Report
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Peer != "peer-03" || got.Seq != 12 || len(got.Delta.Points) != len(rep.Delta.Points) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if p, ok := got.Delta.Find("h"); !ok || p.Hist == nil || p.Hist.Count() != 1 {
		t.Fatalf("histogram lost in transit: %+v ok=%v", p, ok)
	}
}

// TestSpanFinished checks the leak detector: an unfinished span is
// reported as such, and OpenSpans names it.
func TestSpanFinished(t *testing.T) {
	root := StartTrace("q")
	child := root.StartChild("leaky")
	root.End()
	tr := root.Trace()
	open := tr.OpenSpans()
	if len(open) != 1 || open[0] != "leaky" {
		t.Fatalf("open spans = %v, want [leaky]", open)
	}
	child.End()
	if open := tr.OpenSpans(); len(open) != 0 {
		t.Fatalf("open spans after End = %v", open)
	}
	for _, s := range tr.Spans() {
		if !s.Finished {
			t.Fatalf("span %s not finished", s.Name)
		}
	}
}
