package telemetry

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestHeatmapRecordAndTop(t *testing.T) {
	h := NewHeatmap(8)
	for i := 0; i < 7; i++ {
		h.Record(0.15) // bucket 1
	}
	h.Record(0.9) // bucket 7
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	s := h.Snapshot()
	bucket, share := s.Top()
	if bucket != 1 || share != 0.875 {
		t.Fatalf("top = (%d, %v), want (1, 0.875)", bucket, share)
	}
	if got := s.Skew(); got != 7 {
		t.Fatalf("skew = %v, want 7 (0.875 share x 8 buckets)", got)
	}
	// Out-of-range and NaN keys clamp instead of panicking.
	h.Record(-3)
	h.Record(42)
	var nan float64
	h.Record(nan / nan)
}

func TestHeatmapRecordRange(t *testing.T) {
	h := NewHeatmap(8)
	h.RecordRange(0.1, 0.4) // buckets 0..3
	c := h.BucketCounts()
	for i, want := range []int64{1, 1, 1, 1, 0, 0, 0, 0} {
		if c[i] != want {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, c[i], want, c)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	// Point access (hi <= lo) touches exactly one bucket.
	h.RecordRange(0.9, 0.9)
	if got := h.BucketCounts()[7]; got != 1 {
		t.Fatalf("point access bucket = %d, want 1", got)
	}
}

// TestHeatmapSnapshotRoundTrip is the lossless contract: snapshot,
// delta, merge into a fresh heatmap, and gob across the wire — the
// buckets must survive every hop bit-exact.
func TestHeatmapSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Heatmap("key_heat", 16)
	h.RecordRange(0, 0.2)
	prev := r.Export()
	h.RecordRange(0.5, 0.6)
	h.Record(0.99)

	d := r.Export().Delta(prev)
	p, ok := d.Find("key_heat")
	if !ok || p.Heat == nil {
		t.Fatalf("heatmap missing from delta: %+v ok=%v", p, ok)
	}
	if got := p.Heat.Count(); got != 3 {
		t.Fatalf("delta count = %d, want 3 (2 range buckets + 1 point)", got)
	}

	// Gob round trip, the same encoding the telemetry report rides.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Report{Peer: "p", Delta: d}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var rep Report
	if err := gob.NewDecoder(&buf).Decode(&rep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	p2, ok := rep.Delta.Find("key_heat")
	if !ok || p2.Heat == nil {
		t.Fatal("heatmap lost in transit")
	}

	// Merge into a cluster registry and compare bucket-wise.
	cluster := NewRegistry()
	if err := cluster.Merge(rep.Delta, L("peer", "p")); err != nil {
		t.Fatalf("merge: %v", err)
	}
	got := cluster.Heatmap("key_heat", 16, L("peer", "p")).Snapshot()
	for i, c := range p.Heat.Buckets {
		if got.Buckets[i] != c {
			t.Fatalf("bucket %d = %d, want %d", i, got.Buckets[i], c)
		}
	}
}

func TestHeatmapMergeRejectsBadSnapshots(t *testing.T) {
	h := NewHeatmap(8)
	if err := h.Merge(HeatmapSnapshot{Buckets: make([]int64, 4)}); err == nil {
		t.Fatal("expected bucket-count mismatch error")
	}
	if err := h.Merge(HeatmapSnapshot{Buckets: []int64{0, 0, -1, 0, 0, 0, 0, 0}}); err == nil {
		t.Fatal("expected negative-count error")
	}
	if h.Count() != 0 {
		t.Fatalf("rejected merges mutated the heatmap: count = %d", h.Count())
	}
	if err := h.Merge(HeatmapSnapshot{Buckets: []int64{1, 0, 0, 0, 0, 0, 0, 2}}); err != nil {
		t.Fatalf("valid merge: %v", err)
	}
	if h.Count() != 3 {
		t.Fatalf("count after merge = %d, want 3", h.Count())
	}
}

func TestHeatmapSubFallsBackOnReset(t *testing.T) {
	cur := HeatmapSnapshot{Buckets: []int64{5, 2}}
	prev := HeatmapSnapshot{Buckets: []int64{3, 1}}
	d := cur.Sub(prev)
	if d.Buckets[0] != 2 || d.Buckets[1] != 1 {
		t.Fatalf("delta = %v", d.Buckets)
	}
	// A counter that went backwards (heatmap replaced underneath) falls
	// back to the absolute snapshot.
	back := cur.Sub(HeatmapSnapshot{Buckets: []int64{9, 0}})
	if back.Buckets[0] != 5 || back.Buckets[1] != 2 {
		t.Fatalf("reset fallback = %v, want absolute", back.Buckets)
	}
}

// TestHeatmapConcurrent hammers Record/RecordRange/Merge/Snapshot from
// many goroutines; under -race this is the heat plane's data-race gate,
// and the final count must equal the hand-computed total.
func TestHeatmapConcurrent(t *testing.T) {
	h := NewHeatmap(DefaultHeatBuckets)
	src := NewHeatmap(DefaultHeatBuckets)
	src.Record(0.5)
	delta := src.Snapshot()

	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch w % 4 {
				case 0:
					h.Record(float64(i) / iters)
				case 1:
					h.RecordRange(0.25, 0.26) // always one bucket
				case 2:
					if err := h.Merge(delta); err != nil {
						t.Error(err)
						return
					}
				case 3:
					_ = h.Snapshot().Skew()
				}
			}
		}(w)
	}
	wg.Wait()
	// Workers 0,4 record once per iter; 1,5 record one bucket per iter;
	// 2,6 merge a 1-count snapshot per iter; 3,7 only read.
	if got := h.Count(); got != int64(6*iters) {
		t.Fatalf("count = %d, want %d", got, 6*iters)
	}
}

func TestExemplarLinksTailBucket(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	h.Observe(0.005) // untraced: no exemplar
	if _, ok := h.TailExemplar(); ok {
		t.Fatal("exemplar present before any traced observation")
	}
	h.ObserveExemplar(0.05, 0xabc)
	h.ObserveExemplar(5, 0xdef) // +Inf bucket: the tail
	ex, ok := h.TailExemplar()
	if !ok || ex.TraceID != 0xdef || ex.Value != 5 {
		t.Fatalf("tail exemplar = %+v ok=%v, want trace 0xdef value 5", ex, ok)
	}
	// Latest-wins per bucket.
	h.ObserveExemplar(6, 0x123)
	if ex, _ := h.TailExemplar(); ex.TraceID != 0x123 {
		t.Fatalf("tail exemplar not replaced: %+v", ex)
	}
	// Zero trace IDs never displace a stored exemplar.
	h.Observe(7)
	if ex, _ := h.TailExemplar(); ex.TraceID != 0x123 {
		t.Fatalf("untraced observation displaced exemplar: %+v", ex)
	}
}

func TestExpositionRendersExemplars(t *testing.T) {
	r := NewRegistry()
	r.Histogram("q_seconds", []float64{1}).ObserveExemplar(0.5, 0xbeef)
	text := r.Text()
	want := `# {trace_id="000000000000beef"} 0.5`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition missing exemplar %q:\n%s", want, text)
	}
}

func TestMissingHelp(t *testing.T) {
	r := NewRegistry()
	r.Counter("documented_total").Inc()
	r.SetHelp("documented_total", "Has help.")
	r.Counter("naked_total").Inc()
	missing := MissingHelp(r.Text())
	if len(missing) != 1 || missing[0] != "naked_total" {
		t.Fatalf("missing = %v, want [naked_total]", missing)
	}
	r.SetHelp("naked_total", "Now documented.")
	if missing := MissingHelp(r.Text()); len(missing) != 0 {
		t.Fatalf("missing after SetHelp = %v", missing)
	}
}

// TestStartDebugServer binds :0 and checks both the pprof index and the
// /metrics exposition answer — the CLI tools' -pprof flag end to end.
func TestStartDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("debug_probe_total").Inc()
	addr, closeSrv, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSrv()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "debug_probe_total 1") {
		t.Fatalf("/metrics missing probe counter:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%.200s", body)
	}
}
