package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	root := StartTrace("query", L("peer", "peer-00"))
	if root == nil {
		t.Fatal("StartTrace returned nil with telemetry enabled")
	}
	child := root.StartChild("fetch:lineitem")
	child.SetVTime(3 * time.Second)
	child.End()
	root.End()

	tr := root.Trace()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(spans))
	}
	if spans[1].Parent != spans[0].ID {
		t.Errorf("child parent = %d, want root ID %d", spans[1].Parent, spans[0].ID)
	}
	if !spans[1].HasVTime || spans[1].VTime != 3*time.Second {
		t.Errorf("child vtime = %v (has=%v)", spans[1].VTime, spans[1].HasVTime)
	}
	out := tr.Render()
	if !strings.Contains(out, "query {peer=peer-00}") || !strings.Contains(out, "fetch:lineitem") {
		t.Errorf("render missing spans:\n%s", out)
	}
	if !strings.Contains(out, "vtime=3s") {
		t.Errorf("render missing vtime column:\n%s", out)
	}
}

// TestContextPropagation covers the remote-handler path: a span opened
// from a propagated SpanContext must land in the caller's trace, nested
// under the propagated span.
func TestContextPropagation(t *testing.T) {
	root := StartTrace("query")
	rpc := root.StartChild("rpc:peer.subquery")
	remote := StartSpan(rpc.Context(), "exec-subquery", L("peer", "peer-01"))
	remote.End()
	rpc.End()
	root.End()

	if got, want := remote.Trace(), root.Trace(); got != want {
		t.Fatalf("remote span landed in trace %p, want caller's %p", got, want)
	}
	spans := root.Trace().Spans()
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	if spans[2].Parent != spans[1].ID {
		t.Errorf("remote span parent = %d, want rpc span %d", spans[2].Parent, spans[1].ID)
	}
}

// TestForeignContext covers the cross-process side: a context whose
// trace is not resident creates a local trace under the caller's ID.
func TestForeignContext(t *testing.T) {
	ctx := SpanContext{TraceID: 0xfeed, SpanID: 0xbeef}
	sp := StartSpan(ctx, "remote-half")
	if sp == nil {
		t.Fatal("StartSpan returned nil for valid foreign context")
	}
	if sp.Trace().ID != 0xfeed {
		t.Errorf("foreign trace ID = %x, want feed", sp.Trace().ID)
	}
	// The orphan span (parent not resident) still renders at root level.
	if out := sp.Trace().Render(); !strings.Contains(out, "remote-half") {
		t.Errorf("orphan span missing from render:\n%s", out)
	}
}

func TestInvalidContextIsNoop(t *testing.T) {
	if sp := StartSpan(SpanContext{}, "x"); sp != nil {
		t.Errorf("StartSpan with invalid context should return nil")
	}
	var nilSpan *Span
	nilSpan.End()
	nilSpan.SetVTime(time.Second)
	nilSpan.SetAttr("k", "v")
	nilSpan.SetError(nil)
	if nilSpan.Context().Valid() {
		t.Errorf("nil span context should be invalid")
	}
	if nilSpan.StartChild("y") != nil {
		t.Errorf("nil span StartChild should return nil")
	}
}

// TestConcurrentSpans appends spans from many goroutines (the fan-out
// pool does exactly this) — run under -race.
func TestConcurrentSpans(t *testing.T) {
	root := StartTrace("query")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := root.StartChild("call")
				sp.SetVTime(time.Millisecond)
				sp.End()
			}
		}()
	}
	// Render concurrently with span creation.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = root.Trace().Render()
		}
	}()
	wg.Wait()
	<-done
	root.End()
	if got := len(root.Trace().Spans()); got != 1+8*200 {
		t.Errorf("trace has %d spans, want %d", got, 1+8*200)
	}
}

func TestCollectorBounded(t *testing.T) {
	first := StartTrace("first")
	for i := 0; i < maxTraces+10; i++ {
		StartTrace("filler").End()
	}
	if lookupTrace(first.Trace().ID) != nil {
		t.Errorf("old trace still resident after %d newer traces", maxTraces+10)
	}
}
