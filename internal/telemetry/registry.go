// Package telemetry is the observability substrate of this BestPeer++
// reproduction: a metrics registry (counters, gauges, streaming
// histograms with quantile estimation, Prometheus-style text
// exposition) and a cross-peer query tracer (trace IDs minted at
// Peer.Query, spans propagated through pnet so remote subquery
// execution nests under the caller's span).
//
// The paper's pay-as-you-go model (§5) and the bootstrap peer's
// monitor → fail-over → auto-scale loop (Algorithm 1) both presuppose
// that every peer can account for what it spent and where time went;
// this package records the real counterpart of what the virtual-time
// model simulates. It is stdlib-only and cheap enough for hot paths:
// metric handles are looked up once and cached by the instrumented
// layers, increments are single atomic adds, and the fast path
// allocates nothing.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled is the process-wide kill switch. Instrumented layers keep
// their handles either way; a disabled registry turns every record
// operation into one atomic load. The overhead benchmark
// (bpbench -fig telemetry) measures the fig-6 workload against this
// switch to prove the instrumented run stays within budget.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled flips the process-wide recording switch.
func SetEnabled(on bool) { enabled.Store(on) }

// IsEnabled reports whether recording is on.
func IsEnabled() bool { return enabled.Load() }

// Label is one name dimension of a metric ("peer" -> "peer-03").
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are dropped: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Store(n)
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind tags a family for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindHeatmap
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHeatmap:
		return "heatmap"
	default:
		return "histogram"
	}
}

// child is one labeled instance inside a family.
type child struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	heat   *Heatmap
}

// family groups every labeled instance of one metric name.
type family struct {
	name string
	help string
	kind metricKind

	mu       sync.Mutex
	children map[string]*child // by label signature
}

// Registry holds metric families by name. The zero value is not usable;
// call NewRegistry, or use the package Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry every instrumented layer records
// into. Peers in one process share it — the telemetry verb exposes the
// process view, like one node's /metrics endpoint in a real deployment.
var Default = NewRegistry()

// signature renders labels into a canonical map key (sorted by key).
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels) == 1 {
		// Hot-path shortcut: one label needs no copy or sort.
		return labels[0].Key + "=" + labels[0].Value
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// getFamily resolves (or creates) the family for a name, checking kind
// consistency. Registering the same name with a different kind panics:
// that is a programming error, caught by the package's own tests.
func (r *Registry) getFamily(name string, kind metricKind) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, kind: kind, children: make(map[string]*child)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic("telemetry: metric " + name + " registered as " + f.kind.String() + " and " + kind.String())
	}
	return f
}

// getChild resolves (or creates) the labeled instance inside a family.
func (f *family) getChild(labels []Label) *child {
	sig := signature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.children[sig]
	if c == nil {
		c = &child{labels: append([]Label(nil), labels...)}
		switch f.kind {
		case kindCounter:
			c.ctr = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		}
		f.children[sig] = c
	}
	return c
}

// SetHelp attaches the one-line help text emitted with the family.
func (r *Registry) SetHelp(name, help string) {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f != nil {
		f.mu.Lock()
		f.help = help
		f.mu.Unlock()
	}
}

// Counter returns the counter for name+labels, creating it on first
// use. The returned handle is stable: look it up once, cache it, and
// increment it from hot paths without further registry traffic.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.getFamily(name, kindCounter).getChild(labels).ctr
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.getFamily(name, kindGauge).getChild(labels).gauge
}

// Histogram returns the histogram for name+labels, creating it on first
// use with the given bucket upper bounds (nil selects DurationBuckets,
// the latency default). Bounds are fixed at creation; later calls with
// different bounds return the existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	f := r.getFamily(name, kindHistogram)
	sig := signature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.children[sig]
	if c == nil {
		c = &child{labels: append([]Label(nil), labels...), hist: newHistogram(bounds)}
		f.children[sig] = c
	}
	return c.hist
}

// Heatmap returns the heatmap for name+labels, creating it on first use
// with n buckets over [0,1) (n <= 0 selects DefaultHeatBuckets). The
// bucket count is fixed at creation; later calls with a different n
// return the existing heatmap unchanged.
func (r *Registry) Heatmap(name string, n int, labels ...Label) *Heatmap {
	f := r.getFamily(name, kindHeatmap)
	sig := signature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.children[sig]
	if c == nil {
		c = &child{labels: append([]Label(nil), labels...), heat: NewHeatmap(n)}
		f.children[sig] = c
	}
	return c.heat
}

// Point is one metric sample in a Snapshot.
type Point struct {
	Name   string
	Labels []Label
	Kind   string // "counter", "gauge", "histogram", "heatmap"
	// Value is the counter/gauge value, or the histogram/heatmap
	// observation count.
	Value float64
	// Hist is set for histogram points.
	Hist *Histogram
	// Heat is set for heatmap points.
	Heat *Heatmap
}

// Snapshot returns every metric in the registry, sorted by name then
// label signature — the programmatic twin of WriteText.
func (r *Registry) Snapshot() []Point {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		fams[name] = f
	}
	r.mu.RUnlock()
	sort.Strings(names)

	var out []Point
	for _, name := range names {
		f := fams[name]
		f.mu.Lock()
		sigs := make([]string, 0, len(f.children))
		for sig := range f.children {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			c := f.children[sig]
			p := Point{Name: name, Labels: c.labels, Kind: f.kind.String()}
			switch f.kind {
			case kindCounter:
				p.Value = float64(c.ctr.Value())
			case kindGauge:
				p.Value = float64(c.gauge.Value())
			case kindHistogram:
				p.Value = float64(c.hist.Count())
				p.Hist = c.hist
			case kindHeatmap:
				p.Value = float64(c.heat.Count())
				p.Heat = c.heat
			}
			out = append(out, p)
		}
		f.mu.Unlock()
	}
	return out
}

// Reset drops every family (benchmark isolation; not for hot paths —
// cached handles in instrumented layers keep recording into the old
// metrics after a Reset, so only use it around whole-process runs).
func (r *Registry) Reset() {
	r.mu.Lock()
	r.families = make(map[string]*family)
	r.mu.Unlock()
}

// inf is the implicit last histogram bucket bound.
var inf = math.Inf(1)
