package telemetry

import (
	"fmt"
	"math"
	"sort"
)

// Snapshot/delta encoding: the serializable view of a registry. A peer
// exports its registry, subtracts the previous export to get a compact
// delta, and ships the delta to the bootstrap (telemetry.report verb);
// the bootstrap merges each report into a cluster registry. Every type
// here is exported-fields-only so it crosses pnet's gob transport
// unchanged. Merging is lossless at bucket resolution: histograms with
// identical bounds add bucket-wise, so quantiles of a merged cluster
// histogram equal quantiles of one histogram fed the union of the
// shards' observations.

// HistogramSnapshot is a frozen, serializable histogram: bucket bounds,
// per-bucket counts (last entry is the implicit +Inf overflow bucket),
// and the running sum.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1; last is the +Inf bucket
	Sum    float64
}

// Snapshot freezes the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Bounds: h.Bounds(),
		Counts: h.BucketCounts(),
		Sum:    h.Sum(),
	}
}

// Merge adds a snapshot's buckets into the live histogram. The bounds
// must match exactly — merging histograms with different bucket layouts
// cannot be lossless, so it is refused rather than approximated.
func (h *Histogram) Merge(s HistogramSnapshot) error {
	if h == nil {
		return fmt.Errorf("telemetry: merge into nil histogram")
	}
	if err := boundsMatch(h.bounds, s.Bounds, s.Counts); err != nil {
		return err
	}
	var total int64
	for i, c := range s.Counts {
		if c < 0 {
			return fmt.Errorf("telemetry: merge: negative bucket count %d", c)
		}
		h.counts[i].Add(c)
		total += c
	}
	h.count.Add(total)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + s.Sum)
		if h.sum.CompareAndSwap(old, next) {
			return nil
		}
	}
}

func boundsMatch(bounds, other []float64, counts []int64) error {
	if len(other) != len(bounds) {
		return fmt.Errorf("telemetry: merge: %d bounds vs %d", len(other), len(bounds))
	}
	for i, b := range bounds {
		if other[i] != b {
			return fmt.Errorf("telemetry: merge: bound[%d]=%g vs %g", i, other[i], b)
		}
	}
	if len(counts) != len(bounds)+1 {
		return fmt.Errorf("telemetry: merge: %d counts for %d bounds", len(counts), len(bounds))
	}
	return nil
}

// Count returns the total observations in the snapshot.
func (s HistogramSnapshot) Count() int64 {
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	return total
}

// Quantile estimates the q-quantile of the frozen distribution with the
// same estimator as the live Histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || q <= 0 || q >= 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(s.Counts)-1 {
			return s.Bounds[len(s.Bounds)-1] // overflow bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	return math.NaN()
}

// Sub returns s minus prev bucket-wise — the delta of two snapshots of
// the same histogram. Mismatched bounds or a counter that went backwards
// (the histogram was replaced underneath) fall back to the absolute
// snapshot s.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if boundsMatch(s.Bounds, prev.Bounds, prev.Counts) != nil {
		return HistogramSnapshot{
			Bounds: append([]float64(nil), s.Bounds...),
			Counts: append([]int64(nil), s.Counts...),
			Sum:    s.Sum,
		}
	}
	out := HistogramSnapshot{
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: make([]int64, len(s.Counts)),
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] - prev.Counts[i]
		if out.Counts[i] < 0 { // bounds changed underneath: fall back to absolute
			copy(out.Counts, s.Counts)
			out.Sum = s.Sum
			break
		}
	}
	return out
}

// PointSnapshot is one serialized metric sample.
type PointSnapshot struct {
	Name   string
	Labels []Label
	Kind   string // "counter", "gauge", "histogram", "heatmap"
	Value  float64
	Hist   *HistogramSnapshot // set for histograms
	Heat   *HeatmapSnapshot   // set for heatmaps
}

// key is the dedup/delta identity of a point.
func (p PointSnapshot) key() string { return p.Name + "\x00" + signature(p.Labels) }

// RegistrySnapshot is a full serializable dump of a registry, sorted by
// name then label signature.
type RegistrySnapshot struct {
	Points []PointSnapshot
}

// Export freezes every metric into a serializable snapshot — the wire
// twin of Snapshot(), which returns live handles.
func (r *Registry) Export() RegistrySnapshot {
	pts := r.Snapshot()
	out := RegistrySnapshot{Points: make([]PointSnapshot, 0, len(pts))}
	for _, p := range pts {
		ps := PointSnapshot{
			Name:   p.Name,
			Labels: append([]Label(nil), p.Labels...),
			Kind:   p.Kind,
			Value:  p.Value,
		}
		if p.Hist != nil {
			hs := p.Hist.Snapshot()
			ps.Hist = &hs
		}
		if p.Heat != nil {
			hs := p.Heat.Snapshot()
			ps.Heat = &hs
		}
		out.Points = append(out.Points, ps)
	}
	return out
}

// Delta returns the change from prev to s: counters and histograms are
// subtracted point-wise (a point absent from prev counts from zero),
// gauges pass through absolutely, and points with no activity since
// prev are dropped. Shipping deltas keeps the per-epoch report
// proportional to recent activity, not registry size.
func (s RegistrySnapshot) Delta(prev RegistrySnapshot) RegistrySnapshot {
	old := make(map[string]PointSnapshot, len(prev.Points))
	for _, p := range prev.Points {
		old[p.key()] = p
	}
	var out RegistrySnapshot
	for _, p := range s.Points {
		q, had := old[p.key()]
		switch p.Kind {
		case "counter":
			v := p.Value
			if had {
				v -= q.Value
			}
			if v <= 0 {
				continue
			}
			p.Value = v
		case "gauge":
			if had && p.Value == q.Value {
				continue
			}
		case "histogram":
			if p.Hist == nil {
				continue
			}
			h := *p.Hist
			if had && q.Hist != nil && boundsMatch(h.Bounds, q.Hist.Bounds, q.Hist.Counts) == nil {
				h = h.Sub(*q.Hist)
			}
			if h.Count() == 0 {
				continue
			}
			p.Hist = &h
			p.Value = float64(h.Count())
		case "heatmap":
			if p.Heat == nil {
				continue
			}
			h := *p.Heat
			if had && q.Heat != nil {
				h = h.Sub(*q.Heat)
			}
			if h.Count() == 0 {
				continue
			}
			p.Heat = &h
			p.Value = float64(h.Count())
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// Merge absorbs a snapshot into the registry, adding extra labels to
// every point (the collector adds peer=<reporter> so disjoint per-peer
// registries merge without collisions). Counters add, gauges overwrite,
// histograms merge bucket-wise; a histogram whose bounds conflict with
// an existing family child is skipped and reported in the error.
func (r *Registry) Merge(s RegistrySnapshot, extra ...Label) error {
	var firstErr error
	for _, p := range s.Points {
		labels := p.Labels
		if len(extra) > 0 {
			labels = append(append([]Label(nil), p.Labels...), extra...)
		}
		switch p.Kind {
		case "counter":
			c := r.Counter(p.Name, labels...)
			c.v.Add(int64(p.Value))
		case "gauge":
			r.Gauge(p.Name, labels...).v.Store(int64(p.Value))
		case "histogram":
			if p.Hist == nil {
				continue
			}
			h := r.Histogram(p.Name, p.Hist.Bounds, labels...)
			if err := h.Merge(*p.Hist); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", p.Name, err)
			}
		case "heatmap":
			if p.Heat == nil {
				continue
			}
			h := r.Heatmap(p.Name, len(p.Heat.Buckets), labels...)
			if err := h.Merge(*p.Heat); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", p.Name, err)
			}
		}
	}
	return firstErr
}

// Find returns the first point matching name and every given label, or
// false. Convenience for collectors and tests reading merged state.
func (s RegistrySnapshot) Find(name string, labels ...Label) (PointSnapshot, bool) {
	for _, p := range s.Points {
		if p.Name != name {
			continue
		}
		ok := true
		for _, want := range labels {
			found := false
			for _, l := range p.Labels {
				if l == want {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return p, true
		}
	}
	return PointSnapshot{}, false
}

// Sort orders points by name then label signature (Export already
// returns sorted points; use after building snapshots by hand).
func (s *RegistrySnapshot) Sort() {
	sort.Slice(s.Points, func(i, j int) bool {
		if s.Points[i].Name != s.Points[j].Name {
			return s.Points[i].Name < s.Points[j].Name
		}
		return signature(s.Points[i].Labels) < signature(s.Points[j].Labels)
	})
}

// Report is one peer's telemetry push to the bootstrap: a delta since
// the previous report (Seq orders reports from one peer). It is the
// payload of the telemetry.report verb; gob registration lives in the
// peer package because telemetry sits below pnet.
type Report struct {
	Peer  string
	Seq   uint64
	Delta RegistrySnapshot
}
