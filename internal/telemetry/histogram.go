package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket streaming histogram. Observations are two
// atomic adds (bucket + count) and one atomic float accumulation; no
// allocation, no locks, safe from any number of goroutines. Quantiles
// are estimated by linear interpolation inside the bucket containing
// the target rank — the standard Prometheus-style estimator, accurate
// to the bucket resolution.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	// exemplars holds the latest traced observation per bucket
	// (ObserveExemplar): a p99 overrun read off the tail buckets links
	// straight to a replayable trace ID. Latest-wins per bucket, so the
	// memory cost is one pointer per bucket regardless of traffic.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar is one traced observation attached to a histogram bucket —
// the bridge from an aggregate latency tail to the concrete trace that
// produced it.
type Exemplar struct {
	Value   float64
	TraceID uint64
}

// DurationBuckets returns the default latency bounds in seconds:
// 10µs … 10s, roughly exponential. In-process peer calls sit in the
// lowest buckets; TCP-remote calls and MR jobs span the rest.
func DurationBuckets() []float64 {
	return []float64{
		10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
		250e-3, 500e-3, 1, 2.5, 5, 10,
	}
}

// SizeBuckets returns bounds for byte volumes: 64B … 256MB.
func SizeBuckets() []float64 {
	return []float64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
		256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20}
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets()
	}
	bs := append([]float64(nil), bounds...)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:    bs,
		counts:    make([]atomic.Int64, len(bs)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.ObserveExemplar(v, 0)
}

// ObserveExemplar records one value and, when traceID is non-zero,
// stamps the observation's bucket with a {value, trace ID} exemplar
// (latest observation wins). Tail buckets thus always carry the most
// recent slow trace: reading the highest populated exemplar answers
// "show me a query that actually paid that p99".
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	if traceID != 0 {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID})
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket observation counts; the last
// entry is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Exemplars returns the per-bucket exemplars (nil entries for buckets
// that never saw a traced observation; the last entry is the +Inf
// bucket's).
func (h *Histogram) Exemplars() []*Exemplar {
	if h == nil {
		return nil
	}
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// TailExemplar returns the exemplar of the highest bucket holding one —
// the slowest traced observation class — and false when no traced
// observation was ever recorded.
func (h *Histogram) TailExemplar() (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	for i := len(h.exemplars) - 1; i >= 0; i-- {
		if e := h.exemplars[i].Load(); e != nil {
			return *e, true
		}
	}
	return Exemplar{}, false
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by interpolating inside the bucket holding the target
// rank. With no observations it returns NaN; ranks landing in the +Inf
// bucket clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	counts := h.BucketCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || q <= 0 || q >= 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(counts)-1 {
			return h.bounds[len(h.bounds)-1] // overflow bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	return math.NaN()
}

// Quantiles returns the standard p50/p95/p99 triple.
func (h *Histogram) Quantiles() (p50, p95, p99 float64) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}
