package histogram

import (
	"fmt"
	"math"
	"sort"

	"bestpeer/internal/baton"
)

// IDistance maps multi-dimensional points to one-dimensional keys
// (Jagadish, Ooi, Tan, Yu, Zhang; TODS 2005): space is partitioned by a
// set of reference points; a point p in partition i (its nearest
// reference) maps to key i·C + dist(p, ref_i). BestPeer++ uses it to
// turn histogram buckets (hyper-rectangles, represented by their
// centers) into keys indexable by BATON (§5.1).
type IDistance struct {
	Refs [][]float64
	// C is the per-partition stride; it must exceed any point's distance
	// to its nearest reference so partitions never overlap in key space.
	C float64
}

// NewIDistance builds a mapping with the given reference points.
func NewIDistance(refs [][]float64, c float64) (*IDistance, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("idistance: need at least one reference point")
	}
	if c <= 0 {
		return nil, fmt.Errorf("idistance: stride C must be positive")
	}
	return &IDistance{Refs: refs, C: c}, nil
}

// GridRefs generates reference points for the bounding box [lo, hi]: the
// box center plus each corner-ward midpoint, a simple spread that keeps
// partitions compact. The stride is the box diagonal.
func GridRefs(lo, hi []float64) (*IDistance, error) {
	if len(lo) != len(hi) || len(lo) == 0 {
		return nil, fmt.Errorf("idistance: bad bounding box")
	}
	dims := len(lo)
	center := make([]float64, dims)
	diag := 0.0
	for i := range lo {
		center[i] = (lo[i] + hi[i]) / 2
		d := hi[i] - lo[i]
		diag += d * d
	}
	diag = math.Sqrt(diag)
	if diag == 0 {
		diag = 1
	}
	refs := [][]float64{center}
	// One reference midway toward each corner of the box (2^dims corners
	// capped at 8 to keep the partition count bounded).
	corners := 1 << dims
	if corners > 8 {
		corners = 8
	}
	for c := 0; c < corners; c++ {
		p := make([]float64, dims)
		for i := 0; i < dims; i++ {
			if c&(1<<i) != 0 {
				p[i] = (center[i] + hi[i]) / 2
			} else {
				p[i] = (center[i] + lo[i]) / 2
			}
		}
		refs = append(refs, p)
	}
	return NewIDistance(refs, diag+1)
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// partition returns the nearest reference index and the distance to it.
func (m *IDistance) partition(p []float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for i, r := range m.Refs {
		if d := dist(p, r); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// Key maps a point to its one-dimensional iDistance key.
func (m *IDistance) Key(p []float64) float64 {
	i, d := m.partition(p)
	if d >= m.C {
		d = m.C - 1e-9 // clamp: point farther than the stride bound
	}
	return float64(i)*m.C + d
}

// MaxKey returns the exclusive upper bound of the key space.
func (m *IDistance) MaxKey() float64 { return float64(len(m.Refs)) * m.C }

// RegionRanges returns, per partition, the key interval that any point
// of the region [lo, hi] could map into: [i·C + minDist, i·C + maxDist].
// A range query over these intervals retrieves every candidate point in
// the region (plus false positives filtered by the caller).
func (m *IDistance) RegionRanges(lo, hi []float64) [][2]float64 {
	out := make([][2]float64, 0, len(m.Refs))
	for i, r := range m.Refs {
		minD, maxD := regionDistance(r, lo, hi)
		if minD >= m.C {
			minD = m.C - 1e-9
		}
		if maxD >= m.C {
			maxD = m.C - 1e-9
		}
		out = append(out, [2]float64{float64(i)*m.C + minD, float64(i)*m.C + maxD})
	}
	return out
}

// regionDistance returns the min and max Euclidean distance from point p
// to the box [lo, hi].
func regionDistance(p, lo, hi []float64) (minD, maxD float64) {
	var minS, maxS float64
	for i := range p {
		var dMin float64
		switch {
		case p[i] < lo[i]:
			dMin = lo[i] - p[i]
		case p[i] > hi[i]:
			dMin = p[i] - hi[i]
		}
		dMax := math.Max(math.Abs(p[i]-lo[i]), math.Abs(p[i]-hi[i]))
		minS += dMin * dMin
		maxS += dMax * dMax
	}
	return math.Sqrt(minS), math.Sqrt(maxS)
}

// BucketEntry is the overlay payload for one published histogram bucket.
type BucketEntry struct {
	Table   string
	Columns []string
	Bucket  Bucket
}

// bucketName returns the overlay item name for bucket i of a table.
func bucketName(table string, i int) string {
	return fmt.Sprintf("HB:%s:%d", table, i)
}

// Publish writes every bucket of a histogram into the overlay, keyed by
// the iDistance of the bucket center. Re-publishing first removes the
// owner's previous buckets for the table.
func Publish(node *baton.Node, owner string, h *Histogram, m *IDistance) error {
	// Remove previous publication (bounded probe: bucket counts are
	// small; stop at the first missing name after the new count).
	for i := 0; ; i++ {
		deleted, _, err := node.Delete(bucketName(h.Table, i), owner)
		if err != nil {
			return err
		}
		if deleted == 0 && i >= len(h.Buckets) {
			break
		}
	}
	for i, b := range h.Buckets {
		center := make([]float64, len(b.Lo))
		for d := range b.Lo {
			center[d] = (b.Lo[d] + b.Hi[d]) / 2
		}
		key := baton.FloatKey(m.Key(center), 0, m.MaxKey())
		entry := BucketEntry{Table: h.Table, Columns: h.Columns, Bucket: b}
		_, err := node.Insert(baton.Item{
			Key:   key,
			Name:  bucketName(h.Table, i),
			Owner: owner,
			Value: entry,
			Size:  int64(16*len(b.Lo) + 16),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// FetchForRegion retrieves the published buckets of a table whose
// hyper-rectangles overlap the region, using iDistance range searches to
// visit only the relevant part of the overlay key space.
func FetchForRegion(node *baton.Node, table string, m *IDistance, region []Interval1) ([]Bucket, error) {
	lo := make([]float64, len(region))
	hi := make([]float64, len(region))
	for i, iv := range region {
		lo[i], hi[i] = iv.Lo, iv.Hi
	}
	seen := make(map[string]bool)
	var out []Bucket
	for _, kr := range m.RegionRanges(lo, hi) {
		bLo := baton.FloatKey(kr[0], 0, m.MaxKey())
		bHi := baton.FloatKey(kr[1], 0, m.MaxKey())
		if bHi <= bLo {
			bHi = bLo + 1e-12
		}
		items, _, err := node.RangeSearch(baton.KeyRange{Lo: bLo, Hi: bHi})
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			entry, ok := it.Value.(BucketEntry)
			if !ok || entry.Table != table || seen[it.Name+"@"+it.Owner] {
				continue
			}
			seen[it.Name+"@"+it.Owner] = true
			if entry.Bucket.overlapFraction(region) > 0 {
				out = append(out, entry.Bucket)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo[0] < out[j].Lo[0] })
	return out, nil
}
