package histogram

import "bestpeer/internal/pnet"

// Register the published bucket payload for the TCP transport.
func init() {
	pnet.RegisterPayload(BucketEntry{})
}
