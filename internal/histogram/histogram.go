// Package histogram implements the statistics layer of BestPeer++'s
// pay-as-you-go query processing (paper §5.1).
//
// Because attributes in a relation are correlated, BestPeer++ keeps
// multi-dimensional histograms, built MHIST-style (Poosala & Ioannidis):
// starting from one bucket covering the data, the bucket holding the
// most skew is repeatedly split along its most valuable attribute until
// the bucket budget is reached. The resulting hyper-rectangular buckets
// are mapped to one-dimensional keys with iDistance (Jagadish et al.)
// and published into the BATON overlay, so any peer's query planner can
// fetch the buckets overlapping a query region.
//
// The estimators at the bottom of this file are the paper's formulas:
// relation size ES(R), per-histogram region counts EC(H(R)), and the
// pairwise join result size ES(q) = EC(H(Rx))·EC(H(Ry)) / Π W_i.
package histogram

import (
	"fmt"
	"math"
	"sort"
)

// Bucket is one hyper-rectangle of a multi-dimensional histogram, with
// inclusive bounds and a tuple count.
type Bucket struct {
	Lo, Hi []float64
	Count  int64
}

// volume returns the bucket's d-dimensional volume; degenerate (point)
// dimensions count as width 1 so densities stay finite.
func (b Bucket) volume() float64 {
	v := 1.0
	for i := range b.Lo {
		w := b.Hi[i] - b.Lo[i]
		if w <= 0 {
			w = 1
		}
		v *= w
	}
	return v
}

// overlapFraction returns Area_o(b, region) / Area(b): the fraction of
// the bucket's volume covered by the query region (paper's EC formula).
func (b Bucket) overlapFraction(region []Interval1) float64 {
	f := 1.0
	for i := range b.Lo {
		if i >= len(region) {
			continue
		}
		r := region[i]
		lo := math.Max(b.Lo[i], r.Lo)
		hi := math.Min(b.Hi[i], r.Hi)
		if hi < lo {
			return 0
		}
		w := b.Hi[i] - b.Lo[i]
		if w <= 0 {
			// Point dimension: inside or outside.
			continue
		}
		f *= (hi - lo) / w
	}
	return f
}

// Interval1 is a closed interval on one dimension; use ±Inf for
// unbounded sides.
type Interval1 struct {
	Lo, Hi float64
}

// FullInterval returns the unbounded interval.
func FullInterval() Interval1 {
	return Interval1{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// Width returns the interval's width (W_i in the paper's Eq. for ES(q)).
func (iv Interval1) Width() float64 { return iv.Hi - iv.Lo }

// Histogram is a multi-dimensional histogram over the listed columns of
// one global table.
type Histogram struct {
	Table   string
	Columns []string
	Buckets []Bucket
}

// Build constructs an MHIST-style histogram over points (each point has
// one coordinate per column), using at most maxBuckets buckets. The
// split heuristic picks the bucket with the largest count and splits it
// along the attribute with the greatest normalized spread at the median,
// iterating "until enough histogram buckets are generated" (§5.1).
func Build(table string, columns []string, points [][]float64, maxBuckets int) (*Histogram, error) {
	if maxBuckets < 1 {
		return nil, fmt.Errorf("histogram: maxBuckets must be >= 1")
	}
	dims := len(columns)
	for _, p := range points {
		if len(p) != dims {
			return nil, fmt.Errorf("histogram: point has %d dims, want %d", len(p), dims)
		}
	}
	h := &Histogram{Table: table, Columns: columns}
	if len(points) == 0 {
		return h, nil
	}

	type workBucket struct {
		points [][]float64
	}
	bounds := func(pts [][]float64) (lo, hi []float64) {
		lo = make([]float64, dims)
		hi = make([]float64, dims)
		copy(lo, pts[0])
		copy(hi, pts[0])
		for _, p := range pts[1:] {
			for i, v := range p {
				if v < lo[i] {
					lo[i] = v
				}
				if v > hi[i] {
					hi[i] = v
				}
			}
		}
		return lo, hi
	}

	work := []workBucket{{points: points}}
	for len(work) < maxBuckets {
		// The "most valuable" bucket to split: largest population with a
		// non-degenerate extent.
		best := -1
		for i, wb := range work {
			if len(wb.points) < 2 {
				continue
			}
			lo, hi := bounds(wb.points)
			degenerate := true
			for d := 0; d < dims; d++ {
				if hi[d] > lo[d] {
					degenerate = false
					break
				}
			}
			if degenerate {
				continue
			}
			if best < 0 || len(wb.points) > len(work[best].points) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		wb := work[best]
		lo, hi := bounds(wb.points)
		// Most valuable attribute: the one with the largest spread
		// relative to the bucket (a MaxDiff surrogate over spread).
		dim := 0
		bestSpread := -1.0
		for d := 0; d < dims; d++ {
			spread := hi[d] - lo[d]
			if spread > bestSpread {
				bestSpread, dim = spread, d
			}
		}
		sort.Slice(wb.points, func(i, j int) bool { return wb.points[i][dim] < wb.points[j][dim] })
		// Split at the median value boundary so no value straddles both
		// halves.
		mid := len(wb.points) / 2
		splitVal := wb.points[mid][dim]
		cut := sort.Search(len(wb.points), func(i int) bool { return wb.points[i][dim] >= splitVal })
		if cut == 0 || cut == len(wb.points) {
			// All points share the median value along dim; try cutting
			// after the run of equal values.
			cut = sort.Search(len(wb.points), func(i int) bool { return wb.points[i][dim] > splitVal })
			if cut == len(wb.points) {
				break
			}
		}
		left := workBucket{points: wb.points[:cut]}
		right := workBucket{points: wb.points[cut:]}
		work[best] = left
		work = append(work, right)
	}

	for _, wb := range work {
		lo, hi := bounds(wb.points)
		h.Buckets = append(h.Buckets, Bucket{Lo: lo, Hi: hi, Count: int64(len(wb.points))})
	}
	return h, nil
}

// EstimateSize implements ES(R): the estimated relation cardinality, the
// sum of all bucket counts.
func (h *Histogram) EstimateSize() float64 {
	var s float64
	for _, b := range h.Buckets {
		s += float64(b.Count)
	}
	return s
}

// EstimateRegion implements EC(H(R)): the estimated number of tuples in
// the query region, assuming uniformity within each bucket. The region
// has one interval per histogram column; missing trailing intervals are
// unbounded.
func (h *Histogram) EstimateRegion(region []Interval1) float64 {
	var s float64
	for _, b := range h.Buckets {
		s += float64(b.Count) * b.overlapFraction(region)
	}
	return s
}

// Selectivity returns EC / ES: the fraction of the relation inside the
// region (g(i) in the paper's cost model notation).
func (h *Histogram) Selectivity(region []Interval1) float64 {
	total := h.EstimateSize()
	if total == 0 {
		return 0
	}
	return h.EstimateRegion(region) / total
}

// EstimateJoinSize implements ES(q) = EC(H(Rx)) · EC(H(Ry)) / Π W_i:
// the estimated result size of an equi-join restricted to a query
// region whose width along dimension i is widths[i]. Unbounded or
// degenerate widths are skipped (they contribute no reduction).
func EstimateJoinSize(ecx, ecy float64, widths []float64) float64 {
	denom := 1.0
	for _, w := range widths {
		if w > 0 && !math.IsInf(w, 1) {
			denom *= w
		}
	}
	if denom <= 0 {
		denom = 1
	}
	return ecx * ecy / denom
}
