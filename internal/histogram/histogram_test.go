package histogram

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"bestpeer/internal/baton"
	"bestpeer/internal/pnet"
)

func uniformPoints(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 100, rng.Float64() * 10}
	}
	return pts
}

func TestBuildBucketCountAndTotal(t *testing.T) {
	pts := uniformPoints(1000, 1)
	h, err := Build("t", []string{"a", "b"}, pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Buckets) == 0 || len(h.Buckets) > 16 {
		t.Fatalf("buckets = %d", len(h.Buckets))
	}
	if h.EstimateSize() != 1000 {
		t.Errorf("ES(R) = %v, want 1000", h.EstimateSize())
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build("t", []string{"a"}, nil, 0); err == nil {
		t.Error("maxBuckets=0 accepted")
	}
	if _, err := Build("t", []string{"a"}, [][]float64{{1, 2}}, 4); err == nil {
		t.Error("dimension mismatch accepted")
	}
	h, err := Build("t", []string{"a"}, nil, 4)
	if err != nil || len(h.Buckets) != 0 {
		t.Errorf("empty build = %+v, %v", h, err)
	}
}

func TestBuildDegenerateData(t *testing.T) {
	// All points identical: one bucket, never an infinite loop.
	pts := make([][]float64, 50)
	for i := range pts {
		pts[i] = []float64{7, 7}
	}
	h, err := Build("t", []string{"a", "b"}, pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Buckets) != 1 || h.Buckets[0].Count != 50 {
		t.Fatalf("buckets = %+v", h.Buckets)
	}
}

func TestEstimateRegionUniform(t *testing.T) {
	pts := uniformPoints(10_000, 2)
	h, err := Build("t", []string{"a", "b"}, pts, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Query region covering ~25% of dimension a, all of b.
	region := []Interval1{{Lo: 0, Hi: 25}, FullInterval()}
	est := h.EstimateRegion(region)
	actual := 0
	for _, p := range pts {
		if p[0] <= 25 {
			actual++
		}
	}
	if math.Abs(est-float64(actual)) > float64(actual)/5 {
		t.Errorf("EC = %v, actual %d (>20%% off)", est, actual)
	}
	sel := h.Selectivity(region)
	if math.Abs(sel-0.25) > 0.08 {
		t.Errorf("selectivity = %v, want ~0.25", sel)
	}
}

func TestEstimateRegionSkewedBeatsOneBucket(t *testing.T) {
	// 90% of the data in [0,10), 10% in [90,100): multi-bucket histogram
	// must estimate a query on the dense region much better than a
	// single bucket would.
	var pts [][]float64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 900; i++ {
		pts = append(pts, []float64{rng.Float64() * 10})
	}
	for i := 0; i < 100; i++ {
		pts = append(pts, []float64{90 + rng.Float64()*10})
	}
	h, err := Build("t", []string{"a"}, pts, 16)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Build("t", []string{"a"}, pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	region := []Interval1{{Lo: 0, Hi: 10}}
	multi := h.EstimateRegion(region)
	single := one.EstimateRegion(region)
	if math.Abs(multi-900) > 90 {
		t.Errorf("multi-bucket EC = %v, want ~900", multi)
	}
	if math.Abs(single-900) < math.Abs(multi-900) {
		t.Errorf("single bucket (%v) beat multi (%v)?", single, multi)
	}
}

func TestEstimateJoinSize(t *testing.T) {
	// Paper Eq: ES(q) = EC(Hx)*EC(Hy) / prod(Wi).
	if got := EstimateJoinSize(100, 200, []float64{10}); got != 2000 {
		t.Errorf("ES(q) = %v, want 2000", got)
	}
	if got := EstimateJoinSize(100, 200, nil); got != 20000 {
		t.Errorf("no widths: %v", got)
	}
	if got := EstimateJoinSize(100, 200, []float64{math.Inf(1)}); got != 20000 {
		t.Errorf("inf width: %v", got)
	}
}

func TestIDistanceKeyPartitions(t *testing.T) {
	m, err := NewIDistance([][]float64{{0, 0}, {100, 100}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	kNear0 := m.Key([]float64{1, 1})
	kNear1 := m.Key([]float64{99, 99})
	if kNear0 >= 1000 {
		t.Errorf("near ref 0 key = %v", kNear0)
	}
	if kNear1 < 1000 || kNear1 >= 2000 {
		t.Errorf("near ref 1 key = %v", kNear1)
	}
	if m.MaxKey() != 2000 {
		t.Errorf("MaxKey = %v", m.MaxKey())
	}
}

func TestIDistanceValidation(t *testing.T) {
	if _, err := NewIDistance(nil, 10); err == nil {
		t.Error("no refs accepted")
	}
	if _, err := NewIDistance([][]float64{{0}}, 0); err == nil {
		t.Error("zero stride accepted")
	}
}

func TestIDistanceRegionRangesCoverKeys(t *testing.T) {
	m, err := GridRefs([]float64{0, 0}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	lo := []float64{20, 30}
	hi := []float64{60, 70}
	ranges := m.RegionRanges(lo, hi)
	for trial := 0; trial < 500; trial++ {
		p := []float64{
			lo[0] + rng.Float64()*(hi[0]-lo[0]),
			lo[1] + rng.Float64()*(hi[1]-lo[1]),
		}
		k := m.Key(p)
		covered := false
		for _, r := range ranges {
			if k >= r[0] && k <= r[1] {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("point %v key %v not covered by region ranges", p, k)
		}
	}
}

func TestPublishFetchRoundTrip(t *testing.T) {
	net := pnet.NewNetwork()
	o := baton.NewOverlay(net, "@overlay")
	nodes := make([]*baton.Node, 6)
	for i := range nodes {
		nodes[i] = baton.NewNode(net.Join(fmt.Sprintf("p%d", i)))
		if err := o.AddNode(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	pts := uniformPoints(2000, 5)
	h, err := Build("orders", []string{"a", "b"}, pts, 32)
	if err != nil {
		t.Fatal(err)
	}
	m, err := GridRefs([]float64{0, 0}, []float64{100, 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := Publish(nodes[0], "p0", h, m); err != nil {
		t.Fatal(err)
	}
	region := []Interval1{{Lo: 0, Hi: 50}, {Lo: 0, Hi: 10}}
	got, err := FetchForRegion(nodes[4], "orders", m, region)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no buckets fetched")
	}
	// The fetched buckets estimate the region as well as the full local
	// histogram does.
	var fetched Histogram
	fetched.Buckets = got
	est := fetched.EstimateRegion(region)
	want := h.EstimateRegion(region)
	if math.Abs(est-want) > want/100+1 {
		t.Errorf("fetched estimate %v != local %v", est, want)
	}
	// A different table name fetches nothing.
	none, err := FetchForRegion(nodes[2], "lineitem", m, region)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("cross-table leak: %d buckets", len(none))
	}
}

func TestRepublishReplaces(t *testing.T) {
	net := pnet.NewNetwork()
	o := baton.NewOverlay(net, "@overlay")
	node := baton.NewNode(net.Join("p0"))
	if err := o.AddNode(node); err != nil {
		t.Fatal(err)
	}
	m, err := GridRefs([]float64{0}, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	pts1 := make([][]float64, 100)
	for i := range pts1 {
		pts1[i] = []float64{float64(i)}
	}
	h1, err := Build("t", []string{"a"}, pts1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Publish(node, "p0", h1, m); err != nil {
		t.Fatal(err)
	}
	pts2 := pts1[:40]
	h2, _ := Build("t", []string{"a"}, pts2, 4)
	if err := Publish(node, "p0", h2, m); err != nil {
		t.Fatal(err)
	}
	got, err := FetchForRegion(node, "t", m, []Interval1{FullInterval()})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, b := range got {
		total += b.Count
	}
	if total != 40 {
		t.Errorf("after republish total = %d, want 40", total)
	}
}
