package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"bestpeer/internal/engine"
	"bestpeer/internal/indexer"
	"bestpeer/internal/mapreduce"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/tpch"
	"bestpeer/internal/vtime"
)

// This file measures the one thing the virtual-time experiments cannot:
// real wall-clock concurrency. Every figure benchmark charges remote
// rounds with vtime.Par whether or not the calls overlap in real time;
// the fan-out comparison below injects a fixed per-call service delay
// into a stub backend, so the measured wall clock exposes whether the
// engine's fetch round actually runs its data owners in parallel.

// FanoutResult is one sequential-vs-concurrent comparison, emitted as a
// JSON line so successive PRs can track the trajectory in BENCH_*.json.
type FanoutResult struct {
	Peers        int     `json:"peers"`
	DelayMS      float64 `json:"delay_ms"`
	SequentialMS float64 `json:"sequential_ms"`
	ConcurrentMS float64 `json:"concurrent_ms"`
	Speedup      float64 `json:"speedup"`
}

// JSONLine renders the result as a single JSON line.
func (r *FanoutResult) JSONLine() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// delayBackend is an engine.Backend whose remote calls each cost a
// fixed service delay, standing in for the network round trip and
// remote scan the in-process substrate completes instantly.
type delayBackend struct {
	delay   time.Duration
	peers   []string
	dbs     map[string]*sqldb.DB
	schemas map[string]*sqldb.Schema
	rates   vtime.Rates
}

func (b *delayBackend) Self() string                      { return b.peers[0] }
func (b *delayBackend) Schema(table string) *sqldb.Schema { return b.schemas[table] }
func (b *delayBackend) Gate([]string) error               { return nil }
func (b *delayBackend) MR() *mapreduce.Cluster            { return nil }
func (b *delayBackend) QueryTimestamp() uint64            { return 0 }
func (b *delayBackend) Rates() vtime.Rates                { return b.rates }

func (b *delayBackend) Locate(table string, _ []sqldb.Expr, _ []string) (indexer.Location, error) {
	loc := indexer.Location{Kind: indexer.KindTable}
	for _, id := range b.peers {
		t := b.dbs[id].Table(table)
		if t == nil || t.NumRows() == 0 {
			continue
		}
		loc.Peers = append(loc.Peers, id)
		loc.Entries = append(loc.Entries, indexer.TableEntry{
			Table: table, Peer: id, Rows: int64(t.NumRows()), Bytes: t.DataBytes(),
		})
	}
	if len(loc.Peers) == 0 {
		loc.Kind = indexer.KindNone
	}
	return loc, nil
}

func (b *delayBackend) SubQuery(peer string, req engine.SubQueryRequest) (*sqldb.Result, error) {
	time.Sleep(b.delay)
	db, ok := b.dbs[peer]
	if !ok {
		return nil, fmt.Errorf("bench: unknown peer %s", peer)
	}
	res, err := db.ExecStmt(req.Stmt)
	if err != nil {
		return nil, err
	}
	engine.ApplyBloomToResult(res, req.BloomColumn, req.Bloom)
	return res, nil
}

func (b *delayBackend) JoinAt(peer string, task engine.JoinTask) (*sqldb.Result, error) {
	local, err := b.SubQuery(peer, task.Local)
	if err != nil {
		return nil, err
	}
	res, err := engine.ExecuteJoinTask(task, local.Rows)
	if err != nil {
		return nil, err
	}
	res.Stats.BytesScanned = local.Stats.BytesScanned
	for _, r := range res.Rows {
		res.Stats.BytesReturned += int64(r.EncodedSize())
	}
	return res, nil
}

// FanoutWallClock builds the given number of data peers, charges every
// remote call the service delay, and times the same multi-peer fetch
// under sequential (FanoutWidth 1) and concurrent (default width)
// execution. Both runs must produce identical results — the engines'
// determinism tests pin that — so the comparison isolates dispatch.
func FanoutWallClock(peers int, delay time.Duration) (*FanoutResult, error) {
	b := &delayBackend{
		delay:   delay,
		dbs:     make(map[string]*sqldb.DB),
		schemas: make(map[string]*sqldb.Schema),
		rates:   vtime.DefaultRates(),
	}
	for _, s := range tpch.Schemas(false) {
		b.schemas[s.Table] = s
	}
	for i := 0; i < peers; i++ {
		id := fmt.Sprintf("peer-%02d", i)
		b.peers = append(b.peers, id)
		db := sqldb.NewDB()
		sc := tpch.Scale{ScaleFactor: 0.0005, Peer: i, NumPeers: peers, NationKey: -1, Tables: []string{tpch.LineItem}}
		if err := tpch.Generate(db, sc); err != nil {
			return nil, err
		}
		b.dbs[id] = db
	}
	stmt, err := sqldb.ParseSelect("SELECT l_orderkey, l_extendedprice FROM lineitem")
	if err != nil {
		return nil, err
	}
	run := func(width int) (time.Duration, error) {
		best := time.Duration(0)
		for trial := 0; trial < 3; trial++ {
			e := &engine.Basic{B: b, Opts: engine.Options{FanoutWidth: width}}
			start := time.Now()
			if _, err := e.Execute(stmt); err != nil {
				return 0, err
			}
			if d := time.Since(start); trial == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	seq, err := run(1)
	if err != nil {
		return nil, err
	}
	conc, err := run(0)
	if err != nil {
		return nil, err
	}
	r := &FanoutResult{
		Peers:        peers,
		DelayMS:      float64(delay) / float64(time.Millisecond),
		SequentialMS: float64(seq) / float64(time.Millisecond),
		ConcurrentMS: float64(conc) / float64(time.Millisecond),
	}
	if conc > 0 {
		r.Speedup = float64(seq) / float64(conc)
	}
	return r, nil
}
