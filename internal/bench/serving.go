package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"bestpeer/internal/serving"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/throughput"
	"bestpeer/internal/tpch"
)

// This file prices the serving tier at saturation: 1k+ real concurrent
// client sessions (goroutines, wall clock — not the virtual-time
// simulator) multiplexed over the message substrate into a handful of
// peers, with the admission queue deliberately undersized so the tier
// must shed. The benchmark runs the same repeated-query mix twice —
// result cache bypassed, then enabled — and reports per-class
// QPS/p95/p99, typed-rejection counts, and the cache counters, so both
// tentpole claims (graceful shedding with bounded admitted-interactive
// p99, measurable cache QPS win) are a single JSON line apart.

// ServingClassStats is one admission class's measured outcome.
type ServingClassStats struct {
	Clients   int     `json:"clients"`
	Completed int64   `json:"completed"`
	Rejected  int64   `json:"rejected"`
	Failed    int64   `json:"failed"`
	QPS       float64 `json:"qps"`
	AvgMS     float64 `json:"avg_ms"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
}

// ServingPhase is one run of the client fleet under a cache mode.
type ServingPhase struct {
	Cache       string            `json:"cache"`
	Interactive ServingClassStats `json:"interactive"`
	Batch       ServingClassStats `json:"batch"`
	TotalQPS    float64           `json:"total_qps"`
	// Telemetry deltas over the phase.
	Shed       int64 `json:"shed_total"`
	CacheHits  int64 `json:"cache_hits"`
	CacheMiss  int64 `json:"cache_misses"`
	CacheEvict int64 `json:"cache_evictions"`
}

// ServingSaturationResult is one saturation comparison, emitted as a
// JSON line for BENCH_serving.json.
type ServingSaturationResult struct {
	Peers       int          `json:"peers"`
	Clients     int          `json:"clients"`
	Interactive int          `json:"interactive_clients"`
	Batch       int          `json:"batch_clients"`
	DurationS   float64      `json:"phase_duration_s"`
	Workers     int          `json:"workers_per_peer"`
	NoCache     ServingPhase `json:"no_cache"`
	WithCache   ServingPhase `json:"with_cache"`
	// CacheSpeedup is total with-cache QPS over total no-cache QPS.
	CacheSpeedup float64 `json:"cache_speedup"`
}

// JSONLine renders the result as a single JSON line.
func (r *ServingSaturationResult) JSONLine() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// servingShedTotal sums the typed-rejection counters over both classes.
func servingShedTotal() int64 {
	var n int64
	for _, class := range []string{serving.ClassInteractive, serving.ClassBatch} {
		n += telemetry.Default.Counter("serving_shed_total", telemetry.L("class", class)).Value()
	}
	return n
}

// ServingSaturation drives clients concurrent sessions (3 interactive :
// 1 batch) against a peers-node loaded network for duration per phase.
func ServingSaturation(peers, clients int, duration time.Duration) (*ServingSaturationResult, error) {
	if peers < 1 || clients < 1 {
		return nil, fmt.Errorf("bench: serving saturation needs >=1 peer and >=1 client")
	}
	cfg := Default()
	cfg.PerNodeSF = 0.002
	net, err := buildBestPeer(cfg, peers)
	if err != nil {
		return nil, err
	}
	// Undersized workers and tight wait budgets relative to the fleet
	// force the saturation the benchmark is about; the queue is deep
	// enough that shedding comes from the quantile feedback, not a
	// trivially full queue.
	net.EnableServing(serving.Config{
		Workers:    8,
		QueueDepth: clients,
		ShedP95:    40 * time.Millisecond,
		ShedP99:    80 * time.Millisecond,
		ShedWindow: 500 * time.Millisecond,
	})

	// The repeated-query mix: small aggregates, rotated per client, so
	// the with-cache phase sees genuine repeats without every client
	// hammering one key.
	queries := []string{
		`SELECT COUNT(*) FROM lineitem`,
		tpch.Q1Default(),
		`SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority`,
		`SELECT COUNT(*) FROM orders`,
	}

	batchShare := clients / 4
	interShare := clients - batchShare

	// One session per simulated client, spread round-robin over peers.
	openAll := func(class string, count, offset int) ([]*serving.Client, error) {
		out := make([]*serving.Client, count)
		for c := 0; c < count; c++ {
			cl := net.ServingClient(fmt.Sprintf("bench-%s-%04d", class, c), (offset+c)%peers)
			if err := cl.Open("", class, ""); err != nil {
				return nil, fmt.Errorf("bench: opening %s session %d: %w", class, c, err)
			}
			out[c] = cl
		}
		return out, nil
	}
	interClients, err := openAll(serving.ClassInteractive, interShare, 0)
	if err != nil {
		return nil, err
	}
	batchClients, err := openAll(serving.ClassBatch, batchShare, interShare)
	if err != nil {
		return nil, err
	}

	runPhase := func(mode serving.CacheMode) ServingPhase {
		shed0 := servingShedTotal()
		hits0 := counterValue("serving_cache_hits_total")
		miss0 := counterValue("serving_cache_misses_total")
		evict0 := counterValue("serving_cache_evictions_total")
		results := throughput.RunLive(duration,
			throughput.LiveClass{
				Name:    serving.ClassInteractive,
				Clients: interShare,
				Do: func(c int) error {
					_, err := interClients[c].Query(queries[c%len(queries)], mode)
					return err
				},
				IsRejection: serving.Overloaded,
				Backoff:     time.Millisecond,
			},
			throughput.LiveClass{
				Name:    serving.ClassBatch,
				Clients: batchShare,
				Do: func(c int) error {
					_, err := batchClients[c].Query(queries[c%len(queries)], mode)
					return err
				},
				IsRejection: serving.Overloaded,
				Backoff:     time.Millisecond,
			},
		)
		ph := ServingPhase{
			Cache:       mode.String(),
			Interactive: classStats(results[0]),
			Batch:       classStats(results[1]),
			Shed:        servingShedTotal() - shed0,
			CacheHits:   counterValue("serving_cache_hits_total") - hits0,
			CacheMiss:   counterValue("serving_cache_misses_total") - miss0,
			CacheEvict:  counterValue("serving_cache_evictions_total") - evict0,
		}
		ph.TotalQPS = ph.Interactive.QPS + ph.Batch.QPS
		return ph
	}

	r := &ServingSaturationResult{
		Peers:       peers,
		Clients:     clients,
		Interactive: interShare,
		Batch:       batchShare,
		DurationS:   duration.Seconds(),
		Workers:     8,
	}
	r.NoCache = runPhase(serving.CacheBypass)
	r.WithCache = runPhase(serving.CacheUse)
	if r.NoCache.TotalQPS > 0 {
		r.CacheSpeedup = r.WithCache.TotalQPS / r.NoCache.TotalQPS
	}
	for _, cl := range interClients {
		_, _ = cl.Close()
	}
	for _, cl := range batchClients {
		_, _ = cl.Close()
	}
	return r, nil
}

// classStats converts a live-driver result into the JSON shape.
func classStats(r throughput.ClassResult) ServingClassStats {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return ServingClassStats{
		Clients:   r.Clients,
		Completed: r.Completed,
		Rejected:  r.Rejected,
		Failed:    r.Failed,
		QPS:       r.QPS,
		AvgMS:     ms(r.Avg),
		P50MS:     ms(r.P50),
		P95MS:     ms(r.P95),
		P99MS:     ms(r.P99),
	}
}
