package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"bestpeer"
	"bestpeer/internal/peer"
	"bestpeer/internal/tpch"
)

// This file measures what the monitoring PLANE costs on top of the
// instrumentation: per-query recording into the peer's private
// registry, the epoch reporter loops exporting/delta-ing/pushing
// snapshots, and the bootstrap collector absorbing them into windows
// and the cluster registry. The comparison runs the fig-6 workload
// with reporters stopped, then with every peer reporting on a short
// epoch, telemetry enabled in both modes — so the delta isolates the
// monitoring plane itself, not the metric/span fast path (that one is
// TelemetryOverhead's job).

// MonitorOverheadResult is one baseline-vs-monitored comparison,
// emitted as a JSON line for BENCH_monitor.json.
type MonitorOverheadResult struct {
	Peers         int     `json:"peers"`
	Queries       int     `json:"queries"`
	ReportEpochMS float64 `json:"report_epoch_ms"`
	BaselineMS    float64 `json:"baseline_ms"`
	MonitoredMS   float64 `json:"monitored_ms"`
	OverheadPct   float64 `json:"overhead_pct"`
	// Reports counts the delta reports the collector absorbed across
	// all monitored batches — proof the plane was actually running
	// while it was being timed.
	Reports uint64 `json:"reports"`
}

// JSONLine renders the result as a single JSON line.
func (r *MonitorOverheadResult) JSONLine() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// MonitorOverhead times batches of the fig-6 query (Q1) on one loaded
// network with the monitoring plane off (no reporter loops) and on
// (every peer pushing delta reports each epoch, the bootstrap
// collector scoring them). Mirrors TelemetryOverhead's protocol:
// shared network, warm-up outside the timed region, many alternating
// small batches keeping each mode's minimum.
func MonitorOverhead(peers, queries int, epoch time.Duration) (*MonitorOverheadResult, error) {
	if peers < 1 || queries < 1 {
		return nil, fmt.Errorf("bench: monitor overhead needs >=1 peer and >=1 query")
	}
	if epoch <= 0 {
		epoch = 50 * time.Millisecond
	}
	cfg := Default()
	cfg.PerNodeSF = 0.004
	net, err := buildBestPeer(cfg, peers)
	if err != nil {
		return nil, err
	}
	sql := tpch.Q1Default()
	runQueries := func() (time.Duration, error) {
		start := time.Now()
		for q := 0; q < queries; q++ {
			if _, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	batch := func(monitored bool) (time.Duration, error) {
		if !monitored {
			return runQueries()
		}
		stop := net.StartTelemetryReporters(epoch)
		defer stop()
		return runQueries()
	}
	// Warm-up: parse/locator caches, telemetry handles, and one full
	// report cycle so gob/registry paths are hot before timing starts.
	if _, err := runQueries(); err != nil {
		return nil, err
	}
	net.ReportTelemetry()

	const rounds = 60
	var baseline, monitored time.Duration
	for round := 0; round < rounds; round++ {
		order := []bool{false, true}
		if round%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, mode := range order {
			d, err := batch(mode)
			if err != nil {
				return nil, err
			}
			if mode {
				if monitored == 0 || d < monitored {
					monitored = d
				}
			} else {
				if baseline == 0 || d < baseline {
					baseline = d
				}
			}
		}
	}
	r := &MonitorOverheadResult{
		Peers:         peers,
		Queries:       queries,
		ReportEpochMS: float64(epoch) / float64(time.Millisecond),
		BaselineMS:    float64(baseline) / float64(time.Millisecond),
		MonitoredMS:   float64(monitored) / float64(time.Millisecond),
	}
	if baseline > 0 {
		r.OverheadPct = (float64(monitored)/float64(baseline) - 1) * 100
	}
	for _, h := range net.Bootstrap.Collector().Healths() {
		r.Reports += h.Reports
	}
	if r.Reports == 0 {
		return nil, fmt.Errorf("bench: monitored batches produced no reports — the plane never ran")
	}
	return r, nil
}
