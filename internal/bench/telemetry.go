package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"bestpeer"
	"bestpeer/internal/peer"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
)

// This file measures what the instrumentation itself costs. The
// telemetry layer claims a near-free fast path (atomic increments,
// nil-safe span handles, one enabled-flag check per operation); the
// benchmark below runs the fig-6 workload (Q1 over a loaded network)
// with the registry and tracer disabled, then enabled, and reports the
// relative wall-clock difference.

// TelemetryOverheadResult is one disabled-vs-enabled comparison,
// emitted as a JSON line for BENCH_telemetry.json.
type TelemetryOverheadResult struct {
	Peers       int     `json:"peers"`
	Queries     int     `json:"queries"`
	DisabledMS  float64 `json:"disabled_ms"`
	EnabledMS   float64 `json:"enabled_ms"`
	OverheadPct float64 `json:"overhead_pct"`
}

// JSONLine renders the result as a single JSON line.
func (r *TelemetryOverheadResult) JSONLine() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// TelemetryOverhead times batches of the fig-6 query (Q1, the paper's
// first performance benchmark) on one loaded network with telemetry
// off and on. Each mode takes the best of trials batches so scheduler
// noise does not masquerade as instrumentation cost; the network is
// built once and shared, so the comparison isolates the metric and
// span operations on the query path.
func TelemetryOverhead(peers, queries int) (*TelemetryOverheadResult, error) {
	if peers < 1 || queries < 1 {
		return nil, fmt.Errorf("bench: telemetry overhead needs >=1 peer and >=1 query")
	}
	// A larger per-node scale factor than the vtime figures use: the
	// overhead ratio only means something when each query does an amount
	// of work representative of the paper's deployment, not a
	// microsecond-scale scan of a toy partition.
	cfg := Default()
	cfg.PerNodeSF = 0.004
	net, err := buildBestPeer(cfg, peers)
	if err != nil {
		return nil, err
	}
	sql := tpch.Q1Default()
	batch := func(enabled bool) (time.Duration, error) {
		telemetry.SetEnabled(enabled)
		defer telemetry.SetEnabled(true)
		start := time.Now()
		for q := 0; q < queries; q++ {
			if _, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	// Warm up caches (parse, locator, telemetry handles) in both modes
	// outside the timed region.
	for _, mode := range []bool{false, true} {
		telemetry.SetEnabled(mode)
		if _, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
			telemetry.SetEnabled(true)
			return nil, err
		}
	}
	telemetry.SetEnabled(true)
	// Alternate the two modes across many small batches and keep each
	// mode's minimum: scheduler preemption, GC pauses, and neighbor load
	// only ever add time, so the per-mode minimum is the cleanest
	// estimate of intrinsic cost, and alternating the order each round
	// gives both modes equal shots at the quiet windows.
	const rounds = 60
	var disabled, enabled time.Duration
	for round := 0; round < rounds; round++ {
		order := []bool{false, true}
		if round%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, mode := range order {
			d, err := batch(mode)
			if err != nil {
				return nil, err
			}
			if mode {
				if enabled == 0 || d < enabled {
					enabled = d
				}
			} else {
				if disabled == 0 || d < disabled {
					disabled = d
				}
			}
		}
	}
	r := &TelemetryOverheadResult{
		Peers:      peers,
		Queries:    queries,
		DisabledMS: float64(disabled) / float64(time.Millisecond),
		EnabledMS:  float64(enabled) / float64(time.Millisecond),
	}
	if disabled > 0 {
		r.OverheadPct = (float64(enabled)/float64(disabled) - 1) * 100
	}
	return r, nil
}
