package bench

import (
	"testing"

	"bestpeer"
	"bestpeer/internal/bootstrap"
	"bestpeer/internal/peer"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
)

func benchHeatNet(b testing.TB) *bestpeer.Network {
	cfg := Default()
	cfg.PerNodeSF = 0.004
	net, err := buildBestPeer(cfg, 4)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := tpch.ShipdateDomain()
	net.Bootstrap.DefineStatsDomain(tpch.LineItem, bootstrap.StatsDomainRecord{
		Columns: []string{"l_shipdate"}, Lo: []float64{lo}, Hi: []float64{hi},
	})
	return net
}

func runHeatToggle(b *testing.B, on bool) {
	net := benchHeatNet(b)
	sql := tpch.Q1Default()
	telemetry.SetHeatEnabled(on)
	defer telemetry.SetHeatEnabled(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryHeatOff/On price the end-to-end query path with the
// heat plane's kill switch off vs on — the A/B behind the bench-hotspot
// overhead number.
func BenchmarkQueryHeatOff(b *testing.B) { runHeatToggle(b, false) }
func BenchmarkQueryHeatOn(b *testing.B)  { runHeatToggle(b, true) }
