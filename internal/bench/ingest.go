package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"bestpeer/internal/erp"
	"bestpeer/internal/loader"
	"bestpeer/internal/schemamap"
	"bestpeer/internal/serving"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// This file prices the continuous-ingest pipeline two ways.
//
// Part one is a head-to-head on the loader's refresh strategies: one
// production system churning a small percentage of its rows per round,
// loaded into two destination databases — one loader forced to full
// snapshot differentials (extract + fingerprint + sort + merge every
// pass), one tailing the CDC change feed (cost proportional to churn).
// Both must answer queries bit-identically after every round; the
// interesting number is the per-pass wall clock.
//
// Part two measures what ingest does to the serving tier: a loaded
// network with serving attached answers a cacheable query over a table
// the ingest never touches, idle and then concurrent with CDC sync
// rounds. Per-table version stamping should keep the unrelated entry
// hitting and the p99 close to idle.

// IngestModeStats is one refresh strategy's measured outcome.
type IngestModeStats struct {
	Passes    int     `json:"passes"`
	TotalMS   float64 `json:"total_ms"`
	AvgPassMS float64 `json:"avg_pass_ms"`
	Inserted  int     `json:"inserted"`
	Deleted   int     `json:"deleted"`
	Events    int     `json:"cdc_events"`
}

// IngestServingStats compares serving latency idle vs during ingest.
type IngestServingStats struct {
	Queries         int     `json:"queries_per_phase"`
	IdleP99MS       float64 `json:"idle_p99_ms"`
	DuringP99MS     float64 `json:"during_ingest_p99_ms"`
	UnrelatedHits   int64   `json:"unrelated_hits"`
	UnrelatedMisses int64   `json:"unrelated_misses"`
	SyncRounds      int     `json:"sync_rounds"`
}

// IngestResult is the benchmark's JSON line for BENCH_ingest.json.
type IngestResult struct {
	Rows             int                `json:"rows"`
	Rounds           int                `json:"rounds"`
	ChurnPct         float64            `json:"churn_pct"`
	Snapshot         IngestModeStats    `json:"snapshot"`
	CDC              IngestModeStats    `json:"cdc"`
	Speedup          float64            `json:"cdc_speedup"`
	ResultsIdentical bool               `json:"results_identical"`
	Serving          IngestServingStats `json:"serving"`
}

// JSONLine renders the result as a single JSON line.
func (r *IngestResult) JSONLine() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// ingestSchema is the production-side relation the benchmark churns.
func ingestMapping() (*sqldb.Schema, *sqldb.Schema, *schemamap.Mapping) {
	local := &sqldb.Schema{
		Table: "vbak_orders",
		Columns: []sqldb.Column{
			{Name: "net_value", Kind: sqlval.KindFloat},
			{Name: "order_id", Kind: sqlval.KindInt},
		},
	}
	global := &sqldb.Schema{
		Table: "orders",
		Columns: []sqldb.Column{
			{Name: "o_orderkey", Kind: sqlval.KindInt},
			{Name: "o_totalprice", Kind: sqlval.KindFloat},
		},
	}
	mapping := &schemamap.Mapping{System: "SAP", Tables: []schemamap.TableMapping{{
		LocalTable: "vbak_orders", GlobalTable: "orders",
		Columns: []schemamap.ColumnMapping{
			{Local: "order_id", Global: "o_orderkey"},
			{Local: "net_value", Global: "o_totalprice"},
		},
	}}}
	return local, global, mapping
}

// IngestComparison runs the snapshot-vs-CDC head-to-head plus the
// serving-impact phase. rows is the production table size, rounds the
// number of churn+sync cycles, churn the per-round mutation fraction.
func IngestComparison(rows, rounds int, churn float64, servingQueries int) (*IngestResult, error) {
	if rows < 10 || rounds < 1 || churn <= 0 || churn > 0.5 {
		return nil, fmt.Errorf("bench: ingest needs rows>=10, rounds>=1, 0<churn<=0.5")
	}
	local, global, mapping := ingestMapping()
	sys := erp.NewSystem("SAP")
	if err := sys.CreateTable(local); err != nil {
		return nil, err
	}
	resolve := func(name string) *sqldb.Schema {
		if name == "orders" {
			return global
		}
		return nil
	}
	destSnap, destCDC := sqldb.NewDB(), sqldb.NewDB()
	snapLoader, err := loader.New(sys, mapping, destSnap, resolve)
	if err != nil {
		return nil, err
	}
	snapLoader.SetMode(loader.ModeSnapshot)
	cdcLoader, err := loader.New(sys, mapping, destCDC, resolve)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(7))
	next := 0
	live := make([]int, 0, rows)
	insert := func() error {
		if err := sys.Insert("vbak_orders", sqlval.Row{sqlval.Float(float64(next) / 3), sqlval.Int(int64(next))}); err != nil {
			return err
		}
		live = append(live, next)
		next++
		return nil
	}
	for i := 0; i < rows; i++ {
		if err := insert(); err != nil {
			return nil, err
		}
	}
	// Initial loads (both are snapshot passes; excluded from timing).
	if _, err := snapLoader.Run(); err != nil {
		return nil, err
	}
	if _, err := cdcLoader.Run(); err != nil {
		return nil, err
	}

	r := &IngestResult{Rows: rows, Rounds: rounds, ChurnPct: churn * 100, ResultsIdentical: true}
	timed := func(l *loader.Loader, st *IngestModeStats) error {
		t0 := time.Now()
		d, err := l.Run()
		if err != nil {
			return err
		}
		st.TotalMS += float64(time.Since(t0)) / float64(time.Millisecond)
		st.Passes++
		st.Inserted += d.Inserted
		st.Deleted += d.Deleted
		st.Events += d.Events
		return nil
	}
	const checkQuery = `SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_orderkey, o_totalprice`
	for round := 0; round < rounds; round++ {
		// Churn: half inserts, a quarter deletes, a quarter updates.
		muts := int(float64(rows) * churn)
		if muts < 4 {
			muts = 4
		}
		for m := 0; m < muts; m++ {
			switch k := rng.Intn(4); {
			case k < 2:
				if err := insert(); err != nil {
					return nil, err
				}
			case k < 3 && len(live) > 0:
				i := rng.Intn(len(live))
				id := live[i]
				if _, err := sys.Exec(fmt.Sprintf(`DELETE FROM vbak_orders WHERE order_id = %d`, id)); err != nil {
					return nil, err
				}
				live = append(live[:i], live[i+1:]...)
			case len(live) > 0:
				id := live[rng.Intn(len(live))]
				if _, err := sys.Exec(fmt.Sprintf(`UPDATE vbak_orders SET net_value = %d.5 WHERE order_id = %d`, round, id)); err != nil {
					return nil, err
				}
			}
		}
		// CDC first: the snapshot loader never consumes the feed, so
		// ordering only matters for cache warmth fairness (none here).
		if err := timed(cdcLoader, &r.CDC); err != nil {
			return nil, fmt.Errorf("bench: cdc round %d: %w", round, err)
		}
		if err := timed(snapLoader, &r.Snapshot); err != nil {
			return nil, fmt.Errorf("bench: snapshot round %d: %w", round, err)
		}
		a, err := destSnap.Query(checkQuery)
		if err != nil {
			return nil, err
		}
		b, err := destCDC.Query(checkQuery)
		if err != nil {
			return nil, err
		}
		if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
			r.ResultsIdentical = false
		}
	}
	if r.Snapshot.Passes > 0 {
		r.Snapshot.AvgPassMS = r.Snapshot.TotalMS / float64(r.Snapshot.Passes)
	}
	if r.CDC.Passes > 0 {
		r.CDC.AvgPassMS = r.CDC.TotalMS / float64(r.CDC.Passes)
	}
	if r.CDC.TotalMS > 0 {
		r.Speedup = r.Snapshot.TotalMS / r.CDC.TotalMS
	}

	sv, err := ingestServingPhase(servingQueries)
	if err != nil {
		return nil, err
	}
	r.Serving = *sv
	return r, nil
}

// ingestServingPhase measures cacheable serving latency over a table
// the ingest pipeline never writes, idle and then racing CDC syncs.
func ingestServingPhase(queries int) (*IngestServingStats, error) {
	if queries < 10 {
		queries = 10
	}
	cfg := Default()
	cfg.PerNodeSF = 0.002
	net, err := buildBestPeer(cfg, 3)
	if err != nil {
		return nil, err
	}
	net.EnableServing(serving.Config{})

	local, _, mapping := ingestMapping()
	sys := erp.NewSystem("SAP")
	if err := sys.CreateTable(local); err != nil {
		return nil, err
	}
	ingester := net.Peer(0)
	if err := ingester.AttachProduction(sys, mapping); err != nil {
		return nil, err
	}
	const base = 1 << 30
	next := base
	for ; next < base+100; next++ {
		if err := sys.Insert("vbak_orders", sqlval.Row{sqlval.Float(1), sqlval.Int(int64(next))}); err != nil {
			return nil, err
		}
	}
	if _, err := ingester.SyncData(); err != nil {
		return nil, err
	}

	cl := net.ServingClient("bench-ingest-client", 1)
	if err := cl.Open("", serving.ClassInteractive, ""); err != nil {
		return nil, err
	}
	defer cl.Close()

	const unrelated = `SELECT COUNT(*) FROM lineitem`
	st := &IngestServingStats{Queries: queries}
	// more, when non-nil, extends the phase past the base query count
	// (bounded) until the condition it watches is satisfied.
	phase := func(more func(i int) bool) ([]time.Duration, error) {
		lat := make([]time.Duration, 0, queries)
		for i := 0; i < queries || (more != nil && more(i)); i++ {
			t0 := time.Now()
			out, err := cl.Query(unrelated, serving.CacheUse)
			if err != nil {
				if serving.Overloaded(err) {
					continue
				}
				return nil, err
			}
			lat = append(lat, time.Since(t0))
			if out.CacheHit {
				st.UnrelatedHits++
			} else {
				st.UnrelatedMisses++
			}
		}
		return lat, nil
	}

	idle, err := phase(nil)
	if err != nil {
		return nil, err
	}
	st.IdleP99MS = p99(idle)

	// Concurrent ingest: churn + sync rounds race the query phase. The
	// cached queries are microsecond-cheap while a sync round is not, so
	// the measured phase keeps querying until enough rounds have landed
	// concurrently — otherwise nothing would actually race the stream.
	var rounds atomic.Int64
	done := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			for k := 0; k < 5; k++ {
				if err := sys.Insert("vbak_orders", sqlval.Row{sqlval.Float(2), sqlval.Int(int64(next))}); err != nil {
					done <- err
					return
				}
				next++
			}
			if _, err := ingester.SyncData(); err != nil {
				done <- err
				return
			}
			rounds.Add(1)
		}
	}()
	const minSyncRounds = 5
	during, qerr := phase(func(i int) bool {
		return rounds.Load() < minSyncRounds && i < queries*1000
	})
	close(stop)
	if err := <-done; err != nil {
		return nil, err
	}
	if qerr != nil {
		return nil, qerr
	}
	st.SyncRounds = int(rounds.Load())
	st.DuringP99MS = p99(during)
	return st, nil
}

// p99 returns the 99th percentile of the samples (destructive: sorts).
func p99(samples []time.Duration) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := len(samples) * 99 / 100
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return float64(samples[idx]) / float64(time.Millisecond)
}
