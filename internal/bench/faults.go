package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"bestpeer"
	"bestpeer/internal/peer"
	"bestpeer/internal/pnet"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
)

// labeledCounterValue reads one single-labeled counter from the default
// registry.
func labeledCounterValue(name, key, value string) int64 {
	return telemetry.Default.Counter(name, telemetry.L(key, value)).Value()
}

// This file prices the hardened RPC path: the per-call deadline guard,
// the idempotent-retry policy loop, and the fault-plan check on every
// delivery. With faults off and no failures the hardened path must be
// nearly free — the acceptance bar is under 2% wall-clock overhead on
// the fig-6 workload — so the benchmark times the same query batch
// with the policy zeroed (bare path: no deadline goroutine, no retry
// bookkeeping) and with the default policy installed.

// FaultPathResult is one bare-vs-hardened comparison, emitted as a
// JSON line for BENCH_faults.json.
type FaultPathResult struct {
	Peers   int `json:"peers"`
	Queries int `json:"queries"`
	// BareMS is the best batch with CallPolicy{} (no deadline, no
	// retries); HardenedMS the best batch with DefaultCallPolicy.
	BareMS      float64 `json:"bare_ms"`
	HardenedMS  float64 `json:"hardened_ms"`
	OverheadPct float64 `json:"overhead_pct"`
	// Retries and Timeouts are the transport's counter deltas across the
	// hardened batches — both must be 0 on a healthy network, proving
	// the overhead measured is the guard itself, not hidden retries.
	Retries  int64 `json:"retries"`
	Timeouts int64 `json:"timeouts"`
}

// JSONLine renders the result as a single JSON line.
func (r *FaultPathResult) JSONLine() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// FaultPathOverhead times batches of the fig-6 benchmark queries on one
// loaded network with the call policy zeroed and with the default
// deadline/retry policy. Modes alternate across many small batches and
// each keeps its minimum, the same protocol as the telemetry and exec
// measurements (scheduler noise and GC pauses hit single batches, not
// every batch of one mode).
func FaultPathOverhead(peers, queries int) (*FaultPathResult, error) {
	if peers < 1 || queries < 1 {
		return nil, fmt.Errorf("bench: fault-path overhead needs >=1 peer and >=1 query")
	}
	cfg := Default()
	cfg.PerNodeSF = 0.004
	net, err := buildBestPeer(cfg, peers)
	if err != nil {
		return nil, err
	}
	defer net.Net.SetCallPolicy(pnet.DefaultCallPolicy())
	workload := []string{tpch.Q1Default(), tpch.Q2Default()}
	batch := func(pol pnet.CallPolicy) (time.Duration, error) {
		net.Net.SetCallPolicy(pol)
		start := time.Now()
		for q := 0; q < queries; q++ {
			sql := workload[q%len(workload)]
			if _, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	// Warm both modes outside the timed region.
	for _, pol := range []pnet.CallPolicy{{}, pnet.DefaultCallPolicy()} {
		net.Net.SetCallPolicy(pol)
		for _, sql := range workload {
			if _, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
				return nil, err
			}
		}
	}
	retries0, timeouts0 := transportCounters(net, peers)

	const rounds = 60
	var bare, hardened time.Duration
	for round := 0; round < rounds; round++ {
		order := []bool{false, true}
		if round%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, useHardened := range order {
			pol := pnet.CallPolicy{}
			if useHardened {
				pol = pnet.DefaultCallPolicy()
			}
			d, err := batch(pol)
			if err != nil {
				return nil, err
			}
			if useHardened {
				if hardened == 0 || d < hardened {
					hardened = d
				}
			} else {
				if bare == 0 || d < bare {
					bare = d
				}
			}
		}
	}
	retries1, timeouts1 := transportCounters(net, peers)
	r := &FaultPathResult{
		Peers:      peers,
		Queries:    queries,
		BareMS:     float64(bare) / float64(time.Millisecond),
		HardenedMS: float64(hardened) / float64(time.Millisecond),
		Retries:    retries1 - retries0,
		Timeouts:   timeouts1 - timeouts0,
	}
	if bare > 0 {
		r.OverheadPct = (float64(hardened)/float64(bare) - 1) * 100
	}
	return r, nil
}

// transportCounters sums the retry and timeout counters across every
// peer destination in the benchmark network.
func transportCounters(net *bestpeer.Network, peers int) (retries, timeouts int64) {
	ids := make([]string, 0, peers+1)
	for _, p := range net.Peers() {
		ids = append(ids, p.ID())
	}
	ids = append(ids, "bootstrap")
	for _, id := range ids {
		retries += labeledCounterValue("pnet_retries_total", "peer", id)
		timeouts += labeledCounterValue("pnet_timeouts_total", "peer", id)
	}
	return retries, timeouts
}
