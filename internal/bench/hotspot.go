package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"bestpeer"
	"bestpeer/internal/baton"
	"bestpeer/internal/bootstrap"
	"bestpeer/internal/peer"
	"bestpeer/internal/pnet"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
)

// The heat plane's acceptance benchmark, two halves:
//
//  1. Detection: run a Zipfian shipdate-window workload (windows
//     concentrated at the start of the date domain) and a uniform one
//     on two fresh networks. After one report + maintenance epoch the
//     bootstrap must log hotspot events for the Zipfian run and stay
//     quiet for the uniform run.
//  2. Overhead: price the heat plane itself — the SetHeatEnabled kill
//     switch off vs on — on the fig-6 workload, pairing adjacent
//     off/on batches and taking the median of per-round ratios.

// HotspotResult is the detection + overhead outcome, emitted as a JSON
// line for BENCH_hotspot.json.
type HotspotResult struct {
	Peers   int `json:"peers"`
	Queries int `json:"queries"`
	// Zipfian run: hotspot events logged, cluster-wide skew, and the
	// hottest range's bounds/share.
	ZipfHotspots int     `json:"zipf_hotspots"`
	ZipfSkew     float64 `json:"zipf_skew"`
	TopRangeLo   float64 `json:"top_range_lo"`
	TopRangeHi   float64 `json:"top_range_hi"`
	TopShare     float64 `json:"top_share"`
	TopPeer      string  `json:"top_peer"`
	// Uniform run: must stay quiet.
	UniformHotspots int     `json:"uniform_hotspots"`
	UniformSkew     float64 `json:"uniform_skew"`
	// Heat-plane overhead on the fig-6 workload.
	HeatOffMS   float64 `json:"heat_off_ms"`
	HeatOnMS    float64 `json:"heat_on_ms"`
	OverheadPct float64 `json:"overhead_pct"`
	// Mitigation A/B under the flash-crowd scenario (locator cache off,
	// Zipfian load, identical per-hop delays in both arms): the hottest
	// peer's share of terminally served index lookups, cluster p99, and
	// closed-loop QPS with mitigation off vs armed.
	MitOffHotShare  float64 `json:"mit_off_hot_share"`
	MitOnHotShare   float64 `json:"mit_on_hot_share"`
	MitOffP99MS     float64 `json:"mit_off_p99_ms"`
	MitOnP99MS      float64 `json:"mit_on_p99_ms"`
	MitOffQPS       float64 `json:"mit_off_qps"`
	MitOnQPS        float64 `json:"mit_on_qps"`
	MitRebalances   int     `json:"mit_rebalances"`
	MitReplicaReads int64   `json:"mit_replica_reads"`
	// ResultsMatch: both arms returned byte-identical rows for a fixed
	// query set (replicated reads never change answers). ArmedQuiet: the
	// armed daemon fired zero rebalance actions on a uniform workload and
	// its results matched an unarmed uniform run bit for bit.
	ResultsMatch bool `json:"results_match"`
	ArmedQuiet   bool `json:"armed_quiet"`
	// Detected and Quiet summarize the acceptance criteria.
	Detected bool `json:"detected"`
	Quiet    bool `json:"quiet"`
}

// JSONLine renders the result as a single JSON line.
func (r *HotspotResult) JSONLine() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// heatPhase runs one workload distribution (skew > 1 = Zipfian window
// placement with that exponent, else uniform) on a fresh network and
// returns the hotspot events logged plus the cluster heat vector.
func heatPhase(peers, queries int, skew float64) (hotspots int, heat telemetry.HeatmapSnapshot, top bootstrap.HotRange, net *bestpeer.Network, err error) {
	cfg := Default()
	cfg.PerNodeSF = 0.004
	net, err = buildBestPeer(cfg, peers)
	if err != nil {
		return 0, heat, top, nil, err
	}
	lo, hi := tpch.ShipdateDomain()
	net.Bootstrap.DefineStatsDomain(tpch.LineItem, bootstrap.StatsDomainRecord{
		Columns: []string{"l_shipdate"}, Lo: []float64{lo}, Hi: []float64{hi},
	})
	w := tpch.NewShipdateWorkloadSkew(1, skew, 7)
	for q := 0; q < queries; q++ {
		if _, err := net.Query(q%peers, w.Next(), bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
			return 0, heat, top, nil, err
		}
	}
	net.ReportTelemetry()
	if err := net.RunMaintenance(50 * time.Millisecond); err != nil {
		return 0, heat, top, nil, err
	}
	for _, e := range net.Bootstrap.Events() {
		if e.Kind == "hotspot" {
			hotspots++
		}
	}
	heat = net.Bootstrap.Collector().ClusterHeat()
	th := bootstrap.DefaultThresholds()
	if ranges := net.Bootstrap.Collector().HotRanges(th.HeatSkewHigh, th.MinHeatSamples); len(ranges) > 0 {
		top = ranges[0]
	}
	return hotspots, heat, top, net, nil
}

// mitigationHopDelay models per-hop network latency: every overlay
// lookup hop and every replica serve pays it, identically in both arms,
// so the A/B difference is pure hop count — the routed path to the
// funnel owner vs the one-hop (or zero-hop) replica path.
const mitigationHopDelay = 2 * time.Millisecond

// mitigationOutcome is one arm of the mitigation A/B.
type mitigationOutcome struct {
	hotShare     float64
	p99          time.Duration
	qps          float64
	rebalances   int
	replicaReads int64
	fingerprint  string
}

// mitigationPhase runs one arm of the mitigation benchmark on a fresh
// network. flashCrowd recreates the funnel the mitigation exists for:
// locator caches off, so every query's index lookups ("IT:lineitem",
// "ID:lineitem" — one key-space bucket) hit the overlay and converge on
// one owner, with a per-hop delivery delay making hops cost wall time.
// mitigate arms EnableHeatMitigation; the warm phase plus one report +
// maintenance epoch is what lets the daemon detect and replicate before
// the timed window opens.
func mitigationPhase(peers, queries int, skew float64, flashCrowd, mitigate bool) (*mitigationOutcome, error) {
	cfg := Default()
	cfg.PerNodeSF = 0.004
	net, err := buildBestPeer(cfg, peers)
	if err != nil {
		return nil, err
	}
	lo, hi := tpch.ShipdateDomain()
	net.Bootstrap.DefineStatsDomain(tpch.LineItem, bootstrap.StatsDomainRecord{
		Columns: []string{"l_shipdate"}, Lo: []float64{lo}, Hi: []float64{hi},
	})
	if mitigate {
		net.EnableHeatMitigation(2)
	}
	if flashCrowd {
		net.SetLocatorCache(false)
		net.Net.SetFaultPlan(pnet.NewFaultPlan(1).
			Delay("", baton.LookupVerb, mitigationHopDelay).
			Delay("", baton.ReplicaServeVerb, mitigationHopDelay))
	}

	// Warm until the collector's index-heat window clears MinHeatSamples,
	// then one epoch: an armed daemon replicates the hot range and
	// broadcasts the advisory; an unarmed one just logs the hotspot.
	warm := tpch.NewShipdateWorkloadSkew(1, skew, 7)
	for q := 0; q < 64; q++ {
		if _, err := net.Query(q%peers, warm.Next(), bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
			return nil, err
		}
	}
	net.ReportTelemetry()
	if err := net.RunMaintenance(50 * time.Millisecond); err != nil {
		return nil, err
	}

	// Serve-count baselines: the timed window's shares must not include
	// pre-mitigation warm-up traffic.
	base := make(map[string][2]int64)
	for _, p := range net.Peers() {
		l, r := p.ServeCounts()
		base[p.ID()] = [2]int64{l, r}
	}

	// Timed closed loop: four workers, each with its own generator.
	const workers = 4
	perWorker := queries / workers
	if perWorker < 1 {
		perWorker = 1
	}
	lats := make([][]time.Duration, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for wk := 0; wk < workers; wk++ {
		wk := wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := tpch.NewShipdateWorkloadSkew(int64(wk)+2, skew, 7)
			for q := 0; q < perWorker; q++ {
				t0 := time.Now()
				if _, err := net.Query((wk+q)%peers, gen.Next(), bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
					errs[wk] = err
					return
				}
				lats[wk] = append(lats[wk], time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := &mitigationOutcome{}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		idx := (len(all) * 99) / 100
		if idx >= len(all) {
			idx = len(all) - 1
		}
		out.p99 = all[idx]
		out.qps = float64(len(all)) / elapsed.Seconds()
	}

	// The hottest peer's share of terminally served lookups over the
	// timed window. Unmitigated, the funnel owner serves ~everything;
	// mitigated, rotation over owner+holders caps any one peer near
	// 1/(k+1).
	var total, max int64
	for _, p := range net.Peers() {
		l, r := p.ServeCounts()
		b := base[p.ID()]
		served := (l - b[0]) + (r - b[1])
		total += served
		if served > max {
			max = served
		}
		out.replicaReads += r - b[1]
	}
	if total > 0 {
		out.hotShare = float64(max) / float64(total)
	}
	for _, e := range net.Bootstrap.Events() {
		if e.Kind == "rebalance" {
			out.rebalances++
		}
	}

	// Fingerprint a fixed query set (same seed in every arm) while the
	// arm's configuration is still live: byte-identical fingerprints
	// prove replicated reads and dispatch reordering change no answers.
	fp := tpch.NewShipdateWorkloadSkew(99, skew, 7)
	var sb strings.Builder
	for q := 0; q < 16; q++ {
		res, err := net.Query(q%peers, fp.Next(), bestpeer.QueryOptions{Strategy: peer.StrategyBasic})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "%v\n", res.Result.Rows)
	}
	out.fingerprint = sb.String()
	return out, nil
}

// HotspotDetection runs the full heat-plane benchmark. zipfSkew is the
// Zipf exponent of the skewed arms (rand.Zipf needs s > 1; the uniform
// arms always run with no skew).
func HotspotDetection(peers, queries int, zipfSkew float64) (*HotspotResult, error) {
	if peers < 1 || queries < 1 {
		return nil, fmt.Errorf("bench: hotspot detection needs >=1 peer and >=1 query")
	}
	if zipfSkew <= 1 {
		return nil, fmt.Errorf("bench: hotspot detection needs a Zipf exponent > 1, got %g", zipfSkew)
	}

	zipfHot, zipfHeat, top, net, err := heatPhase(peers, queries, zipfSkew)
	if err != nil {
		return nil, err
	}
	uniHot, uniHeat, _, _, err := heatPhase(peers, queries, 0)
	if err != nil {
		return nil, err
	}

	r := &HotspotResult{
		Peers:           peers,
		Queries:         queries,
		ZipfHotspots:    zipfHot,
		ZipfSkew:        zipfHeat.Skew(),
		TopRangeLo:      top.Lo,
		TopRangeHi:      top.Hi,
		TopShare:        top.Share,
		TopPeer:         top.TopPeer,
		UniformHotspots: uniHot,
		UniformSkew:     uniHeat.Skew(),
		Detected:        zipfHot > 0,
		Quiet:           uniHot == 0,
	}

	// Overhead: the fig-6 query on the Zipfian network (stats domain
	// defined, so heat-on runs the full attribution path). Alternating
	// batches keeping each mode's minimum; heat re-enabled afterwards.
	sql := tpch.Q1Default()
	runQueries := func() (time.Duration, error) {
		// Collect outside the timed region: the batches are short enough
		// that one GC cycle landing inside a batch would swamp the
		// sub-microsecond path being priced.
		runtime.GC()
		start := time.Now()
		for q := 0; q < queries; q++ {
			if _, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	defer telemetry.SetHeatEnabled(true)
	if _, err := runQueries(); err != nil { // warm-up
		return nil, err
	}
	// Paired design: each round times one heat-off and one heat-on batch
	// back to back (order alternating) and keeps their ratio. Adjacent
	// batches see the same machine conditions, so slow drift cancels out
	// of the ratio; the median over rounds then shrugs off the outlier
	// rounds a minimum-of-batches would chase. The reported off/on times
	// are each mode's minimum, for scale.
	const rounds = 40
	var off, on time.Duration
	ratios := make([]float64, 0, rounds)
	for round := 0; round < rounds; round++ {
		order := []bool{false, true}
		if round%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		var roundOff, roundOn time.Duration
		for _, heatOn := range order {
			telemetry.SetHeatEnabled(heatOn)
			d, err := runQueries()
			if err != nil {
				return nil, err
			}
			if heatOn {
				roundOn = d
				if on == 0 || d < on {
					on = d
				}
			} else {
				roundOff = d
				if off == 0 || d < off {
					off = d
				}
			}
		}
		if roundOff > 0 {
			ratios = append(ratios, float64(roundOn)/float64(roundOff))
		}
	}
	r.HeatOffMS = float64(off) / float64(time.Millisecond)
	r.HeatOnMS = float64(on) / float64(time.Millisecond)
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		r.OverheadPct = (ratios[len(ratios)/2] - 1) * 100
	}

	// The overhead loop's last batch can leave the kill switch off;
	// mitigation needs the index-heat signal flowing again.
	telemetry.SetHeatEnabled(true)

	// Mitigation A/B: the flash-crowd scenario with mitigation off vs
	// armed (identical fault plans, workloads, and seeds in both arms).
	mitOff, err := mitigationPhase(peers, queries, zipfSkew, true, false)
	if err != nil {
		return nil, err
	}
	mitOn, err := mitigationPhase(peers, queries, zipfSkew, true, true)
	if err != nil {
		return nil, err
	}
	r.MitOffHotShare = mitOff.hotShare
	r.MitOnHotShare = mitOn.hotShare
	r.MitOffP99MS = float64(mitOff.p99) / float64(time.Millisecond)
	r.MitOnP99MS = float64(mitOn.p99) / float64(time.Millisecond)
	r.MitOffQPS = mitOff.qps
	r.MitOnQPS = mitOn.qps
	r.MitRebalances = mitOn.rebalances
	r.MitReplicaReads = mitOn.replicaReads
	r.ResultsMatch = mitOff.fingerprint == mitOn.fingerprint && mitOff.fingerprint != ""

	// Armed-but-uniform: with locator caches on (the production default)
	// a uniform workload leaves index heat below the evidence floor, so
	// the armed daemon must fire nothing and answers must match an
	// unarmed run bit for bit.
	uniQueries := queries / 2
	if uniQueries < 16 {
		uniQueries = 16
	}
	uniArmed, err := mitigationPhase(peers, uniQueries, 0, false, true)
	if err != nil {
		return nil, err
	}
	uniPlain, err := mitigationPhase(peers, uniQueries, 0, false, false)
	if err != nil {
		return nil, err
	}
	r.ArmedQuiet = uniArmed.rebalances == 0 && uniArmed.replicaReads == 0 &&
		uniArmed.fingerprint == uniPlain.fingerprint
	return r, nil
}
