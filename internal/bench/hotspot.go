package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"bestpeer"
	"bestpeer/internal/bootstrap"
	"bestpeer/internal/peer"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
)

// The heat plane's acceptance benchmark, two halves:
//
//  1. Detection: run a Zipfian shipdate-window workload (windows
//     concentrated at the start of the date domain) and a uniform one
//     on two fresh networks. After one report + maintenance epoch the
//     bootstrap must log hotspot events for the Zipfian run and stay
//     quiet for the uniform run.
//  2. Overhead: price the heat plane itself — the SetHeatEnabled kill
//     switch off vs on — on the fig-6 workload, pairing adjacent
//     off/on batches and taking the median of per-round ratios.

// HotspotResult is the detection + overhead outcome, emitted as a JSON
// line for BENCH_hotspot.json.
type HotspotResult struct {
	Peers   int `json:"peers"`
	Queries int `json:"queries"`
	// Zipfian run: hotspot events logged, cluster-wide skew, and the
	// hottest range's bounds/share.
	ZipfHotspots int     `json:"zipf_hotspots"`
	ZipfSkew     float64 `json:"zipf_skew"`
	TopRangeLo   float64 `json:"top_range_lo"`
	TopRangeHi   float64 `json:"top_range_hi"`
	TopShare     float64 `json:"top_share"`
	TopPeer      string  `json:"top_peer"`
	// Uniform run: must stay quiet.
	UniformHotspots int     `json:"uniform_hotspots"`
	UniformSkew     float64 `json:"uniform_skew"`
	// Heat-plane overhead on the fig-6 workload.
	HeatOffMS   float64 `json:"heat_off_ms"`
	HeatOnMS    float64 `json:"heat_on_ms"`
	OverheadPct float64 `json:"overhead_pct"`
	// Detected and Quiet summarize the acceptance criteria.
	Detected bool `json:"detected"`
	Quiet    bool `json:"quiet"`
}

// JSONLine renders the result as a single JSON line.
func (r *HotspotResult) JSONLine() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// heatPhase runs one workload distribution on a fresh network and
// returns the hotspot events logged plus the cluster heat vector.
func heatPhase(peers, queries int, zipfian bool) (hotspots int, heat telemetry.HeatmapSnapshot, top bootstrap.HotRange, net *bestpeer.Network, err error) {
	cfg := Default()
	cfg.PerNodeSF = 0.004
	net, err = buildBestPeer(cfg, peers)
	if err != nil {
		return 0, heat, top, nil, err
	}
	lo, hi := tpch.ShipdateDomain()
	net.Bootstrap.DefineStatsDomain(tpch.LineItem, bootstrap.StatsDomainRecord{
		Columns: []string{"l_shipdate"}, Lo: []float64{lo}, Hi: []float64{hi},
	})
	w := tpch.NewShipdateWorkload(1, zipfian, 7)
	for q := 0; q < queries; q++ {
		if _, err := net.Query(q%peers, w.Next(), bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
			return 0, heat, top, nil, err
		}
	}
	net.ReportTelemetry()
	if err := net.RunMaintenance(50 * time.Millisecond); err != nil {
		return 0, heat, top, nil, err
	}
	for _, e := range net.Bootstrap.Events() {
		if e.Kind == "hotspot" {
			hotspots++
		}
	}
	heat = net.Bootstrap.Collector().ClusterHeat()
	th := bootstrap.DefaultThresholds()
	if ranges := net.Bootstrap.Collector().HotRanges(th.HeatSkewHigh, th.MinHeatSamples); len(ranges) > 0 {
		top = ranges[0]
	}
	return hotspots, heat, top, net, nil
}

// HotspotDetection runs the full heat-plane benchmark.
func HotspotDetection(peers, queries int) (*HotspotResult, error) {
	if peers < 1 || queries < 1 {
		return nil, fmt.Errorf("bench: hotspot detection needs >=1 peer and >=1 query")
	}

	zipfHot, zipfHeat, top, net, err := heatPhase(peers, queries, true)
	if err != nil {
		return nil, err
	}
	uniHot, uniHeat, _, _, err := heatPhase(peers, queries, false)
	if err != nil {
		return nil, err
	}

	r := &HotspotResult{
		Peers:           peers,
		Queries:         queries,
		ZipfHotspots:    zipfHot,
		ZipfSkew:        zipfHeat.Skew(),
		TopRangeLo:      top.Lo,
		TopRangeHi:      top.Hi,
		TopShare:        top.Share,
		TopPeer:         top.TopPeer,
		UniformHotspots: uniHot,
		UniformSkew:     uniHeat.Skew(),
		Detected:        zipfHot > 0,
		Quiet:           uniHot == 0,
	}

	// Overhead: the fig-6 query on the Zipfian network (stats domain
	// defined, so heat-on runs the full attribution path). Alternating
	// batches keeping each mode's minimum; heat re-enabled afterwards.
	sql := tpch.Q1Default()
	runQueries := func() (time.Duration, error) {
		// Collect outside the timed region: the batches are short enough
		// that one GC cycle landing inside a batch would swamp the
		// sub-microsecond path being priced.
		runtime.GC()
		start := time.Now()
		for q := 0; q < queries; q++ {
			if _, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	defer telemetry.SetHeatEnabled(true)
	if _, err := runQueries(); err != nil { // warm-up
		return nil, err
	}
	// Paired design: each round times one heat-off and one heat-on batch
	// back to back (order alternating) and keeps their ratio. Adjacent
	// batches see the same machine conditions, so slow drift cancels out
	// of the ratio; the median over rounds then shrugs off the outlier
	// rounds a minimum-of-batches would chase. The reported off/on times
	// are each mode's minimum, for scale.
	const rounds = 40
	var off, on time.Duration
	ratios := make([]float64, 0, rounds)
	for round := 0; round < rounds; round++ {
		order := []bool{false, true}
		if round%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		var roundOff, roundOn time.Duration
		for _, heatOn := range order {
			telemetry.SetHeatEnabled(heatOn)
			d, err := runQueries()
			if err != nil {
				return nil, err
			}
			if heatOn {
				roundOn = d
				if on == 0 || d < on {
					on = d
				}
			} else {
				roundOff = d
				if off == 0 || d < off {
					off = d
				}
			}
		}
		if roundOff > 0 {
			ratios = append(ratios, float64(roundOn)/float64(roundOff))
		}
	}
	r.HeatOffMS = float64(off) / float64(time.Millisecond)
	r.HeatOnMS = float64(on) / float64(time.Millisecond)
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		r.OverheadPct = (ratios[len(ratios)/2] - 1) * 100
	}
	return r, nil
}
