package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/tpch"
)

// This file prices the vectorized batch executor against the
// row-at-a-time compiled closures on the fig-6 benchmark queries (Q1
// selection, Q2 arithmetic aggregation — the per-row-heaviest shapes).
// Unlike ExecCompileSpeedup, which goes through the distributed engine
// stack, this measurement drives one data owner's local executor
// directly: the batch refactor changes only the local scan/filter/
// project/aggregate loops, and routing both modes through RPC would
// dilute exactly the difference being priced. Both modes share one
// compiled plan (the batch twin is compiled alongside the closures and
// selected per run), so the comparison isolates the execution loops.

// BatchExecResult is one row-compiled-vs-batch comparison, appended as
// a JSON line to BENCH_exec.json next to the interpreter-vs-compiled
// line.
type BatchExecResult struct {
	Mode         string  `json:"mode"` // always "batch"
	SF           float64 `json:"sf"`
	Queries      int     `json:"queries"`
	LineItemRows int     `json:"lineitem_rows"`
	RowMS        float64 `json:"row_compiled_ms"`
	BatchMS      float64 `json:"batch_ms"`
	Speedup      float64 `json:"speedup"`
	// Counter deltas over the batch-mode runs.
	Batches    int64   `json:"batches"`
	RowsPerBat float64 `json:"rows_per_batch"`
	Fallbacks  int64   `json:"batch_fallbacks"`
	BatchPlans int64   `json:"batch_plans_compiled"`
	Identical  bool    `json:"results_identical"`
}

// JSONLine renders the result as a single JSON line.
func (r *BatchExecResult) JSONLine() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// BatchExecSpeedup loads one peer-sized TPC-H LineItem partition and
// times batches of Q1/Q2 with the vector path off (row-compiled
// closures) and on. Each mode keeps its best batch across alternating
// rounds (see TelemetryOverhead for the rationale), and the two modes'
// result rows are verified bit-identical before anything is timed.
func BatchExecSpeedup(sf float64, queries int) (*BatchExecResult, error) {
	if sf <= 0 || queries < 1 {
		return nil, fmt.Errorf("bench: batch speedup needs sf > 0 and >= 1 query")
	}
	db := sqldb.NewDB()
	if err := tpch.Generate(db, tpch.Scale{ScaleFactor: sf, Tables: []string{tpch.Orders, tpch.LineItem}}); err != nil {
		return nil, err
	}
	workload := []string{tpch.Q1Default(), tpch.Q2Default()}
	runMode := func(batch bool, sql string) (*sqldb.Result, error) {
		sqldb.SetBatchEnabled(batch)
		defer sqldb.SetBatchEnabled(true)
		return db.Query(sql)
	}
	// Verify bit-identical results (and warm the plan cache, histograms,
	// and both execution paths) before the timed region.
	identical := true
	for _, sql := range workload {
		want, err := runMode(false, sql)
		if err != nil {
			return nil, err
		}
		got, err := runMode(true, sql)
		if err != nil {
			return nil, err
		}
		if fingerprint(want) != fingerprint(got) {
			identical = false
		}
	}
	if !identical {
		return nil, fmt.Errorf("bench: batch and row-compiled results diverge")
	}
	batch := func(mode bool) (time.Duration, error) {
		sqldb.SetBatchEnabled(mode)
		defer sqldb.SetBatchEnabled(true)
		start := time.Now()
		for q := 0; q < queries; q++ {
			if _, err := db.Query(workload[q%len(workload)]); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	batches0 := counterValue("sqldb_batches_total")
	brows0 := counterValue("sqldb_batch_rows_total")
	falls0 := counterValue("sqldb_batch_fallbacks_total")
	plans0 := counterValue("sqldb_batch_plans_compiled_total")
	const rounds = 40
	var rowBest, batchBest time.Duration
	for round := 0; round < rounds; round++ {
		order := []bool{false, true}
		if round%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, mode := range order {
			d, err := batch(mode)
			if err != nil {
				return nil, err
			}
			if mode {
				if batchBest == 0 || d < batchBest {
					batchBest = d
				}
			} else {
				if rowBest == 0 || d < rowBest {
					rowBest = d
				}
			}
		}
	}
	r := &BatchExecResult{
		Mode:         "batch",
		SF:           sf,
		Queries:      queries,
		LineItemRows: db.Table(tpch.LineItem).NumRows(),
		RowMS:        float64(rowBest) / float64(time.Millisecond),
		BatchMS:      float64(batchBest) / float64(time.Millisecond),
		Batches:      counterValue("sqldb_batches_total") - batches0,
		Fallbacks:    counterValue("sqldb_batch_fallbacks_total") - falls0,
		BatchPlans:   counterValue("sqldb_batch_plans_compiled_total") - plans0,
		Identical:    identical,
	}
	if batchBest > 0 {
		r.Speedup = float64(rowBest) / float64(batchBest)
	}
	if r.Batches > 0 {
		r.RowsPerBat = float64(counterValue("sqldb_batch_rows_total")-brows0) / float64(r.Batches)
	}
	return r, nil
}

// fingerprint renders a result's rows for bit-identity comparison.
func fingerprint(res *sqldb.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, "|"))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		sb.WriteString(row.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
