package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"bestpeer"
	"bestpeer/internal/peer"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
)

// This file prices the compile-once execution layer: the plan cache,
// closure-compiled expressions, and the streaming row pipeline. The
// engines ship the same subquery template to every data owner on every
// round, so the fig-6 workload (the paper's selection/aggregation
// benchmark queries, repeated) is exactly the repeat-heavy shape the
// layer targets. The benchmark runs the workload with the compiled
// layer off (the original tree-walking interpreter) and on, and
// reports the wall-clock ratio plus the cache and compiler counters
// observed during the compiled batches.

// ExecCompileResult is one interpreted-vs-compiled comparison, emitted
// as a JSON line for BENCH_exec.json.
type ExecCompileResult struct {
	Peers         int     `json:"peers"`
	Queries       int     `json:"queries"`
	InterpretedMS float64 `json:"interpreted_ms"`
	CompiledMS    float64 `json:"compiled_ms"`
	Speedup       float64 `json:"speedup"`
	// Counter deltas over the compiled batches.
	PlanCacheHits   int64   `json:"plan_cache_hits"`
	PlanCacheMisses int64   `json:"plan_cache_misses"`
	HitRatePct      float64 `json:"hit_rate_pct"`
	ExprCompiles    int64   `json:"expr_compiles"`
	PlansCompiled   int64   `json:"plans_compiled"`
}

// JSONLine renders the result as a single JSON line.
func (r *ExecCompileResult) JSONLine() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// ExecCompileSpeedup times batches of the fig-6 benchmark queries (Q1
// selection, Q2 aggregation — the per-row-heaviest shapes) on one
// loaded network with the compiled execution layer off and on. Each
// mode keeps the best batch across many alternating rounds, so
// scheduler noise and GC pauses do not blur the comparison; the network
// is built once and shared, isolating the executor difference.
func ExecCompileSpeedup(peers, queries int) (*ExecCompileResult, error) {
	if peers < 1 || queries < 1 {
		return nil, fmt.Errorf("bench: exec speedup needs >=1 peer and >=1 query")
	}
	// Same scale as the telemetry overhead measurement: each query scans
	// an amount of data representative of a peer's partition, so per-row
	// evaluation — the thing compilation removes — dominates the loop.
	cfg := Default()
	cfg.PerNodeSF = 0.004
	net, err := buildBestPeer(cfg, peers)
	if err != nil {
		return nil, err
	}
	workload := []string{tpch.Q1Default(), tpch.Q2Default()}
	batch := func(compiled bool) (time.Duration, error) {
		sqldb.SetCompileEnabled(compiled)
		defer sqldb.SetCompileEnabled(true)
		start := time.Now()
		for q := 0; q < queries; q++ {
			sql := workload[q%len(workload)]
			if _, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	// Warm both modes outside the timed region (locator caches, plan
	// cache, telemetry handles).
	for _, mode := range []bool{false, true} {
		sqldb.SetCompileEnabled(mode)
		for _, sql := range workload {
			if _, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic}); err != nil {
				sqldb.SetCompileEnabled(true)
				return nil, err
			}
		}
	}
	sqldb.SetCompileEnabled(true)
	hits0 := counterValue("sqldb_plan_cache_hits_total")
	misses0 := counterValue("sqldb_plan_cache_misses_total")
	exprs0 := counterValue("sqldb_expr_compiles_total")
	plans0 := counterValue("sqldb_plans_compiled_total")
	// Alternate the modes across many small batches and keep each mode's
	// minimum (see TelemetryOverhead for the rationale).
	const rounds = 60
	var interpreted, compiled time.Duration
	for round := 0; round < rounds; round++ {
		order := []bool{false, true}
		if round%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, mode := range order {
			d, err := batch(mode)
			if err != nil {
				return nil, err
			}
			if mode {
				if compiled == 0 || d < compiled {
					compiled = d
				}
			} else {
				if interpreted == 0 || d < interpreted {
					interpreted = d
				}
			}
		}
	}
	r := &ExecCompileResult{
		Peers:           peers,
		Queries:         queries,
		InterpretedMS:   float64(interpreted) / float64(time.Millisecond),
		CompiledMS:      float64(compiled) / float64(time.Millisecond),
		PlanCacheHits:   counterValue("sqldb_plan_cache_hits_total") - hits0,
		PlanCacheMisses: counterValue("sqldb_plan_cache_misses_total") - misses0,
		ExprCompiles:    counterValue("sqldb_expr_compiles_total") - exprs0,
		PlansCompiled:   counterValue("sqldb_plans_compiled_total") - plans0,
	}
	if compiled > 0 {
		r.Speedup = float64(interpreted) / float64(compiled)
	}
	if total := r.PlanCacheHits + r.PlanCacheMisses; total > 0 {
		r.HitRatePct = float64(r.PlanCacheHits) / float64(total) * 100
	}
	return r, nil
}

// counterValue reads one unlabeled counter from the default registry.
func counterValue(name string) int64 {
	return telemetry.Default.Counter(name).Value()
}
