// Package bench is the experiment harness regenerating the paper's
// evaluation (§6, Figs. 6–14): it builds matched BestPeer++ networks
// and HadoopDB clusters over identical TPC-H partitions, runs the
// benchmark queries, and reports the virtual-time latency and
// throughput series whose *shapes* the paper's figures show. The bench
// targets in the repository root and the cmd/bpbench tool both drive
// this package.
package bench

import (
	"fmt"
	"strings"
	"time"

	"bestpeer"
	"bestpeer/internal/engine"
	"bestpeer/internal/hadoopdb"
	"bestpeer/internal/peer"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/throughput"
	"bestpeer/internal/tpch"
	"bestpeer/internal/vtime"
)

// Config scales the experiments.
type Config struct {
	// Nodes lists the cluster sizes (the paper uses 10, 20, 50).
	Nodes []int
	// PerNodeSF is the TPC-H scale factor contributed by each node.
	PerNodeSF float64
	// TargetPerNodeBytes is the virtual data volume each node's real
	// partition represents (the paper distributes 1 GB per node). The
	// harness scales the cost model's byte rates so the toy partition
	// behaves like this volume, while fixed costs — MapReduce job
	// startup, pull delays, message latency — stay untouched. 0 keeps
	// the real partition size.
	TargetPerNodeBytes float64
	// Seed feeds the throughput simulator.
	Seed int64
}

// Default returns the configuration used by the checked-in benchmarks.
func Default() Config {
	return Config{Nodes: []int{10, 20, 50}, PerNodeSF: 0.0004, TargetPerNodeBytes: 1e9, Seed: 1}
}

// scaledRates derives the experiment's cost-model rates: byte rates are
// divided by (TargetPerNodeBytes / measured per-node bytes), so a query
// over the toy partition accrues the virtual time the paper-scale
// partition would.
func (cfg Config) scaledRates(nodes int) (vtime.Rates, error) {
	r := vtime.DefaultRates()
	if cfg.TargetPerNodeBytes <= 0 {
		return r, nil
	}
	probe := sqldb.NewDB()
	sc := tpch.Scale{ScaleFactor: cfg.PerNodeSF * float64(nodes), Peer: 0, NumPeers: nodes, NationKey: -1}
	if err := tpch.Generate(probe, sc); err != nil {
		return r, err
	}
	var perNode float64
	for _, name := range probe.TableNames() {
		perNode += float64(probe.Table(name).DataBytes())
	}
	if perNode <= 0 {
		return r, fmt.Errorf("bench: empty probe partition")
	}
	factor := cfg.TargetPerNodeBytes / perNode
	r.DiskBytesPerSec /= factor
	r.NetBytesPerSec /= factor
	r.CPUBytesPerSec /= factor
	return r, nil
}

// Table is one experiment's printable result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders the table.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// buildBestPeer assembles a loaded BestPeer++ network of n nodes.
func buildBestPeer(cfg Config, n int) (*bestpeer.Network, error) {
	rates, err := cfg.scaledRates(n)
	if err != nil {
		return nil, err
	}
	net, err := bestpeer.NewNetwork(bestpeer.Config{
		NumPeers:          n,
		Rates:             rates,
		RangeIndexColumns: map[string][]string{tpch.LineItem: {"l_shipdate"}},
	})
	if err != nil {
		return nil, err
	}
	// Per-node scale: the generator divides by NumPeers.
	if err := net.LoadTPCH(cfg.PerNodeSF * float64(n)); err != nil {
		return nil, err
	}
	return net, nil
}

// buildHadoopDB assembles a loaded HadoopDB cluster of n workers.
func buildHadoopDB(cfg Config, n int) (*hadoopdb.Cluster, error) {
	rates, err := cfg.scaledRates(n)
	if err != nil {
		return nil, err
	}
	c, err := hadoopdb.New(n, rates)
	if err != nil {
		return nil, err
	}
	if err := c.LoadTPCH(cfg.PerNodeSF * float64(n)); err != nil {
		return nil, err
	}
	return c, nil
}

// Performance runs one benchmark query on both systems across cluster
// sizes (the harness behind Figs. 6–10). BestPeer++ uses the basic
// strategy, matching the benchmark configuration of §6.1.2.
func Performance(cfg Config, figure, queryName, sql string) (*Table, error) {
	t := &Table{
		ID:     figure,
		Title:  queryName + " latency, BestPeer++ (basic) vs HadoopDB",
		Header: []string{"nodes", "bestpeer_s", "hadoopdb_s", "ratio_hdb/bp"},
	}
	for _, n := range cfg.Nodes {
		bp, err := buildBestPeer(cfg, n)
		if err != nil {
			return nil, err
		}
		bpRes, err := bp.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic})
		if err != nil {
			return nil, fmt.Errorf("%s on BestPeer++ (%d nodes): %w", queryName, n, err)
		}
		hdb, err := buildHadoopDB(cfg, n)
		if err != nil {
			return nil, err
		}
		hdbRes, err := hdb.Query(sql)
		if err != nil {
			return nil, fmt.Errorf("%s on HadoopDB (%d nodes): %w", queryName, n, err)
		}
		if len(bpRes.Result.Rows) != len(hdbRes.Result.Rows) {
			return nil, fmt.Errorf("%s: systems disagree (%d vs %d rows)",
				queryName, len(bpRes.Result.Rows), len(hdbRes.Result.Rows))
		}
		ratio := float64(hdbRes.Cost.Total()) / float64(bpRes.Cost.Total())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			secs(bpRes.Cost.Total()),
			secs(hdbRes.Cost.Total()),
			fmt.Sprintf("%.1fx", ratio),
		})
	}
	return t, nil
}

// Fig6 through Fig10 run the five performance benchmark queries.
func Fig6(cfg Config) (*Table, error) { return Performance(cfg, "Fig. 6", "Q1", tpch.Q1Default()) }

// Fig7 runs the Q2 aggregation benchmark.
func Fig7(cfg Config) (*Table, error) { return Performance(cfg, "Fig. 7", "Q2", tpch.Q2Default()) }

// Fig8 runs the Q3 two-table-join benchmark.
func Fig8(cfg Config) (*Table, error) { return Performance(cfg, "Fig. 8", "Q3", tpch.Q3Default()) }

// Fig9 runs the Q4 join+aggregation benchmark.
func Fig9(cfg Config) (*Table, error) { return Performance(cfg, "Fig. 9", "Q4", tpch.Q4Default()) }

// Fig10 runs the Q5 multi-join benchmark.
func Fig10(cfg Config) (*Table, error) { return Performance(cfg, "Fig. 10", "Q5", tpch.Q5()) }

// Fig11 evaluates Q5 under the P2P engine, the MapReduce engine, and
// the adaptive engine (§6.1.11): the adaptive engine must track the
// better of the two at every scale.
func Fig11(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig. 11",
		Title:  "Adaptive query processing on Q5",
		Header: []string{"nodes", "p2p_s", "mapreduce_s", "adaptive_s", "adaptive_choice"},
	}
	for _, n := range cfg.Nodes {
		net, err := buildBestPeer(cfg, n)
		if err != nil {
			return nil, err
		}
		sql := tpch.Q5()
		// The paper's "P2P engine" series is the original fetch-and-
		// process strategy (§6.1.10).
		p2p, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyBasic})
		if err != nil {
			return nil, err
		}
		mr, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyMR})
		if err != nil {
			return nil, err
		}
		ad, err := net.Query(0, sql, bestpeer.QueryOptions{Strategy: peer.StrategyAdaptive})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			secs(p2p.Cost.Total()),
			secs(mr.Cost.Total()),
			secs(ad.Cost.Total()),
			ad.Engine,
		})
	}
	return t, nil
}

// throughputConfigs measures per-role service times on a small
// nation-partitioned network and returns the serving-fleet configs for
// the throughput experiments.
func throughputConfigs(cfg Config, peers int) (supplier, retailer throughput.Config, err error) {
	// Each throughput query touches exactly one nation's data at one
	// peer. Calibrate the virtual volume of that per-nation partition to
	// ~15 MB, the working-set size implied by the paper's peak
	// throughputs (19,000 light and 3,400 heavy queries/sec over 25
	// peers with 20 threads each).
	const targetPerPeer = 15e6
	sSc := tpch.Scale{ScaleFactor: cfg.PerNodeSF * 25, Peer: 0, NumPeers: 2, NationKey: 0, Tables: tpch.SupplierTables()}
	rSc := tpch.Scale{ScaleFactor: cfg.PerNodeSF * 25, Peer: 1, NumPeers: 2, NationKey: 1, Tables: tpch.RetailerTables()}
	probe := sqldb.NewDB()
	if err := tpch.Generate(probe, rSc); err != nil {
		return supplier, retailer, err
	}
	var probeBytes float64
	for _, name := range probe.TableNames() {
		probeBytes += float64(probe.Table(name).DataBytes())
	}
	rates := vtime.DefaultRates()
	if probeBytes > 0 {
		factor := targetPerPeer / probeBytes
		rates.DiskBytesPerSec /= factor
		rates.NetBytesPerSec /= factor
		rates.CPUBytesPerSec /= factor
	}

	net, err := bestpeer.NewNetwork(bestpeer.Config{
		NumPeers:     2,
		Rates:        rates,
		GlobalSchema: tpch.Schemas(true),
	})
	if err != nil {
		return supplier, retailer, err
	}
	rangeIdx := map[string][]string{
		tpch.Supplier: {"s_nationkey"}, tpch.PartSupp: {"ps_nationkey"}, tpch.Part: {"p_nationkey"},
		tpch.Customer: {"c_nationkey"}, tpch.Orders: {"o_nationkey"}, tpch.LineItem: {"l_nationkey"},
	}
	// Peer 0 is a supplier for nation 0, peer 1 a retailer for nation 1.
	if err := tpch.Generate(net.Peer(0).DB(), sSc); err != nil {
		return supplier, retailer, err
	}
	if err := tpch.Generate(net.Peer(1).DB(), rSc); err != nil {
		return supplier, retailer, err
	}
	for _, p := range net.Peers() {
		if err := p.PublishIndexes(rangeIdx); err != nil {
			return supplier, retailer, err
		}
	}
	sRes, err := net.Query(1, tpch.SupplierQuery(0), bestpeer.QueryOptions{})
	if err != nil {
		return supplier, retailer, fmt.Errorf("supplier probe: %w", err)
	}
	rRes, err := net.Query(0, tpch.RetailerQuery(1), bestpeer.QueryOptions{})
	if err != nil {
		return supplier, retailer, fmt.Errorf("retailer probe: %w", err)
	}
	supplier = throughput.Config{Peers: peers, Threads: 20, ServiceTime: sRes.Cost.Total()}
	retailer = throughput.Config{Peers: peers, Threads: 20, ServiceTime: rRes.Cost.Total()}
	return supplier, retailer, nil
}

// Fig12 reports throughput scalability for both workload classes: half
// of each cluster's peers are suppliers, half retailers (§6.2.1).
func Fig12(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Fig. 12",
		Title:  "Throughput scalability (queries/sec)",
		Header: []string{"peers", "suppliers", "retailers", "supplier_qps", "retailer_qps"},
	}
	for _, n := range cfg.Nodes {
		half := n / 2
		if half < 1 {
			half = 1
		}
		sup, ret, err := throughputConfigs(cfg, half)
		if err != nil {
			return nil, err
		}
		supPt, err := throughput.ClosedLoop(sup, half*40, 2*time.Minute, cfg.Seed)
		if err != nil {
			return nil, err
		}
		retPt, err := throughput.ClosedLoop(ret, half*40, 2*time.Minute, cfg.Seed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", half), fmt.Sprintf("%d", half),
			fmt.Sprintf("%.0f", supPt.AchievedQPS),
			fmt.Sprintf("%.0f", retPt.AchievedQPS),
		})
	}
	return t, nil
}

// latencyCurve renders a latency-vs-throughput curve (Figs. 13–14).
func latencyCurve(cfg Config, id, title string, role string) (*Table, error) {
	peers := 25 // the paper's 50-peer setup has 25 of each role
	sup, ret, err := throughputConfigs(cfg, peers)
	if err != nil {
		return nil, err
	}
	tc := sup
	if role == "retailer" {
		tc = ret
	}
	pts, err := throughput.Curve(tc, []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0, 1.1}, 2*time.Minute, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"offered_qps", "achieved_qps", "avg_latency_s", "p95_latency_s", "p99_latency_s"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", p.OfferedQPS),
			fmt.Sprintf("%.0f", p.AchievedQPS),
			fmt.Sprintf("%.3f", p.AvgLatency.Seconds()),
			fmt.Sprintf("%.3f", p.P95Latency.Seconds()),
			fmt.Sprintf("%.3f", p.P99Latency.Seconds()),
		})
	}
	return t, nil
}

// Fig13 is the supplier (light) latency-vs-throughput curve.
func Fig13(cfg Config) (*Table, error) {
	return latencyCurve(cfg, "Fig. 13", "Supplier workload: latency vs throughput (25 supplier peers)", "supplier")
}

// Fig14 is the retailer (heavy) latency-vs-throughput curve.
func Fig14(cfg Config) (*Table, error) {
	return latencyCurve(cfg, "Fig. 14", "Retailer workload: latency vs throughput (25 retailer peers)", "retailer")
}

// All runs every figure in order.
func All(cfg Config) ([]*Table, error) {
	runs := []func(Config) (*Table, error){
		Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12, Fig13, Fig14,
	}
	var out []*Table
	for _, run := range runs {
		t, err := run(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Ablations runs the design-choice ablation experiments called out in
// DESIGN.md §4 on a single mid-size network.
func Ablations(cfg Config) (*Table, error) {
	n := 10
	if len(cfg.Nodes) > 0 {
		n = cfg.Nodes[0]
	}
	net, err := buildBestPeer(cfg, n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablations",
		Title:  fmt.Sprintf("Design-choice ablations (%d nodes)", n),
		Header: []string{"ablation", "metric", "on", "off"},
	}

	// 1. Bloom join: bytes shipped for a selective join.
	joinSQL := `SELECT o.o_totalprice, l.l_extendedprice
FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey
WHERE o.o_orderdate > DATE '1998-06-01'`
	withBloom, err := net.Query(0, joinSQL, bestpeer.QueryOptions{})
	if err != nil {
		return nil, err
	}
	noBloom, err := net.Query(0, joinSQL, bestpeer.QueryOptions{Engine: engine.Options{DisableBloomJoin: true}})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"bloom join", "bytes fetched",
		fmt.Sprintf("%d", withBloom.BytesFetched), fmt.Sprintf("%d", noBloom.BytesFetched)})

	// 2. Index cache: overlay hops per located query.
	lc := net.Peer(0).Locator()
	lc.Invalidate()
	first, err := net.Query(0, tpch.Q1Default(), bestpeer.QueryOptions{})
	if err != nil {
		return nil, err
	}
	_ = first
	cached, err := net.Query(0, tpch.Q1Default(), bestpeer.QueryOptions{})
	if err != nil {
		return nil, err
	}
	lc.SetCache(false)
	uncached, err := net.Query(0, tpch.Q1Default(), bestpeer.QueryOptions{})
	if err != nil {
		return nil, err
	}
	lc.SetCache(true)
	t.Rows = append(t.Rows, []string{"index cache", "virtual latency",
		secs(cached.Cost.Total()), secs(uncached.Cost.Total())})

	// 3. Push vs pull intermediate transfer (the paper's Q2 explanation).
	push, err := net.Query(0, tpch.Q2Default(), bestpeer.QueryOptions{})
	if err != nil {
		return nil, err
	}
	pull, err := net.Query(0, tpch.Q2Default(), bestpeer.QueryOptions{Engine: engine.Options{SimulatePullTransfer: true}})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"push transfer", "virtual latency",
		secs(push.Cost.Total()), secs(pull.Cost.Total())})

	return t, nil
}
