package bench

import (
	"strconv"
	"strings"
	"testing"
)

// tinyConfig keeps harness tests fast while exercising every code path.
func tinyConfig() Config {
	return Config{Nodes: []int{2, 4}, PerNodeSF: 0.0004, TargetPerNodeBytes: 1e9, Seed: 1}
}

func parseSeconds(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}

func TestPerformanceHarnessShapes(t *testing.T) {
	cfg := tinyConfig()
	for _, run := range []struct {
		name string
		fn   func(Config) (*Table, error)
	}{
		{"Fig6", Fig6}, {"Fig7", Fig7},
	} {
		tab, err := run.fn(cfg)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if len(tab.Rows) != len(cfg.Nodes) {
			t.Fatalf("%s rows = %d", run.name, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			bp := parseSeconds(t, row[1])
			hdb := parseSeconds(t, row[2])
			if bp <= 0 || hdb <= 0 {
				t.Errorf("%s: non-positive latencies %v", run.name, row)
			}
			// Short queries: HadoopDB's startup floor keeps it well above
			// BestPeer++ at any scale.
			if hdb < 5*bp {
				t.Errorf("%s: hdb %v not >> bp %v", run.name, hdb, bp)
			}
			if hdb < 10 {
				t.Errorf("%s: hdb %v below the startup floor", run.name, hdb)
			}
		}
	}
}

func TestFig11AdaptiveTracksWinner(t *testing.T) {
	tab, err := Fig11(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		p2p := parseSeconds(t, row[1])
		mr := parseSeconds(t, row[2])
		ad := parseSeconds(t, row[3])
		best := p2p
		if mr < best {
			best = mr
		}
		if ad > best*1.05+0.2 {
			t.Errorf("adaptive %v not tracking min(%v, %v) at %s nodes", ad, p2p, mr, row[0])
		}
		if !strings.HasPrefix(row[4], "adaptive(") {
			t.Errorf("choice = %q", row[4])
		}
	}
}

func TestFig12LinearScaling(t *testing.T) {
	cfg := tinyConfig()
	cfg.Nodes = []int{4, 8}
	tab, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	s1 := parseSeconds(t, tab.Rows[0][3])
	s2 := parseSeconds(t, tab.Rows[1][3])
	if r := s2 / s1; r < 1.6 || r > 2.4 {
		t.Errorf("supplier scaling 4->8 peers = %vx, want ~2x", r)
	}
}

func TestCurvesMonotone(t *testing.T) {
	cfg := tinyConfig()
	for _, run := range []func(Config) (*Table, error){Fig13, Fig14} {
		tab, err := run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var prev float64
		for i, row := range tab.Rows {
			lat := parseSeconds(t, row[2])
			if lat < prev {
				t.Errorf("%s: latency decreased at row %d", tab.ID, i)
			}
			prev = lat
		}
		first := parseSeconds(t, tab.Rows[0][2])
		last := parseSeconds(t, tab.Rows[len(tab.Rows)-1][2])
		if last < 3*first {
			t.Errorf("%s: no saturation hockey stick (%v -> %v)", tab.ID, first, last)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := tinyConfig()
	tab, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("ablation rows = %d", len(tab.Rows))
	}
	// Bloom join must reduce bytes.
	on := parseSeconds(t, tab.Rows[0][2])
	off := parseSeconds(t, tab.Rows[0][3])
	if on >= off {
		t.Errorf("bloom on %v >= off %v", on, off)
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "longcolumn"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tab.Format()
	if !strings.Contains(out, "X — demo") || !strings.Contains(out, "longcolumn") {
		t.Errorf("format = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("lines = %d", len(lines))
	}
}

func TestScaledRatesTargetVolume(t *testing.T) {
	cfg := tinyConfig()
	r, err := cfg.scaledRates(2)
	if err != nil {
		t.Fatal(err)
	}
	// Scaling down the rates by ~1GB/partition makes them much smaller
	// than the defaults.
	if r.DiskBytesPerSec >= 90e6 {
		t.Errorf("disk rate not scaled: %v", r.DiskBytesPerSec)
	}
	// Disabling the target keeps defaults.
	cfg.TargetPerNodeBytes = 0
	r, err = cfg.scaledRates(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.DiskBytesPerSec != 90e6 {
		t.Errorf("unscaled disk rate = %v", r.DiskBytesPerSec)
	}
}
