package bench

import (
	"testing"
	"time"
)

// TestFanoutWallClockSpeedup pins the acceptance bar for the concurrency
// layer: with 8 data peers each charging a 10 ms service delay, the
// concurrent fetch must beat the sequential one by at least 2× (it
// lands near 8× when the scheduler cooperates; 2× leaves headroom for
// loaded CI machines).
func TestFanoutWallClockSpeedup(t *testing.T) {
	r, err := FanoutWallClock(8, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fanout: %s", r.JSONLine())
	if r.Speedup < 2 {
		t.Errorf("concurrent fan-out speedup %.2fx, want >= 2x (seq %.1fms, conc %.1fms)",
			r.Speedup, r.SequentialMS, r.ConcurrentMS)
	}
}
