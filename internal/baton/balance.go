package baton

import (
	"fmt"
	"sort"
)

// Load balancing (paper §4.3): BATON first balances load between
// adjacent nodes by shifting the shared subdomain boundary; when no
// adjacent node can absorb the load, it performs a global adjustment by
// relocating an under-loaded leaf into the overloaded region. Both
// schemes are implemented here on the coordinator, which in BestPeer++
// is the bootstrap peer's role.

// imbalanceFactor is the load ratio between neighbours above which a
// boundary shift is triggered.
const imbalanceFactor = 2

// loadOf fetches a node's item count.
func (o *Overlay) loadOf(id string) (int, error) {
	reply, err := o.ep.Call(id, msgStats, nil, 8)
	if err != nil {
		return 0, err
	}
	return reply.Payload.(int), nil
}

// BalanceAdjacent performs one pass of adjacent-node load balancing:
// every in-order neighbour pair whose loads differ by more than
// imbalanceFactor has its shared boundary shifted so the pair's items
// split evenly. It returns the number of boundary shifts performed.
func (o *Overlay) BalanceAdjacent() (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ord := inorder(o.root)
	shifts := 0
	for i := 0; i+1 < len(ord); i++ {
		moved, err := o.balancePair(ord[i], ord[i+1])
		if err != nil {
			return shifts, err
		}
		if moved {
			shifts++
		}
	}
	if shifts > 0 {
		return shifts, o.refresh()
	}
	return 0, nil
}

// balancePair equalizes the load between two in-order neighbours by
// moving their common subdomain boundary. Callers hold o.mu.
func (o *Overlay) balancePair(a, b *tnode) (bool, error) {
	la, err := o.loadOf(a.id)
	if err != nil {
		return false, err
	}
	lb, err := o.loadOf(b.id)
	if err != nil {
		return false, err
	}
	if la <= imbalanceFactor*lb+1 && lb <= imbalanceFactor*la+1 {
		return false, nil
	}
	if a.r0.Hi != b.r0.Lo {
		// Boundary is not shared (shouldn't happen with contiguous
		// in-order ranges); skip rather than corrupt ranges.
		return false, nil
	}
	itemsA, err := o.fetchItems(a.id)
	if err != nil {
		return false, err
	}
	itemsB, err := o.fetchItems(b.id)
	if err != nil {
		return false, err
	}
	all := append(append([]Item(nil), itemsA...), itemsB...)
	if len(all) < 2 {
		return false, nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	// New boundary: key of the first item of the upper half. Items with
	// keys >= boundary live in b afterwards.
	boundary := all[len(all)/2].Key
	if boundary <= a.r0.Lo || boundary >= b.r0.Hi {
		return false, nil
	}
	if la > lb {
		// Move a's items in [boundary, a.Hi) to b.
		if err := o.moveRange(a.id, b.id, KeyRange{Lo: boundary, Hi: a.r0.Hi}); err != nil {
			return false, err
		}
	} else {
		// Move b's items in [b.Lo, boundary) to a.
		if err := o.moveRange(b.id, a.id, KeyRange{Lo: b.r0.Lo, Hi: boundary}); err != nil {
			return false, err
		}
	}
	a.r0.Hi = boundary
	b.r0.Lo = boundary
	return true, nil
}

// GlobalRebalance performs the paper's global adjustment: when the most
// loaded node still dwarfs the least loaded leaf after adjacent
// balancing, the under-loaded leaf is relocated to become a child of the
// overloaded node (splitting the hot subdomain), or — when the
// overloaded node has no free child slot — its boundary with its lighter
// neighbour is shifted instead. Returns whether any adjustment was made.
func (o *Overlay) GlobalRebalance() (bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.nodes < 3 {
		return false, nil
	}
	var hot *tnode
	hotLoad := -1
	var coldLeaf *tnode
	coldLoad := -1
	for _, t := range inorder(o.root) {
		load, err := o.loadOf(t.id)
		if err != nil {
			return false, err
		}
		if load > hotLoad {
			hot, hotLoad = t, load
		}
		if t.left == nil && t.right == nil {
			if coldLoad < 0 || load < coldLoad {
				coldLeaf, coldLoad = t, load
			}
		}
	}
	if hot == nil || coldLeaf == nil || hot == coldLeaf {
		return false, nil
	}
	if hotLoad <= 2*imbalanceFactor*coldLoad+1 {
		return false, nil
	}
	if hot.left != nil && hot.right != nil {
		// No free slot under the hot node: shift a boundary instead.
		ord := inorder(o.root)
		for i, t := range ord {
			if t != hot {
				continue
			}
			var moved bool
			var err error
			if i+1 < len(ord) {
				moved, err = o.balancePair(hot, ord[i+1])
			} else {
				moved, err = o.balancePair(ord[i-1], hot)
			}
			if err != nil {
				return false, err
			}
			if moved {
				return true, o.refresh()
			}
			return false, nil
		}
		return false, nil
	}
	// Relocate the cold leaf: detach it (merging its range into a
	// neighbour) and re-attach it under the hot node, taking half of the
	// hot node's subdomain and the items inside.
	coldID := coldLeaf.id
	if coldLeaf == hot || coldLeaf.parent == hot {
		return false, nil
	}
	heir := o.removeLeafFromTree(coldLeaf)
	if err := o.moveRange(coldID, heir.id, FullRange()); err != nil {
		return false, err
	}
	t := &tnode{id: coldID, parent: hot}
	mid := hot.r0.Mid()
	if hot.left == nil {
		t.r0 = KeyRange{Lo: hot.r0.Lo, Hi: mid}
		hot.r0.Lo = mid
		hot.left = t
	} else {
		t.r0 = KeyRange{Lo: mid, Hi: hot.r0.Hi}
		hot.r0.Hi = mid
		hot.right = t
	}
	o.byID[coldID] = t
	o.nodes++
	if err := o.moveRange(hot.id, coldID, t.r0); err != nil {
		return false, err
	}
	return true, o.refresh()
}

// CheckInvariants verifies the overlay's structural invariants: ranges
// partition the domain in in-order order, subtree ranges cover their
// descendants, and every node's installed state matches the
// coordinator's view. Tests call it after each mutation.
func (o *Overlay) CheckInvariants(nodesByID map[string]*Node) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.root == nil {
		if o.nodes != 0 {
			return fmt.Errorf("baton: empty tree but %d nodes", o.nodes)
		}
		return nil
	}
	ord := inorder(o.root)
	if len(ord) != o.nodes {
		return fmt.Errorf("baton: tree has %d nodes, counter says %d", len(ord), o.nodes)
	}
	if ord[0].r0.Lo != 0 {
		return fmt.Errorf("baton: domain starts at %v, want 0", ord[0].r0.Lo)
	}
	if ord[len(ord)-1].r0.Hi != 1 {
		return fmt.Errorf("baton: domain ends at %v, want 1", ord[len(ord)-1].r0.Hi)
	}
	for i := 0; i+1 < len(ord); i++ {
		if ord[i].r0.Hi != ord[i+1].r0.Lo {
			return fmt.Errorf("baton: gap between %s and %s (%v != %v)",
				ord[i].id, ord[i+1].id, ord[i].r0.Hi, ord[i+1].r0.Lo)
		}
	}
	for id, n := range nodesByID {
		t, ok := o.byID[id]
		if !ok {
			continue // departed node
		}
		st := n.State()
		if st.R0 != t.r0 {
			return fmt.Errorf("baton: node %s installed R0 %+v != coordinator %+v", id, st.R0, t.r0)
		}
		for _, it := range itemsOf(n) {
			if !st.R0.Contains(it.Key) {
				return fmt.Errorf("baton: node %s holds item %q with key %v outside R0 %+v", id, it.Name, it.Key, st.R0)
			}
		}
	}
	return nil
}

// itemsOf snapshots a node's items (test support).
func itemsOf(n *Node) []Item {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]Item(nil), n.items...)
}
