package baton

import (
	"fmt"
	"sort"

	"bestpeer/internal/telemetry"
)

// Load balancing (paper §4.3): BATON first balances load between
// adjacent nodes by shifting the shared subdomain boundary; when no
// adjacent node can absorb the load, it performs a global adjustment by
// relocating an under-loaded leaf into the overloaded region. Both
// schemes are implemented here on the coordinator, which in BestPeer++
// is the bootstrap peer's role.
//
// Load is item cardinality by default (the paper's formulation). When a
// heat source is wired (SetHeatSource), load becomes measured access
// heat over each node's subdomain and boundaries split by cumulative
// heat instead of item counts — a node serving a flash crowd on three
// items sheds range even though its cardinality is tiny.

// imbalanceFactor is the load ratio between neighbours above which a
// boundary shift is triggered.
const imbalanceFactor = 2

// minBalanceHeat is the minimum total access heat (windowed samples)
// before heat-weighted decisions are trusted; below it, or when any
// node lacks heat evidence, balancing falls back to item counts.
const minBalanceHeat = 64

// loadOf fetches a node's item count.
func (o *Overlay) loadOf(id string) (int, error) {
	reply, err := o.ep.Call(id, msgStats, nil, 8)
	if err != nil {
		return 0, err
	}
	return reply.Payload.(int), nil
}

// topoSnap is one node of a pass's topology snapshot: enough to detect
// any concurrent membership or boundary change after the lock is
// dropped for load collection.
type topoSnap struct {
	id   string
	r0   KeyRange
	leaf bool
}

// snapshotTopology captures the in-order node list under the lock.
func (o *Overlay) snapshotTopology() []topoSnap {
	o.mu.Lock()
	defer o.mu.Unlock()
	ord := inorder(o.root)
	out := make([]topoSnap, len(ord))
	for i, t := range ord {
		out[i] = topoSnap{id: t.id, r0: t.r0, leaf: t.left == nil && t.right == nil}
	}
	return out
}

// topologyMatchesLocked re-derives the in-order list and reports
// whether it still matches a snapshot taken before the lock was
// dropped. Callers hold o.mu.
func (o *Overlay) topologyMatchesLocked(snaps []topoSnap) ([]*tnode, bool) {
	ord := inorder(o.root)
	if len(ord) != len(snaps) {
		return nil, false
	}
	for i, t := range ord {
		s := snaps[i]
		if t.id != s.id || t.r0 != s.r0 || (t.left == nil && t.right == nil) != s.leaf {
			return nil, false
		}
	}
	return ord, true
}

// balanceEvidence is the per-node load evidence for one balancing pass,
// collected via RPC with o.mu released. counts always holds item
// cardinalities; when useHeat is set, heats holds each node's windowed
// access-heat vector and weights derive from it instead.
type balanceEvidence struct {
	counts  []int
	heats   []telemetry.HeatmapSnapshot
	useHeat bool
}

// weight returns node i's load over range r: access heat inside r when
// heat evidence is in play, item cardinality otherwise (counts ignore
// r — they are whole-node, like the paper's formulation).
func (ev *balanceEvidence) weight(i int, r KeyRange) float64 {
	if ev.useHeat {
		return heatMass(ev.heats[i], r)
	}
	return float64(ev.counts[i])
}

// collectEvidence gathers loads for every snapshotted node without
// holding o.mu, so a slow peer cannot stall concurrent membership
// operations for the whole pass. Heat evidence is used only when every
// node supplies a compatible vector with enough total samples.
func (o *Overlay) collectEvidence(snaps []topoSnap) (*balanceEvidence, error) {
	o.mu.Lock()
	heatFn := o.heatFn
	o.mu.Unlock()
	ev := &balanceEvidence{counts: make([]int, len(snaps))}
	for i, s := range snaps {
		c, err := o.loadOf(s.id)
		if err != nil {
			return nil, err
		}
		ev.counts[i] = c
	}
	if heatFn == nil {
		return ev, nil
	}
	heats := make([]telemetry.HeatmapSnapshot, len(snaps))
	buckets := -1
	var total float64
	for i, s := range snaps {
		h, ok := heatFn(s.id)
		if !ok {
			return ev, nil
		}
		if buckets < 0 {
			buckets = len(h.Buckets)
		}
		if buckets == 0 || len(h.Buckets) != buckets {
			return ev, nil
		}
		heats[i] = h
		total += float64(h.Count())
	}
	if total >= minBalanceHeat {
		ev.heats, ev.useHeat = heats, true
	}
	return ev, nil
}

// heatMass sums a heat vector's samples falling inside r, pro-rating
// buckets the range only partially covers.
func heatMass(s telemetry.HeatmapSnapshot, r KeyRange) float64 {
	n := len(s.Buckets)
	var mass float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		lo, hi := telemetry.HeatBucketRange(i, n)
		ov, ok := intersect(KeyRange{Lo: Key(lo), Hi: Key(hi)}, r)
		if !ok {
			continue
		}
		mass += float64(c) * float64(ov.Hi-ov.Lo) / (hi - lo)
	}
	return mass
}

// heatSplitKey finds the key splitting the combined heat of two
// neighbours' vectors over span into equal halves, interpolating
// linearly inside the bucket where the half-mass point falls.
func heatSplitKey(sa, sb telemetry.HeatmapSnapshot, span KeyRange) (Key, bool) {
	n := len(sa.Buckets)
	if n == 0 || len(sb.Buckets) != n {
		return 0, false
	}
	type seg struct {
		lo, hi Key
		m      float64
	}
	var segs []seg
	var total float64
	for i := 0; i < n; i++ {
		c := float64(sa.Buckets[i] + sb.Buckets[i])
		if c == 0 {
			continue
		}
		lo, hi := telemetry.HeatBucketRange(i, n)
		ov, ok := intersect(KeyRange{Lo: Key(lo), Hi: Key(hi)}, span)
		if !ok {
			continue
		}
		m := c * float64(ov.Hi-ov.Lo) / (hi - lo)
		segs = append(segs, seg{lo: ov.Lo, hi: ov.Hi, m: m})
		total += m
	}
	if total <= 0 {
		return 0, false
	}
	half := total / 2
	var cum float64
	for _, s := range segs {
		if cum+s.m >= half {
			frac := (half - cum) / s.m
			return s.lo + Key(float64(s.hi-s.lo)*frac), true
		}
		cum += s.m
	}
	return 0, false
}

// BalanceAdjacent performs one pass of adjacent-node load balancing:
// every in-order neighbour pair whose loads differ by more than
// imbalanceFactor has its shared boundary shifted so the pair's load
// splits evenly. Loads are collected without holding the coordinator
// lock; if membership or any boundary changed meanwhile, the pass is
// abandoned (the next epoch retries with fresh evidence). It returns
// the number of boundary shifts performed.
func (o *Overlay) BalanceAdjacent() (int, error) {
	snaps := o.snapshotTopology()
	if len(snaps) < 2 {
		return 0, nil
	}
	ev, err := o.collectEvidence(snaps)
	if err != nil {
		return 0, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	ord, ok := o.topologyMatchesLocked(snaps)
	if !ok {
		return 0, nil
	}
	shifts := 0
	for i := 0; i+1 < len(ord); i++ {
		moved, err := o.balancePairLocked(ord[i], ord[i+1], ev, i, i+1)
		if err != nil {
			return shifts, err
		}
		if moved {
			shifts++
		}
	}
	if shifts > 0 {
		return shifts, o.refresh()
	}
	return 0, nil
}

// balancePairLocked equalizes the load between two in-order neighbours
// by moving their common subdomain boundary. Callers hold o.mu; ia/ib
// index the pair in the evidence.
func (o *Overlay) balancePairLocked(a, b *tnode, ev *balanceEvidence, ia, ib int) (bool, error) {
	if a.r0.Hi != b.r0.Lo {
		// Boundary is not shared (shouldn't happen with contiguous
		// in-order ranges); skip rather than corrupt ranges.
		return false, nil
	}
	wa := ev.weight(ia, a.r0)
	wb := ev.weight(ib, b.r0)
	if wa <= imbalanceFactor*wb+1 && wb <= imbalanceFactor*wa+1 {
		return false, nil
	}
	if ev.useHeat {
		if wa+wb < minBalanceHeat {
			return false, nil
		}
		return o.shiftByHeat(a, b, ev, ia, ib)
	}
	return o.shiftByCount(a, b, ev, ia, ib)
}

// shiftByCount moves the shared boundary to the pair's median item key
// (the paper's cardinality split). Callers hold o.mu.
func (o *Overlay) shiftByCount(a, b *tnode, ev *balanceEvidence, ia, ib int) (bool, error) {
	itemsA, err := o.fetchItems(a.id)
	if err != nil {
		return false, err
	}
	itemsB, err := o.fetchItems(b.id)
	if err != nil {
		return false, err
	}
	all := append(append([]Item(nil), itemsA...), itemsB...)
	if len(all) < 2 {
		return false, nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	// New boundary: key of the first item of the upper half. Items with
	// keys >= boundary live in b afterwards.
	boundary := all[len(all)/2].Key
	if boundary <= a.r0.Lo || boundary >= b.r0.Hi {
		return false, nil
	}
	if moved, err := o.shiftBoundary(a, b, boundary); !moved || err != nil {
		return false, err
	}
	// Keep the pass's evidence exact for the pairs still to come.
	na := sort.Search(len(all), func(i int) bool { return all[i].Key >= boundary })
	ev.counts[ia], ev.counts[ib] = na, len(all)-na
	return true, nil
}

// shiftByHeat moves the shared boundary to the pair's cumulative-heat
// midpoint: each side ends up serving half of the pair's measured
// access load, regardless of how many items sit on either side.
// Callers hold o.mu. The heat vectors are historical, so no evidence
// update is needed — subsequent weights re-derive from the new ranges.
func (o *Overlay) shiftByHeat(a, b *tnode, ev *balanceEvidence, ia, ib int) (bool, error) {
	span := KeyRange{Lo: a.r0.Lo, Hi: b.r0.Hi}
	boundary, ok := heatSplitKey(ev.heats[ia], ev.heats[ib], span)
	if !ok || boundary <= a.r0.Lo || boundary >= b.r0.Hi {
		return false, nil
	}
	return o.shiftBoundary(a, b, boundary)
}

// shiftBoundary moves the shared boundary of two in-order neighbours to
// the given key, relocating the items of whichever side shrinks.
// Callers hold o.mu.
func (o *Overlay) shiftBoundary(a, b *tnode, boundary Key) (bool, error) {
	switch {
	case boundary < a.r0.Hi:
		if err := o.moveRange(a.id, b.id, KeyRange{Lo: boundary, Hi: a.r0.Hi}); err != nil {
			return false, err
		}
	case boundary > b.r0.Lo:
		if err := o.moveRange(b.id, a.id, KeyRange{Lo: b.r0.Lo, Hi: boundary}); err != nil {
			return false, err
		}
	default:
		return false, nil
	}
	a.r0.Hi = boundary
	b.r0.Lo = boundary
	return true, nil
}

// GlobalRebalance performs the paper's global adjustment: when the most
// loaded node still dwarfs the least loaded leaf after adjacent
// balancing, the under-loaded leaf is relocated to become a child of the
// overloaded node (splitting the hot subdomain), or — when the
// overloaded node has no free child slot — its boundary with its lighter
// neighbour is shifted instead. Loads are collected outside the lock;
// a concurrent topology change abandons the pass. Returns whether any
// adjustment was made.
func (o *Overlay) GlobalRebalance() (bool, error) {
	snaps := o.snapshotTopology()
	if len(snaps) < 3 {
		return false, nil
	}
	ev, err := o.collectEvidence(snaps)
	if err != nil {
		return false, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	ord, ok := o.topologyMatchesLocked(snaps)
	if !ok {
		return false, nil
	}
	hotIdx, coldIdx := -1, -1
	var hotLoad, coldLoad float64
	for i, t := range ord {
		w := ev.weight(i, t.r0)
		if hotIdx < 0 || w > hotLoad {
			hotIdx, hotLoad = i, w
		}
		if t.left == nil && t.right == nil {
			if coldIdx < 0 || w < coldLoad {
				coldIdx, coldLoad = i, w
			}
		}
	}
	if hotIdx < 0 || coldIdx < 0 || hotIdx == coldIdx {
		return false, nil
	}
	hot, coldLeaf := ord[hotIdx], ord[coldIdx]
	if hotLoad <= 2*imbalanceFactor*coldLoad+1 {
		return false, nil
	}
	if hot.left != nil && hot.right != nil {
		// No free slot under the hot node: shift a boundary instead.
		var moved bool
		var err error
		if hotIdx+1 < len(ord) {
			moved, err = o.balancePairLocked(hot, ord[hotIdx+1], ev, hotIdx, hotIdx+1)
		} else {
			moved, err = o.balancePairLocked(ord[hotIdx-1], hot, ev, hotIdx-1, hotIdx)
		}
		if err != nil {
			return false, err
		}
		if moved {
			return true, o.refresh()
		}
		return false, nil
	}
	// Relocate the cold leaf: detach it (merging its range into a
	// neighbour) and re-attach it under the hot node, taking half of the
	// hot node's subdomain and the items inside.
	coldID := coldLeaf.id
	if coldLeaf == hot || coldLeaf.parent == hot {
		return false, nil
	}
	heir := o.removeLeafFromTree(coldLeaf)
	if err := o.moveRange(coldID, heir.id, FullRange()); err != nil {
		return false, err
	}
	t := &tnode{id: coldID, parent: hot}
	mid := hot.r0.Mid()
	if hot.left == nil {
		t.r0 = KeyRange{Lo: hot.r0.Lo, Hi: mid}
		hot.r0.Lo = mid
		hot.left = t
	} else {
		t.r0 = KeyRange{Lo: mid, Hi: hot.r0.Hi}
		hot.r0.Hi = mid
		hot.right = t
	}
	o.byID[coldID] = t
	o.nodes++
	if err := o.moveRange(hot.id, coldID, t.r0); err != nil {
		return false, err
	}
	return true, o.refresh()
}

// CheckInvariants verifies the overlay's structural invariants: ranges
// partition the domain in in-order order, subtree ranges cover their
// descendants, and every node's installed state matches the
// coordinator's view. Tests call it after each mutation.
func (o *Overlay) CheckInvariants(nodesByID map[string]*Node) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.root == nil {
		if o.nodes != 0 {
			return fmt.Errorf("baton: empty tree but %d nodes", o.nodes)
		}
		return nil
	}
	ord := inorder(o.root)
	if len(ord) != o.nodes {
		return fmt.Errorf("baton: tree has %d nodes, counter says %d", len(ord), o.nodes)
	}
	if ord[0].r0.Lo != 0 {
		return fmt.Errorf("baton: domain starts at %v, want 0", ord[0].r0.Lo)
	}
	if ord[len(ord)-1].r0.Hi != 1 {
		return fmt.Errorf("baton: domain ends at %v, want 1", ord[len(ord)-1].r0.Hi)
	}
	for i := 0; i+1 < len(ord); i++ {
		if ord[i].r0.Hi != ord[i+1].r0.Lo {
			return fmt.Errorf("baton: gap between %s and %s (%v != %v)",
				ord[i].id, ord[i+1].id, ord[i].r0.Hi, ord[i+1].r0.Lo)
		}
	}
	for id, n := range nodesByID {
		t, ok := o.byID[id]
		if !ok {
			continue // departed node
		}
		st := n.State()
		if st.R0 != t.r0 {
			return fmt.Errorf("baton: node %s installed R0 %+v != coordinator %+v", id, st.R0, t.r0)
		}
		for _, it := range itemsOf(n) {
			if !st.R0.Contains(it.Key) {
				return fmt.Errorf("baton: node %s holds item %q with key %v outside R0 %+v", id, it.Name, it.Key, st.R0)
			}
		}
	}
	return nil
}

// itemsOf snapshots a node's items (test support).
func itemsOf(n *Node) []Item {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]Item(nil), n.items...)
}
