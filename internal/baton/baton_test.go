package baton

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bestpeer/internal/pnet"
)

// testOverlay builds an overlay of n nodes and returns the coordinator,
// the nodes keyed by ID, and the underlying network.
func testOverlay(t *testing.T, n int) (*Overlay, map[string]*Node, *pnet.Network) {
	t.Helper()
	net := pnet.NewNetwork()
	o := NewOverlay(net, "@overlay")
	nodes := make(map[string]*Node, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("peer-%02d", i)
		node := NewNode(net.Join(id))
		if err := o.AddNode(node); err != nil {
			t.Fatalf("AddNode(%s): %v", id, err)
		}
		nodes[id] = node
	}
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatal(err)
	}
	return o, nodes, net
}

func TestKeyRangeBasics(t *testing.T) {
	r := KeyRange{Lo: 0.25, Hi: 0.5}
	if !r.Contains(0.25) || r.Contains(0.5) || r.Contains(0.1) {
		t.Error("Contains half-open semantics broken")
	}
	if r.Mid() != 0.375 {
		t.Errorf("Mid = %v", r.Mid())
	}
	if !r.Overlaps(KeyRange{Lo: 0.4, Hi: 0.6}) || r.Overlaps(KeyRange{Lo: 0.5, Hi: 0.6}) {
		t.Error("Overlaps broken")
	}
}

func TestStringKeyOrderPreserving(t *testing.T) {
	f := func(a, b string) bool {
		ka, kb := StringKey(a), StringKey(b)
		pa, pb := prefix8(a), prefix8(b)
		if pa < pb {
			return ka <= kb
		}
		if pa > pb {
			return ka >= kb
		}
		return ka == kb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if k := StringKey(""); k != 0 {
		t.Errorf("StringKey(\"\") = %v", k)
	}
	if k := StringKey("\xff\xff\xff\xff\xff\xff\xff\xff\xff"); k >= 1 {
		t.Errorf("StringKey(max) = %v, want < 1", k)
	}
}

func prefix8(s string) string {
	b := make([]byte, 8)
	copy(b, s)
	return string(b)
}

func TestFloatKeyNormalization(t *testing.T) {
	if FloatKey(5, 0, 10) != 0.5 {
		t.Error("midpoint")
	}
	if FloatKey(-1, 0, 10) != 0 {
		t.Error("below domain")
	}
	if k := FloatKey(11, 0, 10); k >= 1 || k < 0.99 {
		t.Errorf("above domain = %v", k)
	}
	if FloatKey(5, 10, 0) != 0 {
		t.Error("inverted domain")
	}
}

func TestSingleNodeOwnsFullDomain(t *testing.T) {
	_, nodes, _ := testOverlay(t, 1)
	st := nodes["peer-00"].State()
	if st.R0 != FullRange() || st.Sub != FullRange() {
		t.Errorf("state = %+v", st)
	}
	if st.Parent != "" || st.LeftAdj != "" || st.RightAdj != "" {
		t.Errorf("links = %+v", st)
	}
}

func TestInsertLookupDelete(t *testing.T) {
	_, nodes, _ := testOverlay(t, 8)
	entry := nodes["peer-03"]
	name := "table:lineitem"
	if _, err := entry.Insert(Item{Key: StringKey(name), Name: name, Value: "at-peer-03", Size: 32}); err != nil {
		t.Fatal(err)
	}
	// Lookup from a different node finds it.
	items, _, err := nodes["peer-07"].Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Value.(string) != "at-peer-03" || items[0].Owner != "peer-03" {
		t.Fatalf("items = %+v", items)
	}
	// Second insert under the same name from another owner accumulates.
	if _, err := nodes["peer-05"].Insert(Item{Key: StringKey(name), Name: name, Value: "at-peer-05", Size: 32}); err != nil {
		t.Fatal(err)
	}
	items, _, _ = nodes["peer-00"].Lookup(name)
	if len(items) != 2 {
		t.Fatalf("after second insert: %d items", len(items))
	}
	// Delete only one owner's entry.
	deleted, _, err := nodes["peer-01"].Delete(name, "peer-03")
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 1 {
		t.Errorf("deleted = %d", deleted)
	}
	items, _, _ = nodes["peer-00"].Lookup(name)
	if len(items) != 1 || items[0].Owner != "peer-05" {
		t.Fatalf("after delete: %+v", items)
	}
}

func TestLookupMissReturnsEmpty(t *testing.T) {
	_, nodes, _ := testOverlay(t, 4)
	items, _, err := nodes["peer-00"].Lookup("no-such-key")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Errorf("items = %+v", items)
	}
}

func TestRangeSearchAcrossNodes(t *testing.T) {
	_, nodes, _ := testOverlay(t, 10)
	// Spread 100 items uniformly over the key domain.
	for i := 0; i < 100; i++ {
		k := Key(float64(i) / 100)
		name := fmt.Sprintf("bucket-%03d", i)
		if _, err := nodes["peer-00"].Insert(Item{Key: k, Name: name, Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	items, _, err := nodes["peer-09"].RangeSearch(KeyRange{Lo: 0.25, Hi: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 50 {
		t.Fatalf("range returned %d items, want 50", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i].Key < items[i-1].Key {
			t.Fatal("range results not in key order")
		}
	}
	// Full-domain range returns everything.
	all, _, err := nodes["peer-04"].RangeSearch(FullRange())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 100 {
		t.Errorf("full range = %d items", len(all))
	}
	if _, _, err := nodes["peer-00"].RangeSearch(KeyRange{Lo: 0.5, Hi: 0.5}); err == nil {
		t.Error("empty range accepted")
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	const n = 32
	_, nodes, _ := testOverlay(t, n)
	rng := rand.New(rand.NewSource(7))
	var ids []string
	for id := range nodes {
		ids = append(ids, id)
	}
	bound := 2*int(math.Log2(n)) + 2
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("key-%d", rng.Intn(10_000))
		start := nodes[ids[rng.Intn(len(ids))]]
		_, hops, err := start.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if hops > bound {
			t.Fatalf("lookup took %d hops, bound %d for %d nodes", hops, bound, n)
		}
	}
}

func TestItemsFollowRangeSplitsOnJoin(t *testing.T) {
	net := pnet.NewNetwork()
	o := NewOverlay(net, "@overlay")
	nodes := make(map[string]*Node)
	first := NewNode(net.Join("peer-00"))
	if err := o.AddNode(first); err != nil {
		t.Fatal(err)
	}
	nodes["peer-00"] = first
	for i := 0; i < 64; i++ {
		k := Key(float64(i) / 64)
		if _, err := first.Insert(Item{Key: k, Name: fmt.Sprintf("it-%d", i), Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	// Join 7 more nodes; items must redistribute with the range splits.
	for i := 1; i < 8; i++ {
		id := fmt.Sprintf("peer-%02d", i)
		node := NewNode(net.Join(id))
		if err := o.AddNode(node); err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		if err := o.CheckInvariants(nodes); err != nil {
			t.Fatalf("after join %d: %v", i, err)
		}
	}
	total := 0
	for _, n := range nodes {
		total += n.NumItems()
	}
	if total != 64 {
		t.Fatalf("items after churn = %d, want 64", total)
	}
	// All items still findable.
	for i := 0; i < 64; i++ {
		items, _, err := nodes["peer-05"].Lookup(fmt.Sprintf("it-%d", i))
		_ = items
		if err != nil {
			t.Fatal(err)
		}
	}
	all, _, err := nodes["peer-03"].RangeSearch(FullRange())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 64 {
		t.Errorf("range over all = %d", len(all))
	}
}

func TestLeafDeparture(t *testing.T) {
	o, nodes, _ := testOverlay(t, 8)
	for i := 0; i < 40; i++ {
		k := Key(float64(i) / 40)
		if _, err := nodes["peer-00"].Insert(Item{Key: k, Name: fmt.Sprintf("it-%d", i), Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	// peer-07 is the most recently joined: a leaf.
	if err := o.RemoveNode("peer-07"); err != nil {
		t.Fatal(err)
	}
	delete(nodes, "peer-07")
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatal(err)
	}
	all, _, err := nodes["peer-00"].RangeSearch(FullRange())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 40 {
		t.Errorf("items after departure = %d, want 40", len(all))
	}
}

func TestInternalDepartureReplacedByLeaf(t *testing.T) {
	o, nodes, _ := testOverlay(t, 12)
	for i := 0; i < 60; i++ {
		k := Key(float64(i) / 60)
		if _, err := nodes["peer-02"].Insert(Item{Key: k, Name: fmt.Sprintf("it-%d", i), Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	// peer-00 is the root: an internal node.
	if err := o.RemoveNode("peer-00"); err != nil {
		t.Fatal(err)
	}
	delete(nodes, "peer-00")
	if o.Size() != 11 {
		t.Errorf("size = %d", o.Size())
	}
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatal(err)
	}
	all, _, err := nodes["peer-05"].RangeSearch(FullRange())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 60 {
		t.Errorf("items after internal departure = %d, want 60", len(all))
	}
}

func TestChurnQuick(t *testing.T) {
	// Random joins and leaves; invariants and item conservation hold
	// throughout.
	net := pnet.NewNetwork()
	o := NewOverlay(net, "@overlay")
	nodes := make(map[string]*Node)
	rng := rand.New(rand.NewSource(42))
	nextID := 0
	itemCount := 0
	for step := 0; step < 60; step++ {
		if len(nodes) == 0 || rng.Intn(3) > 0 {
			id := fmt.Sprintf("peer-%03d", nextID)
			nextID++
			node := NewNode(net.Join(id))
			if err := o.AddNode(node); err != nil {
				t.Fatal(err)
			}
			nodes[id] = node
			// Publish a couple of items from the new node.
			for j := 0; j < 2; j++ {
				name := fmt.Sprintf("item-%d-%d", step, j)
				if _, err := node.Insert(Item{Key: StringKey(name), Name: name, Size: 8}); err != nil {
					t.Fatal(err)
				}
				itemCount++
			}
		} else {
			var ids []string
			for id := range nodes {
				ids = append(ids, id)
			}
			victim := ids[rng.Intn(len(ids))]
			if err := o.RemoveNode(victim); err != nil {
				t.Fatal(err)
			}
			net.Leave(victim)
			delete(nodes, victim)
		}
		if err := o.CheckInvariants(nodes); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if len(nodes) > 0 {
			var any *Node
			for _, n := range nodes {
				any = n
				break
			}
			all, _, err := any.RangeSearch(FullRange())
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if len(all) != itemCount {
				t.Fatalf("step %d: %d items visible, want %d", step, len(all), itemCount)
			}
		}
	}
}

func TestRecoveryFromReplica(t *testing.T) {
	o, nodes, net := testOverlay(t, 8)
	for i := 0; i < 80; i++ {
		k := Key(float64(i) / 80)
		if _, err := nodes["peer-00"].Insert(Item{Key: k, Name: fmt.Sprintf("it-%d", i), Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	victim := "peer-04"
	lost := nodes[victim].NumItems()
	if lost == 0 {
		t.Fatal("victim holds no items; pick a different victim")
	}
	// Crash: no graceful handover.
	net.SetDown(victim, true)
	replacement := NewNode(net.Join(victim + "-replacement"))
	if err := o.Recover(victim, replacement); err != nil {
		t.Fatal(err)
	}
	delete(nodes, victim)
	nodes[victim+"-replacement"] = replacement
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatal(err)
	}
	if replacement.NumItems() != lost {
		t.Errorf("replacement restored %d items, want %d", replacement.NumItems(), lost)
	}
	all, _, err := nodes["peer-00"].RangeSearch(FullRange())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 80 {
		t.Errorf("items after recovery = %d, want 80", len(all))
	}
}

func TestBalanceAdjacent(t *testing.T) {
	o, nodes, _ := testOverlay(t, 4)
	// Pile all items into a narrow key band owned by one node.
	member := o.Members()[0]
	st := nodes[member].State()
	width := float64(st.R0.Hi - st.R0.Lo)
	for i := 0; i < 100; i++ {
		k := st.R0.Lo + Key(width*float64(i)/100)
		if _, err := nodes["peer-00"].Insert(Item{Key: k, Name: fmt.Sprintf("hot-%d", i), Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	before := nodes[member].NumItems()
	if before != 100 {
		t.Fatalf("setup: hot node has %d items", before)
	}
	shifts, err := o.BalanceAdjacent()
	if err != nil {
		t.Fatal(err)
	}
	if shifts == 0 {
		t.Fatal("no boundary shifts on a 100:0 imbalance")
	}
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatal(err)
	}
	after := nodes[member].NumItems()
	if after >= before {
		t.Errorf("hot node still holds %d items", after)
	}
	all, _, err := nodes["peer-01"].RangeSearch(FullRange())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 100 {
		t.Errorf("items after balancing = %d", len(all))
	}
}

func TestGlobalRebalanceRelocatesLeaf(t *testing.T) {
	o, nodes, _ := testOverlay(t, 7)
	// Overload one specific member heavily.
	hot := o.Members()[2]
	st := nodes[hot].State()
	width := float64(st.R0.Hi - st.R0.Lo)
	for i := 0; i < 200; i++ {
		k := st.R0.Lo + Key(width*float64(i)/200)
		if _, err := nodes["peer-00"].Insert(Item{Key: k, Name: fmt.Sprintf("hot-%d", i), Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := o.GlobalRebalance()
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("global rebalance did nothing on a 200:0 imbalance")
	}
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatal(err)
	}
	if o.Size() != 7 {
		t.Errorf("size changed to %d", o.Size())
	}
	all, _, err := nodes["peer-00"].RangeSearch(FullRange())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 200 {
		t.Errorf("items after rebalance = %d", len(all))
	}
}

func TestMembersInKeyOrder(t *testing.T) {
	o, nodes, _ := testOverlay(t, 9)
	members := o.Members()
	if len(members) != 9 {
		t.Fatalf("members = %d", len(members))
	}
	var prev Key
	for i, id := range members {
		st := nodes[id].State()
		if i > 0 && st.R0.Lo != prev {
			t.Fatalf("member %s range not contiguous", id)
		}
		prev = st.R0.Hi
	}
	if prev != 1 {
		t.Errorf("last range ends at %v", prev)
	}
}

func TestRoutingTablesPopulated(t *testing.T) {
	_, nodes, _ := testOverlay(t, 15) // complete tree of depth 3
	// Level-3 nodes (8 leaves) should have routing tables with entries
	// at distances 1, 2, 4.
	deepest := 0
	for _, n := range nodes {
		st := n.State()
		if st.Level > deepest {
			deepest = st.Level
		}
	}
	if deepest != 3 {
		t.Fatalf("tree depth = %d, want 3 for 15 nodes", deepest)
	}
	for _, n := range nodes {
		st := n.State()
		if st.Level != 3 {
			continue
		}
		total := 0
		for _, e := range append(append([]RTEntry{}, st.LeftRT...), st.RightRT...) {
			if e.ID != "" {
				total++
			}
		}
		if total == 0 {
			t.Errorf("leaf %s (num %d) has empty routing tables", st.ID, st.Number)
		}
	}
}

func TestAddNodeDuplicateID(t *testing.T) {
	o, nodes, net := testOverlay(t, 2)
	_ = nodes
	dup := NewNode(net.Join("peer-00-dup"))
	if err := o.AddNode(dup); err != nil {
		t.Fatal(err)
	}
	if err := o.AddNode(dup); err == nil {
		t.Error("duplicate AddNode accepted")
	}
	if err := o.RemoveNode("ghost"); err == nil {
		t.Error("RemoveNode(ghost) succeeded")
	}
}
