package baton

import (
	"fmt"
	"sort"
	"sync"

	"bestpeer/internal/pnet"
)

// Overlay is the membership coordinator for a BATON network. In
// BestPeer++ every join and departure is serialized through the
// bootstrap peer (paper §3.1), so the coordinator role maps directly
// onto the system being reproduced: it decides where a joining node
// attaches, which leaf replaces a departing internal node, when ranges
// rebalance, and it installs refreshed routing state on every node after
// a change. The query path never touches the coordinator.
type Overlay struct {
	mu    sync.Mutex
	ep    *pnet.Endpoint
	root  *tnode
	byID  map[string]*tnode
	nodes int

	// replicaAds is the current hot-range advertisement table
	// (ReplicateRange/ClearReplicas); heatFn, when set, supplies
	// per-node access heat so balancing splits by load instead of
	// item counts.
	replicaAds []ReplicaAd
	heatFn     HeatFunc
}

// tnode is the coordinator's record of one overlay node: tree links plus
// the node's current subdomain. R0 boundaries are authoritative here and
// pushed to nodes on refresh.
type tnode struct {
	id                  string
	parent, left, right *tnode
	r0                  KeyRange
}

// NewOverlay creates a coordinator attached to the network under the
// given peer ID (conventionally the bootstrap peer's ID plus a suffix).
func NewOverlay(net *pnet.Network, id string) *Overlay {
	return &Overlay{
		ep:   net.Join(id),
		byID: make(map[string]*tnode),
	}
}

// Size returns the number of nodes in the overlay.
func (o *Overlay) Size() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.nodes
}

// Members returns the IDs of all overlay nodes in in-order (key) order.
func (o *Overlay) Members() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []string
	for _, t := range inorder(o.root) {
		out = append(out, t.id)
	}
	return out
}

// AddNode admits a node into the overlay. The first node becomes the
// root owning the full key domain; later nodes attach at the shallowest
// free child slot (keeping the tree balanced) and take half of their
// parent's subdomain, receiving the items that fall into it.
func (o *Overlay) AddNode(n *Node) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	id := n.ID()
	if _, ok := o.byID[id]; ok {
		return fmt.Errorf("baton: node %s already in overlay", id)
	}
	t := &tnode{id: id}
	if o.root == nil {
		t.r0 = FullRange()
		o.root = t
	} else {
		parent := o.shallowestFreeSlot()
		mid := parent.r0.Mid()
		if parent.left == nil {
			// Left child becomes the in-order predecessor: lower half.
			t.r0 = KeyRange{Lo: parent.r0.Lo, Hi: mid}
			parent.r0.Lo = mid
			parent.left = t
		} else {
			t.r0 = KeyRange{Lo: mid, Hi: parent.r0.Hi}
			parent.r0.Hi = mid
			parent.right = t
		}
		t.parent = parent
		if err := o.moveRange(parent.id, id, t.r0); err != nil {
			return err
		}
	}
	o.byID[id] = t
	o.nodes++
	return o.refresh()
}

// RemoveNode handles a graceful departure: the node's subdomain and
// items merge into an in-order neighbour; an internal node is replaced
// by a deepest leaf, exactly as BATON's departure protocol does.
func (o *Overlay) RemoveNode(id string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.byID[id]
	if !ok {
		return fmt.Errorf("baton: node %s not in overlay", id)
	}
	if o.nodes == 1 {
		o.root = nil
		delete(o.byID, id)
		o.nodes = 0
		return nil
	}
	if t.left == nil && t.right == nil {
		heir := o.removeLeafFromTree(t)
		if err := o.moveRange(t.id, heir.id, FullRange()); err != nil {
			return err
		}
		return o.refresh()
	}
	// Internal node: promote a deepest leaf into its position. The leaf
	// vacates its own slot (its subdomain merges into an in-order
	// neighbour — possibly the departing node's slot, whose occupant the
	// leaf is about to become), then takes over the departing node's
	// tree links, subdomain, and items.
	leaf := o.deepestLeaf(t)
	leafOldR0 := leaf.r0
	heir := o.removeLeafFromTree(leaf)
	departItems, err := o.fetchItems(id)
	if err != nil {
		return err
	}
	t.id = leaf.id
	o.byID[t.id] = t
	delete(o.byID, id)
	if heir != t {
		// The leaf's old items belong to the heir now.
		if err := o.moveRange(leaf.id, heir.id, leafOldR0); err != nil {
			return err
		}
	}
	if err := o.sendItems(t.id, departItems); err != nil {
		return err
	}
	return o.refresh()
}

// Recover replaces a crashed node with a fresh one: the replacement
// takes over the failed node's tree position and restores its items from
// the adjacent replica. The caller must have created the replacement's
// endpoint and Node (typically after the cloud adapter launched a new
// instance) and marked the failed peer down in pnet.
func (o *Overlay) Recover(failedID string, replacement *Node) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.byID[failedID]
	if !ok {
		return fmt.Errorf("baton: node %s not in overlay", failedID)
	}
	// Locate the replica holder before rewiring: the failed node's
	// in-order successor (or predecessor for the rightmost node).
	ord := inorder(o.root)
	holder := ""
	for i, tn := range ord {
		if tn == t {
			if i+1 < len(ord) {
				holder = ord[i+1].id
			} else if i > 0 {
				holder = ord[i-1].id
			}
			break
		}
	}
	t.id = replacement.ID()
	o.byID[t.id] = t
	delete(o.byID, failedID)
	if err := o.refresh(); err != nil {
		return err
	}
	if holder == "" {
		return nil
	}
	reply, err := o.ep.Call(holder, msgReplicaGet, failedID, 16)
	if err != nil {
		return fmt.Errorf("baton: fetching replica of %s from %s: %w", failedID, holder, err)
	}
	items := reply.Payload.([]Item)
	return o.sendItems(t.id, items)
}

// removeLeafFromTree unlinks a leaf, merging its subdomain into an
// in-order neighbour (the successor, or the predecessor for the
// rightmost leaf), and returns that heir. Items are NOT moved; callers
// decide where they go (the heir on departure, or the leaf's own new
// slot when it is being promoted into a departing node's position).
// Callers hold o.mu and must not call this on the last remaining node.
func (o *Overlay) removeLeafFromTree(leaf *tnode) *tnode {
	ord := inorder(o.root)
	idx := -1
	for i, t := range ord {
		if t == leaf {
			idx = i
			break
		}
	}
	var heir *tnode
	if idx+1 < len(ord) {
		heir = ord[idx+1]
	} else {
		heir = ord[idx-1]
	}
	// Merge ranges: heir's range grows to cover the leaf's. In-order
	// neighbours always abut because subdomains stay contiguous.
	if heir.r0.Lo == leaf.r0.Hi {
		heir.r0.Lo = leaf.r0.Lo
	} else {
		heir.r0.Hi = leaf.r0.Hi
	}
	p := leaf.parent
	if p != nil {
		if p.left == leaf {
			p.left = nil
		} else {
			p.right = nil
		}
	} else {
		o.root = nil
	}
	delete(o.byID, leaf.id)
	o.nodes--
	return heir
}

// deepestLeaf returns a leaf of maximal depth, excluding the given node.
func (o *Overlay) deepestLeaf(exclude *tnode) *tnode {
	var best *tnode
	bestDepth := -1
	var walk func(t *tnode, depth int)
	walk = func(t *tnode, depth int) {
		if t == nil {
			return
		}
		if t.left == nil && t.right == nil && t != exclude && depth > bestDepth {
			best, bestDepth = t, depth
		}
		walk(t.left, depth+1)
		walk(t.right, depth+1)
	}
	walk(o.root, 0)
	return best
}

// shallowestFreeSlot returns the first node in BFS order with a free
// child slot, keeping the tree balanced as nodes join.
func (o *Overlay) shallowestFreeSlot() *tnode {
	queue := []*tnode{o.root}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		if t.left == nil || t.right == nil {
			return t
		}
		queue = append(queue, t.left, t.right)
	}
	return nil
}

// moveRange extracts items in r from one node and delivers them to
// another, via the nodes' own maintenance handlers. Extraction is
// destructive, so a delivery failure (the receiver died or was
// partitioned away mid-restructure) must not strand the extracted
// items: they are restored to the source before the error surfaces,
// leaving ranges and items exactly as before the attempt.
func (o *Overlay) moveRange(from, to string, r KeyRange) error {
	reply, err := o.ep.Call(from, msgExtract, r, 16)
	if err != nil {
		return err
	}
	items := reply.Payload.([]Item)
	if err := o.sendItems(to, items); err != nil {
		if rerr := o.sendItems(from, items); rerr != nil {
			return fmt.Errorf("baton: move %s -> %s failed (%v); restoring %d items to %s also failed: %w",
				from, to, err, len(items), from, rerr)
		}
		return err
	}
	return nil
}

func (o *Overlay) fetchItems(id string) ([]Item, error) {
	reply, err := o.ep.Call(id, msgItems, nil, 16)
	if err != nil {
		return nil, err
	}
	return reply.Payload.([]Item), nil
}

func (o *Overlay) sendItems(id string, items []Item) error {
	if len(items) == 0 {
		return nil
	}
	var size int64
	for _, it := range items {
		size += it.Size
	}
	_, err := o.ep.Call(id, msgAccept, items, size)
	return err
}

// inorder returns the tree's nodes in in-order sequence (consecutive
// subdomains).
func inorder(t *tnode) []*tnode {
	if t == nil {
		return nil
	}
	out := inorder(t.left)
	out = append(out, t)
	return append(out, inorder(t.right)...)
}

// refresh recomputes every node's overlay state — position, links,
// subtree ranges, routing tables — and installs it. Called after each
// membership or boundary change, mirroring BATON's restructuring
// messages (amortized O(log^2 N) per change in the paper; the
// coordinator pays O(N) messages here, which only affects maintenance
// traffic, not the measured query path).
func (o *Overlay) refresh() error {
	if o.root == nil {
		return nil
	}
	// Assign (level, number) positions: root is (0, 1); children of
	// (l, n) are (l+1, 2n-1) and (l+1, 2n).
	type posInfo struct {
		t      *tnode
		level  int
		number int
	}
	var all []posInfo
	byLevel := make(map[int]map[int]*tnode)
	var assign func(t *tnode, level, number int)
	assign = func(t *tnode, level, number int) {
		if t == nil {
			return
		}
		all = append(all, posInfo{t: t, level: level, number: number})
		if byLevel[level] == nil {
			byLevel[level] = make(map[int]*tnode)
		}
		byLevel[level][number] = t
		assign(t.left, level+1, 2*number-1)
		assign(t.right, level+1, 2*number)
	}
	assign(o.root, 0, 1)

	// Subtree ranges from in-order contiguity.
	sub := make(map[*tnode]KeyRange)
	var subOf func(t *tnode) KeyRange
	subOf = func(t *tnode) KeyRange {
		r := t.r0
		if t.left != nil {
			l := subOf(t.left)
			if l.Lo < r.Lo {
				r.Lo = l.Lo
			}
			if l.Hi > r.Hi {
				r.Hi = l.Hi
			}
		}
		if t.right != nil {
			rr := subOf(t.right)
			if rr.Lo < r.Lo {
				r.Lo = rr.Lo
			}
			if rr.Hi > r.Hi {
				r.Hi = rr.Hi
			}
		}
		sub[t] = r
		return r
	}
	subOf(o.root)

	ord := inorder(o.root)
	pos := make(map[*tnode]int, len(ord))
	for i, t := range ord {
		pos[t] = i
	}

	sort.SliceStable(all, func(i, j int) bool {
		if all[i].level != all[j].level {
			return all[i].level < all[j].level
		}
		return all[i].number < all[j].number
	})

	for _, p := range all {
		t := p.t
		st := NodeState{
			ID:     t.id,
			Level:  p.level,
			Number: p.number,
			R0:     t.r0,
			Sub:    sub[t],
		}
		if t.parent != nil {
			st.Parent = t.parent.id
		}
		if t.left != nil {
			st.Left = t.left.id
		}
		if t.right != nil {
			st.Right = t.right.id
		}
		if i := pos[t]; i > 0 {
			st.LeftAdj = ord[i-1].id
		}
		if i := pos[t]; i+1 < len(ord) {
			st.RightAdj = ord[i+1].id
		}
		level := byLevel[p.level]
		for d := 1; ; d *= 2 {
			n, ok := level[p.number-d]
			if p.number-d < 1 {
				break
			}
			e := RTEntry{}
			if ok {
				e = RTEntry{ID: n.id, R0: n.r0, Sub: sub[n]}
			}
			st.LeftRT = append(st.LeftRT, e)
		}
		maxNum := 1 << p.level
		for d := 1; ; d *= 2 {
			n, ok := level[p.number+d]
			if p.number+d > maxNum {
				break
			}
			e := RTEntry{}
			if ok {
				e = RTEntry{ID: n.id, R0: n.r0, Sub: sub[n]}
			}
			st.RightRT = append(st.RightRT, e)
		}
		if _, err := o.ep.Call(t.id, msgUpdate, st, 64); err != nil {
			return fmt.Errorf("baton: installing state on %s: %w", t.id, err)
		}
	}
	return nil
}
