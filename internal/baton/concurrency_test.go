package baton

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentLookupsAndInserts drives the overlay's query path from
// many goroutines at once: lookups, inserts, and range scans against a
// stable membership must be race-free (run with -race) and correct.
func TestConcurrentLookupsAndInserts(t *testing.T) {
	_, nodes, _ := testOverlay(t, 8)
	var ids []string
	for id := range nodes {
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := nodes[ids[g%len(ids)]]
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("key-%d-%d", g, i)
				if _, err := n.Insert(Item{Key: StringKey(name), Name: name, Size: 8}); err != nil {
					errCh <- err
					return
				}
				items, _, err := n.Lookup(name)
				if err != nil {
					errCh <- err
					return
				}
				if len(items) != 1 {
					errCh <- fmt.Errorf("lookup %s = %d items", name, len(items))
					return
				}
				if i%10 == 0 {
					if _, _, err := n.RangeSearch(FullRange()); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Every inserted item is visible.
	all, _, err := nodes[ids[0]].RangeSearch(FullRange())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8*50 {
		t.Errorf("items = %d, want 400", len(all))
	}
}
