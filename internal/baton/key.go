// Package baton implements the BATON balanced-tree structured overlay
// (Jagadish, Ooi, Vu; VLDB 2005) that BestPeer++ uses to index shared
// data (paper §4.3, Table 1).
//
// Every node owns two ranges of the key domain: R0, the subdomain the
// node itself manages, and R1, the domain of the subtree rooted at the
// node. Nodes keep parent/children links, left/right adjacent links (the
// in-order neighbours), and per-level left/right routing tables with
// entries at distances 1, 2, 4, ... 2^i, giving O(log N) hops per
// lookup. In-order traversal of the tree visits consecutive subdomains,
// which is what range scans use.
//
// Membership changes (join, leave, fail-over, load rebalancing) are
// coordinated by the Overlay manager. In BestPeer++ the bootstrap peer
// already serializes all membership events (§3.1), so coordinated
// maintenance matches the system being reproduced; queries — lookups,
// inserts, deletes, range scans — route fully peer-to-peer over each
// node's local links and are hop-counted.
package baton

import (
	"encoding/binary"
	"math"
)

// Key is a point in the overlay's key domain [0, 1).
type Key float64

// KeyRange is the half-open interval [Lo, Hi).
type KeyRange struct {
	Lo, Hi Key
}

// Contains reports whether k falls inside the range.
func (r KeyRange) Contains(k Key) bool { return k >= r.Lo && k < r.Hi }

// Overlaps reports whether two ranges intersect.
func (r KeyRange) Overlaps(o KeyRange) bool { return r.Lo < o.Hi && o.Lo < r.Hi }

// Mid returns the midpoint splitting the range in two.
func (r KeyRange) Mid() Key { return r.Lo + (r.Hi-r.Lo)/2 }

// FullRange is the whole key domain.
func FullRange() KeyRange { return KeyRange{Lo: 0, Hi: 1} }

// StringKey maps a string into the key domain, preserving order on the
// first 8 bytes. Strings sharing an 8-byte prefix land on the same
// overlay node; items carry their full name, so exact-match lookups stay
// correct. Table and column index entries (paper Table 2) are published
// under StringKey of their names.
func StringKey(s string) Key {
	var buf [8]byte
	copy(buf[:], s)
	u := binary.BigEndian.Uint64(buf[:])
	k := Key(float64(u) / math.MaxUint64)
	if k >= 1 {
		k = Key(math.Nextafter(1, 0))
	}
	return k
}

// FloatKey normalizes v from the domain [lo, hi] into the key domain.
// The histogram module maps iDistance bucket values through it.
func FloatKey(v, lo, hi float64) Key {
	if hi <= lo {
		return 0
	}
	if v <= lo {
		return 0
	}
	if v >= hi {
		return Key(math.Nextafter(1, 0))
	}
	return Key((v - lo) / (hi - lo))
}
