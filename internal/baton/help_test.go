package baton

import (
	"strings"
	"testing"

	"bestpeer/internal/telemetry"
)

// TestEveryBatonMetricHasHelp exercises the overlay enough to create
// every baton_* family — key heat via mutations and lookups, the
// adjacent-replica push counters via inserts, and the invalidation
// counter via a write into a replicated range — then fails if any
// renders without a # HELP line.
func TestEveryBatonMetricHasHelp(t *testing.T) {
	o, nodes, _ := testOverlay(t, 4)
	name := "help:doc"
	key := StringKey(name)
	if _, err := nodes["peer-00"].Insert(Item{Key: key, Name: name, Size: 8}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := nodes["peer-03"].Lookup(name); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.ReplicateRange(KeyRange{Lo: key, Hi: key + 1e-6}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes["peer-01"].Insert(Item{Key: key, Name: "help:doc2", Size: 8}); err != nil {
		t.Fatal(err)
	}

	for _, family := range telemetry.MissingHelp(telemetry.Default.Text()) {
		if strings.HasPrefix(family, "baton_") {
			t.Errorf("baton family %q has no HELP text", family)
		}
	}
}
