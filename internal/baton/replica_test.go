package baton

import (
	"fmt"
	"testing"

	"bestpeer/internal/telemetry"
)

// clusterServeCounts sums lookup-serve accounting across the overlay.
func clusterServeCounts(nodes map[string]*Node) (local, replica int64) {
	for _, n := range nodes {
		l, r := n.ServeCounts()
		local += l
		replica += r
	}
	return local, replica
}

// TestReplicateRangeSpreadsLookups: replicating a hot key range onto
// two neighbours makes lookups rotate across owner+holders — replica
// serves appear, the owner stops serving everything, and every answer
// stays correct.
func TestReplicateRangeSpreadsLookups(t *testing.T) {
	o, nodes, _ := testOverlay(t, 6)
	name := "hot:item"
	key := StringKey(name)
	if _, err := nodes["peer-00"].Insert(Item{Key: key, Name: name, Value: "v1", Size: 8}); err != nil {
		t.Fatal(err)
	}

	owners, installed, err := o.ReplicateRange(KeyRange{Lo: key, Hi: key + 1e-6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if owners != 1 || installed != 2 {
		t.Fatalf("replicated %d owner ranges onto %d holders, want 1 onto 2", owners, installed)
	}

	localBefore, replicaBefore := clusterServeCounts(nodes)
	lookups := 0
	for round := 0; round < 4; round++ {
		for _, n := range nodes {
			items, _, err := n.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(items) != 1 || items[0].Value.(string) != "v1" {
				t.Fatalf("lookup through replicas = %+v", items)
			}
			lookups++
		}
	}
	localAfter, replicaAfter := clusterServeCounts(nodes)
	if replicaAfter == replicaBefore {
		t.Error("no lookups served from replicas despite installed holders")
	}
	if served := localAfter - localBefore; served >= int64(lookups) {
		t.Errorf("owner path served %d of %d lookups; replicas absorbed nothing", served, lookups)
	}
}

// TestReplicaInvalidatedBeforeWriteAck pins the staleness contract: a
// write into a replicated range synchronously invalidates every holder
// before it is acknowledged, so no later lookup — whichever owner or
// holder the rotation picks — can miss the write. A re-push then
// revalidates the holders and replica serving resumes.
func TestReplicaInvalidatedBeforeWriteAck(t *testing.T) {
	o, nodes, _ := testOverlay(t, 6)
	name := "hot:item" // exactly 8 bytes: "hot:itemX" names share its key
	key := StringKey(name)
	if _, err := nodes["peer-00"].Insert(Item{Key: key, Name: name, Value: "v1", Size: 8}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.ReplicateRange(KeyRange{Lo: key, Hi: key + 1e-6}, 2); err != nil {
		t.Fatal(err)
	}
	// Warm the rotation so holders hold (and serve) valid copies.
	for round := 0; round < 3; round++ {
		for _, n := range nodes {
			if _, _, err := n.Lookup(name); err != nil {
				t.Fatal(err)
			}
		}
	}

	invalBefore := telemetry.Default.Counter("baton_replica_invalidations_total").Value()
	name2 := "hot:item2"
	if StringKey(name2) != key {
		t.Fatalf("setup: %q must share %q's key", name2, name)
	}
	if _, err := nodes["peer-05"].Insert(Item{Key: key, Name: name2, Value: "v2", Size: 8}); err != nil {
		t.Fatal(err)
	}
	if got := telemetry.Default.Counter("baton_replica_invalidations_total").Value(); got == invalBefore {
		t.Error("write into a replicated range sent no invalidations")
	}

	// Enough lookups from every node to cycle each rotation through the
	// owner and both holders: all must see the new item.
	for round := 0; round < 4; round++ {
		for id, n := range nodes {
			items, _, err := n.Lookup(name2)
			if err != nil {
				t.Fatal(err)
			}
			if len(items) != 1 || items[0].Value.(string) != "v2" {
				t.Fatalf("stale read from %s after invalidated write: %+v", id, items)
			}
		}
	}

	// Re-push: holders revalidate and replica serving resumes, with the
	// fresh item in the copies.
	if _, installed, err := o.ReplicateRange(KeyRange{Lo: key, Hi: key + 1e-6}, 2); err != nil || installed != 2 {
		t.Fatalf("re-push installed %d holders, err %v", installed, err)
	}
	_, replicaBefore := clusterServeCounts(nodes)
	for round := 0; round < 4; round++ {
		for _, n := range nodes {
			items, _, err := n.Lookup(name2)
			if err != nil {
				t.Fatal(err)
			}
			if len(items) != 1 || items[0].Value.(string) != "v2" {
				t.Fatalf("stale read after re-push: %+v", items)
			}
		}
	}
	if _, replicaAfter := clusterServeCounts(nodes); replicaAfter == replicaBefore {
		t.Error("replica serving did not resume after re-push")
	}
}

// TestClearReplicasRestoresOwnerOnlyServing: releasing the replication
// withdraws the ads — lookups stop touching holders and funnel back to
// the owner, still correct.
func TestClearReplicasRestoresOwnerOnlyServing(t *testing.T) {
	o, nodes, _ := testOverlay(t, 6)
	name := "hot:item"
	key := StringKey(name)
	if _, err := nodes["peer-00"].Insert(Item{Key: key, Name: name, Size: 8}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.ReplicateRange(KeyRange{Lo: key, Hi: key + 1e-6}, 2); err != nil {
		t.Fatal(err)
	}
	if err := o.ClearReplicas(); err != nil {
		t.Fatal(err)
	}
	_, replicaBefore := clusterServeCounts(nodes)
	for round := 0; round < 3; round++ {
		for _, n := range nodes {
			items, _, err := n.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(items) != 1 {
				t.Fatalf("lookup after release = %+v", items)
			}
		}
	}
	if _, replicaAfter := clusterServeCounts(nodes); replicaAfter != replicaBefore {
		t.Error("replica serves recorded after ClearReplicas withdrew the ads")
	}
}

// TestHeatWeightedBalanceSplitsByHeat: with a heat source wired, equal
// item cardinality no longer means balanced — a node serving all the
// measured access load sheds the hot part of its range to its
// neighbour, splitting the pair's heat instead of its item count.
// Without heat evidence the pass stays byte-identical to the paper's
// cardinality balancing and does nothing here.
func TestHeatWeightedBalanceSplitsByHeat(t *testing.T) {
	o, nodes, _ := testOverlay(t, 2)
	ids := o.Members()
	a, b := nodes[ids[0]], nodes[ids[1]]
	if a.State().R0.Lo > b.State().R0.Lo {
		a, b = b, a
	}
	ra, rb := a.State().R0, b.State().R0

	// Equal cardinality on both sides: 8 items spread over each range.
	for i := 0; i < 8; i++ {
		ka := ra.Lo + Key(float64(ra.Hi-ra.Lo)*float64(i+1)/10)
		kb := rb.Lo + Key(float64(rb.Hi-rb.Lo)*float64(i+1)/10)
		if _, err := a.Insert(Item{Key: ka, Name: fmt.Sprintf("a-%d", i), Size: 4}); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Insert(Item{Key: kb, Name: fmt.Sprintf("b-%d", i), Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	before := totalItems(nodes)

	// Count-balanced: no heat source, no shift.
	if shifts, err := o.BalanceAdjacent(); err != nil || shifts != 0 {
		t.Fatalf("count-balanced overlay shifted %d boundaries, err %v", shifts, err)
	}

	// All measured heat in one bucket fully inside a's range.
	const buckets = telemetry.DefaultHeatBuckets
	hotBucket := -1
	for i := 0; i < buckets; i++ {
		lo, hi := telemetry.HeatBucketRange(i, buckets)
		if Key(lo) >= ra.Lo && Key(hi) <= ra.Hi {
			hotBucket = i
		}
	}
	if hotBucket < 0 {
		t.Fatalf("no heat bucket fits inside %v", ra)
	}
	o.SetHeatSource(func(id string) (telemetry.HeatmapSnapshot, bool) {
		v := make([]int64, buckets)
		if id == a.ID() {
			v[hotBucket] = 2 * minBalanceHeat
		}
		return telemetry.HeatmapSnapshot{Buckets: v}, true
	})

	shifts, err := o.BalanceAdjacent()
	if err != nil {
		t.Fatal(err)
	}
	if shifts != 1 {
		t.Fatalf("heat-weighted pass shifted %d boundaries, want 1", shifts)
	}
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatal(err)
	}
	if got := totalItems(nodes); got != before {
		t.Fatalf("items = %d after heat shift, want %d", got, before)
	}
	// The boundary moved to the heat midpoint: the middle of the hot
	// bucket, well inside a's old range.
	lo, hi := telemetry.HeatBucketRange(hotBucket, buckets)
	want := Key((lo + hi) / 2)
	gotLo := b.State().R0.Lo
	if diff := float64(gotLo - want); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("new boundary = %v, want heat midpoint %v", gotLo, want)
	}
	if a.State().R0.Hi != gotLo {
		t.Errorf("ranges not contiguous after heat shift: %v / %v", a.State().R0, b.State().R0)
	}
}

// TestAdjacentReplicaDeltaCoalescing: per-mutation pushes to the
// adjacent replica ship sequence-numbered deltas, not the full item
// set — the byte-savings counter grows with the replica — and the
// copy stays exact, proven by recovering a crashed node from it.
func TestAdjacentReplicaDeltaCoalescing(t *testing.T) {
	deltasBefore := telemetry.Default.Counter("baton_replica_push_total", telemetry.L("kind", "delta")).Value()
	savedBefore := telemetry.Default.Counter("baton_replica_push_saved_bytes_total").Value()

	o, nodes, net := testOverlay(t, 6)
	for i := 0; i < 60; i++ {
		k := Key(float64(i) / 60)
		if _, err := nodes["peer-00"].Insert(Item{Key: k, Name: fmt.Sprintf("it-%d", i), Size: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if got := telemetry.Default.Counter("baton_replica_push_total", telemetry.L("kind", "delta")).Value(); got == deltasBefore {
		t.Error("no delta pushes across 60 mutations")
	}
	if got := telemetry.Default.Counter("baton_replica_push_saved_bytes_total").Value(); got <= savedBefore {
		t.Error("delta coalescing saved no bytes over full resyncs")
	}

	// The deltas must have kept the replica exact: crash a loaded node
	// and recover it purely from its neighbour's copy.
	var victim string
	for id, n := range nodes {
		if n.NumItems() > 0 {
			victim = id
			break
		}
	}
	lost := nodes[victim].NumItems()
	net.SetDown(victim, true)
	replacement := NewNode(net.Join(victim + "-replacement"))
	if err := o.Recover(victim, replacement); err != nil {
		t.Fatal(err)
	}
	delete(nodes, victim)
	nodes[victim+"-replacement"] = replacement
	if replacement.NumItems() != lost {
		t.Errorf("recovered %d items from the delta-maintained replica, want %d", replacement.NumItems(), lost)
	}
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatal(err)
	}
}
