package baton

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bestpeer/internal/pnet"
	"bestpeer/internal/telemetry"
)

// Item is one entry stored in the overlay: an index entry, a histogram
// bucket, or any other piece of shared metadata. Name is the full
// logical key (StringKey compresses it to 8 bytes, so exact matching
// uses Name); Owner identifies the publishing peer, letting a peer
// delete or refresh exactly its own entries.
type Item struct {
	Key   Key
	Name  string
	Owner string
	Value interface{}
	Size  int64
}

// RTEntry is one routing-table slot: a same-level node at distance 2^i,
// with its managed subdomain (R0) and subtree domain (Sub, the paper's
// R1) used to route queries in O(log N) hops.
type RTEntry struct {
	ID  string
	R0  KeyRange
	Sub KeyRange
}

// NodeState is the complete local view of one overlay node: its tree
// position, links, ranges, and routing tables. The Overlay manager
// installs new state after every membership change.
type NodeState struct {
	ID       string
	Level    int
	Number   int
	Parent   string
	Left     string // left child
	Right    string // right child
	LeftAdj  string // in-order predecessor
	RightAdj string // in-order successor
	R0       KeyRange
	Sub      KeyRange // R1 in the paper
	LeftRT   []RTEntry
	RightRT  []RTEntry
}

// Message types exchanged between overlay nodes.
const (
	msgLookup     = "baton.lookup"
	msgInsert     = "baton.insert"
	msgDelete     = "baton.delete"
	msgRange      = "baton.range"
	msgUpdate     = "baton.update"
	msgExtract    = "baton.extract"
	msgAccept     = "baton.accept"
	msgItems      = "baton.items"
	msgStats      = "baton.stats"
	msgReplicaPut = "baton.replica.put"
	msgReplicaGet = "baton.replica.get"
)

type lookupReq struct {
	Key  Key
	Name string
	Hops int
	// SkipAds disables the hot-range advertisement short-circuit:
	// set on direct-to-owner forwards and after a failed replica
	// serve, so a fallback routes normally instead of re-trying ads
	// at every hop.
	SkipAds bool
}

type lookupResp struct {
	Items []Item
	Hops  int
}

type insertReq struct {
	Item Item
	Hops int
}

type deleteReq struct {
	Key   Key
	Name  string
	Owner string // "" = any owner
	Hops  int
}

type opResp struct {
	Hops    int
	Deleted int
}

type rangeReq struct {
	Range KeyRange
	Hops  int
}

// replicaPut carries one adjacent-replica push: a full item-set resync
// (Op == repOpFull) or a sequence-numbered delta (add/del/cut). Seq is
// the owner's mutation counter at the time the mutation applied; the
// holder applies deltas only in sequence order and rejects gaps, which
// forces the owner to resync.
type replicaPut struct {
	Owner string
	Items []Item
	Op    string
	Seq   uint64
	// Delete-delta selector (repOpDel): mirrors deleteReq semantics.
	Name      string
	ItemOwner string
	// Cut-delta selector (repOpCut): items extracted from the owner.
	Range KeyRange
}

// Node is one overlay participant. All query-path operations (Lookup,
// Insert, Delete, RangeSearch) route peer-to-peer starting from this
// node, using only its local state.
type Node struct {
	ep *pnet.Endpoint

	// heat is the optional per-node key-space heatmap (SetHeatmap):
	// every query-path hop this node serves or forwards records the
	// request's key, so the overlay's routing load is attributable to
	// key-space ranges. The peer wires its private-registry heatmap
	// here, shipping overlay heat in its telemetry reports.
	heat atomic.Pointer[telemetry.Heatmap]

	mu       sync.RWMutex
	state    NodeState
	items    []Item            // sorted by Key, then Name
	replicas map[string][]Item // owner node ID -> adjacent-replica items

	// replicaSeq tracks the last applied adjacent-replica sequence
	// number per owner (delta ordering; guarded by mu).
	replicaSeq map[string]uint64
	// replSeq counts this node's own mutations; each delta push
	// carries the value assigned when its mutation applied (mu).
	replSeq uint64
	// pushMu serializes adjacent-replica pushes; push is the holder
	// bookkeeping behind the delta/full decision (guarded by pushMu).
	pushMu sync.Mutex
	push   pushState

	// Hot-range replication state: replOut is this node's outbound
	// replication (owner side), hosted the replicas this node serves
	// for other owners (holder side); both guarded by mu. replVersion
	// orders puts against invalidations.
	replOut     *replOut
	replVersion uint64
	hosted      map[string]*rangeReplica

	// ads is the coordinator-broadcast hot-range advertisement table;
	// rrPick rotates lookups across owner+holders.
	ads    atomic.Pointer[[]ReplicaAd]
	rrPick atomic.Uint64

	// Lookup serve accounting: answered from own items vs from a
	// hosted hot-range replica.
	servedLocal   atomic.Int64
	servedReplica atomic.Int64
}

// processHeat aggregates overlay key traffic process-wide (the
// /metrics view every node in the process shares), independent of any
// per-node heatmap wired via SetHeatmap.
var processHeat = telemetry.Default.Heatmap("baton_key_heat", telemetry.DefaultHeatBuckets)

func init() {
	telemetry.Default.SetHelp("baton_key_heat",
		"Overlay query-path hops per key-space bucket [lo,hi) across all nodes in the process.")
}

// SetHeatmap wires a per-node heatmap that every query-path hop records
// into (nil detaches it). Safe to call while traffic is flowing.
func (n *Node) SetHeatmap(h *telemetry.Heatmap) { n.heat.Store(h) }

// recordKey accounts one query-path hop at key k.
func (n *Node) recordKey(k Key) {
	processHeat.Record(float64(k))
	if h := n.heat.Load(); h != nil {
		h.Record(float64(k))
	}
}

// recordMutation accounts one index-mutation hop at key k. Mutations
// feed only the process-wide view: the per-node heatmap backs
// peer_index_heat, whose hot-range detector triggers read replication,
// and bulk index publishing (every loaded table inserts under the same
// handful of catalog keys) would otherwise register as a phantom read
// hotspot before a single query has run.
func (n *Node) recordMutation(k Key) {
	processHeat.Record(float64(k))
}

// recordRange accounts one range-search hop over r.
func (n *Node) recordRange(r KeyRange) {
	processHeat.RecordRange(float64(r.Lo), float64(r.Hi))
	if h := n.heat.Load(); h != nil {
		h.RecordRange(float64(r.Lo), float64(r.Hi))
	}
}

// NewNode attaches a new overlay node to a pnet endpoint and registers
// its message handlers. The node is inert until the Overlay manager
// installs its state via AddNode. Read-only verbs (lookup, range,
// stats, items, replica reads) are registered idempotent — the
// hardened transport may safely re-send them after a timeout — while
// index mutations (insert, delete, update, extract, accept, replica
// writes) never retry: delivering them twice would corrupt the tree.
func NewNode(ep *pnet.Endpoint) *Node {
	n := &Node{
		ep:         ep,
		replicas:   make(map[string][]Item),
		replicaSeq: make(map[string]uint64),
		hosted:     make(map[string]*rangeReplica),
	}
	ep.HandleIdempotent(msgLookup, n.handleLookup)
	ep.Handle(msgInsert, n.handleInsert)
	ep.Handle(msgDelete, n.handleDelete)
	ep.HandleIdempotent(msgRange, n.handleRange)
	ep.Handle(msgUpdate, n.handleUpdate)
	ep.Handle(msgExtract, n.handleExtract)
	ep.Handle(msgAccept, n.handleAccept)
	ep.HandleIdempotent(msgItems, n.handleItems)
	ep.HandleIdempotent(msgStats, n.handleStats)
	ep.Handle(msgReplicaPut, n.handleReplicaPut)
	ep.HandleIdempotent(msgReplicaGet, n.handleReplicaGet)
	// Hot-range replication: put/drop are idempotent by version, the
	// serve path is a read, ads install is last-write-wins, and
	// replicate/release assign a fresh version per delivery.
	ep.HandleIdempotent(msgReplicate, n.handleReplicate)
	ep.HandleIdempotent(msgReplicateRelease, n.handleReplicateRelease)
	ep.HandleIdempotent(msgRangeReplicaPut, n.handleRangeReplicaPut)
	ep.HandleIdempotent(msgRangeReplicaDrop, n.handleRangeReplicaDrop)
	ep.HandleIdempotent(msgReplicaServe, n.handleReplicaServe)
	ep.HandleIdempotent(msgReplicaAds, n.handleReplicaAds)
	// The query-path verbs block only on nested calls through the same
	// transport (routing hops), each carrying its own deadline, so they
	// run unguarded in-process: a lookup chain must not pay one guard
	// goroutine per hop.
	ep.Network().MarkInline(msgLookup, msgInsert, msgDelete, msgRange, msgStats, msgItems, msgReplicaServe)
	return n
}

// ID returns the node's peer ID.
func (n *Node) ID() string { return n.ep.ID() }

// State returns a copy of the node's current overlay state.
func (n *Node) State() NodeState {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.state
}

// NumItems returns the number of locally stored items.
func (n *Node) NumItems() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.items)
}

// routeNext decides where to forward an operation on key k: "" means the
// key belongs to this node. The logic follows the BATON search algorithm:
// jump through the farthest useful routing-table entry, otherwise descend
// to a child or fall back to adjacent/parent links.
func (n *Node) routeNext(k Key) string {
	s := n.state
	if s.R0.Contains(k) {
		return ""
	}
	if k < s.R0.Lo {
		// Farthest left routing-table node whose subtree still reaches
		// beyond k; its subtree either holds k or is closer to it.
		for i := len(s.LeftRT) - 1; i >= 0; i-- {
			e := s.LeftRT[i]
			if e.ID != "" && e.Sub.Hi > k {
				return e.ID
			}
		}
		if s.Left != "" {
			return s.Left
		}
		if s.LeftAdj != "" {
			return s.LeftAdj
		}
		return s.Parent
	}
	// k >= s.R0.Hi: symmetric to the right.
	for i := len(s.RightRT) - 1; i >= 0; i-- {
		e := s.RightRT[i]
		if e.ID != "" && e.Sub.Lo <= k {
			return e.ID
		}
	}
	if s.Right != "" {
		return s.Right
	}
	if s.RightAdj != "" {
		return s.RightAdj
	}
	return s.Parent
}

// --- query-path handlers (fully decentralized) ---

func (n *Node) handleLookup(msg pnet.Message) (pnet.Message, error) {
	req := msg.Payload.(lookupReq)
	n.recordKey(req.Key)
	if !req.SkipAds {
		// Hot-range short-circuit: if the key is advertised as
		// replicated, serve it from the rotation instead of routing the
		// whole chain onto the owner. Any miss falls through to normal
		// routing, with ads disabled for the rest of the chain.
		if reply, ok := n.lookupViaReplica(req); ok {
			return reply, nil
		}
		req.SkipAds = true
	}
	n.mu.RLock()
	next := n.routeNext(req.Key)
	n.mu.RUnlock()
	if next != "" {
		req.Hops++
		reply, err := n.ep.Call(next, msgLookup, req, 16)
		if err != nil {
			return pnet.Message{}, err
		}
		return reply, nil
	}
	n.mu.RLock()
	var out []Item
	var size int64
	for _, it := range n.items {
		if it.Name == req.Name {
			out = append(out, it)
			size += it.Size
		}
	}
	n.mu.RUnlock()
	n.servedLocal.Add(1)
	return pnet.Message{Payload: lookupResp{Items: out, Hops: req.Hops}, Size: size}, nil
}

func (n *Node) handleInsert(msg pnet.Message) (pnet.Message, error) {
	req := msg.Payload.(insertReq)
	n.recordMutation(req.Item.Key)
	n.mu.RLock()
	next := n.routeNext(req.Item.Key)
	n.mu.RUnlock()
	if next != "" {
		req.Hops++
		return n.ep.Call(next, msgInsert, req, req.Item.Size+16)
	}
	n.mu.Lock()
	n.storeLocked(req.Item)
	n.replSeq++
	seq := n.replSeq
	drops, dv := n.bumpHotLocked(func(r KeyRange) bool { return r.Contains(req.Item.Key) })
	n.mu.Unlock()
	n.sendDrops(drops, dv)
	n.pushAdjacent(replicaPut{Op: repOpAdd, Seq: seq, Items: []Item{req.Item}})
	return pnet.Message{Payload: opResp{Hops: req.Hops}}, nil
}

func (n *Node) handleDelete(msg pnet.Message) (pnet.Message, error) {
	req := msg.Payload.(deleteReq)
	n.recordMutation(req.Key)
	n.mu.RLock()
	next := n.routeNext(req.Key)
	n.mu.RUnlock()
	if next != "" {
		req.Hops++
		return n.ep.Call(next, msgDelete, req, 16)
	}
	n.mu.Lock()
	kept := n.items[:0]
	deleted := 0
	for _, it := range n.items {
		if it.Name == req.Name && (req.Owner == "" || it.Owner == req.Owner) {
			deleted++
			continue
		}
		kept = append(kept, it)
	}
	n.items = kept
	var seq, dv uint64
	var drops []string
	if deleted > 0 {
		n.replSeq++
		seq = n.replSeq
		drops, dv = n.bumpHotLocked(func(r KeyRange) bool { return r.Contains(req.Key) })
	}
	n.mu.Unlock()
	if deleted > 0 {
		n.sendDrops(drops, dv)
		n.pushAdjacent(replicaPut{Op: repOpDel, Seq: seq, Name: req.Name, ItemOwner: req.Owner})
	}
	return pnet.Message{Payload: opResp{Hops: req.Hops, Deleted: deleted}}, nil
}

// handleRange routes to the node owning Range.Lo, then walks the
// in-order successor chain until the range is exhausted, concatenating
// matches into the reply.
func (n *Node) handleRange(msg pnet.Message) (pnet.Message, error) {
	req := msg.Payload.(rangeReq)
	n.recordRange(req.Range)
	n.mu.RLock()
	next := n.routeNext(req.Range.Lo)
	n.mu.RUnlock()
	if next != "" {
		req.Hops++
		return n.ep.Call(next, msgRange, req, 16)
	}
	// This node owns the start of the range: collect and walk right.
	var out []Item
	var size int64
	hops := req.Hops
	n.mu.RLock()
	for _, it := range n.items {
		if req.Range.Contains(it.Key) {
			out = append(out, it)
			size += it.Size
		}
	}
	rightAdj := n.state.RightAdj
	r0hi := n.state.R0.Hi
	n.mu.RUnlock()
	if r0hi < req.Range.Hi && rightAdj != "" {
		cont := rangeReq{Range: KeyRange{Lo: r0hi, Hi: req.Range.Hi}, Hops: hops + 1}
		reply, err := n.ep.Call(rightAdj, msgRange, cont, 16)
		if err != nil {
			return pnet.Message{}, err
		}
		resp := reply.Payload.(lookupResp)
		out = append(out, resp.Items...)
		size += reply.Size
		hops = resp.Hops
	}
	return pnet.Message{Payload: lookupResp{Items: out, Hops: hops}, Size: size}, nil
}

// --- maintenance handlers (driven by the Overlay manager) ---

func (n *Node) handleUpdate(msg pnet.Message) (pnet.Message, error) {
	st := msg.Payload.(NodeState)
	n.mu.Lock()
	oldAdj := n.state.RightAdj
	n.state = st
	n.mu.Unlock()
	if st.RightAdj != oldAdj {
		// New replica holder: force a full resync.
		n.pushAdjacent(replicaPut{Op: repOpFull})
	}
	return pnet.Message{}, nil
}

func (n *Node) handleExtract(msg pnet.Message) (pnet.Message, error) {
	r := msg.Payload.(KeyRange)
	n.mu.Lock()
	kept := n.items[:0]
	var moved []Item
	var size int64
	for _, it := range n.items {
		if r.Contains(it.Key) {
			moved = append(moved, it)
			size += it.Size
		} else {
			kept = append(kept, it)
		}
	}
	n.items = kept
	var seq, dv uint64
	var drops []string
	if len(moved) > 0 {
		n.replSeq++
		seq = n.replSeq
		drops, dv = n.bumpHotLocked(func(rr KeyRange) bool {
			_, ok := intersect(rr, r)
			return ok
		})
	}
	n.mu.Unlock()
	if len(moved) > 0 {
		n.sendDrops(drops, dv)
		n.pushAdjacent(replicaPut{Op: repOpCut, Seq: seq, Range: r})
	}
	return pnet.Message{Payload: moved, Size: size}, nil
}

func (n *Node) handleAccept(msg pnet.Message) (pnet.Message, error) {
	items := msg.Payload.([]Item)
	n.mu.Lock()
	for _, it := range items {
		n.storeLocked(it)
	}
	var seq, dv uint64
	var drops []string
	if len(items) > 0 {
		n.replSeq++
		seq = n.replSeq
		drops, dv = n.bumpHotLocked(func(rr KeyRange) bool {
			for _, it := range items {
				if rr.Contains(it.Key) {
					return true
				}
			}
			return false
		})
	}
	n.mu.Unlock()
	if len(items) > 0 {
		n.sendDrops(drops, dv)
		n.pushAdjacent(replicaPut{Op: repOpAdd, Seq: seq, Items: items})
	}
	return pnet.Message{}, nil
}

func (n *Node) handleItems(msg pnet.Message) (pnet.Message, error) {
	n.mu.RLock()
	out := append([]Item(nil), n.items...)
	var size int64
	for _, it := range out {
		size += it.Size
	}
	n.mu.RUnlock()
	return pnet.Message{Payload: out, Size: size}, nil
}

func (n *Node) handleStats(msg pnet.Message) (pnet.Message, error) {
	n.mu.RLock()
	count := len(n.items)
	n.mu.RUnlock()
	return pnet.Message{Payload: count, Size: 8}, nil
}

// handleReplicaPut maintains this node's copy of an adjacent owner's
// item set. A full push replaces the copy and anchors the sequence; a
// delta applies only if it is the immediate successor of the last
// applied mutation — anything older is already covered by the anchor
// (ack OK, no-op), and a gap means a delta was lost, so the holder
// refuses and the owner falls back to a full resync.
func (n *Node) handleReplicaPut(msg pnet.Message) (pnet.Message, error) {
	put := msg.Payload.(replicaPut)
	n.mu.Lock()
	defer n.mu.Unlock()
	if put.Op == repOpFull {
		n.replicas[put.Owner] = put.Items
		n.replicaSeq[put.Owner] = put.Seq
		return pnet.Message{Payload: repAck{OK: true}}, nil
	}
	last := n.replicaSeq[put.Owner]
	if put.Seq <= last {
		return pnet.Message{Payload: repAck{OK: true}}, nil
	}
	if put.Seq != last+1 {
		return pnet.Message{Payload: repAck{OK: false}}, nil
	}
	cur := n.replicas[put.Owner]
	switch put.Op {
	case repOpAdd:
		cur = append(cur, put.Items...)
	case repOpDel:
		kept := cur[:0]
		for _, it := range cur {
			if it.Name == put.Name && (put.ItemOwner == "" || it.Owner == put.ItemOwner) {
				continue
			}
			kept = append(kept, it)
		}
		cur = kept
	case repOpCut:
		kept := cur[:0]
		for _, it := range cur {
			if put.Range.Contains(it.Key) {
				continue
			}
			kept = append(kept, it)
		}
		cur = kept
	default:
		return pnet.Message{Payload: repAck{OK: false}}, nil
	}
	n.replicas[put.Owner] = cur
	n.replicaSeq[put.Owner] = put.Seq
	return pnet.Message{Payload: repAck{OK: true}}, nil
}

func (n *Node) handleReplicaGet(msg pnet.Message) (pnet.Message, error) {
	owner := msg.Payload.(string)
	n.mu.RLock()
	items := append([]Item(nil), n.replicas[owner]...)
	var size int64
	for _, it := range items {
		size += it.Size
	}
	n.mu.RUnlock()
	return pnet.Message{Payload: items, Size: size}, nil
}

// storeLocked inserts an item preserving key order. Callers hold n.mu.
func (n *Node) storeLocked(it Item) {
	i := sort.Search(len(n.items), func(i int) bool {
		if n.items[i].Key != it.Key {
			return n.items[i].Key > it.Key
		}
		return n.items[i].Name >= it.Name
	})
	n.items = append(n.items, Item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = it
}

// --- client API (paper Table 1) ---

// Lookup finds all items published under the exact name, routing from
// this node. It returns the items and the number of overlay hops taken.
func (n *Node) Lookup(name string) ([]Item, int, error) {
	reply, err := n.ep.Call(n.ID(), msgLookup, lookupReq{Key: StringKey(name), Name: name}, 16)
	if err != nil {
		return nil, 0, err
	}
	resp := reply.Payload.(lookupResp)
	return resp.Items, resp.Hops, nil
}

// Insert publishes an item into the overlay, routing from this node.
// The item's Key must be set (StringKey/FloatKey of its logical key).
func (n *Node) Insert(it Item) (int, error) {
	if it.Owner == "" {
		it.Owner = n.ID()
	}
	reply, err := n.ep.Call(n.ID(), msgInsert, insertReq{Item: it}, it.Size+16)
	if err != nil {
		return 0, err
	}
	return reply.Payload.(opResp).Hops, nil
}

// Delete removes items matching name (and owner, when non-empty). It
// returns the number of removed items and the hops taken.
func (n *Node) Delete(name, owner string) (int, int, error) {
	reply, err := n.ep.Call(n.ID(), msgDelete, deleteReq{Key: StringKey(name), Name: name, Owner: owner}, 16)
	if err != nil {
		return 0, 0, err
	}
	resp := reply.Payload.(opResp)
	return resp.Deleted, resp.Hops, nil
}

// RangeSearch returns every item whose key falls in r, in key order.
func (n *Node) RangeSearch(r KeyRange) ([]Item, int, error) {
	if r.Hi <= r.Lo {
		return nil, 0, fmt.Errorf("baton: empty range [%v, %v)", r.Lo, r.Hi)
	}
	reply, err := n.ep.Call(n.ID(), msgRange, rangeReq{Range: r}, 16)
	if err != nil {
		return nil, 0, err
	}
	resp := reply.Payload.(lookupResp)
	return resp.Items, resp.Hops, nil
}
