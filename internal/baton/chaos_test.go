package baton

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"bestpeer/internal/pnet"
)

// chaosSeed keeps every fault decision in this file reproducible.
const chaosSeed = 42

// totalItems sums the items held across all nodes.
func totalItems(nodes map[string]*Node) int {
	total := 0
	for _, n := range nodes {
		total += n.NumItems()
	}
	return total
}

// skewOverlay loads items concentrated in one node's subdomain so a
// BalanceAdjacent pass has a boundary shift to perform. Returns the
// overloaded node's ID.
func skewOverlay(t *testing.T, o *Overlay, nodes map[string]*Node) string {
	t.Helper()
	// Pick any node and synthesize keys inside its current range.
	var heavy *Node
	for _, n := range nodes {
		heavy = n
		break
	}
	r := heavy.State().R0
	span := float64(r.Hi - r.Lo)
	for i := 0; i < 40; i++ {
		k := r.Lo + Key(span*float64(i+1)/42)
		if _, err := heavy.Insert(Item{Key: k, Name: fmt.Sprintf("it-%02d", i), Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	return heavy.ID()
}

// TestChaosPartitionAbortsRestructuring: a partition separating the
// coordinator from part of the overlay makes a balancing pass fail
// fast with a typed error — and the structural invariants (contiguous
// ranges, items inside their node's subdomain) hold afterwards, so a
// healed network balances cleanly on the next pass.
func TestChaosPartitionAbortsRestructuring(t *testing.T) {
	o, nodes, net := testOverlay(t, 6)
	heavy := skewOverlay(t, o, nodes)
	before := totalItems(nodes)

	// Sever the heavy node from the coordinator (and everyone else).
	var rest []string
	for id := range nodes {
		if id != heavy {
			rest = append(rest, id)
		}
	}
	net.SetFaultPlan(pnet.NewFaultPlan(chaosSeed).
		Partition(append(rest, "@overlay"), []string{heavy}))

	_, err := o.BalanceAdjacent()
	if err == nil {
		t.Fatal("balancing across a partition succeeded")
	}
	if !pnet.Unavailable(err) {
		t.Fatalf("err = %v, want an unavailability error", err)
	}
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatalf("invariants broken by aborted restructuring: %v", err)
	}
	if got := totalItems(nodes); got != before {
		t.Fatalf("items = %d after aborted restructuring, want %d", got, before)
	}

	// Heal: the deferred balancing completes and invariants still hold.
	net.SetFaultPlan(nil)
	shifts, err := o.BalanceAdjacent()
	if err != nil {
		t.Fatal(err)
	}
	if shifts == 0 {
		t.Error("no boundary shifts after healing a skewed overlay")
	}
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatal(err)
	}
	if got := totalItems(nodes); got != before {
		t.Fatalf("items = %d after healed rebalance, want %d", got, before)
	}
}

// TestChaosMoveRangeRestoresOnDeliveryFailure: regression for the
// item-loss bug this suite flushed out. moveRange extracts items
// destructively, then delivers them; when delivery fails (receiver
// partitioned away between the load probe and the transfer), the
// extracted items must be restored to the source — not stranded in the
// coordinator's stack frame.
func TestChaosMoveRangeRestoresOnDeliveryFailure(t *testing.T) {
	o, nodes, net := testOverlay(t, 6)
	heavy := skewOverlay(t, o, nodes)
	before := totalItems(nodes)

	// Fail only the transfer verb: the balance pass probes loads and
	// extracts successfully, then the hand-off to every receiver dies.
	plan := pnet.NewFaultPlan(chaosSeed)
	for id := range nodes {
		if id != heavy {
			plan.Error(id, msgAccept, 1)
		}
	}
	net.SetFaultPlan(plan)

	_, err := o.BalanceAdjacent()
	if err == nil {
		t.Fatal("balancing with dead receivers succeeded")
	}
	if !errors.Is(err, pnet.ErrFaultInjected) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
	// The decisive assertions: nothing lost, nothing misplaced.
	if got := totalItems(nodes); got != before {
		t.Fatalf("items = %d after failed transfer, want %d (items stranded)", got, before)
	}
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatalf("invariants broken by failed transfer: %v", err)
	}

	net.SetFaultPlan(nil)
	if _, err := o.BalanceAdjacent(); err != nil {
		t.Fatal(err)
	}
	if got := totalItems(nodes); got != before {
		t.Fatalf("items = %d after healed rebalance, want %d", got, before)
	}
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatal(err)
	}
}

// TestChaosReplicaInvalidationRacesHotWrites: concurrent writers
// hammering a replicated hot range while readers rotate lookups across
// owner+holders. The invalidation protocol acknowledges no write until
// every holder is invalidated, so a reader that observes its own
// writer's completed insert must always find the item — whichever
// serve path the rotation picks — and never a stale copy.
func TestChaosReplicaInvalidationRacesHotWrites(t *testing.T) {
	o, nodes, _ := testOverlay(t, 6)
	// All names share one tight key band ("hotdocNN" differs only past
	// the first keyed bytes by its digits), so every write lands inside
	// the replicated range.
	name := func(w, i int) string { return fmt.Sprintf("hotdoc%d%d", w, i) }
	lo := StringKey("hotdoc00")
	hi := StringKey("hotdoc99") + 1e-6
	if _, err := nodes["peer-00"].Insert(Item{Key: StringKey(name(0, 0)), Name: name(0, 0), Size: 8}); err != nil {
		t.Fatal(err)
	}
	if _, installed, err := o.ReplicateRange(KeyRange{Lo: lo, Hi: hi}, 2); err != nil || installed == 0 {
		t.Fatalf("replicate: installed %d, err %v", installed, err)
	}

	ids := o.Members()
	var wg sync.WaitGroup
	const writers, docs = 4, 8
	errCh := make(chan error, writers)
	for w := 1; w <= writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			writeAt := nodes[ids[w%len(ids)]]
			readAt := nodes[ids[(w+3)%len(ids)]]
			for i := 0; i < docs; i++ {
				nm := name(w, i)
				if _, err := writeAt.Insert(Item{Key: StringKey(nm), Name: nm, Value: w, Size: 8}); err != nil {
					errCh <- fmt.Errorf("insert %s: %w", nm, err)
					return
				}
				// The write is acknowledged, so every serve path must
				// already see it; three reads walk the rotation across
				// owner and both holders.
				for r := 0; r < 3; r++ {
					items, _, err := readAt.Lookup(nm)
					if err != nil {
						errCh <- fmt.Errorf("lookup %s: %w", nm, err)
						return
					}
					if len(items) != 1 || items[0].Value.(int) != w {
						errCh <- fmt.Errorf("stale read of %s: %+v", nm, items)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if err := o.CheckInvariants(nodes); err != nil {
		t.Fatal(err)
	}
	// Quiesced: every written doc is found exactly once from anywhere.
	for w := 1; w <= writers; w++ {
		for i := 0; i < docs; i++ {
			items, _, err := nodes[ids[0]].Lookup(name(w, i))
			if err != nil {
				t.Fatal(err)
			}
			if len(items) != 1 {
				t.Fatalf("doc %s = %+v after quiesce", name(w, i), items)
			}
		}
	}
}

// TestChaosLookupRetriesThroughDrops: BATON lookups are idempotent and
// registered as such, so a lossy link degrades throughput, not
// correctness — every lookup either finds the item or fails typed,
// and with retries most succeed.
func TestChaosLookupRetriesThroughDrops(t *testing.T) {
	o, nodes, net := testOverlay(t, 4)
	_ = o
	var any *Node
	for _, n := range nodes {
		any = n
		break
	}
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("doc-%02d", i)
		if _, err := any.Insert(Item{Key: StringKey(name), Name: name, Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	net.SetCallPolicy(pnet.CallPolicy{MaxAttempts: 4, Backoff: 1})
	plan := pnet.NewFaultPlan(chaosSeed)
	for id := range nodes {
		plan.Drop(id, msgLookup, 0.3)
	}
	net.SetFaultPlan(plan)

	found := 0
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("doc-%02d", i)
		items, _, err := any.Lookup(name)
		if err != nil {
			if !pnet.Unavailable(err) {
				t.Fatalf("lookup %s: untyped failure %v", name, err)
			}
			continue
		}
		if len(items) != 1 || items[0].Name != name {
			t.Fatalf("lookup %s = %v", name, items)
		}
		found++
	}
	// drop=0.3 per hop with 4 attempts: the vast majority must land.
	if found < 10 {
		t.Fatalf("found %d/16 items through a lossy link with retries", found)
	}
}
