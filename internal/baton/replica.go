package baton

import (
	"sort"

	"bestpeer/internal/pnet"
	"bestpeer/internal/telemetry"
)

// Hot-range read replication: the response half of the heat plane.
// When the bootstrap's collector names a hot key range, the overlay
// coordinator replicates that range from its owner onto k in-order
// neighbours and advertises the holder set to every node. Idempotent
// lookups then rotate across owner+holders instead of funnelling onto
// the owner. The protocol is versioned: any write into a replicated
// range bumps the owner's version and synchronously invalidates every
// holder before the write is acknowledged, so a holder either serves
// the current version or refuses and the client falls back to normal
// routing — an extra hop, never a stale answer. A holder that missed
// an invalidation because it was unreachable can serve stale reads for
// at most one maintenance epoch: the coordinator re-pushes (or
// releases) replicas every epoch while the range stays hot.
//
// This file also owns the adjacent-replica push path (crash recovery,
// paper [24]): mutations ship sequence-numbered deltas instead of the
// node's entire item set, with a full resync every replicaResyncEvery
// mutations or whenever a delta is lost or rejected.

// Hot-range replication verbs.
const (
	msgReplicate        = "baton.replicate"      // coordinator -> owner: replicate a range
	msgReplicateRelease = "baton.replicate.drop" // coordinator -> owner: tear replication down
	msgRangeReplicaPut  = "baton.rrep.put"       // owner -> holder: install a versioned range replica
	msgRangeReplicaDrop = "baton.rrep.drop"      // owner -> holder: invalidate
	msgReplicaServe     = "baton.rrep.serve"     // client -> holder: serve a lookup from the replica
	msgReplicaAds       = "baton.rrep.ads"       // coordinator -> everyone: advertise holder sets
)

// Exported verb names for fault planning: benchmarks and chaos tests
// attach per-hop delivery delays to the lookup-serving verbs.
const (
	LookupVerb       = msgLookup
	ReplicaServeVerb = msgReplicaServe
)

// replicaResyncEvery bounds delta drift on the adjacent replica: after
// this many delta pushes the next push ships the full item set again,
// so a delta silently lost to the best-effort transport can desync the
// replica for a bounded window only.
const replicaResyncEvery = 64

// Adjacent-replica push accounting (process-wide).
var (
	repPushFull  = telemetry.Default.Counter("baton_replica_push_total", telemetry.L("kind", "full"))
	repPushDelta = telemetry.Default.Counter("baton_replica_push_total", telemetry.L("kind", "delta"))
	repPushBytes = telemetry.Default.Counter("baton_replica_push_bytes_total")
	repPushSaved = telemetry.Default.Counter("baton_replica_push_saved_bytes_total")
	repInvals    = telemetry.Default.Counter("baton_replica_invalidations_total")
)

func init() {
	telemetry.Default.SetHelp("baton_replica_push_total",
		"Adjacent-replica pushes by kind: full item-set resyncs vs per-mutation deltas.")
	telemetry.Default.SetHelp("baton_replica_push_bytes_total",
		"Bytes shipped to adjacent replica holders (full pushes plus deltas).")
	telemetry.Default.SetHelp("baton_replica_push_saved_bytes_total",
		"Bytes a delta push avoided shipping versus re-sending the full item set.")
	telemetry.Default.SetHelp("baton_replica_invalidations_total",
		"Hot-range replica invalidations sent to holders after writes into a replicated range.")
}

// ReplicaAd advertises one replicated range: reads on keys inside
// Range may be served by the owner or by any holder.
type ReplicaAd struct {
	Range   KeyRange
	Owner   string
	Holders []string
}

// replicateReq asks an owner to replicate Range onto Holders.
type replicateReq struct {
	Range   KeyRange
	Holders []string
}

// rrepPut installs one versioned range replica on a holder.
type rrepPut struct {
	Owner   string
	Range   KeyRange
	Version uint64
	Items   []Item
}

// rrepDrop invalidates a holder's replica of Owner's range at Version.
type rrepDrop struct {
	Owner   string
	Version uint64
}

// serveReq asks a holder to serve a lookup from its replica.
type serveReq struct {
	Key  Key
	Name string
}

// serveResp is a holder's answer: Served=false means the holder has no
// valid replica covering the key and the caller must route normally.
type serveResp struct {
	Items  []Item
	Served bool
}

// repAck acknowledges an adjacent-replica push. OK=false means the
// holder rejected a delta (sequence gap) and the owner must resync.
type repAck struct {
	OK bool
}

// Adjacent-replica push ops.
const (
	repOpFull = ""    // replace the whole replica (also the legacy wire format)
	repOpAdd  = "add" // append Items
	repOpDel  = "del" // remove items matching Name (+ItemOwner when set)
	repOpCut  = "cut" // remove items whose keys fall in Range
)

// rangeReplica is a holder's copy of one owner's replicated range.
type rangeReplica struct {
	rang    KeyRange
	version uint64
	items   []Item
	valid   bool
}

// replOut is the owner's record of its outbound hot-range replication.
type replOut struct {
	rang    KeyRange
	version uint64
	holders []string
}

// pushState tracks what the adjacent replica holder already has.
// Guarded by Node.pushMu.
type pushState struct {
	target string // holder of the last full push
	synced bool   // holder holds an exact copy
	deltas int    // delta pushes since the last full push
}

// itemsSize sums item payload sizes (the transport cost estimate used
// throughout the overlay).
func itemsSize(items []Item) int64 {
	var size int64
	for _, it := range items {
		size += it.Size
	}
	return size
}

// intersect returns the overlap of two ranges.
func intersect(a, b KeyRange) (KeyRange, bool) {
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	if hi <= lo {
		return KeyRange{}, false
	}
	return KeyRange{Lo: lo, Hi: hi}, true
}

// ServeCounts returns how many lookups this node answered from its own
// items and from hosted hot-range replicas. The mitigation benchmark
// derives the hot peer's serve share from the deltas; the peer reporter
// ships them as peer_lookups_served_total / peer_replica_reads_total.
func (n *Node) ServeCounts() (local, replica int64) {
	return n.servedLocal.Load(), n.servedReplica.Load()
}

// --- owner side ---

// handleReplicate snapshots the requested range and pushes a versioned
// copy to each holder. Recording the outbound replication *before* the
// pushes leave means any mutation racing the snapshot sees replOut and
// sends an invalidation with a higher version, which the holders order
// correctly against the puts.
func (n *Node) handleReplicate(msg pnet.Message) (pnet.Message, error) {
	req := msg.Payload.(replicateReq)
	n.mu.Lock()
	n.replVersion++
	v := n.replVersion
	var items []Item
	for _, it := range n.items {
		if req.Range.Contains(it.Key) {
			items = append(items, it)
		}
	}
	n.replOut = &replOut{rang: req.Range, version: v, holders: append([]string(nil), req.Holders...)}
	id := n.state.ID
	n.mu.Unlock()
	put := rrepPut{Owner: id, Range: req.Range, Version: v, Items: items}
	size := itemsSize(items) + 16
	installed := 0
	for _, h := range req.Holders {
		if _, err := n.ep.Call(h, msgRangeReplicaPut, put, size); err == nil {
			installed++
		}
	}
	return pnet.Message{Payload: installed, Size: 8}, nil
}

// handleReplicateRelease tears the outbound replication down,
// invalidating every holder.
func (n *Node) handleReplicateRelease(msg pnet.Message) (pnet.Message, error) {
	n.mu.Lock()
	var holders []string
	var v uint64
	if n.replOut != nil {
		n.replVersion++
		v = n.replVersion
		holders = n.replOut.holders
		n.replOut = nil
	}
	n.mu.Unlock()
	n.sendDrops(holders, v)
	return pnet.Message{}, nil
}

// bumpHotLocked invalidates the outbound hot-range replica when a
// mutation touches it. Callers hold n.mu (write); the returned drop
// fan-out must be performed after unlocking and before the mutation is
// acknowledged, so a client that saw the write complete can never read
// the pre-write version from a reachable holder.
func (n *Node) bumpHotLocked(touches func(KeyRange) bool) ([]string, uint64) {
	if n.replOut == nil || !touches(n.replOut.rang) {
		return nil, 0
	}
	n.replVersion++
	n.replOut.version = n.replVersion
	return append([]string(nil), n.replOut.holders...), n.replVersion
}

// sendDrops delivers invalidations to holders. Best-effort: an
// unreachable holder cannot fail the write; it also cannot serve reads
// while unreachable, and the coordinator's per-epoch re-push bounds how
// long it may serve the stale version after healing.
func (n *Node) sendDrops(holders []string, version uint64) {
	if len(holders) == 0 {
		return
	}
	d := rrepDrop{Owner: n.ID(), Version: version}
	for _, h := range holders {
		_, _ = n.ep.Call(h, msgRangeReplicaDrop, d, 16)
	}
	repInvals.Add(int64(len(holders)))
}

// --- holder side ---

func (n *Node) handleRangeReplicaPut(msg pnet.Message) (pnet.Message, error) {
	put := msg.Payload.(rrepPut)
	n.mu.Lock()
	cur := n.hosted[put.Owner]
	if cur == nil || put.Version >= cur.version {
		n.hosted[put.Owner] = &rangeReplica{
			rang: put.Range, version: put.Version, items: put.Items, valid: true,
		}
	}
	n.mu.Unlock()
	return pnet.Message{Payload: repAck{OK: true}}, nil
}

func (n *Node) handleRangeReplicaDrop(msg pnet.Message) (pnet.Message, error) {
	d := msg.Payload.(rrepDrop)
	n.mu.Lock()
	cur := n.hosted[d.Owner]
	if cur == nil {
		// Remember the version so a put racing this drop cannot
		// resurrect the superseded copy.
		n.hosted[d.Owner] = &rangeReplica{version: d.Version}
	} else if d.Version >= cur.version {
		cur.version = d.Version
		cur.valid = false
		cur.items = nil
	}
	n.mu.Unlock()
	return pnet.Message{Payload: repAck{OK: true}}, nil
}

// serveHosted answers a lookup from a valid hosted replica covering the
// key. ok=false means no such replica: the caller must route normally.
// A valid replica with no matching items is an authoritative empty
// answer — the replica is a complete copy of the range at its version.
func (n *Node) serveHosted(k Key, name string) (items []Item, size int64, ok bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.hosted) == 0 {
		return nil, 0, false
	}
	owners := make([]string, 0, len(n.hosted))
	for o := range n.hosted {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	for _, o := range owners {
		r := n.hosted[o]
		if !r.valid || !r.rang.Contains(k) {
			continue
		}
		for _, it := range r.items {
			if it.Name == name {
				items = append(items, it)
				size += it.Size
			}
		}
		return items, size, true
	}
	return nil, 0, false
}

func (n *Node) handleReplicaServe(msg pnet.Message) (pnet.Message, error) {
	req := msg.Payload.(serveReq)
	items, size, ok := n.serveHosted(req.Key, req.Name)
	if ok {
		n.recordKey(req.Key)
		n.servedReplica.Add(1)
	}
	return pnet.Message{Payload: serveResp{Items: items, Served: ok}, Size: size}, nil
}

// --- client side: advertisement-driven read fan-out ---

func (n *Node) handleReplicaAds(msg pnet.Message) (pnet.Message, error) {
	ads := msg.Payload.([]ReplicaAd)
	n.ads.Store(&ads)
	return pnet.Message{}, nil
}

// lookupViaReplica short-circuits a lookup whose key falls in an
// advertised hot range: rotate across owner+holders (spreading the
// read load the advertisement exists to spread) and return the pick's
// answer. ok=false — no ad covers the key, the picked holder had no
// valid replica, or the pick was unreachable — sends the caller down
// the normal routed path.
func (n *Node) lookupViaReplica(req lookupReq) (pnet.Message, bool) {
	adsPtr := n.ads.Load()
	if adsPtr == nil {
		return pnet.Message{}, false
	}
	self := n.ID()
	for _, ad := range *adsPtr {
		if !ad.Range.Contains(req.Key) {
			continue
		}
		if ad.Owner == self {
			// We own the key: the normal path serves it locally.
			return pnet.Message{}, false
		}
		// A holder serves its own replica without a network hop.
		if items, size, ok := n.serveHosted(req.Key, req.Name); ok {
			n.servedReplica.Add(1)
			return pnet.Message{Payload: lookupResp{Items: items, Hops: req.Hops}, Size: size}, true
		}
		cands := make([]string, 0, len(ad.Holders)+1)
		cands = append(cands, ad.Owner)
		for _, h := range ad.Holders {
			if h != self {
				cands = append(cands, h)
			}
		}
		pick := cands[int(n.rrPick.Add(1))%len(cands)]
		if pick == ad.Owner {
			fwd := req
			fwd.SkipAds = true
			fwd.Hops++
			if reply, err := n.ep.Call(pick, msgLookup, fwd, 16); err == nil {
				return reply, true
			}
			return pnet.Message{}, false
		}
		reply, err := n.ep.Call(pick, msgReplicaServe, serveReq{Key: req.Key, Name: req.Name}, 16)
		if err == nil {
			if resp := reply.Payload.(serveResp); resp.Served {
				return pnet.Message{Payload: lookupResp{Items: resp.Items, Hops: req.Hops + 1}, Size: reply.Size}, true
			}
		}
		return pnet.Message{}, false
	}
	return pnet.Message{}, false
}

// --- adjacent-replica delta push (crash recovery) ---

// pushAdjacent ships one mutation to the adjacent replica holder.
// Pushes are serialized under pushMu so deltas arrive in sequence
// order; the holder rejects any gap and the next push resyncs with the
// full item set. d carries the mutation's delta (op + payload + the
// sequence number assigned under n.mu when the mutation applied); a
// repOpFull d forces a resync (adjacency changes).
func (n *Node) pushAdjacent(d replicaPut) {
	n.pushMu.Lock()
	defer n.pushMu.Unlock()
	n.mu.RLock()
	target := n.state.RightAdj
	if target == "" {
		target = n.state.LeftAdj
	}
	id := n.state.ID
	fullSize := itemsSize(n.items)
	n.mu.RUnlock()
	if target == "" || id == "" {
		return
	}
	st := &n.push
	if d.Op != repOpFull && st.synced && st.target == target && st.deltas < replicaResyncEvery {
		d.Owner = id
		size := itemsSize(d.Items) + 16
		if reply, err := n.ep.Call(target, msgReplicaPut, d, size); err == nil {
			if ack, ok := reply.Payload.(repAck); ok && ack.OK {
				st.deltas++
				repPushDelta.Inc()
				repPushBytes.Add(size)
				if saved := fullSize - size; saved > 0 {
					repPushSaved.Add(saved)
				}
				return
			}
		}
		// Lost or rejected delta: the holder's copy can no longer be
		// trusted; fall through to a full resync.
	}
	n.mu.RLock()
	items := append([]Item(nil), n.items...)
	seq := n.replSeq
	n.mu.RUnlock()
	size := itemsSize(items)
	put := replicaPut{Owner: id, Op: repOpFull, Seq: seq, Items: items}
	if _, err := n.ep.Call(target, msgReplicaPut, put, size); err == nil {
		st.target, st.synced, st.deltas = target, true, 0
		repPushFull.Inc()
		repPushBytes.Add(size)
	} else {
		st.synced = false
	}
}

// --- coordinator side ---

// HeatFunc supplies a node's windowed key-space access heat (the
// per-peer slice the bootstrap's collector aggregates). ok=false means
// no heat evidence for that node; balancing then falls back to item
// counts.
type HeatFunc func(id string) (telemetry.HeatmapSnapshot, bool)

// SetHeatSource wires the balancer's access-heat supplier. Nil (the
// default) keeps the paper's cardinality-based balancing byte for byte.
func (o *Overlay) SetHeatSource(f HeatFunc) {
	o.mu.Lock()
	o.heatFn = f
	o.mu.Unlock()
}

// ReplicateRange replicates the intersection of r with each owning
// node's subdomain onto up to k in-order neighbours per owner, then
// advertises the holder sets to every node. Calling it again while the
// range is still hot re-pushes fresh versioned copies, revalidating
// holders that were invalidated by writes. Returns the number of owner
// ranges replicated and holder copies installed.
func (o *Overlay) ReplicateRange(r KeyRange, k int) (owners, installed int, err error) {
	if k < 1 {
		k = 1
	}
	o.mu.Lock()
	ord := inorder(o.root)
	type job struct {
		owner string
		req   replicateReq
	}
	var jobs []job
	var ads []ReplicaAd
	members := make([]string, 0, len(ord))
	for i, t := range ord {
		members = append(members, t.id)
		inter, ok := intersect(t.r0, r)
		if !ok {
			continue
		}
		var holders []string
		for d := 1; len(holders) < k && (i-d >= 0 || i+d < len(ord)); d++ {
			if i+d < len(ord) {
				holders = append(holders, ord[i+d].id)
			}
			if len(holders) < k && i-d >= 0 {
				holders = append(holders, ord[i-d].id)
			}
		}
		if len(holders) == 0 {
			continue
		}
		ads = append(ads, ReplicaAd{Range: inter, Owner: t.id, Holders: holders})
		jobs = append(jobs, job{owner: t.id, req: replicateReq{Range: inter, Holders: holders}})
	}
	o.replicaAds = ads
	o.mu.Unlock()
	for _, j := range jobs {
		reply, cerr := o.ep.Call(j.owner, msgReplicate, j.req, 16)
		if cerr != nil {
			err = cerr
			continue
		}
		installed += reply.Payload.(int)
	}
	o.broadcastAds(members, ads)
	return len(jobs), installed, err
}

// ClearReplicas tears down every hot-range replication and withdraws
// the advertisements (heat subsided, or a membership change made the
// holder sets stale).
func (o *Overlay) ClearReplicas() error {
	o.mu.Lock()
	ads := o.replicaAds
	o.replicaAds = nil
	var members []string
	for _, t := range inorder(o.root) {
		members = append(members, t.id)
	}
	o.mu.Unlock()
	var err error
	for _, ad := range ads {
		if _, cerr := o.ep.Call(ad.Owner, msgReplicateRelease, nil, 16); cerr != nil {
			err = cerr
		}
	}
	o.broadcastAds(members, nil)
	return err
}

// broadcastAds installs the advertisement table on every node.
// Best-effort: a node that misses the update keeps stale ads, whose
// serve attempts fail over to normal routing.
func (o *Overlay) broadcastAds(members []string, ads []ReplicaAd) {
	for _, id := range members {
		_, _ = o.ep.Call(id, msgReplicaAds, ads, 16)
	}
}
