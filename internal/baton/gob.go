package baton

import "bestpeer/internal/pnet"

// Register the overlay's message payloads for the TCP transport.
func init() {
	pnet.RegisterPayload(
		lookupReq{}, lookupResp{}, insertReq{}, deleteReq{}, opResp{},
		rangeReq{}, replicaPut{}, NodeState{}, KeyRange{},
		[]Item{}, Item{},
		int(0), "", [2]string{},
		replicateReq{}, rrepPut{}, rrepDrop{}, serveReq{}, serveResp{},
		repAck{}, ReplicaAd{}, []ReplicaAd{}, []string{},
	)
}
