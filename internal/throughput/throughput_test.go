package throughput

import (
	"testing"
	"time"
)

func lightCfg(peers int) Config {
	return Config{Peers: peers, Threads: 20, ServiceTime: 20 * time.Millisecond}
}

func TestCapacity(t *testing.T) {
	cfg := Config{Peers: 10, Threads: 2, ServiceTime: 100 * time.Millisecond}
	if got := cfg.Capacity(); got != 200 {
		t.Errorf("capacity = %v, want 200 qps", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := OpenLoop(Config{}, 10, time.Second, 1); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := OpenLoop(lightCfg(1), 0, time.Second, 1); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := ClosedLoop(lightCfg(1), 0, time.Second, 1); err == nil {
		t.Error("zero clients accepted")
	}
}

func TestOpenLoopLowLoadLatencyIsServiceTime(t *testing.T) {
	cfg := lightCfg(10)
	p, err := OpenLoop(cfg, 0.1*cfg.Capacity(), 2*time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.AvgLatency < cfg.ServiceTime || p.AvgLatency > 2*cfg.ServiceTime {
		t.Errorf("low-load latency = %v, want ≈ %v", p.AvgLatency, cfg.ServiceTime)
	}
	if p.AchievedQPS < 0.08*cfg.Capacity() {
		t.Errorf("achieved %v at offered %v", p.AchievedQPS, p.OfferedQPS)
	}
}

func TestOpenLoopSaturationHockeyStick(t *testing.T) {
	cfg := lightCfg(10)
	under, err := OpenLoop(cfg, 0.5*cfg.Capacity(), time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	over, err := OpenLoop(cfg, 1.5*cfg.Capacity(), time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	if over.AvgLatency < 5*under.AvgLatency {
		t.Errorf("saturated latency %v not >> unsaturated %v", over.AvgLatency, under.AvgLatency)
	}
	// Achieved throughput caps near capacity even when offered exceeds it.
	if over.AchievedQPS > 1.2*cfg.Capacity() {
		t.Errorf("achieved %v exceeds capacity %v", over.AchievedQPS, cfg.Capacity())
	}
}

func TestClosedLoopThroughputScalesWithPeers(t *testing.T) {
	var qps []float64
	for _, peers := range []int{10, 20, 50} {
		cfg := lightCfg(peers)
		clients := peers * 40 // enough to saturate
		p, err := ClosedLoop(cfg, clients, 30*time.Second, 3)
		if err != nil {
			t.Fatal(err)
		}
		qps = append(qps, p.AchievedQPS)
	}
	// Near-linear scalability: 20 peers ≈ 2x, 50 peers ≈ 5x of 10 peers.
	if r := qps[1] / qps[0]; r < 1.7 || r > 2.3 {
		t.Errorf("20/10 peer throughput ratio = %v, want ≈ 2", r)
	}
	if r := qps[2] / qps[0]; r < 4.2 || r > 5.8 {
		t.Errorf("50/10 peer throughput ratio = %v, want ≈ 5", r)
	}
}

func TestClosedLoopUndersubscribed(t *testing.T) {
	cfg := lightCfg(4)
	p, err := ClosedLoop(cfg, 2, 10*time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two clients, zero queueing: latency equals service time and
	// throughput equals clients/serviceTime.
	if p.AvgLatency != cfg.ServiceTime {
		t.Errorf("latency = %v", p.AvgLatency)
	}
	want := 2 / cfg.ServiceTime.Seconds()
	if p.AchievedQPS < 0.95*want || p.AchievedQPS > 1.05*want {
		t.Errorf("qps = %v, want ≈ %v", p.AchievedQPS, want)
	}
}

func TestCurveMonotoneLatency(t *testing.T) {
	cfg := lightCfg(10)
	pts, err := Curve(cfg, []float64{0.2, 0.5, 0.8, 1.0, 1.2}, time.Minute, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].AvgLatency < pts[i-1].AvgLatency {
			t.Errorf("latency not monotone: %v then %v", pts[i-1].AvgLatency, pts[i].AvgLatency)
		}
	}
	if pts[0].P95Latency < pts[0].AvgLatency {
		t.Error("p95 below average")
	}
}

func TestHeavyVsLightWorkloads(t *testing.T) {
	// The paper's retailer queries are heavy (~10s at saturation,
	// 3,400 q/s peak) and supplier queries light (<1s, 19,000 q/s).
	light := Config{Peers: 25, Threads: 20, ServiceTime: 25 * time.Millisecond}
	heavy := Config{Peers: 25, Threads: 20, ServiceTime: 140 * time.Millisecond}
	if light.Capacity() <= heavy.Capacity() {
		t.Error("light workload should have higher capacity")
	}
	lp, err := OpenLoop(light, 0.9*light.Capacity(), time.Minute, 6)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := OpenLoop(heavy, 0.9*heavy.Capacity(), time.Minute, 6)
	if err != nil {
		t.Fatal(err)
	}
	if lp.AvgLatency >= hp.AvgLatency {
		t.Errorf("light latency %v >= heavy %v", lp.AvgLatency, hp.AvgLatency)
	}
}
