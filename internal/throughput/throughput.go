// Package throughput is the closed/open-loop workload simulator behind
// the paper's throughput benchmark (§6.2, Figs. 12–14).
//
// The benchmark's queries are single-peer (the nation-key clause plus
// the single-peer optimization route each query to exactly one supplier
// or retailer peer), so the system behaves as a bank of independent
// multi-threaded servers. The simulator runs a discrete-event model over
// virtual time: queries arrive (open loop at an offered rate, or closed
// loop from a fixed client population), queue FIFO at their target peer,
// and occupy one of the peer's service threads for the query's measured
// service time. Latency-versus-throughput curves and scalability
// series fall out directly.
package throughput

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Config describes the serving fleet.
type Config struct {
	// Peers is the number of data peers serving this workload class.
	Peers int
	// Threads is the number of concurrent query threads per peer (the
	// paper configures 20 fetch threads per peer, §6.1.2).
	Threads int
	// ServiceTime is the per-query service time at a peer, measured by
	// executing the workload query once under the virtual-time model.
	ServiceTime time.Duration
}

func (c Config) validate() error {
	if c.Peers < 1 || c.Threads < 1 || c.ServiceTime <= 0 {
		return fmt.Errorf("throughput: invalid config %+v", c)
	}
	return nil
}

// Capacity returns the fleet's saturation throughput in queries/sec.
func (c Config) Capacity() float64 {
	return float64(c.Peers) * float64(c.Threads) / c.ServiceTime.Seconds()
}

// Point is one measured operating point.
type Point struct {
	OfferedQPS  float64
	AchievedQPS float64
	AvgLatency  time.Duration
	P95Latency  time.Duration
	P99Latency  time.Duration
	Completed   int
}

// peerState tracks one peer's thread pool as a min-heap of
// times-at-which-a-thread-frees.
type peerState struct {
	free []time.Duration // heap
}

func (p *peerState) Len() int           { return len(p.free) }
func (p *peerState) Less(i, j int) bool { return p.free[i] < p.free[j] }
func (p *peerState) Swap(i, j int)      { p.free[i], p.free[j] = p.free[j], p.free[i] }
func (p *peerState) Push(x interface{}) { p.free = append(p.free, x.(time.Duration)) }
func (p *peerState) Pop() interface{} {
	old := p.free
	n := len(old)
	x := old[n-1]
	p.free = old[:n-1]
	return x
}

// serve runs one query arriving at time t on peer ps and returns its
// completion time.
func serve(ps *peerState, t time.Duration, service time.Duration) time.Duration {
	start := t
	if threadFree := ps.free[0]; threadFree > start {
		start = threadFree
	}
	done := start + service
	ps.free[0] = done
	heap.Fix(ps, 0)
	return done
}

// OpenLoop simulates an offered load of qps for the given virtual
// duration: arrivals are uniformly spaced and routed uniformly at random
// across peers (the benchmark picks nation keys at random, §6.2.3). A
// warm-up prefix of 10% is discarded, as the paper discards a 20-minute
// warm-up.
func OpenLoop(cfg Config, qps float64, duration time.Duration, seed int64) (Point, error) {
	if err := cfg.validate(); err != nil {
		return Point{}, err
	}
	if qps <= 0 {
		return Point{}, fmt.Errorf("throughput: non-positive load")
	}
	rng := rand.New(rand.NewSource(seed))
	peers := make([]*peerState, cfg.Peers)
	for i := range peers {
		peers[i] = &peerState{free: make([]time.Duration, cfg.Threads)}
		heap.Init(peers[i])
	}
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = 1
	}
	warmup := duration / 10
	var latencies []time.Duration
	completed := 0
	var measuredSpan time.Duration
	for t := time.Duration(0); t < duration; t += interval {
		ps := peers[rng.Intn(len(peers))]
		done := serve(ps, t, cfg.ServiceTime)
		if t < warmup {
			continue
		}
		latencies = append(latencies, done-t)
		completed++
		if done > measuredSpan {
			measuredSpan = done
		}
	}
	p := Point{OfferedQPS: qps, Completed: completed}
	if completed > 0 {
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		p.AvgLatency = sum / time.Duration(completed)
		sorted := append([]time.Duration(nil), latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		p.P95Latency = sorted[len(sorted)*95/100]
		p.P99Latency = sorted[len(sorted)*99/100]
		span := measuredSpan - warmup
		if span <= 0 {
			span = duration - warmup
		}
		p.AchievedQPS = float64(completed) / span.Seconds()
	}
	return p, nil
}

// ClosedLoop simulates a fixed client population: each client submits
// its next query the moment the previous one completes (zero think
// time), which measures sustainable throughput — the shape of Fig. 12's
// scalability series.
func ClosedLoop(cfg Config, clients int, duration time.Duration, seed int64) (Point, error) {
	if err := cfg.validate(); err != nil {
		return Point{}, err
	}
	if clients < 1 {
		return Point{}, fmt.Errorf("throughput: need at least one client")
	}
	rng := rand.New(rand.NewSource(seed))
	peers := make([]*peerState, cfg.Peers)
	for i := range peers {
		peers[i] = &peerState{free: make([]time.Duration, cfg.Threads)}
		heap.Init(peers[i])
	}
	// Event queue of client-ready times.
	ready := make(clientHeap, clients)
	heap.Init(&ready)
	completed := 0
	var totalLatency time.Duration
	var latencies []time.Duration
	for {
		t := ready[0]
		if t >= duration {
			break
		}
		ps := peers[rng.Intn(len(peers))]
		done := serve(ps, t, cfg.ServiceTime)
		totalLatency += done - t
		latencies = append(latencies, done-t)
		completed++
		ready[0] = done
		heap.Fix(&ready, 0)
	}
	p := Point{Completed: completed}
	if completed > 0 {
		p.AchievedQPS = float64(completed) / duration.Seconds()
		p.AvgLatency = totalLatency / time.Duration(completed)
		p.OfferedQPS = p.AchievedQPS
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		p.P95Latency = latencies[len(latencies)*95/100]
		p.P99Latency = latencies[len(latencies)*99/100]
	}
	return p, nil
}

type clientHeap []time.Duration

func (h clientHeap) Len() int            { return len(h) }
func (h clientHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h clientHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *clientHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *clientHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Curve sweeps offered loads and returns the latency-vs-throughput
// series of Figs. 13–14. Loads are fractions of the fleet's capacity.
func Curve(cfg Config, loadFractions []float64, duration time.Duration, seed int64) ([]Point, error) {
	capacity := cfg.Capacity()
	out := make([]Point, 0, len(loadFractions))
	for _, f := range loadFractions {
		p, err := OpenLoop(cfg, f*capacity, duration, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
