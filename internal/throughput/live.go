package throughput

import (
	"sort"
	"sync"
	"time"
)

// RunLive drives real concurrent clients against a live system — the
// wall-clock complement to the package's virtual-time simulator. Each
// LiveClass contributes a population of closed-loop clients (next
// request the moment the previous one finishes) issuing whatever its
// Do func encodes; per-class QPS and latency quantiles come back as
// ClassResults. The serving-tier saturation benchmark uses it to push
// 1k+ sessions through a peer's admission queue.

// LiveClass is one client population.
type LiveClass struct {
	// Name labels the class in results ("interactive", "batch", ...).
	Name string
	// Clients is the population size.
	Clients int
	// Do issues client c's next request (c is stable per client, so Do
	// can close over per-client state such as an open session). The
	// returned error classifies the outcome together with IsRejection.
	Do func(c int) error
	// IsRejection reports whether an error was an admission rejection
	// (counted separately from failures, no latency sample recorded).
	IsRejection func(error) bool
	// Backoff is slept after a rejection before the client retries
	// (0 = none).
	Backoff time.Duration
}

// ClassResult is one class's measured outcome.
type ClassResult struct {
	Name      string
	Clients   int
	Completed int64
	Rejected  int64
	Failed    int64
	QPS       float64
	Avg       time.Duration
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
}

// RunLive runs every class's clients concurrently for d and reports
// per-class results in input order.
func RunLive(d time.Duration, classes ...LiveClass) []ClassResult {
	type classState struct {
		mu        sync.Mutex
		latencies []time.Duration
		rejected  int64
		failed    int64
	}
	states := make([]*classState, len(classes))
	for i := range states {
		states[i] = &classState{}
	}
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for ci := range classes {
		cls := classes[ci]
		st := states[ci]
		for c := 0; c < cls.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// Per-client local tallies, merged once: the latency
				// slice append is the only cross-client contention.
				var lats []time.Duration
				var rej, fail int64
				for time.Now().Before(deadline) {
					start := time.Now()
					err := cls.Do(c)
					switch {
					case err == nil:
						lats = append(lats, time.Since(start))
					case cls.IsRejection != nil && cls.IsRejection(err):
						rej++
						if cls.Backoff > 0 {
							time.Sleep(cls.Backoff)
						}
					default:
						fail++
					}
				}
				st.mu.Lock()
				st.latencies = append(st.latencies, lats...)
				st.rejected += rej
				st.failed += fail
				st.mu.Unlock()
			}(c)
		}
	}
	wg.Wait()

	out := make([]ClassResult, len(classes))
	for i, cls := range classes {
		st := states[i]
		r := ClassResult{
			Name:      cls.Name,
			Clients:   cls.Clients,
			Completed: int64(len(st.latencies)),
			Rejected:  st.rejected,
			Failed:    st.failed,
		}
		if r.Completed > 0 {
			sort.Slice(st.latencies, func(a, b int) bool { return st.latencies[a] < st.latencies[b] })
			var sum time.Duration
			for _, l := range st.latencies {
				sum += l
			}
			n := len(st.latencies)
			r.QPS = float64(n) / d.Seconds()
			r.Avg = sum / time.Duration(n)
			r.P50 = st.latencies[n*50/100]
			r.P95 = st.latencies[n*95/100]
			r.P99 = st.latencies[n*99/100]
		}
		out[i] = r
	}
	return out
}
