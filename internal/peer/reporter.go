package peer

import (
	"sync"
	"time"

	"bestpeer/internal/bootstrap"
	"bestpeer/internal/telemetry"
)

// The reporter loop: every epoch the peer exports its private registry,
// subtracts the previous export, and pushes the delta to the bootstrap
// over the telemetry.report verb. The bootstrap's collector merges the
// deltas into per-peer rolling windows that feed Algorithm 1's health
// scores. A report is sent even when empty — its arrival time is the
// liveness signal the dashboard shows as last-report age.

// reporterState tracks what the previous report already shipped.
type reporterState struct {
	mu      sync.Mutex
	last    telemetry.RegistrySnapshot
	lastFan telemetry.HistogramSnapshot
	seq     uint64
}

// ReportTelemetry pushes one delta report to the bootstrap. The
// baseline snapshot only advances after a successful delivery, so a
// failed push's activity rides along in the next epoch's delta instead
// of being lost. The fan-out queue-wait histogram lives in the
// process-wide registry (the worker pool is shared by every peer in
// the process), so its delta is injected into the report as
// peer_fanout_queue_seconds: queue pressure on the shared pool stalls
// this peer's rounds no matter which peer's round filled it.
//
// The push fails like any other call when this peer (or the bootstrap)
// is down — a crashed peer cannot announce its own death, which is
// exactly why the collector also scores peers from other peers'
// sender-side RPC stats.
func (p *Peer) ReportTelemetry() error {
	if p.pm == nil {
		return nil
	}
	p.rep.mu.Lock()
	defer p.rep.mu.Unlock()
	cur := p.pm.reg.Export()
	delta := cur.Delta(p.rep.last)

	fan := telemetry.Default.Histogram("engine_fanout_queue_seconds", nil).Snapshot()
	fanDelta := fan.Sub(p.rep.lastFan)
	if fanDelta.Count() > 0 {
		delta.Points = append(delta.Points, telemetry.PointSnapshot{
			Name: "peer_fanout_queue_seconds", Kind: "histogram",
			Value: float64(fanDelta.Count()), Hist: &fanDelta,
		})
		delta.Sort()
	}

	rep := telemetry.Report{Peer: p.id, Seq: p.rep.seq + 1, Delta: delta}
	size := int64(64 + 48*len(rep.Delta.Points))
	if _, err := p.ep.Call(p.env.Bootstrap.ID(), bootstrap.MsgTelemetryReport, rep, size); err != nil {
		return err
	}
	p.rep.last = cur
	p.rep.lastFan = fan
	p.rep.seq++
	return nil
}

// StartTelemetryReporter launches the epoch reporter loop and returns
// its stop function (idempotent). Failed pushes are dropped; the next
// epoch's delta carries the missed activity because the baseline
// snapshot only advances on successful delivery — losing one report
// loses at most its arrival-time freshness.
func (p *Peer) StartTelemetryReporter(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_ = p.ReportTelemetry()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
