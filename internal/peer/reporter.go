package peer

import (
	"sync"
	"time"

	"bestpeer/internal/bootstrap"
	"bestpeer/internal/telemetry"
)

// The reporter loop: every epoch the peer exports its private registry,
// subtracts the previous export, and pushes the delta to the bootstrap
// over the telemetry.report verb. The bootstrap's collector merges the
// deltas into per-peer rolling windows that feed Algorithm 1's health
// scores. A report is sent even when empty — its arrival time is the
// liveness signal the dashboard shows as last-report age.

// reporterState tracks what the previous report already shipped.
type reporterState struct {
	mu         sync.Mutex
	last       telemetry.RegistrySnapshot
	lastFan    telemetry.HistogramSnapshot
	lastAccess map[string]int64 // "table\x00path" -> last shipped total
	// lastLocal/lastReplica are the overlay node's serve counters at
	// the last delivered report (peer_lookups_served_total /
	// peer_replica_reads_total baselines).
	lastLocal   int64
	lastReplica int64
	seq         uint64
}

// ReportTelemetry pushes one delta report to the bootstrap. The
// baseline snapshot only advances after a successful delivery, so a
// failed push's activity rides along in the next epoch's delta instead
// of being lost. The fan-out queue-wait histogram lives in the
// process-wide registry (the worker pool is shared by every peer in
// the process), so its delta is injected into the report as
// peer_fanout_queue_seconds: queue pressure on the shared pool stalls
// this peer's rounds no matter which peer's round filled it.
//
// The push fails like any other call when this peer (or the bootstrap)
// is down — a crashed peer cannot announce its own death, which is
// exactly why the collector also scores peers from other peers'
// sender-side RPC stats.
func (p *Peer) ReportTelemetry() error {
	if p.pm == nil {
		return nil
	}
	p.rep.mu.Lock()
	defer p.rep.mu.Unlock()
	cur := p.pm.reg.Export()
	delta := cur.Delta(p.rep.last)

	fan := telemetry.Default.Histogram("engine_fanout_queue_seconds", nil).Snapshot()
	fanDelta := fan.Sub(p.rep.lastFan)
	if fanDelta.Count() > 0 {
		delta.Points = append(delta.Points, telemetry.PointSnapshot{
			Name: "peer_fanout_queue_seconds", Kind: "histogram",
			Value: float64(fanDelta.Count()), Hist: &fanDelta,
		})
		delta.Sort()
	}

	// Storage-tier per-table access counters live in the embedded sqldb,
	// not the peer registry; inject their deltas the same way the fan-out
	// histogram rides along. The baseline map only advances with the rest
	// of the state after a successful push.
	access, accessTotals := p.accessDelta()
	if len(access) > 0 {
		delta.Points = append(delta.Points, access...)
		delta.Sort()
	}

	// Overlay serve counters (own items vs hosted hot-range replicas)
	// live on the baton node; inject their deltas so the collector can
	// derive each peer's replica-read share.
	local, replica := p.node.ServeCounts()
	if d := local - p.rep.lastLocal; d > 0 {
		delta.Points = append(delta.Points, telemetry.PointSnapshot{
			Name: "peer_lookups_served_total", Kind: "counter", Value: float64(d),
		})
		delta.Sort()
	}
	if d := replica - p.rep.lastReplica; d > 0 {
		delta.Points = append(delta.Points, telemetry.PointSnapshot{
			Name: "peer_replica_reads_total", Kind: "counter", Value: float64(d),
		})
		delta.Sort()
	}

	rep := telemetry.Report{Peer: p.id, Seq: p.rep.seq + 1, Delta: delta}
	size := int64(64 + 48*len(rep.Delta.Points))
	if _, err := p.ep.Call(p.env.Bootstrap.ID(), bootstrap.MsgTelemetryReport, rep, size); err != nil {
		return err
	}
	p.rep.last = cur
	p.rep.lastFan = fan
	p.rep.lastAccess = accessTotals
	p.rep.lastLocal = local
	p.rep.lastReplica = replica
	p.rep.seq++
	return nil
}

// accessDelta turns the embedded database's per-table access totals
// into peer_table_access_total counter deltas against the last shipped
// baseline. Caller holds p.rep.mu. The returned totals map becomes the
// new baseline once the report is delivered.
func (p *Peer) accessDelta() ([]telemetry.PointSnapshot, map[string]int64) {
	if p.db == nil {
		return nil, p.rep.lastAccess
	}
	totals := make(map[string]int64)
	var pts []telemetry.PointSnapshot
	add := func(table, path string, v int64) {
		key := table + "\x00" + path
		totals[key] = v
		if d := v - p.rep.lastAccess[key]; d > 0 {
			pts = append(pts, telemetry.PointSnapshot{
				Name: "peer_table_access_total", Kind: "counter", Value: float64(d),
				Labels: []telemetry.Label{telemetry.L("path", path), telemetry.L("table", table)},
			})
		}
	}
	for _, c := range p.db.AccessCounts() {
		add(c.Table, "scan", c.Scans)
		add(c.Table, "index", c.IndexReads)
	}
	return pts, totals
}

// StartTelemetryReporter launches the epoch reporter loop and returns
// its stop function (idempotent). Failed pushes are dropped; the next
// epoch's delta carries the missed activity because the baseline
// snapshot only advances on successful delivery — losing one report
// loses at most its arrival-time freshness.
func (p *Peer) StartTelemetryReporter(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_ = p.ReportTelemetry()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
