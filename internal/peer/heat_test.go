package peer

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"bestpeer/internal/baton"
	"bestpeer/internal/bootstrap"
	"bestpeer/internal/cloud"
	"bestpeer/internal/engine"
	"bestpeer/internal/pnet"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/tpch"
	"bestpeer/internal/vtime"
)

func TestStmtKeyRangeMapsShipdateWindow(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 1, 0.002)
	shipdateDomain(env)
	p := peers[0]

	stmt, err := sqldb.ParseSelect(
		`SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= DATE '1992-01-01' AND l_shipdate < DATE '1992-02-01'`)
	if err != nil {
		t.Fatal(err)
	}
	tables, lo, hi, ok := p.stmtKeyRange(stmt)
	if !ok {
		t.Fatal("stmtKeyRange found no bounded domain column")
	}
	if len(tables) != 1 || tables[0] != tpch.LineItem {
		t.Errorf("tables = %v", tables)
	}
	if lo != 0 {
		t.Errorf("lo = %v, want 0 (domain start)", lo)
	}
	// One month out of ~7 years sits near the start of the key space.
	if hi <= lo || hi > 0.05 {
		t.Errorf("hi = %v, want a small key just past lo", hi)
	}

	// Half-bounded predicate: the unbounded side clamps to the domain edge.
	stmt2, err := sqldb.ParseSelect(`SELECT COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1998-09-01'`)
	if err != nil {
		t.Fatal(err)
	}
	_, lo2, hi2, ok2 := p.stmtKeyRange(stmt2)
	if !ok2 {
		t.Fatal("half-bounded predicate not mapped")
	}
	if hi2 != 1 || lo2 < 0.9 {
		t.Errorf("half-bounded range = [%v,%v], want [~0.96,1]", lo2, hi2)
	}

	// No predicate on the domain column: nothing to attribute.
	stmt3, err := sqldb.ParseSelect(`SELECT COUNT(*) FROM lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok3 := p.stmtKeyRange(stmt3); ok3 {
		t.Error("unbounded statement mapped to a key range")
	}
}

// TestSlowQueryLinksTraceToHotRange is the end-to-end link the heat
// plane promises: a slow query's log entry carries the trace ID that
// the latency histogram's tail exemplar holds, plus the table and key
// range that heated — so a p99 overrun is attributable to a replayable
// trace over a named range.
func TestSlowQueryLinksTraceToHotRange(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	shipdateDomain(env)
	p := peers[0]
	p.SetSlowQueryThreshold(time.Nanosecond) // capture everything

	sql := `SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= DATE '1993-01-01' AND l_shipdate < DATE '1993-03-01'`
	if _, err := p.Query(sql, "", StrategyBasic, engine.Options{}); err != nil {
		t.Fatal(err)
	}

	entries := p.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("no slow-query entries captured")
	}
	e := entries[len(entries)-1]
	if e.TraceID == 0 {
		t.Fatal("slow-query entry has no trace ID")
	}
	if !e.HasKeyRange {
		t.Fatal("slow-query entry has no key-range attribution")
	}
	if len(e.Tables) == 0 || e.Tables[0] != tpch.LineItem {
		t.Errorf("entry tables = %v", e.Tables)
	}
	if e.KeyLo < 0 || e.KeyHi <= e.KeyLo || e.KeyHi > 1 {
		t.Errorf("entry key range = [%v,%v]", e.KeyLo, e.KeyHi)
	}

	// The latency histogram's tail exemplar carries the same trace ID.
	ex, ok := p.Metrics().Histogram("peer_query_seconds", nil).TailExemplar()
	if !ok {
		t.Fatal("latency histogram has no exemplar")
	}
	if ex.TraceID != e.TraceID {
		t.Errorf("tail exemplar trace %016x != slow-log trace %016x", ex.TraceID, e.TraceID)
	}

	// And the data owner heated the same region of the key space.
	var heat telemetry.HeatmapSnapshot
	for _, pp := range peers {
		heat = heat.Add(pp.Metrics().Heatmap("peer_key_heat", telemetry.DefaultHeatBuckets).Snapshot())
	}
	if heat.Count() == 0 {
		t.Fatal("no heat recorded by data owners")
	}
	bucket, _ := heat.Top()
	blo, bhi := telemetry.HeatBucketRange(bucket, telemetry.DefaultHeatBuckets)
	if e.KeyHi < blo || e.KeyLo >= bhi {
		t.Errorf("hot bucket [%v,%v) does not overlap entry range [%v,%v]", blo, bhi, e.KeyLo, e.KeyHi)
	}
}

// TestReporterShipsAccessAndHeat pins the report side-channels: the
// sqldb per-table access totals ride as peer_table_access_total deltas
// (baseline advancing only on delivered pushes), and the peer_key_heat
// vector lands in the collector's cluster heat.
func TestReporterShipsAccessAndHeat(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	shipdateDomain(env)

	sql := `SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= DATE '1993-01-01' AND l_shipdate < DATE '1993-03-01'`
	if _, err := peers[0].Query(sql, "", StrategyBasic, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if err := p.ReportTelemetry(); err != nil {
			t.Fatal(err)
		}
	}
	c := env.Bootstrap.Collector()

	accessTotal := func() float64 {
		var total float64
		for _, line := range strings.Split(c.ClusterText(), "\n") {
			if strings.HasPrefix(line, "peer_table_access_total") && strings.Contains(line, `table="lineitem"`) {
				v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
				if err != nil {
					t.Fatalf("parse %q: %v", line, err)
				}
				total += v
			}
		}
		return total
	}
	v1 := accessTotal()
	if v1 == 0 {
		t.Fatalf("no lineitem access counters in cluster registry:\n%s", c.ClusterText())
	}
	if c.ClusterHeat().Count() == 0 {
		t.Fatal("no heat in cluster after reports")
	}

	// A failed push must not advance the access baseline: the next
	// delivered report carries the missed accesses.
	env.Net.SetDown("bootstrap", true)
	if _, err := peers[0].Query(sql, "", StrategyBasic, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if err := p.ReportTelemetry(); err == nil {
			t.Fatal("report to downed bootstrap succeeded")
		}
	}
	env.Net.SetDown("bootstrap", false)
	for _, p := range peers {
		if err := p.ReportTelemetry(); err != nil {
			t.Fatal(err)
		}
	}
	if v2 := accessTotal(); v2 <= v1 {
		t.Fatalf("access totals lost across failed push: %v -> %v", v1, v2)
	}
}

func TestRecordStmtHeatRespectsKillSwitch(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 1, 0.002)
	shipdateDomain(env)
	p := peers[0]
	stmt, err := sqldb.ParseSelect(`SELECT COUNT(*) FROM lineitem WHERE l_shipdate < DATE '1993-01-01'`)
	if err != nil {
		t.Fatal(err)
	}
	telemetry.SetHeatEnabled(false)
	p.recordStmtHeat(stmt)
	telemetry.SetHeatEnabled(true)
	if n := p.pm.keyHeat.Count(); n != 0 {
		t.Errorf("heat recorded with kill switch off: %d", n)
	}
	p.recordStmtHeat(stmt)
	if n := p.pm.keyHeat.Count(); n == 0 {
		t.Error("no heat recorded with kill switch on")
	}
}

func BenchmarkRecordStmtHeat(b *testing.B) {
	net := pnet.NewNetwork()
	bs, err := bootstrap.New(net, "bootstrap", cloud.NewSimProvider())
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range tpch.Schemas(false) {
		bs.DefineGlobalSchema(s)
	}
	env := Env{
		Net: net, Bootstrap: bs,
		Overlay:  baton.NewOverlay(net, "bootstrap/overlay"),
		Provider: cloud.NewSimProvider(),
		Rates:    vtime.DefaultRates(),
		Clock:    &pnet.LogicalClock{},
	}
	p, err := Join("peer-00", env)
	if err != nil {
		b.Fatal(err)
	}
	shipdateDomain(env)
	stmt, err := sqldb.ParseSelect(
		`SELECT COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1998-09-01' AND l_commitdate < DATE '1998-10-01'`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.recordStmtHeat(stmt)
	}
}
