package peer

import (
	"math"
	"testing"
)

func TestQueryOnlineConvergesToExact(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 5, 0.005)
	sql := `SELECT COUNT(*) AS n, SUM(l_extendedprice) AS total FROM lineitem`
	exact, err := peers[0].Query(sql, "", StrategyBasic, optsNone())
	if err != nil {
		t.Fatal(err)
	}
	exactN := exact.Result.Rows[0][0].AsFloat()
	exactSum := exact.Result.Rows[0][1].AsFloat()

	var estimates []float64
	var finalN, finalSum float64
	var sawFinal bool
	err = peers[0].QueryOnline(sql, "", 7, func(e OnlineEstimate) bool {
		estimates = append(estimates, e.Result.Rows[0][0].AsFloat())
		if e.Final {
			sawFinal = true
			finalN = e.Result.Rows[0][0].AsFloat()
			finalSum = e.Result.Rows[0][1].AsFloat()
			if e.FractionSeen != 1 {
				t.Errorf("final fraction = %v", e.FractionSeen)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawFinal || len(estimates) != 5 {
		t.Fatalf("estimates = %d, final = %v", len(estimates), sawFinal)
	}
	if finalN != exactN || math.Abs(finalSum-exactSum) > 1e-6*exactSum {
		t.Errorf("final (%v, %v) != exact (%v, %v)", finalN, finalSum, exactN, exactSum)
	}
	// Early estimates are already in the right ballpark: partitions are
	// uniform, so extrapolation should land within 30% after one peer.
	if ratio := estimates[0] / exactN; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("first estimate off by %vx", ratio)
	}
}

func TestQueryOnlineEarlyStop(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 4, 0.004)
	calls := 0
	err := peers[0].QueryOnline(`SELECT COUNT(*) FROM orders`, "", 1, func(e OnlineEstimate) bool {
		calls++
		return false // stop after the first estimate
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("callback ran %d times after early stop", calls)
	}
}

func TestQueryOnlineGroupedAggregates(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 3, 0.004)
	sql := `SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag`
	exact, err := peers[0].Query(sql, "", StrategyBasic, optsNone())
	if err != nil {
		t.Fatal(err)
	}
	var finalRows int
	err = peers[0].QueryOnline(sql, "", 2, func(e OnlineEstimate) bool {
		if e.Final {
			finalRows = len(e.Result.Rows)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalRows != len(exact.Result.Rows) {
		t.Errorf("final groups = %d, want %d", finalRows, len(exact.Result.Rows))
	}
}

func TestQueryOnlineRejectsNonAggregates(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	if err := peers[0].QueryOnline(`SELECT l_orderkey FROM lineitem`, "", 1, nil); err == nil {
		t.Error("plain select accepted")
	}
	if err := peers[0].QueryOnline(`SELECT COUNT(*) FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey`, "", 1, nil); err == nil {
		t.Error("join accepted")
	}
	if err := peers[0].QueryOnline(`not sql`, "", 1, nil); err == nil {
		t.Error("garbage accepted")
	}
}
