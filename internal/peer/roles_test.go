package peer

import (
	"bestpeer/internal/accesscontrol"
	"bestpeer/internal/engine"
	"bestpeer/internal/sqldb"
)

// Test-local role helpers.

type roleT = accesscontrol.Role

func roleFull(name string, schemas ...*sqldb.Schema) *roleT {
	return accesscontrol.FullAccess(name, schemas...)
}

func roleReadOnly(name, table string, columns ...string) *roleT {
	r := accesscontrol.NewRole(name)
	for _, c := range columns {
		r.Rules = append(r.Rules, accesscontrol.Rule{
			Table: table, Column: c, Priv: accesscontrol.PrivRead,
		})
	}
	return r
}

func optsNone() engine.Options { return engine.Options{} }
