package peer

import (
	"errors"
	"fmt"
	"time"

	"bestpeer/internal/accesscontrol"
	"bestpeer/internal/engine"
	"bestpeer/internal/indexer"
	"bestpeer/internal/mapreduce"
	"bestpeer/internal/pnet"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/vtime"
)

// Strategy selects the query processing engine.
type Strategy string

// The available strategies. StrategyAdaptive is the paper's default
// (§5.5); the benchmark configuration of §6.1.2 pins StrategyBasic.
const (
	StrategyBasic    Strategy = "basic"
	StrategyParallel Strategy = "parallel"
	StrategyMR       Strategy = "mapreduce"
	StrategyAdaptive Strategy = "adaptive"
)

// Per-strategy query counters, resolved once: Query is the hot entry
// point.
var (
	queryCounters = map[string]*telemetry.Counter{}
	resubmissions = telemetry.Default.Counter("peer_query_resubmissions_total")
)

func init() {
	for _, s := range []Strategy{StrategyBasic, StrategyParallel, StrategyMR, StrategyAdaptive} {
		queryCounters[string(s)] = telemetry.Default.Counter("peer_queries_total", telemetry.L("strategy", string(s)))
	}
}

// Query parses and executes a SQL query on behalf of user, using the
// given strategy. It is the peer's online data flow entry point. A
// query rejected by a data owner whose snapshot advanced past the
// query's timestamp (Definition 2) is terminated and resubmitted with a
// fresh timestamp, up to a bounded number of attempts.
func (p *Peer) Query(sql, user string, strategy Strategy, opts engine.Options) (*engine.QueryResult, error) {
	stmt, err := sqldb.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	strategyName := string(strategy)
	if strategyName == "" {
		strategyName = string(StrategyBasic)
	}
	root := telemetry.StartTrace("query",
		telemetry.L("peer", p.id), telemetry.L("strategy", strategyName))
	defer root.End()
	if c := queryCounters[strategyName]; c != nil {
		c.Inc()
	} else {
		telemetry.Default.Counter("peer_queries_total", telemetry.L("strategy", strategyName)).Inc()
	}
	// The bootstrap's heat advisory biases this query's fan-out dispatch
	// away from saturated overlay owners. An explicit caller-set list
	// wins; with no advisory in effect HotPeers stays empty and every
	// round keeps its fixed natural order.
	if len(opts.HotPeers) == 0 {
		opts.HotPeers = p.HotPeers()
	}
	start := time.Now()
	const maxAttempts = 3
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		sp := root
		if attempt > 0 {
			// Resubmissions (Definition 2) get their own span so retried
			// rounds don't interleave with the first attempt's.
			sp = root.StartChild(fmt.Sprintf("attempt-%d", attempt+1))
		}
		res, err := p.execute(stmt, user, strategy, opts, sp)
		if sp != root {
			sp.SetError(err)
			sp.End()
		}
		if err == nil {
			res.Resubmissions = attempt
			res.Trace = root.Trace()
			root.SetVTime(res.Cost.Total())
			root.SetAttr("engine", res.Engine)
			root.End() // close before capture so the slowlog tree has no open spans
			out := &queryOutcome{
				engine:        res.Engine,
				vtime:         res.Cost.Total(),
				peers:         len(res.Peers),
				resubmissions: attempt,
				rowsScanned:   res.RowsScanned,
				bytesFetched:  res.BytesFetched,
			}
			out.tables, out.keyLo, out.keyHi, out.hasKeyRange = p.stmtKeyRange(stmt)
			p.recordQuery(sql, user, time.Since(start), out, nil, root)
			return res, nil
		}
		if !errors.Is(err, engine.ErrSnapshotNewer) {
			root.SetError(err)
			root.End()
			p.recordQuery(sql, user, time.Since(start), nil, err, root)
			return nil, err
		}
		resubmissions.Inc()
		lastErr = err
	}
	root.SetError(lastErr)
	err = fmt.Errorf("peer %s: query kept racing loader refreshes after %d attempts: %w", p.id, maxAttempts, lastErr)
	root.End()
	p.recordQuery(sql, user, time.Since(start), nil, err, root)
	return nil, err
}

func (p *Peer) execute(stmt *sqldb.SelectStmt, user string, strategy Strategy, opts engine.Options, sp *telemetry.Span) (*engine.QueryResult, error) {
	switch strategy {
	case StrategyBasic, "":
		e := &engine.Basic{B: p, Opts: opts, User: user, Span: sp}
		return e.Execute(stmt)
	case StrategyParallel:
		e := &engine.Parallel{B: p, Opts: opts, User: user, Span: sp}
		return e.Execute(stmt)
	case StrategyMR:
		e := &engine.MapReduce{B: p, Opts: opts, User: user, Span: sp}
		return e.Execute(stmt)
	case StrategyAdaptive:
		e := engine.NewAdaptive(p, opts, user)
		e.Selectivity = p.StatsSelectivity
		e.Span = sp
		return e.Execute(stmt)
	default:
		return nil, fmt.Errorf("peer: unknown strategy %q", strategy)
	}
}

// --- engine.Backend implementation ---

// Self implements engine.Backend.
func (p *Peer) Self() string { return p.id }

// Schema implements engine.Backend.
func (p *Peer) Schema(table string) *sqldb.Schema { return p.GlobalSchema(table) }

// Locate implements engine.Backend using the published indexes with the
// paper's priority (range > column > table). When a table has no
// published index entries at all — the partial indexing scheme of the
// BestPeer lineage ([26], just-in-time query retrieval over partially
// indexed data) lets peers skip indexing cold tables to bound index
// size — the locator falls back to probing every current participant
// directly.
func (p *Peer) Locate(table string, conjuncts []sqldb.Expr, columns []string) (indexer.Location, error) {
	loc, err := p.lc.Locate(table, conjuncts, columns)
	if err != nil {
		return loc, err
	}
	if loc.Kind != indexer.KindNone {
		return loc, nil
	}
	if p.GlobalSchema(table) == nil {
		return loc, nil // not a global table: nothing to probe for
	}
	return p.probeParticipants(table)
}

// probeParticipants asks every online participant whether it holds the
// table (the unindexed fallback), probing all of them concurrently.
// The result is not cached: partial indexing trades lookup traffic for
// index size. A participant whose probe fails — crashed between the
// bootstrap's online check and the call, say, or unreachable over TCP,
// or timed out (pnet.Unavailable covers all of these, in-process and
// remote alike) — is skipped so one down peer cannot abort the whole
// locate; the probe only errors when no participant answered at all,
// and it prefers reporting a real handler failure over a mere
// unreachability when both occurred.
func (p *Peer) probeParticipants(table string) (indexer.Location, error) {
	loc := indexer.Location{Kind: indexer.KindNone}
	var ids []string
	for _, id := range p.env.Bootstrap.Peers() {
		if id == "" || !p.env.Bootstrap.Online(id) {
			continue
		}
		ids = append(ids, id)
	}
	type probe struct {
		entry indexer.TableEntry
		err   error
	}
	// The per-probe error travels in the slot so the fan-out drains every
	// probe instead of failing the round. Probes to heat-saturated peers
	// leave last (the advisory), which never changes the outcome: every
	// probe still runs and slots stay in index order.
	order := engine.Options{HotPeers: p.HotPeers()}.DispatchOrder(ids)
	probes, _ := engine.FanOutOrdered(0, len(ids), order, func(i int) (probe, error) {
		reply, err := p.ep.Call(ids[i], MsgHasTable, table, int64(len(table)))
		if err != nil {
			return probe{err: err}, nil
		}
		return probe{entry: reply.Payload.(indexer.TableEntry)}, nil
	})
	var firstErr error
	answered := 0
	for i, pr := range probes {
		if pr.err != nil {
			// A handler that ran and failed outranks an unreachable
			// peer in the error we surface: the former is a bug signal,
			// the latter is the failure mode this probe exists to
			// degrade past.
			if firstErr == nil || (pnet.Unavailable(firstErr) && !pnet.Unavailable(pr.err)) {
				firstErr = pr.err
			}
			continue
		}
		answered++
		if pr.entry.Rows == 0 && pr.entry.Bytes == 0 {
			continue
		}
		loc.Peers = append(loc.Peers, ids[i])
		loc.Entries = append(loc.Entries, pr.entry)
	}
	if answered == 0 && firstErr != nil {
		return loc, fmt.Errorf("peer %s: probing participants for %s: %w", p.id, table, firstErr)
	}
	if len(loc.Peers) > 0 {
		loc.Kind = indexer.KindTable
		loc.Hops = len(loc.Peers) // one probe message per participant
	}
	return loc, nil
}

// Gate implements engine.Backend: the strong-consistency gate (§3.2).
func (p *Peer) Gate(peers []string) error {
	if !p.env.Bootstrap.Online(peers...) {
		return fmt.Errorf("peer: data scope offline, query blocked until fail-over completes")
	}
	return nil
}

// SubQuery implements engine.Backend: ship a subquery to a data owner
// peer over the message substrate.
func (p *Peer) SubQuery(peerID string, req engine.SubQueryRequest) (*sqldb.Result, error) {
	size := req.StmtBytes
	if size == 0 {
		size = engine.SubQueryBytes(req.Stmt)
	}
	if req.Bloom != nil {
		size += req.Bloom.SizeBytes()
	}
	reply, err := p.ep.CallTraced(req.Trace, peerID, MsgSubQuery, req, size)
	if err != nil {
		return nil, err
	}
	return reply.Payload.(*sqldb.Result), nil
}

// JoinAt implements engine.Backend: dispatch a replicated-join task to
// a processing node.
func (p *Peer) JoinAt(peerID string, task engine.JoinTask) (*sqldb.Result, error) {
	size := int64(64) + task.ShippedBytes
	if task.ShippedBytes == 0 {
		for _, r := range task.Shipped {
			size += int64(r.EncodedSize())
		}
	}
	reply, err := p.ep.CallTraced(task.Local.Trace, peerID, MsgJoinTask, task, size)
	if err != nil {
		return nil, err
	}
	return reply.Payload.(*sqldb.Result), nil
}

// MR implements engine.Backend.
func (p *Peer) MR() *mapreduce.Cluster { return p.env.MR }

// QueryTimestamp implements engine.Backend: new queries are stamped
// with the network's current logical time.
func (p *Peer) QueryTimestamp() uint64 {
	if p.env.Clock == nil {
		return 0
	}
	return p.env.Clock.Now()
}

// Rates implements engine.Backend.
func (p *Peer) Rates() vtime.Rates { return p.env.Rates }

// --- data-owner side ---

// handleSubQuery serves a data retrieval request: the statement is
// checked and rewritten under the requesting user's access role (§4.4),
// executed against the local database, bloom-filtered when the request
// carries a filter, and the (masked) rows are pushed back.
func (p *Peer) handleSubQuery(msg pnet.Message) (pnet.Message, error) {
	req := msg.Payload.(engine.SubQueryRequest)
	sp := telemetry.StartSpan(msg.Trace, "exec-subquery", telemetry.L("peer", p.id))
	defer sp.End()
	if err := p.checkSnapshot(req.Timestamp); err != nil {
		sp.SetError(err)
		return pnet.Message{}, err
	}
	role, err := p.roleFor(req.User)
	if err != nil {
		sp.SetError(err)
		return pnet.Message{}, err
	}
	if role != nil {
		if err := p.checkAccess(role, req.Stmt); err != nil {
			sp.SetError(err)
			return pnet.Message{}, err
		}
	}
	res, err := p.db.ExecStmt(req.Stmt)
	if err != nil {
		sp.SetError(err)
		return pnet.Message{}, err
	}
	// Only the data owner heats the key range — the coordinator does
	// not, so one logical access counts once cluster-wide.
	p.recordStmtHeat(req.Stmt)
	engine.ApplyBloomToResult(res, req.BloomColumn, req.Bloom)
	if role != nil && len(req.Stmt.From) == 1 {
		accesscontrol.MaskRows(role, req.Stmt.From[0].Table, res.Columns, res.Rows)
	}
	sp.SetAttr("rows", fmt.Sprintf("%d", len(res.Rows)))
	sp.SetAttr("bytes", fmt.Sprintf("%d", res.Stats.BytesReturned))
	sp.SetVTime(p.env.Rates.DiskRead(res.Stats.BytesScanned).Add(p.env.Rates.CPUWork(res.Stats.BytesScanned)).Total())
	return pnet.Message{Payload: res, Size: res.Stats.BytesReturned}, nil
}

// handleJoinTask serves a processing-node task of the parallel engine.
func (p *Peer) handleJoinTask(msg pnet.Message) (pnet.Message, error) {
	task := msg.Payload.(engine.JoinTask)
	sp := telemetry.StartSpan(msg.Trace, "exec-jointask", telemetry.L("peer", p.id))
	defer sp.End()
	if err := p.checkSnapshot(task.Local.Timestamp); err != nil {
		sp.SetError(err)
		return pnet.Message{}, err
	}
	role, err := p.roleFor(task.Local.User)
	if err != nil {
		sp.SetError(err)
		return pnet.Message{}, err
	}
	if role != nil {
		if err := p.checkAccess(role, task.Local.Stmt); err != nil {
			sp.SetError(err)
			return pnet.Message{}, err
		}
	}
	local, err := p.db.ExecStmt(task.Local.Stmt)
	if err != nil {
		sp.SetError(err)
		return pnet.Message{}, err
	}
	p.recordStmtHeat(task.Local.Stmt)
	if role != nil && len(task.Local.Stmt.From) == 1 {
		accesscontrol.MaskRows(role, task.Local.Stmt.From[0].Table, local.Columns, local.Rows)
	}
	res, err := engine.ExecuteJoinTask(task, local.Rows)
	if err != nil {
		sp.SetError(err)
		return pnet.Message{}, err
	}
	res.Stats.BytesScanned = local.Stats.BytesScanned
	res.Stats.RowsScanned = local.Stats.RowsScanned
	for _, r := range res.Rows {
		res.Stats.BytesReturned += int64(r.EncodedSize())
	}
	sp.SetAttr("rows", fmt.Sprintf("%d", len(res.Rows)))
	sp.SetAttr("bytes", fmt.Sprintf("%d", res.Stats.BytesReturned))
	sp.SetVTime(p.env.Rates.DiskRead(res.Stats.BytesScanned).Add(p.env.Rates.CPUWork(res.Stats.BytesScanned + task.ShippedBytes)).Total())
	return pnet.Message{Payload: res, Size: res.Stats.BytesReturned}, nil
}

// checkSnapshot enforces Definition 2: a data owner whose snapshot is
// newer than the query's timestamp cannot answer for the snapshot the
// query names and rejects, making the processor resubmit.
func (p *Peer) checkSnapshot(queryTS uint64) error {
	if queryTS == 0 {
		return nil
	}
	if ts := p.snapshotTS.Load(); ts > queryTS {
		return fmt.Errorf("%w (peer %s snapshot %d > query %d)", engine.ErrSnapshotNewer, p.id, ts, queryTS)
	}
	return nil
}

// roleFor resolves the requesting user's role. The empty user is the
// benchmark full-access account (nil role = no enforcement), matching
// the §6.1.4 configuration where a single role with full access to all
// tables is assigned to the benchmark user.
func (p *Peer) roleFor(user string) (*accesscontrol.Role, error) {
	if user == "" {
		return nil, nil
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	role := p.acl.RoleOf(user)
	if role == nil {
		return nil, fmt.Errorf("peer %s: unknown user %q", p.id, user)
	}
	return role, nil
}

// checkAccess verifies a statement only references columns the role may
// read in positions that cannot be masked afterwards: predicates and
// grouping (information leaks) and non-trivial select expressions
// (aggregates over hidden data cannot be NULLed per cell).
func (p *Peer) checkAccess(role *accesscontrol.Role, stmt *sqldb.SelectStmt) error {
	for _, ref := range stmt.From {
		single := &sqldb.SelectStmt{
			From:    []sqldb.TableRef{ref},
			Where:   stmt.Where,
			GroupBy: stmt.GroupBy,
		}
		// CheckSelect only inspects columns resolvable against the one
		// table; qualified references to other tables pass through.
		if err := accesscontrol.CheckSelect(role, ref.Table, filterStmtFor(single, ref)); err != nil {
			return err
		}
	}
	for _, item := range stmt.Items {
		if item.Star {
			continue // plain projection: masked after execution
		}
		if _, plain := item.Expr.(*sqldb.ColumnRef); plain {
			continue
		}
		for _, cr := range sqldb.ColumnsIn(item.Expr) {
			table := tableOfRef(stmt, cr)
			if table == "" {
				continue
			}
			priv, rng := role.Access(table, cr.Column)
			if !priv.Has(accesscontrol.PrivRead) || rng != nil {
				return fmt.Errorf("peer %s: role %s may not compute over %s.%s", p.id, role.Name, table, cr.Column)
			}
		}
	}
	return nil
}

// filterStmtFor narrows a statement's predicates to those resolvable
// against one FROM entry, so access checks do not trip over other
// tables' columns.
func filterStmtFor(stmt *sqldb.SelectStmt, ref sqldb.TableRef) *sqldb.SelectStmt {
	out := &sqldb.SelectStmt{From: []sqldb.TableRef{ref}}
	for _, c := range sqldb.Conjuncts(stmt.Where) {
		all := true
		for _, cr := range sqldb.ColumnsIn(c) {
			if cr.Table != "" && !equalFold(cr.Table, ref.Alias) {
				all = false
				break
			}
		}
		if all {
			out.Where = sqldb.AndAll([]sqldb.Expr{out.Where, c})
		}
	}
	for _, g := range stmt.GroupBy {
		all := true
		for _, cr := range sqldb.ColumnsIn(g) {
			if cr.Table != "" && !equalFold(cr.Table, ref.Alias) {
				all = false
				break
			}
		}
		if all {
			out.GroupBy = append(out.GroupBy, g)
		}
	}
	return out
}

// tableOfRef resolves which FROM table a column reference belongs to.
func tableOfRef(stmt *sqldb.SelectStmt, cr *sqldb.ColumnRef) string {
	if cr.Table == "" {
		if len(stmt.From) == 1 {
			return stmt.From[0].Table
		}
		return ""
	}
	for _, ref := range stmt.From {
		if equalFold(ref.Alias, cr.Table) {
			return ref.Table
		}
	}
	return ""
}
