package peer

import (
	"sync"
	"time"

	"bestpeer/internal/pnet"
	"bestpeer/internal/telemetry"
)

// Per-peer telemetry: each peer owns a private registry holding only the
// series the monitoring plane scores — query latency, error and
// resubmission counts, rows scanned, shuffle volume, and per-destination
// RPC outcomes. Peer registries are disjoint, so the bootstrap's
// collector can merge every report into one cluster registry under a
// peer=<id> label without double counting (the process-wide Default
// registry stays what it was: this process's /metrics view).

func init() {
	// The report types cross pnet's TCP transport; telemetry itself sits
	// below pnet, so the producing package registers them.
	pnet.RegisterPayload(telemetry.Report{}, SlowQueryEntry{}, []SlowQueryEntry{})
}

// peerMetrics caches the peer registry's hot-path handles.
type peerMetrics struct {
	reg         *telemetry.Registry
	queries     *telemetry.Counter
	queryErrors *telemetry.Counter
	latency     *telemetry.Histogram
	rowsScanned *telemetry.Counter
	shuffle     *telemetry.Counter
	keyHeat     *telemetry.Heatmap
	indexHeat   *telemetry.Heatmap

	dest sync.Map // destination id -> *destCounters
}

// destCounters is one destination's sender-side RPC accounting. The
// sender's view is the authoritative one for health scoring: a crashed
// peer cannot report its own failures, but every peer that tried to
// reach it can.
type destCounters struct {
	calls  *telemetry.Counter
	errors *telemetry.Counter
}

func newPeerMetrics() *peerMetrics {
	reg := telemetry.NewRegistry()
	m := &peerMetrics{
		reg:         reg,
		queries:     reg.Counter("peer_queries_total"),
		queryErrors: reg.Counter("peer_query_errors_total"),
		latency:     reg.Histogram("peer_query_seconds", nil),
		rowsScanned: reg.Counter("peer_rows_scanned_total"),
		shuffle:     reg.Counter("peer_shuffle_bytes_total"),
		keyHeat:     reg.Heatmap("peer_key_heat", telemetry.DefaultHeatBuckets),
		indexHeat:   reg.Heatmap("peer_index_heat", telemetry.DefaultHeatBuckets),
	}
	reg.SetHelp("peer_queries_total", "Queries this peer coordinated.")
	reg.SetHelp("peer_query_errors_total", "Coordinated queries that returned an error.")
	reg.SetHelp("peer_query_seconds", "Wall-clock latency of coordinated queries.")
	reg.SetHelp("peer_rows_scanned_total", "Rows scanned across all peers on this peer's behalf.")
	reg.SetHelp("peer_shuffle_bytes_total", "Bytes shipped between peers for this peer's queries.")
	reg.SetHelp("peer_key_heat", "Access heat over the BATON key space served by this peer.")
	reg.SetHelp("peer_index_heat", "Overlay index-serving heat: key-space buckets of the lookup hops this peer's overlay node served or forwarded.")
	reg.SetHelp("peer_rpc_calls_total", "Sender-side RPC attempts by destination.")
	reg.SetHelp("peer_rpc_errors_total", "Sender-side RPC failures by destination.")
	return m
}

func (m *peerMetrics) destOf(to string) *destCounters {
	if v, ok := m.dest.Load(to); ok {
		return v.(*destCounters)
	}
	d := &destCounters{
		calls:  m.reg.Counter("peer_rpc_calls_total", telemetry.L("to", to)),
		errors: m.reg.Counter("peer_rpc_errors_total", telemetry.L("to", to)),
	}
	actual, _ := m.dest.LoadOrStore(to, d)
	return actual.(*destCounters)
}

// initTelemetry wires the peer's private registry, the slow-query log,
// and the endpoint call observer. Join and Recover both call it.
func (p *Peer) initTelemetry() {
	p.pm = newPeerMetrics()
	p.slow = newSlowLog(DefaultSlowQueryThreshold)
	// Two separate heat families, because they answer different
	// questions. peer_key_heat carries only data-access attribution
	// (recordStmtHeat): which key ranges the *workload* touches,
	// regardless of which node routed the lookup. peer_index_heat is the
	// overlay node's own serving heat — every lookup hop this node
	// serves or forwards — which is what the mitigation plane needs:
	// index lookups key on table/column names, so a popular table
	// funnels its whole lookup load onto one owner, and only the
	// per-node serving heat shows which peer is drowning.
	p.node.SetHeatmap(p.pm.indexHeat)
	p.ep.SetCallObserver(func(to, _ string, _ time.Duration, err error) {
		d := p.pm.destOf(to)
		d.calls.Inc()
		if err != nil {
			d.errors.Inc()
		}
	})
}

// Metrics returns the peer's private telemetry registry (the one the
// reporter ships to the bootstrap).
func (p *Peer) Metrics() *telemetry.Registry {
	if p.pm == nil {
		return nil
	}
	return p.pm.reg
}

// recordQuery feeds one finished Query into the peer registry and the
// slow-query log. res is nil when the query failed.
func (p *Peer) recordQuery(sql, user string, wall time.Duration, res *queryOutcome, err error, root *telemetry.Span) {
	if p.pm != nil {
		p.pm.queries.Inc()
		// Tail-bucket observations keep the trace ID as an exemplar, so a
		// p99 overrun on the dashboard links to a replayable trace.
		p.pm.latency.ObserveExemplar(wall.Seconds(), root.Context().TraceID)
		if err != nil {
			p.pm.queryErrors.Inc()
		}
		if res != nil {
			p.pm.rowsScanned.Add(res.rowsScanned)
			p.pm.shuffle.Add(res.bytesFetched)
		}
	}
	p.slow.maybeCapture(p.id, sql, user, wall, res, err, root)
}

// queryOutcome is the slice of a QueryResult the recorder needs (kept
// small so error paths can pass nil without building a result).
type queryOutcome struct {
	engine        string
	vtime         time.Duration
	peers         int
	resubmissions int
	rowsScanned   int64
	bytesFetched  int64

	// Heat attribution (stmtKeyRange): which tables the query touched
	// and, when a stats-domain column was bounded, the BATON key range.
	tables       []string
	keyLo, keyHi float64
	hasKeyRange  bool
}
