package peer

import (
	"bestpeer/internal/engine"
	"bestpeer/internal/serving"
)

// servingBackend adapts the peer's online query path to the serving
// tier's Backend interface.
type servingBackend struct {
	p *Peer
}

// ServeQuery implements serving.Backend.
func (b servingBackend) ServeQuery(sql, user, strategy string) (serving.Executed, error) {
	res, err := b.p.Query(sql, user, Strategy(strategy), engine.Options{})
	if err != nil {
		return serving.Executed{}, err
	}
	return serving.Executed{Result: res.Result, Engine: res.Engine, VTime: res.Cost.Total()}, nil
}

// StartServing attaches a serving tier to this peer's endpoint: the
// session verbs route through the admission queue and result cache into
// Query. Unset config fields default; in particular the version source
// defaults to this peer's own database (fine for single-peer data
// scopes — a multi-peer network passes a cluster-wide source so remote
// DML invalidates too) and the telemetry registry to this peer's, so
// shedding reaches the collector.
func (p *Peer) StartServing(cfg serving.Config) *serving.Server {
	if cfg.Versions == nil {
		cfg.Versions = p.db.Versions
	}
	if cfg.Registry == nil {
		cfg.Registry = p.Metrics()
	}
	return serving.Attach(p.ep, servingBackend{p: p}, cfg)
}
