package peer

import (
	"fmt"
	"math/rand"

	"bestpeer/internal/engine"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// Distributed online aggregation: BestPeer carried this capability into
// BestPeer++ (paper §2, citing Wu et al., "Distributed Online
// Aggregation", VLDB 2009). For a single-table aggregate query, instead
// of waiting for every data owner peer, the processor streams partial
// aggregates peer by peer in random order and emits, after each peer, a
// running estimate extrapolated from the fraction of the relation seen
// so far. Analysts watching a long-running aggregate can stop as soon
// as the estimate is stable enough.

// OnlineEstimate is one progressive result.
type OnlineEstimate struct {
	// Result is the merged aggregate over the peers seen so far, with
	// SUM/COUNT columns extrapolated to the full relation.
	Result *sqldb.Result
	// PeersSeen / PeersTotal measure progress.
	PeersSeen  int
	PeersTotal int
	// FractionSeen is the fraction of the relation's rows consumed; the
	// extrapolation factor is its inverse.
	FractionSeen float64
	// Final marks the exact, fully-consumed result.
	Final bool
}

// QueryOnline runs a single-table aggregate query progressively. The
// callback receives an estimate after each peer's partials arrive;
// returning false stops early. The final callback (Final=true) carries
// the exact result. Seed orders the peer visits.
func (p *Peer) QueryOnline(sql, user string, seed int64, fn func(OnlineEstimate) bool) error {
	stmt, err := sqldb.ParseSelect(sql)
	if err != nil {
		return err
	}
	if len(stmt.From) != 1 {
		return fmt.Errorf("peer: online aggregation supports single-table queries")
	}
	d, ok, err := engine.DecomposeAggregates(stmt, p.GlobalSchema)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("peer: online aggregation needs an aggregate query")
	}
	schema := p.GlobalSchema(stmt.From[0].Table)
	perTable, _ := sqldb.SplitConjunctsPerTable(stmt.Where, stmt.From, []*sqldb.Schema{schema})
	cols := sqldb.NeededColumns(stmt, stmt.From[0], schema)
	loc, err := p.Locate(stmt.From[0].Table, perTable[0], cols)
	if err != nil {
		return err
	}
	if err := p.Gate(loc.Peers); err != nil {
		return err
	}
	rowsByPeer := make(map[string]int64, len(loc.Entries))
	var totalRows int64
	for _, e := range loc.Entries {
		rowsByPeer[e.Peer] = e.Rows
		totalRows += e.Rows
	}
	order := append([]string(nil), loc.Peers...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	ts := p.QueryTimestamp()
	pb := []sqldb.Binding{{Alias: "partial", Schema: d.PartialSchema}}
	var partials []sqlval.Row
	var seenRows int64
	for i, peerID := range order {
		res, err := p.SubQuery(peerID, engine.SubQueryRequest{Stmt: d.Partial, User: user, Timestamp: ts})
		if err != nil {
			return err
		}
		partials = append(partials, res.Rows...)
		seenRows += rowsByPeer[peerID]
		final := i == len(order)-1

		fraction := 1.0
		if totalRows > 0 && !final {
			fraction = float64(seenRows) / float64(totalRows)
		}
		scaled := partials
		if !final && fraction > 0 && fraction < 1 {
			scaled = scalePartials(d, partials, 1/fraction)
		}
		merged, err := sqldb.ProjectRows(d.Merge, pb, scaled)
		if err != nil {
			return err
		}
		est := OnlineEstimate{
			Result:       merged,
			PeersSeen:    i + 1,
			PeersTotal:   len(order),
			FractionSeen: fraction,
			Final:        final,
		}
		if !fn(est) && !final {
			return nil
		}
	}
	if len(order) == 0 {
		merged, err := sqldb.ProjectRows(d.Merge, pb, nil)
		if err != nil {
			return err
		}
		fn(OnlineEstimate{Result: merged, Final: true, FractionSeen: 1})
	}
	return nil
}

// scalePartials extrapolates SUM-mergeable partial columns (sums and
// counts) by the inverse of the seen fraction; MIN/MAX and group-key
// columns pass through (extrema cannot be extrapolated).
func scalePartials(d *engine.Decomposition, partials []sqlval.Row, factor float64) []sqlval.Row {
	out := make([]sqlval.Row, len(partials))
	for i, row := range partials {
		nr := row.Clone()
		for c, op := range d.PartialMergeOps {
			if op != "SUM" || c >= len(nr) || nr[c].IsNull() {
				continue
			}
			switch nr[c].Kind() {
			case sqlval.KindInt:
				nr[c] = sqlval.Int(int64(float64(nr[c].AsInt()) * factor))
			case sqlval.KindFloat:
				nr[c] = sqlval.Float(nr[c].AsFloat() * factor)
			}
		}
		out[i] = nr
	}
	return out
}
