package peer

import (
	"strings"

	"bestpeer/internal/baton"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
)

// Heat attribution: map a statement's literal predicates on the
// network's stats-domain columns (§5.1) into the BATON key space [0,1),
// the same normalization every publisher uses for range indexes. The
// resulting interval feeds two consumers: the data owner records it
// into its peer_key_heat heatmap (so the collector sees which key
// ranges the cluster actually hits), and the slow-query log stamps it
// on captured entries (so a p99 overrun names the range it sat on).

// heatKeyFloat widens an interval bound to the float the stats domain
// is declared over. Dates widen to their day ordinal — the same value
// sqlval.MustParseDate(...).AsFloat() yields when the domain is
// defined, so both sides of the mapping agree.
func heatKeyFloat(v sqlval.Value) (float64, bool) {
	switch v.Kind() {
	case sqlval.KindInt, sqlval.KindFloat, sqlval.KindDate:
		return v.AsFloat(), true
	default:
		return 0, false
	}
}

// heatBounds accumulates literal comparison bounds on one column while
// walking a WHERE clause's conjunctive spine. It exists so the heat
// path — which runs once per served subquery — stays allocation-free:
// the generic indexer.ExtractIntervals builds a conjunct slice plus an
// interval map per call, which at ~6 allocs a subquery showed up as
// ~2% on the fig-6 workload.
type heatBounds struct {
	lo, hi       float64
	hasLo, hasHi bool
}

func (b *heatBounds) tightenLo(v float64) {
	if !b.hasLo || v > b.lo {
		b.lo, b.hasLo = v, true
	}
}

func (b *heatBounds) tightenHi(v float64) {
	if !b.hasHi || v < b.hi {
		b.hi, b.hasHi = v, true
	}
}

// heatLiteral mirrors the indexer's literal normalization: date-shaped
// strings compare as dates, matching the published stats-domain floats.
func heatLiteral(v sqlval.Value) sqlval.Value {
	if v.Kind() == sqlval.KindString {
		if d, err := sqlval.ParseDate(v.AsString()); err == nil {
			return d
		}
	}
	return v
}

func heatFlip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// walk descends AND nodes and tightens the bounds from every literal
// comparison against col. Disjunctions and non-literal comparisons are
// skipped — heat attribution only needs the common conjunctive case.
func (b *heatBounds) walk(e sqldb.Expr, col string) {
	switch x := e.(type) {
	case *sqldb.Binary:
		if strings.EqualFold(x.Op, "AND") {
			b.walk(x.L, col)
			b.walk(x.R, col)
			return
		}
		ref, okL := x.L.(*sqldb.ColumnRef)
		lit, okR := x.R.(*sqldb.Literal)
		op := x.Op
		if !okL || !okR {
			if ref2, ok := x.R.(*sqldb.ColumnRef); ok {
				if lit2, ok2 := x.L.(*sqldb.Literal); ok2 {
					ref, lit, okL, okR = ref2, lit2, true, true
					op = heatFlip(op)
				}
			}
		}
		if !okL || !okR || !strings.EqualFold(ref.Column, col) {
			return
		}
		v, isNum := heatKeyFloat(heatLiteral(lit.Val))
		if !isNum {
			return
		}
		switch op {
		case "=":
			b.tightenLo(v)
			b.tightenHi(v)
		case "<", "<=":
			b.tightenHi(v)
		case ">", ">=":
			b.tightenLo(v)
		}
	case *sqldb.Between:
		ref, ok := x.E.(*sqldb.ColumnRef)
		if !ok || x.Not || !strings.EqualFold(ref.Column, col) {
			return
		}
		if lit, ok := x.Lo.(*sqldb.Literal); ok {
			if v, isNum := heatKeyFloat(heatLiteral(lit.Val)); isNum {
				b.tightenLo(v)
			}
		}
		if lit, ok := x.Hi.(*sqldb.Literal); ok {
			if v, isNum := heatKeyFloat(heatLiteral(lit.Val)); isNum {
				b.tightenHi(v)
			}
		}
	}
}

// stmtHeatRange maps stmt's restriction on the first stats-domain
// column it constrains into [lo,hi) key space. Unbounded sides clamp to
// the domain edge (0 or 1), so "shipdate >= X" still yields a usable
// interval. ok is false when no FROM table has a stats domain or no
// domain column carries a literal bound — heat then has nothing finer
// than "the whole table" to say, and the caller skips recording.
func (p *Peer) stmtHeatRange(stmt *sqldb.SelectStmt) (lo, hi float64, ok bool) {
	if stmt == nil || p.env.Bootstrap == nil {
		return 0, 0, false
	}
	for _, ref := range stmt.From {
		dom, found := p.env.Bootstrap.StatsDomainRec(ref.Table)
		if !found {
			continue
		}
		for i, col := range dom.Columns {
			if i >= len(dom.Lo) || i >= len(dom.Hi) {
				break
			}
			var b heatBounds
			b.walk(stmt.Where, col)
			if !b.hasLo && !b.hasHi {
				continue
			}
			lo, hi = 0, 1
			if b.hasLo {
				lo = float64(baton.FloatKey(b.lo, dom.Lo[i], dom.Hi[i]))
			}
			if b.hasHi {
				hi = float64(baton.FloatKey(b.hi, dom.Lo[i], dom.Hi[i]))
			}
			if hi < lo {
				lo, hi = hi, lo
			}
			return lo, hi, true
		}
	}
	return 0, 0, false
}

// stmtKeyRange is stmtHeatRange plus the FROM-table list, for the
// slow-query log's attribution fields (coordinator side, once per
// query, so the slice is affordable there).
func (p *Peer) stmtKeyRange(stmt *sqldb.SelectStmt) (tables []string, lo, hi float64, ok bool) {
	if stmt == nil {
		return nil, 0, 0, false
	}
	for _, ref := range stmt.From {
		tables = append(tables, ref.Table)
	}
	lo, hi, ok = p.stmtHeatRange(stmt)
	return tables, lo, hi, ok
}

// recordStmtHeat feeds one served statement's key range into the peer's
// heatmap. Only the data owner calls it (handleSubQuery/handleJoinTask
// side), never the coordinator — each access heats the cluster once no
// matter how many peers the round fanned out to. The HeatEnabled gate
// sits in front of the interval extraction, so the kill switch prices
// the whole heat plane, not just the atomic adds.
func (p *Peer) recordStmtHeat(stmt *sqldb.SelectStmt) {
	if p.pm == nil || p.pm.keyHeat == nil || !telemetry.HeatEnabled() {
		return
	}
	if lo, hi, ok := p.stmtHeatRange(stmt); ok {
		p.pm.keyHeat.RecordRange(lo, hi)
	}
}
