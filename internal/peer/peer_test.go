package peer

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"bestpeer/internal/baton"
	"bestpeer/internal/bootstrap"
	"bestpeer/internal/cloud"
	"bestpeer/internal/engine"
	"bestpeer/internal/pnet"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/tpch"
	"bestpeer/internal/vtime"
)

// testEnv builds a complete shared environment with a TPC-H global
// schema.
func testEnv(t *testing.T) Env {
	t.Helper()
	net := pnet.NewNetwork()
	provider := cloud.NewSimProvider()
	bs, err := bootstrap.New(net, "bootstrap", provider)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tpch.Schemas(false) {
		bs.DefineGlobalSchema(s)
	}
	return Env{
		Net:       net,
		Bootstrap: bs,
		Overlay:   baton.NewOverlay(net, "bootstrap/overlay"),
		Provider:  provider,
		Rates:     vtime.DefaultRates(),
		Clock:     &pnet.LogicalClock{},
	}
}

// joinLoaded joins n peers, each with a TPC-H partition, indexes
// published and backups taken.
func joinLoaded(t *testing.T, env Env, n int, sf float64) []*Peer {
	t.Helper()
	peers := make([]*Peer, n)
	for i := range peers {
		p, err := Join(fmt.Sprintf("peer-%02d", i), env)
		if err != nil {
			t.Fatal(err)
		}
		sc := tpch.Scale{ScaleFactor: sf, Peer: i, NumPeers: n, NationKey: -1}
		if err := tpch.Generate(p.DB(), sc); err != nil {
			t.Fatal(err)
		}
		if err := p.PublishIndexes(nil); err != nil {
			t.Fatal(err)
		}
		if err := p.Backup(); err != nil {
			t.Fatal(err)
		}
		p.MarkRefreshed()
		peers[i] = p
	}
	return peers
}

func TestJoinIssuesVerifiableCertificate(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	for _, p := range peers {
		if err := env.Bootstrap.CA().Verify(p.Certificate()); err != nil {
			t.Errorf("%s cert invalid: %v", p.ID(), err)
		}
	}
	if env.Overlay.Size() != 2 {
		t.Errorf("overlay size = %d", env.Overlay.Size())
	}
	if p := peers[0].GlobalSchema("LINEITEM"); p == nil {
		t.Error("case-insensitive global schema lookup failed")
	}
}

func TestQueryAcrossPeers(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 3, 0.003)
	res, err := peers[0].Query(`SELECT COUNT(*) FROM orders`, "", StrategyBasic, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, p := range peers {
		r, _ := p.DB().Query(`SELECT COUNT(*) FROM orders`)
		want += r.Rows[0][0].AsInt()
	}
	if got := res.Result.Rows[0][0].AsInt(); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	if res.Resubmissions != 0 {
		t.Errorf("resubmissions = %d", res.Resubmissions)
	}
}

func TestUnknownStrategyRejected(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 1, 0.002)
	if _, err := peers[0].Query(`SELECT 1 FROM orders`, "", Strategy("warp"), engine.Options{}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestDefinition2SnapshotSemantics: a query stamped before a data
// owner's refresh is rejected by that owner (its snapshot is newer than
// the query's timestamp); a resubmission with a fresh timestamp
// succeeds.
func TestDefinition2SnapshotSemantics(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)

	// The race: the query is stamped, then peer 1 refreshes its data
	// before the subquery arrives.
	staleT := env.Clock.Now()
	peers[1].MarkRefreshed()

	stmt, err := sqldb.ParseSelect(`SELECT COUNT(*) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	e := &engine.Basic{B: peers[0], Timestamp: staleT}
	if _, err := e.Execute(stmt); !errors.Is(err, engine.ErrSnapshotNewer) {
		t.Fatalf("stale-stamped query: err = %v, want ErrSnapshotNewer", err)
	}
	// Resubmission through the peer's query processor takes a fresh
	// timestamp and succeeds.
	res, err := peers[0].Query(`SELECT COUNT(*) FROM orders`, "", StrategyBasic, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) != 1 {
		t.Error("resubmitted query returned nothing")
	}
}

func TestDefinition2GivesUpAfterRepeatedRaces(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	// A snapshot permanently in the future can never be caught: the
	// query must terminate with the sentinel error.
	peers[1].snapshotTS.Store(env.Clock.Now() + 1_000_000)
	_, err := peers[0].Query(`SELECT COUNT(*) FROM orders`, "", StrategyBasic, engine.Options{})
	if !errors.Is(err, engine.ErrSnapshotNewer) {
		t.Errorf("err = %v", err)
	}
}

func TestSnapshotAdvancesWithSync(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 1, 0.002)
	before := peers[0].SnapshotTS()
	peers[0].MarkRefreshed()
	if peers[0].SnapshotTS() <= before {
		t.Error("MarkRefreshed did not advance the snapshot timestamp")
	}
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 1, 0.002)
	dump := DumpDB(peers[0].DB())
	restored, err := RestoreDB(dump)
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range peers[0].DB().TableNames() {
		orig, _ := peers[0].DB().Query(`SELECT COUNT(*) FROM ` + table)
		got, err := restored.Query(`SELECT COUNT(*) FROM ` + table)
		if err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		if orig.Rows[0][0].AsInt() != got.Rows[0][0].AsInt() {
			t.Errorf("%s: %v != %v", table, got.Rows[0][0], orig.Rows[0][0])
		}
	}
	// Secondary indexes were rebuilt.
	li := restored.Table(tpch.LineItem)
	if li.IndexOn("l_shipdate") == nil {
		t.Error("restored lineitem lacks l_shipdate index")
	}
	res, err := restored.Query(tpch.Q1Default())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.IndexUsed {
		t.Error("restored index unused")
	}
}

func TestRecoverRestoresFromBackup(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 3, 0.003)
	victim := peers[1]
	victimRows, _ := victim.DB().Query(`SELECT COUNT(*) FROM lineitem`)

	env.Provider.Crash(victim.ID())
	env.Net.SetDown(victim.ID(), true)

	replacement, pub, err := Recover(victim.ID(), victim.ID()+"-v2", env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pub) == 0 {
		t.Error("no public key for replacement")
	}
	got, err := replacement.DB().Query(`SELECT COUNT(*) FROM lineitem`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].AsInt() != victimRows.Rows[0][0].AsInt() {
		t.Errorf("restored rows %v, want %v", got.Rows[0][0], victimRows.Rows[0][0])
	}
	// The replacement's index entries point at the new identity.
	loc, err := peers[0].Locator().Locate(tpch.LineItem, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	peers[0].Locator().Invalidate()
	loc, err = peers[0].Locator().Locate(tpch.LineItem, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	foundNew := false
	for _, id := range loc.Peers {
		if id == victim.ID() {
			t.Errorf("failed identity still indexed: %v", loc.Peers)
		}
		if id == victim.ID()+"-v2" {
			foundNew = true
		}
	}
	if !foundNew {
		t.Errorf("replacement not indexed: %v", loc.Peers)
	}
}

func TestRecoverWithoutBackupFails(t *testing.T) {
	env := testEnv(t)
	p, err := Join("peer-00", env)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	if _, _, err := Recover("never-existed", "x", env, nil); err == nil {
		t.Error("recover without backup succeeded")
	}
}

func TestJoinTaskHandlerRejectsUnknownUser(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	stmt, _ := sqldb.ParseSelect(`SELECT o_orderkey FROM orders`)
	task := engine.JoinTask{
		Local:        engine.SubQueryRequest{Stmt: stmt, User: "ghost"},
		LocalBinding: sqldb.Binding{Alias: "orders", Schema: tpch.SchemaFor(tpch.Orders, false)},
	}
	if _, err := peers[0].JoinAt(peers[1].ID(), task); err == nil {
		t.Error("join task for unknown user accepted")
	}
}

func TestLeaveWithdrawsEverything(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 3, 0.003)
	if err := peers[2].Leave(); err != nil {
		t.Fatal(err)
	}
	peers[0].Locator().Invalidate()
	loc, err := peers[0].Locator().Locate(tpch.Orders, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range loc.Peers {
		if id == peers[2].ID() {
			t.Error("departed peer still indexed")
		}
	}
	if env.Overlay.Size() != 2 {
		t.Errorf("overlay size = %d", env.Overlay.Size())
	}
	if len(env.Bootstrap.Peers()) != 2 {
		t.Errorf("bootstrap peers = %v", env.Bootstrap.Peers())
	}
}

func TestUserBroadcastReachesHandlers(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	role := fullAccessRole()
	env.Bootstrap.Roles().DefineRole(role)
	for _, p := range peers {
		p.ACL().DefineRole(role)
	}
	if err := env.Bootstrap.CreateUser("carol", "everything"); err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if r := p.ACL().RoleOf("carol"); r == nil || r.Name != "everything" {
			t.Errorf("%s did not learn carol", p.ID())
		}
	}
	// The user can now query through any peer.
	res, err := peers[1].Query(`SELECT COUNT(*) FROM orders`, "carol", StrategyBasic, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) != 1 {
		t.Error("no result for authorized user")
	}
}

func fullAccessRole() *roleT {
	return roleFull("everything", tpch.Schemas(false)...)
}

func TestSubQuerySizeAccounting(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	env.Net.ResetStats()
	if _, err := peers[0].Query(`SELECT COUNT(*) FROM orders`, "", StrategyBasic, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	stats := env.Net.Stats()
	if stats.Messages == 0 || stats.BytesSent == 0 {
		t.Errorf("no traffic accounted: %+v", stats)
	}
}

func TestCheckAccessComputationsOverHiddenColumns(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	// analyst can read l_quantity only.
	role := roleReadOnly("analyst", tpch.LineItem, "l_quantity")
	env.Bootstrap.Roles().DefineRole(role)
	for _, p := range peers {
		p.ACL().DefineRole(role)
	}
	if err := env.Bootstrap.CreateUser("dave", "analyst"); err != nil {
		t.Fatal(err)
	}
	if _, err := peers[0].Query(`SELECT SUM(l_quantity) FROM lineitem`, "dave", StrategyBasic, engine.Options{}); err != nil {
		t.Errorf("aggregate over readable column rejected: %v", err)
	}
	if _, err := peers[0].Query(`SELECT SUM(l_extendedprice) FROM lineitem`, "dave", StrategyBasic, engine.Options{}); err == nil {
		t.Error("aggregate over hidden column accepted")
	}
	// Plain projection of a hidden column is allowed but masked.
	res, err := peers[0].Query(`SELECT l_quantity, l_extendedprice FROM lineitem`, "dave", StrategyBasic, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Result.Rows {
		if !row[1].IsNull() {
			t.Fatal("hidden column leaked")
		}
	}
	if !strings.Contains(res.Engine, "basic") {
		t.Errorf("engine = %s", res.Engine)
	}
}

// TestPartialIndexingFallback: peers that never publish index entries
// for a table are still reachable — the locator probes participants
// directly (just-in-time retrieval over partially indexed data).
func TestPartialIndexingFallback(t *testing.T) {
	env := testEnv(t)
	peers := make([]*Peer, 3)
	for i := range peers {
		p, err := Join(fmt.Sprintf("peer-%02d", i), env)
		if err != nil {
			t.Fatal(err)
		}
		sc := tpch.Scale{ScaleFactor: 0.002, Peer: i, NumPeers: 3, NationKey: -1}
		if err := tpch.Generate(p.DB(), sc); err != nil {
			t.Fatal(err)
		}
		// Deliberately publish NO index entries (partial indexing: the
		// peers treat every table as cold).
		peers[i] = p
	}
	loc, err := peers[0].Locate(tpch.Orders, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(loc.Peers) != 3 {
		t.Fatalf("probe found %v", loc.Peers)
	}
	if loc.Hops == 0 {
		t.Error("probe hops not accounted")
	}
	// Queries work end to end without any published indexes.
	res, err := peers[0].Query(`SELECT COUNT(*) FROM orders`, "", StrategyBasic, optsNone())
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, p := range peers {
		r, _ := p.DB().Query(`SELECT COUNT(*) FROM orders`)
		want += r.Rows[0][0].AsInt()
	}
	if got := res.Result.Rows[0][0].AsInt(); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
	// A genuinely absent table still resolves to nothing.
	loc, err = peers[0].Locate("region", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// region is generated only at peer 0.
	if len(loc.Peers) != 1 {
		t.Errorf("region probe = %v", loc.Peers)
	}
}

func TestExplain(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 3, 0.003)
	exp, err := peers[0].Explain(tpch.Q3Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Tables) != 2 {
		t.Fatalf("tables = %d", len(exp.Tables))
	}
	for _, tp := range exp.Tables {
		if len(tp.Peers) != 3 {
			t.Errorf("%s peers = %v", tp.Table, tp.Peers)
		}
		if len(tp.Columns) == 0 {
			t.Errorf("%s has no pushed columns", tp.Table)
		}
	}
	if exp.Tables[0].PushedWhere == "" && exp.Tables[1].PushedWhere == "" {
		t.Error("no pushdown predicates recorded for a selective query")
	}
	if exp.Plan == nil || (exp.Plan.Engine != "parallel" && exp.Plan.Engine != "mapreduce") {
		t.Errorf("plan = %+v", exp.Plan)
	}
	if s := exp.String(); !strings.Contains(s, "lineitem") || !strings.Contains(s, "planner:") {
		t.Errorf("rendering = %q", s)
	}
	if _, err := peers[0].Explain(`SELECT x FROM ghost`); err == nil {
		t.Error("explain of unknown table succeeded")
	}
}
