package peer

import (
	"math"
	"testing"

	"bestpeer/internal/bootstrap"
	"bestpeer/internal/engine"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/tpch"
)

// shipdateDomain registers the histogram configuration used by the
// statistics tests: one dimension over l_shipdate's day range.
func shipdateDomain(env Env) {
	lo := sqlval.MustParseDate("1992-01-01").AsFloat()
	hi := sqlval.MustParseDate("1998-12-31").AsFloat()
	env.Bootstrap.DefineStatsDomain(tpch.LineItem, bootstrap.StatsDomainRecord{
		Columns: []string{"l_shipdate"},
		Lo:      []float64{lo},
		Hi:      []float64{hi},
	})
}

func TestPublishStatisticsRequiresDomain(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 1, 0.002)
	if err := peers[0].PublishStatistics(tpch.LineItem, 16); err == nil {
		t.Error("publish without registered domain succeeded")
	}
	env.Bootstrap.DefineStatsDomain("ghost", bootstrap.StatsDomainRecord{
		Columns: []string{"x"}, Lo: []float64{0}, Hi: []float64{1},
	})
	if err := peers[0].PublishStatistics("ghost", 16); err == nil {
		t.Error("publish for absent table succeeded")
	}
}

func TestStatsSelectivityMatchesActualFraction(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 3, 0.004)
	shipdateDomain(env)
	for _, p := range peers {
		if err := p.PublishStatistics(tpch.LineItem, 32); err != nil {
			t.Fatal(err)
		}
	}
	stmt, err := sqldb.ParseSelect(`SELECT l_orderkey FROM lineitem WHERE l_shipdate > DATE '1997-08-01'`)
	if err != nil {
		t.Fatal(err)
	}
	conj := sqldb.Conjuncts(stmt.Where)
	sel := peers[0].StatsSelectivity(tpch.LineItem, conj)
	if sel <= 0 || sel >= 1 {
		t.Fatalf("selectivity = %v", sel)
	}
	// Actual fraction across all peers.
	var qualified, total float64
	for _, p := range peers {
		q, _ := p.DB().Query(`SELECT COUNT(*) FROM lineitem WHERE l_shipdate > DATE '1997-08-01'`)
		a, _ := p.DB().Query(`SELECT COUNT(*) FROM lineitem`)
		qualified += float64(q.Rows[0][0].AsInt())
		total += float64(a.Rows[0][0].AsInt())
	}
	actual := qualified / total
	if math.Abs(sel-actual) > 0.1 {
		t.Errorf("estimated selectivity %.3f vs actual %.3f", sel, actual)
	}
}

func TestStatsSelectivityDefaultsToOne(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	// No domain registered.
	if sel := peers[0].StatsSelectivity(tpch.LineItem, nil); sel != 1 {
		t.Errorf("selectivity without domain = %v", sel)
	}
	shipdateDomain(env)
	// Domain registered but no predicate on the histogram columns.
	stmt, _ := sqldb.ParseSelect(`SELECT l_orderkey FROM lineitem WHERE l_quantity > 5`)
	if sel := peers[0].StatsSelectivity(tpch.LineItem, sqldb.Conjuncts(stmt.Where)); sel != 1 {
		t.Errorf("selectivity without applicable predicate = %v", sel)
	}
}

func TestAdaptivePlannerUsesStatistics(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 3, 0.004)
	shipdateDomain(env)
	for _, p := range peers {
		if err := p.PublishStatistics(tpch.LineItem, 32); err != nil {
			t.Fatal(err)
		}
	}
	// A selective Q3 through the adaptive strategy must still return
	// correct results; the planner now sizes the lineitem level by the
	// predicate's selectivity.
	res, err := peers[0].Query(tpch.Q3Default(), "", StrategyAdaptive, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	basic, err := peers[0].Query(tpch.Q3Default(), "", StrategyBasic, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) != len(basic.Result.Rows) {
		t.Errorf("adaptive rows %d != basic %d", len(res.Result.Rows), len(basic.Result.Rows))
	}
}
