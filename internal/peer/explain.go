package peer

import (
	"fmt"
	"strings"

	"bestpeer/internal/engine"
	"bestpeer/internal/pnet"
	"bestpeer/internal/sqldb"
)

// MsgExplain is the peer.plan verb: fetch a peer's rendered LOCAL
// execution plan for a SQL statement — the cost-based join order,
// access-path choices, estimated vs actual scan cardinalities, and
// whether the vectorized batch path runs it. This complements Explain
// below, which describes the distributed access plan; peer.plan shows
// what one data owner's local executor does with the statement.
const MsgExplain = "peer.plan"

// ExplainLocalPlan asks target to explain how its local executor would
// run sql, returning the rendered plan text.
func (p *Peer) ExplainLocalPlan(target, sql string) (string, error) {
	reply, err := p.ep.Call(target, MsgExplain, sql, int64(len(sql)))
	if err != nil {
		return "", err
	}
	text, _ := reply.Payload.(string)
	return text, nil
}

func (p *Peer) handleExplain(msg pnet.Message) (pnet.Message, error) {
	sql, _ := msg.Payload.(string)
	ep, err := p.db.ExplainSelect(sql)
	if err != nil {
		return pnet.Message{}, err
	}
	text := ep.Render()
	return pnet.Message{Payload: text, Size: int64(len(text))}, nil
}

// Explanation describes how a query would execute without running it:
// the data owners each table resolves to (and through which index
// kind), the adaptive planner's processing graph, and the predicted
// engine costs.
type Explanation struct {
	Tables []TableAccessPlan
	Plan   *engine.Plan
}

// TableAccessPlan is one FROM entry's resolved access.
type TableAccessPlan struct {
	Table       string
	IndexKind   string
	Peers       []string
	Selectivity float64
	PushedWhere string
	Columns     []string
}

// Explain resolves a query's access plan and the adaptive planner's
// prediction. It performs index lookups but ships no data.
func (p *Peer) Explain(sql string) (*Explanation, error) {
	stmt, err := sqldb.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	schemas := make([]*sqldb.Schema, len(stmt.From))
	for i, ref := range stmt.From {
		s := p.GlobalSchema(ref.Table)
		if s == nil {
			return nil, fmt.Errorf("peer: unknown global table %s", ref.Table)
		}
		schemas[i] = s
	}
	perTable, _ := sqldb.SplitConjunctsPerTable(stmt.Where, stmt.From, schemas)
	out := &Explanation{}
	for i, ref := range stmt.From {
		cols := sqldb.NeededColumns(stmt, ref, schemas[i])
		loc, err := p.Locate(ref.Table, perTable[i], cols)
		if err != nil {
			return nil, err
		}
		plan := TableAccessPlan{
			Table:       ref.Table,
			IndexKind:   string(loc.Kind),
			Peers:       loc.Peers,
			Selectivity: p.StatsSelectivity(ref.Table, perTable[i]),
			Columns:     cols,
		}
		if w := sqldb.AndAll(perTable[i]); w != nil {
			plan.PushedWhere = w.String()
		}
		out.Tables = append(out.Tables, plan)
	}
	ad := engine.NewAdaptive(p, engine.Options{}, "")
	ad.Selectivity = p.StatsSelectivity
	out.Plan, err = ad.Plan(stmt)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatQueryTrace renders a completed query's span tree — rounds,
// remote executions, and rpc hops with wall-clock and virtual time side
// by side. It returns "" when the query ran untraced (telemetry
// disabled or the result predates tracing).
func FormatQueryTrace(qr *engine.QueryResult) string {
	if qr == nil || qr.Trace == nil {
		return ""
	}
	return qr.Trace.Render()
}

// String renders the explanation for humans.
func (e *Explanation) String() string {
	var sb strings.Builder
	for _, t := range e.Tables {
		fmt.Fprintf(&sb, "table %-12s via %-6s index -> %d peer(s)", t.Table, t.IndexKind, len(t.Peers))
		if t.Selectivity < 1 {
			fmt.Fprintf(&sb, ", est. selectivity %.3f", t.Selectivity)
		}
		if t.PushedWhere != "" {
			fmt.Fprintf(&sb, "\n  pushdown: %s", t.PushedWhere)
		}
		fmt.Fprintf(&sb, "\n  columns:  %s\n", strings.Join(t.Columns, ", "))
	}
	if e.Plan != nil {
		fmt.Fprintf(&sb, "planner: engine=%s", e.Plan.Engine)
		if len(e.Plan.Levels) > 0 {
			fmt.Fprintf(&sb, " CBP=%.4g CMR=%.4g, %d graph levels", e.Plan.CBP, e.Plan.CMR, len(e.Plan.Levels))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
