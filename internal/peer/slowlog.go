package peer

import (
	"sync"
	"time"

	"bestpeer/internal/pnet"
	"bestpeer/internal/telemetry"
)

// Slow-query log: any Peer.Query whose wall-clock time exceeds the
// threshold captures its rendered trace tree into a bounded ring
// buffer. The peer.slowlog verb (and bpsql's .slowlog) retrieves the
// entries, so a stalled round is inspectable after the fact without
// having had -trace on.

// MsgSlowLog retrieves a peer's slow-query entries.
const MsgSlowLog = "peer.slowlog"

// DefaultSlowQueryThreshold is the capture threshold until
// SetSlowQueryThreshold overrides it.
const DefaultSlowQueryThreshold = 250 * time.Millisecond

// slowLogCapacity bounds the ring buffer.
const slowLogCapacity = 64

// SlowQueryEntry is one captured slow query. Trace holds the rendered
// span tree (already a string so entries ship over pnet without
// carrying live trace structures).
type SlowQueryEntry struct {
	At            time.Time
	Peer          string
	SQL           string
	User          string
	Engine        string
	Wall          time.Duration
	VTime         time.Duration
	Peers         int
	Resubmissions int
	Err           string
	Trace         string
	// OpenSpans lists spans still unfinished when the entry was captured
	// (after Query returned — so anything here is a span leak).
	OpenSpans []string
	// TraceID links the entry to the latency histogram's tail exemplars:
	// a p99 overrun's exemplar trace ID finds its slow-log entry here.
	TraceID uint64
	// Heat attribution: the tables the statement touched and — when a
	// stats-domain column was bounded — the BATON key range it hit, so a
	// slow query names the hot range it sat on.
	Tables       []string
	KeyLo, KeyHi float64
	HasKeyRange  bool
}

// slowLog is the bounded ring holding the most recent entries.
type slowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	entries   []SlowQueryEntry
	next      int
	wrapped   bool
}

func newSlowLog(threshold time.Duration) *slowLog {
	return &slowLog{threshold: threshold, entries: make([]SlowQueryEntry, slowLogCapacity)}
}

func (l *slowLog) setThreshold(d time.Duration) {
	l.mu.Lock()
	l.threshold = d
	l.mu.Unlock()
}

func (l *slowLog) maybeCapture(peer, sql, user string, wall time.Duration, res *queryOutcome, err error, root *telemetry.Span) {
	if l == nil {
		return
	}
	l.mu.Lock()
	threshold := l.threshold
	l.mu.Unlock()
	if threshold <= 0 || wall < threshold {
		return
	}
	e := SlowQueryEntry{At: time.Now(), Peer: peer, SQL: sql, User: user, Wall: wall}
	if res != nil {
		e.Engine = res.engine
		e.VTime = res.vtime
		e.Peers = res.peers
		e.Resubmissions = res.resubmissions
		e.Tables = res.tables
		e.KeyLo, e.KeyHi = res.keyLo, res.keyHi
		e.HasKeyRange = res.hasKeyRange
	}
	e.TraceID = root.Context().TraceID
	if err != nil {
		e.Err = err.Error()
	}
	if tr := root.Trace(); tr != nil {
		e.Trace = tr.Render()
		e.OpenSpans = tr.OpenSpans()
	}
	l.mu.Lock()
	l.entries[l.next] = e
	l.next = (l.next + 1) % len(l.entries)
	if l.next == 0 {
		l.wrapped = true
	}
	l.mu.Unlock()
}

// list returns the captured entries oldest-first.
func (l *slowLog) list() []SlowQueryEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []SlowQueryEntry
	if l.wrapped {
		out = append(out, l.entries[l.next:]...)
	}
	out = append(out, l.entries[:l.next]...)
	return out
}

// SetSlowQueryThreshold sets the wall-time capture threshold (0 or
// negative disables capture).
func (p *Peer) SetSlowQueryThreshold(d time.Duration) {
	if p.slow != nil {
		p.slow.setThreshold(d)
	}
}

// SlowQueries returns this peer's captured slow queries, oldest first.
func (p *Peer) SlowQueries() []SlowQueryEntry {
	if p.slow == nil {
		return nil
	}
	return p.slow.list()
}

// FetchSlowLog retrieves another peer's slow-query log over the verb
// surface (target may be this peer's own ID; the call still goes
// through pnet like any other verb).
func (p *Peer) FetchSlowLog(target string) ([]SlowQueryEntry, error) {
	reply, err := p.ep.Call(target, MsgSlowLog, nil, 8)
	if err != nil {
		return nil, err
	}
	entries, _ := reply.Payload.([]SlowQueryEntry)
	return entries, nil
}

func (p *Peer) handleSlowLog(pnet.Message) (pnet.Message, error) {
	entries := p.SlowQueries()
	var size int64
	for _, e := range entries {
		size += int64(len(e.SQL) + len(e.Trace) + 64)
	}
	return pnet.Message{Payload: entries, Size: size}, nil
}
