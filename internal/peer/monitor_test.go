package peer

import (
	"strings"
	"testing"
	"time"

	"bestpeer/internal/engine"
)

// TestSlowLogCapturesAndServes pins the slow-query log: a query over
// the threshold lands in the ring with its rendered trace and no open
// spans, and another peer can fetch the log over the verb surface.
func TestSlowLogCapturesAndServes(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	peers[0].SetSlowQueryThreshold(time.Nanosecond)
	if _, err := peers[0].Query(`SELECT COUNT(*) FROM orders`, "", StrategyBasic, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	entries := peers[0].SlowQueries()
	if len(entries) != 1 {
		t.Fatalf("slowlog entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.SQL != `SELECT COUNT(*) FROM orders` || e.Peer != peers[0].ID() {
		t.Errorf("entry = %+v", e)
	}
	if e.Engine == "" || e.Wall <= 0 {
		t.Errorf("entry missing outcome: engine=%q wall=%v", e.Engine, e.Wall)
	}
	if !strings.Contains(e.Trace, "query") || !strings.Contains(e.Trace, "exec-subquery") {
		t.Errorf("captured trace incomplete:\n%s", e.Trace)
	}
	if len(e.OpenSpans) != 0 {
		t.Errorf("span leak on success path: %v", e.OpenSpans)
	}

	// Under the default 250ms threshold nothing this small is captured.
	peers[1].SetSlowQueryThreshold(DefaultSlowQueryThreshold)
	if _, err := peers[1].Query(`SELECT COUNT(*) FROM orders`, "", StrategyBasic, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := peers[1].SlowQueries(); len(got) != 0 {
		t.Errorf("fast query captured: %d entries", len(got))
	}

	// Remote retrieval over peer.slowlog.
	fetched, err := peers[1].FetchSlowLog(peers[0].ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(fetched) != 1 || fetched[0].SQL != e.SQL {
		t.Errorf("fetched = %+v", fetched)
	}
}

// TestNoSpanLeakThroughOutage is the regression test for span handling
// on RPC error paths: a query whose data scope goes dark mid-plan must
// fail cleanly AND leave no span open in its trace.
func TestNoSpanLeakThroughOutage(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 3, 0.002)
	peers[0].SetSlowQueryThreshold(time.Nanosecond)

	// The bootstrap still lists peer-02 online (no fail-over has run), so
	// the consistency gate passes and the remote call itself fails.
	env.Net.SetDown("peer-02", true)
	defer env.Net.SetDown("peer-02", false)

	if _, err := peers[0].Query(`SELECT COUNT(*) FROM lineitem`, "", StrategyBasic, engine.Options{}); err == nil {
		t.Fatal("query through outage succeeded")
	}
	entries := peers[0].SlowQueries()
	if len(entries) != 1 {
		t.Fatalf("failed query not captured: %d entries", len(entries))
	}
	e := entries[0]
	if e.Err == "" {
		t.Error("captured entry has no error")
	}
	if len(e.OpenSpans) != 0 {
		t.Errorf("spans leaked through the outage: %v\ntrace:\n%s", e.OpenSpans, e.Trace)
	}
}

// TestReporterDeltaFlow drives the reporter → collector pipeline over
// the real verb: deltas accumulate at the bootstrap, a failed push's
// activity is carried by the next report instead of being lost, and the
// sender-side RPC counters land in other peers' reports.
func TestReporterDeltaFlow(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)

	if _, err := peers[0].Query(`SELECT COUNT(*) FROM orders`, "", StrategyBasic, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if err := p.ReportTelemetry(); err != nil {
			t.Fatal(err)
		}
	}
	c := env.Bootstrap.Collector()
	h, ok := c.Health(peers[0].ID())
	if !ok {
		t.Fatal("no health after first report")
	}
	if h.Reports != 1 || h.RowsScanned == 0 {
		t.Errorf("health = %+v", h)
	}

	// Bootstrap goes dark: the push fails, but the baseline must not
	// advance — the next successful report carries the missed activity.
	env.Net.SetDown("bootstrap", true)
	if _, err := peers[0].Query(`SELECT COUNT(*) FROM orders`, "", StrategyBasic, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := peers[0].ReportTelemetry(); err == nil {
		t.Fatal("report to downed bootstrap succeeded")
	}
	env.Net.SetDown("bootstrap", false)
	if err := peers[0].ReportTelemetry(); err != nil {
		t.Fatal(err)
	}

	text := c.ClusterText()
	if !strings.Contains(text, `peer_queries_total{peer="peer-00"} 2`) {
		t.Errorf("delta lost across failed push:\n%s", text)
	}
	// The distributed COUNT fanned out to peer-01, so peer-00's report
	// carries sender-side RPC observations about it.
	h1, ok := c.Health(peers[1].ID())
	if !ok {
		t.Fatal("no health for peer-01")
	}
	if h1.RPCCalls == 0 {
		t.Error("no sender-side RPC observations about peer-01")
	}
	if h1.RPCFailureRate != 0 || h1.Score != 1 {
		t.Errorf("healthy peer penalized: %+v", h1)
	}
}

// TestReporterLoop exercises the background loop end-to-end.
func TestReporterLoop(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 1, 0.002)
	stop := peers[0].StartTelemetryReporter(2 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if h, ok := env.Bootstrap.Collector().Health(peers[0].ID()); ok && h.Reports >= 2 {
			stop()
			stop() // idempotent
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("reporter loop produced no reports")
}
