package peer

import (
	"fmt"
	"testing"

	"bestpeer/internal/tpch"
)

// probeEnvPeers joins n peers holding TPC-H partitions with NO indexes
// published, so Locate must fall back to probing every participant.
func probeEnvPeers(t *testing.T, n int) (Env, []*Peer) {
	t.Helper()
	env := testEnv(t)
	peers := make([]*Peer, n)
	for i := range peers {
		p, err := Join(fmt.Sprintf("peer-%02d", i), env)
		if err != nil {
			t.Fatal(err)
		}
		sc := tpch.Scale{ScaleFactor: 0.002, Peer: i, NumPeers: n, NationKey: -1}
		if err := tpch.Generate(p.DB(), sc); err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	return env, peers
}

// TestProbeParticipantsSkipsUnreachablePeers: a participant that crashed
// between the bootstrap's online check and the probe call is skipped —
// the locate degrades to the answering peers instead of aborting.
func TestProbeParticipantsSkipsUnreachablePeers(t *testing.T) {
	env, peers := probeEnvPeers(t, 3)
	// Down at the transport only: the bootstrap still believes the peer
	// is online, so the probe is attempted and fails.
	env.Net.SetDown("peer-02", true)
	loc, err := peers[0].Locate(tpch.LineItem, nil, nil)
	if err != nil {
		t.Fatalf("locate should degrade gracefully, got %v", err)
	}
	if len(loc.Peers) != 2 {
		t.Fatalf("located %v, want the two reachable owners", loc.Peers)
	}
	for _, id := range loc.Peers {
		if id == "peer-02" {
			t.Fatalf("down peer listed as data owner: %v", loc.Peers)
		}
	}
}

// TestProbeParticipantsErrorsWhenNoPeerAnswers: when every probe fails
// the locate must surface an error rather than silently reporting the
// table as absent.
func TestProbeParticipantsErrorsWhenNoPeerAnswers(t *testing.T) {
	env, peers := probeEnvPeers(t, 3)
	for i := 0; i < 3; i++ {
		env.Net.SetDown(fmt.Sprintf("peer-%02d", i), true)
	}
	if _, err := peers[0].Locate(tpch.LineItem, nil, nil); err == nil {
		t.Fatal("expected an error when no participant answered any probe")
	}
}
