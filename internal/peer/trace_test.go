package peer

import (
	"strings"
	"testing"

	"bestpeer/internal/engine"
	"bestpeer/internal/telemetry"
)

// TestQueryTracePropagation pins the cross-peer trace chain: a query
// submitted at one peer produces a single trace whose remote execution
// spans (opened at the data owners) nest under the submitting peer's
// root span via the rpc hops.
func TestQueryTracePropagation(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	res, err := peers[0].Query(`SELECT COUNT(*) FROM orders`, "", StrategyBasic, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("query result carries no trace")
	}
	spans := res.Trace.Spans()
	byID := make(map[uint64]telemetry.SpanInfo, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	root := spans[0]
	if root.Name != "query" {
		t.Fatalf("first span = %q, want query root", root.Name)
	}

	// Every remote execution span must chain up to the root through an
	// rpc span, proving the context crossed the message substrate.
	var remote int
	for _, s := range spans {
		if !strings.HasPrefix(s.Name, "exec-") {
			continue
		}
		remote++
		parent, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("remote span %q has non-resident parent %d", s.Name, s.Parent)
		}
		if !strings.HasPrefix(parent.Name, "rpc:") {
			t.Errorf("remote span %q parent = %q, want an rpc span", s.Name, parent.Name)
		}
		// Walk to the root.
		cur := parent
		for cur.Parent != 0 {
			cur = byID[cur.Parent]
		}
		if cur.ID != root.ID {
			t.Errorf("remote span %q does not chain to the query root", s.Name)
		}
	}
	// COUNT(*) over one table at two data owners: the partial-agg round
	// fans out to both peers, so both remote executions must appear.
	if remote < 2 {
		t.Errorf("trace has %d remote execution spans, want >= 2", remote)
	}

	out := FormatQueryTrace(res)
	for _, want := range []string{"query", "rpc:peer.subquery", "exec-subquery", "wall=", "vtime="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, out)
		}
	}
}

// TestQueryTraceParallelStrategy covers the replicated-join path across
// four peers: join-level spans appear and jointask executions nest
// under the caller's trace.
func TestQueryTraceParallelStrategy(t *testing.T) {
	env := testEnv(t)
	peers := joinLoaded(t, env, 4, 0.002)
	res, err := peers[0].Query(
		`SELECT o_orderpriority, COUNT(*) FROM orders, lineitem WHERE l_orderkey = o_orderkey GROUP BY o_orderpriority`,
		"", StrategyParallel, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("query result carries no trace")
	}
	var joinLevel, jointask bool
	for _, s := range res.Trace.Spans() {
		if strings.HasPrefix(s.Name, "join-level-") {
			joinLevel = true
		}
		if s.Name == "exec-jointask" {
			jointask = true
		}
	}
	if !joinLevel {
		t.Error("trace has no join-level span")
	}
	if !jointask {
		t.Error("trace has no remote jointask execution span")
	}

	// The per-destination pnet counters saw this query's traffic.
	var counted int
	for _, p := range peers[1:] {
		if telemetry.Default.Counter("pnet_calls_total", telemetry.L("peer", p.ID())).Value() > 0 {
			counted++
		}
	}
	if counted == 0 {
		t.Error("no pnet per-destination counters recorded for data peers")
	}
}

// TestQueryUntracedWhenDisabled pins the kill switch: with telemetry
// off, queries run with no trace and no span overhead.
func TestQueryUntracedWhenDisabled(t *testing.T) {
	telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(true)
	env := testEnv(t)
	peers := joinLoaded(t, env, 2, 0.002)
	res, err := peers[0].Query(`SELECT COUNT(*) FROM orders`, "", StrategyBasic, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("disabled telemetry still produced a trace")
	}
	if FormatQueryTrace(res) != "" {
		t.Error("untraced result rendered non-empty trace")
	}
}
