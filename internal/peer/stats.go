package peer

import (
	"fmt"
	"math"
	"strings"

	"bestpeer/internal/histogram"
	"bestpeer/internal/indexer"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// Statistics publication (paper §5.1): each normal peer builds
// multi-dimensional MHIST histograms over its partition of a global
// table, maps the buckets to one-dimensional keys with iDistance, and
// publishes them into BATON. Query planners on any peer then fetch the
// buckets overlapping a query region to estimate sizes and
// selectivities for the cost models of §5.2–§5.5.
//
// The iDistance mapping must be identical network-wide for publishers
// and readers to agree on key placement, so its parameters — the
// histogram columns and their value domain — are part of the corporate
// network's metadata at the bootstrap peer (StatsDomain).

// StatsDomain names the histogram columns of one global table and their
// network-agreed value domain.
type StatsDomain struct {
	Columns []string
	Lo, Hi  []float64
}

// Validate checks structural consistency.
func (d StatsDomain) Validate() error {
	if len(d.Columns) == 0 || len(d.Columns) != len(d.Lo) || len(d.Lo) != len(d.Hi) {
		return fmt.Errorf("peer: malformed stats domain %+v", d)
	}
	for i := range d.Lo {
		if !(d.Lo[i] < d.Hi[i]) {
			return fmt.Errorf("peer: empty stats domain on %s", d.Columns[i])
		}
	}
	return nil
}

// mapping builds the network-agreed iDistance mapping for the domain.
func (d StatsDomain) mapping() (*histogram.IDistance, error) {
	return histogram.GridRefs(d.Lo, d.Hi)
}

// PublishStatistics builds the MHIST histogram of this peer's partition
// of a table over the network's stats domain and publishes its buckets
// into the overlay (replacing any previous publication by this peer).
func (p *Peer) PublishStatistics(table string, maxBuckets int) error {
	rec, ok := p.env.Bootstrap.StatsDomainRec(table)
	if !ok {
		return fmt.Errorf("peer: no stats domain registered for %s", table)
	}
	domain := StatsDomain(rec)
	if err := domain.Validate(); err != nil {
		return err
	}
	t := p.db.Table(table)
	if t == nil {
		return fmt.Errorf("peer %s: no local table %s", p.id, table)
	}
	cols := make([]int, len(domain.Columns))
	for i, c := range domain.Columns {
		ci := t.Schema().ColumnIndex(c)
		if ci < 0 {
			return fmt.Errorf("peer %s: table %s has no column %s", p.id, table, c)
		}
		cols[i] = ci
	}
	var points [][]float64
	t.Scan(func(_ int, row sqlval.Row) bool {
		pt := make([]float64, len(cols))
		for i, ci := range cols {
			v := row[ci]
			if v.IsNull() {
				return true // skip rows with NULL histogram dimensions
			}
			pt[i] = v.AsFloat()
		}
		points = append(points, pt)
		return true
	})
	h, err := histogram.Build(table, domain.Columns, points, maxBuckets)
	if err != nil {
		return err
	}
	m, err := domain.mapping()
	if err != nil {
		return err
	}
	return histogram.Publish(p.node, p.id, h, m)
}

// StatsSelectivity estimates the fraction of a table's tuples that
// satisfy the conjuncts, from the published histograms: EC(region) /
// ES. It returns 1 (no reduction) when no statistics apply.
func (p *Peer) StatsSelectivity(table string, conjuncts []sqldb.Expr) float64 {
	rec, ok := p.env.Bootstrap.StatsDomainRec(table)
	if !ok {
		return 1
	}
	domain := StatsDomain(rec)
	if domain.Validate() != nil {
		return 1
	}
	intervals := indexer.ExtractIntervals(conjuncts)
	if len(intervals) == 0 {
		return 1
	}
	region := make([]histogram.Interval1, len(domain.Columns))
	restricted := false
	for i, c := range domain.Columns {
		region[i] = histogram.FullInterval()
		iv, ok := intervals[strings.ToLower(c)]
		if !ok {
			continue
		}
		if !iv.Lo.IsNull() {
			region[i].Lo = iv.Lo.AsFloat()
			restricted = true
		}
		if !iv.Hi.IsNull() {
			region[i].Hi = iv.Hi.AsFloat()
			restricted = true
		}
	}
	if !restricted {
		return 1
	}
	m, err := domain.mapping()
	if err != nil {
		return 1
	}
	buckets, err := histogram.FetchForRegion(p.node, table, m, region)
	if err != nil {
		return 1
	}
	// Totals come from the published table-index entries (partition row
	// counts), avoiding a full-domain histogram fetch.
	loc, err := p.lc.PeersForTable(table)
	if err != nil {
		return 1
	}
	var total float64
	for _, e := range loc.Entries {
		total += float64(e.Rows)
	}
	if total <= 0 {
		return 1
	}
	regional := (&histogram.Histogram{Buckets: buckets}).EstimateRegion(region)
	sel := regional / total
	if math.IsNaN(sel) || sel < 0 {
		return 1
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}
