// Package peer implements the BestPeer++ normal peer (paper §4): the
// instance a participating business runs. It assembles the five
// components of Fig. 2 — schema mapping, data loader, data indexer,
// access control, and the query executor — over the shared substrates:
// the local database (internal/sqldb, standing in for MySQL), the BATON
// overlay node, the pnet messaging endpoint, and the bootstrap peer's
// metadata services.
package peer

import (
	"crypto/ed25519"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bestpeer/internal/accesscontrol"
	"bestpeer/internal/baton"
	"bestpeer/internal/bootstrap"
	"bestpeer/internal/cloud"
	"bestpeer/internal/erp"
	"bestpeer/internal/indexer"
	"bestpeer/internal/loader"
	"bestpeer/internal/mapreduce"
	"bestpeer/internal/pnet"
	"bestpeer/internal/schemamap"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/telemetry"
	"bestpeer/internal/vtime"
)

// Message types served by a normal peer.
const (
	MsgSubQuery   = "peer.subquery"
	MsgJoinTask   = "peer.jointask"
	MsgMembership = "peer.membership.changed"
	MsgUserNew    = "peer.user.created"
	MsgHasTable   = "peer.hastable"
	MsgTelemetry  = "peer.telemetry"
	// MsgTelemetrySnapshot returns the peer's private registry as a
	// serialized telemetry.Report (full snapshot, not a delta).
	MsgTelemetrySnapshot = "peer.telemetry.snapshot"
)

// Env is the shared environment a peer joins: the message network, the
// bootstrap peer, the overlay coordinator, the cloud provider, and the
// optionally mounted MapReduce cluster.
type Env struct {
	Net       *pnet.Network
	Bootstrap *bootstrap.Peer
	Overlay   *baton.Overlay
	Provider  *cloud.SimProvider
	MR        *mapreduce.Cluster
	Rates     vtime.Rates
	// Clock is the network's logical timestamp source for Definition 2
	// query semantics; nil disables snapshot checking.
	Clock *pnet.LogicalClock
}

// Peer is one normal peer.
type Peer struct {
	id  string
	env Env

	ep   *pnet.Endpoint
	node *baton.Node
	db   *sqldb.DB
	ix   *indexer.Indexer
	lc   *indexer.Locator

	priv ed25519.PrivateKey
	info bootstrap.NetworkInfo

	// snapshotTS is the logical time of the database's current snapshot
	// (Definition 2); loader refreshes advance it.
	snapshotTS atomic.Uint64

	mu      sync.RWMutex
	schemas map[string]*sqldb.Schema
	acl     *accesscontrol.Registry
	load    *loader.Loader

	// Monitoring plane: the peer's private metrics registry, the
	// slow-query ring, and the reporter's delta baseline.
	pm   *peerMetrics
	slow *slowLog
	rep  reporterState

	// advisory is the bootstrap's latest heat advisory: the peers whose
	// overlay nodes are serving a hot index range. Query fan-out rounds
	// dispatch to them last; an empty advisory keeps the natural order.
	advisory atomic.Pointer[[]string]
}

// Join launches a cloud instance for the peer, admits it to the
// corporate network through the bootstrap peer, and attaches it to the
// overlay (paper §3.1). The returned peer is ready to load and share
// data.
func Join(id string, env Env) (*Peer, error) {
	if _, err := env.Provider.Launch(id, cloud.M1Small); err != nil {
		return nil, fmt.Errorf("peer: launching instance: %w", err)
	}
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, err
	}
	p := &Peer{
		id:      id,
		env:     env,
		priv:    priv,
		db:      sqldb.NewDB(),
		schemas: make(map[string]*sqldb.Schema),
		acl:     accesscontrol.NewRegistry(),
	}
	p.ep = env.Net.Join(id)
	p.node = baton.NewNode(p.ep)
	p.ix = indexer.New(p.node, id)
	p.lc = indexer.NewLocator(p.node)
	p.registerHandlers()
	p.initTelemetry()

	info, err := env.Bootstrap.Join(id, id, pub)
	if err != nil {
		return nil, err
	}
	p.applyNetworkInfo(info)
	if err := env.Overlay.AddNode(p.node); err != nil {
		return nil, err
	}
	return p, nil
}

// applyNetworkInfo installs the metadata the bootstrap handed over:
// global schema, role definitions, and the user directory.
func (p *Peer) applyNetworkInfo(info bootstrap.NetworkInfo) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.info = info
	for _, s := range info.GlobalSchema {
		p.schemas[s.Table] = s
	}
	for _, name := range info.Roles {
		if r := p.env.Bootstrap.Roles().Role(name); r != nil {
			p.acl.DefineRole(r)
		}
	}
	for user, role := range p.env.Bootstrap.Users() {
		_ = p.acl.AssignUser(user, role)
	}
}

// registerHandlers wires the peer's message handlers. Pure reads and
// pure compute (subquery fetch, join tasks, probes, telemetry pulls,
// cache invalidation) register idempotent so the hardened transport
// may re-send them after transport failures; directory mutations
// (user creation) stay at-most-once.
func (p *Peer) registerHandlers() {
	p.ep.HandleIdempotent(MsgSubQuery, p.handleSubQuery)
	p.ep.HandleIdempotent(MsgJoinTask, p.handleJoinTask)
	p.ep.HandleIdempotent(MsgMembership, func(pnet.Message) (pnet.Message, error) {
		p.lc.Invalidate()
		return pnet.Message{}, nil
	})
	p.ep.HandleIdempotent(MsgHasTable, func(msg pnet.Message) (pnet.Message, error) {
		table := msg.Payload.(string)
		t := p.db.Table(table)
		entry := indexer.TableEntry{Table: table, Peer: p.id}
		if t != nil {
			entry.Rows = int64(t.NumRows())
			entry.Bytes = t.DataBytes()
		}
		return pnet.Message{Payload: entry, Size: 32}, nil
	})
	p.ep.Handle(MsgUserNew, func(msg pnet.Message) (pnet.Message, error) {
		pair := msg.Payload.([2]string)
		p.mu.Lock()
		defer p.mu.Unlock()
		_ = p.acl.AssignUser(pair[0], pair[1])
		return pnet.Message{}, nil
	})
	p.ep.HandleIdempotent(MsgTelemetry, func(pnet.Message) (pnet.Message, error) {
		// The exposition text of the process-wide registry, served over
		// the same substrate every other verb uses (and relayed to other
		// processes by the bpremote TCP surface).
		text := telemetry.Default.Text()
		return pnet.Message{Payload: text, Size: int64(len(text))}, nil
	})
	p.ep.HandleIdempotent(MsgTelemetrySnapshot, func(pnet.Message) (pnet.Message, error) {
		// The peer's private registry as a full (non-delta) serialized
		// snapshot — the bpremote -all merge surface.
		rep := telemetry.Report{Peer: p.id}
		if p.pm != nil {
			rep.Delta = p.pm.reg.Export()
		}
		return pnet.Message{Payload: rep, Size: int64(64 + 48*len(rep.Delta.Points))}, nil
	})
	p.ep.HandleIdempotent(bootstrap.MsgHeatAdvisory, func(msg pnet.Message) (pnet.Message, error) {
		hot, _ := msg.Payload.([]string)
		p.advisory.Store(&hot)
		return pnet.Message{}, nil
	})
	p.ep.HandleIdempotent(MsgSlowLog, p.handleSlowLog)
	p.ep.HandleIdempotent(MsgExplain, p.handleExplain)
	// The query-serving verbs are pure compute over the in-memory
	// database and the membership/probe verbs are pure reads: none of
	// them can wait on anything outside this transport, so in-process
	// delivery runs them on the caller's goroutine instead of paying a
	// guard goroutine + timer per call (the deadline exists to unwedge
	// callers from handlers that block; abandoning compute would not
	// stop it anyway). Over TCP the connection deadline still applies.
	p.ep.Network().MarkInline(MsgSubQuery, MsgJoinTask, MsgMembership, MsgHasTable)
}

// ID returns the peer's network identity.
func (p *Peer) ID() string { return p.id }

// DB exposes the peer's local database (data loading, tests, tools).
func (p *Peer) DB() *sqldb.DB { return p.db }

// Node returns the peer's overlay node.
func (p *Peer) Node() *baton.Node { return p.node }

// HotPeers returns the bootstrap's current heat advisory: peers to
// dispatch to last in fan-out rounds. Nil/empty when no advisory is in
// effect.
func (p *Peer) HotPeers() []string {
	if hot := p.advisory.Load(); hot != nil {
		return *hot
	}
	return nil
}

// ServeCounts reports how many lookups this peer's overlay node served
// from its own range vs from hosted hot-range replicas.
func (p *Peer) ServeCounts() (local, replica int64) { return p.node.ServeCounts() }

// Locator returns the peer's index locator.
func (p *Peer) Locator() *indexer.Locator { return p.lc }

// ACL returns the peer's local access-control registry. The local
// administrator defines derived roles and assigns users here.
func (p *Peer) ACL() *accesscontrol.Registry { return p.acl }

// Certificate returns the peer's bootstrap-issued certificate.
func (p *Peer) Certificate() bootstrap.Certificate { return p.info.Certificate }

// AttachProduction connects a production system through a schema
// mapping (§4.1, §4.2). Subsequent SyncData calls extract snapshots and
// apply deltas.
func (p *Peer) AttachProduction(sys *erp.System, mapping *schemamap.Mapping) error {
	l, err := loader.New(sys, mapping, p.db, p.GlobalSchema)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.load = l
	p.mu.Unlock()
	return nil
}

// SyncData runs one loader pass (initial load or refresh) and advances
// the database snapshot's timestamp (Definition 2).
func (p *Peer) SyncData() (loader.Delta, error) {
	p.mu.RLock()
	l := p.load
	p.mu.RUnlock()
	if l == nil {
		return loader.Delta{}, fmt.Errorf("peer %s: no production system attached", p.id)
	}
	d, err := l.Run()
	if err != nil {
		return d, err
	}
	p.MarkRefreshed()
	return d, nil
}

// MarkRefreshed stamps the database with a fresh snapshot timestamp.
// The loader calls it after every pass; tools loading data directly
// (generators, restores) call it explicitly.
func (p *Peer) MarkRefreshed() {
	if p.env.Clock != nil {
		p.snapshotTS.Store(p.env.Clock.Tick())
	}
}

// SnapshotTS returns the database snapshot's logical timestamp.
func (p *Peer) SnapshotTS() uint64 { return p.snapshotTS.Load() }

// GlobalSchema resolves a global table's schema.
func (p *Peer) GlobalSchema(table string) *sqldb.Schema {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for name, s := range p.schemas {
		if name == table {
			return s
		}
	}
	// Case-insensitive fallback.
	for _, s := range p.schemas {
		if equalFold(s.Table, table) {
			return s
		}
	}
	return nil
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// PublishIndexes publishes the peer's index entries for every local
// table: I_T and I_C always, and I_D for the listed range columns
// (§4.3).
func (p *Peer) PublishIndexes(rangeColumns map[string][]string) error {
	return p.ix.PublishDB(p.db, rangeColumns)
}

// Backup snapshots the peer's database to the cloud provider's backup
// store (the paper's asynchronous EBS backup, §2.1).
func (p *Peer) Backup() error {
	return p.env.Provider.Backup(p.id, cloud.Snapshot{Data: DumpDB(p.db)})
}

// ReportHealth publishes a CloudWatch-style health sample for the
// bootstrap's monitoring daemon.
func (p *Peer) ReportHealth(cpu float64, storageGB float64) {
	p.env.Provider.ReportMetrics(p.id, cloud.Metrics{
		CPUUtilization: cpu, StorageUsedGB: storageGB, Healthy: true,
	})
}

// Leave departs gracefully: indexes are withdrawn, the overlay slot is
// handed over, and the bootstrap blacklists the peer (§3.1).
func (p *Peer) Leave() error {
	tables := p.db.TableNames()
	colSet := map[string]bool{}
	for _, t := range tables {
		for _, c := range p.db.Table(t).Schema().Columns {
			colSet[c.Name] = true
		}
	}
	var cols []string
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	if err := p.ix.UnpublishAll(tables, cols); err != nil {
		return err
	}
	if err := p.env.Overlay.RemoveNode(p.id); err != nil {
		return err
	}
	if err := p.env.Bootstrap.Leave(p.id); err != nil {
		return err
	}
	p.env.Net.Leave(p.id)
	return nil
}

// DBDump is a serializable snapshot of a database: schemas plus rows,
// the payload of cloud backups.
type DBDump struct {
	Schemas []*sqldb.Schema
	Rows    map[string][]sqlval.Row
	Indexes map[string][]string // secondary indexes per table
}

// DumpDB snapshots a database.
func DumpDB(db *sqldb.DB) *DBDump {
	d := &DBDump{Rows: make(map[string][]sqlval.Row), Indexes: make(map[string][]string)}
	for _, name := range db.TableNames() {
		t := db.Table(name)
		d.Schemas = append(d.Schemas, t.Schema())
		var rows []sqlval.Row
		t.Scan(func(_ int, row sqlval.Row) bool {
			rows = append(rows, row.Clone())
			return true
		})
		d.Rows[name] = rows
		for _, idx := range t.Indexes() {
			if idx.Name == "primary" {
				continue
			}
			d.Indexes[name] = append(d.Indexes[name], idx.Column)
		}
	}
	return d
}

// RestoreDB rebuilds a database from a dump.
func RestoreDB(d *DBDump) (*sqldb.DB, error) {
	db := sqldb.NewDB()
	for _, s := range d.Schemas {
		t, err := db.CreateTable(s)
		if err != nil {
			return nil, err
		}
		for _, row := range d.Rows[s.Table] {
			if _, err := t.Insert(row); err != nil {
				return nil, err
			}
		}
		for i, col := range d.Indexes[s.Table] {
			if err := t.CreateIndex(fmt.Sprintf("idx_restored_%d", i), col, false); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// Recover builds a replacement peer for a crashed one: a fresh instance
// is launched, the database restored from the latest cloud backup, the
// overlay position taken over (restoring overlay items from the
// adjacent replica), and indexes republished under the new identity.
func Recover(failedID, newID string, env Env, rangeColumns map[string][]string) (*Peer, ed25519.PublicKey, error) {
	snap, ok := env.Provider.Restore(failedID)
	if !ok {
		return nil, nil, fmt.Errorf("peer: no backup for %s", failedID)
	}
	dump, ok := snap.Data.(*DBDump)
	if !ok {
		return nil, nil, fmt.Errorf("peer: backup of %s has unexpected payload %T", failedID, snap.Data)
	}
	db, err := RestoreDB(dump)
	if err != nil {
		return nil, nil, err
	}
	if _, err := env.Provider.Launch(newID, cloud.M1Small); err != nil {
		return nil, nil, err
	}
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, nil, err
	}
	p := &Peer{
		id:      newID,
		env:     env,
		priv:    priv,
		db:      db,
		schemas: make(map[string]*sqldb.Schema),
		acl:     accesscontrol.NewRegistry(),
	}
	p.ep = env.Net.Join(newID)
	p.node = baton.NewNode(p.ep)
	p.ix = indexer.New(p.node, newID)
	p.lc = indexer.NewLocator(p.node)
	p.registerHandlers()
	p.initTelemetry()
	if err := env.Overlay.Recover(failedID, p.node); err != nil {
		return nil, nil, err
	}
	// The failed peer's index entries name it as owner; withdraw them
	// and republish under the new identity.
	old := indexer.New(p.node, failedID)
	tables := db.TableNames()
	colSet := map[string]bool{}
	for _, t := range tables {
		for _, c := range db.Table(t).Schema().Columns {
			colSet[c.Name] = true
		}
	}
	var cols []string
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	if err := old.UnpublishAll(tables, cols); err != nil {
		return nil, nil, err
	}
	if err := p.PublishIndexes(rangeColumns); err != nil {
		return nil, nil, err
	}
	// Metadata comes from the bootstrap as usual.
	for _, s := range env.Bootstrap.GlobalSchemas() {
		p.mu.Lock()
		p.schemas[s.Table] = s
		p.mu.Unlock()
	}
	for _, name := range env.Bootstrap.Roles().Roles() {
		if r := env.Bootstrap.Roles().Role(name); r != nil {
			p.acl.DefineRole(r)
		}
	}
	for user, role := range env.Bootstrap.Users() {
		_ = p.acl.AssignUser(user, role)
	}
	return p, pub, nil
}
