package hadoopdb

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
	"bestpeer/internal/tpch"
	"bestpeer/internal/vtime"
)

func testCluster(t *testing.T, workers int, sf float64) *Cluster {
	t.Helper()
	c, err := New(workers, vtime.DefaultRates())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadTPCH(sf); err != nil {
		t.Fatal(err)
	}
	return c
}

func oracle(t *testing.T, workers int, sf float64) *sqldb.DB {
	t.Helper()
	db := sqldb.NewDB()
	for i := 0; i < workers; i++ {
		sc := tpch.Scale{ScaleFactor: sf, Peer: i, NumPeers: workers, NationKey: -1}
		if err := tpch.Generate(db, sc); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func canonical(rows []sqlval.Row) []string {
	out := make([]string, 0, len(rows))
	for _, row := range rows {
		s := ""
		for i, v := range row {
			if i > 0 {
				s += "|"
			}
			if v.Numeric() || v.Kind() == sqlval.KindDate {
				s += fmt.Sprintf("%.4f", v.AsFloat())
			} else {
				s += v.String()
			}
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestQueriesMatchOracle(t *testing.T) {
	const workers = 3
	const sf = 0.003
	c := testCluster(t, workers, sf)
	db := oracle(t, workers, sf)
	for name, sql := range map[string]string{
		"Q1": tpch.Q1Default(), "Q2": tpch.Q2Default(), "Q3": tpch.Q3Default(),
		"Q4": tpch.Q4Default(), "Q5": tpch.Q5(),
	} {
		want, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s oracle: %v", name, err)
		}
		got, err := c.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, w := canonical(got.Result.Rows), canonical(want.Rows)
		if len(g) != len(w) {
			t.Fatalf("%s: %d rows, want %d", name, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s row %d: %s != %s", name, i, g[i], w[i])
			}
		}
	}
}

func TestSMSJobCounts(t *testing.T) {
	c := testCluster(t, 3, 0.002)
	cases := map[string]int{
		tpch.Q1Default(): 1, // map-only
		tpch.Q2Default(): 1,
		tpch.Q3Default(): 1,
		tpch.Q4Default(): 2, // join + aggregate (§6.1.9)
		tpch.Q5():        4, // three joins + aggregate (§6.1.10)
	}
	for sql, want := range cases {
		res, err := c.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if res.Jobs != want {
			t.Errorf("jobs for %.40q = %d, want %d", sql, res.Jobs, want)
		}
	}
}

func TestStartupDominatesShortQueries(t *testing.T) {
	c := testCluster(t, 3, 0.002)
	res, err := c.Query(tpch.Q1Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Total() < 10*time.Second {
		t.Errorf("Q1 latency %v; the ~10-15s job startup should dominate", res.Cost.Total())
	}
	if res.Cost.Startup < 10*time.Second {
		t.Errorf("startup component = %v", res.Cost.Startup)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(0, vtime.DefaultRates()); err == nil {
		t.Error("zero workers accepted")
	}
	c, err := New(2, vtime.DefaultRates())
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers() != 2 || c.WorkerDB(0) == nil {
		t.Error("accessors broken")
	}
	if _, err := c.Query("not sql"); err == nil {
		t.Error("bad SQL accepted")
	}
}
