// Package hadoopdb implements the HadoopDB baseline the paper
// benchmarks BestPeer++ against (§6.1; Abouzeid et al., VLDB 2009).
//
// HadoopDB's architecture: every worker node runs a task tracker plus a
// local PostgreSQL instance (here: internal/sqldb); an SMS planner
// compiles SQL into MapReduce jobs, pushing selections and projections
// into the local databases through the map-side DB connector; joins run
// reduce-side, one job per join level, with intermediate results in
// HDFS. Per the paper's benchmark configuration:
//
//   - the Global/Local Hasher co-partitioning is disabled (businesses do
//     not move raw data between nodes, §6.1.5), so every join shuffles;
//   - the reducer count is set manually to the worker count (the default
//     single reducer "yields poor performance", §6.1.8);
//   - HDFS runs with replication factor 3 and 256 MB blocks (§6.1.3).
package hadoopdb

import (
	"fmt"
	"sort"

	"bestpeer/internal/dfs"
	"bestpeer/internal/engine"
	"bestpeer/internal/indexer"
	"bestpeer/internal/mapreduce"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/tpch"
	"bestpeer/internal/vtime"
)

// Cluster is a running HadoopDB deployment.
type Cluster struct {
	workers map[string]*sqldb.DB
	order   []string
	schemas map[string]*sqldb.Schema
	fs      *dfs.FileSystem
	mr      *mapreduce.Cluster
	rates   vtime.Rates
}

// New provisions a HadoopDB cluster with the given worker count.
func New(workers int, rates vtime.Rates) (*Cluster, error) {
	if workers < 1 {
		return nil, fmt.Errorf("hadoopdb: need at least one worker")
	}
	c := &Cluster{
		workers: make(map[string]*sqldb.DB, workers),
		schemas: make(map[string]*sqldb.Schema),
		rates:   rates,
	}
	var datanodes []string
	for i := 0; i < workers; i++ {
		id := fmt.Sprintf("worker-%02d", i)
		c.workers[id] = sqldb.NewDB()
		c.order = append(c.order, id)
		datanodes = append(datanodes, id)
	}
	fs, err := dfs.New(dfs.DefaultConfig(datanodes))
	if err != nil {
		return nil, err
	}
	c.fs = fs
	c.mr, err = mapreduce.NewCluster(fs, workers, rates)
	if err != nil {
		return nil, err
	}
	for _, s := range tpch.Schemas(false) {
		c.schemas[s.Table] = s
	}
	return c, nil
}

// Workers returns the worker count.
func (c *Cluster) Workers() int { return len(c.order) }

// WorkerDB exposes worker i's local database.
func (c *Cluster) WorkerDB(i int) *sqldb.DB { return c.workers[c.order[i]] }

// LoadTPCH bulk-loads each worker's TPC-H partition into its local
// database with the Table 4 indexes (the paper's SQL COPY + index build,
// §6.1.5). No co-partitioning is performed.
func (c *Cluster) LoadTPCH(sf float64) error {
	for i, id := range c.order {
		sc := tpch.Scale{ScaleFactor: sf, Peer: i, NumPeers: len(c.order), NationKey: -1}
		if err := tpch.Generate(c.workers[id], sc); err != nil {
			return err
		}
	}
	return nil
}

// Result is one completed HadoopDB query.
type Result struct {
	Result *sqldb.Result
	// Cost is the query's virtual-time latency, including per-job
	// startup and shuffle pull delays.
	Cost vtime.Cost
	// Jobs is the number of MapReduce jobs the SMS planner emitted.
	Jobs int
}

// Query compiles sql with the SMS planner and runs the job chain.
func (c *Cluster) Query(sql string) (*Result, error) {
	stmt, err := sqldb.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	b := &smsBackend{c: c}
	e := &engine.MapReduce{B: b}
	qr, err := e.Execute(stmt)
	if err != nil {
		return nil, err
	}
	jobs := countJobs(qr.Cost, c.rates)
	return &Result{Result: qr.Result, Cost: qr.Cost, Jobs: jobs}, nil
}

// countJobs recovers the job count from the accumulated startup cost.
func countJobs(cost vtime.Cost, r vtime.Rates) int {
	if r.MRJobStartup <= 0 {
		return 0
	}
	// Each job charges one startup; jobs with a reduce phase add one
	// pull delay. Bound the count by startup alone.
	n := 0
	remaining := cost.Startup
	for remaining >= r.MRJobStartup {
		remaining -= r.MRJobStartup
		if remaining >= r.MRPullDelay {
			remaining -= r.MRPullDelay
		}
		n++
	}
	return n
}

// smsBackend adapts the cluster to the shared engine machinery: every
// worker hosts a partition of every table (no index layer — HadoopDB
// always scans all workers), subqueries run on the local DBs, and the
// cluster's MapReduce service executes the jobs.
type smsBackend struct {
	c *Cluster
}

func (b *smsBackend) Self() string { return "sms-client" }

func (b *smsBackend) Schema(table string) *sqldb.Schema {
	if s, ok := b.c.schemas[table]; ok {
		return s
	}
	// Fall back to any worker's local definition.
	for _, db := range b.c.workers {
		if t := db.Table(table); t != nil {
			return t.Schema()
		}
	}
	return nil
}

func (b *smsBackend) Locate(table string, _ []sqldb.Expr, _ []string) (indexer.Location, error) {
	loc := indexer.Location{Kind: indexer.KindTable}
	ids := append([]string(nil), b.c.order...)
	sort.Strings(ids)
	for _, id := range ids {
		t := b.c.workers[id].Table(table)
		if t == nil {
			continue
		}
		loc.Peers = append(loc.Peers, id)
		loc.Entries = append(loc.Entries, indexer.TableEntry{
			Table: table, Peer: id, Rows: int64(t.NumRows()), Bytes: t.DataBytes(),
		})
	}
	if len(loc.Peers) == 0 {
		loc.Kind = indexer.KindNone
	}
	return loc, nil
}

func (b *smsBackend) Gate([]string) error { return nil }

func (b *smsBackend) SubQuery(worker string, req engine.SubQueryRequest) (*sqldb.Result, error) {
	db, ok := b.c.workers[worker]
	if !ok {
		return nil, fmt.Errorf("hadoopdb: unknown worker %s", worker)
	}
	return db.ExecStmt(req.Stmt)
}

func (b *smsBackend) JoinAt(string, engine.JoinTask) (*sqldb.Result, error) {
	return nil, fmt.Errorf("hadoopdb: replicated joins are a BestPeer++ strategy")
}

func (b *smsBackend) MR() *mapreduce.Cluster { return b.c.mr }

func (b *smsBackend) QueryTimestamp() uint64 { return 0 }

func (b *smsBackend) Rates() vtime.Rates { return b.c.rates }
