package tpch

import "fmt"

// The five benchmark queries of the performance benchmark (§6.1). The
// paper prints Q1 and sketches the rest ("we implement the benchmark
// queries by ourselves since the TPC-H queries are complex and
// time-consuming queries which are not suitable for benchmarking
// corporate network applications"); these implementations match the
// described shapes: Q1 a simple selection, Q2 a simple aggregation, Q3
// a two-table join, Q4 a join plus aggregation (two MapReduce jobs for
// HadoopDB), and Q5 a multi-table join compiled into four MapReduce
// jobs.

// Q1 is the simple selection on LineItem (predicates on l_shipdate and
// l_commitdate, §6.1.6).
func Q1(shipAfter, commitBefore string) string {
	return fmt.Sprintf(`SELECT l_orderkey, l_partkey, l_quantity, l_extendedprice
FROM lineitem
WHERE l_shipdate > DATE '%s' AND l_commitdate < DATE '%s'`, shipAfter, commitBefore)
}

// Q1Default uses predicates selecting a small tail of each peer's
// partition, like the paper's ~3,000 tuples per peer.
func Q1Default() string { return Q1("1998-09-01", "1998-10-01") }

// Q2 is the simple aggregation over qualified LineItem tuples (§6.1.7).
func Q2(shipAfter string) string {
	return fmt.Sprintf(`SELECT SUM(l_extendedprice * (1 - l_discount)) AS total_price
FROM lineitem
WHERE l_shipdate > DATE '%s'`, shipAfter)
}

// Q2Default matches Q1's selectivity band.
func Q2Default() string { return Q2("1998-06-01") }

// Q3 joins LineItem with Orders under selective predicates on both
// sides (§6.1.8; both selection columns carry Table 4 indexes).
func Q3(orderAfter, shipAfter string) string {
	return fmt.Sprintf(`SELECT l.l_orderkey, o.o_orderdate, l.l_extendedprice
FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey
WHERE o.o_orderdate > DATE '%s' AND l.l_shipdate > DATE '%s'`, orderAfter, shipAfter)
}

// Q3Default selects roughly the last two months of orders.
func Q3Default() string { return Q3("1998-06-01", "1998-06-01") }

// Q4 joins PartSupp with Part and aggregates (two MapReduce jobs for
// HadoopDB's SMS planner, §6.1.9).
func Q4(maxSize int) string {
	return fmt.Sprintf(`SELECT p.p_brand, SUM(ps.ps_supplycost * ps.ps_availqty) AS value
FROM part p JOIN partsupp ps ON p.p_partkey = ps.ps_partkey
WHERE p.p_size < %d
GROUP BY p.p_brand`, maxSize)
}

// Q4Default selects the smaller ~30% of parts by size.
func Q4Default() string { return Q4(15) }

// Q5 is the multi-table join (three joins plus a final aggregation,
// compiled by HadoopDB into four MapReduce jobs, §6.1.10).
func Q5() string {
	return `SELECT o.o_orderpriority, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c
JOIN orders o ON c.c_custkey = o.o_custkey
JOIN lineitem l ON o.o_orderkey = l.l_orderkey
JOIN supplier s ON l.l_suppkey = s.s_suppkey
GROUP BY o.o_orderpriority`
}

// SupplierQuery is the light-weight throughput query sent by retailer
// users against one supplier peer's data (§6.2.3); nationKey restricts
// it to a single nation, hence a single peer.
func SupplierQuery(nationKey int) string {
	return fmt.Sprintf(`SELECT s.s_name, p.p_name, ps.ps_availqty, ps.ps_supplycost
FROM supplier s
JOIN partsupp ps ON s.s_suppkey = ps.ps_suppkey
JOIN part p ON ps.ps_partkey = p.p_partkey
WHERE s.s_nationkey = %d AND ps.ps_nationkey = %d AND p.p_nationkey = %d`,
		nationKey, nationKey, nationKey)
}

// RetailerQuery is the heavy-weight throughput query sent by supplier
// users against one retailer peer's data: a three-table join with
// aggregation.
func RetailerQuery(nationKey int) string {
	return fmt.Sprintf(`SELECT c.c_custkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c
JOIN orders o ON c.c_custkey = o.o_custkey
JOIN lineitem l ON o.o_orderkey = l.l_orderkey
WHERE c.c_nationkey = %d AND o.o_nationkey = %d AND l.l_nationkey = %d
GROUP BY c.c_custkey`, nationKey, nationKey, nationKey)
}
