package tpch

import (
	"testing"

	"bestpeer/internal/sqldb"
)

func genDB(t *testing.T, sc Scale) *sqldb.DB {
	t.Helper()
	db := sqldb.NewDB()
	if err := Generate(db, sc); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSchemasComplete(t *testing.T) {
	s := Schemas(false)
	if len(s) != 8 {
		t.Fatalf("tables = %d", len(s))
	}
	if SchemaFor(LineItem, false) == nil || SchemaFor("ghost", false) != nil {
		t.Error("SchemaFor broken")
	}
	li := SchemaFor(LineItem, false)
	if li.ColumnIndex("l_shipdate") < 0 || li.ColumnIndex("l_nationkey") >= 0 {
		t.Error("standard lineitem schema wrong")
	}
	liN := SchemaFor(LineItem, true)
	if liN.ColumnIndex("l_nationkey") < 0 {
		t.Error("nation-key column missing in throughput schema")
	}
	// Already-keyed tables unchanged.
	if sup := SchemaFor(Supplier, true); sup.ColumnIndex("supplier_nationkey") >= 0 {
		t.Error("supplier gained a duplicate nation key")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sc := Scale{ScaleFactor: 0.001, Peer: 0, NumPeers: 2, NationKey: -1}
	a := genDB(t, sc)
	b := genDB(t, sc)
	for _, table := range []string{Orders, LineItem, Supplier} {
		ra, err := a.Query(`SELECT COUNT(*) FROM ` + table)
		if err != nil {
			t.Fatal(err)
		}
		rb, _ := b.Query(`SELECT COUNT(*) FROM ` + table)
		if ra.Rows[0][0].AsInt() != rb.Rows[0][0].AsInt() {
			t.Errorf("%s cardinality differs across runs", table)
		}
	}
	// Sample rows identical.
	qa, _ := a.Query(`SELECT o_totalprice FROM orders ORDER BY o_orderkey LIMIT 5`)
	qb, _ := b.Query(`SELECT o_totalprice FROM orders ORDER BY o_orderkey LIMIT 5`)
	for i := range qa.Rows {
		if qa.Rows[i][0].AsFloat() != qb.Rows[i][0].AsFloat() {
			t.Fatal("row content differs across identical generations")
		}
	}
}

func TestGenerateCardinalityScales(t *testing.T) {
	small := genDB(t, Scale{ScaleFactor: 0.001, NationKey: -1})
	big := genDB(t, Scale{ScaleFactor: 0.002, NationKey: -1})
	cs, _ := small.Query(`SELECT COUNT(*) FROM orders`)
	cb, _ := big.Query(`SELECT COUNT(*) FROM orders`)
	ns, nb := cs.Rows[0][0].AsInt(), cb.Rows[0][0].AsInt()
	if nb < ns*3/2 {
		t.Errorf("orders: sf 0.002 = %d vs sf 0.001 = %d", nb, ns)
	}
}

func TestPeersGenerateDisjointKeys(t *testing.T) {
	p0 := genDB(t, Scale{ScaleFactor: 0.001, Peer: 0, NumPeers: 3, NationKey: -1})
	p1 := genDB(t, Scale{ScaleFactor: 0.001, Peer: 1, NumPeers: 3, NationKey: -1})
	max0, _ := p0.Query(`SELECT MAX(o_orderkey) FROM orders`)
	min1, _ := p1.Query(`SELECT MIN(o_orderkey) FROM orders`)
	if max0.Rows[0][0].AsInt() >= min1.Rows[0][0].AsInt() {
		t.Errorf("order keys overlap: peer0 max %v, peer1 min %v", max0.Rows[0][0], min1.Rows[0][0])
	}
	if _, err := p0.Query(`SELECT COUNT(*) FROM region`); err != nil {
		t.Errorf("peer 0 lacks region: %v", err)
	}
}

func TestReferentialIntegrityWithinPeer(t *testing.T) {
	db := genDB(t, Scale{ScaleFactor: 0.001, NationKey: -1})
	// Every lineitem's order key exists in orders.
	res, err := db.Query(`SELECT COUNT(*) FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey`)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := db.Query(`SELECT COUNT(*) FROM lineitem`)
	if res.Rows[0][0].AsInt() != all.Rows[0][0].AsInt() {
		t.Errorf("dangling lineitem orderkeys: joined %v of %v", res.Rows[0][0], all.Rows[0][0])
	}
	// Order totals equal the sum of their lineitems' extended prices.
	byOrder, err := db.Query(`SELECT o.o_orderkey, o.o_totalprice, SUM(l.l_extendedprice) AS s
		FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey
		GROUP BY o.o_orderkey LIMIT 20`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range byOrder.Rows {
		if diff := r[1].AsFloat() - r[2].AsFloat(); diff > 0.01 || diff < -0.01 {
			t.Errorf("order %v total %v != lineitem sum %v", r[0], r[1], r[2])
		}
	}
}

func TestSecondaryIndexesBuilt(t *testing.T) {
	db := genDB(t, Scale{ScaleFactor: 0.001, NationKey: -1})
	for table, cols := range SecondaryIndexes() {
		tbl := db.Table(table)
		if tbl == nil {
			t.Fatalf("missing table %s", table)
		}
		for _, col := range cols {
			if tbl.IndexOn(col) == nil {
				t.Errorf("no index on %s.%s", table, col)
			}
		}
	}
	// An indexed selection actually uses the index.
	res, err := db.Query(Q1Default())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.IndexUsed {
		t.Error("Q1 did not use the l_shipdate index")
	}
}

func TestNationRestrictedGeneration(t *testing.T) {
	db := genDB(t, Scale{ScaleFactor: 0.001, NationKey: 7, Tables: RetailerTables()})
	res, err := db.Query(`SELECT COUNT(*) FROM lineitem WHERE l_nationkey = 7`)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := db.Query(`SELECT COUNT(*) FROM lineitem`)
	if res.Rows[0][0].AsInt() != all.Rows[0][0].AsInt() {
		t.Error("lineitem rows outside the restricted nation")
	}
	// Supplier tables were not generated.
	if db.Table(PartSupp) != nil {
		t.Error("retailer peer generated supplier tables")
	}
}

func TestBenchmarkQueriesParseAndRun(t *testing.T) {
	db := genDB(t, Scale{ScaleFactor: 0.002, NationKey: -1})
	for name, q := range map[string]string{
		"Q1": Q1Default(), "Q2": Q2Default(), "Q3": Q3Default(),
		"Q4": Q4Default(), "Q5": Q5(),
	} {
		res, err := db.Query(q)
		if err != nil {
			t.Errorf("%s failed: %v", name, err)
			continue
		}
		if name == "Q2" && len(res.Rows) != 1 {
			t.Errorf("Q2 rows = %d", len(res.Rows))
		}
	}
}

func TestThroughputQueriesParseAndRun(t *testing.T) {
	supplier := genDB(t, Scale{ScaleFactor: 0.01, NationKey: 3, Tables: SupplierTables()})
	retailer := genDB(t, Scale{ScaleFactor: 0.01, NationKey: 3, Tables: RetailerTables()})
	if _, err := supplier.Query(SupplierQuery(3)); err != nil {
		t.Errorf("supplier query: %v", err)
	}
	res, err := retailer.Query(RetailerQuery(3))
	if err != nil {
		t.Fatalf("retailer query: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Error("retailer query returned nothing")
	}
	// Wrong nation returns nothing (single-peer restriction works).
	res2, err := retailer.Query(RetailerQuery(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 0 {
		t.Errorf("nation 4 rows on a nation-3 peer: %d", len(res2.Rows))
	}
}

func TestGenerateValidation(t *testing.T) {
	db := sqldb.NewDB()
	if err := Generate(db, Scale{ScaleFactor: 0}); err == nil {
		t.Error("zero scale accepted")
	}
	if err := Generate(db, Scale{ScaleFactor: 1, Peer: 5, NumPeers: 2}); err == nil {
		t.Error("out-of-range peer accepted")
	}
}
