package tpch

import (
	"fmt"
	"math/rand"

	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// Scale configures how much data one peer generates. ScaleFactor 1.0
// corresponds to the official TPC-H per-table cardinalities; the
// benchmarks use small factors and let the virtual-time model supply
// the latency shape (the paper distributes 1 GB per node).
type Scale struct {
	ScaleFactor float64
	// Peer and NumPeers horizontally partition the key space: peer i of
	// n generates disjoint key ranges, exactly as running dbgen per node
	// does in the paper's loading process.
	Peer     int
	NumPeers int
	// NationKey, when >= 0, restricts generated rows to one nation and
	// populates the added nation-key columns (throughput benchmark).
	NationKey int
	// Tables restricts generation to a subset (nil = all).
	Tables []string
}

// cardinality returns the base row count of a table at scale factor 1.
func cardinality(table string) int {
	switch table {
	case Region:
		return 5
	case Nation:
		return 25
	case Supplier:
		return 10_000
	case Customer:
		return 150_000
	case Part:
		return 200_000
	case PartSupp:
		return 800_000
	case Orders:
		return 1_500_000
	case LineItem:
		return 0 // derived: ~4 per order
	}
	return 0
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
	"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
	"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var containers = []string{"SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PACK"}
var types = []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM POLISHED STEEL", "LARGE BURNISHED BRASS", "ECONOMY BRUSHED NICKEL", "PROMO POLISHED STEEL"}

// Date range of TPC-H: orders span 1992-01-01 .. 1998-08-02.
var (
	startDay = sqlval.MustParseDate("1992-01-01").AsDays()
	endDay   = sqlval.MustParseDate("1998-08-02").AsDays()
)

// Generate populates db with TPC-H data for one peer: tables are
// created (with primary keys and the Table 4 secondary indexes) and
// filled deterministically. Generation is a pure function of the Scale,
// so re-running it reproduces identical data.
func Generate(db *sqldb.DB, sc Scale) error {
	if sc.NumPeers <= 0 {
		sc.NumPeers = 1
	}
	if sc.Peer < 0 || sc.Peer >= sc.NumPeers {
		return fmt.Errorf("tpch: peer %d out of range [0,%d)", sc.Peer, sc.NumPeers)
	}
	if sc.ScaleFactor <= 0 {
		return fmt.Errorf("tpch: scale factor must be positive")
	}
	withNation := sc.NationKey >= 0
	want := func(table string) bool {
		if sc.Tables == nil {
			return true
		}
		for _, t := range sc.Tables {
			if t == table {
				return true
			}
		}
		return false
	}
	for _, schema := range Schemas(withNation) {
		if !want(schema.Table) {
			continue
		}
		if db.Table(schema.Table) == nil {
			if _, err := db.CreateTable(schema); err != nil {
				return err
			}
		}
	}

	rng := rand.New(rand.NewSource(int64(sc.Peer)*7919 + 17))
	comment := func(n int) sqlval.Value {
		const alphabet = "abcdefghijklmnopqrstuvwxyz    "
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return sqlval.Str(string(b))
	}
	pick := func(list []string) sqlval.Value { return sqlval.Str(list[rng.Intn(len(list))]) }
	nation := func() int64 {
		if sc.NationKey >= 0 {
			return int64(sc.NationKey)
		}
		return int64(rng.Intn(len(nationNames)))
	}
	date := func() sqlval.Value {
		return sqlval.Date(startDay + rng.Int63n(endDay-startDay+1))
	}

	// rows(table) = cardinality * SF / NumPeers, at least 1.
	countFor := func(table string) int {
		n := int(float64(cardinality(table)) * sc.ScaleFactor / float64(sc.NumPeers))
		if n < 1 {
			n = 1
		}
		return n
	}
	// Key spaces are partitioned per peer so that primary keys never
	// collide across peers.
	keyBase := func(table string) int64 {
		span := int64(float64(cardinality(table))*sc.ScaleFactor) + 1
		return int64(sc.Peer) * span
	}

	appendNation := func(row sqlval.Row) sqlval.Row {
		if withNation {
			return append(row, sqlval.Int(nation()))
		}
		return row
	}

	if want(Region) && sc.Peer == 0 {
		for i, name := range regionNames {
			row := sqlval.Row{sqlval.Int(int64(i)), sqlval.Str(name), comment(20)}
			if err := db.InsertRow(Region, row); err != nil {
				return err
			}
		}
	}
	if want(Nation) && sc.Peer == 0 {
		for i, name := range nationNames {
			row := sqlval.Row{sqlval.Int(int64(i)), sqlval.Str(name), sqlval.Int(int64(i % 5)), comment(20)}
			if err := db.InsertRow(Nation, row); err != nil {
				return err
			}
		}
	}

	nSupplier := countFor(Supplier)
	if want(Supplier) {
		base := keyBase(Supplier)
		for i := 0; i < nSupplier; i++ {
			k := base + int64(i)
			row := sqlval.Row{
				sqlval.Int(k),
				sqlval.Str(fmt.Sprintf("Supplier#%09d", k)),
				comment(15),
				sqlval.Int(nation()),
				sqlval.Str(fmt.Sprintf("%02d-%07d", rng.Intn(25)+10, rng.Intn(10_000_000))),
				sqlval.Float(float64(rng.Intn(1_000_000))/100 - 1000),
				comment(30),
			}
			if err := db.InsertRow(Supplier, row); err != nil {
				return err
			}
		}
	}

	nCustomer := countFor(Customer)
	if want(Customer) {
		base := keyBase(Customer)
		for i := 0; i < nCustomer; i++ {
			k := base + int64(i)
			row := sqlval.Row{
				sqlval.Int(k),
				sqlval.Str(fmt.Sprintf("Customer#%09d", k)),
				comment(15),
				sqlval.Int(nation()),
				sqlval.Str(fmt.Sprintf("%02d-%07d", rng.Intn(25)+10, rng.Intn(10_000_000))),
				sqlval.Float(float64(rng.Intn(1_100_000))/100 - 1000),
				pick(segments),
				comment(40),
			}
			if err := db.InsertRow(Customer, row); err != nil {
				return err
			}
		}
	}

	nPart := countFor(Part)
	if want(Part) {
		base := keyBase(Part)
		for i := 0; i < nPart; i++ {
			k := base + int64(i)
			row := sqlval.Row{
				sqlval.Int(k),
				comment(25),
				sqlval.Str(fmt.Sprintf("Manufacturer#%d", rng.Intn(5)+1)),
				sqlval.Str(fmt.Sprintf("Brand#%d%d", rng.Intn(5)+1, rng.Intn(5)+1)),
				pick(types),
				sqlval.Int(int64(rng.Intn(50) + 1)),
				pick(containers),
				sqlval.Float(900 + float64(k%1000)/10),
				comment(10),
			}
			row = appendNation(row)
			if err := db.InsertRow(Part, row); err != nil {
				return err
			}
		}
	}

	if want(PartSupp) {
		partBase := keyBase(Part)
		suppBase := keyBase(Supplier)
		n := countFor(PartSupp)
		perPart := 4
		for i := 0; i < n; i++ {
			partKey := partBase + int64(i/perPart%max(nPart, 1))
			suppKey := suppBase + int64(i%max(nSupplier, 1))
			row := sqlval.Row{
				sqlval.Int(partKey),
				sqlval.Int(suppKey),
				sqlval.Int(int64(rng.Intn(9999) + 1)),
				sqlval.Float(float64(rng.Intn(100_000)) / 100),
				comment(20),
			}
			row = appendNation(row)
			if err := db.InsertRow(PartSupp, row); err != nil {
				return err
			}
		}
	}

	if want(Orders) || want(LineItem) {
		orderBase := keyBase(Orders)
		custBase := keyBase(Customer)
		partBase := keyBase(Part)
		suppBase := keyBase(Supplier)
		nOrders := countFor(Orders)
		for i := 0; i < nOrders; i++ {
			k := orderBase + int64(i)
			odate := date()
			lineCount := rng.Intn(4) + 1
			var total float64
			type lineRec struct {
				row sqlval.Row
			}
			var lines []lineRec
			for ln := 0; ln < lineCount; ln++ {
				qty := rng.Intn(50) + 1
				price := float64(rng.Intn(90_000)+10_000) / 100
				total += price * float64(qty)
				ship := odate.AsDays() + int64(rng.Intn(120)+1)
				commit := odate.AsDays() + int64(rng.Intn(90)+30)
				receipt := ship + int64(rng.Intn(30)+1)
				lrow := sqlval.Row{
					sqlval.Int(k),
					sqlval.Int(partBase + rng.Int63n(int64(max(nPart, 1)))),
					sqlval.Int(suppBase + rng.Int63n(int64(max(nSupplier, 1)))),
					sqlval.Int(int64(ln + 1)),
					sqlval.Int(int64(qty)),
					sqlval.Float(price * float64(qty)),
					sqlval.Float(float64(rng.Intn(11)) / 100),
					sqlval.Float(float64(rng.Intn(9)) / 100),
					pick([]string{"A", "N", "R"}),
					pick([]string{"O", "F"}),
					sqlval.Date(ship),
					sqlval.Date(commit),
					sqlval.Date(receipt),
					pick([]string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}),
					pick(shipModes),
					comment(25),
				}
				lrow = appendNation(lrow)
				lines = append(lines, lineRec{row: lrow})
			}
			if want(Orders) {
				orow := sqlval.Row{
					sqlval.Int(k),
					sqlval.Int(custBase + rng.Int63n(int64(max(nCustomer, 1)))),
					pick([]string{"O", "F", "P"}),
					sqlval.Float(total),
					odate,
					pick(priorities),
					sqlval.Str(fmt.Sprintf("Clerk#%09d", rng.Intn(1000))),
					sqlval.Int(0),
					comment(30),
				}
				orow = appendNation(orow)
				if err := db.InsertRow(Orders, orow); err != nil {
					return err
				}
			}
			if want(LineItem) {
				for _, l := range lines {
					if err := db.InsertRow(LineItem, l.row); err != nil {
						return err
					}
				}
			}
		}
	}

	return BuildIndexes(db)
}

// BuildIndexes creates the primary-key and Table 4 secondary indexes on
// every generated table that exists in db.
func BuildIndexes(db *sqldb.DB) error {
	for table, cols := range SecondaryIndexes() {
		t := db.Table(table)
		if t == nil {
			continue
		}
		for _, col := range cols {
			name := "idx_" + table + "_" + col
			if err := t.CreateIndex(name, col, false); err != nil {
				// Re-generation over the same DB: index already exists.
				continue
			}
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
