package tpch

import (
	"fmt"
	"math/rand"

	"bestpeer/internal/sqlval"
)

// Shipdate-window workload generator: parameterized range scans over
// l_shipdate whose window placement is either uniform over the date
// domain or Zipfian-concentrated at its start. The two distributions
// drive the heat plane's detection benchmark — the Zipfian run must
// light up one key-space bucket, the uniform run must not.

// ShipdateDomain returns the l_shipdate value domain as floats (day
// ordinals) for bootstrap.DefineStatsDomain: generation spans orders up
// to 1998-08-02 plus a ship lag of at most 120 days, so 1998-12-31
// covers every generated ship date.
func ShipdateDomain() (lo, hi float64) {
	return float64(startDay), sqlval.MustParseDate("1998-12-31").AsFloat()
}

// ShipdateWindowQuery renders a count over the ship-date window
// [fromDay, toDay) in day ordinals.
func ShipdateWindowQuery(fromDay, toDay int64) string {
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= DATE '%s' AND l_shipdate < DATE '%s'",
		sqlval.Date(fromDay).String(), sqlval.Date(toDay).String())
}

// ShipdateWorkload deals shipdate-window queries with either uniform or
// Zipfian window placement.
type ShipdateWorkload struct {
	rng        *rand.Rand
	zipf       *rand.Zipf
	windowDays int64
	span       int64 // number of possible window starts - 1
}

// NewShipdateWorkload builds a generator. With zipfian set, window
// start offsets follow P(k) ∝ (1+k)^-1.5 from the domain's first day —
// most of the mass lands within the first few weeks, i.e. inside one
// heat bucket of the 64-bucket key space. Otherwise starts are uniform
// over the whole domain.
func NewShipdateWorkload(seed int64, zipfian bool, windowDays int) *ShipdateWorkload {
	s := 0.0
	if zipfian {
		s = DefaultZipfSkew
	}
	return NewShipdateWorkloadSkew(seed, s, windowDays)
}

// DefaultZipfSkew is the Zipf exponent the boolean constructor uses.
const DefaultZipfSkew = 1.5

// NewShipdateWorkloadSkew builds a generator with an explicit Zipf
// exponent: window starts follow P(k) ∝ (1+k)^-s. rand.Zipf requires
// s > 1, so any skew at or below 1 means uniform placement.
func NewShipdateWorkloadSkew(seed int64, skew float64, windowDays int) *ShipdateWorkload {
	if windowDays < 1 {
		windowDays = 7
	}
	w := &ShipdateWorkload{
		rng:        rand.New(rand.NewSource(seed)),
		windowDays: int64(windowDays),
		span:       endDay - startDay - int64(windowDays),
	}
	if w.span < 0 {
		w.span = 0
	}
	if skew > 1 {
		w.zipf = rand.NewZipf(w.rng, skew, 1, uint64(w.span))
	}
	return w
}

// Next returns the next window-scan query.
func (w *ShipdateWorkload) Next() string {
	var off int64
	if w.zipf != nil {
		off = int64(w.zipf.Uint64())
	} else if w.span > 0 {
		off = w.rng.Int63n(w.span + 1)
	}
	from := startDay + off
	return ShipdateWindowQuery(from, from+w.windowDays)
}
