// Package tpch provides the TPC-H substrate of the paper's evaluation:
// the eight-table schema (used as the corporate network's shared global
// schema, §6.1.4), a deterministic dbgen-style data generator with
// uniform value distributions (§6.1.5), the five benchmark queries
// Q1–Q5 (§6.1.6–§6.1.10), and the supplier/retailer partitioning of the
// throughput benchmark (§6.2.1).
package tpch

import (
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

// Table names.
const (
	Region   = "region"
	Nation   = "nation"
	Supplier = "supplier"
	Customer = "customer"
	Part     = "part"
	PartSupp = "partsupp"
	Orders   = "orders"
	LineItem = "lineitem"
)

// Schemas returns the TPC-H schema. When withNationKey is true, every
// table carries a nation-key column, the paper's modification for the
// throughput benchmark ("to reflect the fact that each table is
// partitioned based on nations, we modify the original TPC-H schema and
// add a nation key column in each table", §6.2.1); the tables that
// already have one are unchanged.
func Schemas(withNationKey bool) []*sqldb.Schema {
	s := []*sqldb.Schema{
		{
			Table:      Region,
			PrimaryKey: "r_regionkey",
			Columns: []sqldb.Column{
				{Name: "r_regionkey", Kind: sqlval.KindInt},
				{Name: "r_name", Kind: sqlval.KindString},
				{Name: "r_comment", Kind: sqlval.KindString},
			},
		},
		{
			Table:      Nation,
			PrimaryKey: "n_nationkey",
			Columns: []sqldb.Column{
				{Name: "n_nationkey", Kind: sqlval.KindInt},
				{Name: "n_name", Kind: sqlval.KindString},
				{Name: "n_regionkey", Kind: sqlval.KindInt},
				{Name: "n_comment", Kind: sqlval.KindString},
			},
		},
		{
			Table:      Supplier,
			PrimaryKey: "s_suppkey",
			Columns: []sqldb.Column{
				{Name: "s_suppkey", Kind: sqlval.KindInt},
				{Name: "s_name", Kind: sqlval.KindString},
				{Name: "s_address", Kind: sqlval.KindString},
				{Name: "s_nationkey", Kind: sqlval.KindInt},
				{Name: "s_phone", Kind: sqlval.KindString},
				{Name: "s_acctbal", Kind: sqlval.KindFloat},
				{Name: "s_comment", Kind: sqlval.KindString},
			},
		},
		{
			Table:      Customer,
			PrimaryKey: "c_custkey",
			Columns: []sqldb.Column{
				{Name: "c_custkey", Kind: sqlval.KindInt},
				{Name: "c_name", Kind: sqlval.KindString},
				{Name: "c_address", Kind: sqlval.KindString},
				{Name: "c_nationkey", Kind: sqlval.KindInt},
				{Name: "c_phone", Kind: sqlval.KindString},
				{Name: "c_acctbal", Kind: sqlval.KindFloat},
				{Name: "c_mktsegment", Kind: sqlval.KindString},
				{Name: "c_comment", Kind: sqlval.KindString},
			},
		},
		{
			Table:      Part,
			PrimaryKey: "p_partkey",
			Columns: []sqldb.Column{
				{Name: "p_partkey", Kind: sqlval.KindInt},
				{Name: "p_name", Kind: sqlval.KindString},
				{Name: "p_mfgr", Kind: sqlval.KindString},
				{Name: "p_brand", Kind: sqlval.KindString},
				{Name: "p_type", Kind: sqlval.KindString},
				{Name: "p_size", Kind: sqlval.KindInt},
				{Name: "p_container", Kind: sqlval.KindString},
				{Name: "p_retailprice", Kind: sqlval.KindFloat},
				{Name: "p_comment", Kind: sqlval.KindString},
			},
		},
		{
			Table: PartSupp,
			Columns: []sqldb.Column{
				{Name: "ps_partkey", Kind: sqlval.KindInt},
				{Name: "ps_suppkey", Kind: sqlval.KindInt},
				{Name: "ps_availqty", Kind: sqlval.KindInt},
				{Name: "ps_supplycost", Kind: sqlval.KindFloat},
				{Name: "ps_comment", Kind: sqlval.KindString},
			},
		},
		{
			Table:      Orders,
			PrimaryKey: "o_orderkey",
			Columns: []sqldb.Column{
				{Name: "o_orderkey", Kind: sqlval.KindInt},
				{Name: "o_custkey", Kind: sqlval.KindInt},
				{Name: "o_orderstatus", Kind: sqlval.KindString},
				{Name: "o_totalprice", Kind: sqlval.KindFloat},
				{Name: "o_orderdate", Kind: sqlval.KindDate},
				{Name: "o_orderpriority", Kind: sqlval.KindString},
				{Name: "o_clerk", Kind: sqlval.KindString},
				{Name: "o_shippriority", Kind: sqlval.KindInt},
				{Name: "o_comment", Kind: sqlval.KindString},
			},
		},
		{
			Table: LineItem,
			Columns: []sqldb.Column{
				{Name: "l_orderkey", Kind: sqlval.KindInt},
				{Name: "l_partkey", Kind: sqlval.KindInt},
				{Name: "l_suppkey", Kind: sqlval.KindInt},
				{Name: "l_linenumber", Kind: sqlval.KindInt},
				{Name: "l_quantity", Kind: sqlval.KindInt},
				{Name: "l_extendedprice", Kind: sqlval.KindFloat},
				{Name: "l_discount", Kind: sqlval.KindFloat},
				{Name: "l_tax", Kind: sqlval.KindFloat},
				{Name: "l_returnflag", Kind: sqlval.KindString},
				{Name: "l_linestatus", Kind: sqlval.KindString},
				{Name: "l_shipdate", Kind: sqlval.KindDate},
				{Name: "l_commitdate", Kind: sqlval.KindDate},
				{Name: "l_receiptdate", Kind: sqlval.KindDate},
				{Name: "l_shipinstruct", Kind: sqlval.KindString},
				{Name: "l_shipmode", Kind: sqlval.KindString},
				{Name: "l_comment", Kind: sqlval.KindString},
			},
		},
	}
	if withNationKey {
		for _, sc := range s {
			switch sc.Table {
			case Nation, Supplier, Customer, Region:
				continue // already keyed (or global reference data)
			}
			sc.Columns = append(sc.Columns, sqldb.Column{Name: nationKeyColumn(sc.Table), Kind: sqlval.KindInt})
		}
	}
	return s
}

// nationKeyColumn names the added nation-key column of a table in the
// throughput schema.
func nationKeyColumn(table string) string {
	switch table {
	case Part:
		return "p_nationkey"
	case PartSupp:
		return "ps_nationkey"
	case Orders:
		return "o_nationkey"
	case LineItem:
		return "l_nationkey"
	default:
		return table + "_nationkey"
	}
}

// SchemaFor returns one table's schema from the standard set.
func SchemaFor(table string, withNationKey bool) *sqldb.Schema {
	for _, s := range Schemas(withNationKey) {
		if s.Table == table {
			return s
		}
	}
	return nil
}

// SecondaryIndexes lists the secondary indexes built during data loading
// (paper Table 4; the table's full contents are not reproduced in the
// text, so this is the set the benchmark queries Q1–Q5 exercise:
// selection columns of Q1/Q2 and the join keys of Q3–Q5).
func SecondaryIndexes() map[string][]string {
	return map[string][]string{
		LineItem: {"l_shipdate", "l_commitdate", "l_orderkey", "l_partkey"},
		Orders:   {"o_orderdate", "o_custkey"},
		PartSupp: {"ps_partkey", "ps_suppkey"},
		Part:     {"p_size"},
		Customer: {"c_nationkey"},
		Supplier: {"s_nationkey"},
	}
}

// SupplierTables is the sub-schema owned by supplier peers in the
// throughput benchmark (§6.2.1).
func SupplierTables() []string { return []string{Supplier, PartSupp, Part, Nation, Region} }

// RetailerTables is the sub-schema owned by retailer peers.
func RetailerTables() []string { return []string{LineItem, Orders, Customer, Nation, Region} }
