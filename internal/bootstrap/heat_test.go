package bootstrap

import (
	"strings"
	"testing"

	"bestpeer/internal/cloud"
	"bestpeer/internal/pnet"
	"bestpeer/internal/telemetry"
)

// heatPoint builds a heatmap delta point with the given bucket counts.
func heatPoint(buckets ...int64) telemetry.PointSnapshot {
	hs := telemetry.HeatmapSnapshot{Buckets: buckets}
	return telemetry.PointSnapshot{Name: "peer_key_heat", Kind: "heatmap", Value: float64(hs.Count()), Heat: &hs}
}

// skewed returns an n-bucket heat vector with `hot` hits in bucket 0
// and one hit everywhere else.
func skewed(n int, hot int64) []int64 {
	out := make([]int64, n)
	out[0] = hot
	for i := 1; i < n; i++ {
		out[i] = 1
	}
	return out
}

func TestCollectorAbsorbsHeatIntoHealth(t *testing.T) {
	c := NewCollector()
	// peer-1 hammers bucket 0; peer-2 sees flat traffic.
	if err := c.Absorb(telemetry.Report{Peer: "peer-1", Seq: 1, Delta: telemetry.RegistrySnapshot{
		Points: []telemetry.PointSnapshot{heatPoint(skewed(8, 93)...)}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Absorb(telemetry.Report{Peer: "peer-2", Seq: 1, Delta: telemetry.RegistrySnapshot{
		Points: []telemetry.PointSnapshot{heatPoint(1, 1, 1, 1, 1, 1, 1, 1)}}}); err != nil {
		t.Fatal(err)
	}

	h, ok := c.Health("peer-1")
	if !ok {
		t.Fatal("no health for peer-1")
	}
	if h.HeatSamples != 100 {
		t.Errorf("heat samples = %d, want 100", h.HeatSamples)
	}
	if h.HotBucket != 0 || h.HeatShare != 0.93 {
		t.Errorf("hot bucket = %d share = %v, want bucket 0 at 0.93", h.HotBucket, h.HeatShare)
	}
	if want := 0.93 * 8; h.HeatSkew != want {
		t.Errorf("heat skew = %v, want %v", h.HeatSkew, want)
	}
	h2, _ := c.Health("peer-2")
	if h2.HeatSkew != 1 {
		t.Errorf("uniform peer skew = %v, want 1", h2.HeatSkew)
	}

	// Cluster heat is the bucket-wise sum over every peer's window.
	cluster := c.ClusterHeat()
	if cluster.Count() != 108 {
		t.Errorf("cluster heat count = %d, want 108", cluster.Count())
	}
	if cluster.Buckets[0] != 94 {
		t.Errorf("cluster bucket 0 = %d, want 94", cluster.Buckets[0])
	}
}

func TestHotRangesDetectionAndAttribution(t *testing.T) {
	c := NewCollector()
	if err := c.Absorb(telemetry.Report{Peer: "peer-1", Seq: 1, Delta: telemetry.RegistrySnapshot{
		Points: []telemetry.PointSnapshot{heatPoint(skewed(8, 93)...)}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Absorb(telemetry.Report{Peer: "peer-2", Seq: 1, Delta: telemetry.RegistrySnapshot{
		Points: []telemetry.PointSnapshot{heatPoint(10, 1, 1, 1, 1, 1, 1, 1)}}}); err != nil {
		t.Fatal(err)
	}

	// Below the sample floor: no ranges regardless of skew.
	if got := c.HotRanges(2, 1000); got != nil {
		t.Fatalf("ranges below sample floor: %v", got)
	}

	ranges := c.HotRanges(2, 64)
	if len(ranges) != 1 {
		t.Fatalf("ranges = %+v, want exactly bucket 0", ranges)
	}
	r := ranges[0]
	if r.Bucket != 0 || r.Lo != 0 || r.Hi != 0.125 {
		t.Errorf("range = %+v, want bucket 0 over [0,0.125)", r)
	}
	if r.Samples != 103 {
		t.Errorf("samples = %d, want 103", r.Samples)
	}
	if r.TopPeer != "peer-1" {
		t.Errorf("top peer = %q, want peer-1 (93 of 103 hits)", r.TopPeer)
	}
	// Uniform traffic clears no threshold.
	if got := c.HotRanges(50, 64); got != nil {
		t.Fatalf("ranges above any real skew: %v", got)
	}
}

// TestHotspotEventsRisingEdge pins the dedup contract: a range logs on
// its rising edge, stays silent while it remains hot, and logs again
// after cooling below the threshold and re-heating.
func TestHotspotEventsRisingEdge(t *testing.T) {
	b, _, _ := testBootstrap(t)

	hotspotEvents := func() int {
		n := 0
		for _, e := range b.Events() {
			if e.Kind == "hotspot" {
				n++
			}
		}
		return n
	}

	// Everything in bucket 0: skew 8.0 on an 8-bucket vector, at the
	// default HeatSkewHigh threshold.
	hotReport := func(seq uint64) telemetry.Report {
		return telemetry.Report{Peer: "peer-1", Seq: seq, Delta: telemetry.RegistrySnapshot{
			Points: []telemetry.PointSnapshot{heatPoint(1000, 0, 0, 0, 0, 0, 0, 0)}}}
	}

	if err := b.collector.Absorb(hotReport(1)); err != nil {
		t.Fatal(err)
	}
	b.detectHotspots()
	if got := hotspotEvents(); got != 1 {
		t.Fatalf("events after first detection = %d, want 1", got)
	}
	// Still hot next epoch: no re-log.
	b.detectHotspots()
	if got := hotspotEvents(); got != 1 {
		t.Fatalf("events while continuously hot = %d, want still 1", got)
	}
	var e Event
	for _, ev := range b.Events() {
		if ev.Kind == "hotspot" {
			e = ev
		}
	}
	if e.Peer != "peer-1" || !strings.Contains(e.Note, "[0.000,0.125)") || !strings.Contains(e.Note, "top=peer-1") {
		t.Errorf("hotspot event = %+v", e)
	}

	// Cool down: flood the window ring with uniform reports until the
	// skew drops below threshold, then re-heat — it must log again.
	for i := 0; i < collectorWindow; i++ {
		if err := b.collector.Absorb(telemetry.Report{Peer: "peer-1", Seq: uint64(2 + i), Delta: telemetry.RegistrySnapshot{
			Points: []telemetry.PointSnapshot{heatPoint(100, 100, 100, 100, 100, 100, 100, 100)}}}); err != nil {
			t.Fatal(err)
		}
	}
	b.detectHotspots()
	if got := hotspotEvents(); got != 1 {
		t.Fatalf("events after cool-down = %d, want still 1", got)
	}
	if err := b.collector.Absorb(hotReport(uint64(2 + collectorWindow))); err != nil {
		t.Fatal(err)
	}
	// One skewed report on top of the uniform window is not enough; push
	// the ring back to fully hot.
	for i := 0; i < collectorWindow; i++ {
		if err := b.collector.Absorb(hotReport(uint64(3 + collectorWindow + i))); err != nil {
			t.Fatal(err)
		}
	}
	b.detectHotspots()
	if got := hotspotEvents(); got != 2 {
		t.Fatalf("events after re-heat = %d, want 2", got)
	}
}

// indexHeatPoint builds a peer_index_heat delta point — the overlay
// serving heat the rebalance responder keys off.
func indexHeatPoint(buckets ...int64) telemetry.PointSnapshot {
	hs := telemetry.HeatmapSnapshot{Buckets: buckets}
	return telemetry.PointSnapshot{Name: "peer_index_heat", Kind: "heatmap", Value: float64(hs.Count()), Heat: &hs}
}

// fakeRebalancer records the Algorithm 1 rebalance actions dispatched
// to it.
type fakeRebalancer struct {
	calls    []HotRange
	released int
}

func (f *fakeRebalancer) Rebalance(r HotRange) (string, error) {
	f.calls = append(f.calls, r)
	return "replicated", nil
}

func (f *fakeRebalancer) Release() (string, error) {
	f.released++
	return "dropped", nil
}

// TestRebalanceActionRisingEdgeAndRelease pins the heat-response
// contract: the handler re-fires every epoch while the range stays hot
// (each re-push revalidates holders), but the event log and the
// advisory broadcast move only on edges — one rebalance event per
// rising edge, one Release plus an empty advisory when the heat
// subsides.
func TestRebalanceActionRisingEdgeAndRelease(t *testing.T) {
	b, provider, net := testBootstrap(t)

	// One admitted peer whose endpoint captures advisory broadcasts.
	if _, err := provider.Launch("peer-1", cloud.M1Small); err != nil {
		t.Fatal(err)
	}
	ep := net.Join("peer-1")
	ep.Handle("peer.membership.changed", func(pnet.Message) (pnet.Message, error) { return pnet.Message{}, nil })
	ep.Handle("peer.user.created", func(pnet.Message) (pnet.Message, error) { return pnet.Message{}, nil })
	var advisories [][]string
	ep.HandleIdempotent(MsgHeatAdvisory, func(msg pnet.Message) (pnet.Message, error) {
		hot, _ := msg.Payload.([]string)
		advisories = append(advisories, hot)
		return pnet.Message{}, nil
	})
	if _, err := b.Join("peer-1", "peer-1", peerKey(t)); err != nil {
		t.Fatal(err)
	}

	fake := &fakeRebalancer{}
	b.SetRebalanceHandler(fake)

	rebalanceEvents := func() (n int, last Event) {
		for _, e := range b.Events() {
			if e.Kind == "rebalance" {
				n++
				last = e
			}
		}
		return n, last
	}
	hotReport := func(seq uint64) telemetry.Report {
		return telemetry.Report{Peer: "peer-1", Seq: seq, Delta: telemetry.RegistrySnapshot{
			Points: []telemetry.PointSnapshot{indexHeatPoint(1000, 0, 0, 0, 0, 0, 0, 0)}}}
	}

	// No heat yet: armed but inert.
	b.respondHeat()
	if len(fake.calls) != 0 || len(advisories) != 0 {
		t.Fatalf("cold daemon acted: %d calls, %d advisories", len(fake.calls), len(advisories))
	}

	if err := b.collector.Absorb(hotReport(1)); err != nil {
		t.Fatal(err)
	}
	b.respondHeat()
	if len(fake.calls) != 1 {
		t.Fatalf("handler calls after rising edge = %d, want 1", len(fake.calls))
	}
	if r := fake.calls[0]; r.Bucket != 0 || r.TopPeer != "peer-1" || r.Lo != 0 || r.Hi != 0.125 {
		t.Errorf("dispatched range = %+v", r)
	}
	if n, e := rebalanceEvents(); n != 1 || e.Peer != "peer-1" || !strings.Contains(e.Note, "-> replicated") {
		t.Errorf("events after rising edge: n=%d last=%+v", n, e)
	}
	if len(advisories) != 1 || len(advisories[0]) != 1 || advisories[0][0] != "peer-1" {
		t.Fatalf("advisories after rising edge = %v", advisories)
	}

	// Still hot next epoch: the handler re-fires (re-push revalidates
	// holders) but the log and the unchanged advisory stay quiet.
	b.respondHeat()
	if len(fake.calls) != 2 {
		t.Errorf("handler calls while continuously hot = %d, want 2", len(fake.calls))
	}
	if n, _ := rebalanceEvents(); n != 1 {
		t.Errorf("events while continuously hot = %d, want still 1", n)
	}
	if len(advisories) != 1 {
		t.Errorf("unchanged advisory re-broadcast: %v", advisories)
	}

	// Cool down: Release fires once, the event names it, and the empty
	// advisory lifts the dispatch bias everywhere.
	for i := 0; i < collectorWindow; i++ {
		if err := b.collector.Absorb(telemetry.Report{Peer: "peer-1", Seq: uint64(2 + i), Delta: telemetry.RegistrySnapshot{
			Points: []telemetry.PointSnapshot{indexHeatPoint(100, 100, 100, 100, 100, 100, 100, 100)}}}); err != nil {
			t.Fatal(err)
		}
	}
	b.respondHeat()
	if fake.released != 1 {
		t.Errorf("released = %d, want 1", fake.released)
	}
	if n, e := rebalanceEvents(); n != 2 || !strings.Contains(e.Note, "heat subsided") {
		t.Errorf("events after cool-down: n=%d last=%+v", n, e)
	}
	if len(advisories) != 2 || len(advisories[1]) != 0 {
		t.Errorf("advisories after cool-down = %v", advisories)
	}
	// Quiescent epochs release nothing further.
	b.respondHeat()
	if fake.released != 1 || len(advisories) != 2 {
		t.Errorf("idle epoch acted: released=%d advisories=%v", fake.released, advisories)
	}
}
