package bootstrap

import (
	"strings"
	"testing"
	"time"

	"bestpeer/internal/pnet"
	"bestpeer/internal/telemetry"
)

// TestEveryBootstrapMetricHasHelp exercises the bootstrap enough to
// create its core metric families — a report through the RPC handler,
// a maintenance epoch, the peers-online gauge — then fails if any
// bootstrap_* family renders without a # HELP line. (Event-driven
// counters like failovers are created lazily; their help text is
// registered at init, so they pass the moment they first fire.)
func TestEveryBootstrapMetricHasHelp(t *testing.T) {
	b, provider, net := testBootstrap(t)
	joinPeer(t, b, provider, net, "help-peer")
	if _, err := b.handleTelemetryReport(pnet.Message{Payload: telemetry.Report{
		Peer: "help-peer", Seq: 1,
		Delta: telemetry.RegistrySnapshot{Points: []telemetry.PointSnapshot{indexHeatPoint(1, 1, 1, 1, 1, 1, 1, 1)}},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := b.RunMaintenanceEpoch(time.Second); err != nil {
		t.Fatal(err)
	}

	for _, family := range telemetry.MissingHelp(telemetry.Default.Text()) {
		if strings.HasPrefix(family, "bootstrap_") {
			t.Errorf("bootstrap family %q has no HELP text", family)
		}
	}
}
