// Package bootstrap implements the BestPeer++ bootstrap peer (paper
// §3): the service-provider-run entry point of a corporate network. It
// manages normal peer join and departure (with PKI certificates), acts
// as the central repository of network metadata (global schema, peer
// list, role definitions, user accounts), and runs the Algorithm 1
// maintenance daemon that monitors peer health, triggers automatic
// fail-over and auto-scaling, and releases blacklisted resources.
package bootstrap

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// Certificate is a bootstrap-issued identity credential for a normal
// peer. Peers verify each other's certificates before exchanging data
// (the paper uses standard PKI; this uses stdlib Ed25519).
type Certificate struct {
	PeerID    string
	PublicKey ed25519.PublicKey
	IssuedAt  time.Duration // bootstrap virtual clock
	Serial    uint64
	Signature []byte // CA signature over the fields above
}

// digest returns the canonical byte string the CA signs.
func (c *Certificate) digest() []byte {
	h := sha256.New()
	h.Write([]byte(c.PeerID))
	h.Write([]byte{0})
	h.Write(c.PublicKey)
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(c.IssuedAt))
	binary.BigEndian.PutUint64(buf[8:], c.Serial)
	h.Write(buf[:])
	return h.Sum(nil)
}

// CertAuthority is the certificate authority role of the bootstrap peer.
type CertAuthority struct {
	mu      sync.Mutex
	pub     ed25519.PublicKey
	priv    ed25519.PrivateKey
	serial  uint64
	revoked map[uint64]bool
	clock   func() time.Duration
}

// NewCertAuthority creates a CA with a fresh Ed25519 key pair. clock
// supplies the issuing timestamp (the bootstrap's virtual clock).
func NewCertAuthority(clock func() time.Duration) (*CertAuthority, error) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, fmt.Errorf("bootstrap: generating CA key: %w", err)
	}
	return &CertAuthority{pub: pub, priv: priv, revoked: make(map[uint64]bool), clock: clock}, nil
}

// PublicKey returns the CA's verification key, distributed to every
// joining peer.
func (ca *CertAuthority) PublicKey() ed25519.PublicKey { return ca.pub }

// Issue creates and signs a certificate binding peerID to peerPub.
func (ca *CertAuthority) Issue(peerID string, peerPub ed25519.PublicKey) Certificate {
	ca.mu.Lock()
	ca.serial++
	cert := Certificate{
		PeerID:    peerID,
		PublicKey: peerPub,
		IssuedAt:  ca.clock(),
		Serial:    ca.serial,
	}
	ca.mu.Unlock()
	cert.Signature = ed25519.Sign(ca.priv, cert.digest())
	return cert
}

// Verify checks the certificate's signature and revocation status.
func (ca *CertAuthority) Verify(cert Certificate) error {
	ca.mu.Lock()
	revoked := ca.revoked[cert.Serial]
	ca.mu.Unlock()
	if revoked {
		return fmt.Errorf("bootstrap: certificate %d for %s is revoked", cert.Serial, cert.PeerID)
	}
	if !ed25519.Verify(ca.pub, cert.digest(), cert.Signature) {
		return fmt.Errorf("bootstrap: invalid certificate signature for %s", cert.PeerID)
	}
	return nil
}

// Revoke marks a certificate invalid (peer departure or fail-over).
func (ca *CertAuthority) Revoke(serial uint64) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	ca.revoked[serial] = true
}
