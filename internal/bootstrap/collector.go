package bootstrap

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bestpeer/internal/telemetry"
)

// The collector is the bootstrap half of the monitoring plane: peers
// push delta reports (telemetry.report verb), the collector merges them
// into a cluster-wide registry under peer=<id> labels and keeps a
// per-peer rolling window of recent deltas. Algorithm 1's daemon reads
// the derived health scores next to the cloud sim's CPU/storage
// metrics, so a peer that looks healthy to CloudWatch but fails its
// RPCs (or drags its p99) still triggers fail-over or auto-scaling —
// the HadoopDB-job-tracker view the paper's bootstrap lacks.

// MsgTelemetryReport is the verb carrying peer delta reports.
const MsgTelemetryReport = "telemetry.report"

// collectorWindow bounds the per-peer rolling window (reports kept).
const collectorWindow = 8

// windowSample is one absorbed report reduced to the signals the health
// score uses.
type windowSample struct {
	at           time.Time
	queries      int64
	errors       int64
	rows         int64
	shuffle      int64
	admitted     int64
	shed         int64
	latency      telemetry.HistogramSnapshot
	queue        telemetry.HistogramSnapshot
	servingQueue telemetry.HistogramSnapshot
	heat         telemetry.HeatmapSnapshot
	indexHeat    telemetry.HeatmapSnapshot
	lookups      int64
	replicaReads int64
	rpcCalls     map[string]int64 // destination -> calls this delta
	rpcErrs      map[string]int64
}

// peerWindow is one peer's rolling report window.
type peerWindow struct {
	ring    []windowSample
	lastSeq uint64
	lastAt  time.Time
	reports uint64
}

// PeerHealth is one peer's derived health, computed over its rolling
// window plus every other peer's sender-side RPC stats about it.
type PeerHealth struct {
	Peer string
	// Score is 1.0 for a healthy peer, decaying toward 0 with RPC
	// failure rate and p99 latency overruns.
	Score float64
	// QPS is the windowed query rate at the peer.
	QPS float64
	// P99QuerySeconds is the p99 of Peer.Query wall time in the window
	// (0 when no queries ran).
	P99QuerySeconds float64
	// ErrorRate is failed queries over total queries in the window.
	ErrorRate float64
	// RPCFailureRate is failed calls TO this peer over total calls,
	// observed by every reporting peer's sender side.
	RPCFailureRate float64
	// RPCCalls is the observation count behind RPCFailureRate.
	RPCCalls int64
	// RowsScanned and ShuffleBytes sum the window's load signals.
	RowsScanned  int64
	ShuffleBytes int64
	// QueueWaitP95 is the p95 fan-out pool queue wait (seconds).
	QueueWaitP95 float64
	// ServingQueueP99 is the p99 serving-tier admission wait (seconds);
	// ServingAdmitted and ServingShed count the window's admission
	// outcomes and ServingShedRate is shed over (admitted + shed). All
	// zero for peers without a serving tier.
	ServingQueueP99 float64
	ServingAdmitted int64
	ServingShed     int64
	ServingShedRate float64
	// HeatSkew is the peer's windowed key-space skew score: the hottest
	// bucket's share of accesses times the bucket count, so 1.0 means a
	// uniform spread and N means every access hit one bucket. HeatShare
	// and HotBucket name the hottest bucket, HeatSamples the evidence
	// behind them. All zero for peers that recorded no heat.
	HeatSkew    float64
	HeatShare   float64
	HotBucket   int
	HeatSamples int64
	// LookupsServed and ReplicaReads count the window's overlay lookup
	// serves: answered from the peer's own items vs from hosted
	// hot-range replicas. ReplicaShare is replica reads over all
	// serves — the dashboard's view of how much read load the
	// mitigation plane moved onto this peer.
	LookupsServed int64
	ReplicaReads  int64
	ReplicaShare  float64
	// LastReport is when the peer's latest report arrived; Reports
	// counts all absorbed reports.
	LastReport time.Time
	Reports    uint64
}

// Collector aggregates peer telemetry at the bootstrap.
type Collector struct {
	mu      sync.Mutex
	cluster *telemetry.Registry
	windows map[string]*peerWindow
	// p99Budget normalizes the latency penalty in Score (a p99 at or
	// beyond the budget zeroes the latency component).
	p99Budget time.Duration
	// now is the time source (overridable in tests).
	now func() time.Time
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		cluster:   telemetry.NewRegistry(),
		windows:   make(map[string]*peerWindow),
		p99Budget: 2 * time.Second,
		now:       time.Now,
	}
}

// Absorb merges one report into the cluster registry and the reporter's
// rolling window.
func (c *Collector) Absorb(rep telemetry.Report) error {
	if rep.Peer == "" {
		return fmt.Errorf("collector: report without peer id")
	}
	s := windowSample{rpcCalls: make(map[string]int64), rpcErrs: make(map[string]int64)}
	for _, p := range rep.Delta.Points {
		switch p.Name {
		case "peer_queries_total":
			s.queries += int64(p.Value)
		case "peer_query_errors_total":
			s.errors += int64(p.Value)
		case "peer_rows_scanned_total":
			s.rows += int64(p.Value)
		case "peer_shuffle_bytes_total":
			s.shuffle += int64(p.Value)
		case "peer_query_seconds":
			if p.Hist != nil {
				s.latency = *p.Hist
			}
		case "peer_fanout_queue_seconds":
			if p.Hist != nil {
				s.queue = *p.Hist
			}
		case "peer_serving_queue_seconds":
			if p.Hist != nil {
				s.servingQueue = *p.Hist
			}
		case "peer_key_heat":
			if p.Heat != nil {
				s.heat = *p.Heat
			}
		case "peer_index_heat":
			if p.Heat != nil {
				s.indexHeat = *p.Heat
			}
		case "peer_lookups_served_total":
			s.lookups += int64(p.Value)
		case "peer_replica_reads_total":
			s.replicaReads += int64(p.Value)
		case "peer_serving_admitted_total":
			s.admitted += int64(p.Value)
		case "peer_serving_shed_total":
			s.shed += int64(p.Value)
		case "peer_rpc_calls_total":
			if to := labelValue(p.Labels, "to"); to != "" {
				s.rpcCalls[to] += int64(p.Value)
			}
		case "peer_rpc_errors_total":
			if to := labelValue(p.Labels, "to"); to != "" {
				s.rpcErrs[to] += int64(p.Value)
			}
		}
	}

	c.mu.Lock()
	w := c.windows[rep.Peer]
	if w == nil {
		w = &peerWindow{}
		c.windows[rep.Peer] = w
	}
	// Duplicate-delivery dedup: the hardened transport may re-send a
	// report whose first delivery actually landed (retry after a lost
	// reply, or an injected duplicate). A sequence number at or below
	// the newest absorbed one has been counted already — absorbing it
	// again would double the delta into the window and the cluster
	// registry, corrupting rates. Dropping is the safe side: at worst
	// one epoch's activity is undercounted, never double-counted.
	if w.reports > 0 && rep.Seq != 0 && rep.Seq <= w.lastSeq {
		c.mu.Unlock()
		return nil
	}
	s.at = c.now()
	w.ring = append(w.ring, s)
	if len(w.ring) > collectorWindow {
		w.ring = w.ring[len(w.ring)-collectorWindow:]
	}
	w.lastSeq = rep.Seq
	w.lastAt = s.at
	w.reports++
	c.mu.Unlock()

	return c.cluster.Merge(rep.Delta, telemetry.L("peer", rep.Peer))
}

// Drop forgets a peer's window (fail-over: the replacement identity
// starts a fresh window; the dead peer must not keep dragging scores).
// The peer's already-merged series stay in the cluster registry as
// history.
func (c *Collector) Drop(peer string) {
	c.mu.Lock()
	delete(c.windows, peer)
	c.mu.Unlock()
}

// Peers returns the IDs with a live window, sorted.
func (c *Collector) Peers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.windows))
	for id := range c.windows {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Health derives one peer's health from its window. ok is false when
// the peer never reported (the daemon then falls back to cloud metrics
// alone, which keeps report-free deployments exactly as before).
func (c *Collector) Health(peer string) (PeerHealth, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.windows[peer]
	if w == nil {
		return PeerHealth{}, false
	}
	h := PeerHealth{Peer: peer, LastReport: w.lastAt, Reports: w.reports}

	var queries, errs int64
	lat := telemetry.HistogramSnapshot{}
	queue := telemetry.HistogramSnapshot{}
	servingQueue := telemetry.HistogramSnapshot{}
	heat := telemetry.HeatmapSnapshot{}
	for _, s := range w.ring {
		queries += s.queries
		errs += s.errors
		h.RowsScanned += s.rows
		h.ShuffleBytes += s.shuffle
		h.ServingAdmitted += s.admitted
		h.ServingShed += s.shed
		h.LookupsServed += s.lookups
		h.ReplicaReads += s.replicaReads
		lat = addHist(lat, s.latency)
		queue = addHist(queue, s.queue)
		servingQueue = addHist(servingQueue, s.servingQueue)
		heat = heat.Add(s.heat)
	}
	if h.HeatSamples = heat.Count(); h.HeatSamples > 0 {
		h.HotBucket, h.HeatShare = heat.Top()
		h.HeatSkew = heat.Skew()
	}
	if total := h.LookupsServed + h.ReplicaReads; total > 0 {
		h.ReplicaShare = float64(h.ReplicaReads) / float64(total)
	}
	if queries > 0 {
		h.ErrorRate = float64(errs) / float64(queries)
	}
	if lat.Count() > 0 {
		h.P99QuerySeconds = lat.Quantile(0.99)
	}
	if queue.Count() > 0 {
		h.QueueWaitP95 = queue.Quantile(0.95)
	}
	if servingQueue.Count() > 0 {
		h.ServingQueueP99 = servingQueue.Quantile(0.99)
	}
	if total := h.ServingAdmitted + h.ServingShed; total > 0 {
		h.ServingShedRate = float64(h.ServingShed) / float64(total)
	}
	if len(w.ring) >= 2 {
		span := w.ring[len(w.ring)-1].at.Sub(w.ring[0].at)
		if span > 0 {
			var afterFirst int64
			for _, s := range w.ring[1:] {
				afterFirst += s.queries
			}
			h.QPS = float64(afterFirst) / span.Seconds()
		}
	}

	// RPC failure rate about this peer: every other reporter's
	// sender-side view of calls to it. Reachability is a *now* signal,
	// so each observer contributes only its newest sample — summing
	// windows (or reaching back for older samples) would let the bulk
	// of successful calls from load time wash out a fresh outage. An
	// observer whose latest report made no calls to the peer simply
	// contributes no evidence this epoch.
	var rpcErrs int64
	for id, ow := range c.windows {
		if id == peer || len(ow.ring) == 0 {
			continue
		}
		s := ow.ring[len(ow.ring)-1]
		h.RPCCalls += s.rpcCalls[peer]
		rpcErrs += s.rpcErrs[peer]
	}
	if h.RPCCalls > 0 {
		h.RPCFailureRate = float64(rpcErrs) / float64(h.RPCCalls)
		if h.RPCFailureRate > 1 {
			h.RPCFailureRate = 1
		}
	}

	h.Score = c.score(h)
	return h, true
}

// score maps health signals to [0,1]: the RPC failure rate is the
// dominant penalty (a peer nobody can call is effectively down), the
// p99 overrun a secondary one, and a shedding serving tier — clients
// being turned away even though RPCs succeed — a further deduction so
// Algorithm 1's auto-scaler sees saturation before it sees failures.
func (c *Collector) score(h PeerHealth) float64 {
	s := 1.0
	s -= 0.7 * h.RPCFailureRate
	if c.p99Budget > 0 && h.P99QuerySeconds > 0 {
		over := h.P99QuerySeconds / c.p99Budget.Seconds()
		if over > 1 {
			over = 1
		}
		s -= 0.3 * over
	}
	s -= 0.2 * h.ServingShedRate
	if s < 0 {
		s = 0
	}
	return s
}

// Healths derives every reporting peer's health, sorted by ID.
func (c *Collector) Healths() []PeerHealth {
	var out []PeerHealth
	for _, id := range c.Peers() {
		if h, ok := c.Health(id); ok {
			out = append(out, h)
		}
	}
	return out
}

// ClusterHeat sums every peer's windowed heat vector into one
// cluster-wide view of the BATON key space.
func (c *Collector) ClusterHeat() telemetry.HeatmapSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := telemetry.HeatmapSnapshot{}
	for _, w := range c.windows {
		for _, s := range w.ring {
			out = out.Add(s.heat)
		}
	}
	return out
}

// HotRange is one detected hot region of the key space: a bucket whose
// share of cluster-wide accesses exceeds the uniform expectation by the
// skew threshold, with the peer contributing the most heat to it named
// for the event note.
type HotRange struct {
	Bucket  int
	Lo, Hi  float64 // key-space interval [Lo,Hi)
	Share   float64 // bucket's share of all windowed accesses
	Skew    float64 // Share × bucket count (1.0 = uniform expectation)
	Samples int64   // accesses in the bucket
	TopPeer string  // peer contributing the most heat to the bucket
}

// HotRanges scans the cluster heat vector for buckets whose skew
// exceeds minSkew, ignoring vectors with fewer than minSamples total
// accesses (cold clusters produce degenerate shares). Results are
// hottest-first. Detection only — nothing here moves data.
func (c *Collector) HotRanges(minSkew float64, minSamples int64) []HotRange {
	return c.hotRangesIn(c.ClusterHeat(), minSkew, minSamples, c.topHeatPeer)
}

// IndexHeat sums every peer's windowed overlay-serving heat
// (peer_index_heat): which key-space buckets of the BATON index plane
// are drawing lookup traffic, attributed to the nodes serving them.
func (c *Collector) IndexHeat() telemetry.HeatmapSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := telemetry.HeatmapSnapshot{}
	for _, w := range c.windows {
		for _, s := range w.ring {
			out = out.Add(s.indexHeat)
		}
	}
	return out
}

// PeerIndexHeat returns one peer's windowed overlay-serving heat
// vector. ok is false when the peer never reported index heat — the
// balancer then falls back to item counts.
func (c *Collector) PeerIndexHeat(peer string) (telemetry.HeatmapSnapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.windows[peer]
	if w == nil {
		return telemetry.HeatmapSnapshot{}, false
	}
	out := telemetry.HeatmapSnapshot{}
	for _, s := range w.ring {
		out = out.Add(s.indexHeat)
	}
	if len(out.Buckets) == 0 {
		return telemetry.HeatmapSnapshot{}, false
	}
	return out, true
}

// IndexHotRanges is HotRanges over the overlay-serving heat plane: the
// ranges of the *index* key space whose lookup load is skewed onto few
// nodes. This is the signal the mitigation plane acts on — replicating
// the named range spreads exactly the load measured here.
func (c *Collector) IndexHotRanges(minSkew float64, minSamples int64) []HotRange {
	return c.hotRangesIn(c.IndexHeat(), minSkew, minSamples, c.topIndexHeatPeer)
}

// hotRangesIn scans one heat vector for buckets whose skew exceeds
// minSkew; topPeer attributes each hot bucket to its biggest
// contributor.
func (c *Collector) hotRangesIn(heat telemetry.HeatmapSnapshot, minSkew float64, minSamples int64, topPeer func(bucket int) string) []HotRange {
	n := len(heat.Buckets)
	total := heat.Count()
	if n == 0 || total < minSamples || total == 0 {
		return nil
	}
	var out []HotRange
	for i, cnt := range heat.Buckets {
		share := float64(cnt) / float64(total)
		skew := share * float64(n)
		if skew < minSkew {
			continue
		}
		lo, hi := telemetry.HeatBucketRange(i, n)
		out = append(out, HotRange{
			Bucket: i, Lo: lo, Hi: hi,
			Share: share, Skew: skew, Samples: cnt,
			TopPeer: topPeer(i),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Samples > out[j].Samples })
	return out
}

// topHeatPeer names the peer whose window contributed the most heat to
// one bucket (ties break to the lexically smaller ID for determinism).
func (c *Collector) topHeatPeer(bucket int) string {
	return c.topPeerBy(bucket, func(s windowSample) telemetry.HeatmapSnapshot { return s.heat })
}

// topIndexHeatPeer is topHeatPeer over the overlay-serving heat plane.
func (c *Collector) topIndexHeatPeer(bucket int) string {
	return c.topPeerBy(bucket, func(s windowSample) telemetry.HeatmapSnapshot { return s.indexHeat })
}

func (c *Collector) topPeerBy(bucket int, heatOf func(windowSample) telemetry.HeatmapSnapshot) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var top string
	var max int64 = -1
	ids := make([]string, 0, len(c.windows))
	for id := range c.windows {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		var sum int64
		for _, s := range c.windows[id].ring {
			h := heatOf(s)
			if bucket < len(h.Buckets) {
				sum += h.Buckets[bucket]
			}
		}
		if sum > max {
			max, top = sum, id
		}
	}
	if max <= 0 {
		return ""
	}
	return top
}

// Cluster returns the merged cluster registry.
func (c *Collector) Cluster() *telemetry.Registry { return c.cluster }

// ClusterText renders the cluster registry as Prometheus-style text —
// the whole network's metrics in one exposition.
func (c *Collector) ClusterText() string { return c.cluster.Text() }

// addHist merges two delta snapshots (empty operands pass through; a
// bounds mismatch keeps the accumulator).
func addHist(acc, d telemetry.HistogramSnapshot) telemetry.HistogramSnapshot {
	if d.Count() == 0 && len(d.Bounds) == 0 {
		return acc
	}
	if len(acc.Bounds) == 0 {
		return telemetry.HistogramSnapshot{
			Bounds: append([]float64(nil), d.Bounds...),
			Counts: append([]int64(nil), d.Counts...),
			Sum:    d.Sum,
		}
	}
	if len(acc.Bounds) != len(d.Bounds) || len(acc.Counts) != len(d.Counts) {
		return acc
	}
	out := telemetry.HistogramSnapshot{
		Bounds: append([]float64(nil), acc.Bounds...),
		Counts: append([]int64(nil), acc.Counts...),
		Sum:    acc.Sum + d.Sum,
	}
	for i := range d.Counts {
		out.Counts[i] += d.Counts[i]
	}
	return out
}

// labelValue finds one label's value.
func labelValue(labels []telemetry.Label, key string) string {
	for _, l := range labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}
