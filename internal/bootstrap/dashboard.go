package bootstrap

import (
	"fmt"
	"strings"
	"time"

	"bestpeer/internal/telemetry"
)

// RenderDashboard formats the collector's per-peer health table — the
// frame bptop redraws every tick. Pure function of its inputs so the
// layout is unit-testable without a network.
func RenderDashboard(healths []PeerHealth, now time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %6s %7s %8s %6s %8s %12s %10s %8s %6s %6s %6s %6s\n",
		"PEER", "HEALTH", "QPS", "P99", "ERR%", "RPCFAIL", "ROWS", "SHUFFLE", "QWAIT", "SHED%", "HEAT", "REPL%", "AGE")
	for _, h := range healths {
		fmt.Fprintf(&b, "%-16s %6.2f %7.1f %8s %5.1f%% %7.1f%% %12d %10s %8s %5.1f%% %6s %6s %6s\n",
			h.Peer,
			h.Score,
			h.QPS,
			shortDuration(time.Duration(h.P99QuerySeconds*float64(time.Second))),
			100*h.ErrorRate,
			100*h.RPCFailureRate,
			h.RowsScanned,
			humanBytes(h.ShuffleBytes),
			shortDuration(time.Duration(h.QueueWaitP95*float64(time.Second))),
			100*h.ServingShedRate,
			heatCell(h),
			replCell(h),
			reportAge(h.LastReport, now))
	}
	if len(healths) == 0 {
		b.WriteString("(no peers have reported yet)\n")
	}
	return b.String()
}

// heatCell renders a peer's key-space skew score ("3.2x" = the hottest
// bucket runs at 3.2 times the uniform expectation; "-" = no heat
// recorded in the window).
func heatCell(h PeerHealth) string {
	if h.HeatSamples == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", h.HeatSkew)
}

// replCell renders the share of a peer's overlay lookups answered from
// hosted hot-range replicas ("-" = the peer served no lookups in the
// window). A non-zero column is the live signature of mitigation: reads
// that would have funnelled onto the hot owner land here instead.
func replCell(h PeerHealth) string {
	if h.LookupsServed+h.ReplicaReads == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*h.ReplicaShare)
}

// heatBarGlyphs are the spark levels of the key-space heat bar, coldest
// to hottest.
var heatBarGlyphs = []rune("▁▂▃▄▅▆▇█")

// RenderHeatBar draws the cluster heat vector as one spark line over
// the BATON key space [0,1), each glyph scaled against the hottest
// bucket, followed by the skew summary. Pure function, like the
// dashboard table.
func RenderHeatBar(heat telemetry.HeatmapSnapshot) string {
	total := heat.Count()
	if total == 0 || len(heat.Buckets) == 0 {
		return "KEY HEAT (no accesses recorded)\n"
	}
	var max int64
	for _, c := range heat.Buckets {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	b.WriteString("KEY HEAT 0.0 ")
	for _, c := range heat.Buckets {
		if c == 0 {
			b.WriteRune(' ')
			continue
		}
		lvl := int(int64(len(heatBarGlyphs)-1) * c / max)
		b.WriteRune(heatBarGlyphs[lvl])
	}
	bucket, share := heat.Top()
	lo, hi := telemetry.HeatBucketRange(bucket, len(heat.Buckets))
	fmt.Fprintf(&b, " 1.0  n=%d top=[%.3f,%.3f) share=%.0f%% skew=%.1fx\n",
		total, lo, hi, 100*share, heat.Skew())
	return b.String()
}

// shortDuration renders a latency with ms/s units and no noise digits.
func shortDuration(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%.0fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// humanBytes renders a byte count with binary units.
func humanBytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	}
}

// reportAge renders how stale a peer's last report is. A growing age is
// the liveness alarm: reports arrive even when a peer is idle, so only
// an unreachable (or wedged) peer ages.
func reportAge(last, now time.Time) string {
	if last.IsZero() {
		return "never"
	}
	age := now.Sub(last)
	if age < 0 {
		age = 0
	}
	switch {
	case age < time.Second:
		return fmt.Sprintf("%dms", age.Milliseconds())
	case age < time.Minute:
		return fmt.Sprintf("%.0fs", age.Seconds())
	default:
		return fmt.Sprintf("%.1fm", age.Minutes())
	}
}
