package bootstrap

import (
	"bestpeer/internal/pnet"
	"bestpeer/internal/telemetry"
)

func init() {
	// bootstrap.peers replies with the online IDs and telemetry.report
	// carries peer delta snapshots; registered so the TCP transport can
	// carry both verbs.
	pnet.RegisterPayload([]string(nil), telemetry.Report{})
}
