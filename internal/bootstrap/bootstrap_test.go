package bootstrap

import (
	"crypto/ed25519"
	"testing"
	"time"

	"bestpeer/internal/accesscontrol"
	"bestpeer/internal/cloud"
	"bestpeer/internal/pnet"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/sqlval"
)

func testBootstrap(t *testing.T) (*Peer, *cloud.SimProvider, *pnet.Network) {
	t.Helper()
	net := pnet.NewNetwork()
	provider := cloud.NewSimProvider()
	b, err := New(net, "bootstrap", provider)
	if err != nil {
		t.Fatal(err)
	}
	return b, provider, net
}

func peerKey(t *testing.T) ed25519.PublicKey {
	t.Helper()
	pub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

// joinPeer launches an instance and admits a peer with a dummy handler
// for membership notifications.
func joinPeer(t *testing.T, b *Peer, provider *cloud.SimProvider, net *pnet.Network, id string) NetworkInfo {
	t.Helper()
	if _, err := provider.Launch(id, cloud.M1Small); err != nil {
		t.Fatal(err)
	}
	ep := net.Join(id)
	ep.Handle("peer.membership.changed", func(pnet.Message) (pnet.Message, error) { return pnet.Message{}, nil })
	ep.Handle("peer.user.created", func(pnet.Message) (pnet.Message, error) { return pnet.Message{}, nil })
	info, err := b.Join(id, id, peerKey(t))
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestCertificateIssueVerifyRevoke(t *testing.T) {
	b, _, _ := testBootstrap(t)
	pub := peerKey(t)
	cert := b.CA().Issue("peer-1", pub)
	if err := b.CA().Verify(cert); err != nil {
		t.Fatalf("fresh cert invalid: %v", err)
	}
	// Tampering breaks the signature.
	bad := cert
	bad.PeerID = "mallory"
	if err := b.CA().Verify(bad); err == nil {
		t.Error("tampered cert verified")
	}
	b.CA().Revoke(cert.Serial)
	if err := b.CA().Verify(cert); err == nil {
		t.Error("revoked cert verified")
	}
}

func TestJoinDeliversNetworkInfo(t *testing.T) {
	b, provider, net := testBootstrap(t)
	b.DefineGlobalSchema(&sqldb.Schema{Table: "orders", Columns: []sqldb.Column{{Name: "o_orderkey", Kind: sqlval.KindInt}}})
	b.Roles().DefineRole(accessRole("supplier"))
	info := joinPeer(t, b, provider, net, "peer-1")
	if len(info.Participants) != 1 || info.Participants[0] != "peer-1" {
		t.Errorf("participants = %v", info.Participants)
	}
	if len(info.GlobalSchema) != 1 || info.GlobalSchema[0].Table != "orders" {
		t.Errorf("schemas = %+v", info.GlobalSchema)
	}
	if len(info.Roles) != 1 {
		t.Errorf("roles = %v", info.Roles)
	}
	if err := b.CA().Verify(info.Certificate); err != nil {
		t.Errorf("issued cert invalid: %v", err)
	}
	info2 := joinPeer(t, b, provider, net, "peer-2")
	if len(info2.Participants) != 2 {
		t.Errorf("second join participants = %v", info2.Participants)
	}
	if _, err := b.Join("peer-1", "peer-1", peerKey(t)); err == nil {
		t.Error("duplicate join accepted")
	}
}

func TestLeaveBlacklistsAndRevokes(t *testing.T) {
	b, provider, net := testBootstrap(t)
	info := joinPeer(t, b, provider, net, "peer-1")
	if err := b.Leave("peer-1"); err != nil {
		t.Fatal(err)
	}
	if err := b.CA().Verify(info.Certificate); err == nil {
		t.Error("departed peer's cert still valid")
	}
	if got := b.Blacklist(); len(got) != 1 || got[0] != "peer-1" {
		t.Errorf("blacklist = %v", got)
	}
	if len(b.Peers()) != 0 {
		t.Errorf("peers = %v", b.Peers())
	}
	if err := b.Leave("ghost"); err == nil {
		t.Error("Leave(ghost) succeeded")
	}
	// The epoch releases the blacklisted resources.
	if err := b.RunMaintenanceEpoch(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(b.Blacklist()) != 0 {
		t.Error("blacklist not released")
	}
	if inst, ok := provider.Instance("peer-1"); ok && inst.State == cloud.StateRunning {
		t.Error("departed peer's instance still running")
	}
}

func TestMaintenanceAutoScaling(t *testing.T) {
	b, provider, net := testBootstrap(t)
	joinPeer(t, b, provider, net, "peer-1")
	provider.ReportMetrics("peer-1", cloud.Metrics{CPUUtilization: 0.99, Healthy: true})
	if err := b.RunMaintenanceEpoch(time.Minute); err != nil {
		t.Fatal(err)
	}
	inst, _ := provider.Instance("peer-1")
	if inst.Type.Name != "m1.large" {
		t.Errorf("instance type = %s, want m1.large after auto-scale", inst.Type.Name)
	}
	foundScale := false
	for _, e := range b.Events() {
		if e.Kind == "scaleup" && e.Peer == "peer-1" {
			foundScale = true
		}
	}
	if !foundScale {
		t.Error("no scaleup event logged")
	}
}

func TestMaintenanceStorageScaling(t *testing.T) {
	b, provider, net := testBootstrap(t)
	joinPeer(t, b, provider, net, "peer-1")
	// 4.9 of 5 GB used on m1.small: above the 0.85 threshold.
	provider.ReportMetrics("peer-1", cloud.Metrics{CPUUtilization: 0.1, StorageUsedGB: 4.9, Healthy: true})
	if err := b.RunMaintenanceEpoch(time.Minute); err != nil {
		t.Fatal(err)
	}
	inst, _ := provider.Instance("peer-1")
	if inst.Type.Name != "m1.large" {
		t.Errorf("storage pressure did not scale up: %s", inst.Type.Name)
	}
}

func TestMaintenanceFailover(t *testing.T) {
	b, provider, net := testBootstrap(t)
	joinPeer(t, b, provider, net, "peer-1")
	joinPeer(t, b, provider, net, "peer-2")

	var failedSeen string
	b.SetFailoverHandler(FailoverFunc(func(failedID string) (string, ed25519.PublicKey, error) {
		failedSeen = failedID
		newID := failedID + "-v2"
		if _, err := provider.Launch(newID, cloud.M1Small); err != nil {
			return "", nil, err
		}
		ep := net.Join(newID)
		ep.Handle("peer.membership.changed", func(pnet.Message) (pnet.Message, error) { return pnet.Message{}, nil })
		return newID, peerKey(t), nil
	}))

	if err := provider.Crash("peer-1"); err != nil {
		t.Fatal(err)
	}
	// During recovery the consistency gate must block peer-1's scope;
	// after the epoch the replacement is online.
	if err := b.RunMaintenanceEpoch(time.Minute); err != nil {
		t.Fatal(err)
	}
	if failedSeen != "peer-1" {
		t.Errorf("handler saw %q", failedSeen)
	}
	peers := b.Peers()
	if len(peers) != 2 {
		t.Fatalf("peers = %v", peers)
	}
	if !b.Online("peer-1-v2", "peer-2") {
		t.Error("replacement not online")
	}
	if b.Online("peer-1") {
		t.Error("failed peer still online")
	}
	rec, ok := b.Record("peer-1-v2")
	if !ok {
		t.Fatal("no record for replacement")
	}
	if err := b.CA().Verify(rec.Cert); err != nil {
		t.Errorf("replacement cert invalid: %v", err)
	}
}

func TestFailoverWithoutHandlerErrors(t *testing.T) {
	b, provider, net := testBootstrap(t)
	joinPeer(t, b, provider, net, "peer-1")
	if err := provider.Crash("peer-1"); err != nil {
		t.Fatal(err)
	}
	if err := b.RunMaintenanceEpoch(time.Minute); err == nil {
		t.Error("epoch succeeded without failover handler")
	}
}

func TestUserBroadcast(t *testing.T) {
	b, provider, net := testBootstrap(t)
	received := map[string]string{}
	if _, err := provider.Launch("peer-1", cloud.M1Small); err != nil {
		t.Fatal(err)
	}
	ep := net.Join("peer-1")
	ep.Handle("peer.membership.changed", func(pnet.Message) (pnet.Message, error) { return pnet.Message{}, nil })
	ep.Handle("peer.user.created", func(msg pnet.Message) (pnet.Message, error) {
		pair := msg.Payload.([2]string)
		received[pair[0]] = pair[1]
		return pnet.Message{}, nil
	})
	if _, err := b.Join("peer-1", "peer-1", peerKey(t)); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateUser("alice", "supplier"); err != nil {
		t.Fatal(err)
	}
	if received["alice"] != "supplier" {
		t.Errorf("broadcast not received: %v", received)
	}
	if err := b.CreateUser("alice", "retailer"); err == nil {
		t.Error("duplicate user accepted")
	}
	if b.Users()["alice"] != "supplier" {
		t.Errorf("directory = %v", b.Users())
	}
}

func TestEventsLogged(t *testing.T) {
	b, provider, net := testBootstrap(t)
	joinPeer(t, b, provider, net, "peer-1")
	if err := b.Leave("peer-1"); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, e := range b.Events() {
		kinds[e.Kind] = true
	}
	if !kinds["join"] || !kinds["leave"] {
		t.Errorf("event kinds = %v", kinds)
	}
}

// accessRole builds a trivial role for registry tests.
func accessRole(name string) *accesscontrol.Role {
	return accesscontrol.NewRole(name)
}
