package bootstrap

import (
	"crypto/ed25519"
	"strings"
	"testing"
	"time"

	"bestpeer/internal/cloud"
	"bestpeer/internal/pnet"
	"bestpeer/internal/telemetry"
)

// latencyHist builds a delta histogram snapshot with n observations at
// value v (seconds) on a two-bucket layout.
func latencyHist(v float64, n int64) telemetry.HistogramSnapshot {
	bounds := []float64{0.5, 1, 2.5, 5}
	counts := make([]int64, len(bounds)+1)
	idx := len(bounds)
	for i, b := range bounds {
		if v <= b {
			idx = i
			break
		}
	}
	counts[idx] = n
	return telemetry.HistogramSnapshot{Bounds: bounds, Counts: counts, Sum: v * float64(n)}
}

func counterPoint(name string, v float64, labels ...telemetry.Label) telemetry.PointSnapshot {
	return telemetry.PointSnapshot{Name: name, Labels: labels, Kind: "counter", Value: v}
}

func TestCollectorHealthFromWindows(t *testing.T) {
	c := NewCollector()
	base := time.Unix(1000, 0)
	tick := 0
	c.now = func() time.Time { tick++; return base.Add(time.Duration(tick) * time.Second) }

	// peer-1 reports twice: 10 then 30 queries, 2 errors total, slow p99.
	lh := latencyHist(3, 10)
	if err := c.Absorb(telemetry.Report{Peer: "peer-1", Seq: 1, Delta: telemetry.RegistrySnapshot{Points: []telemetry.PointSnapshot{
		counterPoint("peer_queries_total", 10),
		counterPoint("peer_rows_scanned_total", 500),
	}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Absorb(telemetry.Report{Peer: "peer-1", Seq: 2, Delta: telemetry.RegistrySnapshot{Points: []telemetry.PointSnapshot{
		counterPoint("peer_queries_total", 30),
		counterPoint("peer_query_errors_total", 2),
		counterPoint("peer_shuffle_bytes_total", 2048),
		{Name: "peer_query_seconds", Kind: "histogram", Value: 10, Hist: &lh},
	}}}); err != nil {
		t.Fatal(err)
	}
	// peer-2's sender side saw calls to peer-1 fail.
	if err := c.Absorb(telemetry.Report{Peer: "peer-2", Seq: 1, Delta: telemetry.RegistrySnapshot{Points: []telemetry.PointSnapshot{
		counterPoint("peer_rpc_calls_total", 10, telemetry.L("to", "peer-1")),
		counterPoint("peer_rpc_errors_total", 9, telemetry.L("to", "peer-1")),
	}}}); err != nil {
		t.Fatal(err)
	}

	h, ok := c.Health("peer-1")
	if !ok {
		t.Fatal("no health for peer-1")
	}
	if h.Reports != 2 {
		t.Errorf("reports = %d", h.Reports)
	}
	if h.RowsScanned != 500 || h.ShuffleBytes != 2048 {
		t.Errorf("rows=%d shuffle=%d", h.RowsScanned, h.ShuffleBytes)
	}
	if want := 2.0 / 40.0; h.ErrorRate != want {
		t.Errorf("error rate = %v, want %v", h.ErrorRate, want)
	}
	// 30 queries in the 1s between the two samples.
	if h.QPS != 30 {
		t.Errorf("qps = %v", h.QPS)
	}
	if h.P99QuerySeconds < 2.5 || h.P99QuerySeconds > 5 {
		t.Errorf("p99 = %v, want within the 3s bucket", h.P99QuerySeconds)
	}
	if h.RPCCalls != 10 || h.RPCFailureRate != 0.9 {
		t.Errorf("rpc calls=%d failure=%v", h.RPCCalls, h.RPCFailureRate)
	}
	if h.Score >= 0.5 {
		t.Errorf("score = %v, want heavily penalized", h.Score)
	}
	// peer-2 is healthy: nobody reported failures about it.
	h2, _ := c.Health("peer-2")
	if h2.RPCFailureRate != 0 || h2.Score != 1 {
		t.Errorf("peer-2 health = %+v", h2)
	}

	// The cluster registry accumulated under peer labels.
	text := c.ClusterText()
	if !strings.Contains(text, `peer_queries_total{peer="peer-1"} 40`) {
		t.Errorf("cluster text missing merged counter:\n%s", text)
	}

	c.Drop("peer-1")
	if _, ok := c.Health("peer-1"); ok {
		t.Error("dropped peer still has a window")
	}
	if got := c.Peers(); len(got) != 1 || got[0] != "peer-2" {
		t.Errorf("peers after drop = %v", got)
	}
}

func TestCollectorWindowBounded(t *testing.T) {
	c := NewCollector()
	for i := 0; i < collectorWindow*3; i++ {
		if err := c.Absorb(telemetry.Report{Peer: "p", Seq: uint64(i + 1), Delta: telemetry.RegistrySnapshot{Points: []telemetry.PointSnapshot{
			counterPoint("peer_queries_total", 1),
		}}}); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	n := len(c.windows["p"].ring)
	c.mu.Unlock()
	if n != collectorWindow {
		t.Errorf("ring length = %d, want %d", n, collectorWindow)
	}
	h, _ := c.Health("p")
	if h.Reports != uint64(collectorWindow*3) {
		t.Errorf("reports = %d", h.Reports)
	}
}

func TestRenderDashboardEightPeers(t *testing.T) {
	c := NewCollector()
	now := time.Unix(2000, 0)
	c.now = func() time.Time { return now }
	ids := []string{"peer-00", "peer-01", "peer-02", "peer-03", "peer-04", "peer-05", "peer-06", "peer-07"}
	for i, id := range ids {
		lh := latencyHist(float64(i+1)*0.1, 20)
		if err := c.Absorb(telemetry.Report{Peer: id, Seq: 1, Delta: telemetry.RegistrySnapshot{Points: []telemetry.PointSnapshot{
			counterPoint("peer_queries_total", float64(20*(i+1))),
			counterPoint("peer_shuffle_bytes_total", float64(int64(1)<<uint(i+8))),
			{Name: "peer_query_seconds", Kind: "histogram", Value: 20, Hist: &lh},
		}}}); err != nil {
			t.Fatal(err)
		}
	}
	frame := RenderDashboard(c.Healths(), now.Add(3*time.Second))
	lines := strings.Split(strings.TrimRight(frame, "\n"), "\n")
	if len(lines) != 9 { // header + 8 peers
		t.Fatalf("dashboard lines = %d:\n%s", len(lines), frame)
	}
	if !strings.HasPrefix(lines[0], "PEER") {
		t.Errorf("header = %q", lines[0])
	}
	for i, id := range ids {
		if !strings.HasPrefix(lines[i+1], id) {
			t.Errorf("line %d = %q, want peer %s", i+1, lines[i+1], id)
		}
	}
	if !strings.Contains(frame, "3s") {
		t.Errorf("frame missing last-report age:\n%s", frame)
	}

	empty := RenderDashboard(nil, now)
	if !strings.Contains(empty, "no peers have reported") {
		t.Errorf("empty frame = %q", empty)
	}
}

// TestTelemetryFailoverDecision drives Algorithm 1 off aggregated
// telemetry alone: the cloud sim says the instance is healthy, but the
// collector's windows show every RPC to the peer failing — the daemon
// must fail it over and attribute the decision to the telemetry signal.
func TestTelemetryFailoverDecision(t *testing.T) {
	b, provider, net := testBootstrap(t)
	joinPeer(t, b, provider, net, "peer-1")
	joinPeer(t, b, provider, net, "peer-2")
	provider.ReportMetrics("peer-1", cloud.Metrics{CPUUtilization: 0.2, Healthy: true})
	provider.ReportMetrics("peer-2", cloud.Metrics{CPUUtilization: 0.2, Healthy: true})

	b.SetFailoverHandler(FailoverFunc(func(failedID string) (string, ed25519.PublicKey, error) {
		newID := failedID + "-v2"
		if _, err := provider.Launch(newID, cloud.M1Small); err != nil {
			return "", nil, err
		}
		ep := net.Join(newID)
		ep.Handle("peer.membership.changed", func(pnet.Message) (pnet.Message, error) { return pnet.Message{}, nil })
		return newID, peerKey(t), nil
	}))

	// Both peers have reported; peer-2's sender side saw 12/12 calls to
	// peer-1 fail.
	if err := b.Collector().Absorb(telemetry.Report{Peer: "peer-1", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Collector().Absorb(telemetry.Report{Peer: "peer-2", Seq: 1, Delta: telemetry.RegistrySnapshot{Points: []telemetry.PointSnapshot{
		counterPoint("peer_rpc_calls_total", 12, telemetry.L("to", "peer-1")),
		counterPoint("peer_rpc_errors_total", 12, telemetry.L("to", "peer-1")),
	}}}); err != nil {
		t.Fatal(err)
	}

	if err := b.RunMaintenanceEpoch(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !b.Online("peer-1-v2") || b.Online("peer-1") {
		t.Fatalf("failover did not happen: online peers = %v", b.Peers())
	}
	var note string
	for _, e := range b.Events() {
		if e.Kind == "failover" && e.Peer == "peer-1" && strings.Contains(e.Note, "telemetry") {
			note = e.Note
		}
	}
	if !strings.Contains(note, "rpc_failure_rate=1.00") {
		t.Errorf("no telemetry-attributed failover event; note = %q", note)
	}
	// The dead identity's window is gone; the replacement starts fresh.
	if _, ok := b.Collector().Health("peer-1"); ok {
		t.Error("failed peer's telemetry window survived failover")
	}
}

// TestTelemetryScaleUpDecision: healthy cloud metrics, but the windowed
// p99 query latency blows the budget — the daemon scales the instance
// up and names the signal.
func TestTelemetryScaleUpDecision(t *testing.T) {
	b, provider, net := testBootstrap(t)
	joinPeer(t, b, provider, net, "peer-1")
	provider.ReportMetrics("peer-1", cloud.Metrics{CPUUtilization: 0.2, Healthy: true})

	lh := latencyHist(3, 50) // p99 ~3s, budget 2s
	if err := b.Collector().Absorb(telemetry.Report{Peer: "peer-1", Seq: 1, Delta: telemetry.RegistrySnapshot{Points: []telemetry.PointSnapshot{
		counterPoint("peer_queries_total", 50),
		{Name: "peer_query_seconds", Kind: "histogram", Value: 50, Hist: &lh},
	}}}); err != nil {
		t.Fatal(err)
	}

	if err := b.RunMaintenanceEpoch(time.Minute); err != nil {
		t.Fatal(err)
	}
	inst, _ := provider.Instance("peer-1")
	if inst.Type.Name != "m1.large" {
		t.Errorf("instance type = %s, want m1.large after telemetry scale-up", inst.Type.Name)
	}
	found := false
	for _, e := range b.Events() {
		if e.Kind == "scaleup" && e.Peer == "peer-1" && strings.Contains(e.Note, "telemetry: p99=") {
			found = true
		}
	}
	if !found {
		t.Errorf("no telemetry-attributed scaleup event: %+v", b.Events())
	}
}

// TestCollectorDedupsRetriedReports: the hardened transport may re-send
// a report whose first delivery landed (retry after a lost reply, or an
// injected duplicate). The collector must absorb each sequence number
// once — double-absorption would double rates and corrupt health
// scores — while still returning success so the reporter advances.
func TestCollectorDedupsRetriedReports(t *testing.T) {
	c := NewCollector()
	rep := telemetry.Report{Peer: "p", Seq: 1, Delta: telemetry.RegistrySnapshot{Points: []telemetry.PointSnapshot{
		counterPoint("peer_queries_total", 10),
		counterPoint("peer_query_errors_total", 10),
	}}}
	for i := 0; i < 3; i++ { // first delivery + two retried duplicates
		if err := c.Absorb(rep); err != nil {
			t.Fatalf("duplicate absorb %d errored (reporter would wedge): %v", i, err)
		}
	}
	h, ok := c.Health("p")
	if !ok {
		t.Fatal("no health window")
	}
	if h.Reports != 1 {
		t.Errorf("reports = %d, want 1 (duplicates absorbed)", h.Reports)
	}
	if h.ErrorRate != 1 {
		t.Errorf("error rate = %v, want 1 (rates must not compound)", h.ErrorRate)
	}

	// A stale re-delivery arriving after newer reports is dropped too.
	if err := c.Absorb(telemetry.Report{Peer: "p", Seq: 2, Delta: telemetry.RegistrySnapshot{Points: []telemetry.PointSnapshot{
		counterPoint("peer_queries_total", 5),
	}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Absorb(rep); err != nil {
		t.Fatal(err)
	}
	if h, _ := c.Health("p"); h.Reports != 2 {
		t.Errorf("reports = %d after stale re-delivery, want 2", h.Reports)
	}

	// Seq 0 (a reporter that never numbers) keeps the old always-absorb
	// behavior.
	c2 := NewCollector()
	for i := 0; i < 2; i++ {
		if err := c2.Absorb(telemetry.Report{Peer: "q", Delta: telemetry.RegistrySnapshot{Points: []telemetry.PointSnapshot{
			counterPoint("peer_queries_total", 1),
		}}}); err != nil {
			t.Fatal(err)
		}
	}
	if h, _ := c2.Health("q"); h.Reports != 2 {
		t.Errorf("unnumbered reports = %d, want 2", h.Reports)
	}
}
