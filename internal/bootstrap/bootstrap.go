package bootstrap

import (
	"crypto/ed25519"
	"fmt"
	"sort"
	"sync"
	"time"

	"bestpeer/internal/accesscontrol"
	"bestpeer/internal/cloud"
	"bestpeer/internal/pnet"
	"bestpeer/internal/sqldb"
	"bestpeer/internal/telemetry"
)

func init() {
	// SetHelp attaches to an existing family, so each (unlabeled, fixed)
	// family is created eagerly first — also pre-registering it in the
	// exposition, Prometheus-style.
	d := telemetry.Default
	for name, help := range map[string]string{
		"bootstrap_telemetry_reports_total":  "Peer telemetry delta reports the bootstrap absorbed.",
		"bootstrap_maintenance_epochs_total": "Algorithm 1 maintenance epochs executed.",
		"bootstrap_failovers_total":          "Fail-overs triggered by cloud metrics or aggregated telemetry.",
		"bootstrap_scaleups_total":           "Auto-scaling actions triggered by CPU, storage, or p99 latency.",
		"bootstrap_hotspots_total":           "Hot key ranges detected on their rising edge.",
		"bootstrap_rebalances_total":         "Rebalance actions: hot-range replication triggered on an index-heat rising edge.",
	} {
		d.Counter(name)
		d.SetHelp(name, help)
	}
	d.Gauge("bootstrap_peers_online")
	d.SetHelp("bootstrap_peers_online", "Normal peers currently online.")
}

// PeerStatus is a normal peer's state as seen by the bootstrap.
type PeerStatus string

// Peer states tracked by the bootstrap.
const (
	StatusOnline     PeerStatus = "online"
	StatusRecovering PeerStatus = "recovering"
)

// PeerRecord is one entry of the bootstrap's peer list.
type PeerRecord struct {
	ID         string
	InstanceID string
	Cert       Certificate
	Status     PeerStatus
}

// NetworkInfo is what a newly admitted peer receives: the corporate
// network's current state (§3.1).
type NetworkInfo struct {
	Participants []string
	GlobalSchema []*sqldb.Schema
	Roles        []string
	Certificate  Certificate
	CAKey        ed25519.PublicKey
}

// FailoverHandler re-creates a failed peer. The network assembly
// implements it: launch a replacement instance through the cloud
// adapter, restore the database from the latest backup, and rejoin the
// overlay. It returns the replacement peer's ID and public key (for the
// fresh certificate the bootstrap issues it).
type FailoverHandler interface {
	Failover(failedID string) (string, ed25519.PublicKey, error)
}

// FailoverFunc adapts a function to FailoverHandler.
type FailoverFunc func(failedID string) (string, ed25519.PublicKey, error)

// Failover implements FailoverHandler.
func (f FailoverFunc) Failover(failedID string) (string, ed25519.PublicKey, error) {
	return f(failedID)
}

// RebalanceHandler turns a detected index-serving hotspot into
// mitigation. The network assembly implements it on top of the overlay
// coordinator: Rebalance replicates the hot range onto neighbours (it
// is re-invoked every epoch the range stays hot, so the re-push
// revalidates holders that missed an invalidation while partitioned);
// Release tears every hot-range replica down once the heat subsides.
// Both return a short note for the event log.
type RebalanceHandler interface {
	Rebalance(r HotRange) (string, error)
	Release() (string, error)
}

// MsgHeatAdvisory is the bootstrap's push verb for the heat advisory:
// the sorted []string of peers currently at the top of an over-threshold
// index-heat range. Peers bias query fan-out dispatch away from the
// listed peers; an empty list restores the fixed natural order.
const MsgHeatAdvisory = "peer.heat.advisory"

// Event is one entry of the bootstrap's administrative log.
type Event struct {
	At   time.Duration
	Kind string // "join", "leave", "failover", "scaleup", "hotspot", "rebalance", "release", "notify"
	Peer string
	Note string
}

// Thresholds configure the Algorithm 1 daemon. The first two come from
// the cloud sim (the paper's CloudWatch); the rest act on the
// collector's aggregated peer telemetry and only fire for peers that
// have actually reported — a network without reporters behaves exactly
// as before.
type Thresholds struct {
	// CPUHigh triggers auto-scaling when a peer's CPU utilization
	// exceeds it.
	CPUHigh float64
	// StorageHighFraction triggers auto-scaling when used storage
	// exceeds this fraction of allocated storage.
	StorageHighFraction float64
	// RPCFailureRateHigh triggers fail-over when the windowed rate of
	// failed calls to a peer (as observed by every other peer's sender
	// side) reaches it. A cloud-healthy instance whose peer process
	// stopped answering is caught here.
	RPCFailureRateHigh float64
	// MinRPCCalls is the minimum observed-call count before
	// RPCFailureRateHigh is trusted (a single failed probe is not an
	// outage).
	MinRPCCalls int64
	// QueryP99High triggers auto-scaling when a peer's windowed p99
	// query wall time reaches it (0 disables the latency signal).
	QueryP99High time.Duration
	// HeatSkewHigh triggers a hotspot event when a cluster heat bucket's
	// skew — its access share times the bucket count, so 1.0 is the
	// uniform expectation — reaches it (0 disables heat detection).
	HeatSkewHigh float64
	// MinHeatSamples is the minimum cluster-wide access count before
	// HeatSkewHigh is trusted (a handful of accesses is always skewed).
	MinHeatSamples int64
}

// DefaultThresholds returns sensible monitor thresholds.
func DefaultThresholds() Thresholds {
	return Thresholds{
		CPUHigh:             0.85,
		StorageHighFraction: 0.85,
		RPCFailureRateHigh:  0.5,
		MinRPCCalls:         8,
		QueryP99High:        2 * time.Second,
		HeatSkewHigh:        8,
		MinHeatSamples:      64,
	}
}

// Peer is the bootstrap peer: the single service-provider-run instance
// of a BestPeer++ network.
type Peer struct {
	ep        *pnet.Endpoint
	provider  *cloud.SimProvider
	ca        *CertAuthority
	failover  FailoverHandler
	rebalance RebalanceHandler
	thresh    Thresholds
	collector *Collector

	mu        sync.Mutex
	peers     map[string]*PeerRecord
	blacklist map[string]Certificate // peerID -> revoked cert, resources pending release
	schemas   map[string]*sqldb.Schema
	stats     map[string]StatsDomainRecord
	roles     *accesscontrol.Registry
	users     map[string]string // user -> role, network-wide directory
	events    []Event
	clock     time.Duration
	// hotBuckets holds the key-space buckets currently over the hotspot
	// threshold, so the daemon logs each hot range once on its rising
	// edge instead of every epoch it stays hot.
	hotBuckets map[int]bool
	// rebalBuckets is the same rising-edge memory for the rebalance
	// action's index-heat signal, and lastAdvisory the hot-peer list the
	// last heat advisory broadcast carried.
	rebalBuckets map[int]bool
	lastAdvisory []string
}

// New creates a bootstrap peer attached to the network.
func New(net *pnet.Network, id string, provider *cloud.SimProvider) (*Peer, error) {
	b := &Peer{
		ep:           net.Join(id),
		provider:     provider,
		thresh:       DefaultThresholds(),
		collector:    NewCollector(),
		peers:        make(map[string]*PeerRecord),
		blacklist:    make(map[string]Certificate),
		schemas:      make(map[string]*sqldb.Schema),
		stats:        make(map[string]StatsDomainRecord),
		roles:        accesscontrol.NewRegistry(),
		users:        make(map[string]string),
		hotBuckets:   make(map[int]bool),
		rebalBuckets: make(map[int]bool),
	}
	ca, err := NewCertAuthority(func() time.Duration {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.clock
	})
	if err != nil {
		return nil, err
	}
	b.ca = ca
	b.ep.Handle("bootstrap.user.created", b.handleUserCreated)
	// telemetry.report is retry-safe because the collector dedups by
	// report sequence number; the peer-list read is naturally so.
	b.ep.HandleIdempotent(MsgTelemetryReport, b.handleTelemetryReport)
	b.ep.HandleIdempotent(MsgListPeers, b.handleListPeers)
	return b, nil
}

// MsgListPeers returns the bootstrap's online peer IDs ([]string) — the
// discovery verb remote tooling (bpremote -all) uses to enumerate the
// cluster before fanning out.
const MsgListPeers = "bootstrap.peers"

// handleTelemetryReport absorbs one peer's delta report.
func (b *Peer) handleTelemetryReport(msg pnet.Message) (pnet.Message, error) {
	rep, ok := msg.Payload.(telemetry.Report)
	if !ok {
		return pnet.Message{}, fmt.Errorf("bootstrap: telemetry report payload %T", msg.Payload)
	}
	telemetry.Default.Counter("bootstrap_telemetry_reports_total").Inc()
	if err := b.collector.Absorb(rep); err != nil {
		return pnet.Message{}, err
	}
	return pnet.Message{}, nil
}

// handleListPeers serves the online peer list.
func (b *Peer) handleListPeers(pnet.Message) (pnet.Message, error) {
	b.mu.Lock()
	out := make([]string, 0, len(b.peers))
	var size int64
	for id, rec := range b.peers {
		if rec.Status == StatusOnline {
			out = append(out, id)
			size += int64(len(id))
		}
	}
	b.mu.Unlock()
	sort.Strings(out)
	return pnet.Message{Payload: out, Size: size}, nil
}

// Collector returns the bootstrap's telemetry collector.
func (b *Peer) Collector() *Collector { return b.collector }

// ID returns the bootstrap's peer ID.
func (b *Peer) ID() string { return b.ep.ID() }

// CA returns the certificate authority.
func (b *Peer) CA() *CertAuthority { return b.ca }

// SetFailoverHandler installs the network assembly's fail-over hook.
func (b *Peer) SetFailoverHandler(h FailoverHandler) { b.failover = h }

// SetRebalanceHandler installs the hotspot-mitigation hook. Until one
// is installed the daemon only detects hot ranges (the hotspot event);
// with it, Algorithm 1 gains a rebalance action and the heat advisory
// broadcast. Pass nil to fall back to detection only.
func (b *Peer) SetRebalanceHandler(h RebalanceHandler) { b.rebalance = h }

// SetThresholds overrides the monitoring thresholds.
func (b *Peer) SetThresholds(t Thresholds) { b.thresh = t }

// DefineGlobalSchema installs one table of the corporate network's
// shared global schema.
func (b *Peer) DefineGlobalSchema(s *sqldb.Schema) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.schemas[s.Table] = s
}

// GlobalSchema returns a global table's schema, or nil.
func (b *Peer) GlobalSchema(table string) *sqldb.Schema {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.schemas[table]
}

// GlobalSchemas returns all global tables, sorted by name.
func (b *Peer) GlobalSchemas() []*sqldb.Schema {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*sqldb.Schema, 0, len(b.schemas))
	for _, s := range b.schemas {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// StatsDomainRecord is the network-agreed histogram configuration of
// one global table (paper §5.1): which columns the multi-dimensional
// histograms cover and their value domain, which also parameterizes the
// iDistance mapping every publisher and reader must share.
type StatsDomainRecord struct {
	Columns []string
	Lo, Hi  []float64
}

// DefineStatsDomain registers a table's histogram configuration.
func (b *Peer) DefineStatsDomain(table string, d StatsDomainRecord) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats[table] = d
}

// StatsDomainRec returns a table's histogram configuration.
func (b *Peer) StatsDomainRec(table string) (StatsDomainRecord, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.stats[table]
	return d, ok
}

// Roles returns the network's standard role registry (§4.4: "when
// setting up a new corporate network, the service provider defines a
// standard set of roles").
func (b *Peer) Roles() *accesscontrol.Registry { return b.roles }

// Join admits a normal peer: it is added to the peer list, issued a
// certificate, and handed the network metadata (§3.1). instanceID names
// the cloud instance backing the peer, monitored by the daemon.
func (b *Peer) Join(peerID, instanceID string, peerPub ed25519.PublicKey) (NetworkInfo, error) {
	b.mu.Lock()
	if _, ok := b.peers[peerID]; ok {
		b.mu.Unlock()
		return NetworkInfo{}, fmt.Errorf("bootstrap: peer %s already joined", peerID)
	}
	b.mu.Unlock()

	cert := b.ca.Issue(peerID, peerPub)

	b.mu.Lock()
	defer b.mu.Unlock()
	b.peers[peerID] = &PeerRecord{ID: peerID, InstanceID: instanceID, Cert: cert, Status: StatusOnline}
	b.logEvent("join", peerID, "")
	info := NetworkInfo{Certificate: cert, CAKey: b.ca.PublicKey()}
	for id := range b.peers {
		info.Participants = append(info.Participants, id)
	}
	sort.Strings(info.Participants)
	for _, s := range b.schemas {
		info.GlobalSchema = append(info.GlobalSchema, s)
	}
	sort.Slice(info.GlobalSchema, func(i, j int) bool { return info.GlobalSchema[i].Table < info.GlobalSchema[j].Table })
	info.Roles = b.roles.Roles()
	return info, nil
}

// Leave processes a graceful departure: the peer moves to the black
// list, its certificate is revoked, and its resources are reclaimed at
// the end of the next maintenance epoch (§3.1).
func (b *Peer) Leave(peerID string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	rec, ok := b.peers[peerID]
	if !ok {
		return fmt.Errorf("bootstrap: unknown peer %s", peerID)
	}
	b.ca.Revoke(rec.Cert.Serial)
	b.blacklist[peerID] = rec.Cert
	delete(b.peers, peerID)
	b.logEvent("leave", peerID, "")
	return nil
}

// Peers returns the current participant IDs, sorted.
func (b *Peer) Peers() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.peers))
	for id := range b.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Record returns a peer's record.
func (b *Peer) Record(peerID string) (PeerRecord, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rec, ok := b.peers[peerID]
	if !ok {
		return PeerRecord{}, false
	}
	return *rec, true
}

// Online reports whether every listed peer is online — the strong
// consistency gate (§3.2): queries touching a recovering peer's data
// must block until fail-over completes.
func (b *Peer) Online(peerIDs ...string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, id := range peerIDs {
		rec, ok := b.peers[id]
		if !ok || rec.Status != StatusOnline {
			return false
		}
	}
	return true
}

// Blacklist returns the peers whose resources await release.
func (b *Peer) Blacklist() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.blacklist))
	for id := range b.blacklist {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Events returns a copy of the administrative event log.
func (b *Peer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// logEvent appends to the log. Callers hold b.mu.
func (b *Peer) logEvent(kind, peer, note string) {
	b.events = append(b.events, Event{At: b.clock, Kind: kind, Peer: peer, Note: note})
}

// CreateUser registers a user account created at one peer and
// broadcasts it network-wide (§4.4), so every peer's local administrator
// can define access control for any user.
func (b *Peer) CreateUser(user, role string) error {
	b.mu.Lock()
	if _, ok := b.users[user]; ok {
		b.mu.Unlock()
		return fmt.Errorf("bootstrap: user %s already exists", user)
	}
	b.users[user] = role
	peers := make([]string, 0, len(b.peers))
	for id := range b.peers {
		peers = append(peers, id)
	}
	b.mu.Unlock()
	for _, id := range peers {
		// Best effort: unreachable peers learn the user on rejoin.
		_, _ = b.ep.Call(id, "peer.user.created", [2]string{user, role}, int64(len(user)+len(role)))
	}
	return nil
}

// Users returns the network-wide user directory.
func (b *Peer) Users() map[string]string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]string, len(b.users))
	for u, r := range b.users {
		out[u] = r
	}
	return out
}

// handleUserCreated receives user-creation forwards from normal peers.
func (b *Peer) handleUserCreated(msg pnet.Message) (pnet.Message, error) {
	pair := msg.Payload.([2]string)
	if err := b.CreateUser(pair[0], pair[1]); err != nil {
		return pnet.Message{}, err
	}
	return pnet.Message{}, nil
}

// RunMaintenanceEpoch executes one round of Algorithm 1: collect
// metrics from every peer's instance; trigger fail-over for failed
// peers and auto-scaling for overloaded ones; then release blacklisted
// resources and notify participants of membership changes. advance is
// the epoch length on the bootstrap's virtual clock.
func (b *Peer) RunMaintenanceEpoch(advance time.Duration) error {
	telemetry.Default.Counter("bootstrap_maintenance_epochs_total").Inc()
	b.mu.Lock()
	b.clock += advance
	type target struct {
		id       string
		instance string
	}
	var targets []target
	for id, rec := range b.peers {
		if rec.Status == StatusOnline {
			targets = append(targets, target{id: id, instance: rec.InstanceID})
		}
	}
	b.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })

	changed := false
	for _, tg := range targets {
		metrics, ok := b.provider.Metrics(tg.instance)
		if !ok || !metrics.Healthy {
			// Fail-over (Algorithm 1 lines 6-10): launch a replacement,
			// restore from backup, blacklist the failed peer.
			telemetry.Default.Counter("bootstrap_failovers_total").Inc()
			reason := "cloud: metrics missing"
			if ok {
				reason = "cloud: healthy=false"
			}
			if err := b.doFailover(tg.id, reason); err != nil {
				return err
			}
			changed = true
			continue
		}

		// Aggregated-telemetry fail-over: the instance looks fine to the
		// cloud, but the collector's windows say nobody can call the
		// peer — the process is wedged even though the VM is up.
		health, reported := b.collector.Health(tg.id)
		minCalls := b.thresh.MinRPCCalls
		if minCalls < 1 {
			minCalls = 1
		}
		if reported && b.thresh.RPCFailureRateHigh > 0 &&
			health.RPCCalls >= minCalls && health.RPCFailureRate >= b.thresh.RPCFailureRateHigh {
			telemetry.Default.Counter("bootstrap_failovers_total").Inc()
			if err := b.doFailover(tg.id, fmt.Sprintf("telemetry: rpc_failure_rate=%.2f over %d calls",
				health.RPCFailureRate, health.RPCCalls)); err != nil {
				return err
			}
			changed = true
			continue
		}

		inst, ok := b.provider.Instance(tg.instance)
		if !ok {
			continue
		}
		overCPU := metrics.CPUUtilization > b.thresh.CPUHigh
		overStorage := metrics.StorageUsedGB > b.thresh.StorageHighFraction*float64(inst.Type.StorageGB)
		overP99 := reported && b.thresh.QueryP99High > 0 &&
			health.P99QuerySeconds >= b.thresh.QueryP99High.Seconds()
		if overCPU || overStorage || overP99 {
			// Auto-scaling (lines 12-17). The event notes which signal
			// fired: the cloud sim's CPU/storage, or the collector's
			// windowed p99 query latency.
			newType, err := b.provider.ScaleUp(tg.instance)
			if err != nil {
				return err
			}
			telemetry.Default.Counter("bootstrap_scaleups_total").Inc()
			note := newType.Name
			switch {
			case overCPU:
				note += fmt.Sprintf(" (cloud: cpu=%.2f)", metrics.CPUUtilization)
			case overStorage:
				note += fmt.Sprintf(" (cloud: storage=%.1f/%dGB)", metrics.StorageUsedGB, inst.Type.StorageGB)
			default:
				note += fmt.Sprintf(" (telemetry: p99=%.3fs)", health.P99QuerySeconds)
			}
			b.mu.Lock()
			b.logEvent("scaleup", tg.id, note)
			b.mu.Unlock()
		}
	}

	// Hot-range detection: scan the collector's cluster-wide heat vector
	// for key-space buckets whose access share exceeds the skew
	// threshold, and log each one once on its rising edge. Detection
	// only — the event names the range and the hottest peer so an
	// operator (or a future rebalancer) knows where to look; nothing
	// here moves data.
	b.detectHotspots()

	// Hot-range response: when a rebalance handler is installed, turn
	// sustained index-serving hotspots into mitigation — replicate the
	// hot range, advise peers to dispatch around the saturated owner —
	// and tear it all down again when the heat subsides.
	b.respondHeat()

	// Release blacklisted resources (line 18).
	b.mu.Lock()
	released := make([]string, 0, len(b.blacklist))
	for id := range b.blacklist {
		released = append(released, id)
	}
	b.blacklist = make(map[string]Certificate)
	for _, id := range released {
		b.logEvent("release", id, "")
	}
	notify := changed || len(released) > 0
	peers := make([]string, 0, len(b.peers))
	online := 0
	for id, rec := range b.peers {
		peers = append(peers, id)
		if rec.Status == StatusOnline {
			online++
		}
	}
	b.mu.Unlock()
	telemetry.Default.Gauge("bootstrap_peers_online").Set(int64(online))
	sort.Strings(released)
	for _, id := range released {
		// Terminate the departed/failed peer's instance if it is still
		// allocated. Failed instances may already be gone.
		_ = b.provider.Terminate(instanceIDFor(id))
	}

	// Notify participants of changes (line 20).
	if notify {
		sort.Strings(peers)
		for _, id := range peers {
			_, _ = b.ep.Call(id, "peer.membership.changed", nil, 8)
		}
		b.mu.Lock()
		b.logEvent("notify", "", fmt.Sprintf("%d peers", len(peers)))
		b.mu.Unlock()
	}
	return nil
}

// detectHotspots runs one epoch's hot-range scan and logs rising-edge
// hotspot events. Buckets that cooled below the threshold are forgotten
// so they log again if they re-heat.
func (b *Peer) detectHotspots() {
	if b.thresh.HeatSkewHigh <= 0 {
		return
	}
	hot := b.collector.HotRanges(b.thresh.HeatSkewHigh, b.thresh.MinHeatSamples)
	cur := make(map[int]bool, len(hot))
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, r := range hot {
		cur[r.Bucket] = true
		if b.hotBuckets[r.Bucket] {
			continue // still hot: already logged on its rising edge
		}
		telemetry.Default.Counter("bootstrap_hotspots_total").Inc()
		note := fmt.Sprintf("telemetry: keys [%.3f,%.3f) share=%.0f%% skew=%.1fx n=%d",
			r.Lo, r.Hi, 100*r.Share, r.Skew, r.Samples)
		if r.TopPeer != "" {
			note += " top=" + r.TopPeer
		}
		b.logEvent("hotspot", r.TopPeer, note)
	}
	b.hotBuckets = cur
}

// respondHeat runs one epoch's rebalance action. The signal is the
// collector's *index*-serving heat, not the workload heat detectHotspots
// reads: index lookups key on table/column names, so a popular table
// funnels its whole lookup load onto one overlay owner even when the
// data accesses are spread wide — and that funnel is what replication
// can actually relieve. The handler is re-invoked every epoch a range
// stays hot (the re-push revalidates holders that missed an
// invalidation), but the event logs once per rising edge, attributed to
// the signal that fired. When no range is hot any more the handler's
// Release tears the replicas down.
func (b *Peer) respondHeat() {
	if b.rebalance == nil || b.thresh.HeatSkewHigh <= 0 {
		return
	}
	hot := b.collector.IndexHotRanges(b.thresh.HeatSkewHigh, b.thresh.MinHeatSamples)
	b.mu.Lock()
	prev := b.rebalBuckets
	hadHot := len(prev) > 0
	b.mu.Unlock()

	cur := make(map[int]bool, len(hot))
	hotPeers := make(map[string]bool, len(hot))
	for _, r := range hot {
		cur[r.Bucket] = true
		if r.TopPeer != "" {
			hotPeers[r.TopPeer] = true
		}
		note, err := b.rebalance.Rebalance(r)
		if prev[r.Bucket] && err == nil {
			continue // still hot: this epoch's call only revalidated holders
		}
		telemetry.Default.Counter("bootstrap_rebalances_total").Inc()
		msg := fmt.Sprintf("telemetry: index keys [%.3f,%.3f) share=%.0f%% skew=%.1fx n=%d",
			r.Lo, r.Hi, 100*r.Share, r.Skew, r.Samples)
		if err != nil {
			msg += " error: " + err.Error()
		} else if note != "" {
			msg += " -> " + note
		}
		b.mu.Lock()
		b.logEvent("rebalance", r.TopPeer, msg)
		b.mu.Unlock()
	}
	if len(cur) == 0 && hadHot {
		note, err := b.rebalance.Release()
		msg := "heat subsided"
		if err != nil {
			msg += " error: " + err.Error()
		} else if note != "" {
			msg += " -> " + note
		}
		b.mu.Lock()
		b.logEvent("rebalance", "", msg)
		b.mu.Unlock()
	}

	// Advise peers which owners are saturated so query fan-out dispatches
	// to them last. Broadcast only on change; an empty list clears it.
	advisory := make([]string, 0, len(hotPeers))
	for id := range hotPeers {
		advisory = append(advisory, id)
	}
	sort.Strings(advisory)
	b.mu.Lock()
	changed := !equalStrings(advisory, b.lastAdvisory)
	b.rebalBuckets = cur
	if changed {
		b.lastAdvisory = advisory
	}
	peers := make([]string, 0, len(b.peers))
	for id := range b.peers {
		peers = append(peers, id)
	}
	b.mu.Unlock()
	if changed {
		sort.Strings(peers)
		var size int64
		for _, id := range advisory {
			size += int64(len(id))
		}
		for _, id := range peers {
			// Best effort: an unreachable peer keeps its previous advisory
			// until the next change; dispatch order never affects results.
			_, _ = b.ep.Call(id, MsgHeatAdvisory, advisory, size+8)
		}
	}
}

// equalStrings reports whether two string slices are elementwise equal.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// instanceIDFor derives the cloud instance ID for a peer. The network
// assembly launches instances under the peer's own ID.
func instanceIDFor(peerID string) string { return peerID }

// doFailover performs one peer's fail-over through the installed
// handler. reason names the signal that fired (cloud metrics or an
// aggregated telemetry threshold) and lands in the event log.
func (b *Peer) doFailover(failedID, reason string) error {
	b.mu.Lock()
	rec, ok := b.peers[failedID]
	if !ok {
		b.mu.Unlock()
		return nil
	}
	rec.Status = StatusRecovering
	b.logEvent("failover", failedID, "begin: "+reason)
	handler := b.failover
	b.mu.Unlock()

	if handler == nil {
		return fmt.Errorf("bootstrap: no failover handler installed for %s", failedID)
	}
	newID, newPub, err := handler.Failover(failedID)
	if err != nil {
		return fmt.Errorf("bootstrap: failover of %s: %w", failedID, err)
	}
	cert := b.ca.Issue(newID, newPub)

	// The dead identity's telemetry window must not keep dragging
	// scores; the replacement starts a fresh one under its new ID.
	b.collector.Drop(failedID)

	b.mu.Lock()
	defer b.mu.Unlock()
	b.ca.Revoke(rec.Cert.Serial)
	b.blacklist[failedID] = rec.Cert
	delete(b.peers, failedID)
	b.peers[newID] = &PeerRecord{ID: newID, InstanceID: newID, Cert: cert, Status: StatusOnline}
	b.logEvent("failover", failedID, "recovered as "+newID)
	return nil
}
