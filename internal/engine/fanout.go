package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"bestpeer/internal/telemetry"
)

// This file is the engines' real concurrency layer. The paper's query
// executors are parallel by construction — §5.2's fetch-and-process
// strategy pulls from all data owners at once (the benchmark deployment
// runs 20 fetch threads per peer, §6.1.2) and §5.3's parallel engine
// runs replicated joins on every processing node simultaneously. The
// virtual-time cost model has always *simulated* that parallelism with
// vtime.Par; FanOut makes the wall clock agree with it: remote rounds
// dispatch concurrently while every observable output — row order, cost
// accumulation, pay-as-you-go charges — stays byte-for-byte identical
// to the sequential loops it replaces.

// DefaultFanoutWidth is the default bound on in-flight remote calls per
// fan-out round, the paper's per-peer fetch-thread count (§6.1.2: "20
// threads are used for fetching data in parallel").
const DefaultFanoutWidth = 20

// Metric handles are resolved once; FanOut sits on every query's path.
var (
	fanoutRounds        = telemetry.Default.Counter("engine_fanout_rounds_total")
	fanoutQueueWait     = telemetry.Default.Histogram("engine_fanout_queue_seconds", nil)
	fanoutWorkersActive = telemetry.Default.Gauge("engine_fanout_workers_active")
	fanoutPoolExhausted = telemetry.Default.Counter("engine_fanout_pool_exhausted_total")
)

// sharedPool bounds the *extra* worker goroutines across every fan-out
// round executing in the process, so many concurrent queries cannot
// stack unbounded goroutine fleets. The dispatching goroutine always
// works through the round itself without holding a token, which keeps
// nested fan-outs (a table-resolution round whose Locate probes
// participants, say) deadlock-free: exhausting the pool only degrades a
// round toward sequential execution, never blocks it.
var sharedPool = newWorkerPool(4 * DefaultFanoutWidth)

type workerPool struct {
	tokens atomic.Pointer[chan struct{}]
}

func newWorkerPool(capacity int) *workerPool {
	p := &workerPool{}
	ch := make(chan struct{}, capacity)
	for i := 0; i < capacity; i++ {
		ch <- struct{}{}
	}
	p.tokens.Store(&ch)
	return p
}

// tryAcquire takes a token without blocking. The returned channel is
// where the token must be released, so resizes never lose or duplicate
// tokens held by in-flight workers.
func (p *workerPool) tryAcquire() (chan struct{}, bool) {
	ch := *p.tokens.Load()
	select {
	case <-ch:
		return ch, true
	default:
		return nil, false
	}
}

// SetFanoutPoolCapacity resizes the shared worker pool (deployment
// tuning; the default is 4×DefaultFanoutWidth). Workers already running
// finish against the old pool.
func SetFanoutPoolCapacity(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	ch := make(chan struct{}, capacity)
	for i := 0; i < capacity; i++ {
		ch <- struct{}{}
	}
	sharedPool.tokens.Store(&ch)
}

// dispatchRound numbers ordered fan-out rounds process-wide; each round
// rotates its dispatch start by the counter, so synchronized rounds
// from many concurrent queries spread their first calls over the target
// set instead of all hammering target 0. Deterministic (no clock, no
// RNG): replaying the same round sequence replays the same orders.
var dispatchRound atomic.Uint64

// RotatedOrder builds a dispatch order for an n-way round: a rotation
// of [0,n) by the process-wide round counter, with indices isHot flags
// moved to the back so saturated targets are contacted last (they still
// run — results and error semantics never change, only the order the
// calls leave). nil isHot just rotates.
func RotatedOrder(n int, isHot func(i int) bool) []int {
	if n <= 1 {
		return nil
	}
	off := int(dispatchRound.Add(1) % uint64(n))
	order := make([]int, 0, n)
	var hot []int
	for k := 0; k < n; k++ {
		i := (k + off) % n
		if isHot != nil && isHot(i) {
			hot = append(hot, i)
			continue
		}
		order = append(order, i)
	}
	return append(order, hot...)
}

// FanOut dispatches call(0) … call(n-1) with at most width calls in
// flight and returns the results in index order, so callers merging
// rows or folding costs over the slots observe exactly the order the
// sequential loop produced. width ≤ 0 selects DefaultFanoutWidth;
// width 1 runs the calls sequentially (the ablation baseline), bailing
// at the first error like the loops this helper replaced.
//
// In the concurrent case every call runs to completion even when a
// sibling fails — in-flight work is drained, never abandoned — and the
// error at the lowest index is returned. That is the same error the
// sequential loop would have surfaced, so a data owner's
// ErrSnapshotNewer still wins deterministically and the Definition-2
// resubmission semantics are unchanged.
func FanOut[T any](width, n int, call func(i int) (T, error)) ([]T, error) {
	return FanOutOrdered(width, n, nil, call)
}

// FanOutOrdered is FanOut with an explicit dispatch order (a
// permutation of [0,n), e.g. from RotatedOrder): workers pick indices
// following order, but results are still returned in index order with
// identical error semantics, so callers observe no difference beyond
// which call leaves first. A nil or wrong-length order dispatches in
// natural order — byte-identical to FanOut. Sequential rounds
// (width 1) ignore the order: the ablation baseline stays the plain
// loop, bailing at the first error in index order.
func FanOutOrdered[T any](width, n int, order []int, call func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if width <= 0 {
		width = DefaultFanoutWidth
	}
	if width > n {
		width = n
	}
	if len(order) != n {
		order = nil
	}
	fanoutRounds.Inc()
	slots := make([]T, n)
	if width <= 1 {
		for i := 0; i < n; i++ {
			v, err := call(i)
			if err != nil {
				return nil, err
			}
			slots[i] = v
		}
		return slots, nil
	}

	// Queue wait is the gap between the round opening and a task being
	// picked up by a worker — the saturation signal for the shared pool.
	roundStart := time.Now()
	var picked atomic.Bool

	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if order != nil {
				i = order[i]
			}
			if picked.CompareAndSwap(false, true) {
				fanoutQueueWait.ObserveDuration(time.Since(roundStart))
			}
			slots[i], errs[i] = call(i)
		}
	}
	var wg sync.WaitGroup
	for extra := 0; extra < width-1; extra++ {
		tokens, ok := sharedPool.tryAcquire()
		if !ok {
			fanoutPoolExhausted.Inc()
			break
		}
		wg.Add(1)
		fanoutWorkersActive.Add(1)
		go func() {
			defer wg.Done()
			defer fanoutWorkersActive.Add(-1)
			defer func() { tokens <- struct{}{} }()
			work()
		}()
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return slots, nil
}
