package engine

import "bestpeer/internal/pnet"

// Register the engine payloads for the TCP transport.
func init() {
	pnet.RegisterPayload(SubQueryRequest{}, JoinTask{}, &Bloom{})
}
